// Package placement implements the decision layer of adaptive replica
// provisioning: classifying tenants hot/warm/cold against their declared
// SLA headroom, choosing per-tenant replica-degree targets under a
// TCDRM-style replica budget, and planning grow/shrink actions against the
// current machine loads.
//
// The package is deliberately pure — it imports only internal/sla and the
// standard library, holds no locks, and touches no cluster state. The core
// package's AdaptiveController feeds it signals sampled from the SLA
// monitor and executes the returned actions through the replicated control
// plane (Algorithm 1 copies for grows and migrations, replicated retires
// for shrinks). Keeping the policy side-effect free is what makes the
// classifier and planner unit-testable as plain tables.
package placement

import "sdp/internal/sla"

// Class is a tenant's load classification relative to its declared SLA.
type Class int

// Tenant classes, ordered by provisioning pressure.
const (
	// Cold tenants run compliant with offered load far under their
	// declared throughput floor; their replica degree can shrink toward
	// the budget minimum to free capacity.
	Cold Class = iota
	// Warm tenants are inside their SLA envelope (or have produced no
	// signal yet); the controller leaves them alone.
	Warm
	// Hot tenants are violating their SLA, or running close enough to
	// their declared latency ceiling that a violation is imminent; the
	// controller grows their replica degree toward the budget maximum.
	Hot
)

// String returns the lowercase class name used in metrics labels and
// reports.
func (c Class) String() string {
	switch c {
	case Cold:
		return "cold"
	case Hot:
		return "hot"
	default:
		return "warm"
	}
}

// TenantSignal is one tenant's sampled state: its declared SLA, the SLA
// monitor's verdict, and the most recent completed observation window.
type TenantSignal struct {
	// DB is the database name.
	DB string
	// SLA is the tenant's declared service-level agreement.
	SLA sla.SLA
	// Compliant reports the monitor's verdict over its retained window
	// span (false while any violation remains in the evaluation horizon).
	Compliant bool
	// HasWindow reports whether Window holds a completed observation
	// window. Tenants with no window yet (just created, or the monitor
	// has not rolled a window since tracking began) are never classified
	// hot or cold — there is no evidence to act on.
	HasWindow bool
	// Window is the most recent completed observation window.
	Window sla.WindowStats
	// WindowSeconds is the monitor's window length, used to turn the
	// window's attempt count into an offered-load rate.
	WindowSeconds float64
	// Violation is the monitor's most recent recorded violation (nil if
	// none). Its kinds and window stats let the classifier separate
	// overload (the platform failed offered demand — grow) from a
	// demand-limited throughput miss (the tenant simply offered less
	// than its floor — not a reason to add replicas).
	Violation *sla.Violation
}

// OfferedTPS returns the tenant's offered load — attempts (commits, aborts
// and rejections) per second — in the sampled window. Unlike the committed
// TPS it does not reward the platform for rejecting work, so it is the rate
// the cold classification is judged against.
func (s TenantSignal) OfferedTPS() float64 {
	if !s.HasWindow || s.WindowSeconds <= 0 {
		return 0
	}
	return float64(s.Window.Attempts()) / s.WindowSeconds
}

// overloaded reports whether the tenant's recorded violation indicates
// overload the platform can grow its way out of. With no violation record
// the answer is conservatively true (the monitor flagged non-compliance we
// cannot dissect).
func (s TenantSignal) overloaded() bool {
	v := s.Violation
	if v == nil {
		return true
	}
	throughputOnly := true
	for _, k := range v.Kinds {
		if k != sla.ViolationThroughput {
			throughputOnly = false
		}
	}
	if !throughputOnly {
		return true
	}
	// Throughput-only: overload only if the offered load in the violating
	// window actually reached the declared floor.
	if s.WindowSeconds <= 0 {
		return true
	}
	offered := float64(v.Stats.Attempts()) / s.WindowSeconds
	return offered >= s.SLA.MinThroughput
}

// ClassifierConfig tunes the hot/warm/cold classifier.
type ClassifierConfig struct {
	// HotLatencyFraction is the fraction of the declared MaxMeanLatency
	// at which a still-compliant tenant is classified hot: growth starts
	// before the violation, not after. Zero selects 0.8. Ignored for
	// tenants that declare no latency bound.
	HotLatencyFraction float64
	// ColdFraction is the fraction of the declared MinThroughput below
	// which a compliant tenant's offered load classifies it cold. Zero
	// selects 0.25. Ignored for tenants that declare no throughput floor
	// (without a floor there is no headroom to measure shrink against).
	ColdFraction float64
}

func (cfg ClassifierConfig) withDefaults() ClassifierConfig {
	if cfg.HotLatencyFraction <= 0 {
		cfg.HotLatencyFraction = 0.8
	}
	if cfg.ColdFraction <= 0 {
		cfg.ColdFraction = 0.25
	}
	return cfg
}

// Classify maps one tenant signal to a class:
//
//   - non-compliant with an overload violation (latency, availability, or
//     a throughput miss while offered load was at the declared floor) →
//     Hot,
//   - the last window's mean latency is within HotLatencyFraction of the
//     declared ceiling → Hot (pre-violation growth),
//   - offered load under ColdFraction of the declared throughput floor
//     and no latency pressure → Cold,
//   - no completed window yet, or anything else → Warm.
//
// A throughput violation recorded while the tenant offered less than its
// floor is demand-limited — the monitor faithfully reports the missed
// floor, but adding replicas cannot serve demand that was never offered,
// so it does not classify hot (and typically falls through to cold). An
// idle tenant whose SLA declares no throughput floor is Warm, never Cold:
// with no floor declared there is no headroom measure.
func Classify(s TenantSignal, cfg ClassifierConfig) Class {
	cfg = cfg.withDefaults()
	if !s.Compliant && s.overloaded() {
		return Hot
	}
	if !s.HasWindow {
		return Warm
	}
	if s.SLA.MaxMeanLatency > 0 {
		pressure := cfg.HotLatencyFraction * s.SLA.MaxMeanLatency.Seconds()
		if s.Window.Attempts() > 0 && s.Window.MeanLatencySeconds >= pressure {
			return Hot
		}
	}
	if s.SLA.MinThroughput > 0 && s.OfferedTPS() <= cfg.ColdFraction*s.SLA.MinThroughput {
		return Cold
	}
	return Warm
}
