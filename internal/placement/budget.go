package placement

// Budget bounds each tenant's replica degree, in the style of TCDRM's
// tenant-budget-aware replication: hot tenants grow only up to their
// budget, cold tenants shrink only down to the availability floor. The
// zero value selects the platform defaults (min 2 for availability, max 3).
type Budget struct {
	// MinReplicas is the floor every tenant's degree is held at or above;
	// shrinks never go below it. Zero selects 2 — the smallest degree
	// that survives a single machine failure.
	MinReplicas int
	// MaxReplicas is the default per-tenant ceiling. Zero selects 3.
	MaxReplicas int
	// PerTenant overrides MaxReplicas for individual tenants (the
	// replica budget a tenant has paid for). Entries below MinReplicas
	// are clamped up to it.
	PerTenant map[string]int
}

func (b Budget) withDefaults() Budget {
	if b.MinReplicas <= 0 {
		b.MinReplicas = 2
	}
	if b.MaxReplicas <= 0 {
		b.MaxReplicas = 3
	}
	if b.MaxReplicas < b.MinReplicas {
		b.MaxReplicas = b.MinReplicas
	}
	return b
}

// Max returns the replica ceiling for db: its PerTenant budget if present,
// the default MaxReplicas otherwise, never below the floor.
func (b Budget) Max(db string) int {
	b = b.withDefaults()
	max := b.MaxReplicas
	if per, ok := b.PerTenant[db]; ok && per > 0 {
		max = per
	}
	if max < b.MinReplicas {
		max = b.MinReplicas
	}
	return max
}

// Min returns the replica floor (the defaulted MinReplicas).
func (b Budget) Min() int { return b.withDefaults().MinReplicas }

// Clamp bounds a desired replica degree for db into [Min, Max(db)].
func (b Budget) Clamp(db string, want int) int {
	if min := b.Min(); want < min {
		return min
	}
	if max := b.Max(db); want > max {
		return max
	}
	return want
}

// Target returns the replica degree the controller should steer db toward,
// given its class and current degree: hot tenants step up one replica,
// cold tenants step down one, warm tenants hold — all clamped into the
// budget. The clamp also repairs out-of-budget degrees regardless of
// class: a tenant left under the floor by a machine failure grows back
// even while warm, and one over a lowered budget shrinks back.
func (b Budget) Target(db string, class Class, current int) int {
	want := current
	switch class {
	case Hot:
		want++
	case Cold:
		want--
	}
	return b.Clamp(db, want)
}
