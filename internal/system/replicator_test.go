package system

import (
	"fmt"
	"sync"
	"testing"

	"sdp/internal/sla"
)

func TestReplicatorOrderingPerDatabase(t *testing.T) {
	s, _, east := newSystem(t)
	if err := s.CreateDatabase("app", sla.Profile(300, 1), 2, "west", "east"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	// Commit-order-dependent writes: insert then repeatedly overwrite. If
	// batches were replayed out of order the final value would differ.
	if _, err := s.Exec("app", "INSERT INTO t VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if _, err := s.Exec("app", fmt.Sprintf("UPDATE t SET v = %d WHERE id = 1", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush("app")
	eastCl, _ := east.Route("app")
	res, err := eastCl.Exec("app", "SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 50 {
		t.Errorf("DR value = %v, want 50 (batches reordered?)", res.Rows[0][0])
	}
}

func TestReplicatorConcurrentDatabases(t *testing.T) {
	s, _, east := newSystem(t)
	for i := 0; i < 3; i++ {
		db := fmt.Sprintf("db%d", i)
		if err := s.CreateDatabase(db, sla.Profile(250, 0.5), 2, "west", "east"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec(db, "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(db string) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := s.Exec(db, fmt.Sprintf("INSERT INTO t VALUES (%d)", j)); err != nil {
					t.Error(err)
					return
				}
			}
		}(fmt.Sprintf("db%d", i))
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		db := fmt.Sprintf("db%d", i)
		s.Flush(db)
		eastCl, _ := east.Route(db)
		res, err := eastCl.Exec(db, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int != 20 {
			t.Errorf("%s DR count = %v", db, res.Rows[0][0])
		}
	}
}

func TestReplicatorRecordsErrorsAndContinues(t *testing.T) {
	s, _, _ := newSystem(t)
	if err := s.CreateDatabase("app", sla.Profile(300, 1), 2, "west", "east"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	s.Flush("app")
	// Sabotage the DR copy: create a conflicting row directly at east so
	// the replayed insert fails there.
	east, _ := s.Colo("east")
	eastCl, _ := east.Route("app")
	if _, err := eastCl.Exec("app", "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	s.Flush("app")
	if errs := s.repl.errors(); len(errs) == 0 {
		t.Error("conflicting replay recorded no error")
	}
	// Later batches still applied (best-effort, per batch).
	res, err := eastCl.Exec("app", "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 2 {
		t.Errorf("east count = %v, want 2", res.Rows[0][0])
	}
	if lag := s.ReplicationLag("app"); lag != 0 {
		t.Errorf("lag = %d", lag)
	}
}

func TestFailColoUnknown(t *testing.T) {
	s := New()
	if _, err := s.FailColo("nope"); err == nil {
		t.Error("failing unknown colo succeeded")
	}
}
