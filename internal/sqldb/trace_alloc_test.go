package sqldb

import (
	"fmt"
	"testing"

	"sdp/internal/obs"
)

// TestPointReadUnsampledZeroAlloc pins the cost of the tracing hooks on the
// point-read hot path when sampling is off: an engine with a span ring
// attached but a zero trace context on every transaction must not allocate.
// Every recording site short-circuits on SpanContext.Traced(), so the
// sampled-out path is one branch — this test fails if a future change makes
// the unsampled path allocate (a span struct, a detail string, anything).
func TestPointReadUnsampledZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	reg := obs.NewRegistry()
	cfg.Spans = reg.Spans()
	e := NewEngine(cfg)
	if err := e.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := e.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, 'val%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	stmt, err := Parse("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	params := []Value{NewInt(0)}
	i := 0
	point := func() {
		tx, err := e.BeginReadOnly("app")
		if err != nil {
			t.Fatal(err)
		}
		tx.SetTraceContext(obs.SpanContext{}) // sampling off: zero context
		params[0] = NewInt(int64(i % 100))
		i++
		if err := tx.ExecStmtInto(&res, stmt, params...); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 200; j++ { // warm the plan cache and txn pools
		point()
	}
	if avg := testing.AllocsPerRun(1000, point); avg != 0 {
		t.Fatalf("unsampled point read allocates %.2f allocs/op, want 0", avg)
	}
}

// TestSpanRingDropCounter verifies the bounded ring accounts every span it
// evicts in trace_dropped_total rather than losing them silently.
func TestSpanRingDropCounter(t *testing.T) {
	reg := obs.NewRegistrySized(4)
	for i := 0; i < 10; i++ {
		reg.Spans().Record(obs.Span{TraceID: obs.NewTraceID(), SpanID: obs.NewTraceID()})
	}
	snap := reg.Snapshot()
	var dropped float64
	for _, p := range snap.Metrics {
		if p.Name == "trace_dropped_total" {
			dropped = p.Value
		}
	}
	if dropped != 6 {
		t.Fatalf("trace_dropped_total = %v, want 6 (10 spans into a 4-slot ring)", dropped)
	}
}
