GO ?= go

.PHONY: all build test race vet doc-check crash chaos obs-dump admin-demo net-demo trace-demo consensus-demo bench bench-sqldb bench-wal bench-net bench-consensus bench-gate bench-placement placement-gate experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with lock-sensitive hot paths: the
# query engine (plan cache, striped buffer pool, lock manager, optimistic
# read validation), the cluster controller (2PC, replica management), the
# consensus log (elections, lease hand-off, kill/restart lifecycle), the
# write-ahead log's group-commit pipeline, the TPC-W client whose
# read-only profiles drive the optimistic path concurrently, and the wire
# protocol's pipelined sessions (multiplexed client pool vs concurrent DDL).
race:
	$(GO) test -race ./internal/sqldb/... ./internal/core/... ./internal/consensus/... ./internal/wal/... ./internal/tpcw/... ./internal/wire/... ./internal/placement/...

# vet also smoke-tests the wait-free metrics instruments, the SLA monitor's
# epoch-recycled windows, the admin plane, and the write-ahead log under the
# race detector — the obs package is the foundation every layer reports into.
vet:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/ ./internal/sla/ ./internal/admin/ ./internal/wal/

# Verify every exported identifier in the controller, durability, engine,
# and wire packages carries a doc comment, that PROTOCOL.md names exactly
# the Msg*/ErrCode* constants internal/wire declares, and that
# OBSERVABILITY.md names exactly the metric families a representative
# platform run registers (see OBSERVABILITY.md and the package docs citing
# paper sections).
doc-check:
	$(GO) run ./cmd/doccheck -proto PROTOCOL.md -metrics OBSERVABILITY.md ./internal/core ./internal/system ./internal/obs ./internal/admin ./internal/sla ./internal/wal ./internal/sqldb ./internal/wire ./internal/consensus ./internal/placement

# Crash-recovery soak: the randomized log-cut property test, 20 runs with
# distinct injection seeds. Any failure reproduces with
# SDP_CRASH_SEED=<seed> go test -run TestCrashRandomizedCut ./internal/sqldb/
crash:
	@set -e; for seed in $$(seq 1 20); do \
		echo "crash suite seed $$seed"; \
		SDP_CRASH_SEED=$$seed $(GO) test -count=1 -race -run 'TestCrash' ./internal/sqldb/ >/dev/null; \
	done; echo "crash suite: 20 seeds passed"

# Chaos soak: TPC-W traffic under a seeded schedule of network faults,
# asymmetric partitions, machine crashes (including kills in the 2PC
# in-doubt window), and controller-leader kills (immediate, armed on the
# next PREPARE, and mid-Algorithm-1 copy), checked for one-copy
# serializability, replica convergence, controller state-machine
# convergence, and zero leaked locks. Each seed replays its exact fault
# schedule; a failure reproduces with
# go run ./cmd/experiments -chaos -quick -seed <seed>
chaos:
	@set -e; for seed in 1 2 3 4 5; do \
		echo "chaos soak seed $$seed"; \
		$(GO) run ./cmd/experiments -chaos -quick -seed $$seed; \
	done; echo "chaos soak: 5 seeds passed"

# Dump the unified observability snapshot after a representative run: a
# TPC-W mix with an Algorithm 1 replica copy started mid-run.
obs-dump:
	$(GO) run ./cmd/experiments -metrics -quick

# Boot a platform with the HTTP admin plane, scrape /metrics for a known
# family, and show the live SLA violation report — the fastest way to see
# the operator surface end to end.
admin-demo:
	@set -e; \
	$(GO) build -o /tmp/sdp-experiments ./cmd/experiments; \
	/tmp/sdp-experiments -admin 127.0.0.1:8344 -admin-duration 6s -sla-report & pid=$$!; \
	sleep 2; \
	curl -fsS http://127.0.0.1:8344/metrics | grep -m1 '^core_txn_committed_total'; \
	curl -fsS http://127.0.0.1:8344/healthz; echo; \
	curl -fsS 'http://127.0.0.1:8344/slaz?format=text'; \
	wait $$pid

# Boot a wire server with a seeded demo database and print connection
# instructions; point `go run ./cmd/sdpsh -connect 127.0.0.1:8346 -db app
# -token demo` at it from another terminal. Ctrl-C drains gracefully.
net-demo:
	$(GO) run ./cmd/experiments -serve 127.0.0.1:8346

# Boot a fully traced platform, run wire-client calls over a real socket,
# and print the resulting distributed span trees (client → wire → system →
# core/sql → wal) plus the slow-query log — the fastest way to see the
# tracing pipeline end to end (see OBSERVABILITY.md, "Distributed tracing").
trace-demo:
	$(GO) run ./cmd/experiments -trace-demo

# Replicated-control-plane demo: run the quick consensus benchmark — three
# controller replicas, repeated leader kills under TPC-W load — and print
# the per-kill failover timings it recorded.
consensus-demo:
	@set -e; \
	$(GO) run ./cmd/experiments -bench-consensus -quick -bench-consensus-out /tmp/sdp-consensus-demo.json; \
	cat /tmp/sdp-consensus-demo.json

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Regenerate BENCH_sqldb.json (hot-path query-engine latencies) and the
# accompanying BENCH_sqldb.metrics.txt snapshot.
bench-sqldb:
	$(GO) run ./cmd/experiments -bench-sqldb

# Regenerate BENCH_wal.json (group-commit scaling and the restart-recovery
# vs full-copy comparison).
bench-wal:
	$(GO) run ./cmd/experiments -bench-wal

# Regenerate BENCH_net.json (wire-protocol latency and throughput vs
# connection count, up to 10k+ concurrent connections).
bench-net:
	$(GO) run ./cmd/experiments -bench-net

# Regenerate BENCH_consensus.json (control-plane operation latency through
# the consensus log, and leader-failover time under TPC-W load).
bench-consensus:
	$(GO) run ./cmd/experiments -bench-consensus

# Quick perf regression gate: fail if the measured point-read latency is more
# than 20% above the committed BENCH_sqldb.json baseline.
bench-gate:
	$(GO) run ./cmd/experiments -bench-gate

# Regenerate BENCH_placement.json: the adaptive-placement experiment (static
# vs adaptive replica provisioning under Zipfian tenant skew, plus the
# balanced-load inertness check).
bench-placement:
	$(GO) run ./cmd/experiments -bench-placement

# Quick placement regression gate: rerun the skew experiment in quick mode
# and fail unless adaptive provisioning beats the static baseline and stays
# inert under balanced load. CI runs this on every push.
placement-gate:
	$(GO) run ./cmd/experiments -bench-placement -quick -bench-placement-out /tmp/sdp-placement-gate.json

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
