package wal

import (
	"fmt"
	"os"
	"sync"
)

// Store is the byte-level persistence a Log writes to. Append buffers bytes
// (they are not durable until Sync); Sync makes everything appended so far
// durable; Truncate discards everything at and after off (torn-tail repair
// during recovery). Implementations must be safe for concurrent use.
type Store interface {
	// Append appends p and returns the offset its first byte was written at.
	Append(p []byte) (int64, error)
	// Sync makes all appended bytes durable.
	Sync() error
	// Size returns the total number of appended bytes (durable or not).
	Size() int64
	// Contents returns the store's current bytes, durable and buffered. A
	// recovery scan after a crash sees only what survived the crash.
	Contents() ([]byte, error)
	// Truncate discards the bytes at and after off.
	Truncate(off int64) error
	// Close releases the store.
	Close() error
}

// Crasher is implemented by stores that can simulate a process or machine
// crash: buffered-but-unsynced bytes are lost, except that the first
// tornBytes of the unsynced tail survive — modelling a write torn mid-frame
// by the failure.
type Crasher interface {
	Crash(tornBytes int)
}

// ErrStoreFailed is returned by a MemStore whose fault injection point has
// been reached.
var ErrStoreFailed = fmt.Errorf("wal: simulated store failure")

// MemStore is the in-memory simulated-disk Store used by default: appends
// land in a buffer, Sync advances a durability watermark, and Crash discards
// everything past it. Fault hooks make crash scenarios scriptable: FailAfter
// makes appends error once the store holds n bytes, DuplicateLast re-appends
// the bytes of the most recent append (a doubled final frame), and Chop
// drops the last n durable bytes (a truncation mid-record).
type MemStore struct {
	mu        sync.Mutex
	data      []byte
	durable   int
	lastOff   int
	failAfter int64 // <0 disabled
	closed    bool
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{failAfter: -1}
}

// Append implements Store.
func (s *MemStore) Append(p []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("wal: store closed")
	}
	if s.failAfter >= 0 && int64(len(s.data))+int64(len(p)) > s.failAfter {
		// Model a disk that dies partway: the bytes up to the failure point
		// are kept (unsynced), the rest is lost, and the write errors.
		room := s.failAfter - int64(len(s.data))
		if room > 0 {
			s.data = append(s.data, p[:room]...)
		}
		return 0, ErrStoreFailed
	}
	off := int64(len(s.data))
	s.lastOff = len(s.data)
	s.data = append(s.data, p...)
	return off, nil
}

// Sync implements Store.
func (s *MemStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wal: store closed")
	}
	if s.failAfter >= 0 && int64(len(s.data)) > s.failAfter {
		return ErrStoreFailed
	}
	s.durable = len(s.data)
	return nil
}

// Size implements Store.
func (s *MemStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.data))
}

// Contents implements Store.
func (s *MemStore) Contents() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, len(s.data))
	copy(out, s.data)
	return out, nil
}

// Truncate implements Store.
func (s *MemStore) Truncate(off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off > int64(len(s.data)) {
		return fmt.Errorf("wal: truncate offset %d out of range", off)
	}
	s.data = s.data[:off]
	if s.durable > int(off) {
		s.durable = int(off)
	}
	if s.lastOff > int(off) {
		s.lastOff = int(off)
	}
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// Crash implements Crasher: unsynced bytes are dropped, except the first
// tornBytes of the unsynced tail, which survive as a torn final write.
func (s *MemStore) Crash(tornBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.durable + tornBytes
	if keep > len(s.data) {
		keep = len(s.data)
	}
	s.data = s.data[:keep]
	s.durable = keep
	if s.lastOff > keep {
		s.lastOff = keep
	}
}

// SetFailAfter arms the byte-budget fault: any append that would grow the
// store past n bytes keeps the prefix that fits and fails. Pass a negative n
// to disarm.
func (s *MemStore) SetFailAfter(n int64) {
	s.mu.Lock()
	s.failAfter = n
	s.mu.Unlock()
}

// DuplicateLast re-appends the bytes of the most recent append and marks
// them durable — the classic doubled-final-frame corruption after a partial
// block rewrite. Recovery must detect the duplicate (its self-LSN disagrees
// with its position) and truncate there.
func (s *MemStore) DuplicateLast() {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := s.data[s.lastOff:]
	dup := make([]byte, len(last))
	copy(dup, last)
	s.data = append(s.data, dup...)
	s.durable = len(s.data)
}

// Chop drops the last n bytes of the store and marks the remainder durable —
// a truncation landing mid-record.
func (s *MemStore) Chop(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := len(s.data) - n
	if keep < 0 {
		keep = 0
	}
	s.data = s.data[:keep]
	s.durable = len(s.data)
	if s.lastOff > keep {
		s.lastOff = keep
	}
}

// FileStore is a real-file Store used by tests that want crash injection
// against an actual filesystem: appends go through the OS page cache and
// Sync calls File.Sync.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFile opens (creating if needed) the log file at path and positions
// appends at its current end.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, size: st.Size()}, nil
}

// Append implements Store.
func (s *FileStore) Append(p []byte) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := s.size
	if _, err := s.f.WriteAt(p, off); err != nil {
		return 0, err
	}
	s.size += int64(len(p))
	return off, nil
}

// Sync implements Store.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Size implements Store.
func (s *FileStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Contents implements Store.
func (s *FileStore) Contents() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, s.size)
	if _, err := s.f.ReadAt(out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// Truncate implements Store.
func (s *FileStore) Truncate(off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Truncate(off); err != nil {
		return err
	}
	s.size = off
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
