package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type an HTTP handler should declare
// when serving WritePrometheus output — text exposition format 0.0.4.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# HELP` / `# TYPE` header per family followed
// by its samples, counters and gauges as single lines, histograms as
// cumulative `_bucket{le="..."}` lines plus `_sum` and `_count`. Label
// values are escaped per the format spec (backslash, double quote, newline)
// and label names are emitted in sorted order, so the output is
// deterministic and scrapable by a stock Prometheus server. All samples of
// one family are contiguous, as the format requires.
func (s Snapshot) WritePrometheus(w io.Writer) {
	lastName := ""
	for _, p := range s.Metrics {
		if p.Name != lastName {
			if p.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(p.Help))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind)
			lastName = p.Name
		}
		if p.Kind == "histogram" {
			writePromHistogram(w, p)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels, ""), promFloat(p.Value))
	}
}

// writePromHistogram emits one histogram point: cumulative buckets (the
// overflow bucket folds into `le="+Inf"`), then the exact sum and count.
func writePromHistogram(w io.Writer, p MetricPoint) {
	h := p.Histogram
	var cum uint64
	for i, bound := range h.Bounds {
		if i < len(h.Buckets) {
			cum += h.Buckets[i]
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, promFloat(bound)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, "+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, promLabels(p.Labels, ""), promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, ""), h.Count)
}

// OpenMetricsContentType is the Content-Type an HTTP handler should declare
// when serving WriteOpenMetrics output.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the snapshot in the OpenMetrics 1.0 text format.
// It differs from WritePrometheus in exactly the ways the newer format
// requires: counter family metadata drops the `_total` suffix (samples keep
// it), histogram bucket lines carry exemplars — `# {trace_id="…"} value
// timestamp` — when a traced observation landed in the bucket, and the
// exposition ends with `# EOF`. Exemplars are what let a Prometheus/Grafana
// stack jump from a latency histogram straight to the trace of one request
// that hit the slow bucket.
func (s Snapshot) WriteOpenMetrics(w io.Writer) {
	lastName := ""
	for _, p := range s.Metrics {
		if p.Name != lastName {
			family := p.Name
			if p.Kind == "counter" {
				family = strings.TrimSuffix(family, "_total")
			}
			if p.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(p.Help))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", family, p.Kind)
			lastName = p.Name
		}
		if p.Kind == "histogram" {
			writeOpenMetricsHistogram(w, p)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels, ""), promFloat(p.Value))
	}
	fmt.Fprintln(w, "# EOF")
}

// writeOpenMetricsHistogram emits one histogram point with per-bucket
// exemplars. The overflow bucket folds into `le="+Inf"`, carrying its own
// exemplar if the bound buckets left the slot empty.
func writeOpenMetricsHistogram(w io.Writer, p MetricPoint) {
	h := p.Histogram
	exemplar := func(i int) string {
		if i >= len(h.Exemplars) || h.Exemplars[i].TraceID == 0 {
			return ""
		}
		e := h.Exemplars[i]
		return fmt.Sprintf(" # {trace_id=\"%s\"} %s %.3f",
			TraceIDString(e.TraceID), promFloat(e.Value), float64(e.Time.UnixNano())/1e9)
	}
	var cum uint64
	for i, bound := range h.Bounds {
		if i < len(h.Buckets) {
			cum += h.Buckets[i]
		}
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", p.Name, promLabels(p.Labels, promFloat(bound)), cum, exemplar(i))
	}
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", p.Name, promLabels(p.Labels, "+Inf"), h.Count, exemplar(len(h.Bounds)))
	fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, promLabels(p.Labels, ""), promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, ""), h.Count)
}

// promLabels renders {k="v",...} with names sorted; a non-empty le is
// appended last (bucket lines), matching the conventional ordering. Returns
// "" when there are no labels at all.
func promLabels(labels map[string]string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(labels) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat formats a sample value: shortest round-trip representation, with
// the spec's spellings for the special values.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and line feed.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, line feed.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
