package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/sqldb"
	"sdp/internal/wal"
)

// WALBench holds the durability-subsystem benchmark results written by
// cmd/experiments -bench-wal to BENCH_wal.json: commit latency and physical
// flush counts as concurrent committers grow, with and without group commit,
// plus the restart-recovery comparison of log replay against a full
// Algorithm-1 copy.
type WALBench struct {
	FlushLatencyUs      float64          `json:"flush_latency_us"`
	CommitsPerCommitter int              `json:"commits_per_committer"`
	GroupCommit         []WALCommitPoint `json:"group_commit"`
	NoGroupCommit       []WALCommitPoint `json:"no_group_commit"`

	RecoveryRows     int     `json:"recovery_rows"`
	DeltaRows        int     `json:"delta_rows"`
	FastRecoveryMs   float64 `json:"fast_recovery_ms"`
	FastRestartMs    float64 `json:"fast_restart_ms"`
	FastCatchupMs    float64 `json:"fast_catchup_ms"`
	FastReplayed     int     `json:"fast_replayed_statements"`
	FullRecoveryMs   float64 `json:"full_recovery_ms"`
	FastSpeedupRatio float64 `json:"fast_speedup_ratio"`
}

// WALCommitPoint is one measurement of the commit pipeline at a fixed number
// of concurrent committers.
type WALCommitPoint struct {
	Committers       int     `json:"committers"`
	CommitUsPerOp    float64 `json:"commit_us_per_op"`
	Flushes          uint64  `json:"flushes"`
	FlushesPerCommit float64 `json:"flushes_per_commit"`
}

// walBenchCommits picks how many transactions each committer runs.
func (c Config) walBenchCommits() int {
	if c.Quick {
		return 40
	}
	return 200
}

// walBenchRows picks the recovery demo's big-table size.
func (c Config) walBenchRows() int {
	if c.Quick {
		return 2000
	}
	return 10000
}

// walCommitPoint measures mean commit latency and flush counts with the
// given number of concurrent committers. Each committer writes its own table
// so commits conflict only in the log, which is what the experiment
// measures: with group commit one flush — one simulated fsync — satisfies
// every committer waiting at that moment; without it each commit pays the
// full flush latency itself.
func walCommitPoint(committers, commitsEach int, flushLat time.Duration, noGroup bool) (WALCommitPoint, error) {
	pt := WALCommitPoint{Committers: committers}
	reg := obs.NewRegistry()
	m := wal.NewMetrics(reg)
	e := sqldb.NewEngine(sqldb.DefaultConfig())
	e.AttachWAL(wal.New(wal.NewMemStore(), wal.Config{FlushLatency: flushLat, NoGroupCommit: noGroup}, m))
	e.SetWALMetrics(m)
	defer e.Close()
	if err := e.CreateDatabase("app"); err != nil {
		return pt, err
	}
	for j := 0; j < committers; j++ {
		if _, err := e.Exec("app", fmt.Sprintf("CREATE TABLE t%d (id INT PRIMARY KEY)", j)); err != nil {
			return pt, err
		}
	}
	base := m.Flushes.Value()

	var wg sync.WaitGroup
	errs := make([]error, committers)
	start := time.Now()
	for j := 0; j < committers; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for k := 0; k < commitsEach; k++ {
				if _, err := e.Exec("app", fmt.Sprintf("INSERT INTO t%d VALUES (%d)", j, k)); err != nil {
					errs[j] = err
					return
				}
			}
		}(j)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	total := committers * commitsEach
	pt.CommitUsPerOp = elapsed.Seconds() * 1e6 / float64(commitsEach)
	pt.Flushes = m.Flushes.Value() - base
	pt.FlushesPerCommit = float64(pt.Flushes) / float64(total)
	return pt, nil
}

// walRecoveryCluster builds a WAL-enabled cluster with `machines` machines
// and the "app" database holding a big table of `rows` rows.
func walRecoveryCluster(machines, rows int) (*core.Cluster, error) {
	c := core.NewCluster("walbench", core.Options{Replicas: 2, WAL: &wal.Config{Compact: true}})
	if _, err := c.AddMachines(machines); err != nil {
		return nil, err
	}
	if err := c.CreateDatabase("app"); err != nil {
		return nil, err
	}
	if _, err := c.Exec("app", "CREATE TABLE big (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return nil, err
	}
	if _, err := c.Exec("app", "CREATE TABLE delta (id INT PRIMARY KEY)"); err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		if _, err := c.Exec("app", "INSERT INTO big VALUES (?, ?)",
			sqldb.NewInt(int64(i)), sqldb.NewText(fmt.Sprintf("row%d", i))); err != nil {
			return nil, err
		}
	}
	// The periodic checkpoint every deployment runs: restart replay is
	// bounded by the log tail, not the machine's whole history. The writes
	// after it form that tail — statements a restarting machine replays.
	if err := c.CheckpointMachines(); err != nil {
		return nil, err
	}
	for i := rows; i < rows+rows/50; i++ {
		if _, err := c.Exec("app", "INSERT INTO big VALUES (?, ?)",
			sqldb.NewInt(int64(i)), sqldb.NewText(fmt.Sprintf("row%d", i))); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// RunWALBench measures the durability subsystem: the group-commit scaling
// curve (commit latency and flushes per commit as committers grow, against
// the no-group-commit baseline at the same simulated fsync latency) and the
// recovery comparison — a failed machine rejoining by local log replay plus
// delta catch-up versus a full Algorithm-1 copy of the same database.
func RunWALBench(cfg Config) (WALBench, error) {
	const flushLat = 200 * time.Microsecond
	res := WALBench{
		FlushLatencyUs:      float64(flushLat) / float64(time.Microsecond),
		CommitsPerCommitter: cfg.walBenchCommits(),
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		pt, err := walCommitPoint(n, res.CommitsPerCommitter, flushLat, false)
		if err != nil {
			return res, err
		}
		res.GroupCommit = append(res.GroupCommit, pt)
		pt, err = walCommitPoint(n, res.CommitsPerCommitter, flushLat, true)
		if err != nil {
			return res, err
		}
		res.NoGroupCommit = append(res.NoGroupCommit, pt)
	}

	// Recovery comparison, median of three trials each (a GC pause can rival
	// the measured interval). Fast path: the failed machine restarts with its
	// log intact, replays it, and only the post-failure delta is copied.
	res.RecoveryRows = cfg.walBenchRows()
	res.DeltaRows = 100
	fasts := make([]walFastTrial, 0, recoveryTrials)
	for i := 0; i < recoveryTrials; i++ {
		tr, err := walFastRecoveryTrial(res.RecoveryRows, res.DeltaRows)
		if err != nil {
			return res, err
		}
		fasts = append(fasts, tr)
	}
	sort.Slice(fasts, func(i, j int) bool { return fasts[i].totalMs < fasts[j].totalMs })
	med := fasts[len(fasts)/2]
	res.FastRecoveryMs = med.totalMs
	res.FastRestartMs = med.restartMs
	res.FastCatchupMs = med.totalMs - med.restartMs
	res.FastReplayed = med.replayed

	// Full path: the machine never comes back; a fresh target receives a
	// complete Algorithm-1 copy of the same data.
	fulls := make([]float64, 0, recoveryTrials)
	for i := 0; i < recoveryTrials; i++ {
		ms, err := walFullRecoveryTrial(res.RecoveryRows)
		if err != nil {
			return res, err
		}
		fulls = append(fulls, ms)
	}
	sort.Float64s(fulls)
	res.FullRecoveryMs = fulls[len(fulls)/2]
	if res.FastRecoveryMs > 0 {
		res.FastSpeedupRatio = res.FullRecoveryMs / res.FastRecoveryMs
	}
	return res, nil
}

// recoveryTrials is how many times each recovery path is measured; the
// reported numbers are the median trial.
const recoveryTrials = 3

// walFastTrial is one timed fast-path recovery.
type walFastTrial struct {
	totalMs   float64
	restartMs float64
	replayed  int
}

// walFastRecoveryTrial measures one restart-and-catch-up recovery: fail a
// replica, write a small delta, restart the machine (checkpoint restore plus
// log-tail replay) and re-admit it with a delta-only catch-up.
func walFastRecoveryTrial(rows, deltaRows int) (walFastTrial, error) {
	var tr walFastTrial
	c, err := walRecoveryCluster(2, rows)
	if err != nil {
		return tr, err
	}
	replicas, err := c.Replicas("app")
	if err != nil {
		return tr, err
	}
	victim := replicas[1]
	affected, err := c.FailMachine(victim)
	if err != nil {
		return tr, err
	}
	for i := 0; i < deltaRows; i++ {
		if _, err := c.Exec("app", "INSERT INTO delta VALUES (?)", sqldb.NewInt(int64(i))); err != nil {
			return tr, err
		}
	}
	runtime.GC()
	start := time.Now()
	stats, err := c.RestartMachine(victim)
	if err != nil {
		return tr, err
	}
	tr.restartMs = time.Since(start).Seconds() * 1e3
	if rep := c.RecoverDatabases(affected, 1); len(rep.Failed) > 0 {
		return tr, fmt.Errorf("fast recovery failed: %v", rep.Failed)
	}
	tr.totalMs = time.Since(start).Seconds() * 1e3
	tr.replayed = stats.Applied
	return tr, nil
}

// walFullRecoveryTrial measures one full Algorithm-1 recovery of the same
// database onto a fresh target machine.
func walFullRecoveryTrial(rows int) (float64, error) {
	c, err := walRecoveryCluster(3, rows)
	if err != nil {
		return 0, err
	}
	replicas, err := c.Replicas("app")
	if err != nil {
		return 0, err
	}
	affected, err := c.FailMachine(replicas[1])
	if err != nil {
		return 0, err
	}
	runtime.GC()
	start := time.Now()
	if rep := c.RecoverDatabases(affected, 1); len(rep.Failed) > 0 {
		return 0, fmt.Errorf("full recovery failed: %v", rep.Failed)
	}
	return time.Since(start).Seconds() * 1e3, nil
}
