package tpcw

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"sdp/internal/sqldb"
)

// TxKind identifies one TPC-W transaction profile.
type TxKind int

// Transaction profiles. The read-only profiles correspond to TPC-W's
// browsing interactions, the updating ones to its ordering interactions.
const (
	TxHome TxKind = iota
	TxProductDetail
	TxSearchBySubject
	TxSearchByTitle
	TxOrderStatus
	TxBestSellers
	TxCartUpdate
	TxBuyConfirm
	TxAdminUpdate
	numTxKinds
)

// String names the profile.
func (k TxKind) String() string {
	switch k {
	case TxHome:
		return "home"
	case TxProductDetail:
		return "product-detail"
	case TxSearchBySubject:
		return "search-subject"
	case TxSearchByTitle:
		return "search-title"
	case TxOrderStatus:
		return "order-status"
	case TxBestSellers:
		return "best-sellers"
	case TxCartUpdate:
		return "cart-update"
	case TxBuyConfirm:
		return "buy-confirm"
	case TxAdminUpdate:
		return "admin-update"
	default:
		return "unknown"
	}
}

// IsWrite reports whether the profile updates the database.
func (k TxKind) IsWrite() bool {
	return k == TxCartUpdate || k == TxBuyConfirm || k == TxAdminUpdate
}

// Mix is a weighted distribution over transaction profiles.
type Mix struct {
	Name    string
	Weights [numTxKinds]int
}

// WriteFraction returns the fraction of updating transactions in the mix —
// the write_mix(j) parameter of the paper's availability constraint.
func (m Mix) WriteFraction() float64 {
	total, writes := 0, 0
	for k, w := range m.Weights {
		total += w
		if TxKind(k).IsWrite() {
			writes += w
		}
	}
	if total == 0 {
		return 0
	}
	return float64(writes) / float64(total)
}

// pick draws a profile according to the weights.
func (m Mix) pick(rng *rand.Rand) TxKind {
	total := 0
	for _, w := range m.Weights {
		total += w
	}
	n := rng.Intn(total)
	for k, w := range m.Weights {
		if n < w {
			return TxKind(k)
		}
		n -= w
	}
	return TxHome
}

// The three standard TPC-W mixes: ~5%, ~20% and ~50% updating
// transactions, as in the paper's Figures 2–7.
var (
	BrowsingMix = Mix{Name: "browsing", Weights: [numTxKinds]int{
		TxHome: 20, TxProductDetail: 30, TxSearchBySubject: 25,
		TxSearchByTitle: 5, TxOrderStatus: 10, TxBestSellers: 5,
		TxCartUpdate: 3, TxBuyConfirm: 1, TxAdminUpdate: 1,
	}}
	ShoppingMix = Mix{Name: "shopping", Weights: [numTxKinds]int{
		TxHome: 15, TxProductDetail: 25, TxSearchBySubject: 20,
		TxSearchByTitle: 3, TxOrderStatus: 12, TxBestSellers: 5,
		TxCartUpdate: 12, TxBuyConfirm: 6, TxAdminUpdate: 2,
	}}
	OrderingMix = Mix{Name: "ordering", Weights: [numTxKinds]int{
		TxHome: 10, TxProductDetail: 15, TxSearchBySubject: 10,
		TxSearchByTitle: 2, TxOrderStatus: 8, TxBestSellers: 5,
		TxCartUpdate: 25, TxBuyConfirm: 20, TxAdminUpdate: 5,
	}}
)

// Mixes lists the three standard mixes.
var Mixes = []Mix{BrowsingMix, ShoppingMix, OrderingMix}

// Workload holds the shared mutable state of a running TPC-W workload:
// scale parameters, item-popularity skew, and the global ID allocators for
// new orders and order lines (shared across sessions and replicas).
type Workload struct {
	Scale Scale
	// ItemSkew is the probability that an item access hits the hottest 20%
	// of items (a two-level popularity model). The default 0.8 gives the
	// classic 80/20 shape; 0 makes item access uniform, which maximises
	// buffer-pool pressure.
	ItemSkew float64

	nextOrder atomic.Int64
	nextLine  atomic.Int64
}

// NewWorkload prepares the shared state for clients of a database loaded at
// the given scale.
func NewWorkload(sc Scale) *Workload {
	w := &Workload{Scale: sc, ItemSkew: 0.8}
	// Loaded orders use IDs 1..Orders; lines 1..~Orders*2*LinesPerOrder.
	w.nextOrder.Store(int64(sc.Orders) + 1)
	w.nextLine.Store(int64(sc.Orders*sc.LinesPerOrder*2) + 1)
	return w
}

// zipfItem draws an item ID under the two-level popularity model: with
// probability ItemSkew the access lands uniformly in the hottest fifth of
// the items, otherwise uniformly anywhere.
func (w *Workload) zipfItem(rng *rand.Rand) int64 {
	n := int64(w.Scale.Items)
	if rng.Float64() < w.ItemSkew {
		hot := n / 5
		if hot < 1 {
			hot = 1
		}
		return 1 + rng.Int63n(hot)
	}
	return 1 + rng.Int63n(n)
}

func (w *Workload) randCustomer(rng *rand.Rand) int64 {
	return 1 + rng.Int63n(int64(w.Scale.Customers))
}

// Run executes one transaction of the given kind inside tx. The caller owns
// commit/rollback.
func (w *Workload) Run(kind TxKind, tx Txn, rng *rand.Rand) error {
	switch kind {
	case TxHome:
		return w.txHome(tx, rng)
	case TxProductDetail:
		return w.txProductDetail(tx, rng)
	case TxSearchBySubject:
		return w.txSearchBySubject(tx, rng)
	case TxSearchByTitle:
		return w.txSearchByTitle(tx, rng)
	case TxOrderStatus:
		return w.txOrderStatus(tx, rng)
	case TxBestSellers:
		return w.txBestSellers(tx, rng)
	case TxCartUpdate:
		return w.txCartUpdate(tx, rng)
	case TxBuyConfirm:
		return w.txBuyConfirm(tx, rng)
	case TxAdminUpdate:
		return w.txAdminUpdate(tx, rng)
	default:
		return fmt.Errorf("tpcw: unknown transaction kind %d", kind)
	}
}

func (w *Workload) txHome(tx Txn, rng *rand.Rand) error {
	if _, err := tx.Exec("SELECT c_fname, c_lname FROM customer WHERE c_id = ?", sqldb.NewInt(w.randCustomer(rng))); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := tx.Exec("SELECT i_title, i_cost FROM item WHERE i_id = ?", sqldb.NewInt(w.zipfItem(rng))); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) txProductDetail(tx Txn, rng *rand.Rand) error {
	item := w.zipfItem(rng)
	res, err := tx.Exec("SELECT i_title, i_a_id, i_cost, i_stock FROM item WHERE i_id = ?", sqldb.NewInt(item))
	if err != nil {
		return err
	}
	if len(res.Rows) == 1 {
		if _, err := tx.Exec("SELECT a_fname, a_lname FROM author WHERE a_id = ?", sqldb.NewInt(res.Rows[0][1].Int)); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) txSearchBySubject(tx Txn, rng *rand.Rand) error {
	subject := Subjects[rng.Intn(len(Subjects))]
	_, err := tx.Exec("SELECT i_id, i_title, i_cost FROM item WHERE i_subject = ? ORDER BY i_title LIMIT 20", sqldb.NewText(subject))
	return err
}

func (w *Workload) txSearchByTitle(tx Txn, rng *rand.Rand) error {
	pat := "%" + string(letters[rng.Intn(len(letters))]) + string(letters[rng.Intn(len(letters))]) + "%"
	_, err := tx.Exec("SELECT i_id, i_title FROM item WHERE i_title LIKE ? LIMIT 10", sqldb.NewText(pat))
	return err
}

func (w *Workload) txOrderStatus(tx Txn, rng *rand.Rand) error {
	cust := w.randCustomer(rng)
	res, err := tx.Exec("SELECT o_id, o_total, o_status FROM orders WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1", sqldb.NewInt(cust))
	if err != nil {
		return err
	}
	if len(res.Rows) == 1 {
		_, err = tx.Exec(
			"SELECT ol.ol_qty, i.i_title FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id WHERE ol.ol_o_id = ?",
			sqldb.NewInt(res.Rows[0][0].Int))
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) txBestSellers(tx Txn, rng *rand.Rand) error {
	subject := Subjects[rng.Intn(len(Subjects))]
	_, err := tx.Exec(
		`SELECT i_id, i_title, i_total_sold FROM item WHERE i_subject = ? ORDER BY i_total_sold DESC LIMIT 10`,
		sqldb.NewText(subject))
	return err
}

func (w *Workload) txCartUpdate(tx Txn, rng *rand.Rand) error {
	item := w.zipfItem(rng)
	qty := 1 + rng.Intn(3)
	_, err := tx.Exec("UPDATE item SET i_stock = i_stock - ? WHERE i_id = ? AND i_stock >= ?",
		sqldb.NewInt(int64(qty)), sqldb.NewInt(item), sqldb.NewInt(int64(qty)))
	return err
}

func (w *Workload) txBuyConfirm(tx Txn, rng *rand.Rand) error {
	cust := w.randCustomer(rng)
	orderID := w.nextOrder.Add(1)
	lines := 1 + rng.Intn(4)
	total := 0.0
	for l := 0; l < lines; l++ {
		item := w.zipfItem(rng)
		qty := int64(1 + rng.Intn(3))
		lineID := w.nextLine.Add(1)
		if _, err := tx.Exec("INSERT INTO order_line VALUES (?, ?, ?, ?, 0.0)",
			sqldb.NewInt(lineID), sqldb.NewInt(orderID), sqldb.NewInt(item), sqldb.NewInt(qty)); err != nil {
			return err
		}
		if _, err := tx.Exec("UPDATE item SET i_stock = i_stock - ?, i_total_sold = i_total_sold + ? WHERE i_id = ?",
			sqldb.NewInt(qty), sqldb.NewInt(qty), sqldb.NewInt(item)); err != nil {
			return err
		}
		total += float64(qty) * 12.5
	}
	if _, err := tx.Exec("INSERT INTO orders VALUES (?, ?, ?, ?, 'PENDING')",
		sqldb.NewInt(orderID), sqldb.NewInt(cust), sqldb.NewInt(2000000+orderID), sqldb.NewFloat(total)); err != nil {
		return err
	}
	if _, err := tx.Exec("INSERT INTO cc_xacts VALUES (?, 'VISA', ?, ?)",
		sqldb.NewInt(orderID), sqldb.NewFloat(total), sqldb.NewInt(2000000+orderID)); err != nil {
		return err
	}
	_, err := tx.Exec("UPDATE customer SET c_balance = c_balance - ?, c_ytd_pmt = c_ytd_pmt + ? WHERE c_id = ?",
		sqldb.NewFloat(total), sqldb.NewFloat(total), sqldb.NewInt(cust))
	return err
}

func (w *Workload) txAdminUpdate(tx Txn, rng *rand.Rand) error {
	item := w.zipfItem(rng)
	_, err := tx.Exec("UPDATE item SET i_cost = i_cost * 1.01 WHERE i_id = ?", sqldb.NewInt(item))
	return err
}
