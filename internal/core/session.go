package core

import (
	"sdp/internal/sqldb"
)

// opResult is the outcome of one operation executed on a replica.
type opResult struct {
	res *sqldb.Result
	err error
}

// future resolves to the result of an asynchronously executed operation.
// It is safe for any number of goroutines to wait on it.
type future struct {
	done chan struct{}
	res  opResult
}

func newFuture() *future { return &future{done: make(chan struct{})} }

// complete resolves the future. It must be called exactly once.
func (f *future) complete(r opResult) {
	f.res = r
	close(f.done)
}

// wait blocks until the operation finishes and returns its outcome. It may
// be called repeatedly and concurrently.
func (f *future) wait() opResult {
	<-f.done
	return f.res
}

// poll returns the outcome if the operation has finished.
func (f *future) poll() (opResult, bool) {
	select {
	case <-f.done:
		return f.res, true
	default:
		return opResult{}, false
	}
}

// waitAny blocks until one of the futures resolves and returns its outcome —
// the aggressive controller's "return as soon as one machine answers".
func waitAny(futs []*future) opResult {
	if len(futs) == 1 {
		return futs[0].wait()
	}
	ch := make(chan opResult, len(futs))
	for _, f := range futs {
		go func(f *future) { ch <- f.wait() }(f)
	}
	return <-ch
}

// replicaSession is the controller's connection to one machine on behalf of
// one distributed transaction. Operations enqueue onto a FIFO queue drained
// by a dedicated goroutine, exactly like statements written down one JDBC
// connection: per-machine order is preserved, but machines run independently
// of each other — the property that makes the aggressive controller's
// anomaly (Table 1) possible.
type replicaSession struct {
	machine *Machine
	txn     *sqldb.Txn
	ops     chan func()
	closed  chan struct{}
}

// newReplicaSession begins a transaction branch on the machine and starts
// its queue worker.
func newReplicaSession(m *Machine, db string, globalID uint64) (*replicaSession, error) {
	if m.Failed() {
		return nil, ErrMachineFailed
	}
	txn, err := m.Engine().BeginWithID(db, globalID)
	if err != nil {
		return nil, err
	}
	s := &replicaSession{
		machine: m,
		txn:     txn,
		ops:     make(chan func(), 64),
		closed:  make(chan struct{}),
	}
	go s.run()
	return s, nil
}

func (s *replicaSession) run() {
	defer close(s.closed)
	for f := range s.ops {
		f()
	}
}

// enqueue schedules fn on the session's queue and returns a future for its
// result. fn runs after every previously enqueued operation on this machine.
func (s *replicaSession) enqueue(fn func() opResult) *future {
	fut := newFuture()
	s.ops <- func() { fut.complete(s.guard(fn)) }
	return fut
}

// guard fails fast when the machine has died instead of touching its engine.
func (s *replicaSession) guard(fn func() opResult) opResult {
	if s.machine.Failed() {
		return opResult{err: ErrMachineFailed}
	}
	return fn()
}

// execStmt enqueues a statement execution.
func (s *replicaSession) execStmt(stmt sqldb.Statement, params []sqldb.Value) *future {
	return s.enqueue(func() opResult {
		res, err := s.txn.ExecStmt(stmt, params...)
		return opResult{res: res, err: err}
	})
}

// prepare enqueues the PREPARE action of 2PC. It runs after all previously
// enqueued operations on this machine (FIFO), but independently of the
// transaction's pending operations on other machines.
func (s *replicaSession) prepare() *future {
	return s.enqueue(func() opResult {
		return opResult{err: s.txn.Prepare()}
	})
}

// commitPrepared enqueues the COMMIT action of 2PC.
func (s *replicaSession) commitPrepared() *future {
	return s.enqueue(func() opResult {
		return opResult{err: s.txn.CommitPrepared()}
	})
}

// commit enqueues a one-phase commit (read-only branches).
func (s *replicaSession) commit() *future {
	return s.enqueue(func() opResult {
		return opResult{err: s.txn.Commit()}
	})
}

// rollback enqueues a rollback.
func (s *replicaSession) rollback() *future {
	return s.enqueue(func() opResult {
		return opResult{err: s.txn.Rollback()}
	})
}

// close shuts the queue down after all enqueued work drains.
func (s *replicaSession) close() {
	close(s.ops)
	<-s.closed
}
