package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/obs"
	"sdp/internal/sqldb"
)

// ClientConfig tunes a wire client.
type ClientConfig struct {
	// Addr is the server's TCP address. Required.
	Addr string
	// Database is the tenant database every session binds to. Required.
	Database string
	// Token authenticates the handshake.
	Token string
	// PoolSize caps the number of shared (multiplexed) connections
	// autocommit calls pipeline over (default 4). Explicit transactions
	// pin dedicated connections drawn from a separate idle list.
	PoolSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline: how long one request may wait
	// for its response before the connection is declared dead (default
	// 30s).
	CallTimeout time.Duration
	// RetryLimit is how many times autocommit calls retry retryable
	// errors (ErrOptimisticConflict, ErrStaleRoute, deadlock victims, …)
	// before giving up (default 5). Explicit transactions never retry:
	// the application owns their statement sequence.
	RetryLimit int
	// RetryBackoff is the initial backoff between retries, doubled per
	// attempt (default 200µs).
	RetryBackoff time.Duration
	// Metrics, when set, receives client-side trace spans (into its span
	// ring). Nil disables client tracing entirely.
	Metrics *obs.Registry
	// TraceSample is the head-sampling fraction for calls made by this
	// client (0 = never, 1 = every call). A sampled call becomes the root
	// of a distributed trace: the client span's context rides the MsgQuery/
	// MsgExec frame so the server's spans link under it.
	TraceSample float64
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 5
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 200 * time.Microsecond
	}
	return c
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("wire: client closed")

// errConnDead marks a connection-level failure (as opposed to a
// server-reported MsgError); the pooled connection is discarded.
var errConnDead = errors.New("wire: connection failed")

// Client is a pooled wire-protocol client bound to one database. All
// methods are safe for concurrent use. Autocommit calls (Exec, Query,
// Stmt.Exec) multiplex over a fixed set of shared connections — each
// caller's request is pipelined with a sequence ID and matched to its
// response out of order, so thousands of goroutines can share a handful
// of sockets. Begin pins a dedicated connection for the transaction's
// lifetime, because a transaction is connection state on the server.
type Client struct {
	cfg     ClientConfig
	sampler *obs.Sampler  // nil when tracing is off
	spans   *obs.SpanRing // destination for client spans

	rr uint64 // round-robin cursor over shared connections

	mu     sync.Mutex
	shared []*clientConn // multiplexed autocommit connections, lazily dialed
	txIdle []*clientConn // idle dedicated connections for transactions
	closed bool
	stmts  map[string]*Stmt // interned prepared statements by SQL text
}

// Dial connects to a wire server and verifies the handshake once; further
// connections are opened lazily as load grows.
func Dial(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{cfg: cfg, shared: make([]*clientConn, cfg.PoolSize), stmts: make(map[string]*Stmt)}
	if cfg.Metrics != nil && cfg.TraceSample > 0 {
		c.sampler = obs.NewSampler(cfg.TraceSample)
		c.spans = cfg.Metrics.Spans()
	}
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.shared[0] = cc
	return c, nil
}

// Close releases every pooled connection (sending MsgQuit on each).
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*clientConn{}, c.txIdle...)
	for _, cc := range c.shared {
		if cc != nil {
			conns = append(conns, cc)
		}
	}
	c.txIdle, c.shared = nil, nil
	c.mu.Unlock()
	for _, cc := range conns {
		cc.quit()
	}
	return nil
}

// dial opens and handshakes one connection.
func (c *Client) dial() (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	cc := &clientConn{
		c:       c,
		conn:    nc,
		bw:      bufio.NewWriterSize(nc, 4096),
		pending: make(map[uint64]chan frame),
		stmtIDs: make(map[*Stmt]uint32),
	}
	go cc.readLoop()
	payload := appendString(appendString([]byte{ProtoVersion}, c.cfg.Database), c.cfg.Token)
	f, err := cc.roundTrip(MsgHello, payload)
	if err != nil {
		cc.close()
		return nil, err
	}
	switch f.typ {
	case MsgWelcome:
		return cc, nil
	case MsgError:
		cc.close()
		e, derr := decodeError(f.payload)
		if derr != nil {
			return nil, derr
		}
		return nil, e
	default:
		cc.close()
		return nil, fmt.Errorf("%w: unexpected handshake reply type 0x%02x", errProtocol, f.typ)
	}
}

// sharedConn returns a live multiplexed connection, round-robin across the
// pool, redialing dead slots.
func (c *Client) sharedConn() (*clientConn, error) {
	slot := int(atomic.AddUint64(&c.rr, 1) % uint64(c.cfg.PoolSize))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if cc := c.shared[slot]; cc != nil && !cc.dead() {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cc.quit()
		return nil, ErrClientClosed
	}
	if old := c.shared[slot]; old != nil && !old.dead() {
		// Another goroutine repaired the slot first; use theirs.
		c.mu.Unlock()
		cc.quit()
		return old, nil
	}
	c.shared[slot] = cc
	c.mu.Unlock()
	return cc, nil
}

// txConn checks a dedicated connection out for a transaction.
func (c *Client) txConn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	for n := len(c.txIdle); n > 0; n = len(c.txIdle) {
		cc := c.txIdle[n-1]
		c.txIdle = c.txIdle[:n-1]
		if !cc.dead() {
			c.mu.Unlock()
			return cc, nil
		}
		cc.close()
	}
	c.mu.Unlock()
	return c.dial()
}

// putTxConn returns a transaction connection to the idle list.
func (c *Client) putTxConn(cc *clientConn) {
	if cc.dead() {
		cc.close()
		return
	}
	c.mu.Lock()
	if c.closed || len(c.txIdle) >= c.cfg.PoolSize {
		c.mu.Unlock()
		cc.quit()
		return
	}
	c.txIdle = append(c.txIdle, cc)
	c.mu.Unlock()
}

// traceStart makes the head-sampling decision for one client call. A
// sampled call mints a fresh trace with the client span as its root; the
// returned context travels in the request frame so every server-side span
// links under it.
func (c *Client) traceStart() obs.SpanContext {
	if c.sampler == nil || !c.sampler.Sample(c.cfg.Database) {
		return obs.SpanContext{}
	}
	return obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewTraceID(), Sampled: true}
}

// traceFinish records the completed client root span.
func (c *Client) traceFinish(tc obs.SpanContext, start time.Time, name, detail string) {
	if !tc.Traced() {
		return
	}
	c.spans.Record(obs.Span{
		TraceID:  tc.TraceID,
		SpanID:   tc.SpanID,
		Scope:    "client",
		Name:     name,
		DB:       c.cfg.Database,
		Start:    start,
		Duration: time.Since(start),
		Detail:   detail,
	})
}

// Exec runs one statement in its own transaction (autocommit), retrying
// retryable errors with exponential backoff — the same contract as the
// in-process sdp.Conn.Exec plus the retry loop a remote client needs.
func (c *Client) Exec(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	tc := c.traceStart()
	start := time.Now()
	res, err := c.withRetry(isReadSQL(sql), func(cc *clientConn) (*sqldb.Result, error) {
		payload, err := appendParams(appendString(nil, sql), params)
		if err != nil {
			return nil, err
		}
		return cc.execFrame(MsgQuery, appendTraceContext(payload, tc))
	})
	c.traceFinish(tc, start, "query", sql)
	return res, err
}

// Query is Exec for SELECT statements; provided for readability.
func (c *Client) Query(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return c.Exec(sql, params...)
}

// Stmt is a client-side prepared statement. It is prepared lazily on each
// pooled connection the first time it executes there, so one Stmt is valid
// across the whole pool.
type Stmt struct {
	c    *Client
	sql  string
	read bool
}

// Prepare interns a prepared statement for sql. Preparation on the server
// happens lazily per connection; errors in the SQL text surface on first
// execution.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if s, ok := c.stmts[sql]; ok {
		return s, nil
	}
	s := &Stmt{c: c, sql: sql, read: isReadSQL(sql)}
	c.stmts[sql] = s
	return s, nil
}

// Exec runs the prepared statement in its own transaction (autocommit)
// with retry, sending only the statement ID and parameters — no SQL text,
// no server-side re-parse.
func (s *Stmt) Exec(params ...sqldb.Value) (*sqldb.Result, error) {
	tc := s.c.traceStart()
	start := time.Now()
	res, err := s.c.withRetry(s.read, func(cc *clientConn) (*sqldb.Result, error) {
		return cc.execPrepared(s, params, tc)
	})
	s.c.traceFinish(tc, start, "exec", s.sql)
	return res, err
}

// isReadSQL reports whether a statement is safe to re-send after an
// ambiguous connection failure: reads are idempotent, writes are not (the
// first send may have committed).
func isReadSQL(sql string) bool {
	head := strings.ToUpper(strings.TrimSpace(sql))
	return strings.HasPrefix(head, "SELECT") || strings.HasPrefix(head, "EXPLAIN")
}

// withRetry picks a shared connection, runs fn, and retries retryable wire
// errors. A server-reported retryable error means the transaction was
// rolled back, so any statement may retry; a dead connection is an
// ambiguous outcome and only reads re-send.
func (c *Client) withRetry(read bool, fn func(cc *clientConn) (*sqldb.Result, error)) (*sqldb.Result, error) {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.RetryLimit; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		cc, err := c.sharedConn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		res, err := fn(cc)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if IsRetryable(err) {
			continue
		}
		if errors.Is(err, errConnDead) && read {
			continue
		}
		return nil, err
	}
	return nil, lastErr
}

// Tx is an explicit transaction pinned to one dedicated connection.
type Tx struct {
	c    *Client
	cc   *clientConn
	done bool
}

// Begin opens an explicit transaction. The transaction owns its connection
// until Commit or Rollback.
func (c *Client) Begin() (*Tx, error) {
	cc, err := c.txConn()
	if err != nil {
		return nil, err
	}
	if _, err := cc.execFrame(MsgBegin, nil); err != nil {
		c.putTxConn(cc)
		return nil, err
	}
	return &Tx{c: c, cc: cc}, nil
}

// Exec runs one statement inside the transaction.
func (t *Tx) Exec(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	if t.done {
		return nil, sqldb.ErrTxnDone
	}
	tc := t.c.traceStart()
	start := time.Now()
	payload, err := appendParams(appendString(nil, sql), params)
	if err != nil {
		return nil, err
	}
	res, err := t.cc.execFrame(MsgQuery, appendTraceContext(payload, tc))
	t.c.traceFinish(tc, start, "query", sql)
	return res, err
}

// Query is Exec for SELECT statements.
func (t *Tx) Query(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	return t.Exec(sql, params...)
}

// ExecPrepared runs a prepared statement inside the transaction.
func (t *Tx) ExecPrepared(s *Stmt, params ...sqldb.Value) (*sqldb.Result, error) {
	if t.done {
		return nil, sqldb.ErrTxnDone
	}
	tc := t.c.traceStart()
	start := time.Now()
	res, err := t.cc.execPrepared(s, params, tc)
	t.c.traceFinish(tc, start, "exec", s.sql)
	return res, err
}

// Commit commits the transaction and returns the connection to the pool.
func (t *Tx) Commit() error { return t.finish(MsgCommit) }

// Rollback aborts the transaction and returns the connection to the pool.
func (t *Tx) Rollback() error { return t.finish(MsgRollback) }

func (t *Tx) finish(typ byte) error {
	if t.done {
		return sqldb.ErrTxnDone
	}
	t.done = true
	_, err := t.cc.execFrame(typ, nil)
	if err != nil {
		// When a statement error already aborted the transaction
		// server-side, the session has no open transaction left; a client
		// Rollback finding that state has succeeded, not failed.
		var we *Error
		if typ == MsgRollback && errors.As(err, &we) && we.Code == ErrCodeTxnState {
			err = nil
		}
	}
	t.c.putTxConn(t.cc)
	return err
}

// clientConn is one physical connection. Requests are written under a
// mutex with a per-connection sequence number; a reader goroutine routes
// responses to waiters by sequence ID, so any number of goroutines can
// pipeline requests over the same connection and receive their answers
// out of send order.
type clientConn struct {
	c    *Client
	conn net.Conn

	wmu sync.Mutex // serialises frame writes
	bw  *bufio.Writer
	seq uint64

	pmu     sync.Mutex
	pending map[uint64]chan frame
	err     error // set once the connection is dead

	smu     sync.Mutex
	stmtIDs map[*Stmt]uint32 // server-side IDs, lazily prepared
}

func (cc *clientConn) dead() bool {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	return cc.err != nil
}

// readLoop routes response frames to their waiters until the connection
// dies; then it fails every pending call.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.conn, 4096)
	for {
		f, _, err := readFrame(br)
		if err != nil {
			cc.fail(fmt.Errorf("%w: %v", errConnDead, err))
			return
		}
		if f.typ == MsgBye && f.seq == 0 {
			// Unsolicited goodbye: the server is draining.
			cc.fail(fmt.Errorf("%w: %v", errConnDead, ErrServerShutdown))
			return
		}
		cc.pmu.Lock()
		ch, ok := cc.pending[f.seq]
		if ok {
			delete(cc.pending, f.seq)
		}
		cc.pmu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// fail marks the connection dead and wakes all waiters.
func (cc *clientConn) fail(err error) {
	cc.pmu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	pending := cc.pending
	cc.pending = make(map[uint64]chan frame)
	cc.pmu.Unlock()
	_ = cc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

func (cc *clientConn) close() { cc.fail(errConnDead) }

// quit sends a best-effort MsgQuit then closes.
func (cc *clientConn) quit() {
	cc.wmu.Lock()
	cc.seq++
	_, _ = writeFrame(cc.bw, MsgQuit, cc.seq, nil)
	_ = cc.bw.Flush()
	cc.wmu.Unlock()
	cc.close()
}

// roundTrip sends one frame and waits (under the call timeout) for the
// response with the same sequence ID.
func (cc *clientConn) roundTrip(typ byte, payload []byte) (frame, error) {
	ch := make(chan frame, 1)

	cc.pmu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.pmu.Unlock()
		return frame{}, err
	}
	cc.pmu.Unlock()

	cc.wmu.Lock()
	cc.seq++
	seq := cc.seq
	cc.pmu.Lock()
	cc.pending[seq] = ch
	cc.pmu.Unlock()
	_, werr := writeFrame(cc.bw, typ, seq, payload)
	if werr == nil {
		werr = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	if werr != nil {
		cc.fail(fmt.Errorf("%w: %v", errConnDead, werr))
		return frame{}, cc.connErr()
	}

	timeout := cc.c.cfg.CallTimeout
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			return frame{}, cc.connErr()
		}
		return f, nil
	case <-timer.C:
		// The response never came inside the deadline: the connection is
		// unusable (its stream position is unknown). Kill it; the waiter
		// map entry is cleared by fail.
		cc.fail(fmt.Errorf("%w: call timed out after %v", errConnDead, timeout))
		return frame{}, cc.connErr()
	}
}

func (cc *clientConn) connErr() error {
	cc.pmu.Lock()
	defer cc.pmu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	return errConnDead
}

// execFrame round-trips a request expecting MsgResult.
func (cc *clientConn) execFrame(typ byte, payload []byte) (*sqldb.Result, error) {
	f, err := cc.roundTrip(typ, payload)
	if err != nil {
		return nil, err
	}
	return decodeExecReply(f)
}

// execPrepared executes a Stmt on this connection, preparing it here first
// if this connection has not seen it yet.
func (cc *clientConn) execPrepared(s *Stmt, params []sqldb.Value, tc obs.SpanContext) (*sqldb.Result, error) {
	id, err := cc.stmtID(s)
	if err != nil {
		return nil, err
	}
	payload, err := appendParams(appendU32(nil, id), params)
	if err != nil {
		return nil, err
	}
	return cc.execFrame(MsgExec, appendTraceContext(payload, tc))
}

// stmtID returns the server-side ID of s on this connection, preparing it
// on first use.
func (cc *clientConn) stmtID(s *Stmt) (uint32, error) {
	cc.smu.Lock()
	id, ok := cc.stmtIDs[s]
	cc.smu.Unlock()
	if ok {
		return id, nil
	}
	f, err := cc.roundTrip(MsgPrepare, appendString(nil, s.sql))
	if err != nil {
		return 0, err
	}
	switch f.typ {
	case MsgStmt:
		r := &reader{buf: f.payload}
		id = r.u32()
		if err := r.done(); err != nil {
			return 0, err
		}
		cc.smu.Lock()
		cc.stmtIDs[s] = id
		cc.smu.Unlock()
		return id, nil
	case MsgError:
		e, derr := decodeError(f.payload)
		if derr != nil {
			return 0, derr
		}
		return 0, e
	default:
		return 0, fmt.Errorf("%w: unexpected prepare reply type 0x%02x", errProtocol, f.typ)
	}
}

// decodeExecReply turns a response frame into a result or error.
func decodeExecReply(f frame) (*sqldb.Result, error) {
	switch f.typ {
	case MsgResult:
		return decodeResult(f.payload)
	case MsgError:
		e, derr := decodeError(f.payload)
		if derr != nil {
			return nil, derr
		}
		return nil, e
	default:
		return nil, fmt.Errorf("%w: unexpected reply type 0x%02x", errProtocol, f.typ)
	}
}
