package experiments

import (
	"os"
	"strconv"
	"testing"
)

// TestChaosQuick runs one short chaos soak — TPC-W traffic under randomized
// network faults, partitions, and machine crashes — and fails on any
// invariant violation (serialization-graph cycle, replica divergence, leaked
// locks, or a fatal error surfaced to a client). The seed comes from
// SDP_CHAOS_SEED so the nightly soak can sweep a seed matrix; a failing seed
// reproduces the exact fault schedule.
func TestChaosQuick(t *testing.T) {
	seed := int64(1)
	if v := os.Getenv("SDP_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad SDP_CHAOS_SEED %q: %v", v, err)
		}
		seed = n
	}
	rep, err := RunChaos(ChaosConfig{Seed: seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() || !rep.Passed() {
		rep.WriteText(os.Stderr)
	}
	if !rep.Passed() {
		t.Fatalf("chaos seed %d: %d invariant violations", seed, len(rep.Violations))
	}
}
