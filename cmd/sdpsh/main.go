// Command sdpsh is an interactive SQL shell against the data platform. By
// default it boots an in-process colo with a configurable number of
// machines, lets you create databases with SLAs, run SQL, and inject
// machine failures to watch recovery — a sandbox for the whole system.
//
//	sdpsh -machines 6
//
// With -listen it additionally serves the wire protocol (PROTOCOL.md), so
// other processes can connect; with -connect it is a pure network client
// of such a server and boots nothing locally:
//
//	sdpsh -machines 6 -listen 127.0.0.1:8346     # server + local shell
//	sdpsh -connect 127.0.0.1:8346 -db app1       # remote shell
//	sdpsh -connect ... -db app1 -trace           # remote shell, every
//	                                             # statement traced end to end
//
// Shell commands (everything else is SQL sent to the current database):
//
//	\create <db> [sizeMB] [tps]   create a database with an SLA
//	\use <db>                     switch the current database
//	\dbs                          list databases
//	\machines                     list machines and their databases
//	\fail <machine>               fail a machine for good and re-replicate
//	\crash <machine>              fail a machine that will come back
//	\restart <machine>            restart a crashed machine: log replay + rejoin
//	\checkpoint                   fuzzy-checkpoint every machine's log
//	\migrate <db> <from> <to>     move a replica between machines
//	\rebalance                    spread load by migrating replicas
//	\stats                        platform counters
//	\leader                       controller replica status (needs -controllers)
//	\killleader                   kill the leader controller and watch failover
//	\revivectl                    restart killed controller replicas
//	\quit
//
// BEGIN starts an interactive transaction; statements then run inside it
// until COMMIT or ROLLBACK.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sdp"
	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/wire"
)

func main() {
	machines := flag.Int("machines", 6, "free machines in the colo")
	durable := flag.Bool("wal", true, "write-ahead logging: group commit, \\crash/\\restart recovery")
	controllers := flag.Int("controllers", 0, "replicate the cluster controller across this many consensus replicas (3-5); enables \\leader and \\killleader")
	listen := flag.String("listen", "", "also serve the wire protocol on this address (e.g. 127.0.0.1:8346)")
	connect := flag.String("connect", "", "connect to a wire server at this address instead of booting a platform")
	dbFlag := flag.String("db", "", "database to bind the -connect session to")
	token := flag.String("token", "", "auth token for -connect")
	traced := flag.Bool("trace", false, "sample every -connect statement for distributed tracing and print its trace ID")
	flag.Parse()

	if *connect != "" {
		remoteShell(*connect, *dbFlag, *token, *traced)
		return
	}

	cfg := sdp.Config{ClusterSize: 4, Listen: *listen, Controllers: *controllers}
	if *durable {
		cfg.WAL = &sdp.WALConfig{Compact: true}
	}
	p := sdp.New(cfg)
	west := p.AddColo("local", "local", *machines)
	if *listen != "" {
		srv, err := p.ServeWire()
		if err != nil {
			fmt.Println("listen error:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("wire server on %s — connect with: sdpsh -connect %s -db <db>\n", srv.Addr(), srv.Addr())
	}

	fmt.Printf("sdp shell — colo %q with %d machines. \\create <db> to begin, \\quit to exit.\n",
		west.Name(), *machines)

	var current *sdp.Conn
	var tx *sdp.Tx
	currentName := ""
	scanner := bufio.NewScanner(os.Stdin)
	prompt := func() {
		switch {
		case currentName == "":
			fmt.Print("sdp> ")
		case tx != nil:
			fmt.Printf("sdp:%s*> ", currentName)
		default:
			fmt.Printf("sdp:%s> ", currentName)
		}
	}
	for prompt(); scanner.Scan(); prompt() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if tx != nil {
				fmt.Println("finish the open transaction first (COMMIT or ROLLBACK)")
				continue
			}
			if !command(p, line, &current, &currentName) {
				return
			}
			continue
		}
		if current == nil {
			fmt.Println("no database selected; \\create <db> or \\use <db> first")
			continue
		}
		switch strings.ToUpper(strings.TrimSuffix(line, ";")) {
		case "BEGIN":
			if tx != nil {
				fmt.Println("transaction already open")
				continue
			}
			t, err := current.Begin()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			tx = t
			fmt.Println("transaction started")
			continue
		case "COMMIT":
			if tx == nil {
				fmt.Println("no open transaction")
				continue
			}
			if err := tx.Commit(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("committed")
			}
			tx = nil
			continue
		case "ROLLBACK":
			if tx == nil {
				fmt.Println("no open transaction")
				continue
			}
			if err := tx.Rollback(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("rolled back")
			}
			tx = nil
			continue
		}
		var res *sdp.Result
		var err error
		if tx != nil {
			res, err = tx.Exec(line)
		} else {
			res, err = current.Exec(line)
		}
		if err != nil {
			fmt.Println("error:", err)
			if tx != nil && sdp.IsRetryable(err) {
				fmt.Println("transaction aborted; start a new one with BEGIN")
				tx = nil
			}
			continue
		}
		printResult(res)
	}
}

func command(p *sdp.Platform, line string, current **sdp.Conn, currentName *string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\create":
		if len(fields) < 2 {
			fmt.Println("usage: \\create <db> [sizeMB] [tps]")
			return true
		}
		sizeMB, tps := 300.0, 2.0
		if len(fields) > 2 {
			sizeMB, _ = strconv.ParseFloat(fields[2], 64)
		}
		if len(fields) > 3 {
			tps, _ = strconv.ParseFloat(fields[3], 64)
		}
		err := p.CreateDatabase(fields[1], sdp.SLA{SizeMB: sizeMB, MinTPS: tps, MaxRejectFraction: 0.001}, "local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		*current = p.Open(fields[1])
		*currentName = fields[1]
		fmt.Printf("created %s (%.0f MB, %.1f TPS) — now current\n", fields[1], sizeMB, tps)
	case "\\use":
		if len(fields) != 2 {
			fmt.Println("usage: \\use <db>")
			return true
		}
		*current = p.Open(fields[1])
		*currentName = fields[1]
	case "\\dbs":
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, db := range co.Databases() {
			cl, _ := co.Route(db)
			reps, _ := cl.Replicas(db)
			fmt.Printf("  %-20s replicas=%v\n", db, reps)
		}
	case "\\machines":
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, cl := range co.Clusters() {
			fmt.Printf("cluster %s:\n", cl.Name())
			for _, id := range cl.MachineIDs() {
				m, _ := cl.Machine(id)
				status := "up"
				if m.Failed() {
					status = "FAILED"
				}
				fmt.Printf("  %-12s %-6s dbs=%v used=%v\n", id, status, m.Engine().Databases(), m.Used())
			}
		}
		fmt.Printf("free pool: %d\n", co.FreeMachines())
	case "\\fail":
		if len(fields) != 2 {
			fmt.Println("usage: \\fail <machine>")
			return true
		}
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		report, err := co.FailMachine(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("recovered: %v", report.Recovered)
		if len(report.Failed) > 0 {
			fmt.Printf(", failed: %v", report.Failed)
		}
		fmt.Println()
	case "\\crash":
		if len(fields) != 2 {
			fmt.Println("usage: \\crash <machine>")
			return true
		}
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		affected, err := co.CrashMachine(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("crashed %s; affected databases %v run on one replica until \\restart\n", fields[1], affected)
	case "\\restart":
		if len(fields) != 2 {
			fmt.Println("usage: \\restart <machine>")
			return true
		}
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		stats, report, err := co.RestartMachine(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("restarted %s: replayed %d statements (checkpoint LSN %d, %d in doubt); rejoined %v",
			fields[1], stats.Applied, stats.CheckpointLSN, stats.InDoubt, report.Recovered)
		if len(report.Failed) > 0 {
			fmt.Printf(", failed: %v", report.Failed)
		}
		fmt.Println()
	case "\\checkpoint":
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, cl := range co.Clusters() {
			if err := cl.CheckpointMachines(); err != nil {
				fmt.Println("error:", err)
				return true
			}
			fmt.Printf("cluster %s: checkpointed\n", cl.Name())
		}
	case "\\migrate":
		if len(fields) != 4 {
			fmt.Println("usage: \\migrate <db> <from> <to>")
			return true
		}
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		cl, err := co.Route(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		if err := cl.MigrateReplica(fields[1], fields[2], fields[3]); err != nil {
			fmt.Println("error:", err)
			return true
		}
		reps, _ := cl.Replicas(fields[1])
		fmt.Printf("migrated; replicas now %v\n", reps)
	case "\\rebalance":
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, cl := range co.Clusters() {
			report, err := cl.Rebalance(16)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("cluster %s: %d moves, peak %.2f -> %.2f\n",
				cl.Name(), len(report.Moves), report.PeakBefore, report.PeakAfter)
			for _, m := range report.Moves {
				fmt.Printf("  moved %s: %s -> %s\n", m.DB, m.From, m.To)
			}
		}
	case "\\stats":
		co, err := p.System().Colo("local")
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, cl := range co.Clusters() {
			s := cl.Stats()
			fmt.Printf("cluster %s: committed=%d aborted=%d rejected=%d deadlocks=%d\n",
				cl.Name(), s.Committed, s.Aborted, s.Rejected, s.Deadlocks)
		}
	case "\\leader":
		forEachReplicatedCluster(p, func(cl *core.Cluster) {
			leader, term := cl.LeaderController()
			if leader == "" {
				fmt.Printf("cluster %s: leaderless (election in progress or quorum lost)\n", cl.Name())
			} else {
				fmt.Printf("cluster %s: leader %s, term %d\n", cl.Name(), leader, term)
			}
			for _, st := range cl.ControllerStatus() {
				role := "follower"
				switch {
				case st.Stopped:
					role = "STOPPED"
				case st.Leader:
					role = "leader"
				}
				fmt.Printf("  %-16s %-8s term=%d applied=%d\n", st.ID, role, st.Term, st.Applied)
			}
		})
	case "\\killleader":
		forEachReplicatedCluster(p, func(cl *core.Cluster) {
			killed, err := cl.KillLeaderController()
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("cluster %s: killed %s; waiting for the survivors to elect...\n", cl.Name(), killed)
			if err := cl.WaitControllerSettled(5 * time.Second); err != nil {
				fmt.Println("error:", err)
				return
			}
			leader, term := cl.LeaderController()
			fmt.Printf("cluster %s: new leader %s, term %d (\\revivectl brings %s back)\n",
				cl.Name(), leader, term, killed)
		})
	case "\\revivectl":
		forEachReplicatedCluster(p, func(cl *core.Cluster) {
			n := cl.RestartControllers()
			fmt.Printf("cluster %s: restarted %d controller replica(s)\n", cl.Name(), n)
		})
	default:
		fmt.Println("unknown command", fields[0])
	}
	return true
}

// forEachReplicatedCluster runs fn on every cluster whose control plane is
// replicated, telling the user why nothing happened otherwise (no cluster
// formed yet, or the shell was started without -controllers).
func forEachReplicatedCluster(p *sdp.Platform, fn func(cl *core.Cluster)) {
	co, err := p.System().Colo("local")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	clusters := co.Clusters()
	if len(clusters) == 0 {
		fmt.Println("no clusters formed yet; \\create <db> first")
		return
	}
	any := false
	for _, cl := range clusters {
		if len(cl.ControllerIDs()) == 0 {
			continue
		}
		any = true
		fn(cl)
	}
	if !any {
		fmt.Println("control plane is not replicated; start the shell with -controllers 3")
	}
}

// remoteShell runs the shell as a pure wire-protocol client: SQL and
// BEGIN/COMMIT/ROLLBACK only, since admin operations (\create, \fail, …)
// belong to the process hosting the platform. With traced, every statement
// carries a sampled trace context over the wire and its trace ID is printed
// after the result — paste it into the server's /tracez?trace=<id> to see
// the full cross-process span tree.
func remoteShell(addr, db, token string, traced bool) {
	if db == "" {
		fmt.Println("-connect requires -db <database>")
		os.Exit(1)
	}
	ccfg := wire.ClientConfig{Addr: addr, Database: db, Token: token}
	var reg *obs.Registry
	if traced {
		reg = obs.NewRegistry()
		ccfg.Metrics = reg
		ccfg.TraceSample = 1
	}
	client, err := wire.Dial(ccfg)
	if err != nil {
		fmt.Println("connect error:", err)
		os.Exit(1)
	}
	defer client.Close()
	if traced {
		fmt.Printf("connected to %s, database %s, tracing on. SQL only; \\quit to exit.\n", addr, db)
	} else {
		fmt.Printf("connected to %s, database %s. SQL only; \\quit to exit.\n", addr, db)
	}
	lastTrace := func() {
		if reg == nil {
			return
		}
		spans := reg.Spans().Spans()
		for i := len(spans) - 1; i >= 0; i-- {
			if spans[i].Scope == "client" {
				fmt.Printf("trace %s (server: /tracez?trace=%s&format=text)\n",
					obs.TraceIDString(spans[i].TraceID), obs.TraceIDString(spans[i].TraceID))
				return
			}
		}
	}

	var tx *wire.Tx
	scanner := bufio.NewScanner(os.Stdin)
	prompt := func() {
		if tx != nil {
			fmt.Printf("sdp:%s*> ", db)
		} else {
			fmt.Printf("sdp:%s> ", db)
		}
	}
	for prompt(); scanner.Scan(); prompt() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "\\quit" || line == "\\q" {
			return
		}
		switch strings.ToUpper(strings.TrimSuffix(line, ";")) {
		case "BEGIN":
			if tx != nil {
				fmt.Println("transaction already open")
				continue
			}
			t, err := client.Begin()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			tx = t
			fmt.Println("transaction started")
			continue
		case "COMMIT":
			if tx == nil {
				fmt.Println("no open transaction")
				continue
			}
			if err := tx.Commit(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("committed")
			}
			tx = nil
			continue
		case "ROLLBACK":
			if tx == nil {
				fmt.Println("no open transaction")
				continue
			}
			if err := tx.Rollback(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("rolled back")
			}
			tx = nil
			continue
		}
		var res *sdp.Result
		if tx != nil {
			res, err = tx.Exec(line)
		} else {
			res, err = client.Exec(line)
		}
		if err != nil {
			fmt.Println("error:", err)
			if tx != nil && wire.IsRetryable(err) {
				fmt.Println("transaction aborted; start a new one with BEGIN")
				tx = nil
			}
			continue
		}
		printResult(res)
		lastTrace()
	}
}

func printResult(res *sdp.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
