// Quickstart: create a database with an SLA, connect, and run SQL with
// ACID transactions. The platform transparently replicates the database
// over two machines and coordinates every write with two-phase commit.
package main

import (
	"fmt"
	"log"

	"sdp"
)

func main() {
	// A platform with one colo ("west") holding 4 free commodity machines.
	p := sdp.New(sdp.Config{ClusterSize: 4})
	p.AddColo("west", "us-west", 4)

	// The paper's API has two calls. Call one: create a database with an
	// SLA. Placement, replication and fault tolerance are automatic.
	err := p.CreateDatabase("bookstore", sdp.SLA{
		SizeMB:            300,
		MinTPS:            5,
		MaxRejectFraction: 0.001,
	}, "west")
	if err != nil {
		log.Fatal(err)
	}

	// Call two: connect and use SQL.
	conn := p.Open("bookstore")
	mustExec(conn, `CREATE TABLE book (
		id INT PRIMARY KEY,
		title TEXT NOT NULL,
		price FLOAT,
		stock INT NOT NULL
	)`)
	mustExec(conn, `INSERT INTO book VALUES
		(1, 'The Art of Computer Programming', 199.99, 3),
		(2, 'A Relational Model of Data', 10.50, 12),
		(3, 'Transaction Processing', 89.00, 5)`)

	// An ACID transaction: buy a book (decrement stock, record the sale).
	mustExec(conn, "CREATE TABLE sale (id INT PRIMARY KEY, book_id INT, price FLOAT)")
	tx, err := conn.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE book SET stock = stock - 1 WHERE id = ?", sdp.Int(1)); err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO sale VALUES (?, ?, ?)", sdp.Int(1), sdp.Int(1), sdp.Float(199.99)); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Joins and aggregates work, because every machine runs a full SQL
	// engine — the platform never dumbs the query language down.
	res, err := conn.Query(`
		SELECT b.title, COUNT(*) AS sales, SUM(s.price) AS revenue
		FROM sale s JOIN book b ON s.book_id = b.id
		GROUP BY b.title ORDER BY revenue DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sales report:")
	for _, row := range res.Rows {
		fmt.Printf("  %-40s %d sale(s), $%.2f\n", row[0].Str, row[1].Int, row[2].Float)
	}

	res, err = conn.Query("SELECT stock FROM book WHERE id = 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remaining stock of book 1: %d\n", res.Rows[0][0].Int)
}

func mustExec(conn *sdp.Conn, sql string) {
	if _, err := conn.Exec(sql); err != nil {
		log.Fatalf("%s: %v", sql[:40], err)
	}
}
