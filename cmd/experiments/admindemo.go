package main

import (
	"fmt"
	"os"
	"time"

	"sdp"
	"sdp/internal/core"
	"sdp/internal/tpcw"
)

// connDB adapts an sdp.Conn to tpcw.DB so the TPC-W client can drive the
// full platform stack (system controller → colo → cluster → machines).
type connDB struct{ conn *sdp.Conn }

// Begin opens one platform transaction for the TPC-W client.
func (d connDB) Begin() (tpcw.Txn, error) { return d.conn.Begin() }

// classifyErr maps platform errors onto the TPC-W client's accounting
// classes, counting Algorithm 1 rejections separately.
func classifyErr(err error) tpcw.ErrorClass {
	if core.IsRejection(err) {
		return tpcw.ClassRejected
	}
	if core.IsRetryable(err) {
		return tpcw.ClassAborted
	}
	return tpcw.ClassFatal
}

// runAdminDemo boots a full platform with the admin plane listening on addr,
// then drives a TPC-W shopping mix against a database whose SLA carries a
// deliberately unattainable mean-latency bound, so /metrics serves the
// platform families plus non-zero sla_violations_total and /slaz returns a
// non-empty violation report. The server listens before any data loads, so
// `make admin-demo` can curl it as soon as the process is up.
func runAdminDemo(addr string, dur time.Duration, seed int64, slaReport bool) error {
	plat := sdp.New(sdp.Config{
		Replicas:    2,
		ClusterSize: 3,
		SLAWindow:   100 * time.Millisecond,
	})
	plat.AddColo("colo1", "us-east", 4)

	srv, err := plat.ServeAdmin(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("admin plane listening on http://%s/ (metrics, healthz, readyz, tracez, slaz, pprof)\n", srv.Addr())

	// An SLA no real system meets: mean commit latency under a nanosecond.
	// Every busy window violates, which is the point of the demo.
	if err := plat.CreateDatabase("shop", sdp.SLA{
		SizeMB:            1,
		MinTPS:            5,
		MaxRejectFraction: 0.1,
		MaxLatency:        time.Nanosecond,
	}, "colo1"); err != nil {
		return err
	}

	db := connDB{conn: plat.Open("shop")}
	scale := tpcw.SmallScale(seed)
	if err := tpcw.Load(db, scale); err != nil {
		return err
	}
	workload := tpcw.NewWorkload(scale)

	const concurrency = 4
	stop := make(chan struct{})
	results := make(chan tpcw.Stats, concurrency)
	for s := 0; s < concurrency; s++ {
		client := &tpcw.Client{DB: db, Mix: tpcw.ShoppingMix, Workload: workload, Classify: classifyErr}
		go func(seed int64) {
			results <- client.RunSession(seed, stop)
		}(seed + int64(s)*104729)
	}
	time.Sleep(dur)
	close(stop)
	var total tpcw.Stats
	for s := 0; s < concurrency; s++ {
		st := <-results
		total.Committed += st.Committed
		total.Aborted += st.Aborted
		total.Rejected += st.Rejected
	}
	fmt.Printf("workload done: %d committed, %d aborted, %d rejected over %s\n",
		total.Committed, total.Aborted, total.Rejected, dur)

	if slaReport {
		plat.SLAReport().WriteText(os.Stdout)
	}
	return nil
}
