package wire_test

import (
	"strings"
	"testing"

	"sdp"
	"sdp/internal/obs"
	"sdp/internal/wire"
)

// traceTree indexes one trace's spans for structural assertions.
type traceTree struct {
	spans  []obs.Span
	byID   map[uint64]obs.Span
	scopes map[string]int
}

func newTraceTree(spans []obs.Span) traceTree {
	tt := traceTree{spans: spans, byID: map[uint64]obs.Span{}, scopes: map[string]int{}}
	for _, s := range spans {
		tt.byID[s.SpanID] = s
		tt.scopes[s.Scope+":"+s.Name]++
	}
	return tt
}

// find returns the first span with the given scope and name.
func (tt traceTree) find(t *testing.T, scope, name string) obs.Span {
	t.Helper()
	for _, s := range tt.spans {
		if s.Scope == scope && s.Name == name {
			return s
		}
	}
	t.Fatalf("trace has no %s:%s span; got %v", scope, name, tt.scopes)
	return obs.Span{}
}

// TestTracePropagationAcrossWire drives prepared statements through a real
// socket with client-side sampling on and server-side head sampling OFF,
// and asserts the resulting span tree crosses the process boundary: the
// client root, the server's wire span, the system transaction span, the
// core 2PC phases, the WAL group-commit flush, and the per-statement sql
// span all share one trace ID and link parent-to-child without gaps. Run
// under -race this also exercises every trace-propagation handoff (wire
// session goroutine, replica-session ops queues, WAL flush) concurrently
// with the platform's background machinery.
func TestTracePropagationAcrossWire(t *testing.T) {
	p := sdp.New(sdp.Config{
		Listen:      "127.0.0.1:0",
		WAL:         &sdp.WALConfig{},
		TraceSample: 0, // server head sampling off: the client decision must carry
	})
	p.AddColo("local", "local", 4)
	if err := p.CreateDatabase("app", sdp.SLA{SizeMB: 1, MinTPS: 1, MaxRejectFraction: 1}, "local"); err != nil {
		t.Fatal(err)
	}
	srv, err := p.ServeWire()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := p.Metrics()
	cl, err := wire.Dial(wire.ClientConfig{
		Addr:        srv.Addr(),
		Database:    "app",
		Metrics:     reg, // shared registry: client and server spans land in one ring
		TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("INSERT INTO t VALUES (1, 'hello')"); err != nil {
		t.Fatal(err)
	}

	// A prepared write commits through full 2PC with a WAL flush per
	// participant (read-only transactions commit 1PC and never touch the
	// log, so only a write exercises the deepest spans).
	upd, err := cl.Prepare("UPDATE t SET v = ? WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := upd.Exec(sdp.Text("traced"), sdp.Int(1)); err != nil {
		t.Fatal(err)
	}
	wtid := lastClientTrace(t, reg, "UPDATE")
	wt := newTraceTree(reg.Spans().ByTrace(wtid))

	root := wt.find(t, "client", "exec")
	if root.Parent != 0 {
		t.Fatalf("client root span has parent %x, want 0", root.Parent)
	}
	wireSpan := wt.find(t, "wire", "exec")
	if wireSpan.Parent != root.SpanID {
		t.Fatalf("wire span parent = %x, want client root %x", wireSpan.Parent, root.SpanID)
	}
	sys := wt.find(t, "system", "txn")
	if sys.Parent != wireSpan.SpanID {
		t.Fatalf("system txn span parent = %x, want wire span %x", sys.Parent, wireSpan.SpanID)
	}
	prep := wt.find(t, "core", "2pc_prepare")
	if prep.Parent != sys.SpanID {
		t.Fatalf("2pc_prepare parent = %x, want system span %x", prep.Parent, sys.SpanID)
	}
	commit := wt.find(t, "core", "2pc_commit")
	if commit.Parent != sys.SpanID {
		t.Fatalf("2pc_commit parent = %x, want system span %x", commit.Parent, sys.SpanID)
	}
	flush := wt.find(t, "wal", "flush")
	if flush.Parent != commit.SpanID {
		t.Fatalf("wal flush parent = %x, want 2pc_commit %x", flush.Parent, commit.SpanID)
	}
	sqlSpan := wt.find(t, "sql", "update")
	if sqlSpan.Parent != sys.SpanID {
		t.Fatalf("sql span parent = %x, want system span %x", sqlSpan.Parent, sys.SpanID)
	}
	for _, s := range wt.spans {
		if s.TraceID != wtid {
			t.Fatalf("span %s:%s has trace %x, want %x", s.Scope, s.Name, s.TraceID, wtid)
		}
		if s.Parent != 0 {
			if _, ok := wt.byID[s.Parent]; !ok {
				t.Fatalf("span %s:%s parent %x not in trace", s.Scope, s.Name, s.Parent)
			}
		}
	}

	// A prepared read routes through the core read path instead of 2PC.
	sel, err := cl.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Exec(sdp.Int(1)); err != nil {
		t.Fatal(err)
	}
	rtid := lastClientTrace(t, reg, "SELECT")
	rt := newTraceTree(reg.Spans().ByTrace(rtid))
	rSys := rt.find(t, "system", "txn")
	read := rt.find(t, "core", "read")
	if read.Parent != rSys.SpanID {
		t.Fatalf("core read parent = %x, want system span %x", read.Parent, rSys.SpanID)
	}
	rt.find(t, "sql", "select")
	if n := rt.scopes["core:2pc_prepare"] + rt.scopes["wal:flush"]; n != 0 {
		t.Fatalf("read-only trace has %d write-path spans: %v", n, rt.scopes)
	}

	// The traced executions must have left exemplars on wire_exec_seconds
	// pointing at real trace IDs from this run.
	snap := reg.Snapshot()
	hs, ok := snap.Histogram("wire_exec_seconds")
	if !ok {
		t.Fatal("no wire_exec_seconds histogram in snapshot")
	}
	found := false
	for _, e := range hs.Exemplars {
		if e.TraceID == wtid || e.TraceID == rtid {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wire_exec_seconds exemplar references trace %x or %x (exemplars: %v)",
			wtid, rtid, hs.Exemplars)
	}
}

// lastClientTrace returns the trace ID of the most recent client root span
// whose statement contains the given SQL fragment.
func lastClientTrace(t *testing.T, reg *obs.Registry, frag string) uint64 {
	t.Helper()
	spans := reg.Spans().Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		s := spans[i]
		if s.Scope == "client" && s.Parent == 0 && strings.Contains(s.Detail, frag) {
			return s.TraceID
		}
	}
	t.Fatalf("no client root span matching %q", frag)
	return 0
}
