// Package obs is the platform's observability layer: a dependency-free
// metrics registry plus a lightweight structured trace facility. Every
// controller tier (cluster, colo, system) and the embedded DBMS feed one
// shared Registry, so a single Snapshot answers the paper's quantitative
// questions — 2PC outcome counts and phase latencies (Table 1, Figures 2–4),
// Algorithm 1 copy phases and rejected writes (Figures 8–9), First-Fit
// placement probes and machine utilization (Table 2, Algorithm 2) — without
// attaching a debugger to any layer.
//
// Design constraints, in order:
//
//  1. Hot-path instruments are wait-free: counters and histograms are plain
//     atomics, never a mutex, so instrumenting the 2PC commit path or the
//     buffer pool does not serialise the workload being measured.
//  2. Snapshots are consistent where it matters: counters that form ratios
//     (hits/misses) are packed into one word (Pair) so a concurrent reader
//     can never observe one side of the pair without the other.
//  3. Zero dependencies: stdlib only, importable from every layer including
//     internal/sqldb without cycles.
//
// Instruments are created through a Registry and identified by a family
// name plus optional label values (e.g. core_read_route_total{option=
// "option1"}). Creating the same family twice returns the same instrument,
// so packages may look instruments up lazily without coordination.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry holds named metric families and an event tracer. All methods are
// safe for concurrent use. Instrument lookups take the registry mutex, so
// callers on hot paths should resolve instruments once and keep the
// returned pointer; updates on the instruments themselves are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	vecs       map[string]*familyVec
	help       map[string]string
	hooks      []func()

	tracer *Tracer
	spans  *SpanRing
	slow   *SlowLog
	qstats *QueryStats
}

// familyVec is a labeled family: a map from joined label values to an
// instrument of one kind.
type familyVec struct {
	kind    string // "counter", "gauge", or "histogram"
	labels  []string
	buckets []float64 // histogram families only
	mu      sync.RWMutex
	byKey   map[string]any
}

// NewRegistry creates an empty registry with trace rings of the default
// capacity.
func NewRegistry() *Registry {
	return NewRegistrySized(DefaultTraceCapacity)
}

// NewRegistrySized creates an empty registry whose event tracer and span
// ring hold up to traceCap entries each (<= 0 selects
// DefaultTraceCapacity). The trace_* and slowlog_* meta-counters are
// registered eagerly so ring overflow is visible in every snapshot, even
// one taken before the first span is recorded.
func NewRegistrySized(traceCap int) *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		vecs:       make(map[string]*familyVec),
		help:       make(map[string]string),
	}
	dropped := r.Counter("trace_dropped_total",
		"Trace ring entries (events or spans) overwritten before being read out.")
	total := r.Counter("trace_spans_total",
		"Spans recorded into the registry's span ring.")
	recorded := r.Counter("slowlog_recorded_total",
		"Slow queries captured into the slow-query log.")
	r.tracer = NewTracer(traceCap)
	r.tracer.dropped = dropped
	r.spans = NewSpanRing(traceCap, total, dropped)
	r.slow = NewSlowLog(0, recorded)
	r.qstats = NewQueryStats()
	return r
}

// setHelp records a family's help string the first time it is seen.
func (r *Registry) setHelp(name, help string) {
	if _, ok := r.help[name]; !ok && help != "" {
		r.help[name] = help
	}
}

// Counter returns (creating if needed) the unlabeled counter family name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.checkFree(name, "counter")
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns (creating if needed) the unlabeled gauge family name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.checkFree(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns (creating if needed) the unlabeled histogram family
// name. buckets are the upper bounds of the histogram's buckets, in
// increasing order; nil selects LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		r.checkFree(name, "histogram")
		h = NewHistogram(buckets)
		r.histograms[name] = h
		r.setHelp(name, help)
	}
	return h
}

// CounterVec returns (creating if needed) a counter family labeled by the
// given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.vec(name, help, "counter", nil, labels)}
}

// GaugeVec returns (creating if needed) a gauge family labeled by the given
// label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.vec(name, help, "gauge", nil, labels)}
}

// HistogramVec returns (creating if needed) a histogram family labeled by
// the given label names. nil buckets selects LatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.vec(name, help, "histogram", buckets, labels)}
}

// vec returns (creating if needed) the labeled family name of a kind.
func (r *Registry) vec(name, help, kind string, buckets []float64, labels []string) *familyVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		r.checkFree(name, kind)
		v = &familyVec{kind: kind, labels: labels, buckets: buckets, byKey: make(map[string]any)}
		r.vecs[name] = v
		r.setHelp(name, help)
	} else if v.kind != kind {
		panic(fmt.Sprintf("obs: family %s is a %s vec, requested as %s vec", name, v.kind, kind))
	}
	return v
}

// checkFree panics if name is already registered as a different instrument
// shape — a programming error, caught loudly rather than silently aliased.
// Called with the registry mutex held.
func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: family %s already registered as counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: family %s already registered as gauge, requested as %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obs: family %s already registered as histogram, requested as %s", name, kind))
	}
	if v, ok := r.vecs[name]; ok {
		panic(fmt.Sprintf("obs: family %s already registered as %s vec, requested as %s", name, v.kind, kind))
	}
}

// OnSnapshot registers a hook run at the start of every Snapshot call.
// Layers use hooks to bridge externally-maintained statistics (e.g. each
// machine's engine counters) into registry gauges just in time, so derived
// values like hit rates are computed from one coherent pull.
func (r *Registry) OnSnapshot(hook func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, hook)
	r.mu.Unlock()
}

// Trace returns the registry's event tracer.
func (r *Registry) Trace() *Tracer { return r.tracer }

// Spans returns the registry's span ring.
func (r *Registry) Spans() *SpanRing { return r.spans }

// SlowLog returns the registry's slow-query log.
func (r *Registry) SlowLog() *SlowLog { return r.slow }

// QueryStats returns the registry's per-tenant query-stats accumulator.
func (r *Registry) QueryStats() *QueryStats { return r.qstats }

// Families returns every registered metric family name mapped to its kind
// ("counter", "gauge", "histogram"). Unlike Snapshot, a labeled family with
// no children yet still appears — this is the registration view, which is
// what documentation drift checks need.
func (r *Registry) Families() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.vecs))
	for name := range r.counters {
		out[name] = "counter"
	}
	for name := range r.gauges {
		out[name] = "gauge"
	}
	for name := range r.histograms {
		out[name] = "histogram"
	}
	for name, v := range r.vecs {
		out[name] = v.kind
	}
	return out
}

// TraceEvent records one span event on the registry's tracer; a
// convenience for instrumented code that holds only the registry.
func (r *Registry) TraceEvent(scope, id, phase, detail string) {
	r.tracer.Record(scope, id, phase, detail)
}

// sortedKeys returns the keys of a string-keyed map in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
