package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file defines the deterministic state machine the replicated control
// plane applies from the consensus log. The consensus domain holds exactly
// the controller decisions that must survive a controller crash: machine
// membership and liveness, each database's replica placement, read home and
// namespace epoch, and the begin/abort/complete lifecycle of Algorithm 1
// replica copies. Everything else the controller tracks — per-table write
// sequence counters, in-flight write drains, the statement cache, SLA
// reservations — is leader-local soft state that a new leader rebuilds or
// conservatively discards at failover (see controlplane.go).

// Control-plane command opcodes.
const (
	ctlOpAddMachine     = "add_machine"
	ctlOpFailMachine    = "fail_machine"
	ctlOpRestartMachine = "restart_machine"
	ctlOpCreateDB       = "create_db"
	ctlOpDropDB         = "drop_db"
	ctlOpCopyBegin      = "copy_begin"
	ctlOpCopyAbort      = "copy_abort"
	ctlOpCopyComplete   = "copy_complete"
	ctlOpSetReadHome    = "set_read_home"
	ctlOpRetireReplica  = "retire_replica"
)

// ctlCmd is one replicated control-plane command, JSON-encoded into the
// consensus log. Every command is idempotent: a proposal whose outcome was
// lost to a timeout can be re-proposed safely.
type ctlCmd struct {
	Op          string   `json:"op"`
	DB          string   `json:"db,omitempty"`
	Machine     string   `json:"machine,omitempty"`
	Replicas    []string `json:"replicas,omitempty"`
	Source      string   `json:"source,omitempty"`
	Target      string   `json:"target,omitempty"`
	WholeDB     bool     `json:"whole_db,omitempty"`
	Partitioned bool     `json:"partitioned,omitempty"`
}

// ctlDB is the replicated record of one database.
type ctlDB struct {
	// Replicas are the machines hosting the database, in join order.
	Replicas []string `json:"replicas"`
	// ReadHome is Option 1's designated read replica.
	ReadHome string `json:"read_home"`
	// Epoch is the namespace incarnation (see dbState.epoch).
	Epoch uint64 `json:"epoch"`
	// Partitioned marks a table-partitioned database, whose partition
	// layout is leader-local (replica copies are unsupported there).
	Partitioned bool `json:"partitioned,omitempty"`
	// Copy, when non-nil, records an Algorithm 1 copy in flight.
	Copy *ctlCopy `json:"copy,omitempty"`
}

// ctlCopy is the replicated record of an in-flight replica copy.
type ctlCopy struct {
	Source  string `json:"source"`
	Target  string `json:"target"`
	WholeDB bool   `json:"whole_db,omitempty"`
}

// ctlCreateResult is the Apply result of a create_db command, carrying the
// decisions the state machine made deterministically.
type ctlCreateResult struct {
	Epoch    uint64
	ReadHome string
}

// ctlState is the replicated controller state machine. It implements
// consensus.StateMachine; every controller replica holds one instance and
// applies the identical committed command sequence, so any replica can be
// promoted and reconstruct the cluster's control decisions.
type ctlState struct {
	mu sync.Mutex
	s  ctlStateData
}

// ctlStateData is the serializable body of ctlState (also its snapshot
// format).
type ctlStateData struct {
	// Machines lists registered machine IDs in registration order.
	Machines []string `json:"machines"`
	// Failed marks machines currently failed.
	Failed map[string]bool `json:"failed"`
	// DBs maps database name to its replicated record.
	DBs map[string]*ctlDB `json:"dbs"`
	// EpochSeq is the deterministic epoch counter.
	EpochSeq uint64 `json:"epoch_seq"`
	// HomeSeq rotates Option-1 read homes across create_db commands.
	HomeSeq uint64 `json:"home_seq"`
}

// newCtlState returns an empty control-plane state machine.
func newCtlState() *ctlState {
	return &ctlState{s: ctlStateData{
		Failed: make(map[string]bool),
		DBs:    make(map[string]*ctlDB),
	}}
}

// Apply applies one committed command. All mutations are deterministic
// functions of the command and current state (map iteration is sorted).
func (st *ctlState) Apply(index uint64, data []byte) any {
	var cmd ctlCmd
	if err := json.Unmarshal(data, &cmd); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	switch cmd.Op {
	case ctlOpAddMachine:
		if !contains(st.s.Machines, cmd.Machine) {
			st.s.Machines = append(st.s.Machines, cmd.Machine)
		}
		delete(st.s.Failed, cmd.Machine)
	case ctlOpFailMachine:
		st.s.Failed[cmd.Machine] = true
		for _, name := range st.dbNamesLocked() {
			db := st.s.DBs[name]
			for i, rid := range db.Replicas {
				if rid == cmd.Machine {
					db.Replicas = append(db.Replicas[:i], db.Replicas[i+1:]...)
					if db.ReadHome == cmd.Machine && len(db.Replicas) > 0 {
						db.ReadHome = db.Replicas[0]
					}
					break
				}
			}
			if cp := db.Copy; cp != nil && (cp.Source == cmd.Machine || cp.Target == cmd.Machine) {
				db.Copy = nil
			}
		}
	case ctlOpRestartMachine:
		delete(st.s.Failed, cmd.Machine)
	case ctlOpCreateDB:
		if db, ok := st.s.DBs[cmd.DB]; ok {
			// Idempotent re-apply of a retried proposal.
			return ctlCreateResult{Epoch: db.Epoch, ReadHome: db.ReadHome}
		}
		st.s.EpochSeq++
		home := ""
		if len(cmd.Replicas) > 0 {
			home = cmd.Replicas[int(st.s.HomeSeq)%len(cmd.Replicas)]
			st.s.HomeSeq++
		}
		st.s.DBs[cmd.DB] = &ctlDB{
			Replicas:    append([]string(nil), cmd.Replicas...),
			ReadHome:    home,
			Epoch:       st.s.EpochSeq,
			Partitioned: cmd.Partitioned,
		}
		return ctlCreateResult{Epoch: st.s.EpochSeq, ReadHome: home}
	case ctlOpDropDB:
		delete(st.s.DBs, cmd.DB)
	case ctlOpCopyBegin:
		if db, ok := st.s.DBs[cmd.DB]; ok {
			db.Copy = &ctlCopy{Source: cmd.Source, Target: cmd.Target, WholeDB: cmd.WholeDB}
		}
	case ctlOpCopyAbort:
		if db, ok := st.s.DBs[cmd.DB]; ok {
			db.Copy = nil
		}
	case ctlOpCopyComplete:
		if db, ok := st.s.DBs[cmd.DB]; ok {
			if db.Copy != nil && !contains(db.Replicas, db.Copy.Target) {
				db.Replicas = append(db.Replicas, db.Copy.Target)
			}
			db.Copy = nil
		}
	case ctlOpSetReadHome:
		if db, ok := st.s.DBs[cmd.DB]; ok && contains(db.Replicas, cmd.Machine) {
			db.ReadHome = cmd.Machine
		}
	case ctlOpRetireReplica:
		// Replica retirement (adaptive shrink, migration tail) must be
		// replicated: the retired machine's engine copy is dropped, so a
		// failover that resurrected the machine into the replica set from
		// an older record would route reads to a machine without the data.
		// Idempotent, and never drops the last replica — a retried retire
		// racing a machine failure must not empty the set.
		if db, ok := st.s.DBs[cmd.DB]; ok && len(db.Replicas) > 1 {
			for i, rid := range db.Replicas {
				if rid == cmd.Machine {
					db.Replicas = append(db.Replicas[:i], db.Replicas[i+1:]...)
					if db.ReadHome == cmd.Machine && len(db.Replicas) > 0 {
						db.ReadHome = db.Replicas[0]
					}
					break
				}
			}
		}
	}
	return nil
}

// Snapshot encodes the full state for log compaction.
func (st *ctlState) Snapshot() []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	data, _ := json.Marshal(&st.s)
	return data
}

// Restore replaces the state from a snapshot.
func (st *ctlState) Restore(data []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.s = ctlStateData{Failed: make(map[string]bool), DBs: make(map[string]*ctlDB)}
	_ = json.Unmarshal(data, &st.s)
	if st.s.Failed == nil {
		st.s.Failed = make(map[string]bool)
	}
	if st.s.DBs == nil {
		st.s.DBs = make(map[string]*ctlDB)
	}
}

// Fingerprint renders the state canonically, for convergence checks across
// controller replicas (chaos invariants, tests).
func (st *ctlState) Fingerprint() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "machines=%s;epoch=%d;home=%d", strings.Join(st.s.Machines, ","), st.s.EpochSeq, st.s.HomeSeq)
	failed := make([]string, 0, len(st.s.Failed))
	for id := range st.s.Failed {
		failed = append(failed, id)
	}
	sort.Strings(failed)
	fmt.Fprintf(&b, ";failed=%s", strings.Join(failed, ","))
	for _, name := range st.dbNamesLocked() {
		db := st.s.DBs[name]
		fmt.Fprintf(&b, ";db=%s{replicas=%s,home=%s,epoch=%d", name, strings.Join(db.Replicas, ","), db.ReadHome, db.Epoch)
		if db.Partitioned {
			b.WriteString(",partitioned")
		}
		if cp := db.Copy; cp != nil {
			fmt.Fprintf(&b, ",copy=%s->%s", cp.Source, cp.Target)
		}
		b.WriteString("}")
	}
	return b.String()
}

// view returns a deep copy of the state for failover reconciliation.
func (st *ctlState) view() ctlStateData {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := ctlStateData{
		Machines: append([]string(nil), st.s.Machines...),
		Failed:   make(map[string]bool, len(st.s.Failed)),
		DBs:      make(map[string]*ctlDB, len(st.s.DBs)),
		EpochSeq: st.s.EpochSeq,
		HomeSeq:  st.s.HomeSeq,
	}
	for id, v := range st.s.Failed {
		out.Failed[id] = v
	}
	for name, db := range st.s.DBs {
		cp := *db
		cp.Replicas = append([]string(nil), db.Replicas...)
		if db.Copy != nil {
			c := *db.Copy
			cp.Copy = &c
		}
		out.DBs[name] = &cp
	}
	return out
}

// dbNamesLocked returns database names sorted, for deterministic iteration.
// Caller holds st.mu.
func (st *ctlState) dbNamesLocked() []string {
	names := make([]string, 0, len(st.s.DBs))
	for n := range st.s.DBs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
