package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sdp/internal/sqldb"
)

func TestObserveDatabase(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 1})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 300; i++ {
		clusterExec(t, c, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
	}
	reps, _ := c.Replicas("app")

	rep, err := c.ObserveDatabase("app", reps[0], 100*time.Millisecond, func(stop <-chan struct{}) {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			_, _ = c.Exec("app", "SELECT v FROM t WHERE id = ?", intv(int64(i%300)))
			if i%5 == 0 {
				_, _ = c.Exec("app", "UPDATE t SET v = v + 1 WHERE id = ?", intv(int64(i%300)))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObservedTPS <= 0 {
		t.Errorf("ObservedTPS = %v", rep.ObservedTPS)
	}
	if rep.SizeMB <= 0 {
		t.Errorf("SizeMB = %v", rep.SizeMB)
	}
	if rep.Req.CPU <= 0 || rep.Req.Disk <= 0 {
		t.Errorf("Req = %v", rep.Req)
	}
	// The requirement must be internally consistent with the calibration.
	if got, want := rep.Req.CPU, rep.ObservedTPS/10; got != want {
		t.Errorf("Req.CPU = %v, want %v", got, want)
	}
}

func TestObserveDatabaseErrors(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 1})
	if _, err := c.ObserveDatabase("app", "m99", time.Millisecond, func(<-chan struct{}) {}); !errors.Is(err, ErrNoMachine) {
		t.Errorf("err = %v", err)
	}
	reps, _ := c.Replicas("app")
	other := "m1"
	if reps[0] == "m1" {
		other = "m2"
	}
	if _, err := c.ObserveDatabase("app", other, time.Millisecond, func(<-chan struct{}) {}); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
}

func intv(v int64) sqldb.Value { return sqldb.NewInt(v) }
