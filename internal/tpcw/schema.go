// Package tpcw implements the evaluation workload of the paper: the TPC-W
// benchmark's database schema, a scalable data generator, and the three
// standard transaction mixes (browsing, shopping, ordering) issued directly
// against the data platform's SQL API — the paper likewise bypasses the
// application servers and drives the database operations directly.
package tpcw

import (
	"fmt"

	"sdp/internal/sqldb"
)

// DB abstracts the system under test: anything that can begin transactions.
// Both a single sqldb.Engine and the cluster controller satisfy it through
// thin adapters.
type DB interface {
	Begin() (Txn, error)
}

// Txn is one transaction of the system under test.
type Txn interface {
	Exec(sql string, params ...sqldb.Value) (*sqldb.Result, error)
	Commit() error
	Rollback() error
}

// DDL is the TPC-W schema: the eight core tables of the benchmark's
// bookstore (country, address, customer, author, item, orders, order_line,
// cc_xacts), with the columns the transaction mixes touch.
var DDL = []string{
	`CREATE TABLE country (
		co_id INT PRIMARY KEY,
		co_name TEXT NOT NULL
	)`,
	`CREATE TABLE address (
		addr_id INT PRIMARY KEY,
		addr_street TEXT NOT NULL,
		addr_city TEXT NOT NULL,
		addr_zip TEXT,
		addr_co_id INT NOT NULL
	)`,
	`CREATE TABLE customer (
		c_id INT PRIMARY KEY,
		c_uname TEXT NOT NULL,
		c_fname TEXT NOT NULL,
		c_lname TEXT NOT NULL,
		c_addr_id INT NOT NULL,
		c_discount FLOAT NOT NULL,
		c_balance FLOAT NOT NULL,
		c_ytd_pmt FLOAT NOT NULL
	)`,
	`CREATE TABLE author (
		a_id INT PRIMARY KEY,
		a_fname TEXT NOT NULL,
		a_lname TEXT NOT NULL
	)`,
	`CREATE TABLE item (
		i_id INT PRIMARY KEY,
		i_title TEXT NOT NULL,
		i_a_id INT NOT NULL,
		i_subject TEXT NOT NULL,
		i_cost FLOAT NOT NULL,
		i_stock INT NOT NULL,
		i_total_sold INT NOT NULL
	)`,
	`CREATE TABLE orders (
		o_id INT PRIMARY KEY,
		o_c_id INT NOT NULL,
		o_date INT NOT NULL,
		o_total FLOAT NOT NULL,
		o_status TEXT NOT NULL
	)`,
	`CREATE TABLE order_line (
		ol_id INT PRIMARY KEY,
		ol_o_id INT NOT NULL,
		ol_i_id INT NOT NULL,
		ol_qty INT NOT NULL,
		ol_discount FLOAT NOT NULL
	)`,
	`CREATE TABLE cc_xacts (
		cx_o_id INT PRIMARY KEY,
		cx_type TEXT NOT NULL,
		cx_amt FLOAT NOT NULL,
		cx_auth_date INT NOT NULL
	)`,
}

// Indexes are the secondary indexes the transaction mixes rely on.
var Indexes = []string{
	`CREATE INDEX idx_customer_uname ON customer (c_uname)`,
	`CREATE INDEX idx_item_subject ON item (i_subject)`,
	`CREATE INDEX idx_orders_cid ON orders (o_c_id)`,
	`CREATE INDEX idx_ol_oid ON order_line (ol_o_id)`,
	`CREATE INDEX idx_ol_iid ON order_line (ol_i_id)`,
}

// Tables lists the table names in load order.
var Tables = []string{"country", "address", "customer", "author", "item", "orders", "order_line", "cc_xacts"}

// Subjects are the item subject categories used for browsing.
var Subjects = []string{"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING", "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY", "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION", "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS", "YOUTH", "TRAVEL"}

// execAll runs each statement in its own transaction.
func execAll(db DB, stmts []string) error {
	for _, s := range stmts {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		if _, err := tx.Exec(s); err != nil {
			_ = tx.Rollback()
			return fmt.Errorf("tpcw: %q: %w", s[:min(40, len(s))], err)
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
