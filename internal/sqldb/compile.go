package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the plan-compilation layer: a cached single-table
// SELECT is lowered once, at plan time, into a pipeline of pre-bound
// closures — column offsets and parameter slots resolved at compile time, no
// AST walk and no name resolution per row. The compiled form rides on the
// stmtPlan, so DDL invalidation (plan-cache generation bump) retires it with
// the plan. Statements the compiler does not cover (joins, grouping,
// aggregates, DISTINCT) keep the tree-walking executor; correctness is never
// gated on compiler coverage.
//
// Value-level semantics (three-valued logic, type errors, division by zero)
// are shared with the interpreter through the apply* helpers in eval.go, so
// the two paths cannot drift apart.

// exprFn is a compiled expression: evaluated against a source row and the
// statement parameters.
type exprFn func(row Row, params []Value) (Value, error)

// predFn is a compiled predicate with SQL WHERE semantics (NULL filters the
// row out).
type predFn func(row Row, params []Value) (bool, error)

// compileExpr lowers an expression into a closure over pre-resolved column
// offsets and parameter slots. ok=false means the expression is not
// compilable (aggregates, unresolvable columns) and the statement falls back
// to the interpreter.
func compileExpr(e Expr, bind []colBinding) (exprFn, bool) {
	switch ex := e.(type) {
	case *LiteralExpr:
		v := ex.Val
		return func(Row, []Value) (Value, error) { return v, nil }, true
	case *ParamExpr:
		idx := ex.Index
		return func(_ Row, params []Value) (Value, error) {
			if idx >= len(params) {
				return Null, fmt.Errorf("sqldb: missing binding for parameter %d", idx+1)
			}
			return params[idx], nil
		}, true
	case *ColumnExpr:
		off := resolveBinding(bind, ex)
		if off < 0 {
			return nil, false
		}
		return func(row Row, _ []Value) (Value, error) {
			if off >= len(row) {
				return Null, nil
			}
			return row[off], nil
		}, true
	case *BinaryExpr:
		l, ok := compileExpr(ex.L, bind)
		if !ok {
			return nil, false
		}
		r, ok := compileExpr(ex.R, bind)
		if !ok {
			return nil, false
		}
		op := ex.Op
		if op == OpAnd || op == OpOr {
			return func(row Row, params []Value) (Value, error) {
				lv, err := l(row, params)
				if err != nil {
					return Null, err
				}
				rv, err := r(row, params)
				if err != nil {
					return Null, err
				}
				return applyBoolPair(op, lv, rv)
			}, true
		}
		return func(row Row, params []Value) (Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return Null, err
			}
			rv, err := r(row, params)
			if err != nil {
				return Null, err
			}
			return applyBinary(op, lv, rv)
		}, true
	case *UnaryExpr:
		f, ok := compileExpr(ex.E, bind)
		if !ok {
			return nil, false
		}
		op := ex.Op
		return func(row Row, params []Value) (Value, error) {
			v, err := f(row, params)
			if err != nil {
				return Null, err
			}
			return applyUnary(op, v)
		}, true
	case *InExpr:
		f, ok := compileExpr(ex.E, bind)
		if !ok {
			return nil, false
		}
		list := make([]exprFn, len(ex.List))
		for i, le := range ex.List {
			lf, ok := compileExpr(le, bind)
			if !ok {
				return nil, false
			}
			list[i] = lf
		}
		negate := ex.Negate
		return func(row Row, params []Value) (Value, error) {
			v, err := f(row, params)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			sawNull := false
			for _, lf := range list {
				lv, err := lf(row, params)
				if err != nil {
					return Null, err
				}
				if lv.IsNull() {
					sawNull = true
					continue
				}
				if Equal(v, lv) {
					return NewBool(!negate), nil
				}
			}
			if sawNull {
				return Null, nil
			}
			return NewBool(negate), nil
		}, true
	case *BetweenExpr:
		f, ok := compileExpr(ex.E, bind)
		if !ok {
			return nil, false
		}
		lo, ok := compileExpr(ex.Lo, bind)
		if !ok {
			return nil, false
		}
		hi, ok := compileExpr(ex.Hi, bind)
		if !ok {
			return nil, false
		}
		negate := ex.Negate
		return func(row Row, params []Value) (Value, error) {
			v, err := f(row, params)
			if err != nil {
				return Null, err
			}
			lv, err := lo(row, params)
			if err != nil {
				return Null, err
			}
			hv, err := hi(row, params)
			if err != nil {
				return Null, err
			}
			return applyBetween(v, lv, hv, negate), nil
		}, true
	case *LikeExpr:
		f, ok := compileExpr(ex.E, bind)
		if !ok {
			return nil, false
		}
		p, ok := compileExpr(ex.Pattern, bind)
		if !ok {
			return nil, false
		}
		negate := ex.Negate
		return func(row Row, params []Value) (Value, error) {
			v, err := f(row, params)
			if err != nil {
				return Null, err
			}
			pv, err := p(row, params)
			if err != nil {
				return Null, err
			}
			return applyLike(v, pv, negate)
		}, true
	case *IsNullExpr:
		f, ok := compileExpr(ex.E, bind)
		if !ok {
			return nil, false
		}
		negate := ex.Negate
		return func(row Row, params []Value) (Value, error) {
			v, err := f(row, params)
			if err != nil {
				return Null, err
			}
			isNull := v.IsNull()
			if negate {
				isNull = !isNull
			}
			return NewBool(isNull), nil
		}, true
	default:
		// Aggregates and anything unknown stay on the interpreter.
		return nil, false
	}
}

// compilePred wraps a compiled expression with predTrue semantics.
func compilePred(e Expr, bind []colBinding) (predFn, bool) {
	f, ok := compileExpr(e, bind)
	if !ok {
		return nil, false
	}
	return func(row Row, params []Value) (bool, error) {
		v, err := f(row, params)
		if err != nil {
			return false, err
		}
		st, ok := boolState(v)
		if !ok {
			return false, fmt.Errorf("%w: predicate evaluated to %s", ErrTypeMismatch, v.Typ)
		}
		return st == tvTrue, nil
	}, true
}

// compiledSelect is the closure-compiled form of a cacheable single-table
// SELECT: constants, predicates, projection and ORDER BY keys are pre-bound
// closures, and the access path executes through pre-resolved step functions.
type compiledSelect struct {
	from   string  // table name as written, resolved via e.Table at execution
	schema *Schema // schema compiled against; pointer-compared at execution
	access *accessPath

	eq     exprFn // point / index-equality constant
	lo, hi exprFn // range bound constants

	residual predFn // access-path residual predicate (non-scan paths)
	where    predFn // full WHERE (scan path)

	proj  []int    // flat projection: source column offsets (nil → projX)
	projX []exprFn // expression projection
	cols  []string

	order     []exprFn // ORDER BY keys evaluated on the source row
	orderProj []int    // ≥0: key is the projected column at this index (alias)
	desc      []bool

	limit, offset int
}

// compileSelect lowers a validated, star-expanded single-table SELECT into
// its compiled form, or returns nil when the statement is out of the
// compiler's coverage (grouping, aggregates, DISTINCT, uncompilable
// expressions).
func compileSelect(tbl *Table, s *SelectStmt, sel *selPlan, access *accessPath) *compiledSelect {
	if access == nil || s.Distinct || len(s.GroupBy) > 0 || s.Having != nil || anyAggregate(sel.items) {
		return nil
	}
	bind := bindingsFor(tbl.schema, s.From.Name())
	cs := &compiledSelect{
		from:   s.From.Table,
		schema: tbl.schema,
		access: access,
		cols:   sel.cols,
		limit:  s.Limit,
		offset: s.Offset,
	}

	// Projection: all-column items lower to a flat offset copy plan.
	flat := make([]int, 0, len(sel.items))
	simple := true
	for _, it := range sel.items {
		ce, ok := it.Expr.(*ColumnExpr)
		if !ok {
			simple = false
			break
		}
		off := resolveBinding(bind, ce)
		if off < 0 {
			return nil
		}
		flat = append(flat, off)
	}
	if simple {
		cs.proj = flat
	} else {
		for _, it := range sel.items {
			f, ok := compileExpr(it.Expr, bind)
			if !ok {
				return nil
			}
			cs.projX = append(cs.projX, f)
		}
	}

	// Access-path constants and predicates.
	switch access.kind {
	case pathPoint, pathIndexEq:
		f, ok := compileExpr(access.eq, nil)
		if !ok {
			return nil
		}
		cs.eq = f
	case pathIndexRange:
		if access.lo != nil {
			f, ok := compileExpr(access.lo, nil)
			if !ok {
				return nil
			}
			cs.lo = f
		}
		if access.hi != nil {
			f, ok := compileExpr(access.hi, nil)
			if !ok {
				return nil
			}
			cs.hi = f
		}
	}
	if access.kind == pathScan {
		if s.Where != nil {
			f, ok := compilePred(s.Where, bind)
			if !ok {
				return nil
			}
			cs.where = f
		}
	} else if access.residual != nil {
		f, ok := compilePred(access.residual, bind)
		if !ok {
			return nil
		}
		cs.residual = f
	}

	// ORDER BY: an unqualified name matching a projected alias orders by the
	// projected value, exactly as the interpreter's orderKeys does.
	for _, o := range s.OrderBy {
		pj := -1
		if ce, ok := o.Expr.(*ColumnExpr); ok && ce.Table == "" {
			for j, it := range sel.items {
				if strings.EqualFold(it.Alias, ce.Col) {
					pj = j
					break
				}
			}
		}
		var f exprFn
		if pj < 0 {
			var ok bool
			f, ok = compileExpr(o.Expr, bind)
			if !ok {
				return nil
			}
		}
		cs.order = append(cs.order, f)
		cs.orderProj = append(cs.orderProj, pj)
		cs.desc = append(cs.desc, o.Desc)
	}
	return cs
}

// rangeBoundsExec resolves the compiled range-bound constants for this
// execution, with the same fallback rules as accessPath.rangeExec: a NULL or
// type-incomparable bound sends the statement to the scan path, which owns
// the locking behaviour and error semantics of those cases.
func (cs *compiledSelect) rangeBoundsExec(tbl *Table, params []Value) (b rangeBounds, fallback bool, err error) {
	colTyp := tbl.schema.Cols[cs.access.colIdx].Typ
	if cs.lo != nil {
		v, err := cs.lo(nil, params)
		if err != nil {
			return b, false, err
		}
		if v.IsNull() || !colComparable(colTyp, v) {
			return b, true, nil
		}
		b.lo, b.hasLo, b.loIncl = v, true, cs.access.loIncl
	}
	if cs.hi != nil {
		v, err := cs.hi(nil, params)
		if err != nil {
			return b, false, err
		}
		if v.IsNull() || !colComparable(colTyp, v) {
			return b, true, nil
		}
		b.hi, b.hasHi, b.hiIncl = v, true, cs.access.hiIncl
	}
	return b, false, nil
}

// resultRow returns an output-row buffer of capacity ≥ n, reusing the i-th
// row buffer of a previous use of res when possible, so steady-state point
// reads through ExecStmtInto allocate nothing.
func resultRow(res *Result, i, n int) Row {
	prev := res.Rows[:cap(res.Rows)]
	if i < len(prev) && cap(prev[i]) >= n {
		return prev[i][:0]
	}
	return make(Row, 0, n)
}

// projectOne projects one source row through the compiled projection.
func (cs *compiledSelect) projectOne(src Row, params []Value, res *Result, i int) (Row, error) {
	if cs.proj != nil {
		pr := resultRow(res, i, len(cs.proj))
		for _, off := range cs.proj {
			if off < len(src) {
				pr = append(pr, src[off])
			} else {
				pr = append(pr, Null)
			}
		}
		return pr, nil
	}
	pr := resultRow(res, i, len(cs.projX))
	for _, f := range cs.projX {
		v, err := f(src, params)
		if err != nil {
			return nil, err
		}
		pr = append(pr, v)
	}
	return pr, nil
}

// emit projects the gathered source rows and applies ORDER BY, OFFSET and
// LIMIT. Every source row is projected before the LIMIT cut, matching the
// interpreter's evaluation (and error) order exactly. reuse, when non-nil,
// is filled in place with its backing slices reused.
func (cs *compiledSelect) emit(rows []Row, params []Value, reuse *Result) (*Result, error) {
	res := reuse
	if res == nil {
		res = &Result{}
	}
	res.Cols = cs.cols
	res.Affected = 0

	out := res.Rows[:0]
	for i, src := range rows {
		pr, err := cs.projectOne(src, params, res, i)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}

	if len(cs.order) > 0 && len(out) > 1 {
		keys := make([]Row, len(out))
		for i, src := range rows {
			k := make(Row, len(cs.order))
			for j := range cs.order {
				if pj := cs.orderProj[j]; pj >= 0 {
					k[j] = out[i][pj]
					continue
				}
				v, err := cs.order[j](src, params)
				if err != nil {
					return nil, err
				}
				k[j] = v
			}
			keys[i] = k
		}
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := keys[idx[a]], keys[idx[b]]
			for j := range cs.order {
				c := Compare(ka[j], kb[j])
				if c == 0 {
					continue
				}
				if cs.desc[j] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([]Row, len(out))
		for i, ix := range idx {
			sorted[i] = out[ix]
		}
		out = sorted
	} else if len(cs.order) > 0 && len(out) == 1 {
		// Single row: keys still evaluate (errors must surface), order is moot.
		for j := range cs.order {
			if cs.orderProj[j] >= 0 {
				continue
			}
			if _, err := cs.order[j](rows[0], params); err != nil {
				return nil, err
			}
		}
	}

	if cs.offset > 0 {
		if cs.offset >= len(out) {
			out = out[:0]
		} else {
			out = out[cs.offset:]
		}
	}
	if cs.limit >= 0 && cs.limit < len(out) {
		out = out[:cs.limit]
	}
	res.Rows = out
	return res, nil
}

// optMaxAttempts bounds optimistic re-reads before falling back to the
// locking path.
const optMaxAttempts = 3

// execCompiled runs a compiled single-table SELECT. handled=false sends the
// statement to the tree-walking executor (stale schema, missing index, range
// fallback, optimistic retries exhausted); handled=true means the result and
// error are final.
func (e *Engine) execCompiled(t *Txn, cs *compiledSelect, params []Value, reuse *Result) (res *Result, handled bool, err error) {
	tbl, err := e.Table(t.db, cs.from)
	if err != nil {
		return nil, true, err
	}
	// A DROP+CREATE of the same table name leaves the plan pointing at a dead
	// schema; the access path is additionally re-validated as the interpreter
	// does, and equality/range paths need their index to still exist.
	if tbl.schema != cs.schema || !cs.access.validFor(tbl) {
		return nil, false, nil
	}
	switch cs.access.kind {
	case pathIndexEq:
		if !tbl.hasIndex(cs.access.col) {
			return nil, false, nil
		}
	case pathIndexRange:
		if !cs.access.onPK && !tbl.hasIndex(cs.access.col) {
			return nil, false, nil
		}
	}
	if t.readOnly {
		res, handled, err := e.execCompiledOptimistic(t, cs, tbl, params, reuse)
		if handled {
			return res, true, err
		}
		// Validation kept failing or the path fell back: take locks instead.
	}
	return e.execCompiledLocking(t, cs, tbl, params, reuse)
}

// execCompiledOptimistic serves a read-only transaction's compiled SELECT
// without the lock manager: it reads under per-access table latches only and
// validates consistency with the table's mutation epoch. The read is only
// attempted when no writer holds uncommitted changes on the table
// (tbl.dirty == 0), which — together with an unchanged epoch across the read
// window — proves every row image seen was committed and stable.
func (e *Engine) execCompiledOptimistic(t *Txn, cs *compiledSelect, tbl *Table, params []Value, reuse *Result) (*Result, bool, error) {
	a := cs.access

	// Constants evaluate once, outside the retry loop.
	var eqVal Value
	var b rangeBounds
	switch a.kind {
	case pathPoint, pathIndexEq:
		v, err := cs.eq(nil, params)
		if err != nil {
			return nil, true, err
		}
		eqVal = v
	case pathIndexRange:
		bb, fallback, err := cs.rangeBoundsExec(tbl, params)
		if err != nil {
			return nil, true, err
		}
		if fallback {
			return nil, false, nil
		}
		b = bb
	}

	for attempt := 0; attempt < optMaxAttempts; attempt++ {
		if attempt > 0 {
			e.statOptRetries.Add(1)
		}
		ep := tbl.epoch.Load()
		if prev, seen := t.optEpochFor(tbl); seen && prev != ep {
			// A statement earlier in this transaction read this table at a
			// different epoch; the snapshot can no longer be made consistent.
			e.statOptConflicts.Add(1)
			return nil, true, ErrOptimisticConflict
		}
		if tbl.dirty.Load() != 0 {
			e.statOptFallbacks.Add(1)
			return nil, false, nil
		}
		rows, err := cs.gatherOptimistic(t, tbl, eqVal, b, params)
		if err != nil {
			if tbl.epoch.Load() != ep {
				continue // possibly a torn read; retry cleanly
			}
			return nil, true, err
		}
		if tbl.epoch.Load() != ep {
			continue
		}
		// This statement's reads were consistent at epoch ep. Other tables
		// read by earlier statements must not have moved during this window,
		// or the transaction's combined snapshot is broken.
		if !t.validateOptEpochs(tbl) {
			e.statOptConflicts.Add(1)
			return nil, true, ErrOptimisticConflict
		}
		t.noteOptEpoch(tbl, ep)
		t.optHandled = true
		e.statOptHits.Add(1)
		e.recordOptimisticReads(t, tbl, a.kind, rows)
		res, err := cs.emit(rows, params, reuse)
		return res, true, err
	}
	e.statOptFallbacks.Add(1)
	return nil, false, nil
}

// gatherOptimistic collects the candidate source rows for one optimistic
// execution without lock-manager calls. Point and equality/range paths fetch
// their candidates in one batched latch acquisition; the caller owns epoch
// validation.
func (cs *compiledSelect) gatherOptimistic(t *Txn, tbl *Table, eqVal Value, b rangeBounds, params []Value) ([]Row, error) {
	a := cs.access
	rows := t.rowsScratch[:0]
	defer func() { t.rowsScratch = rows }()
	switch a.kind {
	case pathPoint:
		t.keyBuf = appendKey(t.keyBuf[:0], eqVal)
		row, _, found := tbl.readPKRowInto(t.keyBuf, t.rowBuf)
		t.rowBuf = row
		if !found {
			return rows, nil
		}
		if cs.residual != nil {
			ok, err := cs.residual(row, params)
			if err != nil {
				return nil, err
			}
			if !ok {
				return rows, nil
			}
		}
		rows = append(rows, row)
	case pathIndexEq:
		ids, _ := tbl.lookupIndex(a.col, eqVal)
		for _, row := range tbl.getRowsBatch(ids, nil) {
			if !Equal(row[a.colIdx], eqVal) {
				continue
			}
			if cs.residual != nil {
				ok, err := cs.residual(row, params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			rows = append(rows, row)
		}
	case pathIndexRange:
		var ids []uint64
		if a.onPK {
			ids = tbl.lookupPKRange(b)
		} else {
			ids, _ = tbl.lookupIndexRange(a.col, b)
		}
		for _, row := range tbl.getRowsBatch(ids, nil) {
			if !b.match(row[a.colIdx]) {
				continue
			}
			if cs.residual != nil {
				ok, err := cs.residual(row, params)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			rows = append(rows, row)
		}
	default: // pathScan
		var match func(Row) (bool, error)
		if cs.where != nil {
			match = func(r Row) (bool, error) { return cs.where(r, params) }
		}
		if err := tbl.scanWhere(match, func(_ uint64, r Row) bool {
			rows = append(rows, r)
			return true
		}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// execCompiledLocking serves a compiled SELECT through the regular lock
// manager — the same lock pattern as the interpreted read paths, with the
// compiled predicates and projection doing the per-row work.
func (e *Engine) execCompiledLocking(t *Txn, cs *compiledSelect, tbl *Table, params []Value, reuse *Result) (*Result, bool, error) {
	a := cs.access
	var rows []Row
	switch a.kind {
	case pathPoint:
		v, err := cs.eq(nil, params)
		if err != nil {
			return nil, true, err
		}
		if err := t.lockTable(tbl, LockIS); err != nil {
			return nil, true, err
		}
		t.keyBuf = appendKey(t.keyBuf[:0], v)
		key := string(t.keyBuf)
		if err := t.lockRow(tbl, key, LockS); err != nil {
			return nil, true, err
		}
		e.record(t, false, tbl.qname+":"+key)
		row, _, found := tbl.readPKRowInto(t.keyBuf, t.rowBuf)
		t.rowBuf = row
		if found {
			keep := true
			if cs.residual != nil {
				keep, err = cs.residual(row, params)
				if err != nil {
					return nil, true, err
				}
			}
			if keep {
				rows = t.rowsScratch[:0]
				rows = append(rows, row)
				t.rowsScratch = rows
			}
		}
	case pathIndexEq:
		v, err := cs.eq(nil, params)
		if err != nil {
			return nil, true, err
		}
		if err := t.lockTable(tbl, LockIS); err != nil {
			return nil, true, err
		}
		ids, _ := tbl.lookupIndex(a.col, v)
		rows, err = e.collectLockedRows(t, tbl, ids, func(row Row) (bool, error) {
			if !Equal(row[a.colIdx], v) {
				return false, nil
			}
			if cs.residual != nil {
				return cs.residual(row, params)
			}
			return true, nil
		})
		if err != nil {
			return nil, true, err
		}
	case pathIndexRange:
		b, fallback, err := cs.rangeBoundsExec(tbl, params)
		if err != nil {
			return nil, true, err
		}
		if fallback {
			return nil, false, nil
		}
		if err := t.lockTable(tbl, LockIS); err != nil {
			return nil, true, err
		}
		var ids []uint64
		if a.onPK {
			ids = tbl.lookupPKRange(b)
		} else {
			ids, _ = tbl.lookupIndexRange(a.col, b)
		}
		rows, err = e.collectLockedRows(t, tbl, ids, func(row Row) (bool, error) {
			if !b.match(row[a.colIdx]) {
				return false, nil
			}
			if cs.residual != nil {
				return cs.residual(row, params)
			}
			return true, nil
		})
		if err != nil {
			return nil, true, err
		}
	default: // pathScan
		if err := t.lockTable(tbl, LockS); err != nil {
			return nil, true, err
		}
		e.record(t, false, tbl.qname)
		var match func(Row) (bool, error)
		if cs.where != nil {
			match = func(r Row) (bool, error) { return cs.where(r, params) }
		}
		if err := tbl.scanWhere(match, func(_ uint64, r Row) bool {
			rows = append(rows, r)
			return true
		}); err != nil {
			return nil, true, err
		}
	}
	res, err := cs.emit(rows, params, reuse)
	return res, true, err
}

// recordOptimisticReads emits history-recorder events for a validated
// optimistic read, mirroring the objects the locking paths record. The
// object strings are only built when a recorder is installed, keeping the
// hot path allocation-free.
func (e *Engine) recordOptimisticReads(t *Txn, tbl *Table, kind pathKind, rows []Row) {
	if e.recovering.Load() {
		return
	}
	box := e.recorder.Load()
	if box == nil || box.r == nil {
		return
	}
	if kind == pathScan {
		e.record(t, false, tbl.qname)
		return
	}
	pkIdx := tbl.schema.PKIdx
	for _, r := range rows {
		e.record(t, false, tbl.qname+":"+keyString(r[pkIdx]))
	}
}
