GO ?= go

.PHONY: all build test race vet bench bench-sqldb experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with lock-sensitive hot paths: the
# query engine (plan cache, striped buffer pool, lock manager) and the
# cluster controller (2PC, replica management).
race:
	$(GO) test -race ./internal/sqldb/... ./internal/core/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Regenerate BENCH_sqldb.json (hot-path query-engine latencies).
bench-sqldb:
	$(GO) run ./cmd/experiments -bench-sqldb

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
