// Package history records the data operations executed across the replicas
// of a cluster and checks the resulting execution for global one-copy
// serializability. It is the measurement instrument behind the paper's
// Table 1: a serialization graph is built from the per-site conflict orders
// (Bernstein/Hadzilacos/Goodman), and an execution is one-copy serializable
// iff the graph over committed transactions is acyclic.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sdp/internal/sqldb"
)

// Op is one recorded data access on one site (machine). Seq orders events
// within a site; events on different sites are never directly ordered.
//
// Seq is assigned by the Recorder at record time rather than taken from the
// engine's own counter: a machine restart replaces the engine and would
// restart its counter at zero, scrambling the site's conflict order across
// crash epochs. Under strict two-phase locking an operation is recorded
// while its lock is held, so for two conflicting operations the record
// calls themselves happen in conflict order and a recorder-global monotonic
// stamp preserves it.
type Op struct {
	Site   string
	Seq    uint64
	Txn    uint64 // global transaction ID
	Write  bool
	Object string // "db/table:key" for a row, "db/table" for a whole table
}

// Recorder accumulates operations from all sites of a cluster and tracks
// transaction outcomes. It is safe for concurrent use.
type Recorder struct {
	mu        sync.Mutex
	seq       uint64 // recorder-global Op.Seq stamp, survives engine restarts
	ops       []Op
	committed map[uint64]bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{committed: make(map[uint64]bool)}
}

// ForSite returns an adapter implementing sqldb.Recorder that tags events
// with the given site name. Events with a zero GlobalTxn (engine-local
// transactions such as dump copies) are ignored.
func (r *Recorder) ForSite(site string) sqldb.Recorder {
	return &siteRecorder{r: r, site: site}
}

type siteRecorder struct {
	r    *Recorder
	site string
}

func (s *siteRecorder) RecordOp(ev sqldb.OpEvent) {
	if ev.GlobalTxn == 0 {
		return
	}
	s.r.mu.Lock()
	s.r.seq++
	s.r.ops = append(s.r.ops, Op{
		Site:   s.site,
		Seq:    s.r.seq,
		Txn:    ev.GlobalTxn,
		Write:  ev.Write,
		Object: ev.Object,
	})
	s.r.mu.Unlock()
}

// Commit marks a global transaction as committed. Only committed
// transactions participate in the serializability check.
func (r *Recorder) Commit(txn uint64) {
	r.mu.Lock()
	r.committed[txn] = true
	r.mu.Unlock()
}

// Ops returns a snapshot of all recorded operations.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Committed returns the set of committed transaction IDs.
func (r *Recorder) Committed() map[uint64]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint64]bool, len(r.committed))
	for k, v := range r.committed {
		out[k] = v
	}
	return out
}

// Reset clears all recorded state.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.seq = 0
	r.ops = nil
	r.committed = make(map[uint64]bool)
	r.mu.Unlock()
}

// Conflicts reports whether two objects denote overlapping data: identical
// objects, or a whole-table object covering a row of the same table.
func Conflicts(a, b string) bool {
	if a == b {
		return true
	}
	if ta, ia := splitObject(a); ia == "" {
		if tb, _ := splitObject(b); ta == tb {
			return true
		}
	}
	if tb, ib := splitObject(b); ib == "" {
		if ta, _ := splitObject(a); ta == tb {
			return true
		}
	}
	return false
}

func splitObject(o string) (table, key string) {
	if i := strings.IndexByte(o, ':'); i >= 0 {
		return o[:i], o[i+1:]
	}
	return o, ""
}

// Edge is one serialization-graph edge with the conflict that produced it.
type Edge struct {
	From, To uint64
	Site     string
	Object   string
}

// Graph is a serialization graph over committed transactions.
type Graph struct {
	Nodes []uint64
	Edges map[uint64]map[uint64]Edge
}

// BuildGraph constructs the global serialization graph from the recorded
// operations of committed transactions. For each site, conflicting
// operations of different transactions produce an edge in Seq order.
func BuildGraph(ops []Op, committed map[uint64]bool) *Graph {
	bySite := make(map[string][]Op)
	nodeSet := make(map[uint64]bool)
	for _, op := range ops {
		if !committed[op.Txn] {
			continue
		}
		bySite[op.Site] = append(bySite[op.Site], op)
		nodeSet[op.Txn] = true
	}
	g := &Graph{Edges: make(map[uint64]map[uint64]Edge)}
	for n := range nodeSet {
		g.Nodes = append(g.Nodes, n)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i] < g.Nodes[j] })

	for site, siteOps := range bySite {
		sort.Slice(siteOps, func(i, j int) bool { return siteOps[i].Seq < siteOps[j].Seq })
		for i := 0; i < len(siteOps); i++ {
			for j := i + 1; j < len(siteOps); j++ {
				a, b := siteOps[i], siteOps[j]
				if a.Txn == b.Txn {
					continue
				}
				if !a.Write && !b.Write {
					continue
				}
				if !Conflicts(a.Object, b.Object) {
					continue
				}
				g.addEdge(Edge{From: a.Txn, To: b.Txn, Site: site, Object: a.Object})
			}
		}
	}
	return g
}

func (g *Graph) addEdge(e Edge) {
	m := g.Edges[e.From]
	if m == nil {
		m = make(map[uint64]Edge)
		g.Edges[e.From] = m
	}
	if _, exists := m[e.To]; !exists {
		m[e.To] = e
	}
}

// Cycle returns a cycle in the graph as a sequence of transaction IDs
// (first == last), or nil if the graph is acyclic.
func (g *Graph) Cycle() []uint64 {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int, len(g.Nodes))
	parent := make(map[uint64]uint64)

	var cycle []uint64
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		color[u] = gray
		// Iterate successors deterministically for reproducible reports.
		succs := make([]uint64, 0, len(g.Edges[u]))
		for v := range g.Edges[u] {
			succs = append(succs, v)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, v := range succs {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back edge u -> v: reconstruct v ... u, v.
				cycle = []uint64{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse into v -> ... -> u order, then close the loop.
				for l, r := 1, len(cycle)-1; l < r; l, r = l+1, r-1 {
					cycle[l], cycle[r] = cycle[r], cycle[l]
				}
				cycle = append(cycle, v)
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range g.Nodes {
		if color[n] == white {
			if dfs(n) {
				return cycle
			}
		}
	}
	return nil
}

// Serializable reports whether the graph is acyclic, i.e. the execution was
// one-copy serializable.
func (g *Graph) Serializable() bool { return g.Cycle() == nil }

// Describe renders a cycle with the conflicts along it, for diagnostics.
func (g *Graph) Describe(cycle []uint64) string {
	if len(cycle) < 2 {
		return "no cycle"
	}
	var sb strings.Builder
	for i := 0; i+1 < len(cycle); i++ {
		e := g.Edges[cycle[i]][cycle[i+1]]
		fmt.Fprintf(&sb, "T%d -> T%d (site %s, object %s)\n", e.From, e.To, e.Site, e.Object)
	}
	return sb.String()
}

// Check is a convenience that builds the graph from a recorder's state and
// reports serializability along with the offending cycle, if any.
func Check(r *Recorder) (bool, []uint64, *Graph) {
	g := BuildGraph(r.Ops(), r.Committed())
	c := g.Cycle()
	return c == nil, c, g
}
