package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sdp/internal/core"
	"sdp/internal/sqldb"
)

// TestFrameRoundTrip writes frames of assorted sizes and reads them back.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		buf.Reset()
		n, err := writeFrame(&buf, MsgQuery, uint64(i)+7, p)
		if err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		if n != buf.Len() {
			t.Fatalf("writeFrame reported %d bytes, wrote %d", n, buf.Len())
		}
		f, rn, err := readFrame(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if rn != n {
			t.Fatalf("readFrame reported %d bytes, frame was %d", rn, n)
		}
		if f.typ != MsgQuery || f.seq != uint64(i)+7 || !bytes.Equal(f.payload, p) {
			t.Fatalf("frame mismatch: %+v", f)
		}
	}
}

// TestFrameRejectsOversize checks the 16 MiB frame cap on both sides.
func TestFrameRejectsOversize(t *testing.T) {
	var hdr [frameHeaderSize]byte
	hdr[0] = 0xFF // length field far beyond MaxFrameSize
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if !errors.Is(err, errProtocol) {
		t.Fatalf("oversize frame: got %v, want errProtocol", err)
	}
	if _, err := writeFrame(io.Discard, MsgQuery, 1, make([]byte, MaxFrameSize+1)); !errors.Is(err, errProtocol) {
		t.Fatalf("oversize write: got %v, want errProtocol", err)
	}
}

// TestFrameShortRead checks that truncated frames surface as unexpected EOF,
// not as a hang or a bogus frame.
func TestFrameShortRead(t *testing.T) {
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, MsgQuery, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(whole[:cut])))
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("cut=%d: got %v, want EOF class", cut, err)
		}
	}
}

// valueCorpus covers every tag including edge values.
func valueCorpus() []sqldb.Value {
	return []sqldb.Value{
		{},
		sqldb.NewInt(0),
		sqldb.NewInt(-1),
		sqldb.NewInt(math.MaxInt64),
		sqldb.NewInt(math.MinInt64),
		sqldb.NewFloat(0),
		sqldb.NewFloat(math.Inf(-1)),
		sqldb.NewFloat(3.25),
		sqldb.NewText(""),
		sqldb.NewText("héllo \x00 wörld"),
		sqldb.NewText(strings.Repeat("x", 70000)), // needs a u32 length
		sqldb.NewBool(true),
		sqldb.NewBool(false),
	}
}

// TestValueRoundTrip encodes every corpus value and decodes it back.
func TestValueRoundTrip(t *testing.T) {
	for _, v := range valueCorpus() {
		buf, err := appendValue(nil, v)
		if err != nil {
			t.Fatalf("appendValue(%v): %v", v, err)
		}
		r := &reader{buf: buf}
		got := r.value()
		if err := r.done(); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip: got %#v want %#v", got, v)
		}
	}
}

// TestResultRoundTrip round-trips a result set with every value kind.
func TestResultRoundTrip(t *testing.T) {
	vals := valueCorpus()
	res := &sqldb.Result{
		Cols:     []string{"a", "b"},
		Affected: 42,
	}
	for i := 0; i+1 < len(vals); i += 2 {
		res.Rows = append(res.Rows, sqldb.Row{vals[i], vals[i+1]})
	}
	buf, err := encodeResult(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Affected != res.Affected || len(got.Cols) != 2 || len(got.Rows) != len(res.Rows) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i, row := range res.Rows {
		for j, v := range row {
			if got.Rows[i][j] != v {
				t.Fatalf("row %d col %d: got %#v want %#v", i, j, got.Rows[i][j], v)
			}
		}
	}
	// nil result (DDL acks) must round-trip too.
	buf, err = encodeResult(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err = decodeResult(buf); err != nil || len(got.Cols) != 0 || len(got.Rows) != 0 {
		t.Fatalf("nil result round trip: %+v, %v", got, err)
	}
}

// TestErrorRoundTrip checks code+message encoding and sentinel unwrapping.
func TestErrorRoundTrip(t *testing.T) {
	buf := encodeError(nil, ErrCodeOptimisticConflict, "row moved")
	e, err := decodeError(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != ErrCodeOptimisticConflict || !strings.Contains(e.Error(), "row moved") {
		t.Fatalf("decoded %+v", e)
	}
	if !errors.Is(e, sqldb.ErrOptimisticConflict) {
		t.Fatal("wire error does not unwrap to sqldb.ErrOptimisticConflict")
	}
	if !e.Retryable() || !IsRetryable(e) {
		t.Fatal("conflict should be retryable")
	}
	dl := &Error{Code: ErrCodeDeadlock, Msg: "victim"}
	if !core.IsRetryable(dl) {
		t.Fatal("core.IsRetryable should see through the wire error")
	}
	if IsRetryable(&Error{Code: ErrCodeParse, Msg: "no"}) {
		t.Fatal("parse errors must not be retryable")
	}
}

// TestErrorCodeMappingInverse checks codeFor/sentinelFor agree for every
// retryable sentinel: server-side classification then client-side
// unwrapping must land errors.Is back on the original.
func TestErrorCodeMappingInverse(t *testing.T) {
	for _, sentinel := range []error{
		sqldb.ErrDeadlock,
		sqldb.ErrLockTimeout,
		sqldb.ErrOptimisticConflict,
		core.ErrStaleRoute,
		core.ErrMachineFailed,
		core.ErrNoDatabase,
	} {
		code := codeFor(sentinel)
		we := &Error{Code: code, Msg: sentinel.Error()}
		if !errors.Is(we, sentinel) {
			t.Fatalf("code %d does not unwrap back to %v", code, sentinel)
		}
	}
	// In-process-retryable sentinels must stay retryable across the wire.
	for _, sentinel := range []error{sqldb.ErrDeadlock, sqldb.ErrLockTimeout, core.ErrStaleRoute, core.ErrMachineFailed} {
		if we := (&Error{Code: codeFor(sentinel)}); !we.Retryable() {
			t.Fatalf("%v lost retryability over the wire", sentinel)
		}
	}
}

// TestReaderRejectsTrailingBytes ensures done() catches over-long payloads.
func TestReaderRejectsTrailingBytes(t *testing.T) {
	buf := appendString(nil, "x")
	buf = append(buf, 0xFF)
	r := &reader{buf: buf}
	_ = r.str()
	if err := r.done(); !errors.Is(err, errProtocol) {
		t.Fatalf("trailing byte: got %v, want errProtocol", err)
	}
}

// TestDecodeRandomGarbage throws random bytes at every decoder: none may
// panic, and errors must be errProtocol-classified.
func TestDecodeRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		protoClass := func(err error) bool {
			return errors.Is(err, errProtocol) || errors.Is(err, errShortPayload)
		}
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		if _, err := decodeResult(buf); err != nil && !protoClass(err) {
			t.Fatalf("decodeResult: non-protocol error %v", err)
		}
		if _, err := decodeError(buf); err != nil && !protoClass(err) {
			t.Fatalf("decodeError: non-protocol error %v", err)
		}
		r := &reader{buf: buf}
		_ = r.params()
		if err := r.done(); err != nil && !protoClass(err) {
			t.Fatalf("params: non-protocol error %v", err)
		}
	}
}

// FuzzDecodeFrame fuzzes the frame decoder with raw byte streams.
func FuzzDecodeFrame(f *testing.F) {
	var buf bytes.Buffer
	_, _ = writeFrame(&buf, MsgQuery, 9, appendString(nil, "SELECT 1"))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, MsgQuery, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, _, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to an identical stream.
		var out bytes.Buffer
		if _, err := writeFrame(&out, fr.typ, fr.seq, fr.payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		consumed := frameHeaderSize + len(fr.payload) + 4
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzDecodeResult fuzzes the result decoder.
func FuzzDecodeResult(f *testing.F) {
	seed, _ := encodeResult(nil, &sqldb.Result{Cols: []string{"a"}, Rows: []sqldb.Row{{sqldb.NewInt(1)}}})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := decodeResult(data)
		if err != nil {
			return
		}
		// A decoded result must re-encode cleanly.
		if _, err := encodeResult(nil, res); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}
