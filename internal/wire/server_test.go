package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdp/internal/core"
	"sdp/internal/sqldb"
)

// clusterBackend adapts a cluster controller to Backend for tests.
type clusterBackend struct {
	c     *core.Cluster
	token string
}

func (b clusterBackend) Authenticate(db, token string) error {
	if token != b.token {
		return errors.New("bad token")
	}
	return nil
}

func (b clusterBackend) Begin(db string) (Txn, error) {
	t, err := b.c.Begin(db)
	if err != nil {
		return nil, err
	}
	return clusterTxn{t}, nil
}

// clusterTxn adapts core.Txn's ExecStmt (no SQL text) to the wire shape.
type clusterTxn struct{ *core.Txn }

func (t clusterTxn) ExecStmt(sql string, stmt sqldb.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	return t.Txn.ExecStmt(stmt, params...)
}

const testToken = "secret"

// newTestServer boots a 2-replica cluster with database "app" (table t,
// 100 rows) behind a wire server on an ephemeral port.
func newTestServer(t *testing.T) (*Server, *core.Cluster) {
	t.Helper()
	c := core.NewCluster("wiretest", core.Options{Replicas: 2})
	if _, err := c.AddMachines(2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := c.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve("127.0.0.1:0", ServerConfig{
		Backend:      clusterBackend{c: c, token: testToken},
		DrainTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, c
}

func newTestClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	client, err := Dial(ClientConfig{Addr: srv.Addr(), Database: "app", Token: testToken, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client
}

// TestServerQueryRoundTrip covers the simple-query path end to end.
func TestServerQueryRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)
	client := newTestClient(t, srv)

	res, err := client.Query("SELECT v FROM t WHERE id = ?", sqldb.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "v7" {
		t.Fatalf("got %+v", res.Rows)
	}
	if _, err := client.Exec("UPDATE t SET v = 'updated' WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	res, err = client.Query("SELECT v FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str != "updated" {
		t.Fatalf("update not visible: %+v", res.Rows)
	}
	if _, err := client.Query("SELECT nope FROM missing"); err == nil {
		t.Fatal("query on missing table should fail")
	}
	var we *Error
	if _, err := client.Query("THIS IS NOT SQL"); !errors.As(err, &we) || we.Code != ErrCodeParse {
		t.Fatalf("parse failure got %v, want ErrCodeParse", err)
	}
}

// TestServerPreparedStatements covers PREPARE/EXEC including result
// correctness across many executions and CloseStmt via client close.
func TestServerPreparedStatements(t *testing.T) {
	srv, _ := newTestServer(t)
	client := newTestClient(t, srv)

	stmt, err := client.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		res, err := stmt.Exec(sqldb.NewInt(int64(i % 100)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Str != fmt.Sprintf("v%d", i%100) {
			t.Fatalf("iteration %d: got %+v", i, res.Rows)
		}
	}
	// Preparing the same text again returns the interned handle.
	again, err := client.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if again != stmt {
		t.Fatal("Prepare did not intern by SQL text")
	}
	// A broken statement surfaces its parse error on first execution.
	bad, err := client.Prepare("SELEKT broken")
	if err != nil {
		t.Fatal(err)
	}
	var we *Error
	if _, err := bad.Exec(); !errors.As(err, &we) || we.Code != ErrCodeParse {
		t.Fatalf("got %v, want ErrCodeParse", err)
	}
}

// TestServerTransactions covers BEGIN/COMMIT/ROLLBACK over the wire.
func TestServerTransactions(t *testing.T) {
	srv, _ := newTestServer(t)
	client := newTestClient(t, srv)

	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE t SET v = 'tx' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := client.Query("SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str != "tx" {
		t.Fatalf("committed write lost: %+v", res.Rows)
	}

	tx, err = client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE t SET v = 'rolled' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err = client.Query("SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str != "tx" {
		t.Fatalf("rollback did not restore: %+v", res.Rows)
	}

	// Double commit reports ErrTxnDone client-side without a round trip.
	if err := tx.Commit(); !errors.Is(err, sqldb.ErrTxnDone) {
		t.Fatalf("double finish: got %v", err)
	}
}

// TestServerAuth covers the handshake failure paths.
func TestServerAuth(t *testing.T) {
	srv, _ := newTestServer(t)

	_, err := Dial(ClientConfig{Addr: srv.Addr(), Database: "app", Token: "wrong"})
	var we *Error
	if !errors.As(err, &we) || we.Code != ErrCodeAuth {
		t.Fatalf("bad token: got %v, want ErrCodeAuth", err)
	}

	// A raw connection must not get past the handshake requirement.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	payload, _ := appendParams(appendString(nil, "SELECT 1"), nil)
	if _, err := writeFrame(nc, MsgQuery, 1, payload); err != nil {
		t.Fatal(err)
	}
	f, _, err := readFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	e, derr := decodeError(f.payload)
	if f.typ != MsgError || derr != nil || e.Code != ErrCodeProtocol {
		t.Fatalf("pre-handshake query: got frame %v err %v", f.typ, derr)
	}

	// Wrong protocol version is refused.
	nc2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	hello := appendString(appendString([]byte{99}, "app"), testToken)
	if _, err := writeFrame(nc2, MsgHello, 1, hello); err != nil {
		t.Fatal(err)
	}
	f, _, err = readFrame(nc2)
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := decodeError(f.payload); f.typ != MsgError || e == nil || e.Code != ErrCodeProtocol {
		t.Fatalf("bad version: got frame type %#x", f.typ)
	}
}

// TestServerMalformedFrames throws framing garbage at a live server; every
// torture connection must be rejected cleanly and the server must keep
// serving well-formed clients afterwards.
func TestServerMalformedFrames(t *testing.T) {
	srv, _ := newTestServer(t)

	cases := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0},                  // oversized length
		{0, 0, 0, 1, MsgHello},                                // length below header size
		{0, 0, 0, 42},                                         // truncated: length only
		{0, 0, 0, 13, MsgHello, 0, 0, 0},                      // truncated mid-header
		[]byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"), // wrong protocol entirely
	}
	for i, raw := range cases {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(raw); err != nil {
			t.Fatal(err)
		}
		// Torture payloads that parse as a bogus frame get an error reply;
		// ones that cut off mid-frame just hang up. Either way the
		// connection must die promptly.
		_ = nc.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		f, _, rerr := readFrame(nc)
		if rerr == nil {
			if f.typ != MsgError {
				t.Fatalf("case %d: got frame type %#x, want MsgError or close", i, f.typ)
			}
			if e, _ := decodeError(f.payload); e == nil || e.Code != ErrCodeProtocol {
				t.Fatalf("case %d: want ErrCodeProtocol", i)
			}
		}
		_ = nc.Close()
	}
	// Truncated-but-valid-prefix frames: write a good frame minus its tail,
	// then close; the server must not crash or leak the session.
	var buf []byte
	buf = appendString(appendString([]byte{ProtoVersion}, "app"), testToken)
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, 0, 64)
	whole = appendU32(whole, uint32(frameHeaderSize+len(buf)))
	whole = append(whole, MsgHello)
	whole = appendU64(whole, 1)
	whole = append(whole, buf...)
	if _, err := nc.Write(whole[:len(whole)-3]); err != nil {
		t.Fatal(err)
	}
	_ = nc.Close()

	// The server still answers a healthy client.
	client := newTestClient(t, srv)
	if _, err := client.Query("SELECT v FROM t WHERE id = 0"); err != nil {
		t.Fatalf("server unhealthy after torture: %v", err)
	}
}

// TestServerPipelining issues many concurrent requests over a small shared
// pool; responses must route back to their callers by sequence ID.
func TestServerPipelining(t *testing.T) {
	srv, _ := newTestServer(t)
	client := newTestClient(t, srv) // PoolSize 2: heavy multiplexing
	stmt, err := client.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errsCh := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := (g*50 + i) % 100
				res, err := stmt.Exec(sqldb.NewInt(int64(id)))
				if err != nil {
					errsCh <- err
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].Str != fmt.Sprintf("v%d", id) {
					errsCh <- fmt.Errorf("wrong row for id %d: %+v", id, res.Rows)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Fatal(err)
	}
}

// TestPipelinedClientsVsDDL races pipelined prepared reads against
// concurrent DDL + writes on other tables (run under -race in CI).
func TestPipelinedClientsVsDDL(t *testing.T) {
	srv, _ := newTestServer(t)
	client := newTestClient(t, srv)
	stmt, err := client.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errsCh := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := stmt.Exec(sqldb.NewInt(int64((g*31 + i) % 100))); err != nil {
					errsCh <- err
					return
				}
			}
		}(g)
	}
	ddl := newTestClient(t, srv)
	for i := 0; i < 20; i++ {
		table := fmt.Sprintf("ddl_%d", i)
		if _, err := ddl.Exec(fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, n INT)", table)); err != nil {
			t.Fatal(err)
		}
		if _, err := ddl.Exec(fmt.Sprintf("INSERT INTO %s VALUES (1, %d)", table, i)); err != nil {
			t.Fatal(err)
		}
		res, err := ddl.Query(fmt.Sprintf("SELECT n FROM %s WHERE id = 1", table))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Int != int64(i) {
			t.Fatalf("table %s: got %+v", table, res.Rows)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Fatal(err)
	}
}

// TestServerGracefulDrain checks Close lets in-flight work finish and says
// goodbye; later calls on the client fail as server-shutdown.
func TestServerGracefulDrain(t *testing.T) {
	srv, _ := newTestServer(t)
	client := newTestClient(t, srv)
	if _, err := client.Query("SELECT v FROM t WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The draining (or drained) server must not accept this operation; any
	// path — MsgBye-induced conn death or dial refusal — is acceptable, but
	// it must fail fast, not hang.
	done := make(chan error, 1)
	go func() {
		_, err := client.Query("SELECT v FROM t WHERE id = 4")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("query succeeded after drain")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query hung after drain")
	}
}

// TestClientRetry exercises the autocommit retry loop against a backend
// that fails with retryable errors before succeeding.
func TestClientRetry(t *testing.T) {
	fb := &flakyBackend{failFirst: 3}
	srv, err := Serve("127.0.0.1:0", ServerConfig{Backend: fb})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(ClientConfig{Addr: srv.Addr(), Database: "app", RetryLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Exec("UPDATE t SET v = 1 WHERE id = 1"); err != nil {
		t.Fatalf("retry loop gave up: %v", err)
	}
	if got := fb.begins.Load(); got != 4 {
		t.Fatalf("expected 4 attempts (3 failures + success), backend saw %d", got)
	}
	// Non-retryable errors must surface immediately.
	fb.failFirst = 1 << 30
	fb.hard = true
	before := fb.begins.Load()
	if _, err := client.Exec("UPDATE t SET v = 1 WHERE id = 1"); err == nil {
		t.Fatal("hard error should fail")
	}
	if fb.begins.Load() != before+1 {
		t.Fatal("hard error must not be retried")
	}
}

// flakyBackend fails the first N transactions with a retryable conflict.
type flakyBackend struct {
	begins    atomic.Int64
	failFirst int64
	hard      bool
}

func (f *flakyBackend) Authenticate(db, token string) error { return nil }

func (f *flakyBackend) Begin(db string) (Txn, error) {
	n := f.begins.Add(1)
	return flakyTxn{fail: n <= f.failFirst, hard: f.hard}, nil
}

type flakyTxn struct{ fail, hard bool }

func (t flakyTxn) ExecStmt(sql string, stmt sqldb.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	if t.hard {
		return nil, errors.New("hard failure")
	}
	if t.fail {
		return nil, sqldb.ErrOptimisticConflict
	}
	return &sqldb.Result{Affected: 1}, nil
}

func (t flakyTxn) Commit() error   { return nil }
func (t flakyTxn) Rollback() error { return nil }
