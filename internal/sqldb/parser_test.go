package sqldb

import (
	"errors"
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x = 'it''s' -- comment\nAND y >= 2.5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	wantTexts := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", "=", "it's", "AND", "y", ">=", "2.5", ""}
	if len(texts) != len(wantTexts) {
		t.Fatalf("token count = %d, want %d (%v)", len(texts), len(wantTexts), texts)
	}
	for i := range wantTexts {
		if texts[i] != wantTexts[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], wantTexts[i])
		}
	}
	if kinds[9] != tokString {
		t.Errorf("token 9 kind = %v, want string", kinds[9])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"SELECT 'unterminated", "SELECT a ! b", "SELECT #"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE item (
		i_id INT PRIMARY KEY,
		i_title VARCHAR(60) NOT NULL,
		i_cost FLOAT,
		i_flag BOOL,
		i_sku TEXT UNIQUE
	)`)
	ct, ok := stmt.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Table != "item" || len(ct.Cols) != 5 {
		t.Fatalf("table=%q cols=%d", ct.Table, len(ct.Cols))
	}
	if !ct.Cols[0].PrimaryKey || ct.Cols[0].Typ != TypeInt {
		t.Errorf("col0 = %+v", ct.Cols[0])
	}
	if !ct.Cols[1].NotNull || ct.Cols[1].Typ != TypeText {
		t.Errorf("col1 = %+v", ct.Cols[1])
	}
	if !ct.Cols[4].Unique {
		t.Errorf("col4 = %+v", ct.Cols[4])
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE IF NOT EXISTS t (a INT)").(*CreateTableStmt)
	if !ct.IfNotExists {
		t.Error("IfNotExists not set")
	}
}

func TestParseCreateIndex(t *testing.T) {
	ci := mustParse(t, "CREATE UNIQUE INDEX idx_a ON t (a)").(*CreateIndexStmt)
	if ci.Name != "idx_a" || ci.Table != "t" || ci.Col != "a" || !ci.Unique {
		t.Errorf("%+v", ci)
	}
}

func TestParseDrop(t *testing.T) {
	d := mustParse(t, "DROP TABLE IF EXISTS t;").(*DropTableStmt)
	if d.Table != "t" || !d.IfExists {
		t.Errorf("%+v", d)
	}
}

func TestParseInsert(t *testing.T) {
	in := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").(*InsertStmt)
	if in.Table != "t" || len(in.Cols) != 2 || len(in.Rows) != 2 {
		t.Fatalf("%+v", in)
	}
	lit := in.Rows[1][1].(*LiteralExpr)
	if !lit.Val.IsNull() {
		t.Errorf("want NULL literal, got %v", lit.Val)
	}
}

func TestParseInsertParams(t *testing.T) {
	in := mustParse(t, "INSERT INTO t VALUES (?, ?)").(*InsertStmt)
	p0 := in.Rows[0][0].(*ParamExpr)
	p1 := in.Rows[0][1].(*ParamExpr)
	if p0.Index != 0 || p1.Index != 1 {
		t.Errorf("param indexes %d, %d", p0.Index, p1.Index)
	}
}

func TestParseUpdate(t *testing.T) {
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'y' WHERE id = 3").(*UpdateStmt)
	if up.Table != "t" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM t WHERE a BETWEEN 1 AND 10").(*DeleteStmt)
	if del.Table != "t" {
		t.Fatalf("%+v", del)
	}
	if _, ok := del.Where.(*BetweenExpr); !ok {
		t.Errorf("where = %T", del.Where)
	}
}

func TestParseSelectFull(t *testing.T) {
	sel := mustParse(t, `SELECT DISTINCT c.name, COUNT(*) AS n
		FROM orders o
		JOIN customer c ON o.cust_id = c.id
		LEFT JOIN address a ON c.addr_id = a.id
		WHERE o.total > 10.5 AND c.name LIKE 'A%'
		GROUP BY c.name
		HAVING COUNT(*) > 1
		ORDER BY n DESC, c.name
		LIMIT 10 OFFSET 5`).(*SelectStmt)
	if !sel.Distinct || len(sel.Items) != 2 || len(sel.Joins) != 2 {
		t.Fatalf("%+v", sel)
	}
	if !sel.Joins[1].Left {
		t.Error("second join should be LEFT")
	}
	if sel.Limit != 10 || sel.Offset != 5 {
		t.Errorf("limit=%d offset=%d", sel.Limit, sel.Offset)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("missing GROUP BY / HAVING")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT *, t.* FROM t").(*SelectStmt)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "" {
		t.Errorf("item0 = %+v", sel.Items[0])
	}
	if !sel.Items[1].Star || sel.Items[1].StarTable != "t" {
		t.Errorf("item1 = %+v", sel.Items[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top op = %v", sel.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right op = %v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT 1 + 2 * 3 FROM t").(*SelectStmt)
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top = %v", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("right = %v", mul.Op)
	}
}

func TestParseInAndIsNull(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE a IN (1,2,3) AND b IS NOT NULL AND c NOT IN (4)").(*SelectStmt)
	conj := splitAnd(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	in := conj[0].(*InExpr)
	if in.Negate || len(in.List) != 3 {
		t.Errorf("%+v", in)
	}
	isn := conj[1].(*IsNullExpr)
	if !isn.Negate {
		t.Errorf("%+v", isn)
	}
	nin := conj[2].(*InExpr)
	if !nin.Negate {
		t.Errorf("%+v", nin)
	}
}

func TestParseTxnControl(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Error("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*CommitStmt); !ok {
		t.Error("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Error("ROLLBACK")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"INSERT t VALUES (1)",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BLOB)",
		"UPDATE t SET",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a FROM t extra garbage tokens ,",
		"DELETE FROM",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("Parse(%q) error type %T, want *ParseError", src, err)
			}
		}
	}
}

func TestParseErrorMessageHasOffset(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE ^")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("err = %v", err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "%%c", true},
		{"ABC", "abc", true}, // case-insensitive, like MySQL's default collation
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
