//go:build linux

package experiments

import "syscall"

// raiseFDLimit lifts RLIMIT_NOFILE so the connection-scaling benchmark can
// hold >10k client sockets plus the server's matching accept sockets in one
// process. Best effort: without privileges the soft limit still rises to
// the hard limit.
func raiseFDLimit(want uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= want {
		return
	}
	raised := lim
	raised.Cur = want
	if raised.Max < want {
		raised.Max = want // only root may raise the hard limit
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised); err != nil {
		// Fall back to maxing out the soft limit under the existing hard cap.
		lim.Cur = lim.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}
