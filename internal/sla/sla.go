// Package sla implements the paper's Section 4: the formal model of
// database Service Level Agreements, the mapping of SLAs to measurable
// resource requirements, the availability constraint, and the SLA-based
// placement of database replicas onto the minimum number of machines
// (First-Fit and friends, plus an exhaustive optimal solver used offline as
// the baseline of Table 2).
package sla

import (
	"fmt"
	"time"
)

// Resources is the multi-dimensional resource vector of the paper: CPU
// cycles, main memory, disk size and disk bandwidth. Units are abstract but
// must be consistent between requirements and capacities.
type Resources struct {
	CPU    float64 // CPU cycles per second
	Memory float64 // bytes of main memory
	Disk   float64 // bytes of disk
	DiskBW float64 // disk bandwidth, bytes per second
}

// Add returns r + o component-wise.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		CPU:    r.CPU + o.CPU,
		Memory: r.Memory + o.Memory,
		Disk:   r.Disk + o.Disk,
		DiskBW: r.DiskBW + o.DiskBW,
	}
}

// Sub returns r - o component-wise.
func (r Resources) Sub(o Resources) Resources {
	return Resources{
		CPU:    r.CPU - o.CPU,
		Memory: r.Memory - o.Memory,
		Disk:   r.Disk - o.Disk,
		DiskBW: r.DiskBW - o.DiskBW,
	}
}

// Fits reports whether r fits within capacity c component-wise.
func (r Resources) Fits(c Resources) bool {
	return r.CPU <= c.CPU && r.Memory <= c.Memory && r.Disk <= c.Disk && r.DiskBW <= c.DiskBW
}

// NonNegative reports whether every component is >= 0.
func (r Resources) NonNegative() bool {
	return r.CPU >= 0 && r.Memory >= 0 && r.Disk >= 0 && r.DiskBW >= 0
}

// Scale returns r scaled by f.
func (r Resources) Scale(f float64) Resources {
	return Resources{CPU: r.CPU * f, Memory: r.Memory * f, Disk: r.Disk * f, DiskBW: r.DiskBW * f}
}

// String renders the vector compactly.
func (r Resources) String() string {
	return fmt.Sprintf("{cpu:%.2f mem:%.2f disk:%.2f bw:%.2f}", r.CPU, r.Memory, r.Disk, r.DiskBW)
}

// SLA is a database's service level agreement (paper Section 4.1): a
// minimum throughput and a maximum fraction of proactively rejected
// transactions, both over a time period.
type SLA struct {
	// MinThroughput is the required transactions per second over Period.
	MinThroughput float64
	// MaxRejectFraction bounds the fraction of proactively rejected
	// transactions over Period. Rejections happen during replica creation
	// (recovery and reallocation); application-inherent failures such as
	// deadlocks do not count.
	MaxRejectFraction float64
	// MaxMeanLatency, when positive, bounds the mean commit latency the
	// compliance monitor will accept per accounting window. The paper's
	// Section 4 model is throughput/availability only; this is the latency
	// dimension operators invariably add on top. Zero leaves latency
	// unconstrained.
	MaxMeanLatency time.Duration
	// Period is the measurement window T.
	Period time.Duration
}

// AvailabilityInputs are the measurable parameters the paper maps the
// availability requirement to.
type AvailabilityInputs struct {
	// MachineFailureRate is the number of failures of a hosting machine
	// over the period.
	MachineFailureRate float64
	// ReallocationRate is the number of replica moves over the period due
	// to maintenance/reorganisation (not recovery).
	ReallocationRate float64
	// RecoveryTime is the time to copy the database during recovery.
	RecoveryTime time.Duration
	// WriteMix is the fraction of update transactions in the workload.
	WriteMix float64
}

// RejectFraction computes the expected fraction of proactively rejected
// transactions implied by the inputs:
//
//	(failure_rate + reallocation_rate) * (recovery_time / T) * write_mix
//
// — the left side of the paper's availability constraint.
func (in AvailabilityInputs) RejectFraction(period time.Duration) float64 {
	if period <= 0 {
		return 0
	}
	return (in.MachineFailureRate + in.ReallocationRate) *
		(in.RecoveryTime.Seconds() / period.Seconds()) * in.WriteMix
}

// SatisfiesAvailability reports whether the inputs meet the SLA's
// availability requirement.
func (s SLA) SatisfiesAvailability(in AvailabilityInputs) bool {
	return in.RejectFraction(s.Period) < s.MaxRejectFraction
}

// MaxRecoveryTime solves the availability constraint for the recovery time:
// the longest copy duration that still meets the SLA. Returns a negative
// duration if the constraint cannot be met at any recovery time > 0.
func (s SLA) MaxRecoveryTime(in AvailabilityInputs) time.Duration {
	rate := in.MachineFailureRate + in.ReallocationRate
	if rate <= 0 || in.WriteMix <= 0 {
		return time.Duration(1<<62 - 1) // unconstrained
	}
	seconds := s.MaxRejectFraction * s.Period.Seconds() / (rate * in.WriteMix)
	return time.Duration(seconds * float64(time.Second))
}

// Database describes one database to place: its identity, SLA, and the
// per-replica resource requirement observed during the profiling period.
type Database struct {
	Name string
	SLA  SLA
	// Req is r[j]: the resources one replica needs to meet the throughput
	// SLA, measured while the database ran on a dedicated machine.
	Req Resources
	// Replicas is the number of replicas to place (>= 2 for fault
	// tolerance).
	Replicas int
}

// Machine describes one machine available for placement.
type Machine struct {
	Name string
	// Cap is R[i]: the machine's resource capacity.
	Cap Resources
}

// Profile estimates the per-replica resource requirement of a database from
// its size and throughput SLA — the paper's observation period distilled
// into a deterministic model, so experiments are reproducible. The constants
// model a commodity machine normalised to capacity 1.0 in each dimension
// hosting, e.g., one 1 GB / 10 TPS database at full utilisation.
func Profile(sizeMB float64, tps float64) Resources {
	return Resources{
		CPU:    tps / 10.0,      // 10 TPS saturates one machine's CPU
		Memory: sizeMB / 1000.0, // 1000 MB of hot set saturates memory
		Disk:   sizeMB / 2000.0, // 2 GB of disk per machine unit
		DiskBW: tps / 20.0,      // disk bandwidth scales with throughput
	}
}

// UnitMachine returns the normalised commodity machine used in the Table 2
// experiments: capacity 1.0 in every dimension.
func UnitMachine(name string) Machine {
	return Machine{Name: name, Cap: Resources{CPU: 1, Memory: 1, Disk: 1, DiskBW: 1}}
}
