package sqldb

import (
	"errors"
	"testing"
)

// evalOne evaluates a standalone SQL expression by wrapping it in a
// FROM-less SELECT.
func evalOne(t *testing.T, expr string) (Value, error) {
	t.Helper()
	stmt, err := Parse("SELECT " + expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	sel := stmt.(*SelectStmt)
	return evalExpr(sel.Items[0].Expr, &evalCtx{})
}

func mustEval(t *testing.T, expr string) Value {
	t.Helper()
	v, err := evalOne(t, expr)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestThreeValuedLogicTables(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		// AND truth table with NULL.
		{"TRUE AND TRUE", NewBool(true)},
		{"TRUE AND FALSE", NewBool(false)},
		{"TRUE AND NULL", Null},
		{"FALSE AND NULL", NewBool(false)},
		{"NULL AND NULL", Null},
		// OR truth table with NULL.
		{"TRUE OR NULL", NewBool(true)},
		{"FALSE OR NULL", Null},
		{"FALSE OR FALSE", NewBool(false)},
		{"NULL OR NULL", Null},
		// NOT.
		{"NOT TRUE", NewBool(false)},
		{"NOT NULL", Null},
		// Comparisons with NULL are unknown.
		{"1 = NULL", Null},
		{"NULL <> NULL", Null},
		{"NULL < 5", Null},
		// IS NULL is never unknown.
		{"NULL IS NULL", NewBool(true)},
		{"1 IS NULL", NewBool(false)},
		{"1 IS NOT NULL", NewBool(true)},
	}
	for _, c := range cases {
		got := mustEval(t, c.expr)
		if Compare(got, c.want) != 0 || got.Typ != c.want.Typ {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"1 + 2", NewInt(3)},
		{"7 - 9", NewInt(-2)},
		{"3 * 4", NewInt(12)},
		{"7 / 2", NewFloat(3.5)}, // division always floats
		{"1 + 2.5", NewFloat(3.5)},
		{"-5", NewInt(-5)},
		{"-(2.5)", NewFloat(-2.5)},
		{"1 + NULL", Null},
		{"NULL * 2", Null},
		{"1 / 0", Null},
		{"2 + 3 * 4", NewInt(14)},
		{"(2 + 3) * 4", NewInt(20)},
	}
	for _, c := range cases {
		got := mustEval(t, c.expr)
		if Compare(got, c.want) != 0 || got.Typ != c.want.Typ {
			t.Errorf("%s = %v (%v), want %v (%v)", c.expr, got, got.Typ, c.want, c.want.Typ)
		}
	}
}

func TestEvalTypeErrors(t *testing.T) {
	for _, expr := range []string{
		"'a' + 1",
		"TRUE + 1",
		"NOT 5",
		"-'x'",
		"1 AND TRUE",
		"'a' < 1",
		"1 LIKE 'x'",
	} {
		if _, err := evalOne(t, expr); !errors.Is(err, ErrTypeMismatch) {
			t.Errorf("%s: err = %v, want ErrTypeMismatch", expr, err)
		}
	}
}

func TestInBetweenLikeNullSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"2 IN (1, 2, 3)", NewBool(true)},
		{"4 IN (1, 2, 3)", NewBool(false)},
		{"4 NOT IN (1, 2, 3)", NewBool(true)},
		// SQL's subtle rule: x IN (..NULL..) is unknown when not found.
		{"4 IN (1, NULL)", Null},
		{"1 IN (1, NULL)", NewBool(true)},
		{"NULL IN (1, 2)", Null},
		{"5 BETWEEN 1 AND 10", NewBool(true)},
		{"0 BETWEEN 1 AND 10", NewBool(false)},
		{"0 NOT BETWEEN 1 AND 10", NewBool(true)},
		{"NULL BETWEEN 1 AND 2", Null},
		{"5 BETWEEN NULL AND 10", Null},
		{"'hello' LIKE 'h%'", NewBool(true)},
		{"'hello' NOT LIKE 'h%'", NewBool(false)},
		{"NULL LIKE 'h%'", Null},
		{"'x' LIKE NULL", Null},
	}
	for _, c := range cases {
		got := mustEval(t, c.expr)
		if Compare(got, c.want) != 0 || got.Typ != c.want.Typ {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestPredTrueWhereSemantics(t *testing.T) {
	// WHERE filters out rows whose predicate is NULL (unknown).
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 5), (2, NULL)")
	res := mustExec(t, e, "SELECT id FROM t WHERE n > 3")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
	// NOT(NULL) is still NULL: the row stays filtered.
	res = mustExec(t, e, "SELECT id FROM t WHERE NOT (n > 3)")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE x (id INT PRIMARY KEY, v INT)")
	mustExec(t, e, "CREATE TABLE y (id INT PRIMARY KEY, v INT)")
	mustExec(t, e, "INSERT INTO x VALUES (1, 1)")
	mustExec(t, e, "INSERT INTO y VALUES (1, 2)")
	if _, err := e.Exec("app", "SELECT v FROM x JOIN y ON x.id = y.id"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("ambiguous column err = %v", err)
	}
	res := mustExec(t, e, "SELECT x.v, y.v FROM x JOIN y ON x.id = y.id")
	if res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, a TEXT, b INT, n INT)")
	mustExec(t, e, `INSERT INTO t VALUES
		(1, 'x', 1, 10), (2, 'x', 1, 20), (3, 'x', 2, 30), (4, 'y', 1, 40)`)
	res := mustExec(t, e, "SELECT a, b, SUM(n) FROM t GROUP BY a, b ORDER BY a, b")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][2].Int != 30 || res.Rows[1][2].Int != 30 || res.Rows[2][2].Int != 40 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOrderByAggregate(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, g TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'b'),(4,'b'),(5,'a')")
	res := mustExec(t, e, "SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY COUNT(*) DESC")
	if res.Rows[0][0].Str != "b" || res.Rows[0][1].Int != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, g TEXT, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1,'a',1),(2,'a',2),(3,'b',2),(4,'b',NULL)")
	res := mustExec(t, e, "SELECT COUNT(DISTINCT g), COUNT(DISTINCT n), COUNT(g) FROM t")
	row := res.Rows[0]
	if row[0].Int != 2 || row[1].Int != 2 || row[2].Int != 4 {
		t.Errorf("row = %v", row)
	}
	// SUM(DISTINCT ...) follows the same rule.
	res = mustExec(t, e, "SELECT SUM(DISTINCT n) FROM t")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("sum distinct = %v", res.Rows[0][0])
	}
	// Per group.
	res = mustExec(t, e, "SELECT g, COUNT(DISTINCT n) FROM t GROUP BY g ORDER BY g")
	if res.Rows[0][1].Int != 2 || res.Rows[1][1].Int != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}
