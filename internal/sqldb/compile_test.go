package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// diffEngine builds the table the differential tests run against: mixed
// types, NULLs, negative keys, quoted text, and two secondary indexes so
// every access path (point, index-eq, index-range, scan) is reachable.
func diffEngine(t *testing.T) *Engine {
	t.Helper()
	e := newTestDB(t)
	mustExec(t, e, `CREATE TABLE item (id INT PRIMARY KEY, title TEXT NOT NULL, cost FLOAT, qty INT, subject TEXT)`)
	mustExec(t, e, `CREATE INDEX idx_subject ON item (subject)`)
	mustExec(t, e, `CREATE INDEX idx_qty ON item (qty)`)
	rows := []string{
		`(-3, 'neg', 1.5, 7, 'HISTORY')`,
		`(0, 'zero', NULL, 0, 'ART')`,
		`(1, 'alpha', 9.99, 3, 'HISTORY')`,
		`(2, 'it''s', 2.25, NULL, 'COOKING')`,
		`(3, 'beta', 0.5, 3, NULL)`,
		`(4, 'Alpha', 12.0, 5, 'ART')`,
		`(5, 'gamma ray', 7.75, 2, 'HISTORY')`,
		`(6, '', 3.0, 9, 'COOKING')`,
		`(7, 'delta', NULL, NULL, NULL)`,
		`(8, '%wild%', 4.5, 1, 'ART')`,
		`(9, 'omega', 100.25, 12, 'SCIENCE')`,
		`(10, 'alphabet', 6.0, 3, 'SCIENCE')`,
	}
	mustExec(t, e, "INSERT INTO item VALUES "+strings.Join(rows, ", "))
	return e
}

// runPlanned executes one planned statement in its own transaction and
// returns the result, rolling back on error exactly like Engine.Exec.
func runPlanned(e *Engine, readOnly bool, stmt Statement, plan *stmtPlan, params []Value) (*Result, error) {
	var tx *Txn
	var err error
	if readOnly {
		tx, err = e.BeginReadOnly("app")
	} else {
		tx, err = e.Begin("app")
	}
	if err != nil {
		return nil, err
	}
	res, err := tx.execPlanned(stmt, plan, params, nil)
	if err != nil {
		_ = tx.Rollback()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// assertDiff runs one SELECT through the tree-walking interpreter, the
// compiled locking path, and the compiled optimistic read-only path, and
// requires all three to agree on columns, rows, and errors.
func assertDiff(t *testing.T, e *Engine, sql string, params ...Value) {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	plan, _ := planStatement(e, "app", stmt)
	if plan == nil {
		t.Fatalf("no plan for %q", sql)
	}
	interp := *plan
	interp.compiled = nil

	wantRes, wantErr := runPlanned(e, false, stmt, &interp, params)
	for _, mode := range []struct {
		name     string
		readOnly bool
	}{{"compiled-locking", false}, {"compiled-optimistic", true}} {
		got, gotErr := runPlanned(e, mode.readOnly, stmt, plan, params)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("%s %q: err=%v, interpreter err=%v", mode.name, sql, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%s %q: err=%q, interpreter err=%q", mode.name, sql, gotErr, wantErr)
			}
			continue
		}
		if !reflect.DeepEqual(got.Cols, wantRes.Cols) {
			t.Fatalf("%s %q: cols=%v, interpreter cols=%v", mode.name, sql, got.Cols, wantRes.Cols)
		}
		if len(got.Rows) != len(wantRes.Rows) {
			t.Fatalf("%s %q: %d rows, interpreter %d rows\n got: %v\nwant: %v",
				mode.name, sql, len(got.Rows), len(wantRes.Rows), got.Rows, wantRes.Rows)
		}
		for i := range got.Rows {
			if !reflect.DeepEqual(got.Rows[i], wantRes.Rows[i]) {
				t.Fatalf("%s %q: row %d = %v, interpreter %v", mode.name, sql, i, got.Rows[i], wantRes.Rows[i])
			}
		}
	}
}

// TestCompiledDifferentialCorpus pins the compiled executor to the
// interpreter across a hand-written corpus covering every access path,
// projection shape, ORDER BY/LIMIT/OFFSET combination, and error case.
func TestCompiledDifferentialCorpus(t *testing.T) {
	e := diffEngine(t)
	defer e.Close()
	one := []Value{NewInt(1)}
	corpus := []struct {
		sql    string
		params []Value
	}{
		// Point reads, hit and miss, with and without residuals.
		{"SELECT * FROM item WHERE id = 1", nil},
		{"SELECT * FROM item WHERE id = -3", nil},
		{"SELECT * FROM item WHERE id = 999", nil},
		{"SELECT title FROM item WHERE id = ?", one},
		{"SELECT title, cost FROM item WHERE id = 1 AND qty > 2", nil},
		{"SELECT title FROM item WHERE id = 1 AND qty > 100", nil},
		{"SELECT id FROM item WHERE id = 2 AND title = 'it''s'", nil},
		// Index equality, with residuals and projections.
		{"SELECT id, title FROM item WHERE subject = 'HISTORY'", nil},
		{"SELECT id FROM item WHERE subject = 'ART' AND cost > 5.0", nil},
		{"SELECT id, qty FROM item WHERE qty = 3", nil},
		{"SELECT id FROM item WHERE subject = 'MISSING'", nil},
		{"SELECT id FROM item WHERE subject = ?", []Value{NewText("SCIENCE")}},
		// Ranges on the primary key and on a secondary index.
		{"SELECT id FROM item WHERE id > 3", nil},
		{"SELECT id FROM item WHERE id >= -3 AND id < 4", nil},
		{"SELECT id, title FROM item WHERE id BETWEEN 2 AND 6", nil},
		{"SELECT id FROM item WHERE qty > 2 AND qty <= 7", nil},
		{"SELECT id FROM item WHERE qty BETWEEN ? AND ?", []Value{NewInt(1), NewInt(5)}},
		// Scans: LIKE, IN, IS NULL, boolean structure, expressions.
		{"SELECT id FROM item WHERE title LIKE 'alpha%'", nil},
		{"SELECT id FROM item WHERE title LIKE '%a%'", nil},
		{"SELECT id FROM item WHERE title NOT LIKE '%a%'", nil},
		{"SELECT id FROM item WHERE title LIKE ?", []Value{NewText("%wild%")}},
		{"SELECT id FROM item WHERE cost IS NULL", nil},
		{"SELECT id FROM item WHERE subject IS NOT NULL AND qty IS NULL", nil},
		{"SELECT id FROM item WHERE id IN (1, 3, 5, 99)", nil},
		{"SELECT id FROM item WHERE subject IN ('ART', 'SCIENCE')", nil},
		{"SELECT id FROM item WHERE qty NOT IN (3, NULL)", nil},
		{"SELECT id FROM item WHERE cost * 2.0 > 10.0", nil},
		{"SELECT id FROM item WHERE NOT (qty > 3)", nil},
		{"SELECT id FROM item WHERE qty > 2 OR subject = 'ART'", nil},
		{"SELECT id FROM item WHERE -id = 3", nil},
		// Projection shapes: *, flat columns, computed expressions, aliases.
		{"SELECT * FROM item WHERE subject = 'ART'", nil},
		{"SELECT cost, id, title FROM item WHERE id < 4", nil},
		{"SELECT id, cost * 2.0 AS double_cost FROM item WHERE id BETWEEN 1 AND 5", nil},
		{"SELECT id + qty AS s FROM item WHERE id > 5", nil},
		{"SELECT title, qty FROM item WHERE qty = 3", nil},
		// ORDER BY on projected and non-projected keys, DESC, multi-key.
		{"SELECT id, title FROM item WHERE id > 0 ORDER BY title", nil},
		{"SELECT id FROM item WHERE id > 0 ORDER BY cost DESC", nil},
		{"SELECT id, qty FROM item WHERE subject IS NOT NULL ORDER BY qty DESC, id", nil},
		{"SELECT title FROM item WHERE id > -5 ORDER BY id DESC", nil},
		// LIMIT and OFFSET, including past-the-end values.
		{"SELECT id FROM item WHERE id > 0 ORDER BY id LIMIT 3", nil},
		{"SELECT id FROM item WHERE id > 0 ORDER BY id LIMIT 3 OFFSET 2", nil},
		{"SELECT id FROM item WHERE id > 0 ORDER BY id LIMIT 100 OFFSET 11", nil},
		{"SELECT id FROM item ORDER BY id LIMIT 0", nil},
		// Statements the compiler rejects: both paths interpret, must agree.
		{"SELECT DISTINCT subject FROM item WHERE subject IS NOT NULL ORDER BY subject", nil},
		{"SELECT subject, COUNT(*) AS n FROM item GROUP BY subject ORDER BY subject", nil},
		{"SELECT MAX(cost) AS top FROM item", nil},
		// Error cases: identical error text on every path.
		{"SELECT id FROM item WHERE title > 5", nil},
		{"SELECT id FROM item WHERE qty + title = 3", nil},
		{"SELECT id FROM item WHERE id = ?", nil}, // missing parameter
		{"SELECT id FROM item WHERE subject LIKE 5", nil},
	}
	for _, c := range corpus {
		assertDiff(t, e, c.sql, c.params...)
	}
}

// TestCompiledDifferentialRandom fuzzes randomly generated WHERE clauses and
// projections through all three execution paths with a deterministic seed.
func TestCompiledDifferentialRandom(t *testing.T) {
	e := diffEngine(t)
	defer e.Close()
	rng := rand.New(rand.NewSource(0xC0FFEE))

	cols := []string{"id", "title", "cost", "qty", "subject"}
	consts := []string{"0", "3", "-3", "5.0", "'HISTORY'", "'alpha'", "''", "NULL", "100.25", "9"}
	cmps := []string{"=", "<>", "<", "<=", ">", ">="}

	var genPred func(depth int) string
	genPred = func(depth int) string {
		if depth > 2 || rng.Intn(3) == 0 {
			col := cols[rng.Intn(len(cols))]
			switch rng.Intn(6) {
			case 0:
				return fmt.Sprintf("%s %s %s", col, cmps[rng.Intn(len(cmps))], consts[rng.Intn(len(consts))])
			case 1:
				return fmt.Sprintf("%s IS NULL", col)
			case 2:
				return fmt.Sprintf("%s IS NOT NULL", col)
			case 3:
				return fmt.Sprintf("%s BETWEEN %d AND %d", col, rng.Intn(6)-3, rng.Intn(10))
			case 4:
				return fmt.Sprintf("%s IN (%s, %s)", col, consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))])
			default:
				return fmt.Sprintf("title LIKE '%%%c%%'", 'a'+rune(rng.Intn(26)))
			}
		}
		op := "AND"
		if rng.Intn(2) == 0 {
			op = "OR"
		}
		l, r := genPred(depth+1), genPred(depth+1)
		if rng.Intn(4) == 0 {
			return fmt.Sprintf("NOT (%s %s %s)", l, op, r)
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}

	genProj := func() string {
		switch rng.Intn(4) {
		case 0:
			return "*"
		case 1:
			return cols[rng.Intn(len(cols))]
		case 2:
			a, b := cols[rng.Intn(len(cols))], cols[rng.Intn(len(cols))]
			return fmt.Sprintf("%s, %s", a, b)
		default:
			return "id, cost * 2.0 AS c2, qty"
		}
	}

	for i := 0; i < 400; i++ {
		sql := fmt.Sprintf("SELECT %s FROM item WHERE %s", genProj(), genPred(0))
		if rng.Intn(2) == 0 {
			sql += " ORDER BY id"
			if rng.Intn(2) == 0 {
				sql += " DESC"
			}
		}
		if rng.Intn(3) == 0 {
			sql += fmt.Sprintf(" LIMIT %d", rng.Intn(6))
			if rng.Intn(2) == 0 {
				sql += fmt.Sprintf(" OFFSET %d", rng.Intn(4))
			}
		}
		assertDiff(t, e, sql)
	}
}

// TestCompiledPointReadZeroAllocs enforces the allocation budget of the
// tentpole: a compiled point read through a recycled read-only transaction
// must not allocate at all in steady state.
func TestCompiledPointReadZeroAllocs(t *testing.T) {
	e := diffEngine(t)
	defer e.Close()
	stmt, err := Parse("SELECT title FROM item WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	params := []Value{NewInt(1)}
	run := func() {
		tx, err := e.BeginReadOnly("app")
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.ExecStmtInto(&res, stmt, params...); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ { // warm plan memo, txn pool, scratch buffers
		run()
	}
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("compiled point read allocates %.1f objects/op, budget is 0", allocs)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "alpha" {
		t.Fatalf("unexpected result %v", res.Rows)
	}
}

// TestCompiledExplainExecMode checks that EXPLAIN reports the executor that
// will actually serve the statement.
func TestCompiledExplainExecMode(t *testing.T) {
	e := diffEngine(t)
	defer e.Close()
	cases := []struct {
		sql    string
		access string
		exec   string
	}{
		{"EXPLAIN SELECT title FROM item WHERE id = 1", "point", "exec=compiled"},
		{"EXPLAIN SELECT id FROM item WHERE subject = 'ART'", "index", "exec=compiled"},
		{"EXPLAIN SELECT id FROM item WHERE id > 3", "range", "exec=compiled"},
		{"EXPLAIN SELECT id FROM item WHERE title LIKE '%a%'", "scan", "exec=compiled"},
		{"EXPLAIN SELECT subject, COUNT(*) AS n FROM item GROUP BY subject", "", "exec=interpreted"},
	}
	for _, c := range cases {
		res := mustExec(t, e, c.sql)
		if len(res.Rows) == 0 {
			t.Fatalf("%q: no explain rows", c.sql)
		}
		row := fmt.Sprint(res.Rows[0])
		if c.access != "" && !strings.Contains(row, c.access) {
			t.Errorf("%q: access %q not in %s", c.sql, c.access, row)
		}
		if !strings.Contains(row, c.exec) {
			t.Errorf("%q: %q not in %s", c.sql, c.exec, row)
		}
	}
}

// TestCompiledStatementCounters checks the observability wiring: compiling a
// plan bumps plan_compile_total, compiled execution bumps compiled_exec_total
// and the optimistic hit counter.
func TestCompiledStatementCounters(t *testing.T) {
	e := diffEngine(t)
	defer e.Close()
	before := e.Stats()
	tx, err := e.BeginReadOnly("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("SELECT title FROM item WHERE id = 4"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.CompiledExecs <= before.CompiledExecs {
		t.Errorf("compiled_exec_total did not advance: %d -> %d", before.CompiledExecs, after.CompiledExecs)
	}
	if after.OptimisticHits <= before.OptimisticHits {
		t.Errorf("readpath_optimistic_hits did not advance: %d -> %d", before.OptimisticHits, after.OptimisticHits)
	}
	if after.PlanCompiles == 0 {
		t.Error("plan_compile_total is zero after compiling plans")
	}
	if after.StmtExecs <= before.StmtExecs {
		t.Errorf("stmt_exec_total did not advance: %d -> %d", before.StmtExecs, after.StmtExecs)
	}
}

// TestReadOnlyTxnRejectsWrites pins the read-only transaction contract.
func TestReadOnlyTxnRejectsWrites(t *testing.T) {
	e := diffEngine(t)
	defer e.Close()
	tx, err := e.BeginReadOnly("app")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tx.Rollback() }()
	if _, err := tx.Exec("UPDATE item SET qty = 1 WHERE id = 1"); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("UPDATE in read-only txn: err=%v, want ErrReadOnlyTxn", err)
	}
	if _, err := tx.Exec("SELECT id FROM item WHERE id = 1"); err != nil {
		t.Fatalf("SELECT after rejected write: %v", err)
	}
}

// TestOptimisticReadRaceStress races optimistic read-only transactions
// against writers that continuously update, insert, and delete rows. Run
// with -race this exercises the epoch/dirty validation protocol: readers
// must always observe committed images (qty is only ever written as an even
// number, so an odd qty means a torn or uncommitted read).
func TestOptimisticReadRaceStress(t *testing.T) {
	e := newTestDB(t)
	defer e.Close()
	mustExec(t, e, "CREATE TABLE acct (id INT PRIMARY KEY, qty INT, tag TEXT)")
	mustExec(t, e, "CREATE INDEX idx_tag ON acct (tag)")
	const nRows = 32
	for i := 0; i < nRows; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO acct VALUES (%d, 0, 'tag%d')", i, i%4))
	}

	iters := 3000
	if testing.Short() {
		iters = 300
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	var conflicts, reads atomic.Uint64

	// Writers: bump qty by 2 (keeping it even), plus insert/delete churn in
	// a high key range the readers' range queries cover.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for i := 0; i < iters; i++ {
				id := rng.Intn(nRows)
				if _, err := e.Exec("app",
					"UPDATE acct SET qty = qty + 2 WHERE id = ?", NewInt(int64(id))); err != nil && !isAbortError(err) {
					t.Errorf("writer: %v", err)
					return
				}
				hi := int64(1000 + rng.Intn(16))
				_, _ = e.Exec("app", "INSERT INTO acct VALUES (?, 2, 'hot')", NewInt(hi))
				_, _ = e.Exec("app", "DELETE FROM acct WHERE id = ?", NewInt(hi))
			}
		}(w)
	}

	// Readers: point, index-eq, and range statements on the optimistic path.
	queries := []string{
		"SELECT qty FROM acct WHERE id = 5",
		"SELECT id, qty FROM acct WHERE tag = 'tag1'",
		"SELECT id, qty FROM acct WHERE id >= 0 AND id < 2000 ORDER BY id",
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := e.BeginReadOnly("app")
				if err != nil {
					t.Errorf("reader begin: %v", err)
					return
				}
				res, err := tx.Exec(queries[r%len(queries)])
				if err != nil {
					_ = tx.Rollback()
					if errors.Is(err, ErrOptimisticConflict) {
						conflicts.Add(1)
						continue
					}
					t.Errorf("reader: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("reader commit: %v", err)
					return
				}
				reads.Add(1)
				for _, row := range res.Rows {
					qty := row[len(row)-1]
					if qty.Typ == TypeInt && qty.Int%2 != 0 {
						t.Errorf("reader observed odd qty %d: torn or uncommitted read", qty.Int)
						return
					}
				}
			}
		}(r)
	}

	// One DDL goroutine invalidates cached plans underneath the readers.
	writers.Add(1)
	go func() {
		defer writers.Done()
		if _, err := e.Exec("app", "CREATE INDEX idx_qty ON acct (qty)"); err != nil {
			t.Errorf("ddl: %v", err)
			return
		}
		for i := 0; i < iters/100; i++ {
			if _, err := e.Exec("app", "CREATE TABLE scratch (id INT PRIMARY KEY)"); err != nil {
				t.Errorf("ddl: %v", err)
				return
			}
			if _, err := e.Exec("app", "DROP TABLE scratch"); err != nil {
				t.Errorf("ddl: %v", err)
				return
			}
			if _, err := e.Exec("app", "SELECT id FROM acct WHERE qty = 0"); err != nil {
				t.Errorf("ddl probe: %v", err)
				return
			}
		}
	}()

	// Writers and DDL run a fixed iteration count; readers loop until told
	// to stop, so they overlap every write and every invalidation.
	writers.Wait()
	close(stop)
	readers.Wait()

	if reads.Load() == 0 {
		t.Fatal("no successful optimistic reads")
	}
	st := e.Stats()
	if st.OptimisticHits == 0 {
		t.Error("stress run never took the optimistic fast path")
	}
	t.Logf("reads=%d conflicts=%d hits=%d retries=%d fallbacks=%d",
		reads.Load(), conflicts.Load(), st.OptimisticHits, st.OptimisticRetries, st.OptimisticFallbacks)
}
