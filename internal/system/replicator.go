package system

import (
	"fmt"
	"sync"
	"time"
)

// replicator ships committed write batches to the DR colos of each
// database, asynchronously but in commit order per database (one worker per
// database drains a FIFO). A batch that fails to apply at a DR colo is
// dropped after recording the error; cross-colo replication is best-effort
// by design.
type replicator struct {
	sys *Controller

	mu      sync.Mutex
	queues  map[string][]([]capturedWrite)
	running map[string]bool
	pending map[string]int
	cond    *sync.Cond
	errs    []error
}

func newReplicator(s *Controller) *replicator {
	r := &replicator{
		sys:     s,
		queues:  make(map[string][]([]capturedWrite)),
		running: make(map[string]bool),
		pending: make(map[string]int),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// enqueue adds a committed batch for db and ensures its worker runs.
func (r *replicator) enqueue(db string, batch []capturedWrite) {
	r.mu.Lock()
	r.queues[db] = append(r.queues[db], batch)
	r.pending[db]++
	if !r.running[db] {
		r.running[db] = true
		go r.drain(db)
	}
	r.mu.Unlock()
	r.sys.metrics.reg.TraceEvent("repl", db, "enqueued", fmt.Sprintf("%d statements", len(batch)))
}

// drain applies queued batches for db until the queue empties.
func (r *replicator) drain(db string) {
	for {
		r.mu.Lock()
		q := r.queues[db]
		if len(q) == 0 {
			r.running[db] = false
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		batch := q[0]
		r.queues[db] = q[1:]
		r.mu.Unlock()

		r.apply(db, batch)

		r.mu.Lock()
		r.pending[db]--
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// apply replays one batch at every DR colo, transactionally per colo.
func (r *replicator) apply(db string, batch []capturedWrite) {
	m := r.sys.metrics
	start := time.Now()
	ok := true
	for _, co := range r.sys.drTargets(db) {
		tx, err := co.Begin(db)
		if err != nil {
			r.recordErr(err)
			ok = false
			continue
		}
		failed := false
		for _, w := range batch {
			if _, err := tx.Exec(w.sql, w.params...); err != nil {
				r.recordErr(err)
				_ = tx.Rollback()
				failed = true
				break
			}
			m.replStatements.Inc()
		}
		if !failed {
			if err := tx.Commit(); err != nil {
				r.recordErr(err)
				failed = true
			}
		}
		ok = ok && !failed
	}
	m.replApply.ObserveDuration(time.Since(start))
	if ok {
		m.replBatches.With("applied").Inc()
		m.reg.TraceEvent("repl", db, "applied", "")
	} else {
		m.replBatches.With("failed").Inc()
		m.reg.TraceEvent("repl", db, "failed", "")
	}
}

func (r *replicator) recordErr(err error) {
	r.mu.Lock()
	if len(r.errs) < 100 {
		r.errs = append(r.errs, err)
	}
	r.mu.Unlock()
}

// flush blocks until db's queue is fully applied.
func (r *replicator) flush(db string) {
	r.mu.Lock()
	for r.pending[db] > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// lag returns the number of unapplied batches for db.
func (r *replicator) lag(db string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending[db]
}

// totalPending returns the number of unapplied batches across all
// databases; the snapshot hook exposes it as the replication-lag gauge.
func (r *replicator) totalPending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, p := range r.pending {
		n += p
	}
	return n
}

// errors returns the recorded replication errors.
func (r *replicator) errors() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error{}, r.errs...)
}
