package sqldb

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// rangeFixture loads a table with id 0..29 where both the primary key and an
// indexed column (k) and an unindexed column (m) carry the same value, so any
// predicate can be answered by a range plan (on id or k) and cross-checked
// against the scan plan (on m).
func rangeFixture(t *testing.T) *Engine {
	t.Helper()
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE r (id INT PRIMARY KEY, k INT, m INT)")
	mustExec(t, e, "CREATE INDEX r_k ON r (k)")
	for i := 0; i < 30; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d)", i, i, i))
	}
	return e
}

// ids extracts and sorts the first column of a result.
func ids(res *Result) []int64 {
	out := make([]int64, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, row[0].Int)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRangeScanMatchesFullScan(t *testing.T) {
	e := rangeFixture(t)
	preds := []string{
		"%s < 5",
		"%s <= 5",
		"%s > 25",
		"%s >= 25",
		"%s BETWEEN 10 AND 14",
		"%s > 7 AND %s < 12",
		"%s >= 7 AND %s <= 12",
		"5 < %s AND 10 > %s",  // constant-first comparisons flip correctly
		"%s BETWEEN 12 AND 3", // empty (inverted) range
		"%s > 100",
		"%s < 0",
	}
	for _, p := range preds {
		for _, col := range []string{"id", "k"} {
			ranged := mustExec(t, e, "SELECT id FROM r WHERE "+sprintfPred(p, col))
			scanned := mustExec(t, e, "SELECT id FROM r WHERE "+sprintfPred(p, "m"))
			got, want := ids(ranged), ids(scanned)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("pred %q on %s: range result %v, scan result %v", p, col, got, want)
			}
		}
	}
}

// sprintfPred substitutes every %s in the predicate template with col.
func sprintfPred(tmpl, col string) string {
	args := make([]interface{}, 0, 4)
	for i := 0; i+1 < len(tmpl); i++ {
		if tmpl[i] == '%' && tmpl[i+1] == 's' {
			args = append(args, col)
		}
	}
	return fmt.Sprintf(tmpl, args...)
}

func TestRangeScanBoundsInclusive(t *testing.T) {
	e := rangeFixture(t)
	cases := []struct {
		where string
		want  int
	}{
		{"id >= 10 AND id <= 19", 10},
		{"id > 10 AND id < 19", 8},
		{"id >= 10 AND id < 19", 9},
		{"id BETWEEN 0 AND 29", 30},
		{"k >= 28", 2},
		{"k <= 1", 2},
	}
	for _, c := range cases {
		res := mustExec(t, e, "SELECT id FROM r WHERE "+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestRangeScanParameterisedBounds(t *testing.T) {
	e := rangeFixture(t)
	const q = "SELECT id FROM r WHERE id BETWEEN ? AND ?"
	for _, c := range []struct {
		lo, hi int64
		want   int
	}{{5, 9, 5}, {0, 0, 1}, {20, 100, 10}, {9, 5, 0}} {
		res := mustExec(t, e, q, NewInt(c.lo), NewInt(c.hi))
		if len(res.Rows) != c.want {
			t.Errorf("BETWEEN %d AND %d: %d rows, want %d", c.lo, c.hi, len(res.Rows), c.want)
		}
	}
	// One cached plan serves every binding.
	if plan := cachedPlan(t, e, q); plan.access == nil || plan.access.kind != pathIndexRange {
		t.Errorf("plan kind = %v, want range", plan.access)
	}
}

func TestRangeScanNullBound(t *testing.T) {
	e := rangeFixture(t)
	// NULL bounds match nothing under three-valued logic; the range path
	// must agree with the scan path rather than treat NULL as a sort key.
	for _, q := range []string{
		"SELECT id FROM r WHERE id < NULL",
		"SELECT id FROM r WHERE id BETWEEN NULL AND 10",
		"SELECT id FROM r WHERE k > NULL",
	} {
		res := mustExec(t, e, q)
		if len(res.Rows) != 0 {
			t.Errorf("%s: %d rows, want 0", q, len(res.Rows))
		}
	}
	res := mustExec(t, e, "SELECT id FROM r WHERE id BETWEEN ? AND ?", Value{Typ: TypeNull}, NewInt(10))
	if len(res.Rows) != 0 {
		t.Errorf("param NULL bound: %d rows, want 0", len(res.Rows))
	}
}

func TestRangeScanResidualPredicate(t *testing.T) {
	e := rangeFixture(t)
	// The range consumes the id bounds; the m predicate must still filter.
	res := mustExec(t, e, "SELECT id FROM r WHERE id BETWEEN 0 AND 19 AND m >= 10")
	if got := fmt.Sprint(ids(res)); got != fmt.Sprint([]int64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}) {
		t.Errorf("residual filter ids = %s", got)
	}
}

func TestRangeUpdateDelete(t *testing.T) {
	e := rangeFixture(t)
	res := mustExec(t, e, "UPDATE r SET m = -1 WHERE id BETWEEN 5 AND 9")
	if res.Affected != 5 {
		t.Fatalf("update affected %d rows, want 5", res.Affected)
	}
	check := mustExec(t, e, "SELECT id FROM r WHERE m = -1")
	if len(check.Rows) != 5 {
		t.Fatalf("m=-1 rows = %d, want 5", len(check.Rows))
	}
	res = mustExec(t, e, "DELETE FROM r WHERE k >= 25")
	if res.Affected != 5 {
		t.Fatalf("delete affected %d rows, want 5", res.Affected)
	}
	left := mustExec(t, e, "SELECT COUNT(*) FROM r")
	if left.Rows[0][0].Int != 25 {
		t.Fatalf("rows left = %d, want 25", left.Rows[0][0].Int)
	}
}

// --- buffer-pool striping -------------------------------------------------

func TestPoolStripeScaling(t *testing.T) {
	cases := []struct {
		capacity int
		stripes  int
	}{
		{0, 1}, {-4, 1}, {8, 1}, {63, 1}, {64, 2}, {256, 8}, {4096, 16}, {1 << 20, 16},
	}
	for _, c := range cases {
		p := NewBufferPool(c.capacity, 0)
		if got := p.Stripes(); got != c.stripes {
			t.Errorf("capacity %d: stripes = %d, want %d", c.capacity, got, c.stripes)
		}
		if c.capacity <= 0 {
			continue
		}
		total := 0
		for i := range p.stripes {
			total += p.stripes[i].capacity
		}
		if total != c.capacity {
			t.Errorf("capacity %d: stripe capacities sum to %d", c.capacity, total)
		}
	}
}

func TestPoolCountersExactUnderConcurrency(t *testing.T) {
	const capacity = 256
	p := NewBufferPool(capacity, 0)
	encoded := encodePage([]pageSlot{})

	// Phase 1: populate `capacity` distinct pages sequentially — all misses,
	// no evictions possible at exactly full... stripes partition capacity, so
	// stay well under any single stripe's share by using half the capacity.
	const pages = capacity / 2
	for i := 0; i < pages; i++ {
		if _, err := p.Get(PageKey{Table: "t", Page: i}, func() []byte { return encoded }); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Misses != pages || st.Hits != 0 {
		t.Fatalf("after load: hits=%d misses=%d, want 0/%d", st.Hits, st.Misses, pages)
	}

	// Phase 2: concurrent re-reads of resident pages are all hits; the
	// pool-global counters must account for every single access.
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := PageKey{Table: "t", Page: (w*131 + i) % pages}
				if _, err := p.Get(key, func() []byte { return encoded }); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st = p.Stats()
	if st.Hits != workers*perWorker {
		t.Errorf("hits = %d, want %d", st.Hits, workers*perWorker)
	}
	if st.Misses != pages {
		t.Errorf("misses = %d, want %d (no new pages were read)", st.Misses, pages)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", st.Evictions)
	}
}

func TestPoolEvictionAccounting(t *testing.T) {
	const capacity = 64 // 2 stripes
	p := NewBufferPool(capacity, 0)
	encoded := encodePage([]pageSlot{})
	const inserts = 500
	for i := 0; i < inserts; i++ {
		if _, err := p.Get(PageKey{Table: "t", Page: i}, func() []byte { return encoded }); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	resident := p.Len()
	if resident > capacity {
		t.Errorf("resident pages = %d, over capacity %d", resident, capacity)
	}
	if got := int(st.Evictions); got != inserts-resident {
		t.Errorf("evictions = %d, want inserts-resident = %d", got, inserts-resident)
	}
	if st.Misses != inserts {
		t.Errorf("misses = %d, want %d", st.Misses, inserts)
	}
}
