package core

import (
	"testing"

	"sdp/internal/wal"
)

// walOpts builds cluster options with the write-ahead log enabled.
func walOpts() Options {
	return Options{Replicas: 2, WAL: &wal.Config{}}
}

// tableCount reads one table's row count directly from a machine's engine.
func tableCount(t *testing.T, m *Machine, db, tbl string) int {
	t.Helper()
	res, err := m.Engine().Exec(db, "SELECT id FROM "+tbl)
	if err != nil {
		t.Fatalf("engine select on %s: %v", m.ID(), err)
	}
	return len(res.Rows)
}

// TestMachineRestartFastRecovery fails a replica machine, keeps writing to
// one table while another stays untouched, restarts the machine, and checks
// that the fast path re-admits it: the untouched table comes back via log
// replay alone, only the changed table is delta-copied, and the machine
// serves reads again.
func TestMachineRestartFastRecovery(t *testing.T) {
	c := newTestCluster(t, 2, walOpts())
	clusterExec(t, c, "CREATE TABLE hot (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "CREATE TABLE cold (id INT PRIMARY KEY, n INT)")
	for i := 1; i <= 20; i++ {
		clusterExec(t, c, "INSERT INTO hot VALUES (?, ?)", intv(int64(i)), intv(int64(i)))
		clusterExec(t, c, "INSERT INTO cold VALUES (?, ?)", intv(int64(i)), intv(int64(i)))
	}

	replicas, err := c.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	victimID := replicas[1]
	affected, err := c.FailMachine(victimID)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "app" {
		t.Fatalf("affected = %v", affected)
	}

	// The cluster keeps serving on the surviving replica; only hot changes.
	for i := 21; i <= 30; i++ {
		clusterExec(t, c, "INSERT INTO hot VALUES (?, ?)", intv(int64(i)), intv(int64(i)))
	}

	victim, err := c.Machine(victimID)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.RestartMachine(victimID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied == 0 {
		t.Fatal("restart replayed nothing")
	}
	if victim.Failed() {
		t.Fatal("machine still failed after restart")
	}
	// Log replay restored the failure-time state: 20 rows in each table.
	if got := tableCount(t, victim, "app", "hot"); got != 20 {
		t.Fatalf("hot after replay: %d rows, want 20", got)
	}
	if got := tableCount(t, victim, "app", "cold"); got != 20 {
		t.Fatalf("cold after replay: %d rows, want 20", got)
	}

	// Re-admit the database; the fast path should catch up only `hot`.
	report := c.RecoverDatabases(affected, 1)
	if len(report.Failed) != 0 {
		t.Fatalf("recovery failures: %v", report.Failed)
	}
	if got := c.metrics.walRecovery.With("fast").Value(); got != 1 {
		t.Fatalf("wal_recovery_total{path=fast} = %d, want 1", got)
	}
	if got := c.metrics.walRecovery.With("full").Value(); got != 0 {
		t.Fatalf("wal_recovery_total{path=full} = %d, want 0", got)
	}

	replicas, err = c.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 2 || !contains(replicas, victimID) {
		t.Fatalf("replicas after catch-up = %v, want to include %s", replicas, victimID)
	}
	if got := tableCount(t, victim, "app", "hot"); got != 30 {
		t.Fatalf("hot after catch-up: %d rows, want 30", got)
	}

	// The rejoined machine receives new writes and serves cluster reads.
	clusterExec(t, c, "INSERT INTO hot VALUES (31, 31)")
	if got := tableCount(t, victim, "app", "hot"); got != 31 {
		t.Fatalf("hot after rejoin write: %d rows, want 31", got)
	}
	res := clusterExec(t, c, "SELECT id FROM hot")
	if len(res.Rows) != 31 {
		t.Fatalf("cluster read after rejoin: %d rows, want 31", len(res.Rows))
	}

	// A second restart of the caught-up machine reproduces the caught-up
	// state from its own log (the delta was applied through the target's SQL
	// layer, so the log is self-contained without a new checkpoint).
	if _, err := c.FailMachine(victimID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartMachine(victimID); err != nil {
		t.Fatal(err)
	}
	if got := tableCount(t, victim, "app", "hot"); got != 31 {
		t.Fatalf("hot after second restart: %d rows, want 31", got)
	}
}

// TestCatchUpPhysicalFallback drives the catch-up's bulk path: a delta table
// larger than catchUpLogicalRows is restored physically (bypassing the
// target's log), which must force a checkpoint so the machine's next restart
// still reproduces the caught-up state.
func TestCatchUpPhysicalFallback(t *testing.T) {
	c := newTestCluster(t, 2, walOpts())
	clusterExec(t, c, "CREATE TABLE big (id INT PRIMARY KEY)")
	rows := catchUpLogicalRows + 100
	for i := 1; i <= rows; i++ {
		clusterExec(t, c, "INSERT INTO big VALUES (?)", intv(int64(i)))
	}
	replicas, _ := c.Replicas("app")
	victimID := replicas[1]
	affected, err := c.FailMachine(victimID)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the big table while the victim is down: the whole table is the
	// delta, and it is too large for the logical path.
	clusterExec(t, c, "INSERT INTO big VALUES (?)", intv(int64(rows+1)))
	if _, err := c.RestartMachine(victimID); err != nil {
		t.Fatal(err)
	}
	if report := c.RecoverDatabases(affected, 1); len(report.Failed) != 0 {
		t.Fatalf("recovery failures: %v", report.Failed)
	}
	if got := c.metrics.walRecovery.With("fast").Value(); got != 1 {
		t.Fatalf("wal_recovery_total{path=fast} = %d, want 1", got)
	}
	victim, _ := c.Machine(victimID)
	if got := tableCount(t, victim, "app", "big"); got != rows+1 {
		t.Fatalf("big after catch-up: %d rows, want %d", got, rows+1)
	}
	// The physical restore bypassed the log; only the forced checkpoint makes
	// this restart reproduce the table.
	if _, err := c.FailMachine(victimID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartMachine(victimID); err != nil {
		t.Fatal(err)
	}
	if got := tableCount(t, victim, "app", "big"); got != rows+1 {
		t.Fatalf("big after second restart: %d rows, want %d", got, rows+1)
	}
}

// TestRecoveryFullPathWithoutRestart checks that when the failed machine
// never comes back, recovery falls through to the full Algorithm-1 copy onto
// a fresh target and counts it as such.
func TestRecoveryFullPathWithoutRestart(t *testing.T) {
	c := newTestCluster(t, 3, walOpts())
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	for i := 1; i <= 10; i++ {
		clusterExec(t, c, "INSERT INTO t VALUES (?)", intv(int64(i)))
	}
	replicas, _ := c.Replicas("app")
	affected, err := c.FailMachine(replicas[1])
	if err != nil {
		t.Fatal(err)
	}
	report := c.RecoverDatabases(affected, 1)
	if len(report.Failed) != 0 {
		t.Fatalf("recovery failures: %v", report.Failed)
	}
	if got := c.metrics.walRecovery.With("full").Value(); got != 1 {
		t.Fatalf("wal_recovery_total{path=full} = %d, want 1", got)
	}
	if got := c.metrics.walRecovery.With("fast").Value(); got != 0 {
		t.Fatalf("wal_recovery_total{path=fast} = %d, want 0", got)
	}
}

// TestRestartDropsOrphanedDatabase checks that a database dropped while its
// host was down is discarded on restart, and that a dropped-and-recreated
// namespace is never fast-pathed from stale marks (the epoch guard).
func TestRestartDropsOrphanedDatabase(t *testing.T) {
	c := newTestCluster(t, 3, walOpts())
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY)")
	clusterExec(t, c, "INSERT INTO t VALUES (1)")

	replicas, _ := c.Replicas("app")
	victimID := replicas[1]
	// A second database on the victim that will be dropped outright.
	if err := c.CreateDatabaseOn("scratch", []string{victimID, replicas[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("scratch", "CREATE TABLE s (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailMachine(victimID); err != nil {
		t.Fatal(err)
	}
	if err := c.DropDatabase("scratch"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropDatabase("app"); err != nil {
		t.Fatal(err)
	}
	// Same name, new incarnation, new contents.
	if err := c.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	clusterExec(t, c, "CREATE TABLE t2 (id INT PRIMARY KEY)")

	if _, err := c.RestartMachine(victimID); err != nil {
		t.Fatal(err)
	}
	victim, _ := c.Machine(victimID)
	// "scratch" no longer exists cluster-wide: the restart discards it.
	if victim.Engine().HasDatabase("scratch") {
		t.Fatal("orphaned database survived restart")
	}
	// "app" exists cluster-wide again, so the recovered copy is kept on the
	// machine for now — but its marks must not pass the epoch check.
	if c.fastRecoveryCandidate("app") != nil && victim.hasMarks("app") {
		marks, epoch, _ := victim.takeMarks("app")
		c.mu.Lock()
		cur := c.dbs["app"].epoch
		c.mu.Unlock()
		if epoch == cur {
			t.Fatalf("stale marks carry current epoch %d", cur)
		}
		victim.setMarks("app", epoch, marks)
	}
	// Recovery must take the full path (possibly after discarding the stale
	// incarnation) and end with a correct replica.
	report := c.RecoverDatabases([]string{"app"}, 1)
	if len(report.Failed) != 0 {
		t.Fatalf("recovery failures: %v", report.Failed)
	}
	if got := c.metrics.walRecovery.With("full").Value(); got != 1 {
		t.Fatalf("wal_recovery_total{path=full} = %d, want 1", got)
	}
	reps, _ := c.Replicas("app")
	for _, id := range reps {
		m, _ := c.Machine(id)
		if _, err := m.Engine().Table("app", "t2"); err != nil {
			t.Fatalf("replica %s lacks t2: %v", id, err)
		}
		if _, err := m.Engine().Table("app", "t"); err == nil {
			t.Fatalf("replica %s resurrected old incarnation's table t", id)
		}
	}
}

// TestRestartWithoutWAL checks the guard: machines of a WAL-less cluster
// cannot restart.
func TestRestartWithoutWAL(t *testing.T) {
	c := newTestCluster(t, 2, Options{Replicas: 2})
	replicas, _ := c.Replicas("app")
	if _, err := c.FailMachine(replicas[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartMachine(replicas[1]); err == nil {
		t.Fatal("restart succeeded without a durable log")
	}
}
