package sqldb

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the engine. Callers (in particular the cluster
// controller) use errors.Is to distinguish retryable conditions such as
// deadlock aborts from hard failures.
var (
	// ErrDeadlock is returned when the transaction was chosen as a deadlock
	// victim and rolled back. The paper's SLA model explicitly excludes
	// deadlock aborts from proactive rejections.
	ErrDeadlock = errors.New("sqldb: deadlock detected, transaction aborted")

	// ErrTxnAborted is returned by operations on a transaction that has
	// already been rolled back.
	ErrTxnAborted = errors.New("sqldb: transaction has been aborted")

	// ErrTxnDone is returned by operations on a committed transaction.
	ErrTxnDone = errors.New("sqldb: transaction has already committed")

	// ErrTxnPrepared is returned when a data operation is attempted on a
	// transaction that has entered the PREPARED state of 2PC.
	ErrTxnPrepared = errors.New("sqldb: transaction is prepared; only commit or abort allowed")

	// ErrNotPrepared is returned by CommitPrepared on a transaction that
	// never entered the PREPARED state.
	ErrNotPrepared = errors.New("sqldb: transaction is not prepared")

	// ErrTableExists is returned by CREATE TABLE for a duplicate name.
	ErrTableExists = errors.New("sqldb: table already exists")

	// ErrNoTable is returned when a statement references an unknown table.
	ErrNoTable = errors.New("sqldb: no such table")

	// ErrNoColumn is returned when an expression references an unknown column.
	ErrNoColumn = errors.New("sqldb: no such column")

	// ErrDuplicateKey is returned by INSERT when the primary key or a unique
	// index already contains the key.
	ErrDuplicateKey = errors.New("sqldb: duplicate key")

	// ErrTypeMismatch is returned when a value cannot be stored in or
	// compared with a column of an incompatible type.
	ErrTypeMismatch = errors.New("sqldb: type mismatch")

	// ErrEngineClosed is returned by operations on a closed engine. The
	// cluster controller treats this (and any I/O with a down machine) as a
	// machine failure.
	ErrEngineClosed = errors.New("sqldb: engine is closed")

	// ErrLockTimeout is returned when a lock request waited longer than the
	// engine's configured lock wait timeout.
	ErrLockTimeout = errors.New("sqldb: lock wait timeout exceeded")

	// ErrOptimisticConflict is returned when a read-only transaction's
	// optimistic (lock-free) reads could not be validated because a
	// concurrent writer changed one of the tables read. Like a deadlock it is
	// an application-retryable abort, not a hard failure.
	ErrOptimisticConflict = errors.New("sqldb: optimistic read validation failed, transaction aborted")

	// ErrReadOnlyTxn is returned when a read-only transaction attempts a
	// statement that modifies data or schema.
	ErrReadOnlyTxn = errors.New("sqldb: statement not allowed in read-only transaction")
)

// ParseError describes a syntax error with its byte offset in the statement.
type ParseError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sqldb: parse error at offset %d: %s", e.Pos, e.Msg)
}
