// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): Table 1 (serializability matrix), Figures 2–4
// (throughput under synchronous replication for the three TPC-W mixes),
// Figures 5–7 (deadlock rates), Figures 8–9 (rejections and throughput
// during recovery), and Table 2 (SLA-based placement vs the optimal). The
// same entry points back the root-level benchmarks and the cmd/experiments
// binary; EXPERIMENTS.md records measured-vs-paper shapes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"sdp/internal/core"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks data sizes and durations for CI/bench runs; the full
	// settings are used by cmd/experiments.
	Quick bool
	// Seed makes runs reproducible.
	Seed int64
}

// measureDuration is how long each throughput point runs.
func (c Config) measureDuration() time.Duration {
	if c.Quick {
		return 250 * time.Millisecond
	}
	return 2 * time.Second
}

// dbSizeMB is the per-database nominal size for throughput experiments.
func (c Config) dbSizeMB() float64 {
	if c.Quick {
		return 100
	}
	return 600
}

// engineConfig builds the per-machine DBMS configuration used by the
// throughput experiments: a buffer pool deliberately smaller than the
// combined working set of the hosted databases (as in the paper, where
// 300 GB of data met 2 GB pools), plus a simulated disk latency so pool
// misses cost what they cost on the paper's hardware, proportionally.
func (c Config) engineConfig() sqldb.Config {
	cfg := sqldb.DefaultConfig()
	// Sized so that ONE database's hot working set fits (Option 1's home
	// replica stays warm) but two databases' do not (Options 2/3 thrash):
	// the 2 GB pool vs 300 GB data regime of the paper, scaled down.
	cfg.PoolPages = 64
	cfg.MissLatency = 1 * time.Millisecond
	cfg.LockTimeout = 250 * time.Millisecond
	return cfg
}

// clusterDB adapts one database on a cluster controller to tpcw.DB.
type clusterDB struct {
	c  *core.Cluster
	db string
}

func (d clusterDB) Begin() (tpcw.Txn, error) { return d.c.Begin(d.db) }

// classify maps controller errors onto the TPC-W client's accounting
// classes, counting Algorithm 1 rejections separately.
func classify(err error) tpcw.ErrorClass {
	if core.IsRejection(err) {
		return tpcw.ClassRejected
	}
	if core.IsRetryable(err) {
		return tpcw.ClassAborted
	}
	return tpcw.DefaultClassifier(err)
}

// Table is a generic text table for experiment output.
type Table struct {
	Title   string
	Header  []string
	RowData [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.RowData = append(t.RowData, cells) }

// WriteCSV renders the table as CSV (title as a comment line), ready for
// plotting tools.
func (t *Table) WriteCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	fmt.Fprintf(w, "# %s\n", t.Title)
	_ = cw.Write(t.Header)
	for _, row := range t.RowData {
		_ = cw.Write(row)
	}
	cw.Flush()
	fmt.Fprintln(w)
}

// Write renders the table to w in aligned-column text form.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.RowData {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	var sep strings.Builder
	for i, h := range t.Header {
		fmt.Fprintf(w, "%-*s  ", widths[i], h)
		sep.WriteString(strings.Repeat("-", widths[i]))
		sep.WriteString("  ")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.TrimRight(sep.String(), " "))
	for _, row := range t.RowData {
		for i, c := range row {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
