package core

import (
	"fmt"

	"sdp/internal/sla"
)

// MigrateReplica moves one replica of db from one machine to another while
// the database keeps serving transactions: a new replica is created on the
// target with Algorithm 1 (so one-copy serializability is preserved
// throughout), and only once the target is fully synchronised is the source
// replica retired. This is the replica-movement primitive behind the
// paper's SLA-driven "database placement and migration within a cluster";
// the SLA model counts each move in reallocation_rate(j).
func (c *Cluster) MigrateReplica(db, fromID, toID string) error {
	c.mu.Lock()
	ds, ok := c.dbs[db]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	if !contains(ds.replicas, fromID) {
		c.mu.Unlock()
		return fmt.Errorf("core: %s does not host %s", fromID, db)
	}
	req := ds.req
	c.mu.Unlock()

	// Reserve SLA capacity on the target up front so a concurrent
	// placement cannot oversubscribe it.
	target, err := c.Machine(toID)
	if err != nil {
		return err
	}
	reserved := false
	if req != (sla.Resources{}) {
		if !target.reserve(req) {
			return fmt.Errorf("%w: migrating %s to %s", ErrNoCapacity, db, toID)
		}
		reserved = true
	}

	if err := c.CreateReplica(db, toID); err != nil {
		if reserved {
			target.release(req)
		}
		return err
	}

	// The target is now a full replica; retire the source.
	if err := c.RetireReplica(db, fromID); err != nil {
		return err
	}
	if reserved {
		if m, merr := c.Machine(fromID); merr == nil {
			m.release(req)
		}
	}
	return nil
}

// GrowReplica raises db's replica degree by one, copying onto the target
// with Algorithm 1. The database's declared SLA reservation (if any) is
// taken on the target up front, exactly as MigrateReplica does, so
// concurrent placements cannot oversubscribe the machine. This is the
// adaptive provisioning controller's grow primitive.
func (c *Cluster) GrowReplica(db, targetID string) error {
	c.mu.Lock()
	ds, ok := c.dbs[db]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	req := ds.req
	c.mu.Unlock()

	target, err := c.Machine(targetID)
	if err != nil {
		return err
	}
	reserved := false
	if req != (sla.Resources{}) {
		if !target.reserve(req) {
			return fmt.Errorf("%w: growing %s onto %s", ErrNoCapacity, db, targetID)
		}
		reserved = true
	}
	if err := c.CreateReplica(db, targetID); err != nil {
		if reserved {
			target.release(req)
		}
		return err
	}
	return nil
}

// ShrinkReplica lowers db's replica degree by one, retiring the replica on
// the given machine and releasing its SLA reservation there. The retire is
// replicated; the last replica is never shrunk. This is the adaptive
// provisioning controller's shrink primitive.
func (c *Cluster) ShrinkReplica(db, fromID string) error {
	c.mu.Lock()
	ds, ok := c.dbs[db]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	req := ds.req
	c.mu.Unlock()

	if err := c.RetireReplica(db, fromID); err != nil {
		return err
	}
	if req != (sla.Resources{}) {
		if m, merr := c.Machine(fromID); merr == nil {
			m.release(req)
		}
	}
	return nil
}

// RetireReplica removes one replica of db from a machine through the
// replicated control plane: the removal commits to the consensus log before
// the machine's copy is dropped, so a controller failover never resurrects
// the retired machine into the replica set after its data is gone. Refuses
// to retire during an in-flight copy or down to zero replicas. Retryable
// with ErrNotLeader/ErrNoQuorum like every control mutation.
func (c *Cluster) RetireReplica(db, machineID string) error {
	c.mu.Lock()
	ds, ok := c.dbs[db]
	switch {
	case !ok:
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	case ds.copying != nil:
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrCopyInProgress, db)
	case !contains(ds.replicas, machineID):
		c.mu.Unlock()
		return fmt.Errorf("core: %s does not host %s", machineID, db)
	case len(ds.replicas) <= 1:
		c.mu.Unlock()
		return fmt.Errorf("%w: cannot retire the last replica of %s", ErrNoReplicas, db)
	}
	c.mu.Unlock()

	if cp := c.ctl; cp != nil {
		// Hold cp.mu across propose and materialization (the
		// CreateDatabaseOn pattern) so no other proposal interleaves
		// between the log accepting the retire and the local state
		// reflecting it.
		cp.mu.Lock()
		defer cp.mu.Unlock()
		if _, err := cp.propose(ctlCmd{Op: ctlOpRetireReplica, DB: db, Machine: machineID}); err != nil {
			return err
		}
	}
	return c.retireReplica(db, machineID)
}

// retireReplica removes one replica of db from a machine: the machine stops
// receiving the database's operations, then drops its copy.
func (c *Cluster) retireReplica(db, machineID string) error {
	c.mu.Lock()
	ds, ok := c.dbs[db]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	found := false
	for i, id := range ds.replicas {
		if id == machineID {
			ds.replicas = append(ds.replicas[:i], ds.replicas[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		c.mu.Unlock()
		return fmt.Errorf("core: %s does not host %s", machineID, db)
	}
	if len(ds.replicas) == 0 {
		// Never retire the last replica.
		ds.replicas = append(ds.replicas, machineID)
		c.mu.Unlock()
		return fmt.Errorf("%w: cannot retire the last replica of %s", ErrNoReplicas, db)
	}
	if ds.readHome == machineID {
		ds.readHome = ds.replicas[0]
	}
	m := c.machines[machineID]
	c.mu.Unlock()

	if m != nil && !m.Failed() {
		// In-flight transactions may still hold branches on the retiring
		// machine; they complete normally (their sessions were created
		// before removal). New transactions no longer route here. The
		// copy is dropped once the engine has no open transactions on it;
		// dropping immediately is safe for our engine because scans and
		// locks are per-table objects that survive catalog removal, but
		// we keep it simple and drop right away.
		if err := m.Engine().DropDatabase(db); err != nil {
			return err
		}
		m.dbCount.Add(-1)
	}
	return nil
}
