package main

import (
	"fmt"
	"os"
	"time"

	"sdp"
	"sdp/internal/obs"
	"sdp/internal/wire"
)

// runTraceDemo boots a platform with tracing and the slow-query log on,
// drives a few wire-client calls over a real socket (prepared write and
// prepared reads), then prints the resulting span trees and the slow-query
// log — the `make trace-demo` target. With slowOnly, only the slow-query
// log is printed (the -slow flag).
func runTraceDemo(slowOnly bool) error {
	p := sdp.New(sdp.Config{
		Listen:      "127.0.0.1:0",
		WAL:         &sdp.WALConfig{},
		TraceSample: 1,
		SlowQuery:   time.Nanosecond, // record every statement for the demo
	})
	p.AddColo("local", "local", 4)
	if err := p.CreateDatabase("app", sdp.SLA{SizeMB: 1, MinTPS: 1, MaxRejectFraction: 1}, "local"); err != nil {
		return err
	}
	srv, err := p.ServeWire()
	if err != nil {
		return err
	}
	defer srv.Close()
	cl, err := wire.Dial(wire.ClientConfig{
		Addr:        srv.Addr(),
		Database:    "app",
		Metrics:     p.Metrics(),
		TraceSample: 1,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	if _, err := cl.Exec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return err
	}
	if _, err := cl.Exec("INSERT INTO t VALUES (1, 'hello')"); err != nil {
		return err
	}
	upd, err := cl.Prepare("UPDATE t SET v = ? WHERE id = ?")
	if err != nil {
		return err
	}
	if _, err := upd.Exec(sdp.Text("traced"), sdp.Int(1)); err != nil {
		return err
	}
	sel, err := cl.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		return err
	}
	if _, err := sel.Exec(sdp.Int(1)); err != nil {
		return err
	}

	reg := p.Metrics()
	if !slowOnly {
		fmt.Println("# span trees, one per traced client call (client → wire → system → core/sql → wal):")
		fmt.Println()
		for _, s := range reg.Spans().Spans() {
			if s.Parent == 0 && s.Scope == "client" {
				obs.WriteSpanTree(os.Stdout, reg.Spans().ByTrace(s.TraceID))
				fmt.Println()
			}
		}
	}
	fmt.Println("# slow-query log (threshold 1ns for the demo — every statement qualifies):")
	fmt.Println()
	reg.SlowLog().WriteText(os.Stdout)
	if !slowOnly {
		fmt.Println()
		fmt.Println("# the same trees are served by /tracez?trace=<id>&format=text, the log by /slowz")
	}
	return nil
}
