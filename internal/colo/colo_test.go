package colo

import (
	"errors"
	"fmt"
	"slices"
	"testing"

	"sdp/internal/core"
	"sdp/internal/netsim"
	"sdp/internal/sla"
	"sdp/internal/wal"
)

func smallReq() sla.Resources { return sla.Profile(400, 2) }

func TestCreateDatabaseFormsClusters(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 3})
	c.AddFreeMachines(10)

	if err := c.CreateDatabase("db1", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Clusters()); got != 1 {
		t.Fatalf("clusters = %d", got)
	}
	if c.FreeMachines() != 7 {
		t.Errorf("free = %d, want 7", c.FreeMachines())
	}
	// A second small database fits the same cluster — no new machines.
	if err := c.CreateDatabase("db2", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	if c.FreeMachines() != 7 {
		t.Errorf("free = %d after second db, want 7", c.FreeMachines())
	}
}

func TestCreateDatabaseGrowsWhenFull(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2, MaxClusterSize: 3})
	c.AddFreeMachines(8)
	big := sla.Resources{CPU: 0.9, Memory: 0.9, Disk: 0.4, DiskBW: 0.4}
	if err := c.CreateDatabase("db1", big, 2); err != nil {
		t.Fatal(err)
	}
	// db2 cannot share machines with db1 (0.9+0.9 > 1): the cluster grows
	// to MaxClusterSize, then a new cluster forms.
	if err := c.CreateDatabase("db2", big, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("db3", big, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Clusters()); got < 2 {
		t.Errorf("clusters = %d, want >= 2", got)
	}
}

func TestCreateDatabaseExhaustsPool(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2})
	c.AddFreeMachines(2)
	big := sla.Resources{CPU: 0.9, Memory: 0.9, Disk: 0.9, DiskBW: 0.9}
	if err := c.CreateDatabase("db1", big, 2); err != nil {
		t.Fatal(err)
	}
	err := c.CreateDatabase("db2", big, 2)
	if !errors.Is(err, ErrNoFreeMachines) {
		t.Fatalf("err = %v, want ErrNoFreeMachines", err)
	}
}

func TestRouteAndQuery(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2})
	c.AddFreeMachines(4)
	if err := c.CreateDatabase("app", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	cl, err := c.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (1, 5)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec("app", "SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 5 {
		t.Errorf("v = %v", res.Rows[0][0])
	}
	if _, err := c.Route("missing"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
}

func TestFailMachineTriggersRecovery(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 3, RecoveryThreads: 2})
	c.AddFreeMachines(5)
	if err := c.CreateDatabase("app", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	cl, _ := c.Route("app")
	if _, err := cl.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := cl.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	reps, _ := cl.Replicas("app")
	report, err := c.FailMachine(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 0 {
		t.Fatalf("recovery failed: %v", report.Failed)
	}
	reps2, _ := cl.Replicas("app")
	if len(reps2) != 2 {
		t.Errorf("replicas after recovery = %v", reps2)
	}
	// Replacement machine drawn from the pool.
	if c.FreeMachines() != 1 {
		t.Errorf("free = %d, want 1", c.FreeMachines())
	}
	if _, err := c.FailMachine("nope"); err == nil {
		t.Error("failing unknown machine succeeded")
	}
	_ = core.ErrNoMachine // keep the core import honest
}

// TestCrashRestartMachine drives the transient-outage cycle: a machine
// crashes without re-replication, writes land on the surviving replica, and
// the restart recovers the machine from its log and rejoins its databases by
// the fast path.
func TestCrashRestartMachine(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2, Cluster: core.Options{WAL: &wal.Config{Compact: true}}})
	c.AddFreeMachines(4)
	if err := c.CreateDatabase("app", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	cl, err := c.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("app", "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	replicas, err := cl.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	victim := replicas[1]
	affected, err := c.CrashMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "app" {
		t.Fatalf("affected = %v, want [app]", affected)
	}
	// The database keeps serving on the survivor while the machine is down.
	if _, err := cl.Exec("app", "INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}

	stats, report, err := c.RestartMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied == 0 {
		t.Fatal("restart replayed nothing")
	}
	if len(report.Failed) != 0 {
		t.Fatalf("rejoin failures: %v", report.Failed)
	}
	replicas, err = cl.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 2 {
		t.Fatalf("replicas after restart = %v, want 2", replicas)
	}
	// The restarted machine holds the full table, including the downtime write.
	m, err := cl.Machine(victim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Engine().Exec("app", "SELECT id FROM t")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("restarted machine: rows=%v err=%v, want 2 rows", res, err)
	}
}

// TestCrashMachineAbortsInFlightCopy crashes the target of an in-flight
// Algorithm 1 replica copy (regression: the copy used to leave the
// destination half-registered — partial tables on the target and a stale
// rejecting copy state on the database). The copy must abort, report the
// database as affected so the caller can requeue it, leave the replica set
// untouched, discard the half-copied state on restart, and accept a fresh
// copy onto the restarted machine.
func TestCrashMachineAbortsInFlightCopy(t *testing.T) {
	n := netsim.New(21, nil)
	c := New("colo1", Options{
		ClusterSize: 3,
		Cluster:     core.Options{Replicas: 2, WAL: &wal.Config{}, Network: n},
	})
	c.AddFreeMachines(3)
	if err := c.CreateDatabase("app", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	cl := c.Clusters()[0]
	mustExec := func(sql string) {
		t.Helper()
		if _, err := cl.Exec("app", sql); err != nil {
			t.Fatalf("Exec(%q): %v", sql, err)
		}
	}
	mustExec("CREATE TABLE a (id INT PRIMARY KEY)")
	mustExec("CREATE TABLE b (id INT PRIMARY KEY)")
	for i := 1; i <= 25; i++ {
		mustExec(fmt.Sprintf("INSERT INTO a VALUES (%d)", i))
		mustExec(fmt.Sprintf("INSERT INTO b VALUES (%d)", i))
	}
	replicas, err := cl.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, id := range cl.MachineIDs() {
		if !slices.Contains(replicas, id) {
			target = id
		}
	}
	if target == "" {
		t.Fatal("no spare machine for the copy target")
	}

	// Crash the target the moment the first copied table lands on it —
	// exactly mid-copy, with Algorithm 1's write-rejection state active.
	crashed := make(chan []string, 1)
	n.OnDeliver(func(ci netsim.CallInfo) {
		if ci.Op != "copy_apply" || ci.To != target {
			return
		}
		if m, _ := cl.Machine(target); m != nil && m.Failed() {
			return
		}
		affected, cerr := c.CrashMachine(target)
		if cerr != nil {
			t.Errorf("CrashMachine: %v", cerr)
			return
		}
		crashed <- affected
	})
	err = cl.CreateReplica("app", target)
	n.ClearHooks()
	if !errors.Is(err, core.ErrCopyAborted) {
		t.Fatalf("CreateReplica error = %v, want ErrCopyAborted", err)
	}
	affected := <-crashed
	if !slices.Contains(affected, "app") {
		t.Fatalf("affected = %v, want to include app (the requeue signal)", affected)
	}

	// The half-copied destination never joined the replica set, and writes
	// flow again immediately (no stale in-flight rejection).
	replicas, err = cl.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 2 || slices.Contains(replicas, target) {
		t.Fatalf("replicas after aborted copy = %v", replicas)
	}
	mustExec("INSERT INTO a VALUES (26)")

	// Restart discards the half-copied database, so a fresh copy onto the
	// same machine succeeds and delivers the full, current state.
	if _, _, err := c.RestartMachine(target); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateReplica("app", target); err != nil {
		t.Fatalf("fresh copy after restart: %v", err)
	}
	replicas, err = cl.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(replicas, target) {
		t.Fatalf("replicas after fresh copy = %v, want to include %s", replicas, target)
	}
	m, err := cl.Machine(target)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Engine().Exec("app", "SELECT id FROM a")
	if err != nil || len(res.Rows) != 26 {
		t.Fatalf("target after copy: rows=%d err=%v, want 26", len(res.Rows), err)
	}
}
