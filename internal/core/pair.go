package core

import (
	"sync"

	"sdp/internal/netsim"
)

// The cluster controller runs as a process pair in the paper: the backup
// tracks the primary's state with respect to committing transactions and,
// on takeover, cleans up the transactions in transit. This file implements
// that commit-in-transit mirror. The mirror is updated synchronously at
// each 2PC phase change (modelling the backup's state tracking), and
// TakeOver drives every in-transit transaction to a safe conclusion:
// transactions that had reached the commit decision are committed on all
// participants, everything else is rolled back.

// CommitStage identifies where in the commit protocol a transaction is.
type CommitStage int

// Commit stages mirrored to the backup controller.
const (
	// StagePreparing: prepares have been issued, no decision yet.
	StagePreparing CommitStage = iota
	// StageCommitting: all participants voted yes; the commit decision is
	// logged and must survive a controller failure.
	StageCommitting
)

// inTransit is the mirrored record of one committing transaction.
type inTransit struct {
	gid      uint64
	stage    CommitStage
	sessions []*replicaSession

	// done is closed when the committing client's goroutine stops driving
	// the sessions — either because the commit ran to completion or because
	// the primary "died" at a crash point and the driver parked. TakeOver
	// waits on it before resolving a record so it never fights a live
	// driver for the sessions.
	done chan struct{}
	// parked is true when the driver halted at a crash point and the
	// record still needs takeover processing; false when the driver
	// finished the transaction itself. Written before done is closed.
	parked bool
}

// pairMirror is the backup controller's view of commits in transit.
type pairMirror struct {
	mu      sync.Mutex
	records map[uint64]*inTransit

	// crashHook, when set, is consulted at each stage transition; returning
	// true makes the primary "die" at that point (the commit path stops,
	// leaving cleanup to TakeOver). Used by failure-injection tests.
	crashHook func(stage CommitStage, gid uint64) bool
}

func (p *pairMirror) init() {
	p.mu.Lock()
	if p.records == nil {
		p.records = make(map[uint64]*inTransit)
	}
	p.mu.Unlock()
}

func (p *pairMirror) begin(t *Txn) *inTransit {
	p.init()
	rec := &inTransit{gid: t.gid, stage: StagePreparing, done: make(chan struct{})}
	for _, s := range t.sessions {
		rec.sessions = append(rec.sessions, s)
	}
	p.mu.Lock()
	p.records[t.gid] = rec
	p.mu.Unlock()
	return rec
}

func (p *pairMirror) advance(rec *inTransit, stage CommitStage) {
	p.mu.Lock()
	rec.stage = stage
	p.mu.Unlock()
}

// finish removes a record whose transaction the driver resolved itself
// (committed or aborted); takeover processing, if any, will skip it.
func (p *pairMirror) finish(rec *inTransit) {
	p.mu.Lock()
	delete(p.records, rec.gid)
	p.mu.Unlock()
	close(rec.done)
}

// park marks a record whose driver halted at a crash point: the sessions are
// no longer being driven and TakeOver owns the record's resolution.
func (p *pairMirror) park(rec *inTransit) {
	p.mu.Lock()
	rec.parked = true
	p.mu.Unlock()
	close(rec.done)
}

// dead reports whether a primary failure is installed — the commit path is
// (or will be) halted and a takeover has in-transit work to resolve.
func (p *pairMirror) dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashHook != nil
}

// crashed reports whether the injected primary failure triggers here.
func (p *pairMirror) crashed(stage CommitStage, gid uint64) bool {
	p.mu.Lock()
	hook := p.crashHook
	p.mu.Unlock()
	return hook != nil && hook(stage, gid)
}

// SetCrashHook installs a primary-failure injection point for tests and
// experiments: when the hook returns true the commit path halts at that
// stage, as if the primary controller process died.
func (c *Cluster) SetCrashHook(hook func(stage CommitStage, gid uint64) bool) {
	c.pair.mu.Lock()
	c.pair.crashHook = hook
	c.pair.mu.Unlock()
}

// InTransit returns the number of commits currently in transit (visible to
// the backup controller).
func (c *Cluster) InTransit() int {
	c.pair.init()
	c.pair.mu.Lock()
	defer c.pair.mu.Unlock()
	return len(c.pair.records)
}

// TakeOver performs the backup controller's takeover processing: every
// transaction recorded as having reached the commit decision is committed on
// all its participants, and every transaction still in the prepare phase is
// rolled back. It returns how many transactions were committed and rolled
// back. Client connections are assumed re-established by the application
// layer, as in the paper.
func (c *Cluster) TakeOver() (committed, rolledBack int) {
	c.pair.init()
	c.pair.mu.Lock()
	recs := make([]*inTransit, 0, len(c.pair.records))
	for _, r := range c.pair.records {
		recs = append(recs, r)
	}
	c.pair.records = make(map[uint64]*inTransit)
	c.pair.crashHook = nil
	c.pair.mu.Unlock()

	for _, rec := range recs {
		// Wait for the committing client's goroutine to hand the record
		// over: it either parks at a crash point (takeover resolves the
		// transaction) or finishes the commit itself (nothing to do). The
		// wait is what keeps takeover from rolling back — and closing the
		// sessions of — a transaction whose driver is still live.
		<-rec.done
		if !rec.parked {
			continue
		}
		// A delivery that fails on transient network faults is handed to a
		// background resolver, exactly as on the normal commit path: the
		// decision must still reach the participant or its branch would
		// hold locks indefinitely.
		if rec.stage == StageCommitting {
			for _, s := range rec.sessions {
				if r := s.commitPrepared().wait(); r.err != nil && netsim.IsTransient(r.err) {
					c.resolveOutcome(s, rec.gid, true)
				}
			}
			c.metrics.committed.Inc()
			c.metrics.reg.TraceEvent("2pc", gidString(rec.gid), "takeover_commit", "")
			if recd := c.opts.Recorder; recd != nil {
				recd.Commit(rec.gid)
			}
			committed++
		} else {
			for _, s := range rec.sessions {
				if r := s.rollback().wait(); r.err != nil && netsim.IsTransient(r.err) {
					c.resolveOutcome(s, rec.gid, false)
				}
			}
			c.metrics.aborted.Inc()
			c.metrics.reg.TraceEvent("2pc", gidString(rec.gid), "takeover_rollback", "")
			rolledBack++
		}
		for _, s := range rec.sessions {
			s.close()
		}
	}
	return committed, rolledBack
}
