package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sdp/internal/sqldb"
)

// TestAggressiveAsyncFailureAborts exercises the aggressive controller's
// deferred-failure path: a write acknowledged after one replica may later
// fail on the other replica, in which case either a subsequent operation or
// the 2PC vote must abort the transaction — never a silent partial commit.
func TestAggressiveAsyncFailureAborts(t *testing.T) {
	cfg := sqldb.DefaultConfig()
	cfg.LockTimeout = 60 * time.Millisecond
	c := newTestCluster(t, 2, Options{Replicas: 2, AckMode: Aggressive, EngineConfig: cfg})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 0), (2, 0)")

	// Block row 1 on ONE machine only, with a direct engine transaction
	// (as if a local admin session held the lock): the aggressive
	// controller will ack a cluster write on row 1 from the other machine
	// and only later discover the timeout.
	reps, _ := c.Replicas("app")
	m0, _ := c.Machine(reps[0])
	blocker, err := m0.Engine().Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blocker.Exec("UPDATE t SET n = 99 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	// The write probably acks from the unblocked replica.
	if _, err := tx.Exec("UPDATE t SET n = 1 WHERE id = 1"); err != nil {
		// Acked from the blocked replica and timed out: also a valid abort.
		_ = blocker.Rollback()
		return
	}
	// Either a later operation notices the failed branch, or commit's 2PC
	// vote does. It must NOT commit.
	time.Sleep(100 * time.Millisecond) // let the blocked branch time out
	_, opErr := tx.Exec("UPDATE t SET n = 2 WHERE id = 2")
	commitErr := error(nil)
	if opErr == nil {
		commitErr = tx.Commit()
	}
	_ = blocker.Rollback()
	if opErr == nil && commitErr == nil {
		t.Fatal("transaction committed despite a failed branch")
	}
	// No partial effects anywhere.
	for _, id := range reps {
		m, _ := c.Machine(id)
		res, err := m.Engine().Exec("app", "SELECT n FROM t WHERE id = 1")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int != 0 {
			t.Errorf("machine %s: n = %v after aborted txn", id, res.Rows[0][0])
		}
	}
}

// TestReplicaConvergenceRandomised drives a mixed workload (inserts,
// updates, deletes across two tables) through the cluster under every
// option/ack combination and verifies all replicas end bit-identical.
func TestReplicaConvergenceRandomised(t *testing.T) {
	for _, mode := range []AckMode{Conservative, Aggressive} {
		for _, opt := range []ReadOption{ReadOption1, ReadOption2, ReadOption3} {
			t.Run(fmt.Sprintf("%s/%s", mode, opt), func(t *testing.T) {
				cfg := sqldb.DefaultConfig()
				cfg.LockTimeout = 100 * time.Millisecond
				c := newTestCluster(t, 2, Options{Replicas: 2, AckMode: mode, ReadOption: opt, EngineConfig: cfg})
				clusterExec(t, c, "CREATE TABLE a (id INT PRIMARY KEY, v INT)")
				clusterExec(t, c, "CREATE TABLE b (id INT PRIMARY KEY, v INT)")
				for i := 0; i < 40; i++ {
					clusterExec(t, c, fmt.Sprintf("INSERT INTO a VALUES (%d, 0)", i))
					clusterExec(t, c, fmt.Sprintf("INSERT INTO b VALUES (%d, 0)", i))
				}
				var wg sync.WaitGroup
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(seed int) {
						defer wg.Done()
						for i := 0; i < 40; i++ {
							k := (seed*31 + i*7) % 40
							tx, err := c.Begin("app")
							if err != nil {
								continue
							}
							var e1, e2 error
							switch i % 4 {
							case 0:
								_, e1 = tx.Exec(fmt.Sprintf("UPDATE a SET v = v + 1 WHERE id = %d", k))
								_, e2 = tx.Exec(fmt.Sprintf("UPDATE b SET v = v + 1 WHERE id = %d", k))
							case 1:
								_, e1 = tx.Exec(fmt.Sprintf("SELECT v FROM a WHERE id = %d", k))
								_, e2 = tx.Exec(fmt.Sprintf("UPDATE b SET v = v - 1 WHERE id = %d", k))
							case 2:
								_, e1 = tx.Exec(fmt.Sprintf("DELETE FROM a WHERE id = %d", k))
								_, e2 = tx.Exec(fmt.Sprintf("INSERT INTO a VALUES (%d, -5)", k))
							default:
								_, e1 = tx.Exec(fmt.Sprintf("UPDATE a SET v = v * 2 WHERE id = %d", k))
							}
							if e1 != nil || e2 != nil {
								_ = tx.Rollback()
								continue
							}
							_ = tx.Commit()
						}
					}(w)
				}
				wg.Wait()

				var fingerprints []string
				for _, id := range c.MachineIDs() {
					m, _ := c.Machine(id)
					ra, err := m.Engine().Exec("app", "SELECT COUNT(*), SUM(v), SUM(id*v) FROM a")
					if err != nil {
						t.Fatal(err)
					}
					rb, err := m.Engine().Exec("app", "SELECT COUNT(*), SUM(v), SUM(id*v) FROM b")
					if err != nil {
						t.Fatal(err)
					}
					fingerprints = append(fingerprints, fmt.Sprint(ra.Rows[0], rb.Rows[0]))
				}
				for i := 1; i < len(fingerprints); i++ {
					if fingerprints[i] != fingerprints[0] {
						t.Fatalf("replicas diverged:\n  %s\n  %s", fingerprints[0], fingerprints[i])
					}
				}
			})
		}
	}
}

// TestAggressiveWritesDoNotDivergeOnConflict stresses the specific risk of
// aggressive acknowledgement: two writers racing on the same rows from
// different "first" replicas. Strict 2PL + 2PC must still serialise the
// writes identically on both machines.
func TestAggressiveWritesDoNotDivergeOnConflict(t *testing.T) {
	cfg := sqldb.DefaultConfig()
	cfg.LockTimeout = 80 * time.Millisecond
	c := newTestCluster(t, 2, Options{Replicas: 2, AckMode: Aggressive, EngineConfig: cfg})
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, '')")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(tag string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, _ = c.Exec("app", fmt.Sprintf("UPDATE t SET v = '%s%d' WHERE id = 1", tag, i))
			}
		}(fmt.Sprintf("w%d-", w))
	}
	wg.Wait()

	var vals []string
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		res, err := m.Engine().Exec("app", "SELECT v FROM t WHERE id = 1")
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, res.Rows[0][0].Str)
	}
	if vals[0] != vals[1] {
		t.Fatalf("replicas diverged: %q vs %q", vals[0], vals[1])
	}
	if errors.Is(nil, ErrRejected) { // keep errors import honest
		t.Fatal("unreachable")
	}
}
