package core

import (
	"time"

	"sdp/internal/netsim"
)

// Background 2PC outcome resolution: when an in-band commit or rollback
// delivery fails on network faults, the decision still must reach the
// participant or its branch would hold locks indefinitely. A resolver
// keeps re-delivering with capped exponential backoff; delivery is
// idempotent at the engine. Bounded attempts keep a permanently
// partitioned machine from leaking goroutines — such a machine is
// eventually declared failed and repaired by recovery instead.
const (
	resolveAttempts   = 64
	resolveBackoffCap = 100 * time.Millisecond
)

// resolveOutcome re-delivers a 2PC decision (commit=true → COMMIT, false →
// ABORT) to one participant out-of-band, in a tracked goroutine (see
// DrainResolvers). The session's queue may already be closed; the resolver
// bypasses it and calls the engine branch through the link directly.
func (c *Cluster) resolveOutcome(s *replicaSession, gid uint64, commit bool) {
	c.resolvers.Add(1)
	go func() {
		defer c.resolvers.Done()
		op := "resolve_rollback"
		deliver := s.txn.Rollback
		if commit {
			op = "resolve_commit"
			deliver = func() error { return alreadyDone(s.txn.CommitPrepared()) }
		}
		backoff := c.opts.RetryBackoff
		for attempt := 0; attempt < resolveAttempts; attempt++ {
			if s.machine.Failed() {
				// The participant died: restart-time recovery resolves its
				// in-doubt branch by presumed abort and delta catch-up
				// repairs any divergence, so there is nothing to deliver.
				c.metrics.bgResolved.With("machine_failed").Inc()
				c.metrics.reg.TraceEvent("2pc", gidString(gid), op+"_skip", s.machine.ID())
				return
			}
			err := callLink(s.link, op, true, deliver)
			if err == nil || !netsim.IsTransient(err) {
				c.metrics.bgResolved.With("delivered").Inc()
				c.metrics.reg.TraceEvent("2pc", gidString(gid), op, s.machine.ID())
				return
			}
			time.Sleep(backoff)
			if backoff < resolveBackoffCap {
				backoff *= 2
			}
		}
		c.metrics.bgResolved.With("abandoned").Inc()
	}()
}

// netCall delivers fn across the simulated link from→to, or runs it
// directly when the cluster has no network. The Algorithm 1 copy path uses
// it for its dump (controller→source) and apply (source→target) steps; a
// faulted step fails the copy, which abandons cleanly and is requeued by
// recovery rather than retried in place.
func (c *Cluster) netCall(from, to, op string, fn func() error) error {
	if c.opts.Network == nil {
		return fn()
	}
	return c.opts.Network.Link(from, to).Call(op, false, fn)
}
