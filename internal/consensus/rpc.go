package consensus

// voteRequest solicits a vote for candidate in term. Log freshness fields
// implement Raft's election restriction: a voter only grants its vote to a
// candidate whose log is at least as up to date as its own.
type voteRequest struct {
	Term         uint64
	Candidate    string
	LastLogIndex uint64
	LastLogTerm  uint64
}

// voteReply answers a voteRequest.
type voteReply struct {
	Term    uint64
	Granted bool
}

// appendRequest replicates entries (or, with none, heartbeats) from the
// leader. PrevIndex/PrevTerm anchor the consistency check; Commit carries
// the leader's commit index.
type appendRequest struct {
	Term      uint64
	Leader    string
	PrevIndex uint64
	PrevTerm  uint64
	Entries   []Entry
	Commit    uint64
}

// appendReply answers an appendRequest. On rejection ConflictIndex is the
// follower's hint for where the leader should back up to — the first index
// of the conflicting term, or just past the follower's last entry — which
// repairs divergence in one round per term rather than one per entry.
type appendReply struct {
	Term          uint64
	Success       bool
	ConflictIndex uint64
	MatchIndex    uint64
}

// snapshotRequest installs a compacted-state snapshot on a replica whose
// log trails behind the leader's compaction point.
type snapshotRequest struct {
	Term      uint64
	Leader    string
	LastIndex uint64
	LastTerm  uint64
	Data      []byte
}

// snapshotReply answers a snapshotRequest.
type snapshotReply struct {
	Term uint64
}

// handleVote processes a RequestVote RPC at the receiving node.
func (n *Node) handleVote(req voteRequest) (voteReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return voteReply{}, errPeerDown
	}
	if req.Term < n.term {
		return voteReply{Term: n.term}, nil
	}
	if req.Term > n.term {
		n.stepDownLocked(req.Term)
	}
	lastIdx := n.log.lastIndex()
	lastTerm := n.log.termAt(lastIdx)
	upToDate := req.LastLogTerm > lastTerm ||
		(req.LastLogTerm == lastTerm && req.LastLogIndex >= lastIdx)
	if (n.votedFor == "" || n.votedFor == req.Candidate) && upToDate {
		n.votedFor = req.Candidate
		n.resetElectionTimerLocked()
		return voteReply{Term: n.term, Granted: true}, nil
	}
	return voteReply{Term: n.term}, nil
}

// handleAppend processes an AppendEntries RPC at the receiving node.
func (n *Node) handleAppend(req appendRequest) (appendReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return appendReply{}, errPeerDown
	}
	if req.Term < n.term {
		return appendReply{Term: n.term}, nil
	}
	if req.Term > n.term || n.role != follower {
		n.stepDownLocked(req.Term)
	}
	n.leaderID = req.Leader
	n.resetElectionTimerLocked()

	prev, prevTerm, entries := req.PrevIndex, req.PrevTerm, req.Entries
	if prev < n.log.base {
		// The snapshot already covers a prefix of these entries; skip it.
		skip := n.log.base - prev
		if uint64(len(entries)) <= skip {
			return appendReply{Term: n.term, Success: true, MatchIndex: n.log.base}, nil
		}
		entries = entries[skip:]
		prev, prevTerm = n.log.base, n.log.baseTerm
	}
	if prev > n.log.lastIndex() {
		return appendReply{Term: n.term, ConflictIndex: n.log.lastIndex() + 1}, nil
	}
	if t := n.log.termAt(prev); t != prevTerm {
		// Back the leader up to the first index of the conflicting term.
		ci := prev
		for ci > n.log.base+1 && n.log.termAt(ci-1) == t {
			ci--
		}
		return appendReply{Term: n.term, ConflictIndex: ci}, nil
	}
	for i, e := range entries {
		idx := prev + 1 + uint64(i)
		if idx <= n.log.lastIndex() {
			if n.log.termAt(idx) == e.Term {
				continue
			}
			n.log.truncateFrom(idx)
			n.failWaitersFromLocked(idx)
		}
		n.log.appendEntry(e)
	}
	last := prev + uint64(len(entries))
	if req.Commit > n.commitIndex {
		// Only the verified prefix (up to the last entry this request
		// matched) is known to agree with the leader's log.
		ci := req.Commit
		if ci > last {
			ci = last
		}
		if ci > n.commitIndex {
			n.commitIndex = ci
			n.applyCond.Signal()
		}
	}
	return appendReply{Term: n.term, Success: true, MatchIndex: last}, nil
}

// handleSnapshot processes an InstallSnapshot RPC at the receiving node.
// The snapshot is staged and installed from the apply goroutine so state
// machine Restore never races an in-flight Apply.
func (n *Node) handleSnapshot(req snapshotRequest) (snapshotReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return snapshotReply{}, errPeerDown
	}
	if req.Term < n.term {
		return snapshotReply{Term: n.term}, nil
	}
	if req.Term > n.term || n.role != follower {
		n.stepDownLocked(req.Term)
	}
	n.leaderID = req.Leader
	n.resetElectionTimerLocked()
	if req.LastIndex > n.commitIndex && req.LastIndex > n.log.base {
		staged := req
		staged.Data = append([]byte(nil), req.Data...)
		n.pendingSnap = &staged
		n.applyCond.Signal()
	}
	return snapshotReply{Term: n.term}, nil
}
