// Bigapp: the paper's future-work extension (Section 7) — an application
// whose database no longer fits one machine, hosted by table-partitioning
// it over several machine groups while every other application stays on the
// small-database fast path. Transactions spanning partitions stay ACID
// because the cluster controller already coordinates two-phase commit
// across all machines a transaction touches.
package main

import (
	"fmt"
	"log"

	"sdp/internal/core"
	"sdp/internal/sqldb"
)

func main() {
	c := core.NewCluster("bigapp", core.Options{Replicas: 2})
	if _, err := c.AddMachines(4); err != nil {
		log.Fatal(err)
	}

	// Partition the analytics application over two machine groups, each
	// internally replicated (so a machine failure never loses data).
	if err := c.CreatePartitionedDatabase("analytics", [][]string{
		{"m1", "m2"},
		{"m3", "m4"},
	}); err != nil {
		log.Fatal(err)
	}

	for _, ddl := range []string{
		"CREATE TABLE users (id INT PRIMARY KEY, name TEXT)",
		"CREATE TABLE events (id INT PRIMARY KEY, user_id INT, kind TEXT)",
		"CREATE TABLE counters (id INT PRIMARY KEY, n INT)",
	} {
		if _, err := c.Exec("analytics", ddl); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("table placement across partitions:")
	for _, tbl := range []string{"users", "events", "counters"} {
		pi := c.TablePartition("analytics", tbl)
		fmt.Printf("  %-10s -> partition %d (machines %v)\n", tbl, pi, c.Partitions("analytics")[pi])
	}

	// A transaction that may span partitions: record an event and bump a
	// counter atomically.
	if _, err := c.Exec("analytics", "INSERT INTO users VALUES (1, 'ada')"); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Exec("analytics", "INSERT INTO counters VALUES (1, 0)"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tx, err := c.Begin("analytics")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tx.Exec("INSERT INTO events VALUES (?, 1, 'click')", sqldb.NewInt(int64(i))); err != nil {
			log.Fatal(err)
		}
		if _, err := tx.Exec("UPDATE counters SET n = n + 1 WHERE id = 1"); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	res, err := c.Exec("analytics", "SELECT n FROM counters WHERE id = 1")
	if err != nil {
		log.Fatal(err)
	}
	events, err := c.Exec("analytics", "SELECT COUNT(*) FROM events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events recorded: %d, counter: %d (atomically in step)\n",
		events.Rows[0][0].Int, res.Rows[0][0].Int)

	// A machine failure in one partition: that partition keeps serving
	// from its surviving replica; the other partition is untouched.
	pi := c.TablePartition("analytics", "events")
	victim := c.Partitions("analytics")[pi][0]
	if _, err := c.FailMachine(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failed %s; events partition keeps serving:\n", victim)
	events, err = c.Exec("analytics", "SELECT COUNT(*) FROM events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events still readable: %d\n", events.Rows[0][0].Int)
}
