package core

import (
	"sort"

	"sdp/internal/sla"
)

// The paper leaves "more sophisticated methods for allocating databases to
// machines" as future work and restricts Algorithm 2 to never move existing
// databases. This file implements the natural extension it gestures at: a
// greedy rebalancer that migrates replicas off the most-loaded machine
// whenever that strictly reduces the cluster's peak utilisation. Every move
// goes through MigrateReplica, so serving transactions are never
// interrupted and each move counts against the SLA's reallocation_rate.
//
// Candidate selection is shared with the adaptive provisioning controller
// (adaptive.go): both plan over the same placementCandidate view, in which
// every database is visible — SLA-managed databases carry their declared
// reservation, databases created without an SLA carry their observed load
// or a nominal footprint. Skew correction therefore sees the whole cluster,
// not just the PlaceWithSLA subset.

// Move records one replica migration performed by Rebalance.
type Move struct {
	DB   string
	From string
	To   string
}

// RebalanceReport summarises a Rebalance run.
type RebalanceReport struct {
	Moves []Move
	// PeakBefore and PeakAfter are the maximum machine utilisations (the
	// dominant resource dimension of the machines' effective loads, as a
	// fraction of capacity) before and after.
	PeakBefore float64
	PeakAfter  float64
}

// utilisation returns the machine's dominant-dimension reserved-load
// fraction (SLA reservations only; the rebalancer itself plans over
// effective loads, see placementCandidate).
func (m *Machine) utilisation() float64 {
	return utilOf(m.Used(), m.Capacity())
}

// placementCandidate is one database as the movement planners see it:
// the unit both Rebalance and the adaptive controller select over.
type placementCandidate struct {
	db string
	// req is the declared per-replica SLA reservation, zero for databases
	// created without PlaceWithSLA. Targets are checked against req so
	// reservations are never oversubscribed.
	req sla.Resources
	// load is the effective per-replica load used for skew math: the
	// observed load when the caller supplies one, the declared
	// reservation otherwise, and a nominal footprint for unmanaged idle
	// databases (so they are visible to skew correction at all).
	load     sla.Resources
	replicas []string
	copying  bool
}

// nominalDBLoad is the effective footprint assumed for a database with
// neither an observed load nor a declared reservation. Non-zero so that a
// machine buried under hundreds of unmanaged databases still reads as
// loaded; small so one such database never looks worth moving on its own.
var nominalDBLoad = sla.Resources{CPU: 0.02, Memory: 0.02, Disk: 0.005, DiskBW: 0.01}

// movementCandidatesLocked builds the shared candidate view. loads maps
// database name to an observed per-replica load (nil is fine). Partitioned
// databases are excluded — replica copies are unsupported there. Caller
// holds c.mu.
func (c *Cluster) movementCandidatesLocked(loads map[string]sla.Resources) []placementCandidate {
	names := make([]string, 0, len(c.dbs))
	for name := range c.dbs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]placementCandidate, 0, len(names))
	for _, name := range names {
		ds := c.dbs[name]
		if ds.partitioned() {
			continue
		}
		cand := placementCandidate{
			db:       name,
			req:      ds.req,
			load:     ds.req,
			replicas: append([]string(nil), ds.replicas...),
			copying:  ds.copying != nil,
		}
		if l, ok := loads[name]; ok && l != (sla.Resources{}) {
			cand.load = l
		} else if cand.load == (sla.Resources{}) {
			cand.load = nominalDBLoad
		}
		out = append(out, cand)
	}
	return out
}

// effectiveLoadsLocked sums the candidates' per-replica loads onto the live
// machines hosting them. Caller holds c.mu.
func (c *Cluster) effectiveLoadsLocked(cands []placementCandidate) map[string]sla.Resources {
	eff := make(map[string]sla.Resources, len(c.machines))
	for _, id := range c.order {
		if m := c.machines[id]; m != nil && !m.Failed() {
			eff[id] = sla.Resources{}
		}
	}
	for _, cand := range cands {
		for _, id := range cand.replicas {
			if cur, ok := eff[id]; ok {
				eff[id] = cur.Add(cand.load)
			}
		}
	}
	return eff
}

// Rebalance migrates up to maxMoves replicas to reduce the cluster's peak
// machine utilisation, planning over declared reservations (and nominal
// footprints for unmanaged databases). A move is performed only when the
// peak strictly decreases and the target has reservation capacity.
func (c *Cluster) Rebalance(maxMoves int) (RebalanceReport, error) {
	return c.RebalanceWithLoads(maxMoves, nil)
}

// RebalanceWithLoads is Rebalance with observed per-replica loads
// substituted for declared reservations where available — the load-aware
// entry point the adaptive controller uses, so its skew correction chases
// actual traffic rather than paper reservations.
func (c *Cluster) RebalanceWithLoads(maxMoves int, loads map[string]sla.Resources) (RebalanceReport, error) {
	report := RebalanceReport{PeakBefore: c.peakEffective(loads)}
	report.PeakAfter = report.PeakBefore
	for len(report.Moves) < maxMoves {
		move, ok := c.planMove(loads, 0)
		if !ok {
			break
		}
		if err := c.MigrateReplica(move.DB, move.From, move.To); err != nil {
			// Capacity may have changed under us; stop rather than loop.
			return report, err
		}
		report.Moves = append(report.Moves, move)
		report.PeakAfter = c.peakEffective(loads)
	}
	return report, nil
}

// peakEffective returns the highest live-machine effective utilisation.
func (c *Cluster) peakEffective(loads map[string]sla.Resources) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	eff := c.effectiveLoadsLocked(c.movementCandidatesLocked(loads))
	peak := 0.0
	for id, used := range eff {
		if u := utilOf(used, c.machines[id].Capacity()); u > peak {
			peak = u
		}
	}
	return peak
}

// planMove finds the best single migration: take the machine with the
// highest effective load, and try to move one of its replicas to the
// least-loaded machine that fits it, provided the peak strictly improves.
// minGain is the required relative peak reduction (0 = any strict
// improvement); the adaptive controller passes a non-zero gain so noisy
// observed loads cannot ping-pong replicas between near-equal machines.
func (c *Cluster) planMove(loads map[string]sla.Resources, minGain float64) (Move, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	cands := c.movementCandidatesLocked(loads)
	eff := c.effectiveLoadsLocked(cands)

	// Most-loaded live machine by effective utilisation.
	var hottest *Machine
	hotUtil := 0.0
	for _, id := range c.order {
		m := c.machines[id]
		if m.Failed() {
			continue
		}
		if u := utilOf(eff[id], m.Capacity()); hottest == nil || u > hotUtil {
			hottest, hotUtil = m, u
		}
	}
	if hottest == nil {
		return Move{}, false
	}
	peak := hotUtil

	for _, cand := range cands {
		if cand.copying || !contains(cand.replicas, hottest.id) {
			continue
		}
		// Candidate targets: live machines not hosting db, coldest first.
		// Declared reservations must still fit; effective load decides
		// preference and improvement.
		var best *Machine
		bestUtil := 0.0
		for _, id := range c.order {
			m := c.machines[id]
			if m.Failed() || m == hottest || contains(cand.replicas, id) {
				continue
			}
			if !m.Used().Add(cand.req).Fits(m.Capacity()) {
				continue
			}
			if u := utilOf(eff[id], m.Capacity()); best == nil || u < bestUtil {
				best, bestUtil = m, u
			}
		}
		if best == nil {
			continue
		}
		// Does the move strictly reduce the peak? After the move the
		// hottest machine drops by the db's share; the target rises.
		hotAfter := utilOf(eff[hottest.id].Sub(cand.load), hottest.Capacity())
		tgtAfter := utilOf(eff[best.id].Add(cand.load), best.Capacity())
		newPeak := hotAfter
		if tgtAfter > newPeak {
			newPeak = tgtAfter
		}
		if newPeak+1e-9 < peak*(1-minGain) {
			return Move{DB: cand.db, From: hottest.id, To: best.id}, true
		}
	}
	return Move{}, false
}

func utilOf(used, cap sla.Resources) float64 {
	frac := func(u, c float64) float64 {
		if c <= 0 {
			return 0
		}
		return u / c
	}
	max := frac(used.CPU, cap.CPU)
	if f := frac(used.Memory, cap.Memory); f > max {
		max = f
	}
	if f := frac(used.Disk, cap.Disk); f > max {
		max = f
	}
	if f := frac(used.DiskBW, cap.DiskBW); f > max {
		max = f
	}
	return max
}
