package experiments

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// netServerEnv marks the child half of the split-process network bench.
// cmd/experiments checks it at startup and calls RunNetBenchServer instead
// of parsing flags.
const netServerEnv = "SDP_NETBENCH_SERVER"

// RunNetBenchServer is the server half of the full-scale wire benchmark,
// run as a child process so the client's and server's socket tables live
// in separate fd limits (10k+ loopback connections need two fds each — one
// process' RLIMIT_NOFILE often cannot hold both ends). It boots the bench
// platform, announces "ADDR host:port" on stdout, answers "STATS" lines on
// stdin with "STATS <bytes_read> <bytes_written> <conns_active>", and
// drains the server when stdin closes.
func RunNetBenchServer() error {
	raiseFDLimit(16384)
	srv, err := netBenchPlatform()
	if err != nil {
		return err
	}
	fmt.Printf("ADDR %s\n", srv.Addr())
	counters := srvRegistryCounters(srv)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if sc.Text() == "STATS" {
			fmt.Printf("STATS %d %d %g\n", counters.read(), counters.written(), counters.active())
		}
	}
	return srv.Close()
}

// netServerProc drives a RunNetBenchServer child over its stdio: a
// line-oriented control channel standing in for the in-process registry.
type netServerProc struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out *bufio.Reader

	mu            sync.Mutex // serializes STATS round trips
	read, written uint64     // last good counter values
	active        float64
}

// startNetServerProc re-executes this binary with netServerEnv set and
// waits for its ADDR announcement. Only cmd/experiments installs the env
// hook; any other binary (a test runner, say) prints something else first,
// so a non-ADDR first line kills the child and reports an error — callers
// fall back to the in-process server.
func startNetServerProc() (*netServerProc, string, error) {
	if os.Getenv(netServerEnv) == "1" {
		return nil, "", errors.New("netbench: already the server child")
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, "", err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), netServerEnv+"=1")
	cmd.Stderr = os.Stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, "", err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	p := &netServerProc{cmd: cmd, in: in, out: bufio.NewReader(stdout)}
	line, err := p.out.ReadString('\n')
	var addr string
	if err == nil {
		if _, serr := fmt.Sscanf(line, "ADDR %s", &addr); serr != nil {
			err = fmt.Errorf("netbench: child announced %q, want ADDR", line)
		}
	}
	if err != nil {
		p.stop()
		return nil, "", err
	}
	return p, addr, nil
}

// stats runs one STATS round trip, keeping the last good values on error.
func (p *netServerProc) stats() (read, written uint64, active float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := fmt.Fprintln(p.in, "STATS"); err == nil {
		if line, err := p.out.ReadString('\n'); err == nil {
			var r, w uint64
			var a float64
			if _, err := fmt.Sscanf(line, "STATS %d %d %g", &r, &w, &a); err == nil {
				p.read, p.written, p.active = r, w, a
			}
		}
	}
	return p.read, p.written, p.active
}

// counters exposes the child's wire_* metrics through the netCounters
// readers the in-process path uses.
func (p *netServerProc) counters() netCounters {
	return netCounters{
		read:    func() uint64 { r, _, _ := p.stats(); return r },
		written: func() uint64 { _, w, _ := p.stats(); return w },
		active:  func() float64 { _, _, a := p.stats(); return a },
	}
}

// stop closes the control channel (draining the child's server) and kills
// the child if it does not exit promptly.
func (p *netServerProc) stop() {
	_ = p.in.Close()
	done := make(chan struct{})
	go func() { _ = p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
}
