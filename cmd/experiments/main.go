// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Run with no flags to reproduce everything, or select
// one artefact:
//
//	experiments -exp table1      # serializability matrix
//	experiments -exp fig2        # shopping-mix throughput
//	experiments -exp fig3        # browsing-mix throughput
//	experiments -exp fig4        # ordering-mix throughput
//	experiments -exp fig5|6|7    # deadlock rates per mix
//	experiments -exp fig8        # rejected transactions during recovery
//	experiments -exp fig9        # throughput during recovery
//	experiments -exp table2      # SLA placement vs optimal
//
// -quick shrinks the data sizes and durations for a fast pass.
//
// -bench-sqldb runs the hot-path query-engine microbenchmarks (compiled
// point read, replicated write, TPC-W mix — see EXPERIMENTS.md "Hot-path
// engine latencies" for current numbers: ~467 ns point reads at 0
// allocs/op, ~52k TPS mix, compiled_fraction ~0.82) and writes the results
// to BENCH_sqldb.json (or the path given by -bench-out) instead of running
// the figure suite; a unified metrics snapshot of the bench run lands next
// to it with a .metrics.txt suffix.
//
// -bench-net runs the wire-protocol benchmark — single-connection prepared
// vs simple point-read round trips over loopback (with the EXPLAIN
// executor check) and a throughput curve up to >10k concurrent
// connections — and writes BENCH_net.json (or -bench-net-out).
//
// -serve boots a platform with one demo database ("app", token "demo"),
// serves the wire protocol on the given address until interrupted, and
// prints the matching sdpsh -connect invocation; `make net-demo` uses it.
//
// -bench-wal runs the durability benchmarks — commit latency and flushes
// per commit as concurrent committers grow, with and without group commit,
// plus machine-restart recovery by log replay versus a full Algorithm-1
// copy — and writes the results to BENCH_wal.json (or -bench-wal-out).
//
// -bench-consensus runs the replicated-control-plane benchmarks — steady-state
// control-operation latency through the consensus log (create/drop database
// p50/p99), then repeated leader kills under TPC-W load measuring the time
// from each kill to the next committed control-plane operation and to the
// next committed client transaction, plus commit throughput before versus
// across the failovers — and writes BENCH_consensus.json (or
// -bench-consensus-out).
//
// -bench-placement runs the adaptive-placement experiment: eight tenants
// packed by static First-Fit onto four machines, hit with Zipfian-skewed
// TPC-W traffic, once frozen and once with the adaptive provisioning
// controller closing the loop from the SLA monitor, comparing SLA violation
// windows at equal machine count; a third balanced-load phase asserts the
// decision loop proposes nothing when there is nothing to fix. Writes
// BENCH_placement.json (or -bench-placement-out) and exits 1 if the
// adaptive run is worse than static or the balanced phase was not inert.
// CI runs this gate (quick mode) on every push.
//
// -bench-gate re-runs the point-read benchmark at the committed baseline's
// iteration count and compares the measured latency against the baseline in
// the file given by -bench-baseline (default BENCH_sqldb.json), exiting 1 if
// it regressed by more than -bench-gate-pct percent. CI runs this on every
// push.
//
// -metrics drives a TPC-W mix with a replica creation mid-run and dumps the
// platform's unified observability snapshot — every family described in
// OBSERVABILITY.md — as text (default) or JSON (-format json). -trace-scope
// restricts the printed trace events to one scope (2pc, copy, recovery,
// repl, dr, sla) and -sla-report appends the SLA compliance report.
//
// -admin boots a full platform with the HTTP admin plane listening on the
// given address (e.g. -admin 127.0.0.1:8344) and drives a TPC-W mix with a
// deliberately under-provisioned SLA for -admin-duration, so /metrics,
// /tracez and /slaz all serve live data while it runs.
//
// -chaos runs one chaos soak: TPC-W traffic on a replicated WAL-backed
// cluster while a scheduler seeded by -seed injects network faults,
// asymmetric partitions, and machine crashes (including kills timed right
// after a 2PC PREPARE ack), then checks one-copy serializability, replica
// convergence, and lock hygiene. -chaos-duration and -chaos-clients size the
// run; the process exits 1 if any invariant was violated, and the same seed
// replays the identical fault schedule. With -placement the adaptive
// replica-provisioning controller runs during the soak, so its grows,
// shrinks, and migrations race the injected faults and the same invariants
// must still hold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdp/internal/experiments"
	"sdp/internal/obs"
	"sdp/internal/tpcw"
)

func main() {
	// Child half of the split-process network bench (-bench-net at full
	// scale re-executes this binary with the env set; see
	// experiments.RunNetBenchServer).
	if os.Getenv("SDP_NETBENCH_SERVER") == "1" {
		if err := experiments.RunNetBenchServer(); err != nil {
			fmt.Fprintln(os.Stderr, "netbench server:", err)
			os.Exit(1)
		}
		return
	}
	exp := flag.String("exp", "all", "experiment to run: table1, fig2..fig9, table2, all")
	quick := flag.Bool("quick", false, "shrink sizes and durations")
	seed := flag.Int64("seed", 42, "workload seed")
	format := flag.String("format", "text", "output format: text, csv, or (with -metrics) json")
	benchSQL := flag.Bool("bench-sqldb", false, "run query-engine microbenchmarks and write JSON results")
	benchOut := flag.String("bench-out", "BENCH_sqldb.json", "output path for -bench-sqldb results")
	benchWAL := flag.Bool("bench-wal", false, "run the durability benchmarks (group commit scaling, log-replay vs full-copy recovery) and write JSON results")
	benchWALOut := flag.String("bench-wal-out", "BENCH_wal.json", "output path for -bench-wal results")
	benchConsensus := flag.Bool("bench-consensus", false, "run the replicated-control-plane benchmarks (control-op latency, leader-failover time under load) and write JSON results")
	benchConsensusOut := flag.String("bench-consensus-out", "BENCH_consensus.json", "output path for -bench-consensus results")
	benchNet := flag.Bool("bench-net", false, "run the wire-protocol benchmarks (loopback latency, throughput vs connection count) and write JSON results")
	benchNetOut := flag.String("bench-net-out", "BENCH_net.json", "output path for -bench-net results")
	serveAddr := flag.String("serve", "", "serve the wire protocol with a demo database on this address (e.g. 127.0.0.1:8346) until interrupted")
	benchPlacement := flag.Bool("bench-placement", false, "run the adaptive-placement experiment (static vs adaptive under Zipfian skew, balanced-load inertness) and write JSON results")
	benchPlacementOut := flag.String("bench-placement-out", "BENCH_placement.json", "output path for -bench-placement results")
	benchGate := flag.Bool("bench-gate", false, "re-run the point-read bench and fail if it regressed vs the committed baseline")
	benchBaseline := flag.String("bench-baseline", "BENCH_sqldb.json", "baseline file for -bench-gate")
	benchGatePct := flag.Float64("bench-gate-pct", 20, "allowed point-read regression for -bench-gate, in percent")
	metrics := flag.Bool("metrics", false, "run a TPC-W mix with a mid-run replica copy and dump the unified metrics snapshot")
	traceScope := flag.String("trace-scope", "", "with -metrics: only print trace events of this scope (2pc, copy, recovery, repl, dr, sla)")
	slaReport := flag.Bool("sla-report", false, "with -metrics or -admin: print the SLA compliance report")
	adminAddr := flag.String("admin", "", "serve the HTTP admin plane on this address (e.g. 127.0.0.1:8344) while driving a demo workload")
	adminDur := flag.Duration("admin-duration", 10*time.Second, "how long the -admin demo workload runs")
	traceDemo := flag.Bool("trace-demo", false, "boot a traced platform, run wire-client calls, and print the span trees and slow-query log")
	slow := flag.Bool("slow", false, "boot a traced platform, run wire-client calls, and print the slow-query log")
	chaos := flag.Bool("chaos", false, "run a chaos soak (TPC-W under injected faults, partitions, and crashes) and verify serializability")
	chaosDur := flag.Duration("chaos-duration", 0, "faulted-traffic duration for -chaos (default 10s, 2s with -quick)")
	chaosClients := flag.Int("chaos-clients", 4, "concurrent TPC-W sessions for -chaos")
	chaosPlacement := flag.Bool("placement", false, "with -chaos: run the adaptive placement controller during the soak so grows, shrinks, and migrations race the fault schedule")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	if *traceDemo || *slow {
		if err := runTraceDemo(*slow && !*traceDemo); err != nil {
			fmt.Fprintf(os.Stderr, "trace-demo: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		rep, err := experiments.RunChaos(experiments.ChaosConfig{
			Seed:      *seed,
			Duration:  *chaosDur,
			Clients:   *chaosClients,
			Quick:     *quick,
			Placement: *chaosPlacement,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(1)
		}
		rep.WriteText(os.Stdout)
		if !rep.Passed() {
			os.Exit(1)
		}
		return
	}

	if *adminAddr != "" {
		if err := runAdminDemo(*adminAddr, *adminDur, *seed, *slaReport); err != nil {
			fmt.Fprintf(os.Stderr, "admin: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *metrics {
		snap, rep, err := experiments.RunMetricsDemo(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		if *format == "json" {
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
				os.Exit(1)
			}
			os.Stdout.Write(append(data, '\n'))
		} else {
			snap.WriteText(os.Stdout)
			// Same filter predicate as the admin plane's /tracez endpoint.
			trace := obs.FilterEvents(snap.Trace, *traceScope, "")
			if n := len(trace); n > 0 {
				tail := trace
				if len(tail) > 20 {
					tail = tail[len(tail)-20:]
				}
				fmt.Printf("\n# trace: last %d of %d span events (scope/id/phase)\n", len(tail), n)
				for _, ev := range tail {
					fmt.Printf("%6d %-8s %-12s %-16s %s\n", ev.Seq, ev.Scope, ev.ID, ev.Phase, ev.Detail)
				}
			}
		}
		if *slaReport {
			fmt.Println()
			rep.WriteText(os.Stdout)
		}
		return
	}

	if *serveAddr != "" {
		if err := runWireDemo(*serveAddr); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchNet {
		res, err := experiments.RunNetBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-net: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-net: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchNetOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-net: %v\n", err)
			os.Exit(1)
		}
		last := res.Points[len(res.Points)-1]
		fmt.Printf("wrote %s: prepared read %.0f ns/op vs simple %.0f ns/op (EXPLAIN exec=%s); at %d conns %.0f tps, p99 %.0f µs, %.0f bytes/op, %d sustained\n",
			*benchNetOut, res.PreparedReadNsPerOp, res.SimpleReadNsPerOp, res.ExplainExec,
			last.Conns, last.TPS, last.P99Us, last.BytesPerOp, res.MaxConnsSustained)
		return
	}

	if *benchConsensus {
		res, err := experiments.RunConsensusBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-consensus: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-consensus: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchConsensusOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-consensus: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d controllers, ctl op p50 %.0f µs / p99 %.0f µs; %d leader kills under load: ctl commit back in %.1f ms, txn commit in %.1f ms (mean); %.0f tps baseline vs %.0f across failovers\n",
			*benchConsensusOut, res.Controllers, res.CtlOpP50Us, res.CtlOpP99Us,
			len(res.Failovers), res.CtlCommitMeanMs, res.TxnCommitMeanMs,
			res.BaselineTPS, res.FailoverTPS)
		return
	}

	if *benchWAL {
		res, err := experiments.RunWALBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-wal: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-wal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchWALOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-wal: %v\n", err)
			os.Exit(1)
		}
		last := len(res.GroupCommit) - 1
		fmt.Printf("wrote %s: at %d committers %.3f flushes/commit with group commit vs %.3f without; recovery of %d rows: %.1f ms log replay+delta vs %.1f ms full copy (%.1fx)\n",
			*benchWALOut,
			res.GroupCommit[last].Committers, res.GroupCommit[last].FlushesPerCommit,
			res.NoGroupCommit[last].FlushesPerCommit,
			res.RecoveryRows, res.FastRecoveryMs, res.FullRecoveryMs, res.FastSpeedupRatio)
		return
	}

	if *benchPlacement {
		res := experiments.RunPlacementBench(cfg)
		data, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-placement: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchPlacementOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-placement: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchPlacementOut)
		res.WriteText(os.Stdout)
		if !res.Passed() {
			fmt.Fprintln(os.Stderr, "bench-placement: gate failed (adaptive worse than static, or balanced load was not inert)")
			os.Exit(1)
		}
		return
	}

	if *benchGate {
		if err := runBenchGate(*benchBaseline, *benchGatePct, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchSQL {
		res, snap, err := experiments.RunSQLBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-sqldb: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-sqldb: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-sqldb: %v\n", err)
			os.Exit(1)
		}
		var mb strings.Builder
		snap.WriteText(&mb)
		metricsOut := strings.TrimSuffix(*benchOut, ".json") + ".metrics.txt"
		if err := os.WriteFile(metricsOut, []byte(mb.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-sqldb: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: point read %.0f ns/op, replicated write %.0f ns/op, TPC-W mix %.0f ns/op (%.0f tps)\n",
			*benchOut, res.PointReadNsPerOp, res.ReplicatedWriteNsPerOp, res.TPCWMixNsPerOp, res.TPCWMixTPS)
		fmt.Printf("tracing overhead on point reads: off %.0f ns/op, on %.0f ns/op (%.1f%%)\n",
			res.PointReadTracingOffNsPerOp, res.PointReadTracingOnNsPerOp, res.TraceOverheadPct)
		fmt.Printf("wrote %s (bench metrics snapshot)\n", metricsOut)
		return
	}
	out := os.Stdout
	render := func(t *experiments.Table) {
		if *format == "csv" {
			t.WriteCSV(out)
		} else {
			t.Write(out)
		}
	}

	run := func(name string) bool {
		return *exp == "all" || strings.EqualFold(*exp, name)
	}

	ran := false
	if run("table1") {
		ran = true
		fmt.Fprintln(out, "running Table 1 (serializability matrix)...")
		render(experiments.RunTable1(cfg).Render())
	}
	throughput := []struct {
		name string
		mix  tpcw.Mix
	}{
		{"fig2", tpcw.ShoppingMix},
		{"fig3", tpcw.BrowsingMix},
		{"fig4", tpcw.OrderingMix},
	}
	for _, f := range throughput {
		if run(f.name) {
			ran = true
			fmt.Fprintf(out, "running %s (throughput, %s mix)...\n", strings.Replace(f.name, "fig", "Figure ", 1), f.mix.Name)
			render(experiments.RunThroughput(f.mix, cfg).Render(strings.Replace(f.name, "fig", "Figure ", 1)))
		}
	}
	deadlocks := []struct {
		name string
		mix  tpcw.Mix
	}{
		{"fig5", tpcw.ShoppingMix},
		{"fig6", tpcw.BrowsingMix},
		{"fig7", tpcw.OrderingMix},
	}
	for _, f := range deadlocks {
		if run(f.name) {
			ran = true
			fmt.Fprintf(out, "running %s (deadlock rate, %s mix)...\n", strings.Replace(f.name, "fig", "Figure ", 1), f.mix.Name)
			render(experiments.RunDeadlocks(f.mix, cfg).Render(strings.Replace(f.name, "fig", "Figure ", 1)))
		}
	}
	if run("fig8") || run("fig9") {
		ran = true
		fmt.Fprintln(out, "running Figures 8 and 9 (recovery)...")
		rec := experiments.RunRecovery(cfg)
		if run("fig8") {
			render(rec.RenderRejected())
		}
		if run("fig9") {
			render(rec.RenderThroughput())
		}
	}
	if run("table2") {
		ran = true
		fmt.Fprintln(out, "running Table 2 (SLA placement)...")
		render(experiments.RunTable2(cfg).Render())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
