package obs

import (
	"sort"
	"sync"
	"time"
)

// Per-tenant query-stats bounds. The paper's tenants are small
// applications with small, stable statement vocabularies — a prepared-
// statement workload rarely exceeds a few dozen distinct texts — so a
// modest per-tenant cap captures the real workload while bounding memory
// across many tenants. Overflow folds into the synthetic statement
// "(other)" instead of being dropped, so totals stay honest.
const (
	maxStatsPerTenant = 64
	maxStatsTenants   = 1024
	statsOverflowKey  = "(other)"
)

// QueryStat is one statement's accumulated execution profile for a tenant.
type QueryStat struct {
	// SQL is the statement text ("(other)" for folded overflow).
	SQL string `json:"sql"`
	// Count is how many times the statement executed.
	Count uint64 `json:"count"`
	// TotalSeconds is the summed execution time.
	TotalSeconds float64 `json:"total_seconds"`
	// MeanSeconds is TotalSeconds / Count.
	MeanSeconds float64 `json:"mean_seconds"`
	// MaxSeconds is the worst single execution.
	MaxSeconds float64 `json:"max_seconds"`
}

type queryAgg struct {
	count uint64
	total float64
	max   float64
}

// QueryStats accumulates per-tenant per-statement execution profiles —
// the "which queries is this tenant's time going to" attribution that the
// SLA report surfaces as top-K lists. Bounded in both dimensions (tenants
// and statements per tenant); overflow folds rather than drops. A nil
// QueryStats is valid and discards observations.
type QueryStats struct {
	mu      sync.Mutex
	tenants map[string]map[string]*queryAgg
}

// NewQueryStats creates an empty per-tenant query-stats accumulator.
func NewQueryStats() *QueryStats {
	return &QueryStats{tenants: make(map[string]map[string]*queryAgg)}
}

// Record accumulates one statement execution for a tenant database.
func (q *QueryStats) Record(db, sql string, d time.Duration) {
	if q == nil || db == "" || sql == "" {
		return
	}
	secs := d.Seconds()
	q.mu.Lock()
	defer q.mu.Unlock()
	stmts := q.tenants[db]
	if stmts == nil {
		if len(q.tenants) >= maxStatsTenants {
			return
		}
		stmts = make(map[string]*queryAgg)
		q.tenants[db] = stmts
	}
	agg := stmts[sql]
	if agg == nil {
		if len(stmts) >= maxStatsPerTenant {
			sql = statsOverflowKey
			if agg = stmts[sql]; agg == nil {
				agg = &queryAgg{}
				stmts[sql] = agg
			}
		} else {
			agg = &queryAgg{}
			stmts[sql] = agg
		}
	}
	agg.count++
	agg.total += secs
	if secs > agg.max {
		agg.max = secs
	}
}

// TopK returns a tenant's k most expensive statements by total execution
// time, descending. k <= 0 returns all of the tenant's statements.
func (q *QueryStats) TopK(db string, k int) []QueryStat {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	stmts := q.tenants[db]
	out := make([]QueryStat, 0, len(stmts))
	for sql, agg := range stmts {
		out = append(out, QueryStat{
			SQL:          sql,
			Count:        agg.count,
			TotalSeconds: agg.total,
			MeanSeconds:  agg.total / float64(agg.count),
			MaxSeconds:   agg.max,
		})
	}
	q.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSeconds != out[j].TotalSeconds {
			return out[i].TotalSeconds > out[j].TotalSeconds
		}
		return out[i].SQL < out[j].SQL
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Tenants returns the tenant databases with recorded stats, sorted.
func (q *QueryStats) Tenants() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.tenants))
	for db := range q.tenants {
		out = append(out, db)
	}
	sort.Strings(out)
	return out
}
