package core

import (
	"sync"
	"sync/atomic"

	"sdp/internal/sla"
	"sdp/internal/sqldb"
)

// Machine is one database machine of the cluster: a commodity box running a
// single-node DBMS instance. The cluster controller is the only client of
// its engine.
type Machine struct {
	id     string
	engine *sqldb.Engine

	mu       sync.Mutex
	failed   bool
	capacity sla.Resources
	hasCap   bool
	used     sla.Resources

	// dbCount tracks how many databases are hosted here, for the cluster's
	// internal least-loaded placement.
	dbCount atomic.Int32
}

// newMachine creates a machine with a fresh engine.
func newMachine(id string, cfg sqldb.Config, rec sqldb.Recorder) *Machine {
	e := sqldb.NewEngine(cfg)
	if rec != nil {
		e.SetRecorder(rec)
	}
	return &Machine{id: id, engine: e}
}

// ID returns the machine's identifier.
func (m *Machine) ID() string { return m.id }

// Engine exposes the machine's DBMS instance (statistics, experiments).
func (m *Machine) Engine() *sqldb.Engine { return m.engine }

// Failed reports whether the machine has failed.
func (m *Machine) Failed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// fail marks the machine as failed and closes its engine, modelling a
// power or disk failure.
func (m *Machine) fail() {
	m.mu.Lock()
	m.failed = true
	m.mu.Unlock()
	m.engine.Close()
}
