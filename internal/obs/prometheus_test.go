package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestWritePrometheusGolden locks the exposition output byte for byte: family
// headers, sorted labels, spec escaping in HELP and label values, and
// cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()

	c := reg.Counter("demo_requests_total", "Requests served")
	c.Add(42)

	g := reg.Gauge("demo_queue_depth", "Items queued; escapes \\ and\nnewlines")
	g.Set(3.5)

	h := reg.Histogram("demo_latency_seconds", "Request latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	v := reg.CounterVec("demo_errors_total", "Errors by class and db", "class", "db")
	v.With("timeout", `we"ird\db`+"\n").Add(7)
	v.With("fatal", "shop").Inc()

	var buf bytes.Buffer
	reg.Snapshot().WritePrometheus(&buf)

	golden := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSnapshotHistogramBuckets verifies the snapshot carries the bucket
// bounds and per-bucket counts (one more bucket than bounds: the overflow).
func TestSnapshotHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hist", "h", []float64{1, 2})
	h.Observe(0.5) // bucket 0
	h.Observe(1.5) // bucket 1
	h.Observe(9)   // overflow

	hs, ok := reg.Snapshot().Histogram("hist")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if len(hs.Bounds) != 2 || hs.Bounds[0] != 1 || hs.Bounds[1] != 2 {
		t.Fatalf("bounds = %v, want [1 2]", hs.Bounds)
	}
	if len(hs.Buckets) != len(hs.Bounds)+1 {
		t.Fatalf("got %d buckets for %d bounds, want one extra overflow bucket", len(hs.Buckets), len(hs.Bounds))
	}
	for i, want := range []uint64{1, 1, 1} {
		if hs.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, hs.Buckets[i], want)
		}
	}
}
