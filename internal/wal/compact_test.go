package wal

import (
	"testing"

	"sdp/internal/obs"
)

// appendSpan writes a complete checkpoint span: a begin frame, a namespace
// marker and one table image per database, and a synced end frame.
func appendSpan(t *testing.T, l *Log, dbs ...string) {
	t.Helper()
	if _, err := l.Append(Record{Type: RecCheckpointBegin}); err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs {
		if _, err := l.Append(Record{Type: RecCheckpointTable, DB: db}); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(Record{Type: RecCheckpointTable, DB: db, Table: "t", Data: []byte("image")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AppendSync(Record{Type: RecCheckpointEnd}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactDropsDeadHead(t *testing.T) {
	s := NewMemStore()
	m := NewMetrics(obs.NewRegistry())
	l := New(s, Config{Compact: true}, m)
	for _, r := range []Record{
		{Type: RecCreateDB, DB: "db"},
		{Type: RecBegin, Txn: 1, DB: "db"},
		{Type: RecStatement, Txn: 1, DB: "db", Table: "t", Data: []byte("INSERT INTO t VALUES (1)")},
		{Type: RecCommit, Txn: 1, DB: "db"},
	} {
		if _, err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	appendSpan(t, l, "db")
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 2, DB: "db"}); err != nil {
		t.Fatal(err)
	}

	before := s.Size()
	ok, err := l.Compact()
	if err != nil || !ok {
		t.Fatalf("Compact = (%v, %v), want (true, nil)", ok, err)
	}
	if s.Size() >= before {
		t.Fatalf("store did not shrink: %d -> %d bytes", before, s.Size())
	}
	if got := m.Compactions.Value(); got != 1 {
		t.Fatalf("wal_compactions_total = %d, want 1", got)
	}

	// The surviving log starts at the checkpoint begin frame, re-addressed to
	// offset zero, and is clean.
	recs, torn, err := l.Recover()
	if err != nil || torn {
		t.Fatalf("recover after compact: err=%v torn=%v", err, torn)
	}
	want := []RecordType{RecCheckpointBegin, RecCheckpointTable, RecCheckpointTable, RecCheckpointEnd, RecCommit}
	if len(recs) != len(want) {
		t.Fatalf("%d records survived, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i] {
			t.Fatalf("record %d: type %d, want %d", i, r.Type, want[i])
		}
	}
	if recs[0].LSN != 0 {
		t.Fatalf("first record LSN = %d, want 0", recs[0].LSN)
	}

	// Appends continue cleanly on the compacted log.
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 3, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	recs, torn, err = l.Recover()
	if err != nil || torn || len(recs) != len(want)+1 {
		t.Fatalf("after re-append: err=%v torn=%v records=%d", err, torn, len(recs))
	}
}

func TestCompactWithoutCheckpointIsNoop(t *testing.T) {
	s := NewMemStore()
	l := New(s, Config{Compact: true}, nil)
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 1, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	before := s.Size()
	if ok, err := l.Compact(); err != nil || ok {
		t.Fatalf("Compact = (%v, %v), want (false, nil)", ok, err)
	}
	if s.Size() != before {
		t.Fatalf("store changed without a checkpoint: %d -> %d", before, s.Size())
	}
}

func TestCompactRefusesInDoubtHead(t *testing.T) {
	l := New(NewMemStore(), Config{Compact: true}, nil)
	for _, r := range []Record{
		{Type: RecCreateDB, DB: "db"},
		{Type: RecBegin, Txn: 1, GID: 7, DB: "db"},
		{Type: RecStatement, Txn: 1, GID: 7, DB: "db", Table: "t", Data: []byte("stmt")},
		{Type: RecPrepare, Txn: 1, GID: 7, DB: "db"},
	} {
		if _, err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	appendSpan(t, l, "db")
	// The prepared transaction is in doubt: its statements may still be
	// needed, so the head must stay.
	if ok, err := l.Compact(); err != nil || ok {
		t.Fatalf("in-doubt head: Compact = (%v, %v), want (false, nil)", ok, err)
	}

	// Resolving it after the checkpoint is not enough: that outcome record
	// would pair with compacted statements on a later recovery.
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 1, GID: 7, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	if ok, err := l.Compact(); err != nil || ok {
		t.Fatalf("outcome past checkpoint: Compact = (%v, %v), want (false, nil)", ok, err)
	}

	// Once a newer checkpoint covers both the statements and the outcome,
	// the head is dead and compaction proceeds.
	appendSpan(t, l, "db")
	if ok, err := l.Compact(); err != nil || !ok {
		t.Fatalf("resolved head: Compact = (%v, %v), want (true, nil)", ok, err)
	}
	recs, torn, err := l.Recover()
	if err != nil || torn {
		t.Fatalf("recover: err=%v torn=%v", err, torn)
	}
	if len(recs) == 0 || recs[0].Type != RecCheckpointBegin {
		t.Fatalf("compacted log does not start at a checkpoint begin")
	}
}

func TestCompactRefusesUncoveredDatabase(t *testing.T) {
	l := New(NewMemStore(), Config{Compact: true}, nil)
	for _, db := range []string{"a", "b"} {
		for _, r := range []Record{
			{Type: RecCreateDB, DB: db},
			{Type: RecBegin, Txn: 1, DB: db},
			{Type: RecStatement, Txn: 1, DB: db, Table: "t", Data: []byte("stmt")},
			{Type: RecCommit, Txn: 1, DB: db},
		} {
			if _, err := l.AppendSync(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The span images only database a; b's history would be lost.
	appendSpan(t, l, "a")
	if ok, err := l.Compact(); err != nil || ok {
		t.Fatalf("uncovered database: Compact = (%v, %v), want (false, nil)", ok, err)
	}

	// A dropped database needs no coverage — there is nothing left to lose.
	if _, err := l.AppendSync(Record{Type: RecDropDB, DB: "b"}); err != nil {
		t.Fatal(err)
	}
	appendSpan(t, l, "a")
	if ok, err := l.Compact(); err != nil || !ok {
		t.Fatalf("dropped database: Compact = (%v, %v), want (true, nil)", ok, err)
	}
}
