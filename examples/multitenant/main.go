// Multitenant: the paper's headline scenario — many small applications,
// each with its own database and SLA, packed onto shared machines by
// First-Fit placement. The example creates a fleet of differently sized
// application databases, shows where their replicas landed, and runs all
// the applications concurrently.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"sdp"
)

func main() {
	p := sdp.New(sdp.Config{ClusterSize: 6})
	p.AddColo("west", "us-west", 12)

	// A social platform's user-generated applications: small databases
	// with modest throughput needs, like the paper's Facebook/Widgets apps.
	apps := []struct {
		name   string
		sizeMB float64
		tps    float64
	}{
		{"poll-widget", 220, 2.0},
		{"guestbook", 250, 1.0},
		{"photo-captions", 600, 3.0},
		{"trivia-game", 300, 4.5},
		{"birthday-cal", 210, 0.5},
		{"movie-quotes", 450, 1.5},
		{"recipe-box", 700, 2.5},
		{"pet-profiles", 330, 1.0},
	}
	for _, a := range apps {
		err := p.CreateDatabase(a.name, sdp.SLA{
			SizeMB:            a.sizeMB,
			MinTPS:            a.tps,
			MaxRejectFraction: 0.001,
		}, "west")
		if err != nil {
			log.Fatalf("create %s: %v", a.name, err)
		}
	}

	// Show the resulting packing: which machines host which replicas.
	west, err := p.System().Colo("west")
	if err != nil {
		log.Fatal(err)
	}
	placement := map[string][]string{}
	for _, cl := range west.Clusters() {
		for _, db := range cl.Databases() {
			reps, _ := cl.Replicas(db)
			for _, m := range reps {
				placement[m] = append(placement[m], db)
			}
		}
	}
	machines := make([]string, 0, len(placement))
	for m := range placement {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	fmt.Println("replica placement (First-Fit, 2 replicas per app):")
	for _, m := range machines {
		sort.Strings(placement[m])
		fmt.Printf("  %-10s %v\n", m, placement[m])
	}
	fmt.Printf("machines in use: %d (free pool remaining: %d)\n\n",
		len(machines), west.FreeMachines())

	// Every application works concurrently, fully isolated from the others.
	var wg sync.WaitGroup
	for i, a := range apps {
		wg.Add(1)
		go func(seed int64, app string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			conn := p.Open(app)
			if _, err := conn.Exec("CREATE TABLE entry (id INT PRIMARY KEY, score INT)"); err != nil {
				log.Fatalf("%s: %v", app, err)
			}
			for j := 0; j < 25; j++ {
				_, err := conn.Exec("INSERT INTO entry VALUES (?, ?)",
					sdp.Int(int64(j)), sdp.Int(int64(rng.Intn(100))))
				if err != nil {
					log.Fatalf("%s: %v", app, err)
				}
			}
		}(int64(i), a.name)
	}
	wg.Wait()

	fmt.Println("per-application summary:")
	for _, a := range apps {
		conn := p.Open(a.name)
		res, err := conn.Query("SELECT COUNT(*), AVG(score) FROM entry")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s rows=%d avg_score=%.1f\n",
			a.name, res.Rows[0][0].Int, res.Rows[0][1].Float)
	}
}
