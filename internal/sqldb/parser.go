package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks   []token
	pos    int
	src    string
	params int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek())
	}
	return nil
}

// expectIdent consumes an identifier (also accepting non-reserved use of
// keywords like KEY as names is intentionally not supported).
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %q", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement keyword, found %q", t)
	}
	switch t.text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.advance()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: inner}, nil
	case "BEGIN":
		p.advance()
		return &BeginStmt{}, nil
	case "COMMIT":
		p.advance()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.advance()
		return &RollbackStmt{}, nil
	default:
		return nil, p.errorf("unsupported statement %q", t)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	if p.acceptKeyword("INDEX") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Col: col, Unique: unique}, nil
	}
	if unique {
		return nil, p.errorf("expected INDEX after UNIQUE")
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifNot := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifNot = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: name, IfNotExists: ifNot}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var def ColumnDef
	name, err := p.expectIdent()
	if err != nil {
		return def, err
	}
	def.Name = name
	t := p.peek()
	if t.kind != tokKeyword {
		return def, p.errorf("expected column type, found %q", t)
	}
	switch t.text {
	case "INT", "INTEGER":
		def.Typ = TypeInt
	case "FLOAT", "DOUBLE":
		def.Typ = TypeFloat
	case "TEXT":
		def.Typ = TypeText
	case "VARCHAR", "CHAR":
		def.Typ = TypeText
		p.advance()
		// Optional length: VARCHAR(40).
		if p.acceptSymbol("(") {
			if p.peek().kind != tokInt {
				return def, p.errorf("expected length in type, found %q", p.peek())
			}
			p.advance()
			if err := p.expectSymbol(")"); err != nil {
				return def, err
			}
		}
		return p.parseColumnFlags(def)
	case "BOOL", "BOOLEAN":
		def.Typ = TypeBool
	default:
		return def, p.errorf("unsupported column type %q", t)
	}
	p.advance()
	return p.parseColumnFlags(def)
}

func (p *parser) parseColumnFlags(def ColumnDef) (ColumnDef, error) {
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return def, err
			}
			def.PrimaryKey = true
			def.NotNull = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return def, err
			}
			def.NotNull = true
		case p.acceptKeyword("UNIQUE"):
			def.Unique = true
		default:
			return def, nil
		}
	}
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ifExists := false
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name, IfExists: ifExists}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Col: col, Expr: e})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.advance() // SELECT
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if !p.acceptKeyword("FROM") {
		// SELECT without FROM (e.g. SELECT 1) — allowed for probes.
		return stmt, nil
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		left := false
		switch {
		case p.acceptKeyword("JOIN"):
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.acceptKeyword("LEFT"):
			left = true
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		default:
			goto afterJoins
		}
		{
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, JoinClause{Left: left, Table: ref, On: on})
		}
	}
afterJoins:
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
		if p.acceptKeyword("OFFSET") {
			off, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			stmt.Offset = off
		}
	}
	return stmt, nil
}

func (p *parser) expectInt() (int, error) {
	t := p.peek()
	if t.kind != tokInt {
		return 0, p.errorf("expected integer, found %q", t)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" or "alias.*"
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if p.peek().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		tbl := p.advance().text
		p.advance() // .
		p.advance() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//   expr      := orExpr
//   orExpr    := andExpr (OR andExpr)*
//   andExpr   := notExpr (AND notExpr)*
//   notExpr   := NOT notExpr | predicate
//   predicate := addExpr ((=|<>|!=|<|<=|>|>=) addExpr
//              | [NOT] IN (list) | [NOT] BETWEEN a AND b
//              | [NOT] LIKE pat | IS [NOT] NULL)?
//   addExpr   := mulExpr ((+|-) mulExpr)*
//   mulExpr   := unary ((*|/) unary)*
//   unary     := - unary | primary
//   primary   := literal | ? | agg(...) | ident[.ident] | ( expr )

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "IN" || p.toks[p.pos+1].text == "BETWEEN" || p.toks[p.pos+1].text == "LIKE") {
		p.advance()
		negate = true
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Negate: negate}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: pat, Negate: negate}, nil
	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negate: neg}, nil
	}
	if negate {
		return nil, p.errorf("dangling NOT")
	}
	var op BinOp
	switch {
	case p.acceptSymbol("="):
		op = OpEq
	case p.acceptSymbol("<>"), p.acceptSymbol("!="):
		op = OpNe
	case p.acceptSymbol("<="):
		op = OpLe
	case p.acceptSymbol("<"):
		op = OpLt
	case p.acceptSymbol(">="):
		op = OpGe
	case p.acceptSymbol(">"):
		op = OpGt
	default:
		return l, nil
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.acceptSymbol("+"):
			op = OpAdd
		case p.acceptSymbol("-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.acceptSymbol("*"):
			op = OpMul
		case p.acceptSymbol("/"):
			op = OpDiv
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, E: e}, nil
	}
	return p.parsePrimary()
}

var aggFns = map[string]AggFn{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.text)
		}
		return &LiteralExpr{Val: NewInt(n)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q", t.text)
		}
		return &LiteralExpr{Val: NewFloat(f)}, nil
	case tokString:
		p.advance()
		return &LiteralExpr{Val: NewText(t.text)}, nil
	case tokParam:
		p.advance()
		idx := p.params
		p.params++
		return &ParamExpr{Index: idx}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &LiteralExpr{Val: Null}, nil
		case "TRUE":
			p.advance()
			return &LiteralExpr{Val: NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &LiteralExpr{Val: NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			agg := &AggExpr{Fn: aggFns[t.text]}
			if t.text == "COUNT" && p.acceptSymbol("*") {
				agg.Star = true
			} else {
				agg.Distinct = p.acceptKeyword("DISTINCT")
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				agg.E = e
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t)
	case tokIdent:
		p.advance()
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnExpr{Table: t.text, Col: col}, nil
		}
		return &ColumnExpr{Col: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over the pattern; patterns here are short.
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || !equalFoldByte(s[0], p[0]) {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func equalFoldByte(a, b byte) bool {
	return a == b || strings.EqualFold(string(a), string(b))
}
