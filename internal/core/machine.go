package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/wal"
)

// Machine is one database machine of the cluster: a commodity box running a
// single-node DBMS instance. The cluster controller is the only client of
// its engine.
type Machine struct {
	id string

	// engine is swapped atomically on restart: a failure destroys the
	// in-memory instance, and recovery rebuilds a fresh one from the
	// machine's write-ahead log.
	engine atomic.Pointer[sqldb.Engine]

	// walStore is the machine's durable log device (nil when the cluster
	// runs without WAL). It survives engine failures; walCfg/walMetrics and
	// the engine construction inputs are kept so Restart can rebuild.
	walStore   wal.Store
	walCfg     wal.Config
	walMetrics *wal.Metrics
	engCfg     sqldb.Config
	rec        sqldb.Recorder

	mu       sync.Mutex
	failed   bool
	capacity sla.Resources
	hasCap   bool
	used     sla.Resources

	// marks records, per database this machine hosted when it failed, the
	// cluster's per-table write sequence numbers at the moment of failure
	// (plus the database's epoch, so a dropped-and-recreated namespace is
	// never mistaken for the one the machine knew). After a restart the
	// delta between these marks and the current sequence numbers is exactly
	// the set of tables the fast recovery path must copy.
	marks map[string]dbMarks

	// dbCount tracks how many databases are hosted here, for the cluster's
	// internal least-loaded placement.
	dbCount atomic.Int32
}

// dbMarks is the failure-time snapshot for one database.
type dbMarks struct {
	epoch  uint64
	tables map[string]uint64
}

// newMachine creates a machine with a fresh engine. When walCfg is non-nil
// the engine writes a WAL to an in-memory simulated disk that survives
// machine failures, enabling Restart.
func newMachine(id string, cfg sqldb.Config, rec sqldb.Recorder, walCfg *wal.Config, walMetrics *wal.Metrics) *Machine {
	m := &Machine{id: id, engCfg: cfg, rec: rec, walMetrics: walMetrics}
	if walCfg != nil {
		m.walCfg = *walCfg
		m.walStore = wal.NewMemStore()
	}
	m.engine.Store(m.newEngine())
	return m
}

// newEngine builds a fresh engine wired to the machine's recorder and (when
// configured) a log over the machine's durable store.
func (m *Machine) newEngine() *sqldb.Engine {
	e := sqldb.NewEngine(m.engCfg)
	if m.rec != nil {
		e.SetRecorder(m.rec)
	}
	if m.walStore != nil {
		e.AttachWAL(wal.New(m.walStore, m.walCfg, m.walMetrics))
		e.SetWALMetrics(m.walMetrics)
	}
	return e
}

// ID returns the machine's identifier.
func (m *Machine) ID() string { return m.id }

// Engine exposes the machine's DBMS instance (statistics, experiments).
// Restart replaces the instance, so callers must not cache it across a
// failure.
func (m *Machine) Engine() *sqldb.Engine { return m.engine.Load() }

// Failed reports whether the machine has failed.
func (m *Machine) Failed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// fail marks the machine as failed and closes its engine, modelling a
// power or disk failure: all in-memory state is lost, and any log bytes not
// yet flushed are lost with it. The durable log prefix survives for Restart.
// The dying engine's log is sealed before the unsynced tail is truncated:
// a statement, commit, or background 2PC resolver still executing against
// the dead engine must not reach the store after the crash point, or its
// frame — positioned by the stale pre-crash log size — would corrupt the
// surviving log and make the next recovery truncate durable history (see
// wal.Log.Seal).
func (m *Machine) fail() {
	m.mu.Lock()
	m.failed = true
	m.mu.Unlock()
	eng := m.Engine()
	eng.Close()
	if w := eng.WAL(); w != nil {
		w.Seal()
	}
	if cr, ok := m.walStore.(wal.Crasher); ok {
		cr.Crash(0)
	}
}

// Restart brings a failed machine back: a fresh engine is built over the
// machine's surviving log and recovered from it (checkpoint restore plus
// log replay). The machine rejoins the cluster as live, but its databases
// do not serve traffic until the controller catches them up and re-adds
// them to the replica sets (see Cluster.RestartMachine).
func (m *Machine) Restart() (*sqldb.RecoveryStats, error) {
	m.mu.Lock()
	if !m.failed {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: machine %s has not failed", m.id)
	}
	m.mu.Unlock()
	if m.walStore == nil {
		return nil, fmt.Errorf("core: machine %s has no durable log to restart from", m.id)
	}
	e := m.newEngine()
	stats, err := e.Recover()
	if err != nil {
		return nil, fmt.Errorf("core: restart %s: %w", m.id, err)
	}
	m.engine.Store(e)
	m.dbCount.Store(int32(len(e.Databases())))
	m.mu.Lock()
	m.failed = false
	m.mu.Unlock()
	return stats, nil
}

// setMarks snapshots a database's write sequence numbers at failure time.
func (m *Machine) setMarks(db string, epoch uint64, seqs map[string]uint64) {
	cp := make(map[string]uint64, len(seqs))
	for k, v := range seqs {
		cp[k] = v
	}
	m.mu.Lock()
	if m.marks == nil {
		m.marks = make(map[string]dbMarks)
	}
	m.marks[db] = dbMarks{epoch: epoch, tables: cp}
	m.mu.Unlock()
}

// hasMarks reports whether the machine holds a failure-time snapshot for db.
func (m *Machine) hasMarks(db string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.marks[db]
	return ok
}

// takeMarks consumes the failure-time snapshot for db.
func (m *Machine) takeMarks(db string) (map[string]uint64, uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dm, ok := m.marks[db]
	if !ok {
		return nil, 0, false
	}
	delete(m.marks, db)
	return dm.tables, dm.epoch, true
}

// dirtyMarks removes tables from a database's snapshot, forcing them into
// the fast recovery path's delta-copy set (used for tables touched by
// in-doubt transactions, whose local effects were presumed aborted).
func (m *Machine) dirtyMarks(db string, tables []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dm, ok := m.marks[db]
	if !ok {
		return
	}
	for _, t := range tables {
		delete(dm.tables, lowerName(t))
	}
}

// clearMarks discards the snapshot for db.
func (m *Machine) clearMarks(db string) {
	m.mu.Lock()
	delete(m.marks, db)
	m.mu.Unlock()
}
