package core

import (
	"errors"
	"fmt"
	"time"

	"sdp/internal/netsim"
	"sdp/internal/obs"
	"sdp/internal/sqldb"
)

// opResult is the outcome of one operation executed on a replica.
type opResult struct {
	res *sqldb.Result
	err error
}

// future resolves to the result of an asynchronously executed operation.
// It is safe for any number of goroutines to wait on it.
type future struct {
	done chan struct{}
	res  opResult
}

func newFuture() *future { return &future{done: make(chan struct{})} }

// complete resolves the future. It must be called exactly once.
func (f *future) complete(r opResult) {
	f.res = r
	close(f.done)
}

// wait blocks until the operation finishes and returns its outcome. It may
// be called repeatedly and concurrently.
func (f *future) wait() opResult {
	<-f.done
	return f.res
}

// poll returns the outcome if the operation has finished.
func (f *future) poll() (opResult, bool) {
	select {
	case <-f.done:
		return f.res, true
	default:
		return opResult{}, false
	}
}

// waitTimeout blocks until the operation finishes or d elapses, reporting
// whether an outcome arrived in time. A non-positive d waits forever — the
// no-network configuration, where an in-process call cannot stall.
func (f *future) waitTimeout(d time.Duration) (opResult, bool) {
	if d <= 0 {
		return f.wait(), true
	}
	select {
	case <-f.done:
		return f.res, true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.done:
		return f.res, true
	case <-t.C:
		return opResult{}, false
	}
}

// waitAny blocks until one of the futures resolves and returns its outcome —
// the aggressive controller's "return as soon as one machine answers".
func waitAny(futs []*future) opResult {
	if len(futs) == 1 {
		return futs[0].wait()
	}
	ch := make(chan opResult, len(futs))
	for _, f := range futs {
		go func(f *future) { ch <- f.wait() }(f)
	}
	return <-ch
}

// replicaSession is the controller's connection to one machine on behalf of
// one distributed transaction. Operations enqueue onto a FIFO queue drained
// by a dedicated goroutine, exactly like statements written down one JDBC
// connection: per-machine order is preserved, but machines run independently
// of each other — the property that makes the aggressive controller's
// anomaly (Table 1) possible. When the cluster runs with a simulated
// network, every operation crosses the session's controller→machine link
// inside the queue worker, so injected latency delays subsequent operations
// on the same machine exactly as a slow connection would.
type replicaSession struct {
	c       *Cluster
	machine *Machine
	txn     *sqldb.Txn
	link    *netsim.Link // nil without a simulated network
	ops     chan func()
	closed  chan struct{}
}

// newReplicaSession begins a transaction branch on the machine (across the
// controller's link to it, when a network is simulated) and starts the
// session's queue worker.
func newReplicaSession(c *Cluster, m *Machine, db string, globalID uint64) (*replicaSession, error) {
	if m.Failed() {
		return nil, ErrMachineFailed
	}
	link := c.opts.Network.Link(c.endpoint, m.ID())
	var txn *sqldb.Txn
	err := callLink(link, "begin", false, func() error {
		var berr error
		txn, berr = m.Engine().BeginWithID(db, globalID)
		return berr
	})
	if err != nil {
		if txn != nil {
			// Reply lost after the branch began: roll the orphan back so a
			// begin the controller never learned of cannot hold locks.
			_ = txn.Rollback()
		}
		if errors.Is(err, sqldb.ErrNoTable) {
			// The route said this machine hosts the database but its engine
			// disagrees: an aborted replica copy dropped its half-copied
			// destination between routing and begin. Retryable, not a
			// schema error.
			return nil, fmt.Errorf("%w: %s has no %s (%v)", ErrStaleRoute, m.ID(), db, err)
		}
		return nil, err
	}
	s := &replicaSession{
		c:       c,
		machine: m,
		txn:     txn,
		link:    link,
		ops:     make(chan func(), 64),
		closed:  make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// callLink delivers fn across link, or runs it directly on a nil link.
func callLink(link *netsim.Link, op string, idempotent bool, fn func() error) error {
	if link == nil {
		return fn()
	}
	return link.Call(op, idempotent, fn)
}

// call delivers fn across the session's link with bounded
// exponential-backoff retries. Idempotent operations (PREPARE, COMMIT,
// ROLLBACK — all safe to re-deliver, see their engine-side no-op behaviour
// on repeated application) retry on any transient network fault;
// non-idempotent operations (statement execution) retry only when the
// request provably never executed (a dropped request or a partitioned
// link), never on a lost reply, whose outcome is ambiguous.
func (s *replicaSession) call(op string, idempotent bool, fn func() error) error {
	if s.link == nil {
		return fn()
	}
	backoff := s.c.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		err = s.link.Call(op, idempotent, fn)
		if err == nil || !netsim.IsTransient(err) {
			return err
		}
		if !idempotent && netsim.Executed(err) {
			return err
		}
		if attempt >= s.c.opts.RetryLimit {
			return err
		}
		if s.machine.Failed() {
			return ErrMachineFailed
		}
		s.c.metrics.netRetry.With(op).Inc()
		time.Sleep(backoff)
		backoff *= 2
	}
}

func (s *replicaSession) run() {
	defer close(s.closed)
	for f := range s.ops {
		f()
	}
}

// enqueue schedules fn on the session's queue and returns a future for its
// result. fn runs after every previously enqueued operation on this machine.
func (s *replicaSession) enqueue(fn func() opResult) *future {
	fut := newFuture()
	s.ops <- func() { fut.complete(s.guard(fn)) }
	return fut
}

// guard fails fast when the machine has died instead of touching its engine.
func (s *replicaSession) guard(fn func() opResult) opResult {
	if s.machine.Failed() {
		return opResult{err: ErrMachineFailed}
	}
	return fn()
}

// setTrace enqueues a trace-context update for the branch. Routing it
// through the queue keeps the sqldb transaction single-goroutine (only the
// session worker touches it) and orders the update behind any operations
// already in flight, so the context applies exactly to the statements
// enqueued after it.
func (s *replicaSession) setTrace(tc obs.SpanContext) {
	s.ops <- func() { s.txn.SetTraceContext(tc) }
}

// execStmt enqueues a statement execution.
func (s *replicaSession) execStmt(stmt sqldb.Statement, params []sqldb.Value) *future {
	return s.enqueue(func() opResult {
		var res *sqldb.Result
		err := s.call("exec", false, func() error {
			var xerr error
			res, xerr = s.txn.ExecStmt(stmt, params...)
			return xerr
		})
		return opResult{res: res, err: err}
	})
}

// prepare enqueues the PREPARE action of 2PC. It runs after all previously
// enqueued operations on this machine (FIFO), but independently of the
// transaction's pending operations on other machines. PREPARE is
// idempotent at the engine (a prepared transaction re-prepares as a no-op),
// so lost votes are retried.
func (s *replicaSession) prepare() *future {
	return s.enqueue(func() opResult {
		return opResult{err: s.call("prepare", true, s.txn.Prepare)}
	})
}

// commitPrepared enqueues the COMMIT action of 2PC. Idempotent: a second
// delivery finds the transaction committed and returns ErrTxnDone, which
// is normalised to success here so duplicated deliveries are transparent.
func (s *replicaSession) commitPrepared() *future {
	return s.enqueue(func() opResult {
		return opResult{err: alreadyDone(s.call("commit", true, s.txn.CommitPrepared))}
	})
}

// commit enqueues a one-phase commit (read-only branches).
func (s *replicaSession) commit() *future {
	return s.enqueue(func() opResult {
		return opResult{err: alreadyDone(s.call("commit1p", true, s.txn.Commit))}
	})
}

// alreadyDone maps the engine's "transaction already committed" answer to
// success: it is the expected result of re-delivering a commit.
func alreadyDone(err error) error {
	if errors.Is(err, sqldb.ErrTxnDone) {
		return nil
	}
	return err
}

// rollback enqueues a rollback. Idempotent: rolling back an aborted
// transaction is a no-op.
func (s *replicaSession) rollback() *future {
	return s.enqueue(func() opResult {
		return opResult{err: s.call("rollback", true, s.txn.Rollback)}
	})
}

// close shuts the queue down after all enqueued work drains.
func (s *replicaSession) close() {
	close(s.ops)
	<-s.closed
}
