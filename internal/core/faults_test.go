package core

import (
	"errors"
	"testing"
	"time"

	"sdp/internal/netsim"
	"sdp/internal/sqldb"
)

// netOpts builds cluster options with a seeded simulated network and fast
// failure handling (tight deadline and backoff so tests stay quick).
func netOpts(seed int64) (Options, *netsim.Network) {
	n := netsim.New(seed, nil)
	return Options{
		Replicas:     2,
		Network:      n,
		CallTimeout:  50 * time.Millisecond,
		RetryLimit:   8,
		RetryBackoff: 100 * time.Microsecond,
	}, n
}

// TestFaultFreeNetworkIsTransparent checks that interposing a perfect
// simulated network changes nothing observable.
func TestFaultFreeNetworkIsTransparent(t *testing.T) {
	opts, _ := netOpts(1)
	c := newTestCluster(t, 2, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 10)")
	res := clusterExec(t, c, "SELECT n FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 10 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if got := c.Stats().Aborted; got != 0 {
		t.Fatalf("aborted = %d, want 0", got)
	}
}

// TestRetriesMaskLossyLinks runs write transactions over links that drop
// requests and lose replies; the controller's bounded retries plus
// client-level retry of cleanly aborted transactions must land every
// transaction exactly once on both replicas.
func TestRetriesMaskLossyLinks(t *testing.T) {
	opts, n := netOpts(42)
	c := newTestCluster(t, 2, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")

	n.SetDefaults(netsim.Faults{DropProb: 0.15, ReplyLossProb: 0.1, DupProb: 0.2})
	const rows = 30
	for i := 1; i <= rows; i++ {
		committed := false
		for attempt := 0; attempt < 50 && !committed; attempt++ {
			tx, err := c.Begin("app")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Exec("INSERT INTO t VALUES (?, ?)", intv(int64(i)), intv(int64(i))); err != nil {
				if IsRetryable(err) {
					continue // Exec aborted the transaction
				}
				t.Fatalf("insert %d: %v", i, err)
			}
			err = tx.Commit()
			switch {
			case err == nil:
				committed = true
			case errors.Is(err, sqldb.ErrDuplicateKey):
				// A lost COMMIT reply can leave the client unsure; the row
				// landing proves the earlier attempt committed.
				committed = true
			case IsRetryable(err):
			default:
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		if !committed {
			t.Fatalf("row %d never committed", i)
		}
	}
	n.Quiesce()
	c.DrainResolvers()

	// Both replicas converged on exactly `rows` rows.
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		if got := tableCount(t, m, "app", "t"); got != rows {
			t.Errorf("%s: %d rows, want %d", id, got, rows)
		}
		if locks := m.Engine().Stats().LocksHeld; locks != 0 {
			t.Errorf("%s: %d locks held after quiesce, want 0", id, locks)
		}
	}
	if got := c.metrics.netRetry.With("prepare").Value() +
		c.metrics.netRetry.With("commit").Value() +
		c.metrics.netRetry.With("exec").Value(); got == 0 {
		t.Error("no retries recorded under 15% drop rate")
	}
}

// TestPrepareTimeoutPresumedAbort delays one participant's link past the
// coordinator's vote deadline: the transaction must abort by presumed
// abort, release every lock, and leave no trace of its writes.
func TestPrepareTimeoutPresumedAbort(t *testing.T) {
	opts, n := netOpts(7)
	c := newTestCluster(t, 2, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")

	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	// Slow the controller's link to every replica after the writes landed,
	// so the PREPARE deliveries (not the inserts) blow the 50ms deadline.
	for _, id := range c.MachineIDs() {
		n.SetFaults(c.Endpoint(), id, netsim.Faults{Latency: 250 * time.Millisecond})
	}
	err = tx.Commit()
	if !errors.Is(err, ErrPrepareTimeout) {
		t.Fatalf("commit error = %v, want ErrPrepareTimeout", err)
	}
	if !IsRetryable(err) {
		t.Fatal("presumed-abort error should be retryable")
	}
	n.Quiesce()
	c.DrainResolvers()

	if got := c.metrics.twopcTimeout.With("prepare").Value(); got == 0 {
		t.Error("twopc_timeout_total{phase=prepare} = 0")
	}
	if got := c.metrics.presumedAbort.Value(); got != 1 {
		t.Errorf("presumed aborts = %d, want 1", got)
	}
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		if locks := m.Engine().Stats().LocksHeld; locks != 0 {
			t.Errorf("%s: %d locks held after presumed abort", id, locks)
		}
		if got := tableCount(t, m, "app", "t"); got != 0 {
			t.Errorf("%s: aborted insert visible (%d rows)", id, got)
		}
	}
	// The cluster serves normally once the links recover.
	clusterExec(t, c, "INSERT INTO t VALUES (2, 2)")
}

// TestCommitDeliveryLostBackgroundResolution loses every COMMIT reply on one
// participant's link: the coordinator's decision stands (commit), the
// participant's prepared branch is handed to a background resolver, and once
// the fault clears the branch commits — no lock leaks, replicas identical.
func TestCommitDeliveryLostBackgroundResolution(t *testing.T) {
	opts, n := netOpts(11)
	opts.RetryLimit = 2 // exhaust in-band retries quickly
	c := newTestCluster(t, 2, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")

	reps, err := c.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	victim := reps[1]

	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	// After the victim's PREPARE executes (vote delivered), start losing all
	// replies on the controller→victim link: the COMMIT decision executes
	// but the coordinator can never observe it in-band.
	n.OnDeliver(func(ci netsim.CallInfo) {
		if ci.Op == "prepare" && ci.To == victim {
			n.SetFaults(c.Endpoint(), victim, netsim.Faults{ReplyLossProb: 1})
		}
	})
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err) // the decision was commit; Commit succeeds
	}
	if got := c.metrics.twopcTimeout.With("commit").Value(); got == 0 {
		t.Fatal("twopc_timeout_total{phase=commit} = 0, want >= 1")
	}

	n.Quiesce()
	c.DrainResolvers()
	if got := c.metrics.bgResolved.With("delivered").Value(); got == 0 {
		t.Error("background resolver delivered nothing")
	}
	for _, id := range reps {
		m, _ := c.Machine(id)
		if got := tableCount(t, m, "app", "t"); got != 1 {
			t.Errorf("%s: %d rows, want 1", id, got)
		}
		if locks := m.Engine().Stats().LocksHeld; locks != 0 {
			t.Errorf("%s: %d locks held, want 0", id, locks)
		}
	}
}

// TestParticipantCrashBetweenPrepareAndCommit crashes a participant in the
// exact window after it acked PREPARE and before the coordinator's COMMIT
// arrives (via a netsim delivery hook). The surviving replica commits; the
// crashed machine restarts with an in-doubt branch that presumed abort
// resolves, recovery catches its tables up, and no locks leak anywhere.
func TestParticipantCrashBetweenPrepareAndCommit(t *testing.T) {
	opts, n := netOpts(13)
	opts.WAL = walOpts().WAL
	c := newTestCluster(t, 2, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 1)")

	reps, err := c.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	victim := reps[1]
	n.OnDeliver(func(ci netsim.CallInfo) {
		if ci.Op == "prepare" && ci.To == victim {
			// Crash-at-phase: the participant prepared (forced to its log)
			// and acked, but dies before COMMIT reaches it.
			if _, ferr := c.FailMachine(victim); ferr != nil {
				t.Errorf("FailMachine: %v", ferr)
			}
		}
	})

	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (2, 2)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err) // decision reached; survivor commits
	}
	n.ClearHooks()

	survivor, _ := c.Machine(reps[0])
	if got := tableCount(t, survivor, "app", "t"); got != 2 {
		t.Fatalf("survivor rows = %d, want 2", got)
	}

	// Restart: the in-doubt branch must surface and resolve by presumed
	// abort, then delta catch-up repairs the table from the survivor.
	stats, err := c.RestartMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if stats.InDoubt == 0 {
		t.Fatal("restart found no in-doubt transaction; crash missed the 2PC window")
	}
	report := c.RecoverDatabases([]string{"app"}, 1)
	if len(report.Failed) != 0 {
		t.Fatalf("recovery failures: %v", report.Failed)
	}
	c.DrainResolvers()

	vm, _ := c.Machine(victim)
	for _, m := range []*Machine{survivor, vm} {
		if got := tableCount(t, m, "app", "t"); got != 2 {
			t.Errorf("%s rows = %d, want 2", m.ID(), got)
		}
		if locks := m.Engine().Stats().LocksHeld; locks != 0 {
			t.Errorf("%s: %d locks held after recovery, want 0", m.ID(), locks)
		}
	}
}

// TestReadDegradationRoutesAroundPartition partitions the controller's link
// to the read home of an Option 1 database: reads must degrade to the other
// replica (counted), keep the home assignment, and return to the home once
// the partition heals.
func TestReadDegradationRoutesAroundPartition(t *testing.T) {
	opts, n := netOpts(3)
	opts.ReadOption = ReadOption1
	c := newTestCluster(t, 2, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 42)")

	c.mu.Lock()
	home := c.dbs["app"].readHome
	c.mu.Unlock()

	n.Partition(c.Endpoint(), home)
	if h := c.Health(); h.DegradedLinks != 1 {
		t.Fatalf("DegradedLinks = %d, want 1", h.DegradedLinks)
	}
	for i := 0; i < 5; i++ {
		res := clusterExec(t, c, "SELECT n FROM t WHERE id = 1")
		if res.Rows[0][0].Int != 42 {
			t.Fatalf("degraded read %d: %v", i, res.Rows)
		}
	}
	if got := c.metrics.readDegraded.Value(); got != 5 {
		t.Errorf("degraded reads = %d, want 5", got)
	}

	n.Heal(c.Endpoint(), home)
	if h := c.Health(); h.DegradedLinks != 0 {
		t.Fatalf("DegradedLinks after heal = %d, want 0", h.DegradedLinks)
	}
	clusterExec(t, c, "SELECT n FROM t WHERE id = 1")
	c.mu.Lock()
	stillHome := c.dbs["app"].readHome
	c.mu.Unlock()
	if stillHome != home {
		t.Errorf("read home reassigned to %s during partition, want %s kept", stillHome, home)
	}
	if got := c.metrics.readDegraded.Value(); got != 5 {
		t.Errorf("healed read still counted degraded (total %d)", got)
	}
}

// TestAllReplicasUnreachable partitions every controller→replica link: reads
// must fail with ErrUnreachable (retryable) rather than hang or panic, and
// service must resume after healing.
func TestAllReplicasUnreachable(t *testing.T) {
	opts, n := netOpts(5)
	c := newTestCluster(t, 2, opts)
	clusterExec(t, c, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "INSERT INTO t VALUES (1, 1)")

	for _, id := range c.MachineIDs() {
		n.Partition(c.Endpoint(), id)
	}
	_, err := c.Exec("app", "SELECT n FROM t WHERE id = 1")
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("read error = %v, want ErrUnreachable", err)
	}
	if !IsRetryable(err) {
		t.Fatal("ErrUnreachable should be retryable")
	}
	n.HealAll()
	clusterExec(t, c, "SELECT n FROM t WHERE id = 1")
}

// TestCopyAbortedWhenTargetFails starts an Algorithm 1 copy whose target is
// failed mid-copy: CreateReplica must abort (not register a half-copied
// replica), and the replica set must stay clean.
func TestCopyAbortedWhenTargetFails(t *testing.T) {
	opts, n := netOpts(9)
	c := newTestCluster(t, 3, opts)
	clusterExec(t, c, "CREATE TABLE a (id INT PRIMARY KEY, n INT)")
	clusterExec(t, c, "CREATE TABLE b (id INT PRIMARY KEY, n INT)")
	for i := 1; i <= 50; i++ {
		clusterExec(t, c, "INSERT INTO a VALUES (?, ?)", intv(int64(i)), intv(int64(i)))
		clusterExec(t, c, "INSERT INTO b VALUES (?, ?)", intv(int64(i)), intv(int64(i)))
	}
	reps, err := c.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, id := range c.MachineIDs() {
		if !contains(reps, id) {
			target = id
		}
	}

	// Fail the target the moment the first table lands on it.
	n.OnDeliver(func(ci netsim.CallInfo) {
		if ci.Op == "copy_apply" && ci.To == target {
			tm, _ := c.Machine(target)
			if !tm.Failed() {
				if _, ferr := c.FailMachine(target); ferr != nil {
					t.Errorf("FailMachine: %v", ferr)
				}
			}
		}
	})
	err = c.CreateReplica("app", target)
	if err == nil {
		t.Fatal("CreateReplica succeeded with a failed target")
	}
	n.ClearHooks()

	after, err := c.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	if contains(after, target) {
		t.Fatalf("failed target %s registered as replica: %v", target, after)
	}
	if len(after) != 2 {
		t.Fatalf("replicas after aborted copy = %v", after)
	}
	// Writes flow again (no stale in-flight rejection).
	clusterExec(t, c, "INSERT INTO a VALUES (51, 51)")
}
