package sdp

import (
	"errors"
	"strings"
	"testing"

	"sdp/internal/wire"
)

// newWirePlatform boots a one-colo platform with a wire server, a token-
// protected database "app", and a seeded table.
func newWirePlatform(t *testing.T) (*Platform, *wire.Server) {
	t.Helper()
	p := New(Config{ClusterSize: 4, Listen: "127.0.0.1:0"})
	p.AddColo("dc1", "west", 4)
	if err := p.CreateDatabase("app", SLA{SizeMB: 50, MinTPS: 1, MaxRejectFraction: 1}, "dc1"); err != nil {
		t.Fatal(err)
	}
	p.SetToken("app", "s3cret")
	conn := p.Open("app")
	if _, err := conn.Exec("CREATE TABLE users (id INT PRIMARY KEY, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO users VALUES (1, 'ada')"); err != nil {
		t.Fatal(err)
	}
	srv, err := p.ServeWire()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return p, srv
}

// TestWireSmoke is the tier-1 smoke test of the client/server split: start
// a server, connect, run one prepared point read, and confirm the network
// hop stays on the compiled executor.
func TestWireSmoke(t *testing.T) {
	_, srv := newWirePlatform(t)

	client, err := wire.Dial(wire.ClientConfig{Addr: srv.Addr(), Database: "app", Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	stmt, err := client.Prepare("SELECT name FROM users WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec(Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "ada" {
		t.Fatalf("prepared point read: got %+v", res.Rows)
	}

	// The prepared statement must run compiled on the engine even when it
	// arrives over the network (no re-parse on the hot path).
	ex, err := client.Query("EXPLAIN SELECT name FROM users WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, row := range ex.Rows {
		for _, v := range row {
			if strings.Contains(v.String(), "exec=compiled") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("EXPLAIN over the wire does not show exec=compiled: %+v", ex.Rows)
	}

	// Transactions over the wire reach the same replicated engines.
	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO users VALUES (2, 'grace')"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = client.Query("SELECT name FROM users WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "grace" {
		t.Fatalf("wire transaction lost: %+v", res.Rows)
	}
}

// TestWireAuthPerTenant checks the platform's token table: right token in,
// wrong token out, unknown database out.
func TestWireAuthPerTenant(t *testing.T) {
	p, srv := newWirePlatform(t)

	var we *wire.Error
	_, err := wire.Dial(wire.ClientConfig{Addr: srv.Addr(), Database: "app", Token: "nope"})
	if !errors.As(err, &we) || we.Code != wire.ErrCodeAuth {
		t.Fatalf("wrong token: got %v, want auth error", err)
	}
	if !strings.Contains(we.Msg, ErrBadToken.Error()) {
		t.Fatalf("auth error should carry the ErrBadToken message, got %q", we.Msg)
	}

	if _, err := wire.Dial(wire.ClientConfig{Addr: srv.Addr(), Database: "ghost", Token: "s3cret"}); err == nil {
		t.Fatal("unknown database must not authenticate")
	}

	// A database without a registered token accepts any token.
	if err := p.CreateDatabase("open", SLA{SizeMB: 50, MinTPS: 1, MaxRejectFraction: 1}, "dc1"); err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(wire.ClientConfig{Addr: srv.Addr(), Database: "open", Token: "anything"})
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
}

// TestPlatformPreparedStatements covers the in-process Conn.Prepare/Stmt
// and Tx.ExecPrepared paths added alongside the wire protocol.
func TestPlatformPreparedStatements(t *testing.T) {
	p, _ := newWirePlatform(t)
	conn := p.Open("app")

	stmt, err := conn.Prepare("SELECT name FROM users WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec(Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "ada" {
		t.Fatalf("got %+v", res.Rows)
	}

	ins, err := conn.Prepare("INSERT INTO users VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := conn.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecPrepared(ins, Int(10), Text("lin")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = stmt.Exec(Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "lin" {
		t.Fatalf("prepared insert lost: %+v", res.Rows)
	}
}
