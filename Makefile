GO ?= go

.PHONY: all build test race vet doc-check obs-dump bench bench-sqldb experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with lock-sensitive hot paths: the
# query engine (plan cache, striped buffer pool, lock manager) and the
# cluster controller (2PC, replica management).
race:
	$(GO) test -race ./internal/sqldb/... ./internal/core/...

# vet also smoke-tests the wait-free metrics instruments under the race
# detector — the obs package is the foundation every layer reports into.
vet:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/

# Verify every exported identifier in the controller packages carries a doc
# comment (see OBSERVABILITY.md and the package docs citing paper sections).
doc-check:
	$(GO) run ./cmd/doccheck ./internal/core ./internal/system ./internal/obs

# Dump the unified observability snapshot after a representative run: a
# TPC-W mix with an Algorithm 1 replica copy started mid-run.
obs-dump:
	$(GO) run ./cmd/experiments -metrics -quick

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Regenerate BENCH_sqldb.json (hot-path query-engine latencies) and the
# accompanying BENCH_sqldb.metrics.txt snapshot.
bench-sqldb:
	$(GO) run ./cmd/experiments -bench-sqldb

experiments:
	$(GO) run ./cmd/experiments -quick

clean:
	$(GO) clean ./...
