// Package sdp is a scalable data platform for a large number of small
// applications — a from-scratch reproduction of Yang, Shanmugasundaram and
// Yerneni (CIDR 2009). It gives each application the illusion of a
// centralized, fault-tolerant SQL database with full transactions, while
// hosting tens of thousands of such databases on shared commodity machines:
//
//   - every machine runs an embedded single-node SQL DBMS (internal/sqldb),
//   - a cluster controller replicates each database over two or more
//     machines with read-one-write-all + two-phase commit, recovers from
//     machine failures by online re-replication, and enforces SLAs by
//     First-Fit placement (internal/core, internal/sla),
//   - colo and system controllers route connections and asynchronously
//     replicate databases across colos for disaster recovery
//     (internal/colo, internal/system).
//
// The two operations of the paper's API are CreateDatabase (with an SLA)
// and Open (connect and run SQL with ACID transactions); everything else —
// replication, fail-over, placement, migration — is automatic.
package sdp

import (
	"net/http"
	"sync"
	"time"

	"sdp/internal/admin"
	"sdp/internal/colo"
	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/placement"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/system"
	"sdp/internal/wal"
)

// WALConfig configures the per-machine write-ahead log (see Config.WAL).
type WALConfig = wal.Config

// Re-exported configuration enums (see the paper's Section 3.1).
type (
	// ReadOption selects the replica read-routing policy.
	ReadOption = core.ReadOption
	// AckMode selects conservative or aggressive write acknowledgement.
	AckMode = core.AckMode
	// CopyGranularity selects table- or database-level copy locking.
	CopyGranularity = sqldb.DumpGranularity
)

// Re-exported enum values.
const (
	ReadOption1 = core.ReadOption1
	ReadOption2 = core.ReadOption2
	ReadOption3 = core.ReadOption3

	Conservative = core.Conservative
	Aggressive   = core.Aggressive

	CopyByTable    = sqldb.GranularityTable
	CopyByDatabase = sqldb.GranularityDatabase
)

// Value and result types of the SQL API.
type (
	// Value is one SQL value.
	Value = sqldb.Value
	// Row is one result tuple.
	Row = sqldb.Row
	// Result is the outcome of a statement.
	Result = sqldb.Result
)

// Value constructors.
var (
	// Int builds an INT value.
	Int = sqldb.NewInt
	// Float builds a FLOAT value.
	Float = sqldb.NewFloat
	// Text builds a TEXT value.
	Text = sqldb.NewText
	// Bool builds a BOOL value.
	Bool = sqldb.NewBool
)

// Config tunes the platform. The zero value gives the paper's defaults:
// Option 1 reads, a conservative controller, 2 replicas per database,
// table-granularity copying.
type Config struct {
	// ReadOption is the read-routing policy (default Option 1).
	ReadOption ReadOption
	// AckMode is the write-acknowledgement policy (default conservative).
	AckMode AckMode
	// Replicas per database within a cluster (default 2).
	Replicas int
	// CopyGranularity for replica creation (default table-level).
	CopyGranularity CopyGranularity
	// ClusterSize is the number of machines per cluster (default 4).
	ClusterSize int
	// RecoveryThreads is the number of concurrent copy processes during
	// failure recovery (default 2).
	RecoveryThreads int
	// PoolPages is each machine's buffer-pool capacity in pages (default
	// 256).
	PoolPages int
	// DiskLatency is the simulated per-page-miss disk latency (default 0).
	DiskLatency time.Duration
	// LockTimeout bounds lock waits on each machine (default 2s).
	LockTimeout time.Duration
	// SLAWindow is the SLA compliance monitor's accounting window (default
	// 1s). Tests shrink it so violations surface quickly.
	SLAWindow time.Duration
	// Listen, when non-empty, is the TCP address ServeWire binds the wire
	// protocol server to (e.g. ":8346", or "127.0.0.1:0" for an ephemeral
	// port). See PROTOCOL.md for the protocol and internal/wire for the
	// client.
	Listen string
	// WAL, when non-nil, gives every machine a write-ahead log: commits are
	// forced (with group commit) before acknowledgement, and a crashed
	// machine can restart and rejoin by log replay plus delta catch-up
	// instead of a full re-replication (see DESIGN.md, "Durability
	// architecture").
	WAL *WALConfig
	// TraceSample is the head-based per-tenant trace sampling fraction the
	// wire server applies to requests that arrive without a client trace
	// context (0 disables server-initiated sampling; 1 samples every call).
	// Client-sampled requests are always traced regardless of this setting.
	// See OBSERVABILITY.md, "Distributed tracing".
	TraceSample float64
	// TraceRing is the capacity of the span ring shared by every layer
	// (default 4096). Overflow evicts the oldest spans and increments
	// trace_dropped_total.
	TraceRing int
	// SlowQuery, when positive, records statements that take at least this
	// long into the bounded slow-query log served at /slowz, with the span
	// breakdown for sampled calls.
	SlowQuery time.Duration
	// Controllers, when >= 1, replicates each cluster controller's state
	// machine across that many consensus replicas (3 or 5 are sensible);
	// controller state changes commit through a Raft-style log and the
	// cluster survives controller crashes by leader failover (see DESIGN.md,
	// "Control plane replication"). Zero keeps the paper's single
	// process-pair controller.
	Controllers int
	// ControllerSeed seeds the consensus layer's randomized election
	// timeouts, for reproducible failover tests (default 1).
	ControllerSeed int64
}

func (c Config) coloOptions() colo.Options {
	eng := sqldb.DefaultConfig()
	if c.PoolPages != 0 {
		eng.PoolPages = c.PoolPages
	}
	if c.DiskLatency != 0 {
		eng.MissLatency = c.DiskLatency
	}
	if c.LockTimeout != 0 {
		eng.LockTimeout = c.LockTimeout
	}
	return colo.Options{
		ClusterSize:     c.ClusterSize,
		RecoveryThreads: c.RecoveryThreads,
		Cluster: core.Options{
			ReadOption:      c.ReadOption,
			AckMode:         c.AckMode,
			Replicas:        c.Replicas,
			CopyGranularity: c.CopyGranularity,
			EngineConfig:    eng,
			WAL:             c.WAL,
			Controllers:     c.Controllers,
			ControllerSeed:  c.ControllerSeed,
		},
	}
}

// SLA is a database's service level agreement.
type SLA struct {
	// SizeMB is the expected database size in MB; with MinTPS it
	// determines the per-replica resource requirement via profiling.
	SizeMB float64
	// MinTPS is the minimum throughput in transactions per second.
	MinTPS float64
	// MaxRejectFraction bounds proactively rejected transactions.
	MaxRejectFraction float64
	// MaxLatency bounds the mean commit latency per compliance window (zero
	// = unconstrained). It is monitored, not used for placement.
	MaxLatency time.Duration
	// Period is the SLA measurement window (default 24h).
	Period time.Duration
}

// Platform is the top-level handle: the system controller plus its colos.
// All layers — system controller, colo controllers, cluster controllers,
// and every machine's DBMS engine — report into one observability registry
// (see Metrics and OBSERVABILITY.md).
type Platform struct {
	cfg  Config
	reg  *obs.Registry
	sys  *system.Controller
	mon  *sla.Monitor
	auth wireAuth

	plMu sync.Mutex
	pl   []*core.AdaptiveController
}

// New creates an empty platform with the given configuration.
func New(cfg Config) *Platform {
	ring := cfg.TraceRing
	if ring <= 0 {
		ring = obs.DefaultTraceCapacity
	}
	reg := obs.NewRegistrySized(ring)
	return &Platform{
		cfg: cfg,
		reg: reg,
		sys: system.NewWithRegistry(reg),
		mon: sla.NewMonitor(reg, sla.MonitorOptions{Window: cfg.SLAWindow}),
	}
}

// Metrics returns the platform-wide observability registry. Snapshot() on
// it captures every layer's counters, latency histograms, and the trace
// ring in one consistent dump.
func (p *Platform) Metrics() *obs.Registry { return p.reg }

// AddColo creates a colo in a region with the given number of free
// machines and registers it with the system controller.
func (p *Platform) AddColo(name, region string, freeMachines int) *colo.Controller {
	opts := p.cfg.coloOptions()
	opts.Metrics = p.reg
	opts.Cluster.SLAMonitor = p.mon
	co := colo.New(name, opts)
	co.AddFreeMachines(freeMachines)
	p.sys.AddColo(co, region)
	return co
}

// CreateDatabase provisions a database with the given SLA, primary colo,
// and optional disaster-recovery colos.
func (p *Platform) CreateDatabase(name string, s SLA, primaryColo string, drColos ...string) error {
	if s.Period == 0 {
		s.Period = 24 * time.Hour
	}
	req := sla.Profile(s.SizeMB, s.MinTPS)
	replicas := p.cfg.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	if err := p.sys.CreateDatabase(name, req, replicas, primaryColo, drColos...); err != nil {
		return err
	}
	p.mon.Track(name, sla.SLA{
		MinThroughput:     s.MinTPS,
		MaxRejectFraction: s.MaxRejectFraction,
		MaxMeanLatency:    s.MaxLatency,
		Period:            s.Period,
	})
	return nil
}

// Open returns a connection handle for a database; the system controller
// routes it to the primary colo's hosting cluster.
func (p *Platform) Open(name string) *Conn {
	return &Conn{p: p, db: name}
}

// System exposes the underlying system controller for advanced operations
// (fail-over drills, DR promotion).
func (p *Platform) System() *system.Controller { return p.sys }

// SLAMonitor exposes the platform's SLA compliance monitor.
func (p *Platform) SLAMonitor() *sla.Monitor { return p.mon }

// SLAReport evaluates all pending compliance windows and returns the
// current report.
func (p *Platform) SLAReport() sla.ComplianceReport { return p.mon.Report() }

// Health aggregates every layer's liveness into one report.
func (p *Platform) Health() system.Health { return p.sys.Health() }

// PlacementOptions tunes adaptive replica provisioning (StartPlacement).
// The zero value gives sensible defaults: 500ms decision rounds, replica
// degrees held between the platform's configured degree and one above it,
// and two concurrent moves per cluster.
type PlacementOptions struct {
	// Interval is the decision-loop period (default 500ms).
	Interval time.Duration
	// MinReplicas and MaxReplicas bound every tenant's replica degree
	// (TCDRM-style budget). Zero MinReplicas selects the platform's
	// configured replication degree; zero MaxReplicas selects one above
	// MinReplicas.
	MinReplicas int
	MaxReplicas int
	// MaxConcurrentMoves caps Algorithm 1 copies in flight per cluster
	// (default 2).
	MaxConcurrentMoves int
}

// StartPlacement closes the loop from the SLA monitor into placement: every
// hosting cluster in every colo gets an adaptive provisioning controller
// that classifies tenants hot/warm/cold from their compliance windows,
// grows and shrinks replica degrees within the budget, and corrects load
// skew by replica migration. Clusters provisioned after the call are not
// covered until placement is restarted. Idempotent while running.
func (p *Platform) StartPlacement(o PlacementOptions) {
	minReplicas := o.MinReplicas
	if minReplicas <= 0 {
		minReplicas = p.cfg.Replicas
		if minReplicas <= 0 {
			minReplicas = 2
		}
	}
	maxReplicas := o.MaxReplicas
	if maxReplicas <= 0 {
		maxReplicas = minReplicas + 1
	}
	cfg := core.AdaptiveConfig{
		Interval:           o.Interval,
		Budget:             placement.Budget{MinReplicas: minReplicas, MaxReplicas: maxReplicas},
		MaxConcurrentMoves: o.MaxConcurrentMoves,
	}
	p.plMu.Lock()
	defer p.plMu.Unlock()
	if len(p.pl) > 0 {
		return
	}
	for _, co := range p.sys.Colos() {
		for _, cl := range co.Clusters() {
			ctl := cl.NewAdaptiveController(cfg)
			ctl.Start()
			p.pl = append(p.pl, ctl)
		}
	}
}

// StopPlacement halts every adaptive placement loop, waiting for in-flight
// replica copies to finish. Idempotent.
func (p *Platform) StopPlacement() {
	p.plMu.Lock()
	ctls := p.pl
	p.pl = nil
	p.plMu.Unlock()
	for _, ctl := range ctls {
		ctl.Stop()
	}
}

// PlacementReport merges every running adaptive controller's state into the
// platform-wide report served at /placementz. With placement stopped (or
// never started) it returns an empty, disabled report.
func (p *Platform) PlacementReport() placement.Report {
	p.plMu.Lock()
	ctls := append([]*core.AdaptiveController(nil), p.pl...)
	p.plMu.Unlock()
	reports := make([]placement.Report, len(ctls))
	for i, ctl := range ctls {
		reports[i] = ctl.Report()
	}
	return placement.Merge(reports...)
}

// AdminHandler returns the admin-plane HTTP handler (metrics, probes,
// traces, SLA report, pprof) for mounting in tests or a custom server.
func (p *Platform) AdminHandler() http.Handler { return admin.Handler(p.reg, p) }

// ServeAdmin binds addr and serves the admin plane on it in the background.
// Close the returned server to stop it.
func (p *Platform) ServeAdmin(addr string) (*admin.Server, error) {
	return admin.Serve(addr, p.AdminHandler())
}
