package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/colo"
	"sdp/internal/obs"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/system"
	"sdp/internal/wire"
)

// NetBench holds the wire-protocol benchmark results written to
// BENCH_net.json: a single-connection latency profile of the prepared vs
// simple-query paths, and a throughput curve as concurrent connections
// grow to above ten thousand (see EXPERIMENTS.md, "Wire protocol").
type NetBench struct {
	// PreparedReadNsPerOp is the round-trip time of a prepared point read
	// (MsgExec: statement ID + one parameter) over one loopback connection.
	PreparedReadNsPerOp float64 `json:"prepared_point_read_ns_per_op"`
	// SimpleReadNsPerOp is the same read sent as SQL text (MsgQuery),
	// which the server answers through its text→AST statement cache.
	SimpleReadNsPerOp float64 `json:"simple_point_read_ns_per_op"`
	// ExplainExec is the executor EXPLAIN reports for the benchmark's
	// point read over the wire — "compiled" proves the network hop does
	// not knock the statement off the compiled hot path.
	ExplainExec string `json:"explain_exec"`
	// Points is the throughput curve: one entry per connection count.
	Points []NetPoint `json:"throughput_vs_conns"`
	// MaxConnsSustained is the largest connection count whose measurement
	// window completed with zero errors on every connection.
	MaxConnsSustained int `json:"max_conns_sustained"`
	// Iterations is the single-connection latency sample count.
	Iterations int `json:"iterations"`
}

// NetPoint is one point of the connection-scaling curve. Every connection
// runs prepared point reads as fast as the server answers them.
type NetPoint struct {
	// Conns is the number of concurrently connected clients.
	Conns int `json:"conns"`
	// ConnsActive is the server's wire_connections_active gauge observed
	// mid-window — the proof the connections were truly concurrent.
	ConnsActive int `json:"conns_active"`
	// TPS is completed point reads per second across all connections.
	TPS float64 `json:"tps"`
	// P50Us and P99Us are client-observed round-trip percentiles.
	P50Us float64 `json:"p50_us"`
	// P99Us is the 99th-percentile round trip in microseconds.
	P99Us float64 `json:"p99_us"`
	// BytesPerOp is total wire traffic (both directions, from the server's
	// wire_bytes_* counters) divided by completed operations.
	BytesPerOp float64 `json:"bytes_per_op"`
	// Errors counts failed operations in the window (0 when sustained).
	Errors int `json:"errors"`
}

// netBenchConns picks the connection counts of the scaling curve.
func (c Config) netBenchConns() []int {
	if c.Quick {
		return []int{1, 8, 64}
	}
	return []int{1, 8, 64, 512, 2048, 10240}
}

// netBenchWindow is each point's measurement duration.
func (c Config) netBenchWindow() time.Duration {
	if c.Quick {
		return 150 * time.Millisecond
	}
	return time.Second
}

// netBenchIters is the single-connection latency sample count.
func (c Config) netBenchIters() int {
	if c.Quick {
		return 2000
	}
	return 20000
}

const netBenchToken = "bench-token"

// netBackend adapts the system controller to wire.Backend with a single
// shared token; the root-level smoke test covers the richer per-tenant
// table behind sdp.Platform.ServeWire.
type netBackend struct {
	sys   *system.Controller
	token string
}

// Authenticate admits sessions that name a routable database and present
// the bench token.
func (b netBackend) Authenticate(db, token string) error {
	if _, err := b.sys.Route(db); err != nil {
		return err
	}
	if token != b.token {
		return errors.New("bad token")
	}
	return nil
}

// Begin opens a routed transaction.
func (b netBackend) Begin(db string) (wire.Txn, error) {
	t, err := b.sys.Begin(db)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// netBenchPlatform boots a system controller + colo with a wire server and
// one seeded database ("app": table t, 1000 rows keyed 0..999), the same
// stack sdp.Platform.ServeWire assembles.
func netBenchPlatform() (*wire.Server, error) {
	reg := obs.NewRegistry()
	sys := system.NewWithRegistry(reg)
	co := colo.New("local", colo.Options{ClusterSize: 4, Metrics: reg})
	co.AddFreeMachines(4)
	sys.AddColo(co, "local")
	if err := sys.CreateDatabase("app", sla.Profile(100, 1), 2, "local"); err != nil {
		return nil, err
	}
	if _, err := sys.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)"); err != nil {
		return nil, err
	}
	for i := 0; i < 1000; i++ {
		if _, err := sys.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, 'val%d')", i, i)); err != nil {
			return nil, err
		}
	}
	return wire.Serve("127.0.0.1:0", wire.ServerConfig{
		Backend: netBackend{sys: sys, token: netBenchToken},
		Metrics: reg,
		Banner:  "sdp-bench",
	})
}

// netBenchClient dials one single-connection client at addr.
func netBenchClient(addr string) (*wire.Client, error) {
	return wire.Dial(wire.ClientConfig{
		Addr:     addr,
		Database: "app",
		Token:    netBenchToken,
		PoolSize: 1,
	})
}

// RunNetBench measures the wire protocol: single-connection prepared vs
// simple point-read latency (and the EXPLAIN executor over the wire), then
// the throughput curve of netBenchConns concurrent connections all running
// prepared point reads against one loopback server.
func RunNetBench(cfg Config) (NetBench, error) {
	res := NetBench{Iterations: cfg.netBenchIters()}
	conns := cfg.netBenchConns()
	maxConns := uint64(conns[len(conns)-1])

	var addr string
	var reg netCounters
	if !cfg.Quick {
		// Full scale: run the server in a child process so each side's
		// sockets count against a separate RLIMIT_NOFILE (10k+ loopback
		// connections are two fds each; one process often cannot hold
		// both ends). Works only when this binary installed the
		// RunNetBenchServer env hook — cmd/experiments does.
		if proc, paddr, err := startNetServerProc(); err == nil {
			defer proc.stop()
			raiseFDLimit(maxConns + 4096) // client fds only
			addr, reg = paddr, proc.counters()
		}
	}
	if addr == "" {
		// Quick profile, or no child available: both sides of every
		// connection live in this process, ~2 fds per client plus
		// listener and headroom.
		raiseFDLimit(maxConns*2 + 4096)
		srv, err := netBenchPlatform()
		if err != nil {
			return res, err
		}
		defer srv.Close()
		addr, reg = srv.Addr(), srvRegistryCounters(srv)
	}

	if err := runNetLatency(&res, addr); err != nil {
		return res, err
	}
	for _, n := range conns {
		pt, err := runNetPoint(addr, n, cfg.netBenchWindow(), reg)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, pt)
		if pt.Errors == 0 && pt.Conns > res.MaxConnsSustained {
			res.MaxConnsSustained = pt.Conns
		}
	}
	return res, nil
}

// netCounters reads the server's byte counters and active-connection gauge.
type netCounters struct {
	read, written func() uint64
	active        func() float64
}

// srvRegistryCounters binds readers over the server's wire_* metrics.
func srvRegistryCounters(srv *wire.Server) netCounters {
	reg := srv.Metrics()
	read := reg.Counter("wire_bytes_read_total", "")
	written := reg.Counter("wire_bytes_written_total", "")
	active := reg.Gauge("wire_connections_active", "")
	return netCounters{read: read.Value, written: written.Value, active: active.Value}
}

// runNetLatency fills in the single-connection latency fields.
func runNetLatency(res *NetBench, addr string) error {
	client, err := netBenchClient(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	stmt, err := client.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		return err
	}
	for i := 0; i < 200; i++ { // warmup: prepare, fill plan + buffer caches
		if _, err := stmt.Exec(sqldb.NewInt(int64(i % 1000))); err != nil {
			return err
		}
	}
	iters := res.Iterations
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := stmt.Exec(sqldb.NewInt(int64(i % 1000))); err != nil {
			return err
		}
	}
	res.PreparedReadNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := client.Query("SELECT v FROM t WHERE id = ?", sqldb.NewInt(int64(i%1000))); err != nil {
			return err
		}
	}
	res.SimpleReadNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(iters)

	// Prove the wire hop stays on the compiled executor: EXPLAIN carries
	// an exec= marker in its detail column (see internal/sqldb/explain.go).
	ex, err := client.Query("EXPLAIN SELECT v FROM t WHERE id = 7")
	if err != nil {
		return err
	}
	res.ExplainExec = "unknown"
	for _, row := range ex.Rows {
		for _, v := range row {
			s := v.String()
			if i := strings.Index(s, "exec="); i >= 0 {
				res.ExplainExec = strings.Trim(strings.Fields(s[i+len("exec="):])[0], "'\")")
			}
		}
	}
	return nil
}

// runNetPoint measures one connection-count point: dial n single-connection
// clients, run prepared point reads on all of them for the window, and
// report throughput, percentiles, and bytes per operation.
func runNetPoint(addr string, n int, window time.Duration, counters netCounters) (NetPoint, error) {
	pt := NetPoint{Conns: n}

	clients := make([]*wire.Client, n)
	stmts := make([]*wire.Stmt, n)
	defer func() {
		var wg sync.WaitGroup
		for _, c := range clients {
			if c == nil {
				continue
			}
			wg.Add(1)
			go func(c *wire.Client) { defer wg.Done(); c.Close() }(c)
		}
		wg.Wait()
	}()

	// Dial with bounded parallelism; each client pre-runs one read so the
	// statement is prepared on its connection before the window opens.
	dialers := 256
	if dialers > n {
		dialers = n
	}
	var derr error
	var dmu sync.Mutex
	var dwg sync.WaitGroup
	idx := int64(-1)
	for d := 0; d < dialers; d++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for {
				i := int(atomic.AddInt64(&idx, 1))
				if i >= n {
					return
				}
				c, err := netBenchClient(addr)
				if err == nil {
					var s *wire.Stmt
					s, err = c.Prepare("SELECT v FROM t WHERE id = ?")
					if err == nil {
						_, err = s.Exec(sqldb.NewInt(int64(i % 1000)))
					}
					clients[i], stmts[i] = c, s
				}
				if err != nil {
					dmu.Lock()
					if derr == nil {
						derr = err
					}
					dmu.Unlock()
					return
				}
			}
		}()
	}
	dwg.Wait()
	if derr != nil {
		return pt, derr
	}

	var stop atomic.Bool
	var ops, errs atomic.Int64
	lats := make([][]int64, n)
	startCh := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-startCh
			key := int64(i)
			for !stop.Load() {
				t0 := time.Now()
				_, err := stmts[i].Exec(sqldb.NewInt(key % 1000))
				d := time.Since(t0).Nanoseconds()
				key++
				if err != nil {
					errs.Add(1)
					continue
				}
				ops.Add(1)
				lats[i] = append(lats[i], d)
			}
		}(i)
	}

	bytesBefore := counters.read() + counters.written()
	start := time.Now()
	close(startCh)
	time.Sleep(window / 2)
	active := counters.active() // mid-window: all dialed conns still up?
	time.Sleep(window / 2)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	bytesAfter := counters.read() + counters.written()

	total := ops.Load()
	pt.ConnsActive = int(active)
	pt.Errors = int(errs.Load())
	pt.TPS = float64(total) / elapsed.Seconds()
	if total > 0 {
		pt.BytesPerOp = float64(bytesAfter-bytesBefore) / float64(total)
	}
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		pt.P50Us = float64(all[len(all)/2]) / 1e3
		pt.P99Us = float64(all[len(all)*99/100]) / 1e3
	}
	return pt, nil
}
