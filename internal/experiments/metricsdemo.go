package experiments

import (
	"fmt"
	"time"

	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
)

// RunMetricsDemo drives a representative workload against one cluster and
// returns the unified observability snapshot — the `experiments -metrics`
// artefact. The run covers every instrumented path at once:
//
//   - a TPC-W shopping mix on a 2-replica database (2PC phase latencies,
//     read routing, buffer-pool and plan-cache activity),
//   - an Algorithm 1 replica creation started mid-run (copy phase
//     transitions, dump durations, rejected writes),
//   - an SLA compliance monitor on the database, evaluated every 100ms, so
//     sla_* families and the returned compliance report are populated,
//
// so the resulting snapshot prints non-zero values for the families that
// back the paper's Figures 2–4 and 8–9. OBSERVABILITY.md walks through
// reading the output.
func RunMetricsDemo(cfg Config) (obs.Snapshot, sla.ComplianceReport, error) {
	reg := obs.NewRegistry()
	mon := sla.NewMonitor(reg, sla.MonitorOptions{Window: 100 * time.Millisecond})
	c := core.NewCluster("demo", core.Options{
		Replicas:     2,
		EngineConfig: cfg.engineConfig(),
		Metrics:      reg,
		SLAMonitor:   mon,
	})
	if _, err := c.AddMachines(3); err != nil {
		return obs.Snapshot{}, sla.ComplianceReport{}, err
	}
	if err := c.CreateDatabase("tpcw"); err != nil {
		return obs.Snapshot{}, sla.ComplianceReport{}, err
	}
	// A deliberately tight mean-latency bound: the demo is meant to show the
	// violation machinery firing, not a healthy report.
	mon.Track("tpcw", sla.SLA{MaxMeanLatency: time.Nanosecond})
	db := clusterDB{c: c, db: "tpcw"}
	scale := tpcw.SmallScale(cfg.Seed)
	if err := tpcw.Load(db, scale); err != nil {
		return obs.Snapshot{}, sla.ComplianceReport{}, err
	}
	workload := tpcw.NewWorkload(scale)

	// Find the machine not hosting the database: the replica-copy target.
	hosts, err := c.Replicas("tpcw")
	if err != nil {
		return obs.Snapshot{}, sla.ComplianceReport{}, err
	}
	target := ""
	for _, id := range c.MachineIDs() {
		hosting := false
		for _, h := range hosts {
			hosting = hosting || h == id
		}
		if !hosting {
			target = id
			break
		}
	}
	if target == "" {
		return obs.Snapshot{}, sla.ComplianceReport{}, fmt.Errorf("experiments: no free machine for the copy target")
	}

	const concurrency = 4
	stop := make(chan struct{})
	results := make(chan tpcw.Stats, concurrency)
	for s := 0; s < concurrency; s++ {
		client := &tpcw.Client{DB: db, Mix: tpcw.ShoppingMix, Workload: workload, Classify: classify}
		go func(seed int64) {
			results <- client.RunSession(seed, stop)
		}(cfg.Seed + int64(s)*104729)
	}

	d := cfg.measureDuration()
	time.Sleep(d / 2)
	// Mid-run: create the third replica while writes keep arriving, so the
	// snapshot shows Algorithm 1's phases and any proactive rejections.
	copyErr := c.CreateReplica("tpcw", target)
	time.Sleep(d / 2)
	close(stop)
	for s := 0; s < concurrency; s++ {
		<-results
	}
	if copyErr != nil {
		return obs.Snapshot{}, sla.ComplianceReport{}, fmt.Errorf("experiments: replica creation during demo: %w", copyErr)
	}
	// Snapshot first: its OnSnapshot hook evaluates the pending compliance
	// windows, so the snapshot and the report agree on the violation counts.
	snap := reg.Snapshot()
	return snap, mon.Report(), nil
}

// bridgeEngine registers a snapshot hook exposing one standalone engine's
// statistics under sqldb_engine_stat, the same family the cluster
// controller bridges its machines into.
func bridgeEngine(reg *obs.Registry, name string, e *sqldb.Engine) {
	g := reg.GaugeVec("sqldb_engine_stat",
		"Per-engine DBMS counters aggregated over a cluster's machines (commits, aborts, deadlocks, pool and plan-cache activity)",
		"cluster", "stat")
	reg.OnSnapshot(func() {
		st := e.Stats()
		set := func(stat string, v float64) { g.With(name, stat).Set(v) }
		set("commits", float64(st.Commits))
		set("aborts", float64(st.Aborts))
		set("deadlocks", float64(st.Deadlocks))
		set("pool_hits", float64(st.Pool.Hits))
		set("pool_misses", float64(st.Pool.Misses))
		set("pool_evictions", float64(st.Pool.Evictions))
		set("pool_hit_rate", st.Pool.HitRate())
		set("plan_cache_hits", float64(st.PlanCache.Hits))
		set("plan_cache_misses", float64(st.PlanCache.Misses))
		set("plan_cache_hit_rate", st.PlanCache.HitRate())
		set("plan_compile_total", float64(st.PlanCompiles))
		set("compiled_exec_total", float64(st.CompiledExecs))
		set("stmt_exec_total", float64(st.StmtExecs))
		set("readpath_optimistic_hits", float64(st.OptimisticHits))
		set("readpath_optimistic_retries", float64(st.OptimisticRetries))
		set("readpath_optimistic_fallbacks", float64(st.OptimisticFallbacks))
		set("readpath_optimistic_conflicts", float64(st.OptimisticConflicts))
	})
}
