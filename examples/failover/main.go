// Failover: induce a machine failure while an application is running, and
// watch the platform recover — the database keeps serving from the
// surviving replica, a new replica is created online with Algorithm 1, and
// the replication factor is restored. Writes that hit the table being
// copied are proactively rejected (the paper's availability metric) and
// simply retried.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"sdp"
)

func main() {
	p := sdp.New(sdp.Config{ClusterSize: 4, RecoveryThreads: 2})
	p.AddColo("west", "us-west", 6)

	if err := p.CreateDatabase("app", sdp.SLA{SizeMB: 300, MinTPS: 2}, "west"); err != nil {
		log.Fatal(err)
	}
	conn := p.Open("app")
	if _, err := conn.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := conn.Exec("INSERT INTO kv VALUES (?, 0)", sdp.Int(int64(i))); err != nil {
			log.Fatal(err)
		}
	}

	west, err := p.System().Colo("west")
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := west.Route("app")
	if err != nil {
		log.Fatal(err)
	}
	reps, _ := cluster.Replicas("app")
	fmt.Printf("replicas before failure: %v\n", reps)

	// A write workload that keeps running across the failure, retrying
	// transient errors as a real application server would.
	stop := make(chan struct{})
	var committed, retried atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				_, err := conn.Exec("UPDATE kv SET v = v + 1 WHERE k = ?", sdp.Int(i%500))
				switch {
				case err == nil:
					committed.Add(1)
				case sdp.IsRetryable(err):
					retried.Add(1)
				default:
					log.Fatalf("unexpected error: %v", err)
				}
			}
		}(int64(w) * 1000)
	}

	// Pull the plug on the first replica's machine. The colo controller
	// fails it, re-replicates its databases, and pulls a replacement
	// machine from the free pool.
	fmt.Printf("failing machine %s ...\n", reps[0])
	report, err := west.FailMachine(reps[0])
	if err != nil {
		log.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if len(report.Failed) > 0 {
		log.Fatalf("recovery failures: %v", report.Failed)
	}
	fmt.Printf("recovered databases: %v\n", report.Recovered)
	newReps, _ := cluster.Replicas("app")
	fmt.Printf("replicas after recovery: %v\n", newReps)
	fmt.Printf("workload across the failure: %d committed, %d retried (rejections + transient errors)\n",
		committed.Load(), retried.Load())

	// Verify the new replica is complete and consistent.
	res, err := conn.Query("SELECT COUNT(*), SUM(v) FROM kv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state: %d rows, total v = %d (must equal committed = %d)\n",
		res.Rows[0][0].Int, res.Rows[0][1].Int, committed.Load())
	if res.Rows[0][1].Int != committed.Load() {
		log.Fatal("CONSISTENCY VIOLATION: committed updates lost or duplicated")
	}
	fmt.Println("consistency verified: no committed update lost or duplicated")
}
