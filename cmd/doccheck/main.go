// Command doccheck verifies that every exported top-level identifier in the
// given package directories carries a doc comment: functions and methods,
// type declarations, and package-level const/var specs (a comment on the
// enclosing group counts for its members). It exits non-zero listing the
// undocumented identifiers, so `make doc-check` fails when documentation
// regresses.
//
// Usage:
//
//	doccheck ./internal/core ./internal/system
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> ...")
		os.Exit(2)
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers without doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", m)
		}
		os.Exit(1)
	}
	fmt.Printf("doccheck: ok (%d packages)\n", len(dirs))
}

// checkDir parses every non-test .go file in dir and returns the exported
// identifiers lacking documentation, as "file:line: name" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), kindOf(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// kindOf distinguishes methods from functions in reports.
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// checkGenDecl inspects one type/const/var declaration. A doc comment on
// the grouped declaration documents every spec inside it; otherwise each
// exported spec needs its own comment.
func checkGenDecl(d *ast.GenDecl, report func(pos token.Pos, what, name string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDocumented && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
