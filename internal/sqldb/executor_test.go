package sqldb

import (
	"errors"
	"fmt"
	"testing"
)

// newTestDB returns an engine with one database "app" created.
func newTestDB(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(DefaultConfig())
	if err := e.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	return e
}

func mustExec(t *testing.T, e *Engine, sql string, params ...Value) *Result {
	t.Helper()
	res, err := e.Exec("app", sql, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE item (id INT PRIMARY KEY, title TEXT NOT NULL, cost FLOAT)")
	mustExec(t, e, "INSERT INTO item VALUES (1, 'book', 9.99), (2, 'pen', 1.5)")
	res := mustExec(t, e, "SELECT id, title, cost FROM item ORDER BY id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Str != "book" || res.Rows[1][2].Float != 1.5 {
		t.Errorf("rows = %v", res.Rows)
	}
	if fmt.Sprint(res.Cols) != "[id title cost]" {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestInsertColumnSubset(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, a TEXT, b FLOAT)")
	mustExec(t, e, "INSERT INTO t (id, b) VALUES (1, 2.5)")
	res := mustExec(t, e, "SELECT a, b FROM t WHERE id = 1")
	if !res.Rows[0][0].IsNull() || res.Rows[0][1].Float != 2.5 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestInsertDuplicatePK(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, a TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'x')")
	_, err := e.Exec("app", "INSERT INTO t VALUES (1, 'y')")
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestInsertNotNullViolation(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, a TEXT NOT NULL)")
	_, err := e.Exec("app", "INSERT INTO t (id) VALUES (1)")
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
}

func TestInsertTypeMismatch(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, a INT)")
	_, err := e.Exec("app", "INSERT INTO t VALUES (1, 'text')")
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestIntWidensToFloat(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, f FLOAT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 3)")
	res := mustExec(t, e, "SELECT f FROM t WHERE id = 1")
	if res.Rows[0][0].Typ != TypeFloat || res.Rows[0][0].Float != 3 {
		t.Errorf("got %v", res.Rows[0][0])
	}
}

func TestUpdatePoint(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 10), (2, 20)")
	res := mustExec(t, e, "UPDATE t SET n = n + 5 WHERE id = 2")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := mustExec(t, e, "SELECT n FROM t WHERE id = 2")
	if got.Rows[0][0].Int != 25 {
		t.Errorf("n = %v", got.Rows[0][0])
	}
}

func TestUpdateScan(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	for i := 1; i <= 10; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
	}
	res := mustExec(t, e, "UPDATE t SET n = 0 WHERE n > 5")
	if res.Affected != 5 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := mustExec(t, e, "SELECT COUNT(*) FROM t WHERE n = 0")
	if got.Rows[0][0].Int != 5 {
		t.Errorf("count = %v", got.Rows[0][0])
	}
}

func TestUpdateChangePK(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 10), (2, 20)")
	if _, err := e.Exec("app", "UPDATE t SET id = 2 WHERE id = 1"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want duplicate key", err)
	}
	mustExec(t, e, "UPDATE t SET id = 3 WHERE id = 1")
	res := mustExec(t, e, "SELECT n FROM t WHERE id = 3")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 10 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDelete(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)")
	res := mustExec(t, e, "DELETE FROM t WHERE n >= 2")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := mustExec(t, e, "SELECT COUNT(*) FROM t")
	if got.Rows[0][0].Int != 1 {
		t.Errorf("count = %v", got.Rows[0][0])
	}
}

func TestSelectWherePredicates(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, s TEXT, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'apple', 5), (2, 'banana', 10), (3, 'cherry', 15), (4, NULL, 20)")
	cases := []struct {
		where string
		want  int
	}{
		{"n BETWEEN 5 AND 10", 2},
		{"n NOT BETWEEN 5 AND 10", 2},
		{"s LIKE '%an%'", 1},
		{"s NOT LIKE 'a%'", 2}, // NULL row filtered out by 3VL
		{"s IS NULL", 1},
		{"s IS NOT NULL", 3},
		{"id IN (1, 3)", 2},
		{"id NOT IN (1, 3)", 2},
		{"n > 5 AND n < 20", 2},
		{"n < 6 OR n > 14", 3},
		{"NOT (n > 5)", 1},
	}
	for _, c := range cases {
		res := mustExec(t, e, "SELECT id FROM t WHERE "+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestSelectParams(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 10), (2, 20)")
	res := mustExec(t, e, "SELECT n FROM t WHERE id = ?", NewInt(2))
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 20 {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, err := e.Exec("app", "SELECT n FROM t WHERE n = ?"); err == nil {
		t.Error("missing param should error")
	}
}

func TestSelectOrderLimitOffset(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	for i := 1; i <= 5; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, 6-i))
	}
	res := mustExec(t, e, "SELECT id FROM t ORDER BY n DESC LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 2 || res.Rows[1][0].Int != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectDistinct(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 7), (2, 7), (3, 8)")
	res := mustExec(t, e, "SELECT DISTINCT n FROM t ORDER BY n")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 7 || res.Rows[1][0].Int != 8 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, g TEXT, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a', 10), (2, 'a', 20), (3, 'b', 30), (4, 'b', NULL)")
	res := mustExec(t, e, "SELECT COUNT(*), COUNT(n), SUM(n), AVG(n), MIN(n), MAX(n) FROM t")
	row := res.Rows[0]
	if row[0].Int != 4 || row[1].Int != 3 || row[2].Int != 60 {
		t.Errorf("counts/sum = %v", row)
	}
	if row[3].Float != 20 || row[4].Int != 10 || row[5].Int != 30 {
		t.Errorf("avg/min/max = %v", row)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, g TEXT, n INT)")
	mustExec(t, e, "INSERT INTO t VALUES (1,'a',1),(2,'a',1),(3,'b',3),(4,'c',4),(5,'c',6)")
	res := mustExec(t, e, "SELECT g, SUM(n) AS total FROM t GROUP BY g HAVING SUM(n) > 2 ORDER BY total DESC")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "c" || res.Rows[0][1].Int != 10 {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].Str != "b" || res.Rows[1][1].Int != 3 {
		t.Errorf("row1 = %v", res.Rows[1])
	}
}

func TestAggregateOverEmptyTable(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	res := mustExec(t, e, "SELECT COUNT(*), SUM(n), MIN(n) FROM t")
	row := res.Rows[0]
	if row[0].Int != 0 || !row[1].IsNull() || !row[2].IsNull() {
		t.Errorf("row = %v", row)
	}
}

func TestJoinInner(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE c (id INT PRIMARY KEY, name TEXT)")
	mustExec(t, e, "CREATE TABLE o (id INT PRIMARY KEY, cid INT, total FLOAT)")
	mustExec(t, e, "INSERT INTO c VALUES (1, 'ann'), (2, 'bob')")
	mustExec(t, e, "INSERT INTO o VALUES (10, 1, 5.0), (11, 1, 7.0), (12, 3, 9.0)")
	res := mustExec(t, e, "SELECT c.name, o.total FROM o JOIN c ON o.cid = c.id ORDER BY o.total")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "ann" || res.Rows[1][1].Float != 7 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestJoinLeft(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE c (id INT PRIMARY KEY, name TEXT)")
	mustExec(t, e, "CREATE TABLE o (id INT PRIMARY KEY, cid INT)")
	mustExec(t, e, "INSERT INTO c VALUES (1, 'ann'), (2, 'bob')")
	mustExec(t, e, "INSERT INTO o VALUES (10, 1)")
	res := mustExec(t, e, "SELECT c.name, o.id FROM c LEFT JOIN o ON o.cid = c.id ORDER BY c.name")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[1][0].Str != "bob" || !res.Rows[1][1].IsNull() {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestJoinThreeWayWithAliases(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, e, "CREATE TABLE b (id INT PRIMARY KEY, aid INT)")
	mustExec(t, e, "CREATE TABLE c (id INT PRIMARY KEY, bid INT)")
	mustExec(t, e, "INSERT INTO a VALUES (1, 'x')")
	mustExec(t, e, "INSERT INTO b VALUES (2, 1)")
	mustExec(t, e, "INSERT INTO c VALUES (3, 2)")
	res := mustExec(t, e, "SELECT t1.v FROM a t1 JOIN b t2 ON t2.aid = t1.id JOIN c t3 ON t3.bid = t2.id")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestJoinNonEquality(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (id INT PRIMARY KEY)")
	mustExec(t, e, "CREATE TABLE b (id INT PRIMARY KEY)")
	mustExec(t, e, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, e, "INSERT INTO b VALUES (1), (2)")
	res := mustExec(t, e, "SELECT a.id, b.id FROM a JOIN b ON a.id < b.id")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, cat TEXT, n INT)")
	for i := 0; i < 100; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, 'cat%d', %d)", i, i%5, i))
	}
	mustExec(t, e, "CREATE INDEX idx_cat ON t (cat)")
	res := mustExec(t, e, "SELECT COUNT(*) FROM t WHERE cat = 'cat3'")
	if res.Rows[0][0].Int != 20 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	// Index stays coherent across updates and deletes.
	mustExec(t, e, "UPDATE t SET cat = 'cat0' WHERE id = 3")
	mustExec(t, e, "DELETE FROM t WHERE id = 8")
	res = mustExec(t, e, "SELECT COUNT(*) FROM t WHERE cat = 'cat3'")
	if res.Rows[0][0].Int != 18 {
		t.Errorf("count after update/delete = %v", res.Rows[0][0])
	}
}

func TestSelectStarAndTableStar(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, a TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'x')")
	res := mustExec(t, e, "SELECT * FROM t")
	if len(res.Cols) != 2 || res.Cols[0] != "id" {
		t.Errorf("cols = %v", res.Cols)
	}
	res = mustExec(t, e, "SELECT t.* FROM t")
	if len(res.Cols) != 2 {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestSelectNoFrom(t *testing.T) {
	e := newTestDB(t)
	res := mustExec(t, e, "SELECT 1 + 2, 'x'")
	if res.Rows[0][0].Int != 3 || res.Rows[0][1].Str != "x" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY)")
	if _, err := e.Exec("app", "SELECT * FROM missing"); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.Exec("app", "SELECT nope FROM t"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("err = %v", err)
	}
}

func TestDropTable(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, e, "DROP TABLE t")
	if _, err := e.Exec("app", "SELECT * FROM t"); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
	mustExec(t, e, "DROP TABLE IF EXISTS t")
	if _, err := e.Exec("app", "DROP TABLE t"); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	e := newTestDB(t)
	res := mustExec(t, e, "SELECT 1 / 0")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("1/0 = %v, want NULL", res.Rows[0][0])
	}
}

func TestManyRowsSpanningPages(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")
	const n = 5 * pageCapacity
	tx, err := e.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tx.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT COUNT(*), SUM(n) FROM t")
	if res.Rows[0][0].Int != n {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	want := int64(n * (n - 1)) // sum of 2i for i in [0,n)
	if res.Rows[0][1].Int != want {
		t.Errorf("sum = %v, want %d", res.Rows[0][1], want)
	}
	// Point reads on sealed pages.
	res = mustExec(t, e, "SELECT n FROM t WHERE id = 100")
	if res.Rows[0][0].Int != 200 {
		t.Errorf("n = %v", res.Rows[0][0])
	}
}
