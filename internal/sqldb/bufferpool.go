package sqldb

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// PageKey identifies a page across all tables of one engine.
type PageKey struct {
	Table string
	Page  int
}

// PoolStats reports buffer-pool activity counters.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/(hits+misses), or 0 when no accesses were made.
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BufferPool is a fixed-capacity LRU cache of decoded pages, one per engine.
// It models the DBMS buffer pool of the paper's MySQL instances: a hit serves
// already-decoded rows, a miss pays the decode cost of the page's disk format
// plus an optional simulated disk latency. The pool is the mechanism that
// makes the paper's read-routing options (1/2/3) perform differently — routing
// all of a database's reads to one replica keeps that replica's pool warm.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	entries  map[PageKey]*list.Element
	lru      *list.List // front = most recently used

	missLatency time.Duration

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type poolEntry struct {
	key   PageKey
	slots []pageSlot
}

// NewBufferPool creates a pool holding at most capacity decoded pages.
// A capacity of 0 or less disables caching entirely (every access is a miss).
// missLatency is added to every miss to simulate disk I/O; zero disables it.
func NewBufferPool(capacity int, missLatency time.Duration) *BufferPool {
	return &BufferPool{
		capacity:    capacity,
		entries:     make(map[PageKey]*list.Element),
		lru:         list.New(),
		missLatency: missLatency,
	}
}

// Get returns the decoded slots for key, loading and decoding via load on a
// miss. The returned slice is shared with the pool; callers must not mutate
// it (the table layer copies rows before handing them to transactions).
func (p *BufferPool) Get(key PageKey, load func() []byte) ([]pageSlot, error) {
	p.mu.Lock()
	if el, ok := p.entries[key]; ok {
		p.lru.MoveToFront(el)
		slots := el.Value.(*poolEntry).slots
		p.mu.Unlock()
		p.hits.Add(1)
		return slots, nil
	}
	p.mu.Unlock()

	// Miss: decode outside the pool mutex so concurrent misses overlap,
	// exactly as concurrent disk reads would.
	p.misses.Add(1)
	if p.missLatency > 0 {
		time.Sleep(p.missLatency)
	}
	encoded := load()
	slots, err := decodePage(encoded)
	if err != nil {
		return nil, err
	}

	if p.capacity <= 0 {
		return slots, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		// Raced with another loader; keep the resident copy.
		p.lru.MoveToFront(el)
		return el.Value.(*poolEntry).slots, nil
	}
	el := p.lru.PushFront(&poolEntry{key: key, slots: slots})
	p.entries[key] = el
	for p.lru.Len() > p.capacity {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.entries, oldest.Value.(*poolEntry).key)
		p.evictions.Add(1)
	}
	return slots, nil
}

// Put installs (or replaces) the decoded image of a page, used by the write
// path so that writes keep the cache coherent (write-through).
func (p *BufferPool) Put(key PageKey, slots []pageSlot) {
	if p.capacity <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		el.Value.(*poolEntry).slots = slots
		p.lru.MoveToFront(el)
		return
	}
	el := p.lru.PushFront(&poolEntry{key: key, slots: slots})
	p.entries[key] = el
	for p.lru.Len() > p.capacity {
		oldest := p.lru.Back()
		p.lru.Remove(oldest)
		delete(p.entries, oldest.Value.(*poolEntry).key)
		p.evictions.Add(1)
	}
}

// Invalidate drops a page from the pool.
func (p *BufferPool) Invalidate(key PageKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		p.lru.Remove(el)
		delete(p.entries, key)
	}
}

// InvalidateTable drops every cached page of a table (used by DROP TABLE).
func (p *BufferPool) InvalidateTable(table string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, el := range p.entries {
		if key.Table == table {
			p.lru.Remove(el)
			delete(p.entries, key)
		}
	}
}

// Len returns the number of resident pages.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Stats returns a snapshot of the pool counters.
func (p *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
	}
}
