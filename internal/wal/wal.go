// Package wal implements the platform's durability subsystem: a write-ahead
// log with binary frame encoding, a group-commit flush pipeline, fuzzy
// checkpoint support, and a recovery scanner that detects and truncates torn
// tails.
//
// The paper's recovery story (Section 4.3, Figures 8-9) re-creates a lost
// replica with a full dump-and-copy because the underlying MySQL redo log is
// assumed but never modeled. This package supplies that missing layer for the
// embedded engines in internal/sqldb: every write statement is logged before
// its transaction commits, the commit record is forced to the log (one
// simulated-fsync flush shared by all concurrently committing transactions)
// before locks are released, and a restarted machine rebuilds its state from
// the last complete checkpoint plus the log tail. Recovery cost becomes
// proportional to the log tail instead of the database size, which is what
// lets the cluster controller choose a fast log-replay recovery path over the
// paper's full Algorithm-1 copy.
//
// Frame format (all integers little-endian):
//
//	frame   := length(uint32) crc(uint32) payload
//	payload := type(uint8) lsn(uvarint) txn(uvarint) gid(uvarint)
//	           db(string) table(string) data(bytes)
//	string  := len(uvarint) bytes
//	bytes   := len(uvarint) bytes
//
// length counts payload bytes only; crc is the IEEE CRC32 of the payload.
// lsn is the byte offset of the frame's first length byte — a frame knows
// where it was written, so a frame replayed at the wrong offset (for example
// a duplicated final frame after a partial block rewrite) is detected and the
// tail is truncated there.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// RecordType identifies what a log record describes.
type RecordType uint8

// Record types. Begin/Statement/Prepare/Commit/Abort frames carry the
// transactional redo stream; CreateDB/DropDB frames log engine-level
// namespace changes (auto-committed, like DDL); the three checkpoint frame
// types bracket one fuzzy checkpoint.
const (
	// RecBegin marks the first write of a transaction.
	RecBegin RecordType = iota + 1
	// RecStatement carries one executed write statement as literal SQL.
	RecStatement
	// RecPrepare marks a transaction entering the PREPARED state of 2PC;
	// a prepared transaction with no later commit/abort record is in doubt
	// and survives restart.
	RecPrepare
	// RecCommit makes a transaction durable; it is flushed before the
	// transaction's locks are released.
	RecCommit
	// RecAbort marks a rolled-back transaction.
	RecAbort
	// RecCreateDB logs creation of a database namespace.
	RecCreateDB
	// RecDropDB logs removal of a database namespace.
	RecDropDB
	// RecCheckpointBegin opens a fuzzy checkpoint.
	RecCheckpointBegin
	// RecCheckpointTable carries one table image captured under that
	// table's read lock, together with the log position the image is
	// consistent with.
	RecCheckpointTable
	// RecCheckpointEnd closes a checkpoint; only checkpoints whose end
	// frame made it to the log are used by recovery.
	RecCheckpointEnd
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecStatement:
		return "statement"
	case RecPrepare:
		return "prepare"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecCreateDB:
		return "create_db"
	case RecDropDB:
		return "drop_db"
	case RecCheckpointBegin:
		return "ckpt_begin"
	case RecCheckpointTable:
		return "ckpt_table"
	case RecCheckpointEnd:
		return "ckpt_end"
	default:
		return fmt.Sprintf("rec(%d)", uint8(t))
	}
}

// Record is one decoded log record. Txn is the engine-local transaction ID
// (0 for auto-committed records such as DDL); GID is the caller-assigned
// global transaction ID correlating 2PC branches across machines. DB and
// Table scope the record; Data carries the statement SQL or checkpoint
// payload.
type Record struct {
	Type  RecordType
	Txn   uint64
	GID   uint64
	DB    string
	Table string
	Data  []byte
}

// RecordAt is a record together with the LSN (byte offset) it was read from.
type RecordAt struct {
	LSN int64
	Record
}

// frameHeaderSize is the fixed prefix of every frame: length + crc.
const frameHeaderSize = 8

// maxFrameSize bounds a single frame; a decoded length beyond it is treated
// as corruption rather than an allocation request.
const maxFrameSize = 1 << 30

// crcTable is the polynomial used for frame checksums.
var crcTable = crc32.IEEETable

// AppendUvarint appends v to buf in unsigned varint encoding.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Uvarint decodes an unsigned varint from buf, returning the value and the
// remaining bytes.
func Uvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: bad uvarint")
	}
	return v, buf[n:], nil
}

// TakeString decodes a length-prefixed string.
func TakeString(buf []byte) (string, []byte, error) {
	b, rest, err := TakeBytes(buf)
	return string(b), rest, err
}

// TakeBytes decodes a length-prefixed byte slice (shared with the input).
func TakeBytes(buf []byte) ([]byte, []byte, error) {
	n, rest, err := Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("wal: truncated bytes field")
	}
	return rest[:n], rest[n:], nil
}

// encodeFrame appends the full frame (header + payload) for rec at the given
// LSN to buf.
func encodeFrame(buf []byte, lsn int64, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	buf = append(buf, byte(rec.Type))
	buf = binary.AppendUvarint(buf, uint64(lsn))
	buf = binary.AppendUvarint(buf, rec.Txn)
	buf = binary.AppendUvarint(buf, rec.GID)
	buf = AppendString(buf, rec.DB)
	buf = AppendString(buf, rec.Table)
	buf = AppendBytes(buf, rec.Data)
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// decodeFrame decodes one frame starting at data[off], whose true offset in
// the log is lsn. It returns the record and the offset just past the frame.
// Any mismatch — short header, short payload, CRC failure, or a self-LSN
// that disagrees with the frame's position — is reported as an error; the
// caller treats the error position as the log's torn tail.
func decodeFrame(data []byte, off int64) (Record, int64, error) {
	var rec Record
	if int64(len(data))-off < frameHeaderSize {
		return rec, off, fmt.Errorf("wal: truncated frame header at %d", off)
	}
	length := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if length == 0 || length > maxFrameSize {
		return rec, off, fmt.Errorf("wal: implausible frame length %d at %d", length, off)
	}
	end := off + frameHeaderSize + int64(length)
	if end > int64(len(data)) {
		return rec, off, fmt.Errorf("wal: truncated frame payload at %d", off)
	}
	payload := data[off+frameHeaderSize : end]
	if crc32.Checksum(payload, crcTable) != crc {
		return rec, off, fmt.Errorf("wal: CRC mismatch at %d", off)
	}
	rec.Type = RecordType(payload[0])
	rest := payload[1:]
	selfLSN, rest, err := Uvarint(rest)
	if err != nil {
		return rec, off, err
	}
	if int64(selfLSN) != off {
		return rec, off, fmt.Errorf("wal: frame at %d claims LSN %d (duplicated or displaced frame)", off, selfLSN)
	}
	if rec.Txn, rest, err = Uvarint(rest); err != nil {
		return rec, off, err
	}
	if rec.GID, rest, err = Uvarint(rest); err != nil {
		return rec, off, err
	}
	if rec.DB, rest, err = TakeString(rest); err != nil {
		return rec, off, err
	}
	if rec.Table, rest, err = TakeString(rest); err != nil {
		return rec, off, err
	}
	if rec.Data, _, err = TakeBytes(rest); err != nil {
		return rec, off, err
	}
	return rec, end, nil
}

// Scan decodes every complete, checksummed frame in data. It returns the
// records in log order, the offset of the first byte that is not part of a
// valid frame (the good end), and whether bytes past the good end exist — a
// torn tail that recovery should truncate.
func Scan(data []byte) (recs []RecordAt, goodEnd int64, torn bool) {
	off := int64(0)
	for off < int64(len(data)) {
		rec, next, err := decodeFrame(data, off)
		if err != nil {
			return recs, off, true
		}
		recs = append(recs, RecordAt{LSN: off, Record: rec})
		off = next
	}
	return recs, off, false
}
