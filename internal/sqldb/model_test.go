package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestEngineMatchesModel is a model-based property test: a long random
// sequence of INSERT/UPDATE/DELETE/SELECT statements is applied both to the
// engine and to a naive in-memory model, and every result must agree. This
// covers the executor's access paths (PK point, secondary index, scan), the
// undo machinery (every few operations a transaction is rolled back instead
// of committed), and index maintenance.
func TestEngineMatchesModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModelTest(t, seed, 400)
		})
	}
}

type modelRow struct {
	a int64
	b string
}

func runModelTest(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine(DefaultConfig())
	if err := e.CreateDatabase("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("m", "CREATE TABLE t (id INT PRIMARY KEY, a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("m", "CREATE INDEX idx_a ON t (a)"); err != nil {
		t.Fatal(err)
	}

	model := make(map[int64]modelRow)

	for step := 0; step < steps; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // INSERT
			id := int64(rng.Intn(60))
			row := modelRow{a: int64(rng.Intn(10)), b: fmt.Sprintf("s%d", rng.Intn(5))}
			_, err := e.Exec("m", "INSERT INTO t VALUES (?, ?, ?)",
				NewInt(id), NewInt(row.a), NewText(row.b))
			_, exists := model[id]
			if exists && err == nil {
				t.Fatalf("step %d: duplicate insert id=%d succeeded", step, id)
			}
			if !exists {
				if err != nil {
					t.Fatalf("step %d: insert id=%d failed: %v", step, id, err)
				}
				model[id] = row
			}
		case 3, 4: // point UPDATE
			id := int64(rng.Intn(60))
			newA := int64(rng.Intn(10))
			res, err := e.Exec("m", "UPDATE t SET a = ? WHERE id = ?", NewInt(newA), NewInt(id))
			if err != nil {
				t.Fatalf("step %d: update: %v", step, err)
			}
			if row, ok := model[id]; ok {
				if res.Affected != 1 {
					t.Fatalf("step %d: update id=%d affected %d, want 1", step, id, res.Affected)
				}
				row.a = newA
				model[id] = row
			} else if res.Affected != 0 {
				t.Fatalf("step %d: update of missing id=%d affected %d", step, id, res.Affected)
			}
		case 5: // predicate UPDATE (scan path)
			lim := int64(rng.Intn(10))
			res, err := e.Exec("m", "UPDATE t SET b = 'bumped' WHERE a > ?", NewInt(lim))
			if err != nil {
				t.Fatalf("step %d: scan update: %v", step, err)
			}
			want := 0
			for id, row := range model {
				if row.a > lim {
					row.b = "bumped"
					model[id] = row
					want++
				}
			}
			if res.Affected != want {
				t.Fatalf("step %d: scan update affected %d, want %d", step, res.Affected, want)
			}
		case 6: // DELETE
			id := int64(rng.Intn(60))
			res, err := e.Exec("m", "DELETE FROM t WHERE id = ?", NewInt(id))
			if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			_, exists := model[id]
			if exists != (res.Affected == 1) {
				t.Fatalf("step %d: delete id=%d affected %d, exists=%v", step, id, res.Affected, exists)
			}
			delete(model, id)
		case 7: // rolled-back transaction: must leave no trace
			tx, err := e.Begin("m")
			if err != nil {
				t.Fatal(err)
			}
			id := int64(100 + rng.Intn(20))
			if _, err := tx.Exec("INSERT INTO t VALUES (?, 0, 'ghost')", NewInt(id)); err == nil {
				if _, err := tx.Exec("UPDATE t SET a = a + 100 WHERE a < 5"); err != nil && err != ErrDeadlock {
					t.Fatalf("step %d: txn update: %v", step, err)
				}
			}
			if err := tx.Rollback(); err != nil {
				t.Fatalf("step %d: rollback: %v", step, err)
			}
		case 8: // indexed SELECT
			a := int64(rng.Intn(10))
			res, err := e.Exec("m", "SELECT id FROM t WHERE a = ? ORDER BY id", NewInt(a))
			if err != nil {
				t.Fatalf("step %d: indexed select: %v", step, err)
			}
			var want []int64
			for id, row := range model {
				if row.a == a {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(res.Rows) != len(want) {
				t.Fatalf("step %d: indexed select a=%d got %d rows, want %d", step, a, len(res.Rows), len(want))
			}
			for i, id := range want {
				if res.Rows[i][0].Int != id {
					t.Fatalf("step %d: indexed select row %d = %v, want %d", step, i, res.Rows[i][0], id)
				}
			}
		default: // full verification
			verifyModel(t, e, model, step)
		}
	}
	verifyModel(t, e, model, steps)
}

// verifyModel compares the engine's full table contents against the model.
func verifyModel(t *testing.T, e *Engine, model map[int64]modelRow, step int) {
	t.Helper()
	res, err := e.Exec("m", "SELECT id, a, b FROM t ORDER BY id")
	if err != nil {
		t.Fatalf("step %d: verify select: %v", step, err)
	}
	if len(res.Rows) != len(model) {
		t.Fatalf("step %d: engine has %d rows, model %d", step, len(res.Rows), len(model))
	}
	for _, r := range res.Rows {
		id := r[0].Int
		m, ok := model[id]
		if !ok {
			t.Fatalf("step %d: engine row id=%d not in model", step, id)
		}
		if r[1].Int != m.a || r[2].Str != m.b {
			t.Fatalf("step %d: row id=%d = (%v,%v), model (%d,%q)", step, id, r[1], r[2], m.a, m.b)
		}
	}
	// Aggregates agree too.
	res, err = e.Exec("m", "SELECT COUNT(*), SUM(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, m := range model {
		sum += m.a
	}
	if res.Rows[0][0].Int != int64(len(model)) {
		t.Fatalf("step %d: COUNT = %v, want %d", step, res.Rows[0][0], len(model))
	}
	if len(model) > 0 && res.Rows[0][1].Int != sum {
		t.Fatalf("step %d: SUM = %v, want %d", step, res.Rows[0][1], sum)
	}
}
