package main

import (
	"encoding/json"
	"fmt"
	"os"

	"sdp/internal/experiments"
)

// runBenchGate re-runs the query-engine bench at the baseline's iteration
// count and fails if the point read latency regressed more than pct percent
// against the committed baseline. CI hardware differs from the machine that
// recorded the baseline, so the gate is deliberately loose: it catches
// structural regressions (a statement dropping off the compiled path, an
// allocation sneaking into the hot loop), not single-digit noise. A quick
// pass would be cheaper but measures a different thing — at 2000 iterations
// the one-time warmup costs dominate the mean and the comparison is
// meaningless.
func runBenchGate(baselinePath string, pct float64, seed int64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base experiments.SQLBench
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	if base.PointReadNsPerOp <= 0 {
		return fmt.Errorf("baseline %s has no point_read_ns_per_op", baselinePath)
	}

	res, _, err := experiments.RunSQLBench(experiments.Config{Seed: seed})
	if err != nil {
		return err
	}

	limit := base.PointReadNsPerOp * (1 + pct/100)
	fmt.Printf("point read: %.0f ns/op measured vs %.0f ns/op baseline (limit %.0f, +%.0f%%)\n",
		res.PointReadNsPerOp, base.PointReadNsPerOp, limit, pct)
	fmt.Printf("allocs/op: %.2f measured vs %.2f baseline; compiled fraction %.3f\n",
		res.PointReadAllocsPerOp, base.PointReadAllocsPerOp, res.CompiledFraction)
	if res.PointReadNsPerOp > limit {
		return fmt.Errorf("point read regressed: %.0f ns/op > %.0f ns/op (baseline %.0f +%.0f%%)",
			res.PointReadNsPerOp, limit, base.PointReadNsPerOp, pct)
	}
	return nil
}
