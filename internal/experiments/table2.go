package experiments

import (
	"fmt"

	"sdp/internal/sla"
	"sdp/internal/workload"
)

// Table2Row is one row of the paper's Table 2: a skew factor and the
// resulting workload averages and machine counts.
type Table2Row struct {
	Skew         float64
	AvgSizeMB    float64
	AvgTPS       float64
	MachinesUsed int // First-Fit (Algorithm 2)
	Optimal      int // exhaustive offline
	OptimalExact bool
	FFDecreasing int // ablation: offline First-Fit-Decreasing
	BestFit      int // ablation: Best-Fit
}

// Table2Result is the full sweep.
type Table2Result struct {
	Rows []Table2Row
	// NumDatabases is the number of databases placed per row.
	NumDatabases int
}

// RunTable2 reproduces Table 2: database sizes drawn from a Zipfian
// distribution over 200–1000 MB and throughputs over 0.1–10 TPS, with the
// skew factor swept over 0.4–2.0; databases are placed with the online
// First-Fit of Algorithm 2 and compared against the exhaustively computed
// optimal. Two classic offline heuristics are included as ablations.
func RunTable2(cfg Config) Table2Result {
	n := 12
	budget := 2_000_000
	if cfg.Quick {
		n = 8
		budget = 200_000
	}
	res := Table2Result{NumDatabases: n}
	for _, skew := range []float64{0.4, 0.8, 1.2, 1.6, 2.0} {
		// Common random numbers across skews: the same seed draws the same
		// underlying uniforms, so each database's size/TPS is non-increasing
		// in the skew factor and the paper's monotone trend is exact.
		w := workload.NewSLAWorkload(cfg.Seed, n, skew)
		dbs := make([]sla.Database, n)
		for i := 0; i < n; i++ {
			dbs[i] = sla.Database{
				Name:     fmt.Sprintf("db%d", i),
				Req:      sla.Profile(w.SizesMB[i], w.TPS[i]),
				Replicas: 1,
			}
		}
		ff, _, err := sla.PlaceAll(dbs)
		if err != nil {
			panic(err)
		}
		ffd, _, err := sla.PlaceAllFirstFitDecreasing(dbs)
		if err != nil {
			panic(err)
		}
		bf, _, err := sla.PlaceAllBestFit(dbs)
		if err != nil {
			panic(err)
		}
		opt := sla.Optimal(dbs, sla.UnitMachine("m").Cap, budget)
		res.Rows = append(res.Rows, Table2Row{
			Skew:         skew,
			AvgSizeMB:    w.AvgSizeMB(),
			AvgTPS:       w.AvgTPS(),
			MachinesUsed: ff,
			Optimal:      opt.Machines,
			OptimalExact: opt.Exact,
			FFDecreasing: ffd,
			BestFit:      bf,
		})
	}
	return res
}

// Render formats the sweep like the paper's Table 2, with the ablation
// columns appended.
func (r Table2Result) Render() *Table {
	t := &Table{
		Title: fmt.Sprintf("Table 2: SLA experimental settings and results (%d databases)", r.NumDatabases),
		Header: []string{
			"Skew Factor", "Avg Size (MB)", "Avg TPS",
			"# Machines (First-Fit)", "Optimal", "FFD", "Best-Fit",
		},
	}
	for _, row := range r.Rows {
		opt := fmt.Sprintf("%d", row.Optimal)
		if !row.OptimalExact {
			opt += "*"
		}
		t.AddRow(
			f1(row.Skew), fmt.Sprintf("%.0f", row.AvgSizeMB), f2(row.AvgTPS),
			fmt.Sprintf("%d", row.MachinesUsed), opt,
			fmt.Sprintf("%d", row.FFDecreasing), fmt.Sprintf("%d", row.BestFit),
		)
	}
	return t
}
