package sqldb

import (
	"strings"
	"testing"
)

func TestExplainAccessPaths(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, cat TEXT, n INT)")
	mustExec(t, e, "CREATE INDEX idx_cat ON t (cat)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a', 1), (2, 'b', 2)")

	cases := []struct {
		sql    string
		access string
	}{
		{"EXPLAIN SELECT * FROM t WHERE id = 1", "point"},
		{"EXPLAIN SELECT * FROM t WHERE cat = 'a'", "index"},
		{"EXPLAIN SELECT * FROM t WHERE n > 1", "scan"},
		{"EXPLAIN SELECT * FROM t", "scan"},
		{"EXPLAIN SELECT * FROM t WHERE id > 1", "range"},
		{"EXPLAIN SELECT * FROM t WHERE id BETWEEN 1 AND 2", "range"},
		{"EXPLAIN SELECT * FROM t WHERE cat > 'a' AND cat <= 'm'", "range"},
		{"EXPLAIN UPDATE t SET n = 0 WHERE id = 2", "point"},
		{"EXPLAIN UPDATE t SET n = 0 WHERE id >= 2", "range"},
		{"EXPLAIN DELETE FROM t WHERE n < 0", "scan"},
		{"EXPLAIN DELETE FROM t WHERE id < 2", "range"},
		{"EXPLAIN INSERT INTO t VALUES (3, 'c', 3)", "insert"},
	}
	for _, c := range cases {
		res := mustExec(t, e, c.sql)
		if len(res.Rows) == 0 {
			t.Fatalf("%s: no plan rows", c.sql)
		}
		if got := res.Rows[0][1].Str; got != c.access {
			t.Errorf("%s: access = %q, want %q", c.sql, got, c.access)
		}
	}
}

func TestExplainRangeDetail(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY, n INT)")

	res := mustExec(t, e, "EXPLAIN SELECT * FROM t WHERE id BETWEEN 3 AND 7")
	detail := res.Rows[0][2].Str
	if !strings.Contains(detail, "id >= 3") || !strings.Contains(detail, "id <= 7") {
		t.Errorf("BETWEEN detail = %q, want inclusive bounds on both sides", detail)
	}
	res = mustExec(t, e, "EXPLAIN SELECT * FROM t WHERE id > 3")
	if detail := res.Rows[0][2].Str; !strings.Contains(detail, "id > 3") {
		t.Errorf("one-sided detail = %q", detail)
	}
	// Parameterised bounds render as placeholders at EXPLAIN time when no
	// binding is supplied.
	res = mustExec(t, e, "EXPLAIN SELECT * FROM t WHERE id < ?", NewInt(9))
	if detail := res.Rows[0][2].Str; !strings.Contains(detail, "id < 9") {
		t.Errorf("bound param detail = %q", detail)
	}
}

func TestExplainJoinStrategies(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (id INT PRIMARY KEY, v INT)")
	mustExec(t, e, "CREATE TABLE b (id INT PRIMARY KEY, aid INT)")

	res := mustExec(t, e, "EXPLAIN SELECT * FROM a JOIN b ON b.aid = a.id")
	if len(res.Rows) != 2 {
		t.Fatalf("plan rows = %d", len(res.Rows))
	}
	if res.Rows[1][1].Str != "hash-join" {
		t.Errorf("equality join strategy = %q", res.Rows[1][1].Str)
	}
	res = mustExec(t, e, "EXPLAIN SELECT * FROM a JOIN b ON b.aid < a.id")
	if res.Rows[1][1].Str != "nested-loop" {
		t.Errorf("inequality join strategy = %q", res.Rows[1][1].Str)
	}
	if out := ExplainString(res); !strings.Contains(out, "nested-loop") {
		t.Errorf("ExplainString output: %q", out)
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, e, "EXPLAIN INSERT INTO t VALUES (1)")
	res := mustExec(t, e, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != 0 {
		t.Errorf("EXPLAIN INSERT inserted rows: %v", res.Rows[0][0])
	}
	mustExec(t, e, "INSERT INTO t VALUES (1)")
	mustExec(t, e, "EXPLAIN DELETE FROM t WHERE id = 1")
	res = mustExec(t, e, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int != 1 {
		t.Errorf("EXPLAIN DELETE deleted rows: %v", res.Rows[0][0])
	}
}

func TestExplainErrors(t *testing.T) {
	e := newTestDB(t)
	if _, err := e.Exec("app", "EXPLAIN SELECT * FROM missing"); err == nil {
		t.Error("EXPLAIN over missing table succeeded")
	}
	if _, err := e.Exec("app", "EXPLAIN BEGIN"); err == nil {
		t.Error("EXPLAIN BEGIN succeeded")
	}
}
