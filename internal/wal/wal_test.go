package wal

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"sdp/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecBegin, Txn: 1, GID: 99, DB: "bank"},
		{Type: RecStatement, Txn: 1, GID: 99, DB: "bank", Table: "accounts", Data: []byte("INSERT INTO accounts VALUES (1, 'a')")},
		{Type: RecCommit, Txn: 1, GID: 99, DB: "bank"},
		{Type: RecAbort, Txn: 2, DB: "bank"},
		{Type: RecPrepare, Txn: 3, GID: 7, DB: "bank"},
		{Type: RecCreateDB, DB: "other"},
		{Type: RecDropDB, DB: "other"},
		{Type: RecCheckpointBegin},
		{Type: RecCheckpointTable, DB: "bank", Table: "accounts", Data: bytes.Repeat([]byte{0xAB}, 1000)},
		{Type: RecCheckpointEnd},
		{Type: RecStatement, DB: "", Table: "", Data: nil}, // all-empty fields
	}
	var buf []byte
	var lsns []int64
	for _, r := range recs {
		lsns = append(lsns, int64(len(buf)))
		buf = encodeFrame(buf, int64(len(buf)), r)
	}
	got, goodEnd, torn := Scan(buf)
	if torn {
		t.Fatalf("clean log reported torn")
	}
	if goodEnd != int64(len(buf)) {
		t.Fatalf("goodEnd = %d, want %d", goodEnd, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i, g := range got {
		if g.LSN != lsns[i] {
			t.Errorf("record %d: LSN = %d, want %d", i, g.LSN, lsns[i])
		}
		w := recs[i]
		if g.Type != w.Type || g.Txn != w.Txn || g.GID != w.GID || g.DB != w.DB || g.Table != w.Table || !bytes.Equal(g.Data, w.Data) {
			t.Errorf("record %d: got %+v, want %+v", i, g.Record, w)
		}
	}
}

func TestScanTornTail(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = encodeFrame(buf, int64(len(buf)), Record{Type: RecCommit, Txn: uint64(i + 1), DB: "db"})
	}
	whole := int64(len(buf))
	// Chop anywhere inside the final frame: the first four records survive.
	for cut := whole - 1; cut > whole-12; cut-- {
		recs, goodEnd, torn := Scan(buf[:cut])
		if !torn {
			t.Fatalf("cut at %d: torn not reported", cut)
		}
		if len(recs) != 4 {
			t.Fatalf("cut at %d: %d records survived, want 4", cut, len(recs))
		}
		if goodEnd <= 0 || goodEnd >= cut {
			t.Fatalf("cut at %d: goodEnd = %d", cut, goodEnd)
		}
	}
}

func TestScanCorruptTail(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = encodeFrame(buf, int64(len(buf)), Record{Type: RecCommit, Txn: uint64(i + 1), DB: "db"})
	}
	// Flip a byte in the last frame's payload: CRC must reject it.
	bad := append([]byte{}, buf...)
	bad[len(bad)-1] ^= 0xFF
	recs, _, torn := Scan(bad)
	if !torn || len(recs) != 2 {
		t.Fatalf("corrupt tail: torn=%v records=%d, want torn=true records=2", torn, len(recs))
	}
}

func TestScanDuplicatedFrame(t *testing.T) {
	s := NewMemStore()
	l := New(s, Config{}, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.AppendSync(Record{Type: RecCommit, Txn: uint64(i + 1), DB: "db"}); err != nil {
			t.Fatal(err)
		}
	}
	s.DuplicateLast()
	recs, torn, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// The duplicated frame sits at the wrong offset, so its self-LSN gives it
	// away; the three originals survive.
	if !torn || len(recs) != 3 {
		t.Fatalf("duplicated frame: torn=%v records=%d, want torn=true records=3", torn, len(recs))
	}
}

func TestRecoverRealignsAppendPosition(t *testing.T) {
	s := NewMemStore()
	l := New(s, Config{}, nil)
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 1, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Type: RecCommit, Txn: 2, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	s.Crash(3) // unsynced record lost, 3 torn bytes survive
	recs, torn, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(recs) != 1 {
		t.Fatalf("after crash: torn=%v records=%d, want torn=true records=1", torn, len(recs))
	}
	// Appends continue cleanly from the truncated end.
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 3, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	recs, torn, err = l.Recover()
	if err != nil || torn {
		t.Fatalf("second recover: err=%v torn=%v", err, torn)
	}
	if len(recs) != 2 || recs[1].Txn != 3 {
		t.Fatalf("after re-append: %d records, want txns [1 3]", len(recs))
	}
}

func TestGroupCommitBatchesFlushes(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	l := New(NewMemStore(), Config{FlushLatency: 2_000_000}, m) // 2ms
	const committers = 16
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.AppendSync(Record{Type: RecCommit, Txn: uint64(i + 1), DB: "db"}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	flushes := m.Flushes.Value()
	if flushes == 0 || flushes >= committers {
		t.Fatalf("group commit: %d flushes for %d committers, want 1..%d", flushes, committers, committers-1)
	}
}

func TestNoGroupCommitFlushesPerCommitter(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	l := New(NewMemStore(), Config{NoGroupCommit: true}, m)
	const committers = 8
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.AppendSync(Record{Type: RecCommit, Txn: uint64(i + 1), DB: "db"}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if flushes := m.Flushes.Value(); flushes != committers {
		t.Fatalf("no group commit: %d flushes for %d committers, want %d", flushes, committers, committers)
	}
}

func TestMemStoreFailAfterStopsLog(t *testing.T) {
	s := NewMemStore()
	l := New(s, Config{}, nil)
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 1, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	s.SetFailAfter(s.Size() + 4) // next frame dies partway through
	if _, err := l.Append(Record{Type: RecCommit, Txn: 2, DB: "db"}); err == nil {
		t.Fatal("append past fault point succeeded")
	}
	// The error is sticky until recovery.
	if _, err := l.Append(Record{Type: RecCommit, Txn: 3, DB: "db"}); err == nil {
		t.Fatal("append after store failure succeeded")
	}
	s.SetFailAfter(-1)
	recs, torn, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(recs) != 1 || recs[0].Txn != 1 {
		t.Fatalf("recover after fault: torn=%v records=%d", torn, len(recs))
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l := New(s, Config{}, nil)
	for i := 0; i < 10; i++ {
		if _, err := l.AppendSync(Record{Type: RecCommit, Txn: uint64(i + 1), DB: "db"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen, as a restart would, and scan.
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, torn, err := New(s2, Config{}, nil).Recover()
	if err != nil || torn {
		t.Fatalf("reopen: err=%v torn=%v", err, torn)
	}
	if len(recs) != 10 || recs[9].Txn != 10 {
		t.Fatalf("reopen: %d records", len(recs))
	}
	// Truncate mid-record on the real file; recovery repairs it.
	if err := s2.Truncate(s2.Size() - 3); err != nil {
		t.Fatal(err)
	}
	recs, torn, err = New(s2, Config{}, nil).Recover()
	if err != nil || !torn || len(recs) != 9 {
		t.Fatalf("after file truncate: err=%v torn=%v records=%d", err, torn, len(recs))
	}
}

// TestSealStopsAppends models the machine-crash sequence (engine closed,
// log sealed, unsynced tail truncated): a straggling goroutine holding the
// dead log must get ErrSealed rather than write a displaced frame into the
// store a successor log now owns.
func TestSealStopsAppends(t *testing.T) {
	s := NewMemStore()
	l := New(s, Config{}, nil)
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 1, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	// An appended-but-unsynced record is the pre-crash in-flight tail.
	if _, err := l.Append(Record{Type: RecCommit, Txn: 2, DB: "db"}); err != nil {
		t.Fatal(err)
	}
	l.Seal()
	s.Crash(0) // drop the unsynced tail, as Machine.fail does

	if _, err := l.Append(Record{Type: RecCommit, Txn: 3, DB: "db"}); !errors.Is(err, ErrSealed) {
		t.Fatalf("append on sealed log: err = %v, want ErrSealed", err)
	}
	if _, err := l.AppendSync(Record{Type: RecCommit, Txn: 4, DB: "db"}); !errors.Is(err, ErrSealed) {
		t.Fatalf("appendsync on sealed log: err = %v, want ErrSealed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrSealed) {
		t.Fatalf("sync on sealed log: err = %v, want ErrSealed", err)
	}

	// A successor log over the same store (the restarted engine) recovers
	// exactly the durable prefix and keeps working.
	l2 := New(s, Config{}, nil)
	recs, torn, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if torn || len(recs) != 1 || recs[0].Txn != 1 {
		t.Fatalf("recover after seal+crash: torn=%v records=%d", torn, len(recs))
	}
	if _, err := l2.AppendSync(Record{Type: RecCommit, Txn: 5, DB: "db"}); err != nil {
		t.Fatalf("successor log append: %v", err)
	}
}

// TestSealSerializesWithConcurrentAppends hammers a log with appenders
// while sealing it: once Seal returns, the store's length must never move
// again — no straggler writes a frame after the crash point.
func TestSealSerializesWithConcurrentAppends(t *testing.T) {
	s := NewMemStore()
	l := New(s, Config{}, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				if _, err := l.Append(Record{Type: RecCommit, Txn: i, DB: "db"}); err != nil {
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}
	l.Seal()
	sizeAtSeal := s.Size()
	close(stop)
	wg.Wait()
	if got := s.Size(); got != sizeAtSeal {
		t.Fatalf("store grew after Seal returned: %d -> %d", sizeAtSeal, got)
	}
}
