package wal

import (
	"errors"
	"sync"
	"time"

	"sdp/internal/obs"
)

// ErrSealed is the sticky error of a log that has been sealed by a machine
// crash: the store it wrote to is no longer its to touch.
var ErrSealed = errors.New("wal: log sealed by crash")

// Config tunes a Log.
type Config struct {
	// FlushLatency is an optional simulated fsync duration added to every
	// flush, mirroring the buffer pool's MissLatency knob. With a non-zero
	// latency the benefit of group commit — many committers amortising one
	// flush — becomes measurable.
	FlushLatency time.Duration

	// NoGroupCommit disables the group-commit pipeline: every Sync performs
	// its own flush instead of piggybacking on an in-flight one. Used as the
	// baseline in the -bench-wal experiment.
	NoGroupCommit bool

	// Compact enables log-head truncation after full checkpoints: once a
	// checkpoint covering every database has a durable end frame, everything
	// before its begin frame is unreachable by recovery and Compact drops it
	// (see Log.Compact). Keeps log size — and restart scan cost — bounded by
	// the data written since the last checkpoint instead of total history.
	Compact bool
}

// Metrics holds the log's resolved observability instruments. All fields are
// optional; NewMetrics resolves the wal_* families documented in
// OBSERVABILITY.md on a registry.
type Metrics struct {
	// Flushes counts physical flushes (simulated fsyncs).
	Flushes *obs.Counter
	// FlushBatch observes, per flush, how many committers it satisfied.
	FlushBatch *obs.Histogram
	// AppendedBytes counts bytes appended to the log.
	AppendedBytes *obs.Counter
	// TornTruncations counts torn tails truncated during recovery scans.
	TornTruncations *obs.Counter
	// Compactions counts dead log heads dropped after full checkpoints.
	Compactions *obs.Counter
	// ReplaySeconds observes log-replay durations during engine recovery.
	ReplaySeconds *obs.Histogram
}

// BatchBuckets are the flush batch-size histogram bounds (committers per
// flush).
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// NewMetrics resolves the wal_* instrument families on reg. Machines of one
// cluster share the registry, so the families aggregate over all engines.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Flushes: reg.Counter("wal_flush_total",
			"Physical log flushes (simulated fsyncs); with group commit, many commits share one flush"),
		FlushBatch: reg.Histogram("wal_flush_batch_size",
			"Committers satisfied per flush (group-commit batch size)", BatchBuckets),
		AppendedBytes: reg.Counter("wal_appended_bytes_total",
			"Bytes appended to write-ahead logs"),
		TornTruncations: reg.Counter("wal_torn_truncations_total",
			"Torn log tails detected and truncated during recovery"),
		Compactions: reg.Counter("wal_compactions_total",
			"Dead log heads dropped after full checkpoints (log compaction)"),
		ReplaySeconds: reg.Histogram("wal_replay_seconds",
			"Duration of checkpoint-restore plus log replay during engine recovery", nil),
	}
}

// Log is a write-ahead log over a Store. Append buffers a record; Sync
// forces everything appended so far, batching all concurrently syncing
// committers into a single store flush (group commit). A Log is safe for
// concurrent use.
type Log struct {
	store   Store
	cfg     Config
	metrics *Metrics

	mu       sync.Mutex
	cond     *sync.Cond
	size     int64  // bytes appended (== store size while healthy)
	syncedTo int64  // bytes known durable
	syncing  bool   // a flush is in flight
	waiting  int    // Sync calls currently batched or waiting
	gen      uint64 // bumped by Compact; invalidates waiters' byte targets
	err      error  // sticky store error
}

// New creates a log over store. Existing store contents are retained:
// appends continue at the current end. metrics may be nil.
func New(store Store, cfg Config, metrics *Metrics) *Log {
	l := &Log{store: store, cfg: cfg, metrics: metrics, size: store.Size(), syncedTo: store.Size()}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Config returns the log's configuration.
func (l *Log) Config() Config { return l.cfg }

// Store exposes the underlying store (crash injection in tests).
func (l *Log) Store() Store { return l.store }

// Size returns the number of bytes appended so far.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Append encodes rec as a frame and appends it, buffered: the record is not
// durable until a later Sync covers it. It returns the record's LSN.
func (l *Log) Append(rec Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	lsn := l.size
	frame := encodeFrame(nil, lsn, rec)
	if _, err := l.store.Append(frame); err != nil {
		l.err = err
		return 0, err
	}
	l.size += int64(len(frame))
	if l.metrics != nil {
		l.metrics.AppendedBytes.Add(uint64(len(frame)))
	}
	return lsn, nil
}

// AppendSync appends rec and forces it (and everything before it) to durable
// storage via the group-commit pipeline.
func (l *Log) AppendSync(rec Record) (int64, error) {
	lsn, err := l.Append(rec)
	if err != nil {
		return 0, err
	}
	return lsn, l.Sync()
}

// Sync makes every byte appended so far durable. Concurrent callers form a
// commit group: one of them (the leader) performs the physical flush — paying
// the configured FlushLatency once — and the rest return when the flush that
// covers their bytes completes. With NoGroupCommit set, every caller flushes
// individually.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.size
	if l.cfg.NoGroupCommit {
		// Serial flushes: wait for any in-flight flush, then do our own even
		// if a concurrent flush already covered our bytes — this is what a
		// commit path without group commit pays.
		for l.syncing && l.err == nil {
			l.cond.Wait()
		}
		if l.err != nil {
			return l.err
		}
		l.flushLocked(l.size, 1)
		return l.err
	}
	l.waiting++
	gen := l.gen
	// A generation bump means Compact rewrote and synced the whole store
	// while this caller waited: its record is durable, and its byte target is
	// meaningless in the rewritten log's coordinates.
	for l.syncedTo < target && l.err == nil && l.gen == gen {
		if l.syncing {
			l.cond.Wait()
			continue
		}
		// Become the leader: flush everything appended so far on behalf of
		// every waiter that arrived before this moment.
		l.flushLocked(l.size, l.waiting)
	}
	l.waiting--
	return l.err
}

// flushLocked performs one physical flush covering the first flushTo bytes,
// recording batch committers against it. Called with l.mu held; the mutex is
// released for the store call so appends (not syncs) proceed during the
// flush.
func (l *Log) flushLocked(flushTo int64, batch int) {
	l.syncing = true
	l.mu.Unlock()
	if l.cfg.FlushLatency > 0 {
		time.Sleep(l.cfg.FlushLatency)
	}
	err := l.store.Sync()
	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.err = err
	} else if flushTo > l.syncedTo {
		l.syncedTo = flushTo
	}
	if l.metrics != nil {
		l.metrics.Flushes.Inc()
		l.metrics.FlushBatch.Observe(float64(batch))
	}
	l.cond.Broadcast()
}

// Seal permanently fails the log: every later Append or Sync returns
// ErrSealed. A machine crash seals the dying engine's log before truncating
// the store's unsynced tail. Without the seal, a statement still executing on
// the dead engine could append a frame afterwards: its embedded LSN (taken
// from this log's stale size) would disagree with its store offset, and the
// next recovery scan would mistake the displaced frame for a torn tail —
// truncating durable commits and checkpoints behind it. Seal serialises with
// in-flight appends on the log mutex, so once it returns nothing more reaches
// the store through this log.
func (l *Log) Seal() {
	l.mu.Lock()
	if l.err == nil {
		l.err = ErrSealed
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Compact drops the log's dead head. After a checkpoint covering every
// database has a durable end frame, no record before its begin frame can
// influence recovery: every table's state is in the checkpoint's images,
// namespace history up to each marker is reflected in the marker itself, and
// (because table images are taken under table locks) no transaction that was
// still unresolved when the checkpoint completed has statements before it.
// Compact verifies those conditions from the records themselves and, when
// they hold, rewrites the store to contain only the frames from the begin
// frame onward — re-encoded, since frames embed their own offset — and syncs
// it. When any condition fails (a database dropped mid-checkpoint, an
// unresolved prepared transaction, no complete checkpoint yet) it leaves the
// log untouched and reports false.
//
// The rewrite models a checkpoint-truncated log on a simulated disk with
// truncate-then-append; a production file store would write the surviving
// tail to a fresh file and atomically swap it in.
func (l *Log) Compact() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return false, l.err
	}
	for l.syncing {
		// Let any in-flight flush finish: it captured byte offsets of the
		// pre-compaction log.
		l.cond.Wait()
		if l.err != nil {
			return false, l.err
		}
	}
	data, err := l.store.Contents()
	if err != nil {
		l.err = err
		return false, err
	}
	recs, _, torn := Scan(data)
	if torn {
		return false, nil // never written by this log; leave repair to Recover
	}

	// Find the last complete checkpoint.
	begin, end := -1, -1
	open := -1
	for i, r := range recs {
		switch r.Type {
		case RecCheckpointBegin:
			open = i
		case RecCheckpointEnd:
			if open >= 0 {
				begin, end = open, i
				open = -1
			}
		}
	}
	if begin <= 0 {
		return false, nil // no complete checkpoint, or nothing before it
	}
	beginLSN := recs[begin].LSN

	// Every database with records before the checkpoint must be covered by
	// one of its namespace markers — or have been dropped before it, leaving
	// nothing to lose.
	markers := make(map[string]bool)
	for _, r := range recs[begin+1 : end] {
		if r.Type == RecCheckpointTable && r.Table == "" {
			markers[r.DB] = true
		}
	}
	lastNS := make(map[string]RecordType)
	referenced := make(map[string]bool)
	for _, r := range recs[:begin] {
		if r.DB == "" {
			continue
		}
		referenced[r.DB] = true
		if r.Type == RecCreateDB || r.Type == RecDropDB {
			lastNS[r.DB] = r.Type
		}
	}
	for db := range referenced {
		if !markers[db] && lastNS[db] != RecDropDB {
			return false, nil
		}
	}

	// No transaction with records before the begin frame may still matter:
	// its outcome must not live past the checkpoint (a resolution there may
	// need the compacted statements on a later recovery), and a prepared
	// transaction must not be unresolved (in doubt).
	headTxns := make(map[uint64]uint64) // txn id -> gid, for txns with head records
	prepared := make(map[uint64]bool)
	outcomeTxn := make(map[uint64]int64)
	outcomeGID := make(map[uint64]int64)
	for _, r := range recs {
		switch r.Type {
		case RecBegin, RecStatement:
			if r.Txn != 0 && r.LSN < beginLSN {
				headTxns[r.Txn] = r.GID
			}
		case RecPrepare:
			if r.LSN < beginLSN {
				prepared[r.Txn] = true
			}
		case RecCommit, RecAbort:
			if r.Txn != 0 {
				outcomeTxn[r.Txn] = r.LSN
			}
			if r.GID != 0 {
				outcomeGID[r.GID] = r.LSN
			}
		}
	}
	for txn, gid := range headTxns {
		lsn, decided := outcomeTxn[txn]
		if !decided && gid != 0 {
			lsn, decided = outcomeGID[gid]
		}
		if decided && lsn >= beginLSN {
			return false, nil
		}
		if !decided && prepared[txn] {
			return false, nil
		}
	}

	// Rebuild the store from the begin frame onward. Frames embed their own
	// offset, so each surviving record is re-encoded at its new position.
	var buf []byte
	for _, r := range recs[begin:] {
		buf = encodeFrame(buf, int64(len(buf)), r.Record)
	}
	if err := l.store.Truncate(0); err != nil {
		l.err = err
		return false, err
	}
	if _, err := l.store.Append(buf); err != nil {
		l.err = err
		return false, err
	}
	if err := l.store.Sync(); err != nil {
		l.err = err
		return false, err
	}
	l.size = int64(len(buf))
	l.syncedTo = l.size
	l.gen++
	if l.metrics != nil {
		l.metrics.Compactions.Inc()
	}
	l.cond.Broadcast()
	return true, nil
}

// Recover scans the durable contents of the log, truncating any torn tail
// (incomplete, corrupt, or displaced final frames) from the store, and
// returns the surviving records in log order along with whether a truncation
// happened. It also re-aligns the log's append position with the store, so a
// Log can keep appending after recovery.
func (l *Log) Recover() ([]RecordAt, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := l.store.Contents()
	if err != nil {
		return nil, false, err
	}
	recs, goodEnd, torn := Scan(data)
	if torn {
		if err := l.store.Truncate(goodEnd); err != nil {
			return nil, true, err
		}
		if l.metrics != nil {
			l.metrics.TornTruncations.Inc()
		}
	}
	l.size = goodEnd
	l.syncedTo = goodEnd
	l.err = nil
	return recs, torn, nil
}
