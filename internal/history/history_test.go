package history

import (
	"testing"

	"sdp/internal/sqldb"
)

func TestConflicts(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"db/t:1", "db/t:1", true},
		{"db/t:1", "db/t:2", false},
		{"db/t", "db/t:1", true},
		{"db/t:1", "db/t", true},
		{"db/t", "db/t", true},
		{"db/t", "db/u:1", false},
		{"db/t:1", "db2/t:1", false},
	}
	for _, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("Conflicts(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAcyclicSerialExecution(t *testing.T) {
	ops := []Op{
		{Site: "m1", Seq: 1, Txn: 1, Write: false, Object: "db/t:x"},
		{Site: "m1", Seq: 2, Txn: 1, Write: true, Object: "db/t:y"},
		{Site: "m1", Seq: 3, Txn: 2, Write: false, Object: "db/t:y"},
		{Site: "m1", Seq: 4, Txn: 2, Write: true, Object: "db/t:x"},
	}
	g := BuildGraph(ops, map[uint64]bool{1: true, 2: true})
	if !g.Serializable() {
		t.Fatalf("serial execution reported non-serializable: %v", g.Cycle())
	}
	// There must be edges T1->T2 on both objects.
	if _, ok := g.Edges[1][2]; !ok {
		t.Error("missing edge T1->T2")
	}
}

// TestPaperAnomaly reproduces the exact schedule from Section 3.1 of the
// paper, which is locally serializable on each machine but globally cyclic.
func TestPaperAnomaly(t *testing.T) {
	ops := []Op{
		// Machine 1: r1(x), w1(y), [p1], w2(x), [p2, c2, c1]
		{Site: "m1", Seq: 1, Txn: 1, Write: false, Object: "db/t:x"},
		{Site: "m1", Seq: 2, Txn: 1, Write: true, Object: "db/t:y"},
		{Site: "m1", Seq: 3, Txn: 2, Write: true, Object: "db/t:x"},
		// Machine 2: r2(y), w2(x), [p2], w1(y), [p1, c2, c1]
		{Site: "m2", Seq: 1, Txn: 2, Write: false, Object: "db/t:y"},
		{Site: "m2", Seq: 2, Txn: 2, Write: true, Object: "db/t:x"},
		{Site: "m2", Seq: 3, Txn: 1, Write: true, Object: "db/t:y"},
	}
	committed := map[uint64]bool{1: true, 2: true}
	g := BuildGraph(ops, committed)
	cycle := g.Cycle()
	if cycle == nil {
		t.Fatal("paper's anomaly not detected as a cycle")
	}
	if g.Serializable() {
		t.Error("Serializable() inconsistent with Cycle()")
	}
	if desc := g.Describe(cycle); desc == "no cycle" {
		t.Errorf("Describe returned %q", desc)
	}
}

func TestUncommittedTxnsIgnored(t *testing.T) {
	ops := []Op{
		{Site: "m1", Seq: 1, Txn: 1, Write: false, Object: "db/t:x"},
		{Site: "m1", Seq: 2, Txn: 2, Write: true, Object: "db/t:x"},
		{Site: "m2", Seq: 1, Txn: 2, Write: false, Object: "db/t:y"},
		{Site: "m2", Seq: 2, Txn: 1, Write: true, Object: "db/t:y"},
	}
	// Both committed: cycle.
	g := BuildGraph(ops, map[uint64]bool{1: true, 2: true})
	if g.Serializable() {
		t.Fatal("expected cycle with both committed")
	}
	// Only T1 committed: T2's aborted ops must not contribute.
	g = BuildGraph(ops, map[uint64]bool{1: true})
	if !g.Serializable() {
		t.Fatal("aborted transaction contributed to the graph")
	}
	if len(g.Nodes) != 1 {
		t.Errorf("nodes = %v", g.Nodes)
	}
}

func TestReadsDoNotConflict(t *testing.T) {
	ops := []Op{
		{Site: "m1", Seq: 1, Txn: 1, Write: false, Object: "db/t:x"},
		{Site: "m1", Seq: 2, Txn: 2, Write: false, Object: "db/t:x"},
		{Site: "m1", Seq: 3, Txn: 1, Write: false, Object: "db/t:x"},
	}
	g := BuildGraph(ops, map[uint64]bool{1: true, 2: true})
	if len(g.Edges) != 0 {
		t.Errorf("read-read produced edges: %v", g.Edges)
	}
}

func TestTableScanConflictsWithRowWrite(t *testing.T) {
	ops := []Op{
		{Site: "m1", Seq: 1, Txn: 1, Write: false, Object: "db/t"}, // scan
		{Site: "m1", Seq: 2, Txn: 2, Write: true, Object: "db/t:5"},
	}
	g := BuildGraph(ops, map[uint64]bool{1: true, 2: true})
	if _, ok := g.Edges[1][2]; !ok {
		t.Error("scan vs row write produced no edge")
	}
}

func TestThreeNodeCycle(t *testing.T) {
	ops := []Op{
		{Site: "m1", Seq: 1, Txn: 1, Write: true, Object: "a"},
		{Site: "m1", Seq: 2, Txn: 2, Write: true, Object: "a"},
		{Site: "m2", Seq: 1, Txn: 2, Write: true, Object: "b"},
		{Site: "m2", Seq: 2, Txn: 3, Write: true, Object: "b"},
		{Site: "m3", Seq: 1, Txn: 3, Write: true, Object: "c"},
		{Site: "m3", Seq: 2, Txn: 1, Write: true, Object: "c"},
	}
	g := BuildGraph(ops, map[uint64]bool{1: true, 2: true, 3: true})
	cycle := g.Cycle()
	if cycle == nil {
		t.Fatal("three-node cycle not found")
	}
	if len(cycle) != 4 { // a -> b -> c -> a
		t.Errorf("cycle = %v", cycle)
	}
	// Cycle must be closed and consistent with edges.
	if cycle[0] != cycle[len(cycle)-1] {
		t.Errorf("cycle not closed: %v", cycle)
	}
	for i := 0; i+1 < len(cycle); i++ {
		if _, ok := g.Edges[cycle[i]][cycle[i+1]]; !ok {
			t.Errorf("reported cycle uses missing edge %d->%d", cycle[i], cycle[i+1])
		}
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	site := r.ForSite("m1")
	site.RecordOp(opEvent(1, 100, true, "db/t:1"))
	site.RecordOp(opEvent(2, 0, true, "db/t:2")) // local txn, ignored
	r.Commit(100)
	ops := r.Ops()
	if len(ops) != 1 || ops[0].Txn != 100 || ops[0].Site != "m1" {
		t.Fatalf("ops = %v", ops)
	}
	ok, cycle, _ := Check(r)
	if !ok || cycle != nil {
		t.Errorf("single txn flagged non-serializable")
	}
	r.Reset()
	if len(r.Ops()) != 0 || len(r.Committed()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func opEvent(seq, gtxn uint64, write bool, obj string) sqldb.OpEvent {
	return sqldb.OpEvent{Seq: seq, Txn: seq, GlobalTxn: gtxn, Write: write, Object: obj}
}
