package system

import "sdp/internal/obs"

// systemMetrics holds the system controller's resolved instruments:
// connection routing, disaster events, and the asynchronous cross-colo
// replicator (the paper's disaster-recovery shipping, Section 5).
type systemMetrics struct {
	reg *obs.Registry

	routes       *obs.CounterVec
	coloFailures *obs.Counter
	promotions   *obs.Counter

	replBatches    *obs.CounterVec
	replStatements *obs.Counter
	replApply      *obs.Histogram
	replPending    *obs.Gauge
}

// newSystemMetrics resolves the system controller's families on reg.
func newSystemMetrics(reg *obs.Registry) *systemMetrics {
	return &systemMetrics{
		reg: reg,

		routes: reg.CounterVec("system_route_total",
			"Connection routing decisions, by destination kind", "kind"),
		coloFailures: reg.Counter("system_colo_failures_total",
			"Colos marked down by a disaster"),
		promotions: reg.Counter("system_dr_promotions_total",
			"DR colos promoted to primary after a disaster"),

		replBatches: reg.CounterVec("system_repl_batches_total",
			"Write batches shipped to DR colos by the asynchronous replicator, by result", "result"),
		replStatements: reg.Counter("system_repl_statements_total",
			"Statements replayed at DR colos"),
		replApply: reg.Histogram("system_repl_apply_seconds",
			"Time to apply one committed write batch at all DR colos", nil),
		replPending: reg.Gauge("system_repl_pending_batches",
			"Write batches enqueued and not yet applied (replication lag)"),
	}
}
