// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Run with no flags to reproduce everything, or select
// one artefact:
//
//	experiments -exp table1      # serializability matrix
//	experiments -exp fig2        # shopping-mix throughput
//	experiments -exp fig3        # browsing-mix throughput
//	experiments -exp fig4        # ordering-mix throughput
//	experiments -exp fig5|6|7    # deadlock rates per mix
//	experiments -exp fig8        # rejected transactions during recovery
//	experiments -exp fig9        # throughput during recovery
//	experiments -exp table2      # SLA placement vs optimal
//
// -quick shrinks the data sizes and durations for a fast pass.
//
// -bench-sqldb runs the hot-path query-engine microbenchmarks (point read,
// replicated write, TPC-W mix) and writes the results to BENCH_sqldb.json
// (or the path given by -bench-out) instead of running the figure suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sdp/internal/experiments"
	"sdp/internal/tpcw"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig2..fig9, table2, all")
	quick := flag.Bool("quick", false, "shrink sizes and durations")
	seed := flag.Int64("seed", 42, "workload seed")
	format := flag.String("format", "text", "output format: text or csv")
	benchSQL := flag.Bool("bench-sqldb", false, "run query-engine microbenchmarks and write JSON results")
	benchOut := flag.String("bench-out", "BENCH_sqldb.json", "output path for -bench-sqldb results")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	if *benchSQL {
		res, err := experiments.RunSQLBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-sqldb: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-sqldb: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-sqldb: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: point read %.0f ns/op, replicated write %.0f ns/op, TPC-W mix %.0f ns/op (%.0f tps)\n",
			*benchOut, res.PointReadNsPerOp, res.ReplicatedWriteNsPerOp, res.TPCWMixNsPerOp, res.TPCWMixTPS)
		return
	}
	out := os.Stdout
	render := func(t *experiments.Table) {
		if *format == "csv" {
			t.WriteCSV(out)
		} else {
			t.Write(out)
		}
	}

	run := func(name string) bool {
		return *exp == "all" || strings.EqualFold(*exp, name)
	}

	ran := false
	if run("table1") {
		ran = true
		fmt.Fprintln(out, "running Table 1 (serializability matrix)...")
		render(experiments.RunTable1(cfg).Render())
	}
	throughput := []struct {
		name string
		mix  tpcw.Mix
	}{
		{"fig2", tpcw.ShoppingMix},
		{"fig3", tpcw.BrowsingMix},
		{"fig4", tpcw.OrderingMix},
	}
	for _, f := range throughput {
		if run(f.name) {
			ran = true
			fmt.Fprintf(out, "running %s (throughput, %s mix)...\n", strings.Replace(f.name, "fig", "Figure ", 1), f.mix.Name)
			render(experiments.RunThroughput(f.mix, cfg).Render(strings.Replace(f.name, "fig", "Figure ", 1)))
		}
	}
	deadlocks := []struct {
		name string
		mix  tpcw.Mix
	}{
		{"fig5", tpcw.ShoppingMix},
		{"fig6", tpcw.BrowsingMix},
		{"fig7", tpcw.OrderingMix},
	}
	for _, f := range deadlocks {
		if run(f.name) {
			ran = true
			fmt.Fprintf(out, "running %s (deadlock rate, %s mix)...\n", strings.Replace(f.name, "fig", "Figure ", 1), f.mix.Name)
			render(experiments.RunDeadlocks(f.mix, cfg).Render(strings.Replace(f.name, "fig", "Figure ", 1)))
		}
	}
	if run("fig8") || run("fig9") {
		ran = true
		fmt.Fprintln(out, "running Figures 8 and 9 (recovery)...")
		rec := experiments.RunRecovery(cfg)
		if run("fig8") {
			render(rec.RenderRejected())
		}
		if run("fig9") {
			render(rec.RenderThroughput())
		}
	}
	if run("table2") {
		ran = true
		fmt.Fprintln(out, "running Table 2 (SLA placement)...")
		render(experiments.RunTable2(cfg).Render())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
