package consensus

import "sdp/internal/obs"

// groupMetrics is the consensus_* instrument family, shared by every node
// of a group. Gauges are refreshed by the registry's snapshot bridge.
type groupMetrics struct {
	elections     *obs.Counter
	leaderChanges *obs.Counter
	proposals     *obs.CounterVec
	snapshots     *obs.Counter
	snapInstalls  *obs.Counter
	term          *obs.Gauge
	commitIndex   *obs.Gauge
	commitLag     *obs.Gauge
}

// newGroupMetrics registers the consensus_* family on reg.
func newGroupMetrics(reg *obs.Registry) *groupMetrics {
	return &groupMetrics{
		elections: reg.Counter("consensus_elections_total",
			"Election rounds started (a candidate incremented its term and solicited votes)"),
		leaderChanges: reg.Counter("consensus_leader_changes_total",
			"Elections won: a node assumed leadership of a new term"),
		proposals: reg.CounterVec("consensus_proposals_total",
			"Control-plane log proposals by outcome", "result"),
		snapshots: reg.Counter("consensus_snapshots_total",
			"State-machine snapshots taken for log compaction"),
		snapInstalls: reg.Counter("consensus_snapshot_installs_total",
			"Snapshots installed on trailing replicas to catch them up past a compacted log"),
		term: reg.Gauge("consensus_term",
			"Highest election term seen by any group member"),
		commitIndex: reg.Gauge("consensus_commit_index",
			"Highest committed log index in the group"),
		commitLag: reg.Gauge("consensus_commit_lag",
			"Entries the slowest live replica's state machine trails behind the commit index"),
	}
}

// Proposal result labels for consensus_proposals_total.
const (
	resultCommitted = "committed"
	resultNotLeader = "not_leader"
	resultLost      = "lost"
	resultTimeout   = "timeout"
	resultStopped   = "stopped"
)
