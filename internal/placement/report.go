package placement

import (
	"fmt"
	"io"
	"time"
)

// TenantStatus is one tenant's row in a placement report.
type TenantStatus struct {
	// DB is the database name.
	DB string `json:"db"`
	// Class is the tenant's current classification ("hot", "warm",
	// "cold").
	Class string `json:"class"`
	// Replicas is the current replica degree.
	Replicas int `json:"replicas"`
	// Target is the budget-clamped degree the controller steers toward.
	Target int `json:"target"`
	// Compliant mirrors the SLA monitor's verdict.
	Compliant bool `json:"compliant"`
	// OfferedTPS is the offered load in the last sampled window.
	OfferedTPS float64 `json:"offered_tps"`
}

// ActionRecord is one executed (or failed) placement action.
type ActionRecord struct {
	// Action is the planned change.
	Action
	// At is when the action finished.
	At time.Time `json:"at"`
	// Err is the non-retryable failure, empty on success. Retryable
	// control-plane errors (leadership moved mid-action) are recorded
	// too — the next round simply re-plans.
	Err string `json:"err,omitempty"`
}

// Report is the adaptive placement controller's public state, served by
// the admin plane at /placementz.
type Report struct {
	// GeneratedAt is when the report was assembled.
	GeneratedAt time.Time `json:"generated_at"`
	// Enabled reports whether any adaptive controller loop is running.
	Enabled bool `json:"enabled"`
	// Rounds counts completed decision rounds.
	Rounds uint64 `json:"rounds"`
	// SkippedNotLeader counts rounds skipped because this controller
	// replica did not hold the quorum lease (the leader runs the loop;
	// followers stand by).
	SkippedNotLeader uint64 `json:"skipped_not_leader"`
	// MovesInFlight is the number of copies/retires currently executing.
	MovesInFlight int `json:"moves_in_flight"`
	// Tenants is the per-tenant classification table from the most
	// recent round, sorted by name.
	Tenants []TenantStatus `json:"tenants,omitempty"`
	// Recent is a bounded ring of the most recent actions, oldest first.
	Recent []ActionRecord `json:"recent,omitempty"`
}

// Merge combines per-cluster reports into one platform-wide report:
// counters sum, tenant tables and recent-action rings concatenate (each
// cluster owns a disjoint set of databases), and the result is enabled if
// any input is. The zero Report merges as an identity.
func Merge(reports ...Report) Report {
	out := Report{GeneratedAt: time.Now()}
	for _, r := range reports {
		out.Enabled = out.Enabled || r.Enabled
		out.Rounds += r.Rounds
		out.SkippedNotLeader += r.SkippedNotLeader
		out.MovesInFlight += r.MovesInFlight
		out.Tenants = append(out.Tenants, r.Tenants...)
		out.Recent = append(out.Recent, r.Recent...)
	}
	return out
}

// WriteText renders the report as the human-readable flavour of
// /placementz?format=text.
func (r Report) WriteText(w io.Writer) {
	state := "disabled"
	if r.Enabled {
		state = "enabled"
	}
	fmt.Fprintf(w, "adaptive placement: %s  rounds=%d skipped_not_leader=%d moves_in_flight=%d\n",
		state, r.Rounds, r.SkippedNotLeader, r.MovesInFlight)
	if len(r.Tenants) > 0 {
		fmt.Fprintf(w, "\n%-20s %-5s %8s %6s %9s %11s\n", "DB", "CLASS", "REPLICAS", "TARGET", "COMPLIANT", "OFFERED_TPS")
		for _, t := range r.Tenants {
			fmt.Fprintf(w, "%-20s %-5s %8d %6d %9v %11.1f\n", t.DB, t.Class, t.Replicas, t.Target, t.Compliant, t.OfferedTPS)
		}
	}
	if len(r.Recent) > 0 {
		fmt.Fprintf(w, "\nrecent actions:\n")
		for _, a := range r.Recent {
			status := "ok"
			if a.Err != "" {
				status = a.Err
			}
			fmt.Fprintf(w, "  %s %s %s from=%s to=%s (%s) [%s]\n",
				a.At.Format(time.RFC3339), a.Kind, a.DB, a.From, a.To, a.Reason, status)
		}
	}
}
