package workload

import (
	"testing"
)

func TestZipfRanksInRange(t *testing.T) {
	z := NewZipf(1, 100, 1.2)
	for i := 0; i < 10000; i++ {
		k := z.Rank()
		if k < 1 || k > 100 {
			t.Fatalf("rank %d out of range", k)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	countRank1 := func(s float64) int {
		z := NewZipf(42, 50, s)
		n := 0
		for i := 0; i < 20000; i++ {
			if z.Rank() == 1 {
				n++
			}
		}
		return n
	}
	uniform := countRank1(0)
	skewed := countRank1(2)
	if skewed <= uniform*3 {
		t.Errorf("skew 2 rank-1 count %d not ≫ uniform %d", skewed, uniform)
	}
	// Uniform should put roughly 1/50 of mass on rank 1.
	if uniform < 200 || uniform > 600 {
		t.Errorf("uniform rank-1 count = %d, want ~400", uniform)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(7, 30, 1.0), NewZipf(7, 30, 1.0)
	for i := 0; i < 100; i++ {
		if a.Rank() != b.Rank() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestInRangeBounds(t *testing.T) {
	z := NewZipf(3, 64, 0.8)
	for i := 0; i < 5000; i++ {
		v := z.InRange(200, 1000)
		if v < 200 || v > 1000 {
			t.Fatalf("value %v out of [200,1000]", v)
		}
	}
	one := NewZipf(3, 1, 0.8)
	if v := one.InRange(5, 9); v != 5 {
		t.Errorf("single-rank InRange = %v, want lo", v)
	}
}

func TestSLAWorkloadAverageFallsWithSkew(t *testing.T) {
	// Reproduces Table 2's qualitative trend: average database size and
	// throughput fall as the skew factor rises.
	var prevSize, prevTPS float64
	for i, skew := range []float64{0.4, 1.2, 2.0} {
		w := NewSLAWorkload(11, 400, skew)
		size, tps := w.AvgSizeMB(), w.AvgTPS()
		if size < 200 || size > 1000 || tps < 0.1 || tps > 10 {
			t.Fatalf("skew %v: avg size %v tps %v out of range", skew, size, tps)
		}
		if i > 0 {
			if size >= prevSize {
				t.Errorf("avg size did not fall with skew: %v -> %v", prevSize, size)
			}
			if tps >= prevTPS {
				t.Errorf("avg tps did not fall with skew: %v -> %v", prevTPS, tps)
			}
		}
		prevSize, prevTPS = size, tps
	}
}
