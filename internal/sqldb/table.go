package sqldb

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// rowLoc locates a row: either a sealed page slot or the open tail page.
type rowLoc struct {
	page int // -1 means the tail page
	slot int
}

// index is a secondary (or unique) hash index on one column, with an
// ordered view of its keys for range traversal.
type index struct {
	name   string
	col    int // column position
	unique bool
	m      map[string][]uint64 // key -> rowIDs
	ord    *orderedKeys
}

// add registers a rowID under key (ordering value v), maintaining the
// ordered key view. Called with the table latch held.
func (ix *index) add(key string, v Value, rowID uint64) {
	ids := ix.m[key]
	ix.m[key] = append(ids, rowID)
	if len(ids) == 0 {
		ix.ord.add(key, v)
	}
}

// Table holds the physical storage of one table: sealed encoded pages (the
// "disk"), an open tail page of decoded rows, a primary-key index, and any
// secondary indexes. Reads of sealed pages go through the engine's buffer
// pool. The per-table mutex is a short-duration latch protecting physical
// structures; transactional isolation is provided by the lock manager, not
// by this mutex.
type Table struct {
	schema   *Schema
	engine   *Engine
	qname    string // qualified "db/table" name used for locks and pool keys
	poolName string // "<qname>@<version>": the pool key prefix, precomputed

	mu        sync.Mutex
	pages     [][]byte // sealed, encoded
	pageLive  []int    // live (non-deleted) slot count per sealed page
	tail      []pageSlot
	loc       map[uint64]rowLoc
	pk        map[string]uint64 // pk key -> rowID; nil when no primary key
	pkOrd     *orderedKeys      // ordered view of pk keys; nil when no primary key
	indexes   map[string]*index // by lower-cased column name
	nextRowID uint64
	liveRows  int
	byteSize  int64
	version   uint64 // bumped on every page rewrite, for pool coherence

	// epoch counts physical row mutations (insert/delete/update). Optimistic
	// readers load it before and after their latched reads: an unchanged
	// epoch proves no writer committed a row change in between, so the reads
	// are consistent without lock-manager involvement. Bumped with t.mu held;
	// read without it.
	epoch atomic.Uint64

	// dirty counts transactions holding uncommitted physical changes to this
	// table (raised before a transaction's first change, dropped once its
	// outcome — including any undo — is fully applied). Optimistic readers
	// require dirty == 0 before trusting an epoch-validated read: physical
	// row images with a writer in flight may be uncommitted.
	dirty atomic.Int64
}

func newTable(e *Engine, qname string, schema *Schema) *Table {
	t := &Table{
		schema:  schema,
		engine:  e,
		qname:   qname,
		loc:     make(map[uint64]rowLoc),
		indexes: make(map[string]*index),
	}
	t.poolName = fmt.Sprintf("%s@%d", t.qname, t.version)
	if schema.PKIdx >= 0 {
		t.pk = make(map[string]uint64)
		t.pkOrd = newOrderedKeys()
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Table }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveRows
}

// ByteSize returns the approximate encoded size of the table in bytes.
func (t *Table) ByteSize() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byteSize
}

// PageCount returns the number of sealed pages plus the open tail page.
func (t *Table) PageCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.pages)
	if len(t.tail) > 0 {
		n++
	}
	return n
}

// maxExactInt is the largest magnitude exactly representable as both int64
// and float64 (2^53); below it, integer formatting preserves the INT/FLOAT
// key-equality invariant without paying for float formatting.
const maxExactInt = int64(1) << 53

// keyString canonicalises a value for index keys: INT and FLOAT values that
// compare equal (Compare is numeric across the two types) must map to the
// same key. Integers — and floats holding exact integers — take a fast
// integer-formatting path; everything else falls back to the SQL literal
// form, matching how values outside the exact range compare (as float64).
func keyString(v Value) string {
	switch v.Typ {
	case TypeInt:
		if v.Int >= -maxExactInt && v.Int <= maxExactInt {
			return strconv.FormatInt(v.Int, 10)
		}
		return NewFloat(float64(v.Int)).String()
	case TypeFloat:
		if i := int64(v.Float); float64(i) == v.Float && i >= -maxExactInt && i <= maxExactInt {
			return strconv.FormatInt(i, 10)
		}
	}
	return v.String()
}

// keyVal pairs an index key with the value it orders by.
type keyVal struct {
	v Value
	k string
}

// orderedKeys maintains the distinct keys of an index in value order. The
// sorted view is built lazily: mutations invalidate it and the next range
// traversal re-sorts, so workloads without range queries never pay for
// ordering. Guarded by the owning table's latch.
type orderedKeys struct {
	vals map[string]Value
	ord  []keyVal // ascending by value; nil when stale
}

func newOrderedKeys() *orderedKeys {
	return &orderedKeys{vals: make(map[string]Value)}
}

func (o *orderedKeys) add(k string, v Value) {
	if _, ok := o.vals[k]; ok {
		return
	}
	o.vals[k] = v
	o.ord = nil
}

func (o *orderedKeys) drop(k string) {
	if _, ok := o.vals[k]; !ok {
		return
	}
	delete(o.vals, k)
	o.ord = nil
}

// rangeBounds is a concrete one-column range: [lo, hi] with per-side
// presence and inclusivity.
type rangeBounds struct {
	lo, hi         Value
	hasLo, hasHi   bool
	loIncl, hiIncl bool
}

// match reports whether a row value falls inside the bounds. NULL never
// matches (SQL comparisons with NULL are unknown).
func (b rangeBounds) match(v Value) bool {
	if v.IsNull() {
		return false
	}
	if b.hasLo {
		c := Compare(v, b.lo)
		if c < 0 || (c == 0 && !b.loIncl) {
			return false
		}
	}
	if b.hasHi {
		c := Compare(v, b.hi)
		if c > 0 || (c == 0 && !b.hiIncl) {
			return false
		}
	}
	return true
}

// scanRange calls fn for every key whose value lies within bounds, in
// ascending value order, rebuilding the sorted view if it is stale.
func (o *orderedKeys) scanRange(b rangeBounds, fn func(k string)) {
	if o.ord == nil {
		o.ord = make([]keyVal, 0, len(o.vals))
		for k, v := range o.vals {
			o.ord = append(o.ord, keyVal{v: v, k: k})
		}
		sort.Slice(o.ord, func(i, j int) bool { return Compare(o.ord[i].v, o.ord[j].v) < 0 })
	}
	start := 0
	if b.hasLo {
		start = sort.Search(len(o.ord), func(i int) bool {
			c := Compare(o.ord[i].v, b.lo)
			return c > 0 || (c == 0 && b.loIncl)
		})
	}
	for i := start; i < len(o.ord); i++ {
		kv := o.ord[i]
		if kv.v.IsNull() {
			continue // NULL sorts first; only reachable without a low bound
		}
		if b.hasHi {
			c := Compare(kv.v, b.hi)
			if c > 0 || (c == 0 && !b.hiIncl) {
				break
			}
		}
		fn(kv.k)
	}
}

// pkKey returns the primary-key index key of a row, or "" when the table has
// no primary key.
func (t *Table) pkKey(r Row) string {
	if t.schema.PKIdx < 0 {
		return ""
	}
	return keyString(r[t.schema.PKIdx])
}

// --- physical operations -------------------------------------------------
//
// The insert/delete/update *Physical methods mutate storage without any
// transactional bookkeeping; they are used both by the executor (which has
// already acquired locks and written undo records) and by the undo path
// itself.

// allocRowID reserves a fresh row ID.
func (t *Table) allocRowID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextRowID++
	return t.nextRowID
}

// insertRowPhysical places a row (with a pre-assigned ID) into storage and
// maintains all indexes. The caller guarantees uniqueness was checked.
func (t *Table) insertRowPhysical(rowID uint64, r Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch.Add(1)
	t.tail = append(t.tail, pageSlot{rowID: rowID, row: r.Clone()})
	t.loc[rowID] = rowLoc{page: -1, slot: len(t.tail) - 1}
	if t.pk != nil {
		k := t.pkKey(r)
		t.pk[k] = rowID
		t.pkOrd.add(k, r[t.schema.PKIdx])
	}
	for _, idx := range t.indexes {
		idx.add(keyString(r[idx.col]), r[idx.col], rowID)
	}
	t.liveRows++
	t.byteSize += int64(len(encodeRow(nil, r)))
	if len(t.tail) >= pageCapacity {
		t.sealTail()
	}
}

// sealTail encodes the tail page and appends it to the sealed pages. Called
// with t.mu held.
func (t *Table) sealTail() {
	page := len(t.pages)
	enc := encodePage(t.tail)
	t.pages = append(t.pages, enc)
	t.pageLive = append(t.pageLive, len(t.tail))
	for i, s := range t.tail {
		t.loc[s.rowID] = rowLoc{page: page, slot: i}
	}
	// Warm the pool with the decoded image we already have.
	t.engine.pool.Put(t.pageKey(page), t.tail)
	t.tail = nil
}

// pageKey builds the buffer-pool key of a sealed page. Called with t.mu held
// or on an immutable version. Anything that bumps t.version must refresh
// t.poolName.
func (t *Table) pageKey(page int) PageKey {
	return PageKey{Table: t.poolName, Page: page}
}

// deleteRowPhysical removes a row from storage and indexes. Missing rows are
// ignored (undo after partial failure).
func (t *Table) deleteRowPhysical(rowID uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.loc[rowID]
	if !ok {
		return
	}
	t.epoch.Add(1)
	var old Row
	if l.page == -1 {
		old = t.tail[l.slot].row
		t.tail = append(t.tail[:l.slot], t.tail[l.slot+1:]...)
		for i := l.slot; i < len(t.tail); i++ {
			t.loc[t.tail[i].rowID] = rowLoc{page: -1, slot: i}
		}
	} else {
		slots := t.decodePageLocked(l.page)
		old = slots[l.slot].row
		newSlots := make([]pageSlot, 0, len(slots)-1)
		newSlots = append(newSlots, slots[:l.slot]...)
		newSlots = append(newSlots, slots[l.slot+1:]...)
		t.rewritePageLocked(l.page, newSlots)
	}
	delete(t.loc, rowID)
	if t.pk != nil {
		k := t.pkKey(old)
		delete(t.pk, k)
		t.pkOrd.drop(k)
	}
	for _, idx := range t.indexes {
		idx.remove(keyString(old[idx.col]), rowID)
	}
	t.liveRows--
	t.byteSize -= int64(len(encodeRow(nil, old)))
}

// updateRowPhysical replaces the image of a row in place, maintaining
// indexes.
func (t *Table) updateRowPhysical(rowID uint64, newRow Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.loc[rowID]
	if !ok {
		return
	}
	t.epoch.Add(1)
	var old Row
	if l.page == -1 {
		old = t.tail[l.slot].row
		t.tail[l.slot].row = newRow.Clone()
	} else {
		slots := t.decodePageLocked(l.page)
		old = slots[l.slot].row
		newSlots := make([]pageSlot, len(slots))
		copy(newSlots, slots)
		newSlots[l.slot] = pageSlot{rowID: rowID, row: newRow.Clone()}
		t.rewritePageLocked(l.page, newSlots)
	}
	if t.pk != nil {
		oldKey, newKey := t.pkKey(old), t.pkKey(newRow)
		if oldKey != newKey {
			delete(t.pk, oldKey)
			t.pkOrd.drop(oldKey)
			t.pk[newKey] = rowID
			t.pkOrd.add(newKey, newRow[t.schema.PKIdx])
		}
	}
	for _, idx := range t.indexes {
		ok, nk := keyString(old[idx.col]), keyString(newRow[idx.col])
		if ok != nk {
			idx.remove(ok, rowID)
			idx.add(nk, newRow[idx.col], rowID)
		}
	}
	t.byteSize += int64(len(encodeRow(nil, newRow))) - int64(len(encodeRow(nil, old)))
}

// decodePageLocked fetches the decoded slots of a sealed page via the buffer
// pool. Called with t.mu held; the pool load callback reads the encoded page
// directly since the latch is already held.
func (t *Table) decodePageLocked(page int) []pageSlot {
	enc := t.pages[page]
	slots, err := t.engine.pool.Get(t.pageKey(page), func() []byte { return enc })
	if err != nil {
		// Pages are written only by encodePage; corruption indicates a bug.
		panic(fmt.Sprintf("sqldb: corrupt page %s/%d: %v", t.schema.Table, page, err))
	}
	return slots
}

// rewritePageLocked replaces a sealed page's contents, updating row
// locations and keeping the pool coherent. Called with t.mu held.
func (t *Table) rewritePageLocked(page int, slots []pageSlot) {
	t.pages[page] = encodePage(slots)
	t.pageLive[page] = len(slots)
	for i, s := range slots {
		t.loc[s.rowID] = rowLoc{page: page, slot: i}
	}
	t.engine.pool.Put(t.pageKey(page), slots)
}

// appendKey appends keyString(v) to buf, avoiding allocation for the common
// integer- and text-valued cases so hot paths can reuse one scratch buffer.
func appendKey(buf []byte, v Value) []byte {
	switch v.Typ {
	case TypeInt:
		if v.Int >= -maxExactInt && v.Int <= maxExactInt {
			return strconv.AppendInt(buf, v.Int, 10)
		}
	case TypeFloat:
		if i := int64(v.Float); float64(i) == v.Float && i >= -maxExactInt && i <= maxExactInt {
			return strconv.AppendInt(buf, i, 10)
		}
	case TypeText:
		if !containsQuote(v.Str) {
			buf = append(buf, '\'')
			buf = append(buf, v.Str...)
			return append(buf, '\'')
		}
	}
	return append(buf, keyString(v)...)
}

func containsQuote(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			return true
		}
	}
	return false
}

// readPKRowInto looks up a primary-key row and copies its values into dst
// under a single latch acquisition, returning the (possibly grown)
// destination slice, the rowID, and whether the key exists. key is the
// canonical keyString form as raw bytes so hot callers can reuse one scratch
// buffer — indexing the map with string(key) does not allocate.
func (t *Table) readPKRowInto(key []byte, dst Row) (Row, uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk == nil {
		return dst, 0, false
	}
	id, ok := t.pk[string(key)]
	if !ok {
		return dst, 0, false
	}
	l, ok := t.loc[id]
	if !ok {
		return dst, 0, false
	}
	var src Row
	if l.page == -1 {
		src = t.tail[l.slot].row
	} else {
		src = t.decodePageLocked(l.page)[l.slot].row
	}
	return append(dst[:0], src...), id, true
}

// getRowsBatch appends clones of the rows with the given IDs to dst under a
// single latch acquisition, skipping IDs that no longer exist. Optimistic
// readers pair it with an epoch validation; locking readers call it only
// after the row locks are held.
func (t *Table) getRowsBatch(ids []uint64, dst []Row) []Row {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range ids {
		l, ok := t.loc[id]
		if !ok {
			continue
		}
		if l.page == -1 {
			dst = append(dst, t.tail[l.slot].row.Clone())
		} else {
			dst = append(dst, t.decodePageLocked(l.page)[l.slot].row.Clone())
		}
	}
	return dst
}

// getRow returns a copy of the row with the given ID, or ok=false.
func (t *Table) getRow(rowID uint64) (Row, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.loc[rowID]
	if !ok {
		return nil, false
	}
	if l.page == -1 {
		return t.tail[l.slot].row.Clone(), true
	}
	slots := t.decodePageLocked(l.page)
	return slots[l.slot].row.Clone(), true
}

// lookupPK returns the rowID for a primary-key value.
func (t *Table) lookupPK(v Value) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk == nil {
		return 0, false
	}
	id, ok := t.pk[keyString(v)]
	return id, ok
}

// lookupIndex returns the rowIDs matching v in the named column's index, and
// whether such an index exists.
func (t *Table) lookupIndex(col string, v Value) ([]uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	ids := idx.m[keyString(v)]
	out := make([]uint64, len(ids))
	copy(out, ids)
	return out, true
}

// hasIndex reports whether col has a secondary index (col is lower-cased by
// the caller).
func (t *Table) hasIndex(col string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.indexes[col]
	return ok
}

// lookupPKRange returns the rowIDs whose primary key lies within bounds, in
// ascending key order.
func (t *Table) lookupPKRange(b rangeBounds) []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pk == nil {
		return nil
	}
	var out []uint64
	t.pkOrd.scanRange(b, func(k string) {
		if id, ok := t.pk[k]; ok {
			out = append(out, id)
		}
	})
	return out
}

// lookupIndexRange returns the rowIDs whose indexed column value lies within
// bounds (ascending value order), and whether such an index exists.
func (t *Table) lookupIndexRange(col string, b rangeBounds) ([]uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	var out []uint64
	idx.ord.scanRange(b, func(k string) {
		out = append(out, idx.m[k]...)
	})
	return out, true
}

// scan invokes fn for every live row (a copy) until fn returns false. It
// snapshots page identity under the latch but decodes outside of it page by
// page, so concurrent writers latch in between pages.
func (t *Table) scan(fn func(rowID uint64, r Row) bool) {
	t.mu.Lock()
	numPages := len(t.pages)
	t.mu.Unlock()
	for p := 0; p < numPages; p++ {
		t.mu.Lock()
		if p >= len(t.pages) {
			t.mu.Unlock()
			break
		}
		slots := t.decodePageLocked(p)
		// Copy out under the latch: the pool entry may be rewritten.
		copied := make([]pageSlot, len(slots))
		for i, s := range slots {
			copied[i] = pageSlot{rowID: s.rowID, row: s.row.Clone()}
		}
		t.mu.Unlock()
		for _, s := range copied {
			// Skip rows that moved or died since the snapshot.
			t.mu.Lock()
			l, live := t.loc[s.rowID]
			t.mu.Unlock()
			if !live || l.page != p {
				continue
			}
			if !fn(s.rowID, s.row) {
				return
			}
		}
	}
	t.mu.Lock()
	tailCopy := make([]pageSlot, len(t.tail))
	for i, s := range t.tail {
		tailCopy[i] = pageSlot{rowID: s.rowID, row: s.row.Clone()}
	}
	t.mu.Unlock()
	for _, s := range tailCopy {
		if !fn(s.rowID, s.row) {
			return
		}
	}
}

// scanWhere is scan with a predicate evaluated under the page latch, so
// non-matching rows are skipped without being cloned. match receives the
// pool's shared row image and must neither retain nor mutate it (expression
// evaluation does neither); matching rows are cloned and re-checked for
// liveness before fn sees them, exactly as in scan. A nil match accepts
// every row.
func (t *Table) scanWhere(match func(r Row) (bool, error), fn func(rowID uint64, r Row) bool) error {
	t.mu.Lock()
	numPages := len(t.pages)
	t.mu.Unlock()
	var matched []pageSlot
	for p := 0; p < numPages; p++ {
		t.mu.Lock()
		if p >= len(t.pages) {
			t.mu.Unlock()
			break
		}
		slots := t.decodePageLocked(p)
		matched = matched[:0]
		for _, s := range slots {
			if match != nil {
				ok, err := match(s.row)
				if err != nil {
					t.mu.Unlock()
					return err
				}
				if !ok {
					continue
				}
			}
			matched = append(matched, pageSlot{rowID: s.rowID, row: s.row.Clone()})
		}
		t.mu.Unlock()
		for _, s := range matched {
			// Skip rows that moved or died since the snapshot.
			t.mu.Lock()
			l, live := t.loc[s.rowID]
			t.mu.Unlock()
			if !live || l.page != p {
				continue
			}
			if !fn(s.rowID, s.row) {
				return nil
			}
		}
	}
	t.mu.Lock()
	matched = matched[:0]
	for _, s := range t.tail {
		if match != nil {
			ok, err := match(s.row)
			if err != nil {
				t.mu.Unlock()
				return err
			}
			if !ok {
				continue
			}
		}
		matched = append(matched, pageSlot{rowID: s.rowID, row: s.row.Clone()})
	}
	t.mu.Unlock()
	for _, s := range matched {
		if !fn(s.rowID, s.row) {
			return nil
		}
	}
	return nil
}

// scanCold is scan for bulk readers like the dump tool: it reads the sealed
// pages "from disk" — paying the engine's miss latency per page and
// bypassing the buffer pool — because a bulk copy neither benefits from nor
// should pollute the cache. This is what makes replica-creation time
// proportional to database size, as in the paper (a 200 MB copy took about
// two minutes on their hardware).
func (t *Table) scanCold(fn func(rowID uint64, r Row) bool) {
	t.mu.Lock()
	numPages := len(t.pages)
	t.mu.Unlock()
	lat := t.engine.cfg.MissLatency
	for p := 0; p < numPages; p++ {
		t.mu.Lock()
		if p >= len(t.pages) {
			t.mu.Unlock()
			break
		}
		enc := t.pages[p]
		t.mu.Unlock()
		if lat > 0 {
			time.Sleep(lat)
		}
		slots, err := decodePage(enc)
		if err != nil {
			panic(fmt.Sprintf("sqldb: corrupt page %s/%d: %v", t.schema.Table, p, err))
		}
		for _, s := range slots {
			t.mu.Lock()
			l, live := t.loc[s.rowID]
			t.mu.Unlock()
			if !live || l.page != p {
				continue
			}
			if !fn(s.rowID, s.row.Clone()) {
				return
			}
		}
	}
	t.mu.Lock()
	tailCopy := make([]pageSlot, len(t.tail))
	for i, s := range t.tail {
		tailCopy[i] = pageSlot{rowID: s.rowID, row: s.row.Clone()}
	}
	t.mu.Unlock()
	if lat > 0 && len(tailCopy) > 0 {
		time.Sleep(lat)
	}
	for _, s := range tailCopy {
		if !fn(s.rowID, s.row) {
			return
		}
	}
}

// createIndex builds a secondary index over col (position colIdx).
func (t *Table) createIndex(name string, colIdx int, unique bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	colName := lower(t.schema.Cols[colIdx].Name)
	if _, exists := t.indexes[colName]; exists {
		return fmt.Errorf("sqldb: index on %s.%s already exists", t.schema.Table, colName)
	}
	idx := &index{name: name, col: colIdx, unique: unique, m: make(map[string][]uint64), ord: newOrderedKeys()}
	collect := func(s pageSlot) error {
		k := keyString(s.row[colIdx])
		if unique && len(idx.m[k]) > 0 {
			return fmt.Errorf("%w: duplicate value %s building unique index %s", ErrDuplicateKey, k, name)
		}
		idx.add(k, s.row[colIdx], s.rowID)
		return nil
	}
	for p := range t.pages {
		for _, s := range t.decodePageLocked(p) {
			if _, live := t.loc[s.rowID]; !live {
				continue
			}
			if err := collect(s); err != nil {
				return err
			}
		}
	}
	for _, s := range t.tail {
		if err := collect(s); err != nil {
			return err
		}
	}
	t.indexes[colName] = idx
	return nil
}

func (ix *index) remove(key string, rowID uint64) {
	ids := ix.m[key]
	for i, id := range ids {
		if id == rowID {
			ids = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		delete(ix.m, key)
		ix.ord.drop(key)
	} else {
		ix.m[key] = ids
	}
}
