package tpcw

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"sdp/internal/sqldb"
)

// ErrorClass categorises a transaction failure for accounting.
type ErrorClass int

// Failure classes.
const (
	// ClassFatal is an unexpected error; the session stops.
	ClassFatal ErrorClass = iota
	// ClassAborted is an application-inherent abort (deadlock, lock
	// timeout); per the paper's SLA model these do not count as proactive
	// rejections.
	ClassAborted
	// ClassRejected is a proactive rejection by the controller during
	// replica creation — the paper's availability metric.
	ClassRejected
)

// Classifier maps an error to its class. The default knows the engine's
// errors; platform layers wrap it to tag their own rejection errors.
type Classifier func(error) ErrorClass

// DefaultClassifier treats deadlocks, lock timeouts and branch aborts as
// ClassAborted and everything else as fatal.
func DefaultClassifier(err error) ErrorClass {
	switch {
	case errors.Is(err, sqldb.ErrDeadlock),
		errors.Is(err, sqldb.ErrLockTimeout),
		errors.Is(err, sqldb.ErrTxnAborted),
		errors.Is(err, sqldb.ErrOptimisticConflict):
		return ClassAborted
	default:
		return ClassFatal
	}
}

// Stats accumulates the outcome counts of a workload run.
type Stats struct {
	Committed uint64
	Aborted   uint64
	Rejected  uint64
	Fatal     uint64
	// ByKind counts committed transactions per profile.
	ByKind [numTxKinds]uint64
	// Latency is the histogram of committed-transaction latencies.
	Latency Histogram
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// TPS returns committed transactions per second.
func (s Stats) TPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Committed) / s.Elapsed.Seconds()
}

// merge adds o into s.
func (s *Stats) merge(o Stats) {
	s.Committed += o.Committed
	s.Aborted += o.Aborted
	s.Rejected += o.Rejected
	s.Fatal += o.Fatal
	for k := range s.ByKind {
		s.ByKind[k] += o.ByKind[k]
	}
	s.Latency.Merge(o.Latency)
}

// Client drives TPC-W sessions against a database.
type Client struct {
	DB       DB
	Mix      Mix
	Workload *Workload
	Classify Classifier
	// ThinkTime, when positive, is slept between transactions (emulated
	// browser think time); zero drives the database flat out.
	ThinkTime time.Duration
	// RejectBackoff, when positive, is slept after a proactively rejected
	// transaction before retrying, like a well-behaved application server.
	RejectBackoff time.Duration
}

// RunSession executes transactions until stop closes, using a session-local
// PRNG derived from seed.
func (c *Client) RunSession(seed int64, stop <-chan struct{}) Stats {
	classify := c.Classify
	if classify == nil {
		classify = DefaultClassifier
	}
	rng := rand.New(rand.NewSource(seed))
	var st Stats
	start := time.Now()
	for {
		select {
		case <-stop:
			st.Elapsed = time.Since(start)
			return st
		default:
		}
		kind := c.Mix.pick(rng)
		txStart := time.Now()
		err := c.runOne(kind, rng)
		switch {
		case err == nil:
			st.Committed++
			st.ByKind[kind]++
			st.Latency.Observe(time.Since(txStart))
		default:
			switch classify(err) {
			case ClassAborted:
				st.Aborted++
			case ClassRejected:
				st.Rejected++
				if c.RejectBackoff > 0 {
					time.Sleep(c.RejectBackoff)
				}
			default:
				st.Fatal++
				st.Elapsed = time.Since(start)
				return st
			}
		}
		if c.ThinkTime > 0 {
			time.Sleep(c.ThinkTime)
		}
	}
}

// RunN executes exactly n mix-weighted transactions and returns the
// statistics. Unlike RunSession it is driven by a count rather than a stop
// channel, which makes it suitable for benchmark loops that charge each
// transaction to one iteration. A fatal error ends the run early.
func (c *Client) RunN(seed int64, n int) Stats {
	classify := c.Classify
	if classify == nil {
		classify = DefaultClassifier
	}
	rng := rand.New(rand.NewSource(seed))
	var st Stats
	start := time.Now()
	for i := 0; i < n; i++ {
		kind := c.Mix.pick(rng)
		txStart := time.Now()
		err := c.runOne(kind, rng)
		switch {
		case err == nil:
			st.Committed++
			st.ByKind[kind]++
			st.Latency.Observe(time.Since(txStart))
		default:
			switch classify(err) {
			case ClassAborted:
				st.Aborted++
			case ClassRejected:
				st.Rejected++
			default:
				st.Fatal++
				st.Elapsed = time.Since(start)
				return st
			}
		}
	}
	st.Elapsed = time.Since(start)
	return st
}

// runOne executes one transaction with commit/rollback handling. Read-only
// profiles use the database's read-only begin when it offers one, so engines
// with an optimistic lock-free read path can serve them without latching.
func (c *Client) runOne(kind TxKind, rng *rand.Rand) error {
	var tx Txn
	var err error
	if ro, ok := c.DB.(interface{ BeginReadOnly() (Txn, error) }); ok && !kind.IsWrite() {
		tx, err = ro.BeginReadOnly()
	} else {
		tx, err = c.DB.Begin()
	}
	if err != nil {
		return err
	}
	if err := c.Workload.Run(kind, tx, rng); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}

// RunConcurrent drives `sessions` concurrent sessions for the given
// duration and returns the merged statistics.
func (c *Client) RunConcurrent(sessions int, d time.Duration, seed int64) Stats {
	stop := make(chan struct{})
	results := make([]Stats, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.RunSession(seed+int64(i)*7919, stop)
		}(i)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	var total Stats
	for _, r := range results {
		total.merge(r)
	}
	total.Elapsed = d
	return total
}
