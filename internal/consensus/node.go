package consensus

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// role is a node's current Raft role.
type role int

// Raft roles.
const (
	follower role = iota
	candidate
	leader
)

// applyResult is what a waiter receives when its entry's index applies.
type applyResult struct {
	res any
	err error
}

// waiter tracks one local ProposeWait caller: the term its entry was
// appended under (to detect overwrites) and a buffered delivery channel.
type waiter struct {
	term uint64
	ch   chan applyResult
}

// Node is one member of a consensus group. All Raft state that real
// deployments keep on stable storage (term, vote, log, snapshot) lives in
// memory and survives Stop/Restart, which models a process crash and
// recovery from disk.
type Node struct {
	id string
	g  *Group
	sm StateMachine

	cfg   Config
	lease time.Duration

	mu               sync.Mutex
	stopped          bool
	term             uint64
	votedFor         string
	role             role
	leaderID         string
	log              raftLog
	commitIndex      uint64
	lastApplied      uint64
	nextIndex        map[string]uint64
	matchIndex       map[string]uint64
	electionDeadline time.Time
	lastBeat         time.Time
	leaseUntil       time.Time
	pushPending      bool
	pendingSnap      *snapshotRequest
	waiters          map[uint64]*waiter
	rng              *rand.Rand
	applyCond        *sync.Cond

	// Atomic mirrors of the hot-path fields so the cluster's Begin gate
	// reads leadership and lease state without touching n.mu.
	aLeader atomic.Bool
	aLease  atomic.Int64

	stopCh chan struct{}
	kickCh chan struct{}
	wg     sync.WaitGroup

	// lifeMu serializes Stop and Restart in full — including the wait for
	// the dying incarnation's goroutines — so concurrent kill/revive calls
	// (e.g. a chaos kill firing from a delivery hook while the scheduler
	// restarts the group) never overlap incarnations or race on wg.
	lifeMu sync.Mutex
}

// newNode builds (but does not start) a node.
func newNode(g *Group, cfg Config, sm StateMachine) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		id:         cfg.ID,
		g:          g,
		sm:         sm,
		cfg:        cfg,
		lease:      cfg.ElectionTimeout * 4 / 5,
		nextIndex:  make(map[string]uint64),
		matchIndex: make(map[string]uint64),
		waiters:    make(map[uint64]*waiter),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		stopCh:     make(chan struct{}),
		kickCh:     make(chan struct{}, 1),
	}
	n.applyCond = sync.NewCond(&n.mu)
	n.resetElectionTimerLocked()
	return n
}

// start launches the ticker and apply goroutines (timed mode only).
func (n *Node) start() {
	n.wg.Add(2)
	go n.run()
	go n.applyLoop()
}

// ID returns the node's identifier (also its netsim endpoint).
func (n *Node) ID() string { return n.id }

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// IsLeader reports whether the node currently believes it is leader. Lock
// free; safe on the data path.
func (n *Node) IsLeader() bool { return n.aLeader.Load() }

// HasLease reports whether the node is leader and holds a live quorum
// lease — a majority acknowledged a heartbeat round recently enough that no
// other leader can have been elected. Lock free; safe on the data path.
func (n *Node) HasLease() bool {
	return n.aLeader.Load() && time.Now().UnixNano() < n.aLease.Load()
}

// Stopped reports whether the node is stopped.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// LeaderHint returns the id of the last known leader ("" if unknown).
func (n *Node) LeaderHint() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == leader {
		return n.id
	}
	return n.leaderID
}

// CommitIndex returns the node's current commit index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// Applied returns the index of the last entry applied to the state machine.
func (n *Node) Applied() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastApplied
}

// leaderAt returns (term, true) when the node is a live leader.
func (n *Node) leaderAt() (uint64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term, n.role == leader && !n.stopped
}

// progress returns the metric-bridge view of the node.
func (n *Node) progress() (term, commit, applied uint64, stopped bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term, n.commitIndex, n.lastApplied, n.stopped
}

// quorum returns the majority size of the group.
func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

// peersExceptSelf returns the other members, in configuration order.
func (n *Node) peersExceptSelf() []string {
	out := make([]string, 0, len(n.cfg.Peers)-1)
	for _, p := range n.cfg.Peers {
		if p != n.id {
			out = append(out, p)
		}
	}
	return out
}

// resetElectionTimerLocked re-arms the randomized election timeout.
func (n *Node) resetElectionTimerLocked() {
	t := n.cfg.ElectionTimeout
	n.electionDeadline = time.Now().Add(t + time.Duration(n.rng.Int63n(int64(t))))
}

// stepDownLocked demotes the node to follower, adopting term when higher.
func (n *Node) stepDownLocked(term uint64) {
	if term > n.term {
		n.term = term
		n.votedFor = ""
	}
	if n.role != follower {
		n.role = follower
		n.resetElectionTimerLocked()
	}
	n.aLeader.Store(false)
	n.aLease.Store(0)
	n.leaseUntil = time.Time{}
}

// failWaitersFromLocked fails every waiter at index ≥ idx: their entries
// were truncated by a new leader's conflicting log.
func (n *Node) failWaitersFromLocked(idx uint64) {
	for i, w := range n.waiters {
		if i >= idx {
			delete(n.waiters, i)
			w.ch <- applyResult{err: ErrProposalLost}
			n.g.metrics.proposals.With(resultLost).Inc()
		}
	}
}

// kick nudges the ticker goroutine to run a replication round now instead
// of at the next tick, so proposals ship at RPC latency, not tick latency.
func (n *Node) kick() {
	if n.cfg.Manual {
		return
	}
	select {
	case n.kickCh <- struct{}{}:
	default:
	}
}

// run is the node's single ticker goroutine: it campaigns when the
// election timer fires and drives heartbeat/replication rounds as leader.
// All sends happen synchronously on this goroutine, one peer at a time,
// which keeps a seeded netsim schedule reproducible.
func (n *Node) run() {
	defer n.wg.Done()
	tick := n.cfg.Heartbeat / 3
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.kickCh:
		case <-t.C:
		}
		n.step(time.Now())
	}
}

// step runs one scheduling decision at the given time.
func (n *Node) step(now time.Time) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	if n.role == leader {
		// A leader cut off from quorum long enough for another election to
		// have completed demotes itself, so proposers stop queueing on it.
		if !n.leaseUntil.IsZero() && now.Sub(n.leaseUntil) > 2*n.cfg.ElectionTimeout {
			n.stepDownLocked(n.term)
			n.mu.Unlock()
			return
		}
		due := now.Sub(n.lastBeat) >= n.cfg.Heartbeat || n.pushPending
		n.mu.Unlock()
		if due {
			n.Heartbeat()
		}
		return
	}
	due := now.After(n.electionDeadline)
	n.mu.Unlock()
	if due {
		n.Campaign()
	}
}

// Campaign runs one election round synchronously: increment the term, vote
// for self, solicit the other members in order, and assume leadership on a
// majority. It returns whether the node emerged as leader. Timed nodes call
// it from the ticker when the election timer fires; Manual tests call it
// directly.
func (n *Node) Campaign() bool {
	n.mu.Lock()
	if n.stopped || n.role == leader {
		n.mu.Unlock()
		return false
	}
	n.role = candidate
	n.term++
	n.votedFor = n.id
	n.leaderID = ""
	n.resetElectionTimerLocked()
	term := n.term
	lastIdx := n.log.lastIndex()
	lastTerm := n.log.termAt(lastIdx)
	n.g.metrics.elections.Inc()
	n.mu.Unlock()

	votes := 1
	for _, p := range n.peersExceptSelf() {
		if votes >= n.quorum() {
			break
		}
		req := voteRequest{Term: term, Candidate: n.id, LastLogIndex: lastIdx, LastLogTerm: lastTerm}
		var rep voteReply
		err := n.g.rpc(n.id, p, "raft_vote", func(peer *Node) error {
			r, herr := peer.handleVote(req)
			rep = r
			return herr
		})
		if err != nil {
			continue
		}
		n.mu.Lock()
		if n.stopped || n.term != term || n.role != candidate {
			n.mu.Unlock()
			return false
		}
		if rep.Term > n.term {
			n.stepDownLocked(rep.Term)
			n.mu.Unlock()
			return false
		}
		n.mu.Unlock()
		if rep.Granted {
			votes++
		}
	}
	if votes < n.quorum() {
		return false
	}
	n.mu.Lock()
	if n.stopped || n.term != term || n.role != candidate {
		n.mu.Unlock()
		return false
	}
	n.becomeLeaderLocked()
	onLeader := n.cfg.OnLeader
	n.mu.Unlock()
	if onLeader != nil {
		go onLeader(term)
	}
	n.Heartbeat()
	return true
}

// becomeLeaderLocked switches the node to leader: reset replication state
// and append a no-op barrier entry so the new term has an entry to commit
// (Raft only counts replicas for entries of the current term).
func (n *Node) becomeLeaderLocked() {
	n.role = leader
	n.leaderID = n.id
	last := n.log.lastIndex()
	for _, p := range n.peersExceptSelf() {
		n.nextIndex[p] = last + 1
		n.matchIndex[p] = 0
	}
	n.log.appendCmd(n.term, nil)
	n.pushPending = true
	n.aLeader.Store(true)
	n.g.metrics.leaderChanges.Inc()
}

// Heartbeat runs one leader replication round synchronously: every peer
// receives outstanding entries (or an empty heartbeat), divergent followers
// are backed up via conflict hints or caught up via snapshot, the commit
// index advances over majority-replicated current-term entries, and a
// majority of acknowledgements refreshes the quorum lease. Timed nodes call
// it from the ticker; Manual tests call it directly.
func (n *Node) Heartbeat() {
	// When a round advances the commit index, one extra pass propagates it
	// to the followers immediately instead of waiting a heartbeat interval.
	if n.heartbeatRound() {
		n.heartbeatRound()
	}
}

// heartbeatRound runs one replication round, returning whether the commit
// index advanced.
func (n *Node) heartbeatRound() bool {
	n.mu.Lock()
	if n.stopped || n.role != leader {
		n.mu.Unlock()
		return false
	}
	term := n.term
	roundStart := time.Now()
	n.lastBeat = roundStart
	n.pushPending = false
	n.mu.Unlock()

	acks := 1
	for _, p := range n.peersExceptSelf() {
		if n.replicateTo(p, term) {
			acks++
		}
	}

	advanced := false
	n.mu.Lock()
	if !n.stopped && n.role == leader && n.term == term {
		if acks >= n.quorum() {
			n.leaseUntil = roundStart.Add(n.lease)
			n.aLease.Store(n.leaseUntil.UnixNano())
		}
		before := n.commitIndex
		n.advanceCommitLocked()
		advanced = n.commitIndex > before
	}
	n.mu.Unlock()
	return advanced
}

// replicateTo brings one follower up to date within a round: entries from
// its nextIndex, backing up on conflict hints, or an InstallSnapshot when
// its nextIndex precedes the leader's compaction point. Returns whether the
// follower acknowledged up through the leader's round-start log.
func (n *Node) replicateTo(p string, term uint64) bool {
	for attempt := 0; attempt < 4; attempt++ {
		n.mu.Lock()
		if n.stopped || n.role != leader || n.term != term {
			n.mu.Unlock()
			return false
		}
		ni := n.nextIndex[p]
		if ni == 0 {
			ni = 1
		}
		if ni <= n.log.base {
			req := snapshotRequest{
				Term:      term,
				Leader:    n.id,
				LastIndex: n.log.base,
				LastTerm:  n.log.baseTerm,
				Data:      append([]byte(nil), n.log.snapshot...),
			}
			n.mu.Unlock()
			var rep snapshotReply
			err := n.g.rpc(n.id, p, "raft_snapshot", func(peer *Node) error {
				r, herr := peer.handleSnapshot(req)
				rep = r
				return herr
			})
			if err != nil {
				return false
			}
			n.mu.Lock()
			if rep.Term > n.term {
				n.stepDownLocked(rep.Term)
				n.mu.Unlock()
				return false
			}
			if n.role == leader && n.term == term {
				if req.LastIndex > n.matchIndex[p] {
					n.matchIndex[p] = req.LastIndex
				}
				n.nextIndex[p] = req.LastIndex + 1
			}
			n.mu.Unlock()
			n.g.metrics.snapInstalls.Inc()
			// The follower installs the staged snapshot from its applier;
			// entries past it ship on the next round.
			return true
		}
		prev := ni - 1
		req := appendRequest{
			Term:      term,
			Leader:    n.id,
			PrevIndex: prev,
			PrevTerm:  n.log.termAt(prev),
			Entries:   n.log.from(ni),
			Commit:    n.commitIndex,
		}
		n.mu.Unlock()
		var rep appendReply
		err := n.g.rpc(n.id, p, "raft_append", func(peer *Node) error {
			r, herr := peer.handleAppend(req)
			rep = r
			return herr
		})
		if err != nil {
			return false
		}
		n.mu.Lock()
		if n.stopped || n.role != leader || n.term != term {
			n.mu.Unlock()
			return false
		}
		if rep.Term > n.term {
			n.stepDownLocked(rep.Term)
			n.mu.Unlock()
			return false
		}
		if rep.Success {
			if rep.MatchIndex > n.matchIndex[p] {
				n.matchIndex[p] = rep.MatchIndex
			}
			n.nextIndex[p] = n.matchIndex[p] + 1
			n.mu.Unlock()
			return true
		}
		ci := rep.ConflictIndex
		if ci == 0 || ci > prev {
			ci = prev
		}
		if ci == 0 {
			ci = 1
		}
		n.nextIndex[p] = ci
		n.mu.Unlock()
	}
	return false
}

// advanceCommitLocked advances the commit index over the highest
// current-term entry replicated to a majority, then wakes the applier.
func (n *Node) advanceCommitLocked() {
	for idx := n.log.lastIndex(); idx > n.commitIndex; idx-- {
		if n.log.termAt(idx) != n.term {
			break
		}
		count := 1
		for _, p := range n.peersExceptSelf() {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			n.applyCond.Signal()
			break
		}
	}
}

// Propose appends cmd to the log if this node is leader, returning the
// entry's index and term. The entry commits (or is lost to a competing
// leader) asynchronously; use ProposeWait to observe the outcome.
func (n *Node) Propose(cmd []byte) (index, term uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		n.g.metrics.proposals.With(resultStopped).Inc()
		return 0, 0, ErrStopped
	}
	if n.role != leader {
		n.g.metrics.proposals.With(resultNotLeader).Inc()
		return 0, 0, fmt.Errorf("%w (leader hint: %s)", ErrNotLeader, n.leaderID)
	}
	idx := n.log.appendCmd(n.term, cmd)
	n.pushPending = true
	n.kick()
	return idx, n.term, nil
}

// ProposeWait proposes cmd and blocks until the entry applies locally
// (returning the state machine's Apply result), is lost to a new leader
// (ErrProposalLost), or the timeout elapses (ErrProposalTimeout — outcome
// unknown, so only idempotent commands should be retried). Not usable on
// Manual nodes, whose apply path is driven explicitly.
func (n *Node) ProposeWait(cmd []byte, timeout time.Duration) (any, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		n.g.metrics.proposals.With(resultStopped).Inc()
		return nil, ErrStopped
	}
	if n.role != leader {
		hint := n.leaderID
		n.mu.Unlock()
		n.g.metrics.proposals.With(resultNotLeader).Inc()
		return nil, fmt.Errorf("%w (leader hint: %s)", ErrNotLeader, hint)
	}
	idx := n.log.appendCmd(n.term, cmd)
	w := &waiter{term: n.term, ch: make(chan applyResult, 1)}
	n.waiters[idx] = w
	n.pushPending = true
	n.kick()
	n.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-w.ch:
		if r.err == nil {
			n.g.metrics.proposals.With(resultCommitted).Inc()
		}
		return r.res, r.err
	case <-timer.C:
		n.mu.Lock()
		delete(n.waiters, idx)
		n.mu.Unlock()
		n.g.metrics.proposals.With(resultTimeout).Inc()
		return nil, ErrProposalTimeout
	}
}

// Barrier proposes a no-op entry and waits for it to commit — after it
// returns, every entry committed before the call has applied to this
// node's state machine. A new leader uses it to catch its materialized
// state up before serving.
func (n *Node) Barrier(timeout time.Duration) error {
	_, err := n.ProposeWait(nil, timeout)
	return err
}

// applyLoop is the node's single applier goroutine (timed mode): it
// installs staged snapshots and applies committed entries in order.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for !n.stopped && n.pendingSnap == nil && n.lastApplied >= n.commitIndex {
			n.applyCond.Wait()
		}
		stopped := n.stopped
		n.mu.Unlock()
		if stopped {
			return
		}
		n.applyOnce()
	}
}

// DrainApply applies everything outstanding (staged snapshot installs and
// committed entries) synchronously. Manual tests call it between rounds;
// timed nodes drain from the apply goroutine.
func (n *Node) DrainApply() {
	for n.applyOnce() {
	}
}

// applyOnce performs one unit of apply work, returning whether any
// progress was made. All StateMachine calls happen here, outside n.mu, and
// only ever from one goroutine per node.
func (n *Node) applyOnce() bool {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return false
	}
	if ps := n.pendingSnap; ps != nil {
		n.pendingSnap = nil
		if ps.LastIndex > n.commitIndex && ps.LastIndex > n.log.base {
			n.log.reset(ps.LastIndex, ps.LastTerm, ps.Data)
			n.commitIndex = ps.LastIndex
			n.lastApplied = ps.LastIndex
			data := ps.Data
			n.mu.Unlock()
			n.sm.Restore(data)
			return true
		}
	}
	if n.lastApplied >= n.commitIndex {
		n.mu.Unlock()
		return false
	}
	ents := n.log.slice(n.lastApplied+1, n.commitIndex)
	n.mu.Unlock()

	for _, e := range ents {
		var res any
		if len(e.Cmd) > 0 {
			res = n.sm.Apply(e.Index, e.Cmd)
		}
		n.mu.Lock()
		n.lastApplied = e.Index
		if w, ok := n.waiters[e.Index]; ok {
			delete(n.waiters, e.Index)
			if w.term == e.Term {
				w.ch <- applyResult{res: res}
			} else {
				w.ch <- applyResult{err: ErrProposalLost}
				n.g.metrics.proposals.With(resultLost).Inc()
			}
		}
		n.mu.Unlock()
	}
	n.maybeSnapshot()
	return true
}

// maybeSnapshot compacts the log once enough applied entries accumulate
// past the last snapshot. Runs on the applier goroutine, so the state
// machine is exactly at lastApplied when Snapshot is taken.
func (n *Node) maybeSnapshot() {
	n.mu.Lock()
	la := n.lastApplied
	if la < n.log.base || la-n.log.base < uint64(n.cfg.SnapshotThreshold) {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	data := n.sm.Snapshot()
	n.mu.Lock()
	if la > n.log.base {
		n.log.compact(la, n.log.termAt(la), data)
		n.g.metrics.snapshots.Inc()
	}
	n.mu.Unlock()
}

// Stop halts the node, modelling a process kill: goroutines exit, RPCs are
// refused, and pending local proposals fail with ErrStopped. Durable Raft
// state (term, vote, log, snapshot) survives for Restart.
func (n *Node) Stop() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.stepDownLocked(n.term)
	for i, w := range n.waiters {
		delete(n.waiters, i)
		w.ch <- applyResult{err: ErrStopped}
		n.g.metrics.proposals.With(resultStopped).Inc()
	}
	close(n.stopCh)
	n.applyCond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
}

// Restart revives a stopped node as a follower, recovering from its
// durable state as a real process would recover from disk.
func (n *Node) Restart() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	n.mu.Lock()
	if !n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = false
	n.role = follower
	n.leaderID = ""
	n.pendingSnap = nil
	n.stopCh = make(chan struct{})
	n.resetElectionTimerLocked()
	n.mu.Unlock()
	if !n.cfg.Manual {
		n.start()
	}
}
