package wire

import (
	"errors"

	"sdp/internal/core"
	"sdp/internal/sqldb"
)

// codeFor classifies a server-side error into the wire error code the
// client will see. The mapping is the inverse of sentinelFor: every
// retryable in-process condition lands on a code >= ErrCodeRejected so the
// client's retry loop and the in-process sdp.IsRetryable agree.
func codeFor(err error) uint16 {
	var pe *sqldb.ParseError
	switch {
	case errors.As(err, &pe):
		return ErrCodeParse
	case core.IsRejection(err):
		return ErrCodeRejected
	case errors.Is(err, sqldb.ErrDeadlock):
		return ErrCodeDeadlock
	case errors.Is(err, sqldb.ErrLockTimeout):
		return ErrCodeLockTimeout
	case errors.Is(err, sqldb.ErrOptimisticConflict):
		return ErrCodeOptimisticConflict
	case errors.Is(err, core.ErrStaleRoute):
		return ErrCodeStaleRoute
	case errors.Is(err, core.ErrMachineFailed):
		return ErrCodeMachineFailed
	case errors.Is(err, core.ErrNotLeader), errors.Is(err, core.ErrNoQuorum):
		return ErrCodeNotLeader
	case core.IsRetryable(err):
		// Remaining transient conditions: 2PC prepare timeout, replicas
		// unreachable behind a partition, simulated network faults, a
		// branch abort surfacing through a vote.
		return ErrCodeUnavailable
	case errors.Is(err, core.ErrNoDatabase):
		return ErrCodeDatabase
	default:
		return ErrCodeExec
	}
}

// sentinelFor maps a wire error code back to the canonical in-process
// sentinel, so errors.Is works identically on both sides of the socket.
func sentinelFor(code uint16) error {
	switch code {
	case ErrCodeRejected:
		return core.ErrRejected
	case ErrCodeDeadlock:
		return sqldb.ErrDeadlock
	case ErrCodeLockTimeout:
		return sqldb.ErrLockTimeout
	case ErrCodeOptimisticConflict:
		return sqldb.ErrOptimisticConflict
	case ErrCodeStaleRoute:
		return core.ErrStaleRoute
	case ErrCodeMachineFailed:
		return core.ErrMachineFailed
	case ErrCodeNotLeader:
		return core.ErrNotLeader
	case ErrCodeUnavailable:
		return core.ErrUnreachable
	case ErrCodeShutdown:
		return ErrServerShutdown
	case ErrCodeProtocol:
		return errProtocol
	case ErrCodeDatabase:
		return core.ErrNoDatabase
	default:
		return nil
	}
}
