// TPC-W: run the paper's evaluation workload against the platform — load
// the TPC-W bookstore schema into a replicated database and drive the three
// standard transaction mixes, printing achieved throughput and abort rates.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sdp"
	"sdp/internal/tpcw"
)

// platformDB adapts a platform connection to the TPC-W client interface.
type platformDB struct{ conn *sdp.Conn }

func (d platformDB) Begin() (tpcw.Txn, error) { return d.conn.Begin() }

func main() {
	sizeMB := flag.Float64("size", 100, "nominal database size in MB")
	sessions := flag.Int("sessions", 4, "concurrent client sessions")
	duration := flag.Duration("duration", 2*time.Second, "measurement duration per mix")
	flag.Parse()

	p := sdp.New(sdp.Config{ClusterSize: 4})
	p.AddColo("west", "us-west", 4)
	if err := p.CreateDatabase("tpcw", sdp.SLA{SizeMB: *sizeMB, MinTPS: 5}, "west"); err != nil {
		log.Fatal(err)
	}

	db := platformDB{conn: p.Open("tpcw")}
	scale := tpcw.ScaleForMB(*sizeMB, 42)
	fmt.Printf("loading TPC-W at ~%.0f MB (%d items, %d customers, %d orders)...\n",
		*sizeMB, scale.Items, scale.Customers, scale.Orders)
	start := time.Now()
	if err := tpcw.Load(db, scale); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v\n\n", time.Since(start).Round(time.Millisecond))

	// One shared Workload: its order-ID allocator spans all sessions and
	// mixes against this database.
	w := tpcw.NewWorkload(scale)
	fmt.Printf("%-10s %10s %10s %10s %8s  %s\n", "mix", "committed", "aborted", "tps", "writes", "latency")
	for _, mix := range tpcw.Mixes {
		client := &tpcw.Client{
			DB:       db,
			Mix:      mix,
			Workload: w,
		}
		st := client.RunConcurrent(*sessions, *duration, 7)
		if st.Fatal > 0 {
			log.Fatalf("%s mix: %d fatal errors", mix.Name, st.Fatal)
		}
		writes := st.ByKind[tpcw.TxCartUpdate] + st.ByKind[tpcw.TxBuyConfirm] + st.ByKind[tpcw.TxAdminUpdate]
		fmt.Printf("%-10s %10d %10d %10.1f %7.1f%%  %s\n",
			mix.Name, st.Committed, st.Aborted, st.TPS(),
			float64(writes)/float64(st.Committed)*100, st.Latency)
	}
}
