package core

import (
	"fmt"
	"testing"

	"sdp/internal/sla"
)

func TestRebalanceReducesPeak(t *testing.T) {
	c := NewCluster("rb", Options{Replicas: 1})
	if _, err := c.AddMachines(4); err != nil {
		t.Fatal(err)
	}
	// Pile several databases onto the first machines via First-Fit: each
	// needs 0.2 of a machine, so all 4 land on m1 (replicas=1).
	req := sla.Resources{CPU: 0.2, Memory: 0.2, Disk: 0.05, DiskBW: 0.05}
	for i := 0; i < 4; i++ {
		db := fmt.Sprintf("db%d", i)
		if _, err := c.PlaceWithSLA(db, req, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(db, "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 30; j++ {
			if _, err := c.Exec(db, fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", j, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	m1, _ := c.Machine("m1")
	if got := m1.utilisation(); got < 0.79 {
		t.Fatalf("m1 utilisation = %v, want ~0.8 (all dbs on m1)", got)
	}

	report, err := c.Rebalance(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Moves) == 0 {
		t.Fatal("no moves performed")
	}
	if report.PeakAfter >= report.PeakBefore {
		t.Errorf("peak did not improve: %v -> %v", report.PeakBefore, report.PeakAfter)
	}
	if report.PeakAfter > 0.41 {
		t.Errorf("peak after rebalance = %v, want <= ~0.4", report.PeakAfter)
	}
	// Every database still serves queries with its full data.
	for i := 0; i < 4; i++ {
		db := fmt.Sprintf("db%d", i)
		res, err := c.Exec(db, "SELECT COUNT(*) FROM t")
		if err != nil {
			t.Fatalf("%s: %v", db, err)
		}
		if res.Rows[0][0].Int != 30 {
			t.Errorf("%s count = %v", db, res.Rows[0][0])
		}
	}
	// Reservations remain consistent: total used equals 4 * req.
	var total sla.Resources
	for _, id := range c.MachineIDs() {
		m, _ := c.Machine(id)
		total = total.Add(m.Used())
	}
	if total.CPU != 0.8 {
		t.Errorf("total reserved CPU = %v, want 0.8", total.CPU)
	}
}

func TestRebalanceNoOpWhenBalanced(t *testing.T) {
	c := NewCluster("rb", Options{Replicas: 1})
	if _, err := c.AddMachines(2); err != nil {
		t.Fatal(err)
	}
	req := sla.Resources{CPU: 0.4, Memory: 0.4, Disk: 0.1, DiskBW: 0.1}
	if _, err := c.PlaceWithSLA("a", req, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("a", "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	// Force the second db onto m2 by filling m1.
	if _, err := c.PlaceWithSLA("filler", sla.Resources{CPU: 0.5, Memory: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	report, err := c.Rebalance(10)
	if err != nil {
		t.Fatal(err)
	}
	// m1 has 0.9, m2 has 0; moving 'a' (0.4) to m2 improves peak to 0.5;
	// moving filler (0.5, but filler has no table data) improves to 0.4+0.5.
	// Whatever the moves, peak must not worsen and must end <= before.
	if report.PeakAfter > report.PeakBefore {
		t.Errorf("peak worsened: %v -> %v", report.PeakBefore, report.PeakAfter)
	}
	// A second run from the balanced state does nothing.
	report2, err := c.Rebalance(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Moves) != 0 {
		t.Errorf("rebalance of balanced cluster moved %v", report2.Moves)
	}
}
