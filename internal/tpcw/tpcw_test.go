package tpcw

import (
	"math/rand"
	"testing"
	"time"

	"sdp/internal/sqldb"
)

// engineDB adapts a single sqldb.Engine database to the DB interface.
type engineDB struct {
	e  *sqldb.Engine
	db string
}

func (d engineDB) Begin() (Txn, error) { return d.e.Begin(d.db) }

func newLoadedDB(t *testing.T, sc Scale) engineDB {
	t.Helper()
	e := sqldb.NewEngine(sqldb.DefaultConfig())
	if err := e.CreateDatabase("tpcw"); err != nil {
		t.Fatal(err)
	}
	db := engineDB{e: e, db: "tpcw"}
	if err := Load(db, sc); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadRowCounts(t *testing.T) {
	sc := SmallScale(1)
	db := newLoadedDB(t, sc)
	for _, table := range Tables {
		n, err := CountRows(db, table)
		if err != nil {
			t.Fatalf("count %s: %v", table, err)
		}
		if n == 0 {
			t.Errorf("table %s is empty", table)
		}
	}
	items, _ := CountRows(db, "item")
	if items != int64(sc.Items) {
		t.Errorf("items = %d, want %d", items, sc.Items)
	}
	custs, _ := CountRows(db, "customer")
	if custs != int64(sc.Customers) {
		t.Errorf("customers = %d, want %d", custs, sc.Customers)
	}
}

func TestScaleForMBGrows(t *testing.T) {
	small := ScaleForMB(200, 1)
	large := ScaleForMB(1000, 1)
	if large.Items <= small.Items || large.Customers <= small.Customers {
		t.Errorf("scale did not grow: %+v vs %+v", small, large)
	}
}

func TestAllTransactionKindsRun(t *testing.T) {
	db := newLoadedDB(t, SmallScale(2))
	w := NewWorkload(SmallScale(2))
	rng := rand.New(rand.NewSource(3))
	for kind := TxKind(0); kind < numTxKinds; kind++ {
		for i := 0; i < 5; i++ {
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Run(kind, tx, rng); err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("%s commit: %v", kind, err)
			}
		}
	}
}

func TestBuyConfirmConsistency(t *testing.T) {
	db := newLoadedDB(t, SmallScale(4))
	w := NewWorkload(SmallScale(4))
	rng := rand.New(rand.NewSource(5))

	before, _ := CountRows(db, "orders")
	for i := 0; i < 10; i++ {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(TxBuyConfirm, tx, rng); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := CountRows(db, "orders")
	if after != before+10 {
		t.Errorf("orders %d -> %d, want +10", before, after)
	}
	cc, _ := CountRows(db, "cc_xacts")
	if cc != after {
		t.Errorf("cc_xacts = %d, orders = %d (must match)", cc, after)
	}
	// Every order line references an existing order.
	tx, _ := db.Begin()
	res, err := tx.Exec("SELECT COUNT(*) FROM order_line ol LEFT JOIN orders o ON ol.ol_o_id = o.o_id WHERE o.o_id IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if res.Rows[0][0].Int != 0 {
		t.Errorf("%v orphaned order lines", res.Rows[0][0])
	}
}

func TestMixWriteFractions(t *testing.T) {
	cases := []struct {
		mix Mix
		lo  float64
		hi  float64
	}{
		{BrowsingMix, 0.03, 0.08},
		{ShoppingMix, 0.15, 0.25},
		{OrderingMix, 0.45, 0.55},
	}
	for _, c := range cases {
		f := c.mix.WriteFraction()
		if f < c.lo || f > c.hi {
			t.Errorf("%s write fraction = %v, want in [%v,%v]", c.mix.Name, f, c.lo, c.hi)
		}
	}
}

func TestMixPickMatchesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := map[TxKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[OrderingMix.pick(rng)]++
	}
	writes := counts[TxCartUpdate] + counts[TxBuyConfirm] + counts[TxAdminUpdate]
	frac := float64(writes) / n
	if frac < 0.45 || frac < 0.4 || frac > 0.6 {
		t.Errorf("sampled ordering write fraction = %v", frac)
	}
}

func TestClientRunConcurrent(t *testing.T) {
	db := newLoadedDB(t, SmallScale(6))
	c := &Client{DB: db, Mix: ShoppingMix, Workload: NewWorkload(SmallScale(6))}
	st := c.RunConcurrent(4, 150*time.Millisecond, 11)
	if st.Fatal != 0 {
		t.Fatalf("fatal errors: %+v", st)
	}
	if st.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if st.TPS() <= 0 {
		t.Errorf("TPS = %v", st.TPS())
	}
}

func TestClassifierDefaults(t *testing.T) {
	if DefaultClassifier(sqldb.ErrDeadlock) != ClassAborted {
		t.Error("deadlock should be ClassAborted")
	}
	if DefaultClassifier(sqldb.ErrLockTimeout) != ClassAborted {
		t.Error("timeout should be ClassAborted")
	}
	if DefaultClassifier(sqldb.ErrNoTable) != ClassFatal {
		t.Error("missing table should be fatal")
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 > time.Millisecond {
		t.Errorf("p50 = %v, want <= 1ms bound", p50)
	}
	if p99 < 10*time.Millisecond {
		t.Errorf("p99 = %v, want >= 10ms", p99)
	}
	var other Histogram
	other.Observe(time.Second)
	h.Merge(other)
	if h.Count() != 101 {
		t.Errorf("merged count = %d", h.Count())
	}
	if h.String() == "" {
		t.Error("empty String()")
	}
}

func TestClientRecordsLatency(t *testing.T) {
	db := newLoadedDB(t, SmallScale(8))
	c := &Client{DB: db, Mix: BrowsingMix, Workload: NewWorkload(SmallScale(8))}
	st := c.RunConcurrent(2, 100*time.Millisecond, 3)
	if st.Committed > 0 && st.Latency.Count() != st.Committed {
		t.Errorf("latency samples %d != committed %d", st.Latency.Count(), st.Committed)
	}
	if st.Committed > 0 && st.Latency.Quantile(0.5) == 0 {
		t.Error("p50 = 0 with committed transactions")
	}
}
