package consensus

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sdp/internal/netsim"
)

// testSM is a deterministic state machine recording applied commands.
type testSM struct {
	mu      sync.Mutex
	applied []string
}

func (s *testSM) Apply(index uint64, cmd []byte) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = append(s.applied, string(cmd))
	return string(cmd)
}

func (s *testSM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, _ := json.Marshal(s.applied)
	return data
}

func (s *testSM) Restore(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = nil
	_ = json.Unmarshal(data, &s.applied)
}

func (s *testSM) fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return strings.Join(s.applied, ",")
}

// newTestGroup builds an n-node group. Manual groups are driven explicitly
// by Campaign/Heartbeat/DrainApply; timed groups run their own tickers.
func newTestGroup(n int, seed int64, net *netsim.Network, manual bool, threshold int) (*Group, []*Node, []*testSM) {
	g := NewGroup(net, nil)
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("n%d", i)
	}
	nodes := make([]*Node, n)
	sms := make([]*testSM, n)
	for i := range peers {
		sms[i] = &testSM{}
		nodes[i] = g.Add(Config{
			ID:                peers[i],
			Peers:             peers,
			Seed:              seed + int64(i),
			Manual:            manual,
			SnapshotThreshold: threshold,
			ElectionTimeout:   30 * time.Millisecond,
		}, sms[i])
	}
	return g, nodes, sms
}

// lastIndex reads a node's last log index.
func lastIndex(n *Node) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.log.lastIndex()
}

// logBase reads a node's snapshot base index.
func logBase(n *Node) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.log.base
}

// drainAll drains every node's apply queue.
func drainAll(nodes []*Node) {
	for _, n := range nodes {
		n.DrainApply()
	}
}

func TestElectionAndReplication(t *testing.T) {
	g, nodes, sms := newTestGroup(3, 1, nil, true, 0)
	defer g.Stop()
	if !nodes[0].Campaign() {
		t.Fatal("campaign with all peers reachable should win")
	}
	if !nodes[0].IsLeader() {
		t.Fatal("winner should report leadership")
	}
	for i, n := range nodes[1:] {
		if n.IsLeader() {
			t.Fatalf("node %d should be follower", i+1)
		}
		if n.Term() != 1 {
			t.Fatalf("node %d term = %d, want 1", i+1, n.Term())
		}
	}
	if _, _, err := nodes[1].Propose([]byte("x")); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("propose on follower: err = %v, want ErrNotLeader", err)
	}
	for _, cmd := range []string{"a", "b", "c"} {
		if _, _, err := nodes[0].Propose([]byte(cmd)); err != nil {
			t.Fatalf("propose %q: %v", cmd, err)
		}
	}
	nodes[0].Heartbeat()
	drainAll(nodes)
	for i, sm := range sms {
		if got := sm.fingerprint(); got != "a,b,c" {
			t.Fatalf("node %d applied %q, want a,b,c", i, got)
		}
	}
	if c := nodes[0].CommitIndex(); c != 4 { // no-op barrier + 3 commands
		t.Fatalf("commit index = %d, want 4", c)
	}
	if !nodes[0].HasLease() {
		t.Fatal("leader should hold the quorum lease after an acked round")
	}
}

// TestElectionAsymmetricPartition cuts only the outbound links of one node:
// it cannot gather votes (its requests are refused) while a healthy peer
// still can, even collecting the partitioned node's vote. After healing,
// the inflated term the isolated candidate accumulated disrupts the leader
// once, and the group re-elects and converges.
func TestElectionAsymmetricPartition(t *testing.T) {
	net := netsim.New(7, nil)
	g, nodes, sms := newTestGroup(3, 7, net, true, 0)
	defer g.Stop()

	net.Partition("n0", "n1")
	net.Partition("n0", "n2")
	if nodes[0].Campaign() {
		t.Fatal("candidate with outbound links cut must not win")
	}
	if nodes[0].Term() != 1 {
		t.Fatalf("isolated candidate term = %d, want 1", nodes[0].Term())
	}
	// The healthy side elects: n1 reaches n2 (and even n0 — inbound to n0
	// is open, but n0 already voted for itself in term 1).
	if !nodes[1].Campaign() {
		t.Fatal("n1 should win with n2's vote")
	}
	// The isolated node keeps campaigning at higher terms, in vain.
	nodes[0].Campaign()
	nodes[0].Campaign()
	if nodes[0].IsLeader() {
		t.Fatal("isolated node must not become leader")
	}
	infl := nodes[0].Term()
	if infl <= nodes[1].Term() {
		t.Fatalf("isolated candidate should inflate its term: %d vs %d", infl, nodes[1].Term())
	}

	net.Heal("n0", "n1")
	net.Heal("n0", "n2")
	// The stale-term leader hears the inflated term and steps down...
	nodes[1].Heartbeat()
	if nodes[1].IsLeader() {
		t.Fatal("leader should step down on seeing a higher term")
	}
	// ...and wins the re-election at the higher term (its log is as
	// up to date as anyone's).
	if !nodes[1].Campaign() {
		t.Fatal("n1 should win re-election after adopting the higher term")
	}
	if nodes[1].Term() < infl {
		t.Fatalf("re-election term %d should be >= inflated term %d", nodes[1].Term(), infl)
	}
	if _, _, err := nodes[1].Propose([]byte("a")); err != nil {
		t.Fatalf("propose: %v", err)
	}
	nodes[1].Heartbeat()
	drainAll(nodes)
	for i, sm := range sms {
		if got := sm.fingerprint(); got != "a" {
			t.Fatalf("node %d applied %q, want a", i, got)
		}
	}
}

// TestDivergenceRepairAfterStaleLeader isolates a leader that keeps
// appending uncommitted entries, elects a new leader that commits a
// different suffix, and verifies the rejoining stale leader truncates its
// divergent tail, fails the lost proposal's waiter, and converges.
func TestDivergenceRepairAfterStaleLeader(t *testing.T) {
	net := netsim.New(11, nil)
	g, nodes, sms := newTestGroup(3, 11, net, true, 0)
	defer g.Stop()

	if !nodes[0].Campaign() {
		t.Fatal("n0 should win the first election")
	}
	if _, _, err := nodes[0].Propose([]byte("a")); err != nil {
		t.Fatal(err)
	}
	nodes[0].Heartbeat()
	drainAll(nodes)

	net.PartitionPair("n0", "n1")
	net.PartitionPair("n0", "n2")

	// The stale leader accepts a proposal it can never commit.
	lost := make(chan error, 1)
	go func() {
		_, err := nodes[0].ProposeWait([]byte("x"), 5*time.Second)
		lost <- err
	}()
	deadline := time.Now().Add(time.Second)
	for lastIndex(nodes[0]) != 3 {
		if time.Now().After(deadline) {
			t.Fatal("stale leader never appended the doomed entry")
		}
		time.Sleep(time.Millisecond)
	}
	nodes[0].Heartbeat() // no quorum: nothing commits

	// The majority side moves on.
	if !nodes[1].Campaign() {
		t.Fatal("n1 should win the partition-majority election")
	}
	if _, _, err := nodes[1].Propose([]byte("b")); err != nil {
		t.Fatal(err)
	}
	nodes[1].Heartbeat()
	nodes[1].DrainApply()
	nodes[2].DrainApply()

	net.HealAll()
	nodes[1].Heartbeat() // repairs n0: truncate "x", append the new suffix
	drainAll(nodes)

	select {
	case err := <-lost:
		if !errors.Is(err, ErrProposalLost) {
			t.Fatalf("doomed proposal: err = %v, want ErrProposalLost", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("doomed proposal's waiter never failed")
	}
	want := sms[1].fingerprint()
	if want != "a,b" {
		t.Fatalf("majority applied %q, want a,b", want)
	}
	for i, sm := range sms {
		if got := sm.fingerprint(); got != want {
			t.Fatalf("node %d applied %q, want %q", i, got, want)
		}
	}
	if li, lj := lastIndex(nodes[0]), lastIndex(nodes[1]); li != lj {
		t.Fatalf("logs diverge after repair: n0=%d n1=%d", li, lj)
	}
}

// TestSnapshotCatchUp stops a replica, commits enough entries for the
// leader to compact its log, and verifies the restarted replica catches up
// through an InstallSnapshot plus the live suffix.
func TestSnapshotCatchUp(t *testing.T) {
	g, nodes, sms := newTestGroup(3, 21, nil, true, 4)
	defer g.Stop()
	if !nodes[0].Campaign() {
		t.Fatal("n0 should win")
	}
	nodes[2].Stop()
	for i := 0; i < 8; i++ {
		if _, _, err := nodes[0].Propose([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
		nodes[0].Heartbeat()
		nodes[0].DrainApply()
		nodes[1].DrainApply()
	}
	if logBase(nodes[0]) == 0 {
		t.Fatal("leader should have compacted its log")
	}
	if g.metrics.snapshots.Value() == 0 {
		t.Fatal("consensus_snapshots_total should have counted the compaction")
	}

	nodes[2].Restart()
	nodes[0].Heartbeat() // ships the snapshot
	nodes[2].DrainApply()
	nodes[0].Heartbeat() // ships the suffix past the snapshot
	nodes[2].DrainApply()

	if g.metrics.snapInstalls.Value() == 0 {
		t.Fatal("consensus_snapshot_installs_total should have counted the install")
	}
	if got, want := sms[2].fingerprint(), sms[0].fingerprint(); got != want {
		t.Fatalf("restarted replica applied %q, want %q", got, want)
	}
	if b := logBase(nodes[2]); b == 0 {
		t.Fatal("restarted replica should be running from an installed snapshot")
	}
	if nodes[2].CommitIndex() != nodes[0].CommitIndex() {
		t.Fatalf("commit index mismatch: %d vs %d", nodes[2].CommitIndex(), nodes[0].CommitIndex())
	}
}

func TestSingleNodeCommits(t *testing.T) {
	g, nodes, sms := newTestGroup(1, 31, nil, false, 0)
	defer g.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for g.Leader() == nil {
		if time.Now().After(deadline) {
			t.Fatal("single node never elected itself")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := nodes[0].ProposeWait([]byte("v"), time.Second)
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if res != "v" {
		t.Fatalf("apply result = %v, want v", res)
	}
	if sms[0].fingerprint() != "v" {
		t.Fatalf("applied %q, want v", sms[0].fingerprint())
	}
}

// TestConcurrentProposalStress hammers a timed 3-node group with parallel
// proposers while the leader is killed and restarted mid-stream. Every
// command must commit at least once (retries may double-apply, which the
// control plane's idempotent commands tolerate) and every replica must
// apply the identical sequence. Run with -race in the race matrix.
func TestConcurrentProposalStress(t *testing.T) {
	g, nodes, sms := newTestGroup(3, 41, nil, false, 64)
	defer g.Stop()
	waitLeader := func() *Node {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := g.Leader(); n != nil {
				return n
			}
			if time.Now().After(deadline) {
				t.Fatal("no leader elected")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitLeader()

	const workers, keys = 8, 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				cmd := []byte(fmt.Sprintf("g%d-k%d", w, k))
				committed := false
				for try := 0; try < 200 && !committed; try++ {
					n := g.Leader()
					if n == nil {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if _, err := n.ProposeWait(cmd, 500*time.Millisecond); err == nil {
						committed = true
					}
				}
				if !committed {
					errCh <- fmt.Errorf("command %s never committed", cmd)
					return
				}
			}
		}(w)
	}

	// Kill the leader mid-stream, then bring it back.
	time.Sleep(20 * time.Millisecond)
	victim := waitLeader()
	victim.Stop()
	time.Sleep(100 * time.Millisecond)
	victim.Restart()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Barrier (retrying across leader changes), then wait for every
	// replica to drain its apply queue.
	leader := waitLeader()
	for try := 0; ; try++ {
		if err := leader.Barrier(2 * time.Second); err == nil {
			break
		} else if try == 20 {
			t.Fatalf("barrier: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
		leader = waitLeader()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := true
		for _, n := range nodes {
			if !n.Stopped() && n.Applied() < leader.CommitIndex() {
				caught = false
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never caught up to the commit index")
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := sms[0].fingerprint()
	for i, sm := range sms {
		if nodes[i].Stopped() {
			continue
		}
		if got := sm.fingerprint(); got != want {
			t.Fatalf("node %d applied sequence diverges from node 0", i)
		}
	}
	seen := make(map[string]bool)
	for _, cmd := range strings.Split(want, ",") {
		seen[cmd] = true
	}
	for w := 0; w < workers; w++ {
		for k := 0; k < keys; k++ {
			if !seen[fmt.Sprintf("g%d-k%d", w, k)] {
				t.Fatalf("command g%d-k%d missing from the applied sequence", w, k)
			}
		}
	}
}
