package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sdp/internal/obs"
	"sdp/internal/wal"
)

// WAL integration. The engine logs logical redo: every successful write
// statement is appended (as literal SQL, re-rendered from the bound AST) while
// the statement's locks are still held, and the commit record is forced to the
// log before any lock is released. Under strict two-phase locking this makes
// log order equal lock-grant order for every pair of conflicting statements,
// so replaying the committed statements in log order rebuilds the exact
// pre-crash state. DDL and namespace changes are logged with transaction ID 0
// and replayed unconditionally, matching their immediate, non-rollbackable
// execution semantics.

// AttachWAL installs the engine's write-ahead log. It must be called before
// the engine serves any traffic; an engine without a WAL runs exactly as
// before (volatile).
func (e *Engine) AttachWAL(l *wal.Log) { e.wal = l }

// WAL returns the attached log, or nil.
func (e *Engine) WAL() *wal.Log { return e.wal }

// walLogging reports whether write operations should append log records:
// a WAL is attached and the engine is not replaying that same log.
func (e *Engine) walLogging() bool {
	return e.wal != nil && !e.recovering.Load()
}

// walStmt appends the redo record for one executed DML statement, preceded by
// the transaction's begin record on its first write. Called while the
// statement's locks are held.
func (e *Engine) walStmt(t *Txn, table string, stmt Statement, params []Value) error {
	if !e.walLogging() {
		return nil
	}
	sql, err := RenderStmt(stmt, params)
	if err != nil {
		return err
	}
	if !t.walBegun {
		t.walBegun = true
		if _, err := e.wal.Append(wal.Record{Type: wal.RecBegin, Txn: t.id, GID: t.GlobalID, DB: t.db}); err != nil {
			return err
		}
	}
	_, err = e.wal.Append(wal.Record{
		Type: wal.RecStatement, Txn: t.id, GID: t.GlobalID,
		DB: t.db, Table: lower(table), Data: []byte(sql),
	})
	return err
}

// walDDL appends the redo record for a DDL statement with transaction ID 0:
// DDL takes effect immediately and survives a rollback of the surrounding
// transaction, so replay applies it regardless of that transaction's outcome.
// Called while the schema change is still protected by whatever lock ordered
// it (the catalog mutex for CREATE/DROP TABLE, the table read lock for CREATE
// INDEX).
func (e *Engine) walDDL(db, table string, stmt Statement) error {
	if !e.walLogging() {
		return nil
	}
	sql, err := RenderStmt(stmt, nil)
	if err != nil {
		return err
	}
	_, err = e.wal.Append(wal.Record{Type: wal.RecStatement, DB: db, Table: lower(table), Data: []byte(sql)})
	return err
}

// walNamespace appends a database create/drop record. Called under the
// catalog mutex, so namespace records are ordered against the DDL and DML of
// the namespace they create or destroy.
func (e *Engine) walNamespace(typ wal.RecordType, db string) error {
	if !e.walLogging() {
		return nil
	}
	_, err := e.wal.Append(wal.Record{Type: typ, DB: db})
	return err
}

// walCommit forces the transaction's commit record to the log. Called before
// the transaction releases any lock; a failure aborts the commit. Group
// commit batches all concurrently committing transactions into one flush.
// Transactions that logged nothing (read-only, or replayed during recovery)
// need no record: the log's durable prefix already decides them.
func (e *Engine) walCommit(t *Txn) error {
	if e.wal == nil || !t.walBegun {
		return nil
	}
	if t.trace.Traced() && e.cfg.Spans != nil {
		start := time.Now()
		_, err := e.wal.AppendSync(wal.Record{Type: wal.RecCommit, Txn: t.id, GID: t.GlobalID, DB: t.db})
		e.cfg.Spans.Record(obs.Span{
			TraceID:  t.trace.TraceID,
			SpanID:   obs.NewTraceID(),
			Parent:   t.trace.SpanID,
			Scope:    "wal",
			Name:     "flush",
			DB:       t.db,
			Start:    start,
			Duration: time.Since(start),
		})
		return err
	}
	_, err := e.wal.AppendSync(wal.Record{Type: wal.RecCommit, Txn: t.id, GID: t.GlobalID, DB: t.db})
	return err
}

// walPrepare forces the transaction's prepare record, making it an in-doubt
// survivor of a crash until a commit or abort record resolves it.
func (e *Engine) walPrepare(t *Txn) error {
	if e.wal == nil || !t.walBegun {
		return nil
	}
	_, err := e.wal.AppendSync(wal.Record{Type: wal.RecPrepare, Txn: t.id, GID: t.GlobalID, DB: t.db})
	return err
}

// walAbort appends the transaction's abort record. Aborts need no flush —
// recovery presumes abort for any transaction without a durable commit — so
// the record is advisory and append errors are ignored (the store may already
// be failing, which is often why the transaction is rolling back).
func (e *Engine) walAbort(t *Txn) {
	if e.wal == nil || !t.walBegun || e.recovering.Load() {
		return
	}
	_, _ = e.wal.Append(wal.Record{Type: wal.RecAbort, Txn: t.id, GID: t.GlobalID, DB: t.db})
}

// Checkpoint writes a fuzzy checkpoint: a begin frame, one namespace marker
// per database, one image frame per table (each captured under that table's
// read lock, one table at a time, so writers are blocked only for their own
// table's copy), and a forced end frame. Recovery uses only checkpoints whose
// end frame is durable. Replay work after a checkpoint is bounded by the log
// tail: a statement frame is applied only if its LSN is past the image frame
// of its table, and strict 2PL guarantees every transaction reflected in the
// image committed before the image frame was appended.
func (e *Engine) Checkpoint() error {
	return e.checkpoint(e.Databases(), true)
}

// CheckpointDatabase writes a fuzzy checkpoint covering only db: its
// namespace marker and all of its tables. Other databases keep recovering
// from their own latest checkpoints (or full replay). The cluster controller
// uses this after physically restoring tables of one database onto a
// machine, making the machine's log self-contained again at the cost of that
// database alone. A checkpoint always covers a whole database — marker plus
// every table — because the marker's LSN filters the namespace's create/drop
// history during replay, which is only sound if every surviving table is
// imaged.
func (e *Engine) CheckpointDatabase(db string) error {
	return e.checkpoint([]string{db}, false)
}

// checkpoint writes one begin/end-framed checkpoint imaging the given
// databases in full. full marks a checkpoint that set out to cover every
// database, making the log head eligible for compaction when the log is
// configured for it; partial checkpoints never compact, since records of the
// uncovered databases must keep replaying.
func (e *Engine) checkpoint(dbs []string, full bool) error {
	if e.wal == nil {
		return fmt.Errorf("sqldb: no WAL attached")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if _, err := e.wal.Append(wal.Record{Type: wal.RecCheckpointBegin}); err != nil {
		return err
	}
	for _, db := range dbs {
		if !e.HasDatabase(db) {
			continue // dropped since the caller listed it
		}
		// The namespace marker's own LSN is the database's snapshot position:
		// create/drop records — and statements — before it are reflected in
		// the checkpoint's images, later ones are replayed.
		if _, err := e.wal.Append(wal.Record{Type: wal.RecCheckpointTable, DB: db}); err != nil {
			return err
		}
		for _, table := range e.Tables(db) {
			err := e.DumpTableWith(db, table, func(d TableDump) error {
				// Appended while the table read lock is held: every commit
				// touching this table is either before this frame (and in the
				// image) or after it (and replayed).
				_, err := e.wal.Append(wal.Record{
					Type: wal.RecCheckpointTable, DB: db, Table: lower(table),
					Data: encodeTableImage(d),
				})
				return err
			})
			if err != nil {
				if isNoTable(err) {
					continue // dropped while checkpointing; the drop record replays
				}
				return err
			}
		}
	}
	if _, err := e.wal.AppendSync(wal.Record{Type: wal.RecCheckpointEnd}); err != nil {
		return err
	}
	if full && e.wal.Config().Compact {
		if _, err := e.wal.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// isNoTable reports whether err is a missing-table/database error.
func isNoTable(err error) bool {
	return errors.Is(err, ErrNoTable)
}

// RecoveryStats summarises one Engine.Recover run.
type RecoveryStats struct {
	// CheckpointLSN is the begin-frame LSN of the newest complete checkpoint
	// in the log, or -1 when recovery replayed the whole log. Databases absent
	// from that checkpoint are restored from their own most recent one.
	CheckpointLSN int64
	// Records is the number of intact log records scanned.
	Records int
	// Applied is the number of statements and namespace changes replayed.
	Applied int
	// InDoubt is the number of prepared transactions re-instated for the
	// commit coordinator to resolve (see RecoveredPrepared).
	InDoubt int
	// InDoubtTables maps each database to the tables touched by its in-doubt
	// transactions. A coordinator that presumes abort must treat these tables
	// as possibly stale (the aborted statements may have committed elsewhere).
	InDoubtTables map[string][]string
	// TornTail reports whether a torn log tail was truncated.
	TornTail bool
	// Duration is the wall time of checkpoint restore plus replay.
	Duration time.Duration
}

// Recover rebuilds the engine's state from its attached log: it truncates any
// torn tail, restores each database from its most recent complete checkpoint,
// replays the statements of committed transactions (and all DDL) in log
// order, and re-instates prepared in-doubt transactions so the commit
// coordinator can resolve them with ResolvePrepared. It must run on a fresh
// engine before it serves traffic.
func (e *Engine) Recover() (*RecoveryStats, error) {
	if e.wal == nil {
		return nil, fmt.Errorf("sqldb: no WAL attached")
	}
	start := time.Now()
	recs, torn, err := e.wal.Recover()
	if err != nil {
		return nil, err
	}
	e.recovering.Store(true)
	defer e.recovering.Store(false)
	stats := &RecoveryStats{CheckpointLSN: -1, Records: len(recs), TornTail: torn}

	// Locate every complete checkpoint. Checkpoints are serialised by ckptMu,
	// so begin and end frames pair up in log order; a begin without a matching
	// end is an interrupted checkpoint and is ignored.
	type ckptSpan struct{ begin, end int }
	var spans []ckptSpan
	lastBegin := -1
	for i, r := range recs {
		switch r.Type {
		case wal.RecCheckpointBegin:
			lastBegin = i
		case wal.RecCheckpointEnd:
			if lastBegin >= 0 {
				spans = append(spans, ckptSpan{lastBegin, i})
				lastBegin = -1
			}
		}
	}

	// For each database keep only its newest checkpoint group: the namespace
	// marker plus the table images that followed it in the same checkpoint. A
	// checkpoint always covers a whole database, so the newest group is
	// internally consistent and strictly supersedes older ones; mixing images
	// across checkpoints of one database would resurrect tables dropped
	// between them. Databases checkpointed only in older checkpoints (e.g. a
	// later CheckpointDatabase covered just one database) still restore from
	// their own newest group.
	snap := make(map[string]int64)
	// dbSpanEnd maps a database to the end-frame LSN of the checkpoint its
	// marker came from — the close of that checkpoint's fuzzy window.
	dbSpanEnd := make(map[string]int64)
	if len(spans) > 0 {
		stats.CheckpointLSN = recs[spans[len(spans)-1].begin].LSN
		latest := make(map[string][]wal.RecordAt)
		markerSpan := make(map[string]int)
		for si, sp := range spans {
			for i := sp.begin + 1; i < sp.end; i++ {
				r := recs[i]
				if r.Type != wal.RecCheckpointTable {
					continue
				}
				if r.Table == "" {
					latest[r.DB] = []wal.RecordAt{r}
					markerSpan[r.DB] = si
					dbSpanEnd[r.DB] = recs[sp.end].LSN
				} else if ms, ok := markerSpan[r.DB]; ok && ms == si {
					latest[r.DB] = append(latest[r.DB], r)
				}
			}
		}
		restoreDBs := make([]string, 0, len(latest))
		for db := range latest {
			restoreDBs = append(restoreDBs, db)
		}
		sort.Strings(restoreDBs)
		// snap maps "db" and "db/table" to the LSN its checkpoint image is
		// consistent with; frames at or before that LSN are already reflected.
		for _, db := range restoreDBs {
			for _, r := range latest[db] {
				if r.Table == "" {
					if err := e.CreateDatabase(r.DB); err != nil {
						return nil, fmt.Errorf("sqldb: recover: %w", err)
					}
					snap[r.DB] = r.LSN
					continue
				}
				img, err := decodeTableImage(r.Data)
				if err != nil {
					return nil, fmt.Errorf("sqldb: recover: %w", err)
				}
				if err := e.RestoreTable(r.DB, img); err != nil {
					return nil, fmt.Errorf("sqldb: recover: %w", err)
				}
				snap[r.DB+"/"+r.Table] = r.LSN
			}
		}
	}

	// Decide every logged transaction's outcome. Outcomes are also keyed by
	// global transaction ID: an in-doubt transaction resolved after an earlier
	// recovery committed under a fresh engine-local ID, so only its GID links
	// that commit record back to the statements logged before the crash.
	type txnInfo struct {
		gid      uint64
		outcome  wal.RecordType // RecCommit, RecAbort, or 0 while undecided
		prepared bool
	}
	txns := make(map[uint64]*txnInfo)
	gidOutcome := make(map[uint64]wal.RecordType)
	info := func(id uint64) *txnInfo {
		ti := txns[id]
		if ti == nil {
			ti = &txnInfo{}
			txns[id] = ti
		}
		return ti
	}
	var maxID uint64
	for _, r := range recs {
		if r.Txn > maxID {
			maxID = r.Txn
		}
		switch r.Type {
		case wal.RecBegin, wal.RecStatement:
			if r.Txn != 0 {
				info(r.Txn).gid = r.GID
			}
		case wal.RecPrepare:
			info(r.Txn).prepared = true
		case wal.RecCommit, wal.RecAbort:
			if r.Txn != 0 {
				info(r.Txn).outcome = r.Type
			}
			if r.GID != 0 {
				gidOutcome[r.GID] = r.Type
			}
		}
	}
	outcome := func(id uint64) wal.RecordType {
		ti := txns[id]
		if ti == nil {
			return 0
		}
		if ti.outcome != 0 {
			return ti.outcome
		}
		if ti.gid != 0 {
			return gidOutcome[ti.gid]
		}
		return 0
	}
	inDoubt := func(id uint64) bool {
		ti := txns[id]
		return ti != nil && ti.prepared && outcome(id) == 0 && ti.gid != 0
	}

	// New transactions must not reuse logged IDs (history correlation and a
	// second recovery both depend on ID uniqueness across the restart).
	if e.nextTxn.Load() < maxID {
		e.nextTxn.Store(maxID)
	}

	// Replay pass: committed statements and DDL in log order, each applied in
	// its own transaction — with no concurrency, per-statement application in
	// log order reproduces the original interleaving exactly. In-doubt
	// statements are set aside and re-executed live afterwards (their locks
	// cannot conflict with anything: every conflicting transaction either
	// committed before them or is also merely in doubt, and concurrently
	// prepared transactions held compatible locks).
	type doubtStmt struct {
		db, sql string
	}
	doubtOrder := []uint64{}
	doubtStmts := make(map[uint64][]doubtStmt)
	doubtTables := make(map[string]map[string]bool)
	for _, r := range recs {
		switch r.Type {
		case wal.RecCreateDB:
			if r.LSN <= snapLSN(snap, r.DB) {
				continue
			}
			if err := e.CreateDatabase(r.DB); err != nil {
				return nil, fmt.Errorf("sqldb: recover: %w", err)
			}
			stats.Applied++
		case wal.RecDropDB:
			if r.LSN <= snapLSN(snap, r.DB) {
				continue
			}
			if err := e.DropDatabase(r.DB); err != nil {
				return nil, fmt.Errorf("sqldb: recover: %w", err)
			}
			stats.Applied++
		case wal.RecStatement:
			// Skip statements reflected in the table's image — or at or before
			// the database's marker: the marker attests the whole database's
			// state at that LSN, so an older statement either lives on in some
			// image or touched a table that no longer existed at the
			// checkpoint and must not be resurrected.
			if r.LSN <= snapLSN(snap, r.DB+"/"+r.Table) || r.LSN <= snapLSN(snap, r.DB) {
				continue
			}
			if r.Txn != 0 {
				switch {
				case outcome(r.Txn) == wal.RecCommit:
					// fall through to apply
				case inDoubt(r.Txn):
					if _, seen := doubtStmts[r.Txn]; !seen {
						doubtOrder = append(doubtOrder, r.Txn)
					}
					doubtStmts[r.Txn] = append(doubtStmts[r.Txn], doubtStmt{db: r.DB, sql: string(r.Data)})
					if doubtTables[r.DB] == nil {
						doubtTables[r.DB] = make(map[string]bool)
					}
					doubtTables[r.DB][r.Table] = true
					continue
				default:
					continue // rolled back, presumed aborted, or unfinished
				}
			}
			if err := e.replayStmt(r.DB, string(r.Data)); err != nil {
				if isNoTable(err) && snapLSN(snap, r.DB) >= 0 &&
					snapLSN(snap, r.DB+"/"+r.Table) < 0 && r.LSN <= dbSpanEnd[r.DB] {
					// The table died inside its checkpoint's fuzzy window: the
					// database's marker filters the table's creation, and the
					// table was dropped before an image of it could be taken —
					// so these statements have nothing to apply to, and nothing
					// to lose: the drop made their effects moot.
					continue
				}
				return nil, fmt.Errorf("sqldb: recover: replay %q: %w", r.Data, err)
			}
			stats.Applied++
		}
	}

	// Re-instate in-doubt transactions: re-execute their statements in a live
	// transaction and leave it prepared, keyed by GID for ResolvePrepared.
	for _, id := range doubtOrder {
		stmts := doubtStmts[id]
		gid := txns[id].gid
		t, err := e.BeginWithID(stmts[0].db, gid)
		if err != nil {
			return nil, fmt.Errorf("sqldb: recover: %w", err)
		}
		for _, s := range stmts {
			if _, err := t.Exec(s.sql); err != nil {
				_ = t.Rollback()
				return nil, fmt.Errorf("sqldb: recover: in-doubt replay %q: %w", s.sql, err)
			}
		}
		if err := t.Prepare(); err != nil {
			return nil, fmt.Errorf("sqldb: recover: %w", err)
		}
		if e.prepared == nil {
			e.prepared = make(map[uint64]*Txn)
		}
		e.prepared[gid] = t
		stats.InDoubt++
	}

	if len(doubtTables) > 0 {
		stats.InDoubtTables = make(map[string][]string, len(doubtTables))
		for db, tbls := range doubtTables {
			for t := range tbls {
				stats.InDoubtTables[db] = append(stats.InDoubtTables[db], t)
			}
			sort.Strings(stats.InDoubtTables[db])
		}
	}
	stats.Duration = time.Since(start)
	if e.walMetrics != nil && e.walMetrics.ReplaySeconds != nil {
		e.walMetrics.ReplaySeconds.Observe(stats.Duration.Seconds())
	}
	return stats, nil
}

// snapLSN returns the checkpoint snapshot LSN for key, or -1 when the
// checkpoint has no image for it (every frame must then be replayed).
func snapLSN(snap map[string]int64, key string) int64 {
	if lsn, ok := snap[key]; ok {
		return lsn
	}
	return -1
}

// replayStmt applies one logged statement in its own transaction.
func (e *Engine) replayStmt(db, sql string) error {
	t, err := e.Begin(db)
	if err != nil {
		return err
	}
	if _, err := t.Exec(sql); err != nil {
		_ = t.Rollback()
		return err
	}
	return t.Commit()
}

// SetWALMetrics installs the wal metric instruments the engine itself
// observes (replay durations). The Log carries its own Metrics for flush and
// append counters.
func (e *Engine) SetWALMetrics(m *wal.Metrics) { e.walMetrics = m }

// RecoveredPrepared lists the global transaction IDs of in-doubt transactions
// re-instated by Recover, in log order of their first statement. The commit
// coordinator must resolve each with ResolvePrepared before their locked rows
// become available again.
func (e *Engine) RecoveredPrepared() []uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	gids := make([]uint64, 0, len(e.prepared))
	for gid := range e.prepared {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	return gids
}

// ResolvePrepared commits or aborts a re-instated in-doubt transaction. The
// outcome record is logged keyed by the transaction's GID, so a later
// recovery of the same log resolves the original statement frames even though
// this transaction now runs under a fresh engine-local ID.
func (e *Engine) ResolvePrepared(gid uint64, commit bool) error {
	e.mu.Lock()
	t, ok := e.prepared[gid]
	if ok {
		delete(e.prepared, gid)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("sqldb: no recovered prepared transaction %d", gid)
	}
	var typ wal.RecordType
	if commit {
		typ = wal.RecCommit
	} else {
		typ = wal.RecAbort
	}
	if e.wal != nil {
		if _, err := e.wal.AppendSync(wal.Record{Type: typ, Txn: t.id, GID: gid, DB: t.db}); err != nil {
			_ = t.Rollback()
			return err
		}
	}
	if commit {
		return t.CommitPrepared()
	}
	return t.Rollback()
}
