package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdp/internal/colo"
	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/placement"
	"sdp/internal/sla"
	"sdp/internal/system"
)

// fakePlatform is a canned-response admin.Platform.
type fakePlatform struct {
	health    system.Health
	report    sla.ComplianceReport
	placement placement.Report
}

func (f *fakePlatform) Health() system.Health             { return f.health }
func (f *fakePlatform) SLAReport() sla.ComplianceReport   { return f.report }
func (f *fakePlatform) PlacementReport() placement.Report { return f.placement }

// healthyPlatform is one live colo with one fully-replicated cluster.
func healthyPlatform() *fakePlatform {
	return &fakePlatform{
		health: system.Health{
			Colos: []system.ColoHealth{{
				Health: colo.Health{
					Colo:         "colo1",
					FreeMachines: 2,
					Clusters: []core.ClusterHealth{{
						Cluster: "colo1-c1", Machines: 4, LiveMachines: 4,
						Databases: 1, Replicas: 2,
						Controllers: 3, ControllerLeader: "colo1-c1#0",
						ControllerTerm: 1, ControllerQuorum: true,
					}},
				},
				Region: "us-east",
			}},
			Databases: 1,
		},
		report: sla.ComplianceReport{
			GeneratedAt:   time.Unix(1000, 0),
			WindowSeconds: 1,
			Databases: []sla.DBCompliance{{
				Database: "shop", Compliant: false,
				WindowsEvaluated: 5, WindowsViolated: 2,
				Machines: []string{"m1", "m2"},
			}},
		},
		placement: placement.Report{
			GeneratedAt: time.Unix(1000, 0),
			Enabled:     true,
			Rounds:      7,
			Tenants: []placement.TenantStatus{{
				DB: "shop", Class: "hot", Replicas: 2, Target: 3,
				Compliant: false, OfferedTPS: 120,
			}},
			Recent: []placement.ActionRecord{{
				Action: placement.Action{Kind: placement.Grow, DB: "shop", To: "m3", Reason: "hot: grow"},
				At:     time.Unix(1001, 0),
			}},
		},
	}
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("demo_total", "A demo counter").Add(3)
	h := Handler(reg, nil)

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PrometheusContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{"# TYPE demo_total counter", "demo_total 3\n"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	// Healthy platform: 200 ok.
	rec := get(t, Handler(obs.NewRegistry(), healthyPlatform()), "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthy /healthz = %d %s", rec.Code, rec.Body.String())
	}

	// All machines dead: 503 down.
	p := healthyPlatform()
	p.health.Colos[0].Clusters[0].LiveMachines = 0
	rec = get(t, Handler(obs.NewRegistry(), p), "/healthz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"down"`) {
		t.Errorf("dead /healthz = %d %s", rec.Code, rec.Body.String())
	}

	// No platform at all: trivially alive.
	rec = get(t, Handler(obs.NewRegistry(), nil), "/healthz")
	if rec.Code != http.StatusOK {
		t.Errorf("nil-platform /healthz = %d", rec.Code)
	}
}

func TestReadyz(t *testing.T) {
	rec := get(t, Handler(obs.NewRegistry(), healthyPlatform()), "/readyz")
	if rec.Code != http.StatusOK {
		t.Errorf("healthy /readyz = %d %s", rec.Code, rec.Body.String())
	}

	cases := []struct {
		name   string
		mutate func(*fakePlatform)
		reason string
	}{
		{"colo down", func(p *fakePlatform) { p.health.Colos[0].Down = true }, "colo colo1 down"},
		{"under-replicated", func(p *fakePlatform) { p.health.Colos[0].Clusters[0].LiveMachines = 1 }, "live machines < replication degree"},
		{"copy in flight", func(p *fakePlatform) { p.health.Colos[0].Clusters[0].ActiveCopies = 1 }, "replica copies in flight"},
		{"no colos", func(p *fakePlatform) { p.health.Colos = nil }, "no colos registered"},
		{"quorum lost", func(p *fakePlatform) {
			cl := &p.health.Colos[0].Clusters[0]
			cl.ControllerQuorum = false
			cl.ControllerLeader = ""
		}, "controller quorum lost"},
	}
	for _, tc := range cases {
		p := healthyPlatform()
		tc.mutate(p)
		rec := get(t, Handler(obs.NewRegistry(), p), "/readyz")
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s: /readyz = %d, want 503", tc.name, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), tc.reason) {
			t.Errorf("%s: body missing %q: %s", tc.name, tc.reason, rec.Body.String())
		}
	}
}

func TestTracez(t *testing.T) {
	reg := obs.NewRegistry()
	reg.TraceEvent("2pc", "gid:7", "prepare", "")
	reg.TraceEvent("copy", "shop", "table_copied", "item")
	reg.TraceEvent("2pc", "gid:8", "commit", "")
	h := Handler(reg, nil)

	var body struct {
		Count  int         `json:"count"`
		Events []obs.Event `json:"events"`
	}
	decode := func(path string) {
		rec := get(t, h, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, rec.Code)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	decode("/tracez")
	if body.Count != 3 {
		t.Errorf("/tracez count = %d, want 3", body.Count)
	}
	decode("/tracez?scope=2pc")
	if body.Count != 2 {
		t.Errorf("scope filter count = %d, want 2", body.Count)
	}
	decode("/tracez?scope=2pc&gid=gid:7")
	if body.Count != 1 || body.Events[0].Phase != "prepare" {
		t.Errorf("scope+gid filter = %+v", body)
	}
	decode("/tracez?scope=recovery")
	if body.Count != 0 || body.Events == nil {
		t.Errorf("no-match should serve an empty array, got %+v", body)
	}
}

func TestSlaz(t *testing.T) {
	h := Handler(obs.NewRegistry(), healthyPlatform())
	rec := get(t, h, "/slaz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/slaz status = %d", rec.Code)
	}
	var rep sla.ComplianceReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Databases) != 1 || rep.Databases[0].Compliant || len(rep.Databases[0].Machines) != 2 {
		t.Errorf("/slaz report = %+v", rep)
	}

	rec = get(t, h, "/slaz?format=text")
	if !strings.Contains(rec.Body.String(), "VIOLATING") {
		t.Errorf("text report missing verdict: %s", rec.Body.String())
	}

	// Without a platform there is no report to serve.
	rec = get(t, Handler(obs.NewRegistry(), nil), "/slaz")
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil-platform /slaz = %d, want 404", rec.Code)
	}
}

func TestPlacementz(t *testing.T) {
	h := Handler(obs.NewRegistry(), healthyPlatform())
	rec := get(t, h, "/placementz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/placementz status = %d", rec.Code)
	}
	var rep placement.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.Rounds != 7 || len(rep.Tenants) != 1 || rep.Tenants[0].Class != "hot" {
		t.Errorf("/placementz report = %+v", rep)
	}
	if len(rep.Recent) != 1 || rep.Recent[0].Kind != placement.Grow {
		t.Errorf("/placementz recent = %+v", rep.Recent)
	}

	rec = get(t, h, "/placementz?format=text")
	for _, want := range []string{"adaptive placement: enabled", "hot", "grow shop"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("text report missing %q: %s", want, rec.Body.String())
		}
	}

	// Without a platform there is no report to serve.
	rec = get(t, Handler(obs.NewRegistry(), nil), "/placementz")
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil-platform /placementz = %d, want 404", rec.Code)
	}
}

func TestIndexAndPprof(t *testing.T) {
	h := Handler(obs.NewRegistry(), nil)
	rec := get(t, h, "/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/metrics") {
		t.Errorf("index = %d %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof index = %d", rec.Code)
	}
}

func TestServe(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("served_total", "c").Inc()
	srv, err := Serve("127.0.0.1:0", Handler(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics over TCP = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
