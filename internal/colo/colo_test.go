package colo

import (
	"errors"
	"fmt"
	"testing"

	"sdp/internal/core"
	"sdp/internal/sla"
	"sdp/internal/wal"
)

func smallReq() sla.Resources { return sla.Profile(400, 2) }

func TestCreateDatabaseFormsClusters(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 3})
	c.AddFreeMachines(10)

	if err := c.CreateDatabase("db1", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Clusters()); got != 1 {
		t.Fatalf("clusters = %d", got)
	}
	if c.FreeMachines() != 7 {
		t.Errorf("free = %d, want 7", c.FreeMachines())
	}
	// A second small database fits the same cluster — no new machines.
	if err := c.CreateDatabase("db2", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	if c.FreeMachines() != 7 {
		t.Errorf("free = %d after second db, want 7", c.FreeMachines())
	}
}

func TestCreateDatabaseGrowsWhenFull(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2, MaxClusterSize: 3})
	c.AddFreeMachines(8)
	big := sla.Resources{CPU: 0.9, Memory: 0.9, Disk: 0.4, DiskBW: 0.4}
	if err := c.CreateDatabase("db1", big, 2); err != nil {
		t.Fatal(err)
	}
	// db2 cannot share machines with db1 (0.9+0.9 > 1): the cluster grows
	// to MaxClusterSize, then a new cluster forms.
	if err := c.CreateDatabase("db2", big, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("db3", big, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Clusters()); got < 2 {
		t.Errorf("clusters = %d, want >= 2", got)
	}
}

func TestCreateDatabaseExhaustsPool(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2})
	c.AddFreeMachines(2)
	big := sla.Resources{CPU: 0.9, Memory: 0.9, Disk: 0.9, DiskBW: 0.9}
	if err := c.CreateDatabase("db1", big, 2); err != nil {
		t.Fatal(err)
	}
	err := c.CreateDatabase("db2", big, 2)
	if !errors.Is(err, ErrNoFreeMachines) {
		t.Fatalf("err = %v, want ErrNoFreeMachines", err)
	}
}

func TestRouteAndQuery(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2})
	c.AddFreeMachines(4)
	if err := c.CreateDatabase("app", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	cl, err := c.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (1, 5)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec("app", "SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 5 {
		t.Errorf("v = %v", res.Rows[0][0])
	}
	if _, err := c.Route("missing"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
}

func TestFailMachineTriggersRecovery(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 3, RecoveryThreads: 2})
	c.AddFreeMachines(5)
	if err := c.CreateDatabase("app", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	cl, _ := c.Route("app")
	if _, err := cl.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := cl.Exec("app", fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	reps, _ := cl.Replicas("app")
	report, err := c.FailMachine(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Failed) != 0 {
		t.Fatalf("recovery failed: %v", report.Failed)
	}
	reps2, _ := cl.Replicas("app")
	if len(reps2) != 2 {
		t.Errorf("replicas after recovery = %v", reps2)
	}
	// Replacement machine drawn from the pool.
	if c.FreeMachines() != 1 {
		t.Errorf("free = %d, want 1", c.FreeMachines())
	}
	if _, err := c.FailMachine("nope"); err == nil {
		t.Error("failing unknown machine succeeded")
	}
	_ = core.ErrNoMachine // keep the core import honest
}

// TestCrashRestartMachine drives the transient-outage cycle: a machine
// crashes without re-replication, writes land on the surviving replica, and
// the restart recovers the machine from its log and rejoins its databases by
// the fast path.
func TestCrashRestartMachine(t *testing.T) {
	c := New("colo1", Options{ClusterSize: 2, Cluster: core.Options{WAL: &wal.Config{Compact: true}}})
	c.AddFreeMachines(4)
	if err := c.CreateDatabase("app", smallReq(), 2); err != nil {
		t.Fatal(err)
	}
	cl, err := c.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec("app", "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	replicas, err := cl.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	victim := replicas[1]
	affected, err := c.CrashMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "app" {
		t.Fatalf("affected = %v, want [app]", affected)
	}
	// The database keeps serving on the survivor while the machine is down.
	if _, err := cl.Exec("app", "INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}

	stats, report, err := c.RestartMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied == 0 {
		t.Fatal("restart replayed nothing")
	}
	if len(report.Failed) != 0 {
		t.Fatalf("rejoin failures: %v", report.Failed)
	}
	replicas, err = cl.Replicas("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 2 {
		t.Fatalf("replicas after restart = %v, want 2", replicas)
	}
	// The restarted machine holds the full table, including the downtime write.
	m, err := cl.Machine(victim)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Engine().Exec("app", "SELECT id FROM t")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("restarted machine: rows=%v err=%v, want 2 rows", res, err)
	}
}
