package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default histogram bounds, in seconds: exponential
// from one microsecond to ten seconds. They cover everything this platform
// times, from a buffer-pool hit to a whole-database copy.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// CountBuckets are histogram bounds for small cardinalities (probe counts,
// batch sizes, machines examined).
var CountBuckets = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}

// Histogram is a lock-free bounded histogram: a fixed set of buckets with
// atomic counts, plus an exact observation count and sum. Recording is
// wait-free except for the sum, which uses a CAS loop (uncontended in
// practice because concurrent recorders rarely collide on the same family).
// Quantiles are estimated by linear interpolation within the bucket that
// holds the requested rank, the standard bounded-histogram estimate; the
// error is bounded by the bucket width.
type Histogram struct {
	bounds []float64       // upper bounds, increasing
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits

	// exemplars holds one recent traced observation per bucket (see
	// ObserveWithExemplar). Guarded by emu; only traced observations —
	// a small sampled minority — ever touch it, so the wait-free
	// guarantee of Observe is preserved for the common path.
	emu       sync.Mutex
	exemplars []Exemplar
}

// Exemplar ties a histogram bucket to a concrete traced request: a recent
// observation that landed in the bucket and the trace that explains it.
// Rendered as OpenMetrics exemplars, it turns "p99 is 50µs" into "p99 is
// 50µs, here is a trace of one such call".
type Exemplar struct {
	// TraceID is the trace of the observed request (never 0).
	TraceID uint64 `json:"trace_id"`
	// Value is the observed value.
	Value float64 `json:"value"`
	// Time is when the observation was recorded.
	Time time.Time `json:"time"`
}

// NewHistogram creates a histogram with the given bucket upper bounds
// (increasing order); nil selects LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		val := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveWithExemplar records one value and, when traceID is non-zero,
// remembers (value, traceID, now) as the exemplar of the bucket the value
// landed in, overwriting the bucket's previous exemplar. traceID == 0
// degrades to a plain Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.emu.Lock()
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = Exemplar{TraceID: traceID, Value: v, Time: time.Now()}
	h.emu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot captures the histogram's current state. Bucket counts are read
// one by one, so under concurrent recording the snapshot may straddle a few
// in-flight observations; Count is reconciled to the bucket total so the
// quantile estimate is computed over exactly the observations it saw.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.counts)),
		Sum:     h.Sum(),
	}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Buckets[i] = c
		total += c
	}
	s.Count = total
	h.emu.Lock()
	if h.exemplars != nil {
		s.Exemplars = make([]Exemplar, len(h.exemplars))
		copy(s.Exemplars, h.exemplars)
	}
	h.emu.Unlock()
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram with derived
// quantile estimates. Bounds and Buckets survive JSON serialization so a
// `-metrics -format json` dump carries the same information as the
// Prometheus exposition (cumulative buckets are derivable from the
// per-bucket counts); Buckets has one more entry than Bounds, the overflow
// bucket.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	// Exemplars is indexed like Buckets (one slot per bucket including
	// overflow); a zero TraceID means the bucket has no exemplar. Nil when
	// the histogram never saw a traced observation.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts by
// linear interpolation within the target bucket. Values beyond the last
// bound are reported as the last bound (the estimate saturates, as with
// any bounded histogram).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := lo
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		if seen+float64(c) >= rank {
			frac := (rank - seen) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		seen += float64(c)
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}
