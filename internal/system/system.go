// Package system implements the paper's top-level system controller: it
// coordinates geographically distributed colos, routes client database
// connection requests to an appropriate colo (replication configuration,
// load, proximity), and asynchronously replicates each client database to
// one or more disaster-recovery colos. Within a colo the platform gives
// strong ACID guarantees via synchronous replication; across colos it
// deliberately weakens to asynchronous replication for latency, exactly as
// the paper prescribes for disaster recovery.
package system

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sdp/internal/colo"
	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
)

// Sentinel errors.
var (
	// ErrNoColo is returned for operations naming an unknown colo.
	ErrNoColo = errors.New("system: no such colo")
	// ErrNoDatabase is returned when routing an unknown database.
	ErrNoDatabase = errors.New("system: no such database")
	// ErrColoDown is returned when the primary colo of a database has
	// failed and no disaster-recovery replica was configured.
	ErrColoDown = errors.New("system: primary colo down")
)

// Controller is the fault-tolerant system controller. Like the colo
// controller it keeps no per-connection state (clients connect through it
// only at setup), so hot-standby pairing suffices for its own fault
// tolerance.
type Controller struct {
	metrics *systemMetrics

	mu    sync.Mutex
	colos map[string]*coloEntry
	dbs   map[string]*dbEntry
	repl  *replicator
}

type coloEntry struct {
	ctrl   *colo.Controller
	region string
	down   bool
}

type dbEntry struct {
	name    string
	primary string   // colo name
	dr      []string // disaster-recovery colo names
	req     sla.Resources
}

// New creates an empty system controller with a private observability
// registry.
func New() *Controller { return NewWithRegistry(obs.NewRegistry()) }

// NewWithRegistry creates a system controller reporting into reg. The
// platform passes one shared registry here and to every colo it creates, so
// a single Snapshot covers all layers.
func NewWithRegistry(reg *obs.Registry) *Controller {
	s := &Controller{
		metrics: newSystemMetrics(reg),
		colos:   make(map[string]*coloEntry),
		dbs:     make(map[string]*dbEntry),
	}
	s.repl = newReplicator(s)
	reg.OnSnapshot(func() { s.metrics.replPending.Set(float64(s.repl.totalPending())) })
	return s
}

// Metrics returns the registry the system controller reports into.
func (s *Controller) Metrics() *obs.Registry { return s.metrics.reg }

// AddColo registers a colo controller under a region label used for
// proximity routing.
func (s *Controller) AddColo(c *colo.Controller, region string) {
	s.mu.Lock()
	s.colos[c.Name()] = &coloEntry{ctrl: c, region: region}
	s.mu.Unlock()
}

// Colos returns every registered colo controller, sorted by name — the
// enumerator platform-wide sweeps (adaptive placement, admin reports) walk
// instead of re-deriving colo names from the health report.
func (s *Controller) Colos() []*colo.Controller {
	s.mu.Lock()
	names := make([]string, 0, len(s.colos))
	for n := range s.colos {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*colo.Controller, len(names))
	for i, n := range names {
		out[i] = s.colos[n].ctrl
	}
	s.mu.Unlock()
	return out
}

// Colo returns the named colo controller.
func (s *Controller) Colo(name string) (*colo.Controller, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.colos[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoColo, name)
	}
	return e.ctrl, nil
}

// CreateDatabase creates a database with its primary in primaryColo and
// asynchronously replicated copies in each drColo.
func (s *Controller) CreateDatabase(db string, req sla.Resources, replicas int, primaryColo string, drColos ...string) error {
	s.mu.Lock()
	if _, dup := s.dbs[db]; dup {
		s.mu.Unlock()
		return fmt.Errorf("system: database %s already exists", db)
	}
	pe, ok := s.colos[primaryColo]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoColo, primaryColo)
	}
	var drs []*coloEntry
	for _, name := range drColos {
		e, ok := s.colos[name]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNoColo, name)
		}
		drs = append(drs, e)
	}
	s.mu.Unlock()

	if err := pe.ctrl.CreateDatabase(db, req, replicas); err != nil {
		return err
	}
	for _, e := range drs {
		if err := e.ctrl.CreateDatabase(db, req, replicas); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.dbs[db] = &dbEntry{name: db, primary: primaryColo, dr: append([]string{}, drColos...), req: req}
	s.mu.Unlock()
	return nil
}

// Route returns the colo a new connection for db should go to, preferring
// the primary and falling back to a promoted DR colo.
func (s *Controller) Route(db string) (*colo.Controller, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dbs[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	pe := s.colos[e.primary]
	if pe == nil || pe.down {
		return nil, ErrColoDown
	}
	s.metrics.routes.With("primary").Inc()
	return pe.ctrl, nil
}

// RouteRead returns a colo suitable for a read-only connection from the
// given client region: a DR colo in the same region when one exists (the
// paper's geographic-proximity routing), otherwise the primary.
func (s *Controller) RouteRead(db, clientRegion string) (*colo.Controller, error) {
	s.mu.Lock()
	e, ok := s.dbs[db]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	for _, name := range e.dr {
		if ce := s.colos[name]; ce != nil && !ce.down && ce.region == clientRegion {
			s.mu.Unlock()
			s.metrics.routes.With("dr_proximity").Inc()
			return ce.ctrl, nil
		}
	}
	s.mu.Unlock()
	return s.Route(db)
}

// Begin opens a read-write transaction on db, routed to the primary colo.
// Writes are captured and, after a successful commit, shipped
// asynchronously to the DR colos.
func (s *Controller) Begin(db string) (*Txn, error) {
	co, err := s.Route(db)
	if err != nil {
		return nil, err
	}
	inner, err := co.Begin(db)
	if err != nil {
		return nil, err
	}
	return &Txn{sys: s, db: db, inner: inner}, nil
}

// Exec runs one autocommitted statement on db.
func (s *Controller) Exec(db, sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	t, err := s.Begin(db)
	if err != nil {
		return nil, err
	}
	res, err := t.Exec(sql, params...)
	if err != nil {
		_ = t.Rollback()
		return nil, err
	}
	if err := t.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// ColoHealth is one colo's entry in the platform health report: the colo's
// own liveness plus the system controller's view of it (region, disaster
// state).
type ColoHealth struct {
	colo.Health
	// Region is the proximity-routing region label.
	Region string `json:"region"`
	// Down reports whether a disaster marked the colo down.
	Down bool `json:"down"`
}

// Health is the platform-wide liveness report aggregated by the system
// controller, the source for the admin plane's /healthz and /readyz.
type Health struct {
	// Colos lists every registered colo's health, sorted by name.
	Colos []ColoHealth `json:"colos"`
	// Databases counts databases the system controller routes.
	Databases int `json:"databases"`
}

// Health aggregates every colo's liveness into one report.
func (s *Controller) Health() Health {
	s.mu.Lock()
	names := make([]string, 0, len(s.colos))
	for n := range s.colos {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]*coloEntry, len(names))
	for i, n := range names {
		entries[i] = s.colos[n]
	}
	h := Health{Databases: len(s.dbs)}
	s.mu.Unlock()
	for _, e := range entries {
		h.Colos = append(h.Colos, ColoHealth{Health: e.ctrl.Health(), Region: e.region, Down: e.down})
	}
	return h
}

// FailColo marks a colo as down (a disaster), returning the databases whose
// primary was there.
func (s *Controller) FailColo(name string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.colos[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoColo, name)
	}
	e.down = true
	var affected []string
	for db, de := range s.dbs {
		if de.primary == name {
			affected = append(affected, db)
		}
	}
	s.metrics.coloFailures.Inc()
	s.metrics.reg.TraceEvent("dr", name, "colo_failed", fmt.Sprintf("%d primaries affected", len(affected)))
	return affected, nil
}

// PromoteDR makes the named DR colo the new primary for db after a
// disaster. Transactions committed at the old primary but not yet shipped
// are lost — the weaker cross-colo guarantee the paper accepts for
// disaster recovery.
func (s *Controller) PromoteDR(db, coloName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dbs[db]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	for i, name := range e.dr {
		if name == coloName {
			e.dr = append(e.dr[:i], e.dr[i+1:]...)
			if old := s.colos[e.primary]; old != nil && !old.down {
				// Old primary still alive: demote it to DR.
				e.dr = append(e.dr, e.primary)
			}
			e.primary = coloName
			s.metrics.promotions.Inc()
			s.metrics.reg.TraceEvent("dr", db, "promoted", coloName)
			return nil
		}
	}
	return fmt.Errorf("system: colo %s is not a DR replica of %s", coloName, db)
}

// Flush blocks until all pending asynchronous replication for db has been
// applied (used by tests and controlled failovers).
func (s *Controller) Flush(db string) { s.repl.flush(db) }

// ReplicationLag returns the number of write batches queued for db.
func (s *Controller) ReplicationLag(db string) int { return s.repl.lag(db) }

// drTargets returns the DR colo controllers of db.
func (s *Controller) drTargets(db string) []*colo.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dbs[db]
	if !ok {
		return nil
	}
	var out []*colo.Controller
	for _, name := range e.dr {
		if ce := s.colos[name]; ce != nil && !ce.down {
			out = append(out, ce.ctrl)
		}
	}
	return out
}

// Txn is a client transaction routed through the system controller.
type Txn struct {
	sys    *Controller
	db     string
	inner  *core.Txn
	writes []capturedWrite

	// Distributed-tracing state: parent is the caller's span (e.g. the wire
	// server's), trace the child context this transaction's work runs under.
	parent     obs.SpanContext
	trace      obs.SpanContext
	traceStart time.Time
}

// SetTraceContext threads a trace context into the transaction. Work routed
// through it — core read routing, 2PC phases, engine statement execution,
// WAL flushes — records spans parented (transitively) under a "system txn"
// span created here and finished when the transaction commits or rolls
// back. The zero context disables tracing. Installing a new context
// replaces the previous one, so in explicit multi-statement transactions
// the txn span covers the run from the last traced statement to the commit.
func (t *Txn) SetTraceContext(tc obs.SpanContext) {
	if !tc.Traced() {
		if t.trace.Traced() {
			t.trace = obs.SpanContext{}
			t.inner.SetTraceContext(obs.SpanContext{})
		}
		return
	}
	t.parent = tc
	t.trace = obs.SpanContext{TraceID: tc.TraceID, SpanID: obs.NewTraceID(), Sampled: true}
	t.traceStart = time.Now()
	t.inner.SetTraceContext(t.trace)
}

// finishSpan records the transaction's "system" span, if one is open.
func (t *Txn) finishSpan(name string) {
	if !t.trace.Traced() {
		return
	}
	t.sys.metrics.reg.Spans().Record(obs.Span{
		TraceID:  t.trace.TraceID,
		SpanID:   t.trace.SpanID,
		Parent:   t.parent.SpanID,
		Scope:    "system",
		Name:     name,
		DB:       t.db,
		Start:    t.traceStart,
		Duration: time.Since(t.traceStart),
	})
	t.trace = obs.SpanContext{}
}

type capturedWrite struct {
	sql    string
	params []sqldb.Value
}

// Exec executes a statement at the primary, capturing writes for
// asynchronous DR shipping.
func (t *Txn) Exec(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	return t.ExecStmt(sql, stmt, params...)
}

// ExecStmt executes an already-parsed statement at the primary, skipping
// the parse on the hot path (the wire server's prepared statements land
// here). The SQL text is still required because DR replication ships text,
// not parse trees.
func (t *Txn) ExecStmt(sql string, stmt sqldb.Statement, params ...sqldb.Value) (*sqldb.Result, error) {
	res, err := t.inner.ExecStmt(stmt, params...)
	if err != nil {
		return nil, err
	}
	if _, isSelect := stmt.(*sqldb.SelectStmt); !isSelect {
		t.writes = append(t.writes, capturedWrite{sql: sql, params: params})
	}
	return res, nil
}

// Commit commits at the primary colo and, on success, enqueues the
// captured writes for asynchronous replay at the DR colos.
func (t *Txn) Commit() error {
	err := t.inner.Commit()
	t.finishSpan("txn")
	if err != nil {
		return err
	}
	if len(t.writes) > 0 {
		t.sys.repl.enqueue(t.db, t.writes)
	}
	return nil
}

// Rollback aborts the transaction at the primary.
func (t *Txn) Rollback() error {
	err := t.inner.Rollback()
	t.finishSpan("txn")
	return err
}
