// Package sqldb implements an embedded single-node relational DBMS used as
// the building block of the scalable data platform. It is the stand-in for
// the off-the-shelf MySQL instances in the CIDR 2009 paper: it provides a
// SQL subset (DDL, DML, SELECT with joins and aggregates), strict two-phase
// locking with deadlock detection, transactions with a two-phase-commit
// participant API, an LRU buffer pool over paged row storage, and a
// mysqldump-style table-locking copy tool.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Type identifies the SQL type of a column or value.
type Type int

// Column types supported by the engine.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single SQL value. The zero Value is SQL NULL.
type Value struct {
	Typ   Type
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Null is the SQL NULL value.
var Null = Value{Typ: TypeNull}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{Typ: TypeInt, Int: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{Typ: TypeFloat, Float: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{Typ: TypeText, Str: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value { return Value{Typ: TypeBool, Bool: v} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Typ == TypeNull }

// String renders the value in SQL literal form.
func (v Value) String() string {
	switch v.Typ {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeText:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	case TypeBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// AsFloat converts numeric values to float64. Text and bool values are not
// numeric; they convert to 0.
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case TypeInt:
		return float64(v.Int)
	case TypeFloat:
		return v.Float
	default:
		return 0
	}
}

// numeric reports whether the value participates in arithmetic.
func (v Value) numeric() bool { return v.Typ == TypeInt || v.Typ == TypeFloat }

// Compare orders two values. NULL sorts before everything and equals only
// NULL (three-valued logic for predicates is handled by the evaluator; this
// is the total order used by indexes and ORDER BY). Cross-type numeric
// comparisons (INT vs FLOAT) compare numerically; otherwise values of
// different types order by type tag.
func Compare(a, b Value) int {
	if a.Typ == TypeNull || b.Typ == TypeNull {
		switch {
		case a.Typ == b.Typ:
			return 0
		case a.Typ == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Typ != b.Typ {
		if a.Typ < b.Typ {
			return -1
		}
		return 1
	}
	switch a.Typ {
	case TypeText:
		return strings.Compare(a.Str, b.Str)
	case TypeBool:
		switch {
		case a.Bool == b.Bool:
			return 0
		case !a.Bool:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports value equality under Compare's total order.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Row is a tuple of values.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a comma-separated list of SQL literals.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
