package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/obs"
	"sdp/internal/sqldb"
)

// Backend is the platform surface the wire server drives. sdp.Platform
// adapts itself to this interface; tests implement it directly over a
// cluster controller.
type Backend interface {
	// Authenticate validates a handshake: may this token open sessions on
	// this database? A nil error admits the session.
	Authenticate(database, token string) error
	// Begin opens a transaction on the database. The server calls it once
	// per explicit BEGIN and once per autocommitted statement.
	Begin(database string) (Txn, error)
}

// Txn is one open backend transaction. ExecStmt receives both the SQL text
// (for layers that capture writes, e.g. DR replication) and the pre-parsed
// statement, so the engine's plan cache is hit without a re-parse.
type Txn interface {
	// ExecStmt executes one pre-parsed statement.
	ExecStmt(sql string, stmt sqldb.Statement, params ...sqldb.Value) (*sqldb.Result, error)
	// Commit makes the transaction durable.
	Commit() error
	// Rollback aborts the transaction.
	Rollback() error
}

// TraceCarrier is optionally implemented by backend transactions that can
// propagate a distributed-tracing context into the platform (system.Txn
// does). Kept out of Txn so existing Backend implementations — including
// test doubles — keep compiling; a transaction that does not carry traces
// simply yields no platform-side spans.
type TraceCarrier interface {
	// SetTraceContext installs the trace context subsequent statement
	// execution and commit work run under (the zero context clears it).
	SetTraceContext(tc obs.SpanContext)
}

// ServerConfig tunes a wire server.
type ServerConfig struct {
	// Backend executes sessions' statements. Required.
	Backend Backend
	// Metrics receives the wire_* family; nil creates a private registry.
	Metrics *obs.Registry
	// Banner is the server identification sent in MsgWelcome.
	Banner string
	// QueueDepth bounds each connection's pipelined-request queue; a full
	// queue blocks the connection's reader, pushing backpressure into the
	// client's TCP window (default 64).
	QueueDepth int
	// DrainTimeout bounds graceful shutdown: how long Close waits for
	// in-flight and queued requests to finish before force-closing
	// connections (default 5s).
	DrainTimeout time.Duration
	// StmtCacheSize caps the server's shared text→AST statement cache
	// (default 512; see sqldb.NewStmtCache).
	StmtCacheSize int
	// TraceSample is the server-initiated head-sampling fraction, applied
	// per tenant database to requests that arrive without a client trace
	// context (a client-sampled request is always traced end to end).
	TraceSample float64
	// SlowQuery, when positive, captures statements whose server-side
	// execution exceeds it into the registry's slow-query log.
	SlowQuery time.Duration
}

// Server is a TCP wire-protocol server in front of a Backend. Start one
// with Serve, stop it with Close.
type Server struct {
	cfg     ServerConfig
	metrics *serverMetrics
	stmts   *sqldb.StmtCache
	lis     net.Listener
	sampler *obs.Sampler  // server-initiated head sampling, nil-safe
	spans   *obs.SpanRing // platform span ring ("wire"-scope spans)
	slow    *obs.SlowLog
	qstats  *obs.QueryStats

	mu       sync.Mutex
	conns    map[*session]struct{}
	draining bool

	wg sync.WaitGroup
}

// Serve binds addr (e.g. "127.0.0.1:8346", or ":0" for an ephemeral port)
// and serves the wire protocol on it in the background until Close.
func Serve(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("wire: ServerConfig.Backend is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Banner == "" {
		cfg.Banner = "sdp"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		metrics: newServerMetrics(cfg.Metrics),
		stmts:   sqldb.NewStmtCache(cfg.StmtCacheSize),
		lis:     lis,
		spans:   cfg.Metrics.Spans(),
		slow:    cfg.Metrics.SlowLog(),
		qstats:  cfg.Metrics.QueryStats(),
		conns:   make(map[*session]struct{}),
	}
	if cfg.TraceSample > 0 {
		s.sampler = obs.NewSampler(cfg.TraceSample)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server is listening on.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Metrics returns the registry the server's wire_* family reports into.
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = c.Close()
			continue
		}
		sess := newSession(s, c)
		s.conns[sess] = struct{}{}
		s.mu.Unlock()
		s.metrics.connsTotal.Inc()
		s.metrics.connsActive.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.serve()
			s.mu.Lock()
			delete(s.conns, sess)
			s.mu.Unlock()
			s.metrics.connsActive.Dec()
		}()
	}
}

// Close gracefully drains the server: it stops accepting, lets every
// connection finish its in-flight and queued requests, sends each client a
// MsgBye, and force-closes whatever remains after DrainTimeout.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	conns := make([]*session, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.lis.Close()
	for _, c := range conns {
		c.startDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.forceClose()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// request is one decoded frame queued for the session executor.
type request struct {
	f frame
}

// preparedStmt is one session-registered statement.
type preparedStmt struct {
	sql  string
	stmt sqldb.Statement
}

// session serves one client connection: a reader goroutine decodes frames
// into a bounded queue (backpressure = blocked reads = client's TCP
// window), and one executor goroutine runs them strictly in order and
// writes responses tagged with the request's sequence ID. Responses are
// flushed when the queue runs empty, so pipelined bursts are answered in
// batched writes.
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	reqs chan request

	closeOnce sync.Once

	db     string
	authed bool
	txn    Txn
	stmts  map[uint32]preparedStmt
	nextID uint32

	draining atomic.Bool // set by startDrain; executor sends MsgBye when idle
}

func newSession(s *Server, c net.Conn) *session {
	return &session{
		srv:   s,
		conn:  c,
		br:    bufio.NewReaderSize(c, 4096),
		bw:    bufio.NewWriterSize(c, 4096),
		reqs:  make(chan request, s.cfg.QueueDepth),
		stmts: make(map[uint32]preparedStmt),
	}
}

// startDrain asks the session to finish queued work and say goodbye: the
// read side is unblocked by an immediate deadline, so the reader exits
// after at most one more frame and the executor drains what is queued.
func (c *session) startDrain() {
	c.draining.Store(true)
	_ = c.conn.SetReadDeadline(time.Now())
}

// forceClose tears the connection down, unblocking both goroutines.
func (c *session) forceClose() {
	c.closeOnce.Do(func() { _ = c.conn.Close() })
}

func (c *session) serve() {
	defer c.forceClose()
	defer func() {
		if c.txn != nil {
			_ = c.txn.Rollback()
			c.txn = nil
		}
		c.srv.metrics.stmtsActive.Add(-float64(len(c.stmts)))
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.execLoop()
	}()

	for {
		f, n, err := readFrame(c.br)
		if err != nil {
			if errors.Is(err, errProtocol) {
				// A malformed frame is unrecoverable: framing sync is lost.
				// Report once (seq 0: the request's seq is unknowable) and
				// hang up.
				c.reqs <- request{f: frame{typ: 0, seq: 0, payload: []byte(err.Error())}}
			}
			break
		}
		c.srv.metrics.bytesRead.Add(uint64(n))
		c.reqs <- request{f: f}
		if f.typ == MsgQuit {
			break
		}
	}
	close(c.reqs)
	<-done
}

// execLoop drains the request queue in order.
func (c *session) execLoop() {
	for req := range c.reqs {
		if !c.handle(req.f) {
			break
		}
		if len(c.reqs) == 0 {
			c.flush()
			if c.draining.Load() && c.txn == nil {
				break
			}
		}
	}
	if c.srv.isDraining() || c.draining.Load() {
		c.send(MsgBye, 0, nil)
		c.srv.metrics.drainedConns.Inc()
	}
	c.flush()
	c.forceClose()
	// The reader may still be pushing requests; drain them so it cannot
	// block forever on a full queue.
	for range c.reqs {
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handle executes one frame; a false return closes the session.
func (c *session) handle(f frame) bool {
	c.srv.metrics.msgs.With(msgName(f.typ)).Inc()
	switch f.typ {
	case 0:
		// Synthetic frame from the reader: a framing error already rendered
		// into the payload.
		c.sendError(0, ErrCodeProtocol, string(f.payload))
		return false
	case MsgHello:
		return c.handleHello(f)
	case MsgPing:
		c.send(MsgPong, f.seq, nil)
		return true
	case MsgQuit:
		c.send(MsgBye, f.seq, nil)
		return false
	}
	if !c.authed {
		c.sendError(f.seq, ErrCodeProtocol, "handshake required before any other message")
		return false
	}
	switch f.typ {
	case MsgQuery:
		return c.handleQuery(f)
	case MsgPrepare:
		return c.handlePrepare(f)
	case MsgExec:
		return c.handleExec(f)
	case MsgBegin:
		return c.handleBegin(f)
	case MsgCommit:
		return c.handleCommit(f)
	case MsgRollback:
		return c.handleRollback(f)
	case MsgCloseStmt:
		return c.handleCloseStmt(f)
	default:
		c.sendError(f.seq, ErrCodeProtocol, fmt.Sprintf("unknown message type 0x%02x", f.typ))
		return false
	}
}

func (c *session) handleHello(f frame) bool {
	r := &reader{buf: f.payload}
	ver := r.u8()
	db := r.str()
	token := r.str()
	if err := r.done(); err != nil {
		c.sendError(f.seq, ErrCodeProtocol, err.Error())
		return false
	}
	if c.authed {
		c.sendError(f.seq, ErrCodeProtocol, "duplicate handshake")
		return false
	}
	if ver != ProtoVersion {
		c.sendError(f.seq, ErrCodeProtocol, fmt.Sprintf("protocol version %d not supported (server speaks %d)", ver, ProtoVersion))
		return false
	}
	if db == "" {
		c.sendError(f.seq, ErrCodeProtocol, "handshake names no database")
		return false
	}
	if err := c.srv.cfg.Backend.Authenticate(db, token); err != nil {
		c.sendError(f.seq, ErrCodeAuth, err.Error())
		return false
	}
	c.db = db
	c.authed = true
	c.send(MsgWelcome, f.seq, appendString([]byte{ProtoVersion}, c.srv.cfg.Banner))
	return true
}

func (c *session) handleQuery(f frame) bool {
	r := &reader{buf: f.payload}
	sql := r.str()
	params := r.params()
	tc := r.traceContext()
	if err := r.done(); err != nil {
		c.sendError(f.seq, ErrCodeProtocol, err.Error())
		return false
	}
	stmt, err := c.srv.stmts.Parse(sql)
	if err != nil {
		c.sendErr(f.seq, err)
		return true
	}
	c.runStmt(f.seq, "query", sql, stmt, params, tc)
	return true
}

func (c *session) handlePrepare(f frame) bool {
	r := &reader{buf: f.payload}
	sql := r.str()
	if err := r.done(); err != nil {
		c.sendError(f.seq, ErrCodeProtocol, err.Error())
		return false
	}
	stmt, err := c.srv.stmts.Parse(sql)
	if err != nil {
		c.sendErr(f.seq, err)
		return true
	}
	c.nextID++
	id := c.nextID
	c.stmts[id] = preparedStmt{sql: sql, stmt: stmt}
	c.srv.metrics.prepared.Inc()
	c.srv.metrics.stmtsActive.Inc()
	c.send(MsgStmt, f.seq, appendU32(nil, id))
	return true
}

func (c *session) handleExec(f frame) bool {
	r := &reader{buf: f.payload}
	id := r.u32()
	params := r.params()
	tc := r.traceContext()
	if err := r.done(); err != nil {
		c.sendError(f.seq, ErrCodeProtocol, err.Error())
		return false
	}
	ps, ok := c.stmts[id]
	if !ok {
		c.sendError(f.seq, ErrCodeStmt, fmt.Sprintf("unknown prepared statement %d", id))
		return true
	}
	c.runStmt(f.seq, "exec", ps.sql, ps.stmt, params, tc)
	return true
}

// traceStart resolves the trace context one statement execution runs
// under. A client-sampled request continues the client's trace (the server
// span becomes a child of the client span carried in the frame); an
// unsampled request may still start a server-initiated trace via the
// per-tenant sampler. The returned context names the server span; parent is
// what that span links under (0 for a server-initiated root).
func (s *Server) traceStart(db string, inbound obs.SpanContext) (sctx obs.SpanContext, parent uint64) {
	if inbound.Traced() {
		return obs.SpanContext{TraceID: inbound.TraceID, SpanID: obs.NewTraceID(), Sampled: true}, inbound.SpanID
	}
	if s.sampler.Sample(db) {
		return obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewTraceID(), Sampled: true}, 0
	}
	return obs.SpanContext{}, 0
}

// setTxnTrace propagates the trace context into a backend transaction that
// can carry one; called per statement so an explicit transaction follows
// each statement's sampling decision (and its commit work is attributed to
// the last traced statement).
func setTxnTrace(txn Txn, sctx obs.SpanContext) {
	if carrier, ok := txn.(TraceCarrier); ok {
		carrier.SetTraceContext(sctx)
	}
}

// modeFromSpans extracts the plan execution mode recorded by the engine's
// "sql" span, "" when the breakdown carries none.
func modeFromSpans(spans []obs.Span) string {
	for i := range spans {
		if spans[i].Scope == "sql" && strings.HasPrefix(spans[i].Detail, "exec=") {
			return strings.TrimPrefix(spans[i].Detail, "exec=")
		}
	}
	return ""
}

// runStmt executes one statement in the open transaction, or in a
// single-statement autocommit transaction when none is open.
func (c *session) runStmt(seq uint64, kind, sql string, stmt sqldb.Statement, params []sqldb.Value, inbound obs.SpanContext) {
	start := time.Now()
	sctx, parent := c.srv.traceStart(c.db, inbound)
	var res *sqldb.Result
	var err error
	if c.txn != nil {
		setTxnTrace(c.txn, sctx)
		res, err = c.txn.ExecStmt(sql, stmt, params...)
		if err != nil {
			// The controller aborts the distributed transaction on any
			// statement error; reflect that in session state so a
			// subsequent COMMIT reports the txn gone rather than hanging.
			c.txn = nil
		}
	} else {
		var txn Txn
		txn, err = c.srv.cfg.Backend.Begin(c.db)
		if err != nil {
			c.sendErr(seq, err)
			return
		}
		setTxnTrace(txn, sctx)
		res, err = txn.ExecStmt(sql, stmt, params...)
		if err != nil {
			_ = txn.Rollback()
		} else {
			err = txn.Commit()
		}
	}
	c.finishStmt(seq, kind, sql, start, sctx, parent, res, err)
}

// finishStmt records one executed statement's telemetry — latency (with a
// trace exemplar when sampled), the "wire"-scope span, per-tenant query
// stats, and a slow-query capture over the threshold — then answers the
// client.
func (c *session) finishStmt(seq uint64, kind, sql string, start time.Time, sctx obs.SpanContext, parent uint64, res *sqldb.Result, err error) {
	dur := time.Since(start)
	c.srv.metrics.observeExec(start, sctx.TraceID)
	if sctx.Traced() {
		c.srv.spans.Record(obs.Span{
			TraceID:  sctx.TraceID,
			SpanID:   sctx.SpanID,
			Parent:   parent,
			Scope:    "wire",
			Name:     kind,
			DB:       c.db,
			Start:    start,
			Duration: dur,
			Detail:   sql,
		})
	}
	c.srv.qstats.Record(c.db, sql, dur)
	if c.srv.cfg.SlowQuery > 0 && dur >= c.srv.cfg.SlowQuery {
		spans := c.srv.spans.ByTrace(sctx.TraceID)
		c.srv.slow.Record(obs.SlowEntry{
			Time:     time.Now(),
			DB:       c.db,
			SQL:      sql,
			Duration: dur,
			TraceID:  sctx.TraceID,
			Mode:     modeFromSpans(spans),
			Spans:    spans,
		})
	}
	if err != nil {
		c.sendErr(seq, err)
		return
	}
	c.sendResult(seq, res)
}

func (c *session) handleBegin(f frame) bool {
	if c.txn != nil {
		c.sendError(f.seq, ErrCodeTxnState, "transaction already open")
		return true
	}
	txn, err := c.srv.cfg.Backend.Begin(c.db)
	if err != nil {
		c.sendErr(f.seq, err)
		return true
	}
	c.txn = txn
	c.sendResult(f.seq, nil)
	return true
}

func (c *session) handleCommit(f frame) bool {
	if c.txn == nil {
		c.sendError(f.seq, ErrCodeTxnState, "no open transaction")
		return true
	}
	err := c.txn.Commit()
	c.txn = nil
	if err != nil {
		c.sendErr(f.seq, err)
		return true
	}
	c.sendResult(f.seq, nil)
	return true
}

func (c *session) handleRollback(f frame) bool {
	if c.txn == nil {
		c.sendError(f.seq, ErrCodeTxnState, "no open transaction")
		return true
	}
	err := c.txn.Rollback()
	c.txn = nil
	if err != nil {
		c.sendErr(f.seq, err)
		return true
	}
	c.sendResult(f.seq, nil)
	return true
}

func (c *session) handleCloseStmt(f frame) bool {
	r := &reader{buf: f.payload}
	id := r.u32()
	if err := r.done(); err != nil {
		c.sendError(f.seq, ErrCodeProtocol, err.Error())
		return false
	}
	if _, ok := c.stmts[id]; ok {
		delete(c.stmts, id)
		c.srv.metrics.stmtsActive.Dec()
	}
	c.sendResult(f.seq, nil)
	return true
}

// sendResult encodes and sends a MsgResult.
func (c *session) sendResult(seq uint64, res *sqldb.Result) {
	payload, err := encodeResult(nil, res)
	if err != nil {
		c.sendError(seq, ErrCodeProtocol, err.Error())
		return
	}
	c.send(MsgResult, seq, payload)
}

// sendErr classifies a backend error and sends the MsgError.
func (c *session) sendErr(seq uint64, err error) {
	c.sendError(seq, codeFor(err), err.Error())
}

func (c *session) sendError(seq uint64, code uint16, msg string) {
	c.srv.metrics.errs.With(codeName(code)).Inc()
	c.send(MsgError, seq, encodeError(nil, code, msg))
}

func (c *session) send(typ byte, seq uint64, payload []byte) {
	n, err := writeFrame(c.bw, typ, seq, payload)
	if err != nil {
		c.forceClose()
		return
	}
	c.srv.metrics.bytesWritten.Add(uint64(n))
}

func (c *session) flush() {
	_ = c.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := c.bw.Flush(); err != nil && err != io.ErrShortWrite {
		c.forceClose()
	}
	_ = c.conn.SetWriteDeadline(time.Time{})
}
