package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing, wait-free event counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions,
// stored as float64 bits in one atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Pair is two related counters packed into one atomic word (32 bits each),
// for counter pairs that readers divide or subtract — buffer-pool hits and
// misses, plan-cache hits and misses, commits and aborts. Because both
// sides live in a single word, a Load returns a pair that was actually
// simultaneously true at one instant: a concurrent reader can never observe
// a "torn" pair in which one side includes an event whose other side is
// missing, so derived ratios (hit rates) are always in [0, 1] and totals
// are exact.
//
// Each side holds 32 bits (about 4.29 billion events). That bounds the
// counters' range, not their rate: at one million events per second a side
// wraps after ~71 minutes of saturation on that single instrument, far
// beyond any run of this platform's experiments. Callers that expect to
// exceed 2^32 events on one pair should shard across instruments.
type Pair struct {
	v atomic.Uint64
}

// AddA adds n to the first (high) side.
func (p *Pair) AddA(n uint64) { p.v.Add(n << 32) }

// AddB adds n to the second (low) side.
func (p *Pair) AddB(n uint64) { p.v.Add(n & 0xffffffff) }

// IncA adds one to the first side.
func (p *Pair) IncA() { p.v.Add(1 << 32) }

// IncB adds one to the second side.
func (p *Pair) IncB() { p.v.Add(1) }

// Add adds to both sides in one atomic update.
func (p *Pair) Add(a, b uint64) { p.v.Add(a<<32 | b&0xffffffff) }

// Load returns both sides from a single atomic read — the consistent
// snapshot the pair exists for.
func (p *Pair) Load() (a, b uint64) {
	v := p.v.Load()
	return v >> 32, v & 0xffffffff
}
