package main

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"time"

	"sdp"
	"sdp/internal/netsim"
	"sdp/internal/wire"
)

// familyName matches metric-family tokens in OBSERVABILITY.md backtick
// spans: a layer prefix followed by the family name. Prose fragments like
// `core_` or `core_net_` (trailing underscore) and engine-stat labels
// without a layer prefix do not match.
var familyName = regexp.MustCompile("`((?:core|twopc|netsim|sqldb|wal|colo|system|sla|wire|trace|slowlog|consensus|placement)_[a-z0-9_]*[a-z0-9])`")

// notFamilies lists tokens that match familyName but name trace-event
// phases documented in OBSERVABILITY.md's tracing tables, not families.
var notFamilies = map[string]bool{"colo_failed": true}

// checkMetrics cross-checks the metric families named in the observability
// doc against the families a representative platform run registers,
// reporting drift in either direction — so OBSERVABILITY.md cannot name a
// renamed-away family, and a new family cannot ship undocumented.
func checkMetrics(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	inDoc := map[string]bool{}
	for _, m := range familyName.FindAllStringSubmatch(string(data), -1) {
		if !notFamilies[m[1]] {
			inDoc[m[1]] = true
		}
	}
	families, err := representativeFamilies()
	if err != nil {
		return []string{fmt.Sprintf("representative run failed: %v", err)}
	}
	var drift []string
	for name := range families {
		if !inDoc[name] {
			drift = append(drift, fmt.Sprintf("family %s is registered but not documented in %s", name, file))
		}
	}
	for name := range inDoc {
		if _, ok := families[name]; !ok {
			drift = append(drift, fmt.Sprintf("%s names %s, which a representative run does not register", file, name))
		}
	}
	sort.Strings(drift)
	return drift
}

// representativeFamilies boots a small platform that exercises every layer
// with a registered instrument family — a WAL-backed cluster, the wire
// server driven by a traced client call, the slow-query log, the SLA
// monitor, and a simulated network — then returns the registry's families.
func representativeFamilies() (map[string]string, error) {
	p := sdp.New(sdp.Config{
		Listen:      "127.0.0.1:0",
		WAL:         &sdp.WALConfig{},
		TraceSample: 1,
		SlowQuery:   time.Nanosecond,
		Controllers: 3, // consensus_* families register with the control plane replicated
	})
	reg := p.Metrics()
	netsim.New(0, reg) // netsim_* families register at network construction
	p.AddColo("local", "local", 4)
	if err := p.CreateDatabase("app", sdp.SLA{SizeMB: 1, MinTPS: 1, MaxRejectFraction: 1}, "local"); err != nil {
		return nil, err
	}
	p.StartPlacement(sdp.PlacementOptions{}) // placement_* families register with the controller
	defer p.StopPlacement()
	srv, err := p.ServeWire()
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	cl, err := wire.Dial(wire.ClientConfig{Addr: srv.Addr(), Database: "app", Metrics: reg, TraceSample: 1})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	for _, stmt := range []string{
		"CREATE TABLE t (id INT PRIMARY KEY, v TEXT)",
		"INSERT INTO t VALUES (1, 'x')",
		"SELECT v FROM t WHERE id = 1",
	} {
		if _, err := cl.Exec(stmt); err != nil {
			return nil, err
		}
	}
	p.SLAReport()
	reg.Snapshot() // run the snapshot bridges (engine stats, SLA gauges)
	return reg.Families(), nil
}
