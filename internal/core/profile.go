package core

import (
	"fmt"
	"time"

	"sdp/internal/sla"
)

// The paper's Section 4.2: "When a new database is created, it is first
// allocated to a free machine in the cluster to observe the resource
// requirements needed to maintain its SLA." This file implements that
// observation period: the database runs on a dedicated machine while its
// resource consumption is measured, and the result is the r[j] vector used
// for First-Fit placement.

// ProfileReport is the outcome of an observation period.
type ProfileReport struct {
	// Req is the measured per-replica resource requirement r[j].
	Req sla.Resources
	// ObservedTPS is the committed-transaction rate during the window.
	ObservedTPS float64
	// SizeMB is the database's observed size.
	SizeMB float64
	// PoolPagesTouched is the number of distinct pages the workload pulled
	// into the buffer pool, a proxy for the hot working set.
	PoolPagesTouched int
	// Window is the observation duration.
	Window time.Duration
}

// referenceCapacity describes what a unit machine can sustain, mirroring
// sla.Profile's calibration: 10 TPS of CPU, 1000 MB of memory-resident
// data, 2000 MB of disk, 20 TPS of disk bandwidth.
const (
	refTPSPerMachine    = 10.0
	refMemoryMBPerUnit  = 1000.0
	refDiskMBPerUnit    = 2000.0
	refDiskBWTPSPerUnit = 20.0
)

// ObserveDatabase measures a database's resource requirement on one of its
// hosting machines over the given window, while the caller drives the
// database's expected workload. The machine should host only this database
// during observation (the paper uses a free machine) so the counters are
// attributable.
func (c *Cluster) ObserveDatabase(db, machineID string, window time.Duration, drive func(stop <-chan struct{})) (ProfileReport, error) {
	m, err := c.Machine(machineID)
	if err != nil {
		return ProfileReport{}, err
	}
	if m.Failed() {
		return ProfileReport{}, fmt.Errorf("%w: %s", ErrMachineFailed, machineID)
	}
	if !m.Engine().HasDatabase(db) {
		return ProfileReport{}, fmt.Errorf("%w: %s not on %s", ErrNoDatabase, db, machineID)
	}

	before := m.Engine().Stats()
	poolBefore := m.Engine().Pool().Len()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		drive(stop)
	}()
	time.Sleep(window)
	close(stop)
	<-done
	after := m.Engine().Stats()
	poolAfter := m.Engine().Pool().Len()

	committed := after.Commits - before.Commits
	tps := float64(committed) / window.Seconds()
	sizeMB := float64(m.Engine().DatabaseByteSize(db)) / (1 << 20)
	touched := poolAfter - poolBefore
	if touched < 0 {
		touched = 0
	}

	// Map measurements onto the resource vector using the unit-machine
	// calibration (see sla.Profile). Memory demand is estimated from the
	// hot working set when it is smaller than the database.
	memMB := sizeMB
	if hot := float64(touched) * pageSizeMBEstimate; hot > 0 && hot < memMB {
		memMB = hot
	}
	rep := ProfileReport{
		ObservedTPS:      tps,
		SizeMB:           sizeMB,
		PoolPagesTouched: touched,
		Window:           window,
		Req: sla.Resources{
			CPU:    tps / refTPSPerMachine,
			Memory: memMB / refMemoryMBPerUnit,
			Disk:   sizeMB / refDiskMBPerUnit,
			DiskBW: tps / refDiskBWTPSPerUnit,
		},
	}
	return rep, nil
}

// pageSizeMBEstimate is the rough in-memory size of one decoded page, used
// to convert touched-page counts into a working-set estimate.
const pageSizeMBEstimate = 0.004 // ~4 KB
