package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdp/internal/obs"
	"sdp/internal/placement"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
)

// fakeClock drives the SLA monitor deterministically in adaptive tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// adaptiveHarness is a 4-machine cluster with a fake-clock SLA monitor and
// one tracked database "app" on two replicas.
func adaptiveHarness(t *testing.T, declared sla.SLA) (*Cluster, *sla.Monitor, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	mon := sla.NewMonitor(obs.NewRegistry(), sla.MonitorOptions{
		Window:  time.Second,
		Windows: 16,
		Now:     clk.Now,
	})
	c := NewCluster("adapt", Options{Replicas: 2, SLAMonitor: mon})
	if _, err := c.AddMachines(4); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabaseOn("app", []string{"m1", "m2"}); err != nil {
		t.Fatal(err)
	}
	mon.Track("app", declared)
	return c, mon, clk
}

// feedWindow records n commits at the given latency into the current
// window, then advances the clock past it so it is closed and evaluable.
func feedWindow(mon *sla.Monitor, clk *fakeClock, db string, n int, latency time.Duration) {
	for i := 0; i < n; i++ {
		mon.ObserveCommit(db, latency)
	}
	clk.Advance(time.Second)
}

func TestAdaptiveGrowsHotTenant(t *testing.T) {
	declared := sla.SLA{MinThroughput: 10, MaxRejectFraction: 0.5, MaxMeanLatency: 5 * time.Millisecond}
	c, mon, clk := adaptiveHarness(t, declared)
	// Latency blows through the declared ceiling: a violation the
	// classifier reads as overload.
	feedWindow(mon, clk, "app", 50, 20*time.Millisecond)

	a := c.NewAdaptiveController(AdaptiveConfig{Budget: placement.Budget{MinReplicas: 2, MaxReplicas: 3}})
	launched := a.RunOnce()
	a.WaitIdle()
	if launched != 1 {
		t.Fatalf("launched = %d, want 1 grow", launched)
	}
	if reps, err := c.Replicas("app"); err != nil || len(reps) != 3 {
		t.Fatalf("replicas after grow = %v (%v), want 3", reps, err)
	}
	grows, shrinks, migrates := a.Actions()
	if grows != 1 || shrinks != 0 || migrates != 0 {
		t.Fatalf("actions = %d/%d/%d, want 1 grow only", grows, shrinks, migrates)
	}

	// At budget: another hot round must be inert.
	feedWindow(mon, clk, "app", 50, 20*time.Millisecond)
	if n := a.RunOnce(); n != 0 {
		t.Fatalf("at-budget round launched %d actions, want 0", n)
	}

	rep := a.Report()
	if len(rep.Tenants) != 1 || rep.Tenants[0].Class != "hot" || rep.Tenants[0].Replicas != 3 {
		t.Fatalf("report tenants = %+v, want one hot tenant at 3 replicas", rep.Tenants)
	}
}

func TestAdaptiveShrinksColdTenant(t *testing.T) {
	declared := sla.SLA{MinThroughput: 100, MaxRejectFraction: 0.5}
	c, mon, clk := adaptiveHarness(t, declared)
	if err := c.CreateReplica("app", "m3"); err != nil {
		t.Fatal(err)
	}
	// A trickle of offered load: far under the floor, demand-limited.
	feedWindow(mon, clk, "app", 3, time.Millisecond)

	a := c.NewAdaptiveController(AdaptiveConfig{Budget: placement.Budget{MinReplicas: 2, MaxReplicas: 3}})
	launched := a.RunOnce()
	a.WaitIdle()
	if launched != 1 {
		t.Fatalf("launched = %d, want 1 shrink", launched)
	}
	reps, err := c.Replicas("app")
	if err != nil || len(reps) != 2 {
		t.Fatalf("replicas after shrink = %v (%v), want 2", reps, err)
	}

	// At the floor: the cold tenant must not shrink further.
	feedWindow(mon, clk, "app", 3, time.Millisecond)
	if n := a.RunOnce(); n != 0 {
		t.Fatalf("at-floor round launched %d actions, want 0", n)
	}
}

func TestAdaptiveInertOnBalancedLoad(t *testing.T) {
	declared := sla.SLA{MinThroughput: 10, MaxRejectFraction: 0.5, MaxMeanLatency: 100 * time.Millisecond}
	c, mon, clk := adaptiveHarness(t, declared)
	a := c.NewAdaptiveController(AdaptiveConfig{})

	// Healthy traffic comfortably inside the SLA, replicas balanced:
	// every round must plan nothing.
	for i := 0; i < 5; i++ {
		feedWindow(mon, clk, "app", 50, time.Millisecond)
		if n := a.RunOnce(); n != 0 {
			t.Fatalf("round %d launched %d actions on balanced load", i, n)
		}
	}
	if reps, _ := c.Replicas("app"); len(reps) != 2 {
		t.Fatalf("replicas changed on balanced load: %v", reps)
	}
	rep := a.Report()
	if rep.Rounds != 5 || len(rep.Recent) != 0 {
		t.Fatalf("report = rounds %d recent %d, want 5 rounds and no actions", rep.Rounds, len(rep.Recent))
	}
}

// TestRebalanceSeesNonSLADatabases is the regression test for the shared
// candidate path: databases created without PlaceWithSLA (no declared
// reservation) used to be invisible to the rebalancer.
func TestRebalanceSeesNonSLADatabases(t *testing.T) {
	c := NewCluster("rb2", Options{Replicas: 1})
	if _, err := c.AddMachines(4); err != nil {
		t.Fatal(err)
	}
	// Six unmanaged single-replica databases, all piled onto m1.
	for i := 0; i < 6; i++ {
		db := fmt.Sprintf("pile%d", i)
		if err := c.CreateDatabaseOn(db, []string{"m1"}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(db, "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
			t.Fatal(err)
		}
	}
	report, err := c.Rebalance(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Moves) == 0 {
		t.Fatal("rebalancer planned no moves for non-SLA databases")
	}
	if report.PeakAfter >= report.PeakBefore {
		t.Errorf("peak did not improve: %v -> %v", report.PeakBefore, report.PeakAfter)
	}
	// The pile must actually have spread.
	perMachine := map[string]int{}
	for i := 0; i < 6; i++ {
		reps, err := c.Replicas(fmt.Sprintf("pile%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range reps {
			perMachine[id]++
		}
	}
	if perMachine["m1"] == 6 {
		t.Fatalf("all databases still on m1: %v", perMachine)
	}
}

// TestRetireReplicaSurvivesFailover: the retire commits to the consensus
// log, so a controller failover must not resurrect the retired replica
// (whose engine copy is gone) into the replica set.
func TestRetireReplicaSurvivesFailover(t *testing.T) {
	c := newTestCluster(t, 3, ctlOpts())
	if err := c.CreateReplica("app", "m3"); err != nil {
		t.Fatal(err)
	}
	if err := c.RetireReplica("app", "m2"); err != nil {
		t.Fatal(err)
	}
	reps, _ := c.Replicas("app")
	if len(reps) != 2 || contains(reps, "m2") {
		t.Fatalf("replicas after retire = %v, want m1+m3", reps)
	}

	if _, err := c.KillLeaderController(); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitControllerSettled(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	reps, _ = c.Replicas("app")
	if len(reps) != 2 || contains(reps, "m2") {
		t.Fatalf("failover resurrected the retired replica: %v", reps)
	}
	execRetry(t, c, "app", "CREATE TABLE t2 (id INT PRIMARY KEY)")
}

// TestRetireReplicaGuards: the primitive refuses the last replica and
// unknown hosts.
func TestRetireReplicaGuards(t *testing.T) {
	c := newTestCluster(t, 3, Options{Replicas: 2})
	if err := c.RetireReplica("app", "m3"); err == nil {
		t.Fatal("retire of a non-hosting machine succeeded")
	}
	if err := c.RetireReplica("app", "m1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RetireReplica("app", "m2"); err == nil {
		t.Fatal("retire of the last replica succeeded")
	}
	if err := c.RetireReplica("nope", "m1"); err == nil {
		t.Fatal("retire on unknown database succeeded")
	}
}

// TestAdaptiveRaceLoop runs the decision loop at full speed against
// concurrent Algorithm 1 copies, controller failovers, and live traffic —
// the -race exercise from the issue. Correctness here is "no race, no
// deadlock, cluster still serves"; the loop's decisions are incidental.
func TestAdaptiveRaceLoop(t *testing.T) {
	mon := sla.NewMonitor(obs.NewRegistry(), sla.MonitorOptions{Window: 20 * time.Millisecond, Windows: 32})
	opts := ctlOpts()
	opts.SLAMonitor = mon
	c := newTestCluster(t, 4, opts)
	mon.Track("app", sla.SLA{MinThroughput: 1, MaxRejectFraction: 0.95, MaxMeanLatency: 50 * time.Millisecond})
	execRetry(t, c, "app", "CREATE TABLE t (id INT PRIMARY KEY, n INT)")

	a := c.NewAdaptiveController(AdaptiveConfig{
		Interval: 5 * time.Millisecond,
		Budget:   placement.Budget{MinReplicas: 2, MaxReplicas: 3},
	})
	a.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var committed atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.Exec("app", "INSERT INTO t VALUES (?, ?)", sqldb.NewInt(int64(w*1_000_000+i)), sqldb.NewInt(int64(i)))
				if err == nil {
					committed.Add(1)
				}
			}
		}(w)
	}
	// Manual copies race the loop's own moves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		targets := []string{"m3", "m4", "m3", "m4"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.CreateReplica("app", targets[i%len(targets)])
			_ = c.RetireReplica("app", targets[i%len(targets)])
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Controller failovers under the loop.
	for i := 0; i < 3; i++ {
		time.Sleep(60 * time.Millisecond)
		if _, err := c.KillLeaderController(); err == nil {
			if err := c.WaitControllerSettled(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			c.RestartControllers()
		}
	}
	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
	a.Stop()

	if err := c.WaitControllerSettled(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if reps, err := c.Replicas("app"); err != nil || len(reps) < 2 {
		t.Fatalf("replicas after soak = %v (%v), want >= 2", reps, err)
	}
	if committed.Load() == 0 {
		t.Fatal("no transaction committed during the soak")
	}
	execRetry(t, c, "app", "INSERT INTO t VALUES (9999999, 1)")
}
