module sdp

go 1.22
