package sla

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/obs"
)

// Monitor checks what the platform actually delivers against each
// database's declared SLA (the paper's Section 4 model turned into a live
// control signal). The cluster controller feeds it one observation per
// finished transaction — commit with latency, abort, or proactive
// rejection — into a per-database ring of fixed time windows; each window,
// once closed, is compared against the declared SLA on three dimensions:
//
//   - throughput: committed transactions per second >= MinThroughput,
//   - availability: rejected fraction of attempts <= MaxRejectFraction,
//   - latency: mean commit latency <= MaxMeanLatency (when declared).
//
// Windows with no attempted transactions are idle, not violations: the
// minimum-throughput SLA applies to offered load, exactly as the paper's
// T-period accounting does. Violations increment the labeled
// sla_violations_total counter, land in the trace ring under scope "sla"
// with the database as correlation ID, and surface through ComplianceReport
// — which also flags the machines hosting the violating database's
// replicas, the hook a re-placement controller consumes.
//
// The hot path (the three Observe methods) takes one RLock for the
// database lookup plus a handful of atomic adds on the current window
// slot; evaluation runs only at pull time (Report, or any registry
// Snapshot via the OnSnapshot hook), never on the transaction path.
// Window slots are recycled with an epoch CAS; under concurrent recording
// a rotation may misplace the few observations in flight at the boundary
// — monitoring-grade accuracy, the same trade every sliding-window
// counter makes.
type Monitor struct {
	reg    *obs.Registry
	window time.Duration
	nwin   int
	now    func() time.Time

	violations *obs.CounterVec // sla_violations_total{db, kind}
	checked    *obs.CounterVec // sla_windows_checked_total{db}
	tracked    *obs.Gauge      // sla_tracked_databases
	compliance *obs.GaugeVec   // sla_compliance{db}
	observed   *obs.GaugeVec   // sla_observed_tps{db}

	mu      sync.RWMutex
	dbs     map[string]*dbMonitor
	sources []ReplicaSource
}

// ReplicaSource resolves a database name to the machines currently hosting
// its replicas; ok is false when the source does not know the database.
// Each cluster controller registers one, so the monitor can flag the
// machines behind a violation without importing the controller packages.
type ReplicaSource func(db string) (machines []string, ok bool)

// MonitorOptions tunes a Monitor; the zero value gives 60 one-second
// windows and the wall clock.
type MonitorOptions struct {
	// Window is the width of one accounting window (default 1s).
	Window time.Duration
	// Windows is how many windows the per-database ring retains; it is
	// also the span over which a database must stay clean to be reported
	// compliant again after a violation (default 60).
	Windows int
	// Now overrides the clock, for deterministic tests.
	Now func() time.Time
}

// ViolationKind values label sla_violations_total and ComplianceReport
// entries.
const (
	// ViolationThroughput marks a window whose committed TPS fell short of
	// the declared minimum.
	ViolationThroughput = "throughput"
	// ViolationAvailability marks a window whose proactively rejected
	// fraction exceeded the declared maximum.
	ViolationAvailability = "availability"
	// ViolationLatency marks a window whose mean commit latency exceeded
	// the declared bound.
	ViolationLatency = "latency"
)

// dbMonitor is one tracked database: its declared SLA, the window ring the
// hot path writes into, and the evaluation state the pull path owns.
type dbMonitor struct {
	name  string
	sla   SLA
	slots []monitorSlot

	// Evaluation state, guarded by evalMu (hot path never touches it).
	evalMu      sync.Mutex
	nextEval    int64 // first window index not yet evaluated
	evaluated   uint64
	violated    uint64
	byKind      map[string]uint64
	lastViolIdx int64
	lastViol    *Violation
	lastStats   WindowStats
	haveStats   bool
}

// monitorSlot is one ring entry. epoch holds the window index the slot
// currently accumulates; a recorder seeing a stale epoch CASes it forward
// and zeroes the counters, recycling the slot for the new window.
type monitorSlot struct {
	epoch    atomic.Int64
	commits  atomic.Uint64
	aborts   atomic.Uint64
	rejects  atomic.Uint64
	latNanos atomic.Int64
}

// NewMonitor creates a monitor reporting into reg and registers a snapshot
// hook, so every registry pull (including the admin plane's /metrics)
// evaluates freshly closed windows before the families are read.
func NewMonitor(reg *obs.Registry, opts MonitorOptions) *Monitor {
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	if opts.Windows <= 0 {
		opts.Windows = 60
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	m := &Monitor{
		reg:    reg,
		window: opts.Window,
		nwin:   opts.Windows,
		now:    opts.Now,
		violations: reg.CounterVec("sla_violations_total",
			"SLA windows violated, by database and dimension (throughput, availability, latency)", "db", "kind"),
		checked: reg.CounterVec("sla_windows_checked_total",
			"Non-idle windows evaluated against the declared SLA, by database", "db"),
		tracked: reg.Gauge("sla_tracked_databases",
			"Databases with a declared SLA under compliance monitoring"),
		compliance: reg.GaugeVec("sla_compliance",
			"1 when the database had no SLA violation within the retained window span, else 0 (bridged at snapshot)", "db"),
		observed: reg.GaugeVec("sla_observed_tps",
			"Committed TPS of the most recent non-idle closed window, by database (bridged at snapshot)", "db"),
		dbs: make(map[string]*dbMonitor),
	}
	reg.OnSnapshot(m.bridge)
	return m
}

// Window returns the monitor's window width.
func (m *Monitor) Window() time.Duration { return m.window }

// Track declares db's SLA and starts monitoring it. Observations for
// untracked databases are dropped, so controllers can feed the monitor
// unconditionally. Tracking the same name again replaces the declaration
// and resets the compliance history.
func (m *Monitor) Track(db string, s SLA) {
	if m == nil {
		return
	}
	if s.Period == 0 {
		s.Period = 24 * time.Hour
	}
	d := &dbMonitor{
		name:        db,
		sla:         s,
		slots:       make([]monitorSlot, m.nwin),
		byKind:      make(map[string]uint64),
		lastViolIdx: -1,
		nextEval:    m.windowIndex(m.now()),
	}
	for i := range d.slots {
		d.slots[i].epoch.Store(-1)
	}
	m.mu.Lock()
	m.dbs[db] = d
	m.tracked.Set(float64(len(m.dbs)))
	m.mu.Unlock()
}

// AddReplicaSource registers a resolver for the machines hosting a
// database's replicas, consulted when a report must flag a violating
// database's hosts.
func (m *Monitor) AddReplicaSource(src ReplicaSource) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.sources = append(m.sources, src)
	m.mu.Unlock()
}

// ObserveCommit records one committed transaction and its latency.
func (m *Monitor) ObserveCommit(db string, latency time.Duration) {
	m.observe(db, func(s *monitorSlot) {
		s.commits.Add(1)
		s.latNanos.Add(int64(latency))
	})
}

// ObserveAbort records one aborted transaction (deadlock victim, lock
// timeout, 2PC vote-no — application-inherent failures, which the paper's
// SLA model excludes from the rejection bound).
func (m *Monitor) ObserveAbort(db string) {
	m.observe(db, func(s *monitorSlot) { s.aborts.Add(1) })
}

// ObserveReject records one proactively rejected transaction (Algorithm 1
// during replica creation) — the numerator of the availability constraint.
func (m *Monitor) ObserveReject(db string) {
	m.observe(db, func(s *monitorSlot) { s.rejects.Add(1) })
}

// observe resolves the database and its current window slot, recycling the
// slot when it still holds an expired window.
func (m *Monitor) observe(db string, add func(*monitorSlot)) {
	if m == nil {
		return
	}
	m.mu.RLock()
	d := m.dbs[db]
	m.mu.RUnlock()
	if d == nil {
		return
	}
	idx := m.windowIndex(m.now())
	s := &d.slots[int(idx%int64(len(d.slots)))]
	for {
		e := s.epoch.Load()
		if e == idx {
			break
		}
		if e > idx {
			return // slot already rotated past us; drop the straggler
		}
		if s.epoch.CompareAndSwap(e, idx) {
			s.commits.Store(0)
			s.aborts.Store(0)
			s.rejects.Store(0)
			s.latNanos.Store(0)
			break
		}
	}
	add(s)
}

// windowIndex maps an instant to its window number.
func (m *Monitor) windowIndex(t time.Time) int64 {
	return t.UnixNano() / int64(m.window)
}

// bridge is the registry snapshot hook: evaluate every freshly closed
// window, then refresh the per-database compliance and observed-TPS gauges
// so one pull carries both the violation counters and the current verdict.
func (m *Monitor) bridge() {
	nowIdx := m.windowIndex(m.now())
	for _, d := range m.sorted() {
		m.evaluate(d, nowIdx)
		d.evalMu.Lock()
		v := 1.0
		if d.violatedWithinSpanLocked(nowIdx, len(d.slots)) {
			v = 0
		}
		tps := 0.0
		if d.haveStats {
			tps = d.lastStats.TPS
		}
		d.evalMu.Unlock()
		m.compliance.With(d.name).Set(v)
		m.observed.With(d.name).Set(tps)
	}
}

// sorted returns the tracked databases by name.
func (m *Monitor) sorted() []*dbMonitor {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.dbs))
	for n := range m.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*dbMonitor, len(names))
	for i, n := range names {
		out[i] = m.dbs[n]
	}
	return out
}

// evaluate compares every window of d closed since the last evaluation
// (and still within the ring) against the declared SLA, recording
// violations into the registry and the database's evaluation state.
func (m *Monitor) evaluate(d *dbMonitor, nowIdx int64) {
	d.evalMu.Lock()
	defer d.evalMu.Unlock()
	lo := d.nextEval
	if min := nowIdx - int64(len(d.slots)); lo < min {
		lo = min
	}
	for idx := lo; idx < nowIdx; idx++ {
		s := &d.slots[int(idx%int64(len(d.slots)))]
		if s.epoch.Load() != idx {
			continue // idle window: nothing was offered, nothing to judge
		}
		ws := windowStats(idx, s, m.window)
		if ws.Attempts() == 0 {
			continue
		}
		d.lastStats = ws
		d.haveStats = true
		d.evaluated++
		m.checked.With(d.name).Inc()

		var kinds []string
		if ws.TPS < d.sla.MinThroughput {
			kinds = append(kinds, ViolationThroughput)
		}
		if ws.RejectFraction > d.sla.MaxRejectFraction {
			kinds = append(kinds, ViolationAvailability)
		}
		if d.sla.MaxMeanLatency > 0 && ws.MeanLatencySeconds > d.sla.MaxMeanLatency.Seconds() {
			kinds = append(kinds, ViolationLatency)
		}
		if len(kinds) == 0 {
			continue
		}
		d.violated++
		d.lastViolIdx = idx
		d.lastViol = &Violation{Kinds: kinds, Stats: ws}
		for _, k := range kinds {
			d.byKind[k]++
			m.violations.With(d.name, k).Inc()
			m.reg.TraceEvent("sla", d.name, "violation",
				fmt.Sprintf("%s: %.1f tps, %.3f rejected, %.2fms mean latency (window %d)",
					k, ws.TPS, ws.RejectFraction, ws.MeanLatencySeconds*1e3, idx))
		}
	}
	d.nextEval = nowIdx
}

// violatedWithinSpanLocked reports whether the database's most recent
// violation is still inside the retained window span. Caller holds evalMu.
func (d *dbMonitor) violatedWithinSpanLocked(nowIdx int64, span int) bool {
	return d.lastViolIdx >= 0 && d.lastViolIdx >= nowIdx-int64(span)
}

// windowStats derives one closed window's observed figures from its slot.
func windowStats(idx int64, s *monitorSlot, window time.Duration) WindowStats {
	ws := WindowStats{
		Window:  idx,
		Commits: s.commits.Load(),
		Aborts:  s.aborts.Load(),
		Rejects: s.rejects.Load(),
	}
	sec := window.Seconds()
	if sec > 0 {
		ws.TPS = float64(ws.Commits) / sec
	}
	if a := ws.Attempts(); a > 0 {
		ws.RejectFraction = float64(ws.Rejects) / float64(a)
	}
	if ws.Commits > 0 {
		ws.MeanLatencySeconds = float64(s.latNanos.Load()) / float64(ws.Commits) / 1e9
	}
	return ws
}

// WindowStats is one closed window's observed figures.
type WindowStats struct {
	// Window is the window index (monotonic; start = Window × width).
	Window int64 `json:"window"`
	// Commits, Aborts, Rejects count finished transactions by outcome.
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	Rejects uint64 `json:"rejects"`
	// TPS is committed transactions per second over the window.
	TPS float64 `json:"tps"`
	// RejectFraction is Rejects over all attempts.
	RejectFraction float64 `json:"reject_fraction"`
	// MeanLatencySeconds is the mean commit latency.
	MeanLatencySeconds float64 `json:"mean_latency_seconds"`
}

// Attempts returns all finished transactions of the window.
func (w WindowStats) Attempts() uint64 { return w.Commits + w.Aborts + w.Rejects }

// Violation describes the most recent violating window of a database.
type Violation struct {
	// Kinds lists the violated dimensions (throughput, availability,
	// latency).
	Kinds []string `json:"kinds"`
	// Stats is the violating window's observed figures.
	Stats WindowStats `json:"stats"`
}

// DBCompliance is one database's entry in a ComplianceReport.
type DBCompliance struct {
	// Database is the client database name.
	Database string `json:"database"`
	// SLA is the declared agreement being checked.
	SLA SLA `json:"sla"`
	// Compliant is false while a violation lies within the retained
	// window span.
	Compliant bool `json:"compliant"`
	// WindowsEvaluated counts non-idle closed windows checked so far.
	WindowsEvaluated uint64 `json:"windows_evaluated"`
	// WindowsViolated counts checked windows that violated any dimension.
	WindowsViolated uint64 `json:"windows_violated"`
	// Violations tallies violations by dimension.
	Violations map[string]uint64 `json:"violations,omitempty"`
	// LastWindow is the most recent non-idle closed window.
	LastWindow *WindowStats `json:"last_window,omitempty"`
	// LastViolation describes the most recent violating window.
	LastViolation *Violation `json:"last_violation,omitempty"`
	// Machines lists the machines hosting the database's replicas when it
	// is non-compliant — the candidates a re-placement pass would relieve.
	Machines []string `json:"machines,omitempty"`
	// TopQueries lists the database's heaviest statements by total time
	// (from the registry's per-tenant query stats, fed by the wire server),
	// so a violating SLA comes with the workload that caused it.
	TopQueries []obs.QueryStat `json:"top_queries,omitempty"`
}

// topQueriesPerDB bounds the per-database statement list in a report.
const topQueriesPerDB = 5

// ComplianceReport is the monitor's full verdict, served by /slaz.
type ComplianceReport struct {
	// GeneratedAt is when the report was assembled.
	GeneratedAt time.Time `json:"generated_at"`
	// WindowSeconds is the accounting window width.
	WindowSeconds float64 `json:"window_seconds"`
	// Databases lists every tracked database, sorted by name.
	Databases []DBCompliance `json:"databases"`
}

// Violating returns the names of the non-compliant databases.
func (r ComplianceReport) Violating() []string {
	var out []string
	for _, d := range r.Databases {
		if !d.Compliant {
			out = append(out, d.Database)
		}
	}
	return out
}

// Report evaluates all freshly closed windows and returns the compliance
// verdict for every tracked database.
func (m *Monitor) Report() ComplianceReport {
	if m == nil {
		return ComplianceReport{}
	}
	now := m.now()
	nowIdx := m.windowIndex(now)
	r := ComplianceReport{GeneratedAt: now, WindowSeconds: m.window.Seconds()}
	for _, d := range m.sorted() {
		m.evaluate(d, nowIdx)
		d.evalMu.Lock()
		e := DBCompliance{
			Database:         d.name,
			SLA:              d.sla,
			Compliant:        !d.violatedWithinSpanLocked(nowIdx, len(d.slots)),
			WindowsEvaluated: d.evaluated,
			WindowsViolated:  d.violated,
		}
		if len(d.byKind) > 0 {
			e.Violations = make(map[string]uint64, len(d.byKind))
			for k, v := range d.byKind {
				e.Violations[k] = v
			}
		}
		if d.haveStats {
			ws := d.lastStats
			e.LastWindow = &ws
		}
		if d.lastViol != nil {
			v := *d.lastViol
			e.LastViolation = &v
		}
		d.evalMu.Unlock()
		if !e.Compliant {
			e.Machines = m.replicasOf(d.name)
		}
		e.TopQueries = m.reg.QueryStats().TopK(d.name, topQueriesPerDB)
		r.Databases = append(r.Databases, e)
	}
	return r
}

// replicasOf asks the registered sources for the machines hosting db.
func (m *Monitor) replicasOf(db string) []string {
	m.mu.RLock()
	sources := append([]ReplicaSource{}, m.sources...)
	m.mu.RUnlock()
	for _, src := range sources {
		if machines, ok := src(db); ok {
			sort.Strings(machines)
			return machines
		}
	}
	return nil
}

// WriteText renders the report for operators: one line per database plus
// the latest violating window, mirroring Snapshot.WriteText's style.
func (r ComplianceReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# SLA compliance (window %.3gs, %d databases)\n", r.WindowSeconds, len(r.Databases))
	for _, d := range r.Databases {
		verdict := "COMPLIANT"
		if !d.Compliant {
			verdict = "VIOLATING"
		}
		fmt.Fprintf(w, "%-16s %-10s windows=%d violated=%d", d.Database, verdict, d.WindowsEvaluated, d.WindowsViolated)
		if d.LastWindow != nil {
			fmt.Fprintf(w, " tps=%.1f reject=%.3f mean=%.2fms",
				d.LastWindow.TPS, d.LastWindow.RejectFraction, d.LastWindow.MeanLatencySeconds*1e3)
		}
		fmt.Fprintln(w)
		if d.LastViolation != nil {
			fmt.Fprintf(w, "  last violation: %v in window %d (%.1f tps, %.3f rejected, %.2fms mean)\n",
				d.LastViolation.Kinds, d.LastViolation.Stats.Window,
				d.LastViolation.Stats.TPS, d.LastViolation.Stats.RejectFraction,
				d.LastViolation.Stats.MeanLatencySeconds*1e3)
		}
		if len(d.Machines) > 0 {
			fmt.Fprintf(w, "  hosting machines: %v\n", d.Machines)
		}
		for _, q := range d.TopQueries {
			fmt.Fprintf(w, "  top query: %q calls=%d total=%.2fms mean=%.3fms max=%.3fms\n",
				q.SQL, q.Count, q.TotalSeconds*1e3, q.MeanSeconds*1e3, q.MaxSeconds*1e3)
		}
	}
}
