package sqldb

// This file defines the abstract syntax tree produced by the parser and
// consumed by the executor.

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type [PRIMARY KEY] [NOT NULL], ...).
type CreateTableStmt struct {
	Table       string
	Cols        []ColumnDef
	IfNotExists bool
}

// ColumnDef describes one column in a CREATE TABLE statement.
type ColumnDef struct {
	Name       string
	Typ        Type
	PrimaryKey bool
	NotNull    bool
	Unique     bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON table (col).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Col    string
	Unique bool
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// InsertStmt is INSERT INTO table [(cols)] VALUES (exprs), (exprs)...
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE pred].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr // nil means all rows
}

// Assignment is one col = expr pair in an UPDATE SET clause.
type Assignment struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM table [WHERE pred].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is SELECT [DISTINCT] items FROM table [JOIN ...] [WHERE]
// [GROUP BY] [HAVING] [ORDER BY] [LIMIT [OFFSET]].
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
}

// SelectItem is one projected expression, possibly aliased; Star marks "*"
// or "alias.*".
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	// StarTable is the table qualifier for "t.*"; empty for a bare "*".
	StarTable string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias if present, else the table name.
func (t *TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is one [INNER|LEFT] JOIN table ON pred clause.
type JoinClause struct {
	Left  bool // LEFT OUTER join when true, INNER otherwise
	Table *TableRef
	On    Expr
}

// OrderItem is one ORDER BY expression with direction.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// ExplainStmt is EXPLAIN <statement>: it describes the access paths the
// executor would choose without executing the statement.
type ExplainStmt struct{ Inner Statement }

// BeginStmt is BEGIN.
type BeginStmt struct{}

// CommitStmt is COMMIT.
type CommitStmt struct{}

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}

// Expr is any expression node.
type Expr interface{ expr() }

// LiteralExpr is a constant value.
type LiteralExpr struct{ Val Value }

// ParamExpr is a ? placeholder, bound positionally at execution time.
type ParamExpr struct{ Index int }

// ColumnExpr references a column, optionally qualified by table alias.
type ColumnExpr struct {
	Table string // "" when unqualified
	Col   string
	// idx is resolved by the executor against the current row layout.
}

// BinaryExpr applies an operator to two operands.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op UnOp
	E  Expr
}

// InExpr is "expr [NOT] IN (list...)".
type InExpr struct {
	E      Expr
	List   []Expr
	Negate bool
}

// BetweenExpr is "expr [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
	Negate bool
}

// LikeExpr is "expr [NOT] LIKE pattern" with % and _ wildcards.
type LikeExpr struct {
	E       Expr
	Pattern Expr
	Negate  bool
}

// IsNullExpr is "expr IS [NOT] NULL".
type IsNullExpr struct {
	E      Expr
	Negate bool
}

// AggExpr is an aggregate function call: COUNT(*), COUNT([DISTINCT] e),
// SUM([DISTINCT] e), AVG(e), MIN(e), MAX(e).
type AggExpr struct {
	Fn       AggFn
	E        Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
}

func (*LiteralExpr) expr() {}
func (*ParamExpr) expr()   {}
func (*ColumnExpr) expr()  {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*LikeExpr) expr()    {}
func (*IsNullExpr) expr()  {}
func (*AggExpr) expr()     {}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return "?"
	}
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota
	OpNeg
)

// AggFn enumerates aggregate functions.
type AggFn int

// Aggregate functions.
const (
	AggCount AggFn = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}
