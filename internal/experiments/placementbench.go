package experiments

import (
	"fmt"
	"time"

	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/placement"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
	"sdp/internal/workload"
)

// The adaptive-placement experiment (ROADMAP open item 1): tenants with
// identical declared SLAs are packed by static First-Fit (Algorithm 2),
// then hit with Zipfian-skewed TPC-W traffic, so the machines hosting the
// popular tenants saturate their bounded worker pools (statements queue)
// while the rest idle. The same setup is run twice at equal machine count —
// once frozen (the paper's static placement) and once with the adaptive
// provisioning controller closing the loop from the SLA monitor — and the
// SLA monitor's violation windows are compared. A third, balanced phase
// asserts the decision loop is inert when there is nothing to fix.

// PlacementRunStats summarises one run of the skew workload.
type PlacementRunStats struct {
	// Committed is the total committed transactions across all tenants.
	Committed uint64 `json:"committed"`
	// TPS is committed transactions per second.
	TPS float64 `json:"tps"`
	// WindowsEvaluated and ViolationWindows are summed over tenants from
	// the SLA monitor's per-window evaluation.
	WindowsEvaluated uint64 `json:"windows_evaluated"`
	ViolationWindows uint64 `json:"violation_windows"`
	// ViolatedDatabases counts tenants with at least one violation.
	ViolatedDatabases int `json:"violated_databases"`
	// ViolationFraction is ViolationWindows / WindowsEvaluated.
	ViolationFraction float64 `json:"violation_fraction"`
	// Grows/Shrinks/Migrates are the adaptive controller's successful
	// actions (zero in the static run).
	Grows    uint64 `json:"grows"`
	Shrinks  uint64 `json:"shrinks"`
	Migrates uint64 `json:"migrates"`
	// ReplicaDegrees maps tenant to final replica degree.
	ReplicaDegrees map[string]int `json:"replica_degrees"`
	// Tenants is the per-tenant breakdown.
	Tenants []PlacementTenantStats `json:"tenants"`
}

// PlacementTenantStats is one tenant's outcome in a skew run.
type PlacementTenantStats struct {
	DB               string   `json:"db"`
	Replicas         []string `json:"replicas"`
	WindowsEvaluated uint64   `json:"windows_evaluated"`
	ViolationWindows uint64   `json:"violation_windows"`
	LastTPS          float64  `json:"last_tps"`
	LastMeanLatency  float64  `json:"last_mean_latency_ms"`
}

// PlacementBenchResult is the full experiment record
// (BENCH_placement.json).
type PlacementBenchResult struct {
	Machines        int     `json:"machines"`
	Tenants         int     `json:"tenants"`
	ZipfS           float64 `json:"zipf_s"`
	Sessions        int     `json:"sessions"`
	Seed            int64   `json:"seed"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	Quick           bool    `json:"quick"`

	// Static is the frozen First-Fit placement; Adaptive runs the
	// controller at equal machine count.
	Static   PlacementRunStats `json:"static"`
	Adaptive PlacementRunStats `json:"adaptive"`

	// Balanced-phase gate: the controller must propose nothing when load
	// and placement are even.
	BalancedRounds  uint64 `json:"balanced_rounds"`
	BalancedActions uint64 `json:"balanced_actions"`

	// AdaptiveNoWorse is the CI gate (adaptive ≤ static on violation
	// windows); StrictImprovement is the headline (strictly fewer).
	AdaptiveNoWorse   bool `json:"adaptive_no_worse"`
	StrictImprovement bool `json:"strict_improvement"`
}

// Passed reports the CI gate: adaptive no worse than static under skew,
// and an inert decision loop on balanced load.
func (r *PlacementBenchResult) Passed() bool {
	return r.AdaptiveNoWorse && r.BalancedActions == 0
}

// placementDecl is the per-tenant declared SLA for the skew runs. The
// latency ceiling is the binding constraint: a tenant served from machines
// with free worker slots commits in a couple of service times, while a
// tenant on a saturated machine queues behind its co-tenants' statements.
// The rejection bound is left generous so the adaptive run's own
// Algorithm 1 copies (which reject in-flight-table writes by design)
// cannot manufacture violations.
var placementDecl = sla.SLA{
	MinThroughput:     2,
	MaxRejectFraction: 0.9,
	MaxMeanLatency:    5 * time.Millisecond,
}

// placementReq is the declared per-replica reservation: 0.2 CPU, so
// First-Fit packs five tenant replicas per unit machine.
var placementReq = sla.Resources{CPU: 0.2, Memory: 0.1, Disk: 0.02, DiskBW: 0.05}

const (
	placementMachines = 4
	placementTenants  = 8
	placementZipfS    = 1.1
	placementSessions = 8
)

// placementEngineConfig is the skew runs' engine config: the capacity
// model is on (two worker slots per machine, a fixed per-statement service
// time) and the cache physics is off (pools large enough that every
// working set stays resident). A machine's throughput is then capped at
// Workers/StmtServiceTime statements per second and excess demand queues —
// the regime where replication adds serving capacity, exactly as in the
// paper's scale-out experiments, and where Option 3's round-robin lets a
// grown replica absorb a share of the hot tenant's reads immediately.
func placementEngineConfig(cfg Config) sqldb.Config {
	ec := cfg.engineConfig()
	ec.PoolPages = 4096
	ec.MissLatency = 0
	ec.Workers = 2
	ec.StmtServiceTime = 300 * time.Microsecond
	return ec
}

// placementCtlConfig is the adaptive controller configuration both the
// skew and balanced phases run: one copy at a time and a high migration
// bar, because on a thrashing pool every Algorithm 1 copy is itself a
// latency event — the controller should converge with the fewest moves
// that fix the skew instead of churning.
func placementCtlConfig() core.AdaptiveConfig {
	return core.AdaptiveConfig{
		Interval:           100 * time.Millisecond,
		Budget:             placement.Budget{MinReplicas: 2, MaxReplicas: 3},
		MaxConcurrentMoves: 1,
		RebalanceMinGain:   0.25,
	}
}

// RunPlacementBench runs static vs adaptive under Zipfian skew, then the
// balanced-load inertness phase.
func RunPlacementBench(cfg Config) PlacementBenchResult {
	// Each skew run has a convergence phase (the adaptive controller
	// detects, grows, migrates — the static run simply keeps serving) and
	// then a measured steady-state phase: the monitor history is reset at
	// the phase boundary in both runs identically, so the comparison is
	// what each placement delivers at equal machine count, not the cost of
	// getting there.
	warmup, measure := 5*time.Second, 6*time.Second
	if cfg.Quick {
		warmup, measure = 3*time.Second, 2*time.Second
	}
	res := PlacementBenchResult{
		Machines:        placementMachines,
		Tenants:         placementTenants,
		ZipfS:           placementZipfS,
		Sessions:        placementSessions,
		Seed:            cfg.Seed,
		WarmupSeconds:   warmup.Seconds(),
		DurationSeconds: measure.Seconds(),
		Quick:           cfg.Quick,
	}
	res.Static = runPlacementSkew(cfg, warmup, measure, false)
	res.Adaptive = runPlacementSkew(cfg, warmup, measure, true)
	res.BalancedRounds, res.BalancedActions = runPlacementBalanced(cfg, measure/2)
	res.AdaptiveNoWorse = res.Adaptive.ViolationWindows <= res.Static.ViolationWindows
	res.StrictImprovement = res.Adaptive.ViolationWindows < res.Static.ViolationWindows
	return res
}

// runPlacementSkew builds the First-Fit-packed cluster and drives the
// Zipfian TPC-W load through a warmup/convergence phase and a measured
// steady-state phase, optionally with the adaptive controller running.
func runPlacementSkew(cfg Config, warmup, measure time.Duration, adaptive bool) PlacementRunStats {
	reg := obs.NewRegistry()
	mon := sla.NewMonitor(reg, sla.MonitorOptions{Window: 100 * time.Millisecond, Windows: 256})
	c := core.NewCluster("placement", core.Options{
		// Option 3 so a grown replica immediately absorbs read load.
		ReadOption:                core.ReadOption3,
		AckMode:                   core.Conservative,
		Replicas:                  2,
		EngineConfig:              placementEngineConfig(cfg),
		SLAMonitor:                mon,
		Metrics:                   reg,
		Controllers:               3,
		ControllerSeed:            cfg.Seed,
		ControllerElectionTimeout: 40 * time.Millisecond,
	})
	if _, err := c.AddMachines(placementMachines); err != nil {
		panic(err)
	}

	// Small, fully cached working sets: machine coupling comes from the
	// bounded worker pool (co-tenants contend for the same slots), not the
	// cache, so the comparison isolates serving capacity.
	scale := tpcw.SmallScale(cfg.Seed)
	dbs := make([]clusterDB, placementTenants)
	workloads := make([]*tpcw.Workload, placementTenants)
	for i := range dbs {
		name := fmt.Sprintf("t%d", i)
		// Static First-Fit (Algorithm 2): identical declared reservations
		// pack the popular and unpopular tenants onto the same machines.
		if _, err := c.PlaceWithSLA(name, placementReq, 2); err != nil {
			panic(err)
		}
		dbs[i] = clusterDB{c: c, db: name}
		if err := tpcw.Load(dbs[i], scale); err != nil {
			panic(err)
		}
		workloads[i] = tpcw.NewWorkload(scale)
	}
	// Track after loading so the bulk-load phase is not judged.
	for i := range dbs {
		mon.Track(fmt.Sprintf("t%d", i), placementDecl)
	}

	var ctl *core.AdaptiveController
	if adaptive {
		ctl = c.NewAdaptiveController(placementCtlConfig())
		ctl.Start()
	}

	// The measured span starts at the warmup boundary: re-tracking resets
	// each tenant's monitor history (identically in both runs), discarding
	// convergence-phase windows.
	stats := driveTenants(dbs, workloads, warmup, measure, cfg.Seed, true, func() {
		for i := range dbs {
			mon.Track(fmt.Sprintf("t%d", i), placementDecl)
		}
	})

	if ctl != nil {
		ctl.Stop()
	}
	out := PlacementRunStats{
		Committed:      stats.Committed,
		TPS:            stats.TPS(),
		ReplicaDegrees: map[string]int{},
	}
	rep := mon.Report()
	for _, db := range rep.Databases {
		out.WindowsEvaluated += db.WindowsEvaluated
		out.ViolationWindows += db.WindowsViolated
		if db.WindowsViolated > 0 {
			out.ViolatedDatabases++
		}
		ts := PlacementTenantStats{
			DB:               db.Database,
			WindowsEvaluated: db.WindowsEvaluated,
			ViolationWindows: db.WindowsViolated,
		}
		ts.Replicas, _ = c.Replicas(db.Database)
		if db.LastWindow != nil {
			ts.LastTPS = db.LastWindow.TPS
			ts.LastMeanLatency = db.LastWindow.MeanLatencySeconds * 1000
		}
		out.Tenants = append(out.Tenants, ts)
	}
	if out.WindowsEvaluated > 0 {
		out.ViolationFraction = float64(out.ViolationWindows) / float64(out.WindowsEvaluated)
	}
	if ctl != nil {
		out.Grows, out.Shrinks, out.Migrates = ctl.Actions()
	}
	for i := range dbs {
		name := fmt.Sprintf("t%d", i)
		if reps, err := c.Replicas(name); err == nil {
			out.ReplicaDegrees[name] = len(reps)
		}
	}
	return out
}

// runPlacementBalanced spreads tenants evenly, drives uniform load, and
// returns the controller's round and action counts — the inertness gate.
// The tenants here are deliberately created without PlaceWithSLA, so this
// phase also exercises the shared candidate path for unmanaged databases.
func runPlacementBalanced(cfg Config, d time.Duration) (rounds, actions uint64) {
	reg := obs.NewRegistry()
	// Wider windows than the skew phases: inertness is judged on the
	// planner's load estimates, and more transactions per window means less
	// sampling noise for the EWMA to absorb before the no-move bar.
	mon := sla.NewMonitor(reg, sla.MonitorOptions{Window: 250 * time.Millisecond, Windows: 256})
	c := core.NewCluster("balanced", core.Options{
		ReadOption:                core.ReadOption3,
		AckMode:                   core.Conservative,
		Replicas:                  2,
		EngineConfig:              placementEngineConfig(cfg),
		SLAMonitor:                mon,
		Metrics:                   reg,
		Controllers:               3,
		ControllerSeed:            cfg.Seed,
		ControllerElectionTimeout: 40 * time.Millisecond,
	})
	if _, err := c.AddMachines(placementMachines); err != nil {
		panic(err)
	}
	// Even two-replica spread: every machine hosts exactly four tenants.
	pairs := [][]string{
		{"m1", "m2"}, {"m3", "m4"}, {"m1", "m3"}, {"m2", "m4"},
		{"m1", "m4"}, {"m2", "m3"}, {"m1", "m2"}, {"m3", "m4"},
	}
	scale := tpcw.SmallScale(cfg.Seed)
	dbs := make([]clusterDB, placementTenants)
	workloads := make([]*tpcw.Workload, placementTenants)
	for i := range dbs {
		name := fmt.Sprintf("t%d", i)
		if err := c.CreateDatabaseOn(name, pairs[i%len(pairs)]); err != nil {
			panic(err)
		}
		dbs[i] = clusterDB{c: c, db: name}
		if err := tpcw.Load(dbs[i], scale); err != nil {
			panic(err)
		}
		workloads[i] = tpcw.NewWorkload(scale)
	}
	balancedDecl := sla.SLA{MinThroughput: 1, MaxRejectFraction: 0.9, MaxMeanLatency: 100 * time.Millisecond}
	for i := range dbs {
		mon.Track(fmt.Sprintf("t%d", i), balancedDecl)
	}

	// Warm the pools with the controller off, then enable it for the
	// measured span: the inertness claim is about steady balanced load,
	// not the cold-cache transient (the skew phases likewise keep their
	// convergence transient out of the measured span).
	ctl := c.NewAdaptiveController(placementCtlConfig())
	driveTenants(dbs, workloads, d/2, d, cfg.Seed+7919, false, ctl.Start)
	ctl.Stop()

	rep := ctl.Report()
	grows, shrinks, migrates := ctl.Actions()
	return rep.Rounds, grows + shrinks + migrates
}

// driveTenants runs the session pool for warmup+measure, each session
// picking a tenant per transaction — Zipf-skewed (rank 1 = tenant 0) or
// uniform round-robin. atMeasureStart, when non-nil, runs at the phase
// boundary while traffic continues.
func driveTenants(dbs []clusterDB, workloads []*tpcw.Workload, warmup, measure time.Duration, seed int64, skewed bool, atMeasureStart func()) tpcw.Stats {
	stop := make(chan struct{})
	results := make(chan tpcw.Stats, placementSessions)
	start := time.Now()
	for s := 0; s < placementSessions; s++ {
		go func(s int) {
			var z *workload.Zipf
			if skewed {
				z = workload.NewZipf(seed+int64(s)*104729, len(dbs), placementZipfS)
			}
			clients := make([]*tpcw.Client, len(dbs))
			for i := range dbs {
				clients[i] = &tpcw.Client{
					DB: dbs[i],
					// Browsing mix: reads dominate, so Option 3 spreads a
					// tenant's traffic across however many replicas it has —
					// growth converts directly into serving capacity.
					Mix:           tpcw.BrowsingMix,
					Workload:      workloads[i],
					Classify:      classify,
					RejectBackoff: 200 * time.Microsecond,
				}
			}
			var total tpcw.Stats
			for i := 0; ; i++ {
				select {
				case <-stop:
					results <- total
					return
				default:
				}
				tenant := i % len(dbs)
				if z != nil {
					tenant = z.Rank() - 1
				}
				st := clients[tenant].RunN(seed+int64(s)*1_000_003+int64(i), 1)
				total.Committed += st.Committed
				total.Aborted += st.Aborted
				total.Rejected += st.Rejected
				total.Fatal += st.Fatal
			}
		}(s)
	}
	if warmup > 0 {
		time.Sleep(warmup)
	}
	if atMeasureStart != nil {
		atMeasureStart()
	}
	time.Sleep(measure)
	close(stop)
	var total tpcw.Stats
	for s := 0; s < placementSessions; s++ {
		st := <-results
		total.Committed += st.Committed
		total.Aborted += st.Aborted
		total.Rejected += st.Rejected
		total.Fatal += st.Fatal
	}
	total.Elapsed = time.Since(start)
	return total
}

// WriteText renders a human-readable summary.
func (r *PlacementBenchResult) WriteText(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "placement bench: %d machines, %d tenants, zipf s=%.2f, %.1fs\n",
		r.Machines, r.Tenants, r.ZipfS, r.DurationSeconds)
	line := func(name string, s PlacementRunStats) {
		fmt.Fprintf(w, "  %-8s violations=%d/%d windows (%.1f%%) dbs=%d tps=%.0f grows=%d shrinks=%d migrates=%d\n",
			name, s.ViolationWindows, s.WindowsEvaluated, 100*s.ViolationFraction,
			s.ViolatedDatabases, s.TPS, s.Grows, s.Shrinks, s.Migrates)
	}
	line("static", r.Static)
	line("adaptive", r.Adaptive)
	fmt.Fprintf(w, "  balanced rounds=%d actions=%d\n", r.BalancedRounds, r.BalancedActions)
	fmt.Fprintf(w, "  gate: adaptive_no_worse=%v strict_improvement=%v balanced_inert=%v\n",
		r.AdaptiveNoWorse, r.StrictImprovement, r.BalancedActions == 0)
}
