package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null},
		{NewInt(0), NewInt(-1), NewInt(1 << 40)},
		{NewFloat(3.14159), NewFloat(-0.5)},
		{NewText(""), NewText("hello"), NewText("with 'quotes' and \x00 bytes")},
		{NewBool(true), NewBool(false)},
		{Null, NewInt(7), NewFloat(2.5), NewText("mix"), NewBool(true)},
	}
	for _, r := range rows {
		enc := encodeRow(nil, r)
		dec, rest, err := decodeRow(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if len(rest) != 0 {
			t.Errorf("trailing bytes for %v", r)
		}
		if !reflect.DeepEqual(dec, r) && !(len(dec) == 0 && len(r) == 0) {
			t.Errorf("round trip %v -> %v", r, dec)
		}
	}
}

func TestRowCodecProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(6)
			row := make(Row, n)
			for i := range row {
				switch r.Intn(5) {
				case 0:
					row[i] = Null
				case 1:
					row[i] = NewInt(r.Int63() - r.Int63())
				case 2:
					row[i] = NewFloat(r.NormFloat64())
				case 3:
					b := make([]byte, r.Intn(20))
					r.Read(b)
					row[i] = NewText(string(b))
				default:
					row[i] = NewBool(r.Intn(2) == 0)
				}
			}
			vals[0] = reflect.ValueOf(row)
		},
	}
	if err := quick.Check(func(r Row) bool {
		enc := encodeRow(nil, r)
		dec, rest, err := decodeRow(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(dec) != len(r) {
			return false
		}
		for i := range r {
			if Compare(dec[i], r[i]) != 0 || dec[i].Typ != r[i].Typ {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPageCodecRoundTrip(t *testing.T) {
	slots := []pageSlot{
		{rowID: 1, row: Row{NewInt(1), NewText("a")}},
		{rowID: 2, row: Row{NewInt(2), Null}},
		{rowID: 99, row: Row{NewFloat(1.5), NewBool(true)}},
	}
	enc := encodePage(slots)
	dec, err := decodePage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, slots) {
		t.Errorf("round trip mismatch: %v vs %v", dec, slots)
	}
}

func TestPageCodecCorruption(t *testing.T) {
	enc := encodePage([]pageSlot{{rowID: 1, row: Row{NewText("hello")}}})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := decodePage(enc[:cut]); err == nil {
			// Some prefixes decode fewer slots cleanly only if the count
			// prefix happens to allow it; a strict count makes all cuts fail.
			t.Errorf("truncated page at %d decoded without error", cut)
		}
	}
}

func TestBufferPoolLRU(t *testing.T) {
	p := NewBufferPool(2, 0)
	load := func(id int) func() []byte {
		return func() []byte {
			return encodePage([]pageSlot{{rowID: uint64(id), row: Row{NewInt(int64(id))}}})
		}
	}
	k := func(i int) PageKey { return PageKey{Table: "t", Page: i} }

	if _, err := p.Get(k(1), load(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(k(2), load(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(k(1), load(1)); err != nil { // hit, refreshes 1
		t.Fatal(err)
	}
	if _, err := p.Get(k(3), load(3)); err != nil { // evicts 2
		t.Fatal(err)
	}
	if _, err := p.Get(k(2), load(2)); err != nil { // miss again
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4", s.Misses)
	}
	if s.Evictions < 1 {
		t.Errorf("evictions = %d", s.Evictions)
	}
	if p.Len() != 2 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestBufferPoolDisabled(t *testing.T) {
	p := NewBufferPool(0, 0)
	enc := encodePage([]pageSlot{{rowID: 1, row: Row{NewInt(1)}}})
	k := PageKey{Table: "t", Page: 0}
	for i := 0; i < 3; i++ {
		if _, err := p.Get(k, func() []byte { return enc }); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Stats(); s.Hits != 0 || s.Misses != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBufferPoolPutAndInvalidate(t *testing.T) {
	p := NewBufferPool(4, 0)
	k := PageKey{Table: "t", Page: 0}
	p.Put(k, []pageSlot{{rowID: 5, row: Row{NewInt(5)}}})
	got, err := p.Get(k, func() []byte { t.Fatal("load called on resident page"); return nil })
	if err != nil || len(got) != 1 || got[0].rowID != 5 {
		t.Fatalf("got %v, %v", got, err)
	}
	p.Invalidate(k)
	loaded := false
	_, err = p.Get(k, func() []byte {
		loaded = true
		return encodePage([]pageSlot{{rowID: 5, row: Row{NewInt(5)}}})
	})
	if err != nil || !loaded {
		t.Errorf("invalidate did not evict (err=%v loaded=%v)", err, loaded)
	}
	p.Put(PageKey{Table: "t", Page: 1}, nil)
	p.Put(PageKey{Table: "u", Page: 0}, nil)
	p.InvalidateTable("t")
	if p.Len() != 1 {
		t.Errorf("len after InvalidateTable = %d", p.Len())
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", []Column{{Name: "a", Typ: TypeInt}}); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := NewSchema("t", nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewSchema("t", []Column{{Name: "a", Typ: TypeInt}, {Name: "A", Typ: TypeInt}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema("t", []Column{
		{Name: "a", Typ: TypeInt, PrimaryKey: true},
		{Name: "b", Typ: TypeInt, PrimaryKey: true},
	}); err == nil {
		t.Error("two primary keys accepted")
	}
}

func TestSchemaDDLRoundTrip(t *testing.T) {
	s, err := NewSchema("item", []Column{
		{Name: "id", Typ: TypeInt, PrimaryKey: true, NotNull: true},
		{Name: "title", Typ: TypeText, NotNull: true},
		{Name: "cost", Typ: TypeFloat},
		{Name: "sku", Typ: TypeText, Unique: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ddl := s.DDL()
	stmt, err := Parse(ddl)
	if err != nil {
		t.Fatalf("Parse(%q): %v", ddl, err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Table != "item" || len(ct.Cols) != 4 {
		t.Fatalf("%+v", ct)
	}
	if !ct.Cols[0].PrimaryKey || !ct.Cols[1].NotNull || !ct.Cols[3].Unique {
		t.Errorf("%+v", ct.Cols)
	}
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (id INT PRIMARY KEY, v TEXT)")
	mustExec(t, e, "CREATE TABLE b (id INT PRIMARY KEY, n FLOAT)")
	mustExec(t, e, "CREATE INDEX idx_v ON a (v)")
	for i := 0; i < 200; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO a VALUES (%d, 'v%d')", i, i%10))
		mustExec(t, e, fmt.Sprintf("INSERT INTO b VALUES (%d, %d.5)", i, i))
	}

	var started, done []string
	dumps, err := e.DumpDatabase("app", GranularityTable, DumpObserver{
		TableStart: func(tbl string) { started = append(started, tbl) },
		TableDone:  func(tbl string, _ TableDump) { done = append(done, tbl) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 2 || len(started) != 2 || len(done) != 2 {
		t.Fatalf("dumps=%d started=%v done=%v", len(dumps), started, done)
	}

	e2 := NewEngine(DefaultConfig())
	if err := e2.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	for _, d := range dumps {
		if err := e2.RestoreTable("app", d); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e2.Exec("app", "SELECT COUNT(*) FROM a WHERE v = 'v3'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 20 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	res, err = e2.Exec("app", "SELECT SUM(n) FROM b")
	if err != nil {
		t.Fatal(err)
	}
	want := float64(200*199)/2 + 200*0.5
	if res.Rows[0][0].Float != want {
		t.Errorf("sum = %v, want %v", res.Rows[0][0], want)
	}
}

func TestDumpDatabaseGranularityBlocksWrites(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (id INT PRIMARY KEY)")
	mustExec(t, e, "INSERT INTO a VALUES (1)")

	inDump := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = e.DumpDatabase("app", GranularityDatabase, DumpObserver{
			TableStart: func(string) {
				close(inDump)
				<-release
			},
		})
	}()
	<-inDump
	// A write during the database-granularity dump must block (the dump
	// transaction holds the table read lock).
	wrote := make(chan error, 1)
	go func() {
		_, err := e.Exec("app", "INSERT INTO a VALUES (2)")
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write did not block during database dump (err=%v)", err)
	case <-timeAfter50ms():
	}
	close(release)
	if err := <-wrote; err != nil {
		t.Fatalf("write failed after dump: %v", err)
	}
}

func TestRestoreIntoExistingTableFails(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (id INT PRIMARY KEY)")
	dumps, err := e.DumpDatabase("app", GranularityTable, DumpObserver{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreTable("app", dumps[0]); err == nil {
		t.Error("restore over existing table succeeded")
	}
}

func TestDatabaseByteSizeGrows(t *testing.T) {
	e := newTestDB(t)
	mustExec(t, e, "CREATE TABLE a (id INT PRIMARY KEY, v TEXT)")
	before := e.DatabaseByteSize("app")
	for i := 0; i < 100; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO a VALUES (%d, 'some text payload %d')", i, i))
	}
	after := e.DatabaseByteSize("app")
	if after <= before {
		t.Errorf("byte size did not grow: %d -> %d", before, after)
	}
	mustExec(t, e, "DELETE FROM a WHERE id < 50")
	if shrunk := e.DatabaseByteSize("app"); shrunk >= after {
		t.Errorf("byte size did not shrink after delete: %d -> %d", after, shrunk)
	}
}

func timeAfter50ms() <-chan time.Time { return time.After(50 * time.Millisecond) }
