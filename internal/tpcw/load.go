package tpcw

import (
	"fmt"
	"math/rand"
	"strings"
)

// Scale controls the size of a generated TPC-W database. The paper's
// individual application databases are 200–1000 MB; at simulator scale the
// same shape is preserved with proportionally fewer rows (see DESIGN.md on
// proportional scaling).
type Scale struct {
	Items     int
	Customers int
	Orders    int
	// LinesPerOrder is the average order size.
	LinesPerOrder int
	Seed          int64
}

// SmallScale is a compact database for unit tests and quick experiments.
func SmallScale(seed int64) Scale {
	return Scale{Items: 100, Customers: 50, Orders: 60, LinesPerOrder: 3, Seed: seed}
}

// ScaleForMB approximates a database of the given nominal size in the
// paper's terms, preserving TPC-W's item:customer:order ratios.
func ScaleForMB(mb float64, seed int64) Scale {
	f := mb / 200.0 // 200 MB ~ the base scale below
	if f < 0.1 {
		f = 0.1
	}
	return Scale{
		Items:         int(200 * f),
		Customers:     int(180 * f),
		Orders:        int(160 * f),
		LinesPerOrder: 3,
		Seed:          seed,
	}
}

// Load creates the TPC-W schema and populates it at the given scale.
func Load(db DB, sc Scale) error {
	if sc.Items <= 0 || sc.Customers <= 0 {
		return fmt.Errorf("tpcw: invalid scale %+v", sc)
	}
	if sc.LinesPerOrder <= 0 {
		sc.LinesPerOrder = 3
	}
	if err := execAll(db, DDL); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(sc.Seed))

	// Countries (fixed small table).
	countries := []string{"United States", "United Kingdom", "Canada", "Germany", "France", "Japan", "Netherlands", "Switzerland", "Australia", "India"}
	var rows []string
	for i, name := range countries {
		rows = append(rows, fmt.Sprintf("(%d, '%s')", i+1, name))
	}
	if err := batchInsert(db, "INSERT INTO country VALUES ", rows, 50); err != nil {
		return err
	}

	// Addresses: one per customer.
	rows = rows[:0]
	for i := 1; i <= sc.Customers; i++ {
		rows = append(rows, fmt.Sprintf("(%d, '%d %s St', '%s', '%05d', %d)",
			i, 1+rng.Intn(999), randWord(rng, 6), randWord(rng, 8), rng.Intn(100000), 1+rng.Intn(len(countries))))
	}
	if err := batchInsert(db, "INSERT INTO address VALUES ", rows, 50); err != nil {
		return err
	}

	// Customers.
	rows = rows[:0]
	for i := 1; i <= sc.Customers; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'user%d', '%s', '%s', %d, %0.2f, %0.2f, 0.0)",
			i, i, randWord(rng, 7), randWord(rng, 9), i, float64(rng.Intn(50))/100, float64(rng.Intn(100000))/100))
	}
	if err := batchInsert(db, "INSERT INTO customer VALUES ", rows, 50); err != nil {
		return err
	}

	// Authors: roughly a quarter of items.
	numAuthors := sc.Items/4 + 1
	rows = rows[:0]
	for i := 1; i <= numAuthors; i++ {
		rows = append(rows, fmt.Sprintf("(%d, '%s', '%s')", i, randWord(rng, 6), randWord(rng, 10)))
	}
	if err := batchInsert(db, "INSERT INTO author VALUES ", rows, 50); err != nil {
		return err
	}

	// Items.
	rows = rows[:0]
	for i := 1; i <= sc.Items; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'The %s %s', %d, '%s', %0.2f, %d, 0)",
			i, randWord(rng, 8), randWord(rng, 8), 1+rng.Intn(numAuthors),
			Subjects[rng.Intn(len(Subjects))], 1+float64(rng.Intn(9900))/100, 10+rng.Intn(90)))
	}
	if err := batchInsert(db, "INSERT INTO item VALUES ", rows, 50); err != nil {
		return err
	}

	// Orders with lines and credit-card transactions.
	rows = rows[:0]
	var lineRows, ccRows []string
	olID := 0
	for o := 1; o <= sc.Orders; o++ {
		total := 0.0
		lines := 1 + rng.Intn(sc.LinesPerOrder*2-1)
		for l := 0; l < lines; l++ {
			olID++
			item := 1 + rng.Intn(sc.Items)
			qty := 1 + rng.Intn(5)
			total += float64(qty) * 10
			lineRows = append(lineRows, fmt.Sprintf("(%d, %d, %d, %d, 0.0)", olID, o, item, qty))
		}
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %0.2f, 'SHIPPED')", o, 1+rng.Intn(sc.Customers), 1000000+o, total))
		ccRows = append(ccRows, fmt.Sprintf("(%d, 'VISA', %0.2f, %d)", o, total, 1000000+o))
	}
	if err := batchInsert(db, "INSERT INTO orders VALUES ", rows, 50); err != nil {
		return err
	}
	if err := batchInsert(db, "INSERT INTO order_line VALUES ", lineRows, 50); err != nil {
		return err
	}
	if err := batchInsert(db, "INSERT INTO cc_xacts VALUES ", ccRows, 50); err != nil {
		return err
	}

	return execAll(db, Indexes)
}

// batchInsert issues multi-row INSERTs of at most batch rows each, one
// transaction per statement.
func batchInsert(db DB, prefix string, rows []string, batch int) error {
	for len(rows) > 0 {
		n := batch
		if n > len(rows) {
			n = len(rows)
		}
		stmt := prefix + strings.Join(rows[:n], ", ")
		rows = rows[n:]
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		if _, err := tx.Exec(stmt); err != nil {
			_ = tx.Rollback()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

var letters = []byte("abcdefghijklmnopqrstuvwxyz")

func randWord(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// CountRows returns the row count of a table, for sanity checks.
func CountRows(db DB, table string) (int64, error) {
	tx, err := db.Begin()
	if err != nil {
		return 0, err
	}
	defer func() { _ = tx.Rollback() }()
	res, err := tx.Exec("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return res.Rows[0][0].Int, nil
}
