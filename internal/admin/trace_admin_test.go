package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sdp/internal/obs"
)

// seedTrace records a tiny two-span tree and returns its trace ID.
func seedTrace(reg *obs.Registry) uint64 {
	tid := obs.NewTraceID()
	root := obs.NewTraceID()
	reg.Spans().Record(obs.Span{TraceID: tid, SpanID: root, Scope: "client", Name: "exec",
		DB: "shop", Start: time.Unix(1000, 0), Duration: time.Millisecond})
	reg.Spans().Record(obs.Span{TraceID: tid, SpanID: obs.NewTraceID(), Parent: root,
		Scope: "wire", Name: "exec", DB: "shop", Start: time.Unix(1000, 0), Duration: time.Millisecond / 2})
	return tid
}

func TestTracezByTraceID(t *testing.T) {
	reg := obs.NewRegistry()
	tid := seedTrace(reg)
	seedTrace(reg) // a second, unrelated trace must not leak into the filter
	h := Handler(reg, nil)

	var body struct {
		TraceID string     `json:"trace_id"`
		Count   int        `json:"count"`
		Spans   []obs.Span `json:"spans"`
	}
	rec := get(t, h, fmt.Sprintf("/tracez?trace=%s", obs.TraceIDString(tid)))
	if rec.Code != http.StatusOK {
		t.Fatalf("/tracez?trace= status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 2 || body.TraceID != obs.TraceIDString(tid) {
		t.Errorf("trace body = %+v, want 2 spans of %s", body, obs.TraceIDString(tid))
	}
	for _, s := range body.Spans {
		if s.TraceID != tid {
			t.Errorf("span from other trace leaked: %+v", s)
		}
	}

	// format=text renders the indented tree with the child under the root.
	rec = get(t, h, fmt.Sprintf("/tracez?trace=%s&format=text", obs.TraceIDString(tid)))
	txt := rec.Body.String()
	if !strings.Contains(txt, "client:exec") || !strings.Contains(txt, "wire:exec") {
		t.Errorf("text tree missing spans:\n%s", txt)
	}

	// An unknown trace serves an empty array, not null.
	rec = get(t, h, "/tracez?trace=00000000000000ff")
	if !strings.Contains(rec.Body.String(), `"spans": []`) &&
		!strings.Contains(rec.Body.String(), `"spans":[]`) {
		t.Errorf("unknown trace should serve an empty spans array: %s", rec.Body.String())
	}

	// A malformed trace ID is a 400, not a filter miss.
	rec = get(t, h, "/tracez?trace=nothex")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("/tracez?trace=nothex = %d, want 400", rec.Code)
	}
}

func TestSlowz(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SlowLog().Record(obs.SlowEntry{
		Time: time.Unix(1000, 0), DB: "shop", SQL: "SELECT * FROM slow",
		Duration: 40 * time.Millisecond, TraceID: 0xabc, Mode: "compiled",
	})
	h := Handler(reg, nil)

	var body struct {
		Count   int             `json:"count"`
		Entries []obs.SlowEntry `json:"entries"`
	}
	rec := get(t, h, "/slowz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/slowz status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 1 || body.Entries[0].SQL != "SELECT * FROM slow" {
		t.Errorf("/slowz body = %+v", body)
	}

	rec = get(t, h, "/slowz?format=text")
	if !strings.Contains(rec.Body.String(), "SELECT * FROM slow") {
		t.Errorf("/slowz text missing statement:\n%s", rec.Body.String())
	}
}

// TestMetricsOpenMetrics exercises the Accept-header negotiation: the
// OpenMetrics exposition carries histogram exemplars and the EOF marker,
// while the default Prometheus text format stays exemplar-free.
func TestMetricsOpenMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	hist := reg.Histogram("demo_seconds", "demo latency", nil)
	hist.ObserveWithExemplar(0.001, 0xdeadbeef)
	h := Handler(reg, nil)

	getAccept := func(accept string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		h.ServeHTTP(rec, req)
		return rec
	}

	rec := getAccept("application/openmetrics-text")
	if ct := rec.Header().Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.OpenMetricsContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "# EOF") {
		t.Errorf("OpenMetrics exposition missing # EOF:\n%s", body)
	}
	if !strings.Contains(body, "00000000deadbeef") {
		t.Errorf("OpenMetrics exposition missing the exemplar trace ID:\n%s", body)
	}

	rec = getAccept("")
	if ct := rec.Header().Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("default Content-Type = %q, want Prometheus text", ct)
	}
	if strings.Contains(rec.Body.String(), "deadbeef") {
		t.Errorf("Prometheus text format must not carry exemplars")
	}
}
