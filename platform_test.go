package sdp

import (
	"testing"
	"time"
)

// TestPlatformDisasterRecovery exercises the full public-API DR flow: a
// database with a cross-colo replica, asynchronous shipping, colo failure,
// DR promotion, and continued service.
func TestPlatformDisasterRecovery(t *testing.T) {
	p := New(Config{ClusterSize: 2})
	p.AddColo("west", "us-west", 2)
	p.AddColo("east", "us-east", 2)

	if err := p.CreateDatabase("app", SLA{SizeMB: 250, MinTPS: 1}, "west", "east"); err != nil {
		t.Fatal(err)
	}
	conn := p.Open("app")
	if _, err := conn.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := conn.Exec("INSERT INTO t VALUES (?, ?)", Int(int64(i)), Int(int64(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	p.System().Flush("app")

	affected, err := p.System().FailColo("west")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "app" {
		t.Fatalf("affected = %v", affected)
	}
	if _, err := conn.Exec("SELECT 1"); err == nil {
		t.Fatal("query succeeded with primary colo down and no promotion")
	}
	if err := p.System().PromoteDR("app", "east"); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query("SELECT COUNT(*), SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 20 {
		t.Errorf("count after failover = %v", res.Rows[0][0])
	}
	// Writes continue at the new primary.
	if _, err := conn.Exec("INSERT INTO t VALUES (100, 0)"); err != nil {
		t.Fatal(err)
	}
}

// TestPlatformUnifiedMetrics checks the tentpole property: one registry
// snapshot covers every layer — system replicator, colo provisioning,
// cluster 2PC, and per-engine statistics.
func TestPlatformUnifiedMetrics(t *testing.T) {
	p := New(Config{ClusterSize: 2})
	p.AddColo("west", "us-west", 2)
	p.AddColo("east", "us-east", 2)
	if err := p.CreateDatabase("app", SLA{SizeMB: 250, MinTPS: 1}, "west", "east"); err != nil {
		t.Fatal(err)
	}
	conn := p.Open("app")
	if _, err := conn.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := conn.Exec("INSERT INTO t VALUES (?, ?)", Int(int64(i)), Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Query("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatal(err)
	}
	p.System().Flush("app")

	s := p.Metrics().Snapshot()
	for _, name := range []string{
		"core_txn_committed_total",
		"core_2pc_prepare_total",
		"core_sla_probe_total",
		"system_repl_batches_total",
	} {
		if s.Counter(name) == 0 {
			t.Errorf("%s is zero in the platform snapshot", name)
		}
	}
	if got := s.Counter("colo_machines_provisioned_total", "colo", "west"); got == 0 {
		t.Error("west colo reported no provisioned machines")
	}
	if h, ok := s.Histogram("core_2pc_prepare_seconds"); !ok || h.Count == 0 {
		t.Error("no 2PC prepare latencies in the platform snapshot")
	}
	if h, ok := s.Histogram("system_repl_apply_seconds"); !ok || h.Count == 0 {
		t.Error("no replication apply latencies in the platform snapshot")
	}
	// Engine stats are bridged per cluster; at least one cluster must show
	// plan-cache traffic.
	found := false
	for _, pnt := range s.Metrics {
		if pnt.Name == "sqldb_engine_stat" && pnt.Labels["stat"] == "plan_cache_hits" && pnt.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no bridged engine plan-cache stats in the platform snapshot")
	}
}

// TestPlatformConfigKnobs verifies the facade threads its configuration
// down to the machines.
func TestPlatformConfigKnobs(t *testing.T) {
	p := New(Config{
		ReadOption:      ReadOption3,
		AckMode:         Aggressive,
		Replicas:        2,
		CopyGranularity: CopyByDatabase,
		ClusterSize:     2,
		PoolPages:       7,
		DiskLatency:     time.Microsecond,
		LockTimeout:     123 * time.Millisecond,
	})
	p.AddColo("west", "us-west", 2)
	if err := p.CreateDatabase("app", SLA{SizeMB: 100, MinTPS: 1}, "west"); err != nil {
		t.Fatal(err)
	}
	co, err := p.System().Colo("west")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := co.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	opts := cl.Options()
	if opts.ReadOption != ReadOption3 || opts.AckMode != Aggressive {
		t.Errorf("cluster options = %+v", opts)
	}
	if opts.CopyGranularity != CopyByDatabase {
		t.Errorf("granularity = %v", opts.CopyGranularity)
	}
	eng := opts.EngineConfig
	if eng.PoolPages != 7 || eng.MissLatency != time.Microsecond || eng.LockTimeout != 123*time.Millisecond {
		t.Errorf("engine config = %+v", eng)
	}
	// The cluster actually works under these knobs.
	conn := p.Open("app")
	if _, err := conn.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 1 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}
