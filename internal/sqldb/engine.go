package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/obs"
	"sdp/internal/wal"
)

// Config holds the tunables of one engine instance. The defaults model a
// small commodity DBMS installation as in the paper's experimental setup
// (MySQL 5 with a fixed buffer pool).
type Config struct {
	// PoolPages is the buffer-pool capacity in pages. Zero or negative
	// disables caching (every page access pays decode cost).
	PoolPages int

	// MissLatency is an optional simulated disk latency added to every
	// buffer-pool miss.
	MissLatency time.Duration

	// Workers bounds how many statements the engine executes at once,
	// modelling the machine's serving capacity (CPU cores / DBMS worker
	// threads). Each statement occupies a worker slot for StmtServiceTime
	// before touching data, so a saturated machine queues statements — the
	// physics that makes adding a replica add serving capacity. Zero
	// disables the model (unbounded concurrency, no service delay).
	Workers int

	// StmtServiceTime is the simulated per-statement service time charged
	// while a worker slot is held. Only meaningful with Workers > 0.
	StmtServiceTime time.Duration

	// LockTimeout bounds lock waits; zero means wait forever (deadlocks are
	// still detected immediately via the wait-for graph).
	LockTimeout time.Duration

	// ReleaseReadLocksAtPrepare enables the common 2PC optimisation of
	// releasing read locks after the PREPARE action and before COMMIT.
	// Most production systems (including MySQL) implement it; the paper
	// shows it breaks global serializability under read-routing Options 2
	// and 3 with an aggressive cluster controller.
	ReleaseReadLocksAtPrepare bool

	// PlanCacheSize is the number of SQL-text plan-cache entries kept per
	// engine. Zero selects the default (512); a negative value disables the
	// cache (every Exec re-parses and re-plans).
	PlanCacheSize int

	// Spans, when set, receives distributed-tracing spans for sampled
	// transactions ("sql" statement spans and "wal" flush spans). Nil
	// disables engine-side span recording; unsampled transactions never
	// touch it either way.
	Spans *obs.SpanRing
}

// DefaultConfig returns the configuration used throughout the evaluation:
// a 256-page pool, no artificial disk latency, a 2-second lock timeout, and
// the prepare-time read-lock release on (as in real systems).
func DefaultConfig() Config {
	return Config{
		PoolPages:                 256,
		LockTimeout:               2 * time.Second,
		ReleaseReadLocksAtPrepare: true,
	}
}

// OpEvent describes one data access, emitted to the history recorder. Seq is
// a per-engine monotonically increasing sequence number assigned at access
// time (after lock acquisition), so for two conflicting events the Seq order
// is the true conflict order on this engine.
type OpEvent struct {
	Seq       uint64
	Txn       uint64 // engine-local transaction ID
	GlobalTxn uint64 // caller-assigned global transaction ID (0 if none)
	Write     bool
	Object    string // "db/table:key" for a row, "db/table" for a whole table
}

// Recorder receives operation events for offline serializability checking.
// Implementations must be safe for concurrent use.
type Recorder interface {
	RecordOp(OpEvent)
}

// Stats are cumulative engine counters, plus LocksHeld, the one
// instantaneous value: the number of lock holds granted right now. A
// quiescent engine reports LocksHeld zero; the 2PC failure tests assert it
// to prove coordinator-timeout paths leak no locks.
type Stats struct {
	Commits   uint64
	Aborts    uint64
	Deadlocks uint64
	LocksHeld uint64

	// Compiled-execution counters: plans lowered to closures
	// (plan_compile_total), statements served by the compiled path
	// (compiled_exec_total), and all statements executed (stmt_exec_total) —
	// the denominator for the compiled fraction.
	PlanCompiles  uint64
	CompiledExecs uint64
	StmtExecs     uint64

	// Optimistic read-path counters: validated lock-free reads
	// (readpath_optimistic_hits), epoch-validation retries, falls back to the
	// locking path, and read-only transactions aborted on validation failure.
	OptimisticHits      uint64
	OptimisticRetries   uint64
	OptimisticFallbacks uint64
	OptimisticConflicts uint64

	Pool      PoolStats
	PlanCache PlanCacheStats
}

// Engine is a single-node DBMS instance: the unit the cluster controller
// replicates and fails over. One engine hosts any number of named databases
// that share its buffer pool — the resource contention at the heart of the
// paper's multi-tenancy problem.
type Engine struct {
	cfg   Config
	pool  *BufferPool
	locks *lockManager
	plans *planCache

	// workers is the capacity-model semaphore (nil when Config.Workers is
	// zero). A statement holds one slot for StmtServiceTime before it
	// executes; the slot is released before any lock is acquired, so the
	// queue models CPU saturation and can never deadlock against the lock
	// manager.
	workers chan struct{}

	mu     sync.RWMutex // guards catalog
	dbs    map[string]map[string]*Table
	closed bool

	nextTxn atomic.Uint64
	seq     atomic.Uint64

	// wal, when attached, receives logical redo records; recovering
	// suppresses logging (and counter updates) while the engine replays that
	// same log. ckptMu serialises checkpoints; prepared holds in-doubt
	// transactions re-instated by Recover, keyed by global transaction ID.
	wal        *wal.Log
	walMetrics *wal.Metrics
	recovering atomic.Bool
	ckptMu     sync.Mutex
	prepared   map[uint64]*Txn

	recorder atomic.Pointer[recorderBox]

	// commitAbort packs the commit (A) and abort (B) counters into one
	// word so Stats() cannot observe one without the other (see obs.Pair).
	commitAbort obs.Pair

	// Compiled-execution and optimistic-read counters (see Stats).
	statPlanCompiles  atomic.Uint64
	statCompiledExecs atomic.Uint64
	statStmtExecs     atomic.Uint64
	statOptHits       atomic.Uint64
	statOptRetries    atomic.Uint64
	statOptFallbacks  atomic.Uint64
	statOptConflicts  atomic.Uint64

	// roPool recycles read-only transactions that finished without touching
	// the lock manager or the WAL, keeping the optimistic point-read loop
	// allocation-free (the recycled Txn retains its grown scratch buffers).
	roPool sync.Pool
}

type recorderBox struct{ r Recorder }

// NewEngine creates an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg:   cfg,
		pool:  NewBufferPool(cfg.PoolPages, cfg.MissLatency),
		locks: newLockManager(cfg.LockTimeout),
		plans: newPlanCache(cfg.PlanCacheSize),
		dbs:   make(map[string]map[string]*Table),
	}
	if cfg.Workers > 0 {
		e.workers = make(chan struct{}, cfg.Workers)
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Pool exposes the engine's buffer pool (for statistics and experiments).
func (e *Engine) Pool() *BufferPool { return e.pool }

// SetRecorder installs (or clears, with nil) the history recorder.
func (e *Engine) SetRecorder(r Recorder) {
	e.recorder.Store(&recorderBox{r: r})
}

// record emits an operation event if a recorder is installed. Log replay is
// never recorded: it re-applies operations that were recorded when they
// first executed, and re-recording them would give the replayed
// transactions a second, later position in the site's conflict order —
// manufacturing serialization-graph edges that contradict the real
// execution.
func (e *Engine) record(t *Txn, write bool, object string) {
	if e.recovering.Load() {
		return
	}
	box := e.recorder.Load()
	if box == nil || box.r == nil {
		return
	}
	box.r.RecordOp(OpEvent{
		Seq:       e.seq.Add(1),
		Txn:       t.id,
		GlobalTxn: t.GlobalID,
		Write:     write,
		Object:    object,
	})
}

// Close marks the engine closed; subsequent operations fail with
// ErrEngineClosed. It models a machine failure (power/disk) in the paper.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}

// Closed reports whether Close was called.
func (e *Engine) Closed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// Stats returns a snapshot of the engine counters. Counter pairs that
// readers combine (commits/aborts, pool hits/misses, plan-cache
// hits/misses) are each packed into a single atomic word, so a concurrent
// reader never observes a torn pair — e.g. a buffer-pool hit whose access
// is missing from the miss side's total.
func (e *Engine) Stats() Stats {
	commits, aborts := e.commitAbort.Load()
	return Stats{
		Commits:             commits,
		Aborts:              aborts,
		Deadlocks:           e.locks.deadlockCount(),
		LocksHeld:           e.locks.heldCount(),
		PlanCompiles:        e.statPlanCompiles.Load(),
		CompiledExecs:       e.statCompiledExecs.Load(),
		StmtExecs:           e.statStmtExecs.Load(),
		OptimisticHits:      e.statOptHits.Load(),
		OptimisticRetries:   e.statOptRetries.Load(),
		OptimisticFallbacks: e.statOptFallbacks.Load(),
		OptimisticConflicts: e.statOptConflicts.Load(),
		Pool:                e.pool.Stats(),
		PlanCache:           e.plans.stats(),
	}
}

func (e *Engine) finishTxn(t *Txn, committed bool) {
	if e.recovering.Load() {
		return // replayed transactions were already counted before the crash
	}
	if committed {
		e.commitAbort.IncA()
	} else {
		e.commitAbort.IncB()
	}
}

// CreateDatabase registers a new empty database namespace.
func (e *Engine) CreateDatabase(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	if _, ok := e.dbs[name]; ok {
		return fmt.Errorf("sqldb: database %s already exists", name)
	}
	e.dbs[name] = make(map[string]*Table)
	// A name can be reused after a drop; retire plans derived against any
	// earlier incarnation of this namespace.
	e.plans.bumpGen()
	return e.walNamespace(wal.RecCreateDB, name)
}

// DropDatabase removes a database and all its tables.
func (e *Engine) DropDatabase(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	tables, ok := e.dbs[name]
	if !ok {
		return fmt.Errorf("sqldb: database %s does not exist", name)
	}
	for _, t := range tables {
		e.pool.InvalidateTable(t.poolName)
	}
	delete(e.dbs, name)
	e.plans.invalidateDB(name)
	return e.walNamespace(wal.RecDropDB, name)
}

// HasDatabase reports whether the named database exists.
func (e *Engine) HasDatabase(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.dbs[name]
	return ok
}

// Databases lists database names in sorted order.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.dbs))
	for n := range e.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tables lists the table names of a database in sorted order.
func (e *Engine) Tables(db string) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	tables := e.dbs[db]
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table returns the named table of a database.
func (e *Engine) Table(db, name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	tables, ok := e.dbs[db]
	if !ok {
		return nil, fmt.Errorf("%w: database %s", ErrNoTable, db)
	}
	t, ok := tables[lower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoTable, db, name)
	}
	return t, nil
}

// DatabaseByteSize returns the approximate total encoded size of a database.
func (e *Engine) DatabaseByteSize(db string) int64 {
	e.mu.RLock()
	tables := make([]*Table, 0, len(e.dbs[db]))
	for _, t := range e.dbs[db] {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	var total int64
	for _, t := range tables {
		total += t.ByteSize()
	}
	return total
}

// Begin starts a transaction against the named database.
func (e *Engine) Begin(db string) (*Txn, error) {
	return e.BeginWithID(db, 0)
}

// BeginWithID starts a transaction carrying a caller-assigned global
// transaction ID (used by the cluster controller to correlate the branches
// of a distributed transaction across replicas).
func (e *Engine) BeginWithID(db string, globalID uint64) (*Txn, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	if _, ok := e.dbs[db]; !ok {
		return nil, fmt.Errorf("%w: database %s", ErrNoTable, db)
	}
	t := &Txn{
		GlobalID: globalID,
		id:       e.nextTxn.Add(1),
		engine:   e,
	}
	t.locks = t.locksBuf[:0]
	t.optReads = t.optBuf[:0]
	t.writeTables = t.writeBuf[:0]
	t.rowsScratch = t.rowsBuf[:0]
	t.db = db
	return t, nil
}

// BeginReadOnly starts a transaction that may only read. Compiled
// single-table SELECTs in a read-only transaction use the optimistic
// lock-free fast path, validated against per-table mutation epochs; when
// validation cannot be satisfied the transaction aborts with
// ErrOptimisticConflict, which — like a deadlock — is retryable by the
// application.
// A read-only Txn handle must not be used after Commit or Rollback returns:
// the engine may recycle it for a later BeginReadOnly caller.
func (e *Engine) BeginReadOnly(db string) (*Txn, error) {
	if c, ok := e.roPool.Get().(*Txn); ok {
		e.mu.RLock()
		defer e.mu.RUnlock()
		if e.closed {
			return nil, ErrEngineClosed
		}
		if _, ok := e.dbs[db]; !ok {
			return nil, fmt.Errorf("%w: database %s", ErrNoTable, db)
		}
		c.GlobalID = 0
		c.id = e.nextTxn.Add(1)
		c.db = db
		c.state = TxnActive
		c.walBegun = false
		c.locks = c.locksBuf[:0]
		c.optReads = c.optBuf[:0]
		c.writeTables = c.writeBuf[:0]
		c.rowsScratch = c.rowsBuf[:0]
		c.readOnly = true
		c.optHandled = false
		c.undo = nil
		c.trace = obs.SpanContext{}
		c.execMode = ""
		return c, nil
	}
	t, err := e.BeginWithID(db, 0)
	if err != nil {
		return nil, err
	}
	t.readOnly = true
	return t, nil
}

// Exec runs a single statement in its own transaction (autocommit).
func (e *Engine) Exec(db, sql string, params ...Value) (*Result, error) {
	t, err := e.Begin(db)
	if err != nil {
		return nil, err
	}
	res, err := t.Exec(sql, params...)
	if err != nil {
		_ = t.Rollback()
		return nil, err
	}
	if err := t.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// cachedStatement returns the parsed statement and access-path plan for
// (db, sql), consulting the engine's plan cache. A hit whose plan generation
// is current skips both the parser and the planner; a hit whose plan was made
// stale by DDL keeps the parse (the AST cannot change) and re-derives just
// the plan.
func (e *Engine) cachedStatement(db, sql string) (Statement, *stmtPlan, error) {
	pc := e.plans
	if pc.disabled() {
		stmt, err := Parse(sql)
		if err != nil {
			return nil, nil, err
		}
		plan, _ := planStatement(e, db, stmt)
		return stmt, plan, nil
	}
	if stmt, plan, ok := pc.get(db, sql); ok {
		if plan != nil && plan.gen == pc.gen.Load() {
			pc.hitMiss.IncA()
			return stmt, plan, nil
		}
		pc.hitMiss.IncB()
		plan, cacheable := planStatement(e, db, stmt)
		if cacheable {
			pc.put(db, sql, stmt, plan)
		}
		return stmt, plan, nil
	}
	pc.hitMiss.IncB()
	stmt, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, cacheable := planStatement(e, db, stmt)
	if cacheable {
		pc.put(db, sql, stmt, plan)
	}
	return stmt, plan, nil
}

// plannedStmt returns the memoised access-path plan for a pre-parsed
// statement, keyed by AST identity. This is the fast path for the cluster
// controller, which parses a statement once and executes the same AST against
// every replica engine.
func (e *Engine) plannedStmt(db string, stmt Statement) *stmtPlan {
	pc := e.plans
	if pc.disabled() {
		plan, _ := planStatement(e, db, stmt)
		return plan
	}
	if plan, ok := pc.memoLoad(db, stmt); ok {
		pc.hitMiss.IncA()
		return plan
	}
	pc.hitMiss.IncB()
	plan, cacheable := planStatement(e, db, stmt)
	if cacheable && plan != nil {
		pc.memoStore(db, stmt, plan)
	}
	return plan
}

// qualified returns the lock/pool namespace name of a table.
func qualified(db, table string) string { return db + "/" + lower(table) }

func lower(s string) string { return strings.ToLower(s) }
