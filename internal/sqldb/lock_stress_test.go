package sqldb

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockManagerStressInvariants hammers the lock manager with random
// acquire/release sequences from many goroutines and checks the two core
// invariants directly:
//
//   - mutual exclusion: while a goroutine holds X on a key, no other
//     goroutine holds any lock on it (checked with a shadow counter);
//   - liveness: every acquire eventually returns (granted, deadlock, or
//     timeout) — no lost wakeups.
func TestLockManagerStressInvariants(t *testing.T) {
	e := NewEngine(Config{LockTimeout: 200 * time.Millisecond})
	if err := e.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	lm := e.locks

	const keys = 6
	const workers = 8
	const iters = 300

	// shadow[k] tracks holders: -1000 per X holder, +1 per S holder.
	var shadow [keys]atomic.Int64
	var violations atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				txn, err := e.Begin("d")
				if err != nil {
					t.Error(err)
					return
				}
				n := 1 + rng.Intn(3)
				type held struct {
					key  int
					mode LockMode
				}
				var locks []held
				aborted := false
				for j := 0; j < n && !aborted; j++ {
					k := rng.Intn(keys)
					mode := LockS
					if rng.Intn(2) == 0 {
						mode = LockX
					}
					err := lm.acquire(txn, lockID{Table: "d/t", Key: string(rune('a' + k))}, mode)
					switch {
					case err == nil:
						// Check and update the shadow state. Upgrades and
						// re-acquisitions make exact accounting hard, so
						// only fresh keys count.
						fresh := true
						for _, h := range locks {
							if h.key == k {
								fresh = false
							}
						}
						if fresh {
							if mode == LockX {
								if shadow[k].Load() != 0 {
									violations.Add(1)
								}
								shadow[k].Add(-1000)
							} else {
								if shadow[k].Load() < 0 {
									violations.Add(1)
								}
								shadow[k].Add(1)
							}
							locks = append(locks, held{key: k, mode: mode})
						}
					case errors.Is(err, ErrDeadlock), errors.Is(err, ErrLockTimeout), errors.Is(err, ErrTxnAborted):
						aborted = true
					default:
						t.Errorf("unexpected error: %v", err)
						aborted = true
					}
				}
				// Undo the shadow state before releasing the real locks so
				// a waiter granted immediately after release never sees a
				// stale shadow entry.
				for _, h := range locks {
					if h.mode == LockX {
						shadow[h.key].Add(1000)
					} else {
						shadow[h.key].Add(-1)
					}
				}
				lm.releaseAll(txn)
			}
		}(int64(w) * 7919)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test hung: lost wakeup in the lock manager")
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
	// All locks released: the lock table must be empty.
	lm.mu.Lock()
	remaining := len(lm.locks)
	lm.mu.Unlock()
	if remaining != 0 {
		t.Errorf("%d lock entries leaked", remaining)
	}
}
