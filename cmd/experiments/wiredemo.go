package main

import (
	"fmt"
	"os"
	"os/signal"
	"time"

	"sdp"
)

// runWireDemo boots a platform with one demo database and serves the wire
// protocol on addr until the process is interrupted — the server half of
// `make net-demo`. The admin plane rides along on an ephemeral port so
// traced client calls (sdpsh -trace) can be looked up in /tracez and slow
// statements show up in /slowz.
func runWireDemo(addr string) error {
	p := sdp.New(sdp.Config{
		ClusterSize: 4,
		Listen:      addr,
		SlowQuery:   25 * time.Millisecond,
	})
	p.AddColo("local", "local", 4)
	if err := p.CreateDatabase("app", sdp.SLA{SizeMB: 100, MinTPS: 1, MaxRejectFraction: 1}, "local"); err != nil {
		return err
	}
	p.SetToken("app", "demo")
	conn := p.Open("app")
	seed := []string{
		"CREATE TABLE t (id INT PRIMARY KEY, v TEXT)",
		"INSERT INTO t VALUES (1, 'hello')",
		"INSERT INTO t VALUES (2, 'wire')",
	}
	for _, stmt := range seed {
		if _, err := conn.Exec(stmt); err != nil {
			return err
		}
	}
	srv, err := p.ServeWire()
	if err != nil {
		return err
	}
	defer srv.Close()
	adm, err := p.ServeAdmin("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer adm.Close()
	fmt.Printf("wire server on %s, database \"app\" (token \"demo\") seeded with table t\n", srv.Addr())
	fmt.Printf("admin plane on http://%s (/metrics /tracez /slowz /slaz)\n", adm.Addr())
	fmt.Printf("connect with:  go run ./cmd/sdpsh -connect %s -db app -token demo -trace\n", srv.Addr())
	fmt.Println("^C to stop (graceful drain)")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\ndraining...")
	return nil
}
