package wire

import (
	"time"

	"sdp/internal/obs"
)

// serverMetrics is the wire_* family the server reports into the platform
// registry (see OBSERVABILITY.md, "Wire protocol").
type serverMetrics struct {
	connsTotal   *obs.Counter
	connsActive  *obs.Gauge
	msgs         *obs.CounterVec
	errs         *obs.CounterVec
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	prepared     *obs.Counter
	stmtsActive  *obs.Gauge
	execSeconds  *obs.Histogram
	drainedConns *obs.Counter
}

// execBuckets spans 100 ns .. ~100 ms: prepared point reads sit at the
// bottom, cross-machine 2PC commits near the top.
var execBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		connsTotal:   reg.Counter("wire_connections_total", "client connections accepted by the wire server"),
		connsActive:  reg.Gauge("wire_connections_active", "currently open wire connections"),
		msgs:         reg.CounterVec("wire_msgs_total", "frames processed by the wire server, by message type", "type"),
		errs:         reg.CounterVec("wire_errors_total", "MsgError frames sent, by error code class", "code"),
		bytesRead:    reg.Counter("wire_bytes_read_total", "payload bytes read from wire clients (frames included)"),
		bytesWritten: reg.Counter("wire_bytes_written_total", "payload bytes written to wire clients (frames included)"),
		prepared:     reg.Counter("wire_prepared_total", "MsgPrepare statements parsed and registered"),
		stmtsActive:  reg.Gauge("wire_stmts_active", "prepared statements currently registered across sessions"),
		execSeconds:  reg.Histogram("wire_exec_seconds", "server-side latency of MsgQuery/MsgExec execution", execBuckets),
		drainedConns: reg.Counter("wire_drained_total", "connections closed by graceful drain"),
	}
}

// observeExec records one statement execution's server-side latency. A
// non-zero traceID additionally pins the landing bucket's exemplar to the
// trace, so the wire_exec_seconds histogram can point at a concrete traced
// request (rendered by the OpenMetrics exposition).
func (m *serverMetrics) observeExec(start time.Time, traceID uint64) {
	m.execSeconds.ObserveWithExemplar(time.Since(start).Seconds(), traceID)
}

// msgName renders a message-type byte as its metric label.
func msgName(typ byte) string {
	switch typ {
	case MsgHello:
		return "hello"
	case MsgQuery:
		return "query"
	case MsgPrepare:
		return "prepare"
	case MsgExec:
		return "exec"
	case MsgBegin:
		return "begin"
	case MsgCommit:
		return "commit"
	case MsgRollback:
		return "rollback"
	case MsgCloseStmt:
		return "close_stmt"
	case MsgPing:
		return "ping"
	case MsgQuit:
		return "quit"
	default:
		return "unknown"
	}
}

// codeName renders an error code as its metric label.
func codeName(code uint16) string {
	switch code {
	case ErrCodeProtocol:
		return "protocol"
	case ErrCodeAuth:
		return "auth"
	case ErrCodeParse:
		return "parse"
	case ErrCodeDatabase:
		return "database"
	case ErrCodeTxnState:
		return "txn_state"
	case ErrCodeStmt:
		return "stmt"
	case ErrCodeExec:
		return "exec"
	case ErrCodeRejected:
		return "rejected"
	case ErrCodeDeadlock:
		return "deadlock"
	case ErrCodeLockTimeout:
		return "lock_timeout"
	case ErrCodeOptimisticConflict:
		return "optimistic_conflict"
	case ErrCodeStaleRoute:
		return "stale_route"
	case ErrCodeMachineFailed:
		return "machine_failed"
	case ErrCodeUnavailable:
		return "unavailable"
	case ErrCodeShutdown:
		return "shutdown"
	case ErrCodeNotLeader:
		return "not_leader"
	default:
		return "unknown"
	}
}
