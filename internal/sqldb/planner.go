package sqldb

import (
	"strings"
)

// pathKind enumerates the access paths the planner chooses among, in
// increasing cost order.
type pathKind int

const (
	pathScan       pathKind = iota // full scan under a table S lock
	pathPoint                      // primary-key equality: IS + one row S/X lock
	pathIndexEq                    // secondary-index equality: IS + row locks
	pathIndexRange                 // ordered index/PK traversal for range predicates
)

// String names the access path as EXPLAIN reports it.
func (k pathKind) String() string {
	switch k {
	case pathPoint:
		return "point"
	case pathIndexEq:
		return "index"
	case pathIndexRange:
		return "range"
	default:
		return "scan"
	}
}

// accessPath is a parameter-independent access plan for a single-table
// predicate: one plan serves every execution of a parameterised statement.
// The bound expressions (eq, lo, hi) are constant with respect to the row —
// literals, parameters, or negated constants — and are evaluated against the
// actual bindings at execution time.
type accessPath struct {
	kind   pathKind
	col    string // lower-cased column name driving the access
	colIdx int    // its schema position
	onPK   bool   // range over the primary key rather than a secondary index

	eq Expr // point / index-equality constant

	lo, hi         Expr // range bounds; nil side = unbounded
	loIncl, hiIncl bool

	residual Expr // conjuncts not consumed by the access path, nil if none
}

// validFor re-validates a cached path against the table actually resolved at
// execution time. A path derived before a DROP+CREATE of the same table name
// may reference column positions that no longer exist; in that case the
// executor re-plans ad hoc.
func (p *accessPath) validFor(tbl *Table) bool {
	if p.kind == pathScan {
		return true
	}
	s := tbl.schema
	if p.colIdx < 0 || p.colIdx >= len(s.Cols) || lower(s.Cols[p.colIdx].Name) != p.col {
		return false
	}
	if p.kind == pathPoint || p.onPK {
		return s.PKIdx == p.colIdx
	}
	return true
}

// stmtPlan is the cached planning result for one statement against one
// database: the referenced table names (for targeted invalidation), the
// access path of the statement's single-table predicate, and — for
// single-table SELECTs — the pre-validated projection.
type stmtPlan struct {
	gen    uint64   // planCache generation this plan was derived under
	tables []string // lower-cased referenced table names
	access *accessPath
	sel    *selPlan

	// compiled is the closure-compiled form of a single-table SELECT, nil
	// when the statement is outside the compiler's coverage. It lives and
	// dies with the plan: DDL bumps the cache generation, the stale plan is
	// re-derived, and the compiled form is rebuilt against the new schema.
	compiled *compiledSelect
}

// selPlan is the reusable projection of a single-table SELECT: the statement
// has been validated against the table's bindings and its * items expanded,
// so executions with a current plan skip both per-call passes. The items
// still resolve columns by name at evaluation time, so a plan raced by
// DDL mid-execution degrades to a resolution error, never a wrong column.
type selPlan struct {
	items []SelectItem
	cols  []string
}

// planStatement derives the cacheable plan for stmt, or reports that the
// statement should not be cached (DDL, EXPLAIN, statements whose tables do
// not resolve). The generation is captured before catalog inspection, so a
// concurrent DDL makes the plan stale rather than silently wrong.
func planStatement(e *Engine, db string, stmt Statement) (*stmtPlan, bool) {
	gen := e.plans.gen.Load()
	switch s := stmt.(type) {
	case *SelectStmt:
		if s.From == nil {
			return &stmtPlan{gen: gen}, true
		}
		tables := []string{lower(s.From.Table)}
		for _, j := range s.Joins {
			tables = append(tables, lower(j.Table.Table))
		}
		plan := &stmtPlan{gen: gen, tables: tables}
		if len(s.Joins) == 0 {
			tbl, err := e.Table(db, s.From.Table)
			if err != nil {
				return nil, false
			}
			plan.access = planWhere(tbl, s.Where)
			// Pre-validate the statement and expand * once; statements that
			// fail (unknown column, bad star) re-run the checks — and fail —
			// at execution, exactly as an unplanned statement would.
			bind := bindingsFor(tbl.schema, s.From.Name())
			if validateSelect(s, bind) == nil {
				if items, cols, err := expandStars(s.Items, bind); err == nil {
					plan.sel = &selPlan{items: items, cols: cols}
					if cs := compileSelect(tbl, s, plan.sel, plan.access); cs != nil {
						plan.compiled = cs
						e.statPlanCompiles.Add(1)
					}
				}
			}
		}
		return plan, true
	case *UpdateStmt:
		tbl, err := e.Table(db, s.Table)
		if err != nil {
			return nil, false
		}
		return &stmtPlan{gen: gen, tables: []string{lower(s.Table)}, access: planWhere(tbl, s.Where)}, true
	case *DeleteStmt:
		tbl, err := e.Table(db, s.Table)
		if err != nil {
			return nil, false
		}
		return &stmtPlan{gen: gen, tables: []string{lower(s.Table)}, access: planWhere(tbl, s.Where)}, true
	case *InsertStmt:
		if _, err := e.Table(db, s.Table); err != nil {
			return nil, false
		}
		return &stmtPlan{gen: gen, tables: []string{lower(s.Table)}}, true
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		// No table access, but caching still skips the parser.
		return &stmtPlan{gen: gen}, true
	default:
		return nil, false
	}
}

// planWhere selects the access path for a single-table predicate:
// PK equality beats index equality beats an index/PK range beats a scan.
func planWhere(tbl *Table, where Expr) *accessPath {
	schema := tbl.schema
	if where == nil || schema.PKIdx < 0 {
		return &accessPath{kind: pathScan}
	}
	conjuncts := splitAnd(where)
	pkName := schema.Cols[schema.PKIdx].Name

	for i, c := range conjuncts {
		if ce, val, ok := eqColConstExpr(c); ok && strings.EqualFold(ce.Col, pkName) {
			return &accessPath{
				kind: pathPoint, col: lower(pkName), colIdx: schema.PKIdx, onPK: true,
				eq: val, residual: residualOf(conjuncts, i),
			}
		}
	}
	for i, c := range conjuncts {
		if ce, val, ok := eqColConstExpr(c); ok && tbl.hasIndex(lower(ce.Col)) {
			return &accessPath{
				kind: pathIndexEq, col: lower(ce.Col), colIdx: schema.ColIndex(ce.Col),
				eq: val, residual: residualOf(conjuncts, i),
			}
		}
	}
	if p := planRange(tbl, conjuncts, pkName); p != nil {
		return p
	}
	return &accessPath{kind: pathScan}
}

// colRange accumulates the range bounds found for one column.
type colRange struct {
	lo, hi         Expr
	loIncl, hiIncl bool
	used           []int // conjunct positions consumed by the bounds
}

// planRange looks for <, <=, >, >=, BETWEEN conjuncts on the primary key or
// an indexed column and builds a pathIndexRange plan over the column with the
// tightest bounds (both sides preferred over one).
func planRange(tbl *Table, conjuncts []Expr, pkName string) *accessPath {
	ranges := make(map[string]*colRange)
	var order []string
	track := func(col string) *colRange {
		r, ok := ranges[col]
		if !ok {
			r = &colRange{}
			ranges[col] = r
			order = append(order, col)
		}
		return r
	}

	for i, c := range conjuncts {
		switch ex := c.(type) {
		case *BinaryExpr:
			ce, bound, op, ok := cmpColConstExpr(ex)
			if !ok {
				continue
			}
			lc := lower(ce.Col)
			if !strings.EqualFold(ce.Col, pkName) && !tbl.hasIndex(lc) {
				continue
			}
			r := track(lc)
			switch op {
			case OpGt:
				if r.lo == nil {
					r.lo, r.loIncl = bound, false
					r.used = append(r.used, i)
				}
			case OpGe:
				if r.lo == nil {
					r.lo, r.loIncl = bound, true
					r.used = append(r.used, i)
				}
			case OpLt:
				if r.hi == nil {
					r.hi, r.hiIncl = bound, false
					r.used = append(r.used, i)
				}
			case OpLe:
				if r.hi == nil {
					r.hi, r.hiIncl = bound, true
					r.used = append(r.used, i)
				}
			}
		case *BetweenExpr:
			ce, ok := ex.E.(*ColumnExpr)
			if !ok || ex.Negate || !isConstExpr(ex.Lo) || !isConstExpr(ex.Hi) {
				continue
			}
			lc := lower(ce.Col)
			if !strings.EqualFold(ce.Col, pkName) && !tbl.hasIndex(lc) {
				continue
			}
			r := track(lc)
			if r.lo == nil && r.hi == nil {
				r.lo, r.loIncl = ex.Lo, true
				r.hi, r.hiIncl = ex.Hi, true
				r.used = append(r.used, i)
			}
		}
	}

	best := ""
	for _, col := range order {
		r := ranges[col]
		if r.lo == nil && r.hi == nil {
			continue
		}
		if best == "" {
			best = col
			continue
		}
		b := ranges[best]
		if (r.lo != nil && r.hi != nil) && (b.lo == nil || b.hi == nil) {
			best = col
		}
	}
	if best == "" {
		return nil
	}
	r := ranges[best]
	consumed := make(map[int]bool, len(r.used))
	for _, i := range r.used {
		consumed[i] = true
	}
	var rest []Expr
	for i, c := range conjuncts {
		if !consumed[i] {
			rest = append(rest, c)
		}
	}
	colIdx := tbl.schema.ColIndex(best)
	return &accessPath{
		kind: pathIndexRange, col: best, colIdx: colIdx,
		onPK: strings.EqualFold(best, pkName),
		lo:   r.lo, hi: r.hi, loIncl: r.loIncl, hiIncl: r.hiIncl,
		residual: joinAnd(rest),
	}
}

// isConstExpr reports whether e evaluates to a row-independent constant:
// a literal, a parameter, or a negation of one.
func isConstExpr(e Expr) bool {
	switch ex := e.(type) {
	case *LiteralExpr:
		return true
	case *ParamExpr:
		return true
	case *UnaryExpr:
		return ex.Op == OpNeg && isConstExpr(ex.E)
	}
	return false
}

// eqColConstExpr matches "col = const" or "const = col".
func eqColConstExpr(e Expr) (*ColumnExpr, Expr, bool) {
	be, ok := e.(*BinaryExpr)
	if !ok || be.Op != OpEq {
		return nil, nil, false
	}
	if ce, ok := be.L.(*ColumnExpr); ok && isConstExpr(be.R) {
		return ce, be.R, true
	}
	if ce, ok := be.R.(*ColumnExpr); ok && isConstExpr(be.L) {
		return ce, be.L, true
	}
	return nil, nil, false
}

// cmpColConstExpr matches "col <op> const" or "const <op> col" for the
// ordering operators, normalising the operator so it reads column-first.
func cmpColConstExpr(be *BinaryExpr) (*ColumnExpr, Expr, BinOp, bool) {
	switch be.Op {
	case OpLt, OpLe, OpGt, OpGe:
	default:
		return nil, nil, 0, false
	}
	if ce, ok := be.L.(*ColumnExpr); ok && isConstExpr(be.R) {
		return ce, be.R, be.Op, true
	}
	if ce, ok := be.R.(*ColumnExpr); ok && isConstExpr(be.L) {
		return ce, be.L, flipCmp(be.Op), true
	}
	return nil, nil, 0, false
}

// flipCmp mirrors an ordering operator: "5 < col" means "col > 5".
func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// residualOf joins all conjuncts except position i.
func residualOf(conjuncts []Expr, i int) Expr {
	if len(conjuncts) == 1 {
		return nil
	}
	rest := make([]Expr, 0, len(conjuncts)-1)
	rest = append(rest, conjuncts[:i]...)
	rest = append(rest, conjuncts[i+1:]...)
	return joinAnd(rest)
}

// evalConst evaluates a row-independent constant expression against the
// statement parameters (it reports the same missing-binding error the row
// evaluator would).
func evalConst(e Expr, params []Value) (Value, error) {
	return evalExpr(e, &evalCtx{params: params})
}

// rangeExec resolves the path's bound expressions into concrete range bounds
// for this execution. fallback is set when the range cannot run as an index
// traversal with identical semantics to the scan it replaces — a NULL bound
// (three-valued logic: no row matches, but the scan path owns the locking
// behaviour) or a bound that is not comparable with the column type (the
// scan path owns the type-mismatch error).
func (p *accessPath) rangeExec(tbl *Table, params []Value) (b rangeBounds, fallback bool, err error) {
	colTyp := tbl.schema.Cols[p.colIdx].Typ
	if p.lo != nil {
		v, err := evalConst(p.lo, params)
		if err != nil {
			return b, false, err
		}
		if v.IsNull() || !colComparable(colTyp, v) {
			return b, true, nil
		}
		b.lo, b.hasLo, b.loIncl = v, true, p.loIncl
	}
	if p.hi != nil {
		v, err := evalConst(p.hi, params)
		if err != nil {
			return b, false, err
		}
		if v.IsNull() || !colComparable(colTyp, v) {
			return b, true, nil
		}
		b.hi, b.hasHi, b.hiIncl = v, true, p.hiIncl
	}
	return b, false, nil
}

// colComparable reports whether a non-null constant can be ordered against
// values of the given column type.
func colComparable(colTyp Type, v Value) bool {
	if v.numeric() && (colTyp == TypeInt || colTyp == TypeFloat) {
		return true
	}
	return colTyp == v.Typ
}
