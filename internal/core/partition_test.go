package core

import (
	"errors"
	"fmt"
	"testing"
)

func newPartitionedCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster("part", Options{Replicas: 2})
	if _, err := c.AddMachines(4); err != nil {
		t.Fatal(err)
	}
	// Two partitions, each replicated over two machines.
	if err := c.CreatePartitionedDatabase("big", [][]string{{"m1", "m2"}, {"m3", "m4"}}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPartitionedCreateErrors(t *testing.T) {
	c := NewCluster("part", Options{})
	if _, err := c.AddMachines(2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreatePartitionedDatabase("x", nil); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("err = %v", err)
	}
	if err := c.CreatePartitionedDatabase("x", [][]string{{"m1"}, {"m1"}}); err == nil {
		t.Error("overlapping partitions accepted")
	}
	if err := c.CreatePartitionedDatabase("x", [][]string{{"m9"}}); !errors.Is(err, ErrNoMachine) {
		t.Errorf("err = %v", err)
	}
	if err := c.CreatePartitionedDatabase("x", [][]string{{"m1"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreatePartitionedDatabase("x", [][]string{{"m2"}}); !errors.Is(err, ErrDatabaseExists) {
		t.Errorf("err = %v", err)
	}
}

func TestPartitionedTablePlacement(t *testing.T) {
	c := newPartitionedCluster(t)
	tables := []string{"users", "orders", "items", "logs", "events", "tags"}
	for _, tbl := range tables {
		if _, err := c.Exec("big", fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, v INT)", tbl)); err != nil {
			t.Fatalf("create %s: %v", tbl, err)
		}
	}
	parts := c.Partitions("big")
	if len(parts) != 2 {
		t.Fatalf("partitions = %v", parts)
	}
	// Each table lives on exactly its partition's machines (both replicas)
	// and nowhere else.
	counts := map[int]int{}
	for _, tbl := range tables {
		pi := c.TablePartition("big", tbl)
		counts[pi]++
		for idx, group := range parts {
			for _, id := range group {
				m, _ := c.Machine(id)
				eng := m.Engine()
				has := false
				for _, name := range eng.Tables("big") {
					if name == tbl {
						has = true
					}
				}
				if (idx == pi) != has {
					t.Errorf("table %s on machine %s: has=%v, want %v", tbl, id, has, idx == pi)
				}
			}
		}
	}
	// With 6 hashed tables, both partitions should get at least one.
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("degenerate distribution: %v", counts)
	}
}

func TestPartitionedCrossPartitionTransaction(t *testing.T) {
	c := newPartitionedCluster(t)
	// Find two tables in different partitions.
	var t0, t1 string
	for _, name := range []string{"alpha", "beta", "gamma", "delta", "epsilon"} {
		if _, err := c.Exec("big", fmt.Sprintf("CREATE TABLE %s (id INT PRIMARY KEY, v INT)", name)); err != nil {
			t.Fatal(err)
		}
		switch c.TablePartition("big", name) {
		case 0:
			if t0 == "" {
				t0 = name
			}
		case 1:
			if t1 == "" {
				t1 = name
			}
		}
	}
	if t0 == "" || t1 == "" {
		t.Skip("hash put all probe tables in one partition")
	}

	// One ACID transaction spanning both partitions: 2PC must make it
	// atomic across all four machines.
	tx, err := c.Begin("big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(fmt.Sprintf("INSERT INTO %s VALUES (1, 10)", t0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(fmt.Sprintf("INSERT INTO %s VALUES (1, 20)", t1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// And a rollback spanning both partitions leaves no trace.
	tx2, _ := c.Begin("big")
	if _, err := tx2.Exec(fmt.Sprintf("INSERT INTO %s VALUES (2, 0)", t0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(fmt.Sprintf("INSERT INTO %s VALUES (2, 0)", t1)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}

	for _, tbl := range []string{t0, t1} {
		res, err := c.Exec("big", "SELECT COUNT(*) FROM "+tbl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int != 1 {
			t.Errorf("%s count = %v, want 1", tbl, res.Rows[0][0])
		}
	}

	// Joins within one partition work; across partitions they are
	// rejected with a clear error.
	if _, err := c.Exec("big", fmt.Sprintf(
		"SELECT a.v, b.v FROM %s a JOIN %s b ON a.id = b.id", t0, t1)); !errors.Is(err, ErrCrossPartition) {
		t.Errorf("cross-partition join err = %v", err)
	}
}

func TestPartitionedSurvivesMachineFailure(t *testing.T) {
	c := newPartitionedCluster(t)
	if _, err := c.Exec("big", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Exec("big", fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	pi := c.TablePartition("big", "t")
	parts := c.Partitions("big")
	victim := parts[pi][0]
	affected, err := c.FailMachine(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "big" {
		t.Errorf("affected = %v", affected)
	}
	// The partition keeps serving from its surviving replica.
	res, err := c.Exec("big", "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 20 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if _, err := c.Exec("big", "INSERT INTO t VALUES (100, 0)"); err != nil {
		t.Fatal(err)
	}
	// Replica creation is explicitly unsupported for partitioned databases.
	if err := c.CreateReplica("big", "m1"); err == nil {
		t.Error("CreateReplica on partitioned database succeeded")
	}
}

func TestPartitionedReplicaConsistency(t *testing.T) {
	c := newPartitionedCluster(t)
	if _, err := c.Exec("big", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Exec("big", fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	pi := c.TablePartition("big", "t")
	parts := c.Partitions("big")
	var sums []int64
	for _, id := range parts[pi] {
		m, _ := c.Machine(id)
		res, err := m.Engine().Exec("big", "SELECT SUM(v) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, res.Rows[0][0].Int)
	}
	if len(sums) != 2 || sums[0] != sums[1] {
		t.Errorf("partition replicas diverged: %v", sums)
	}
}
