package tpcw

import (
	"fmt"
	"time"
)

// latencyBuckets are exponential bucket upper bounds for the transaction
// latency histogram, from 100µs to ~51s.
const (
	latencyBase    = 100 * time.Microsecond
	latencyBuckets = 20
)

// Histogram is a fixed exponential-bucket latency histogram. The zero value
// is ready to use. It is not safe for concurrent use; each session owns one
// and they are merged at the end.
type Histogram struct {
	counts [latencyBuckets]uint64
	total  uint64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	b := 0
	bound := latencyBase
	for b < latencyBuckets-1 && d > bound {
		bound *= 2
		b++
	}
	return b
}

// boundOf returns the upper bound of bucket i.
func boundOf(i int) time.Duration {
	bound := latencyBase
	for ; i > 0; i-- {
		bound *= 2
	}
	return bound
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)]++
	h.total++
}

// Merge adds o's samples into h.
func (h *Histogram) Merge(o Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
}

// Count returns the number of samples.
func (h Histogram) Count() uint64 { return h.total }

// Quantile returns an upper bound on the q-quantile latency (0 < q <= 1),
// or 0 when the histogram is empty.
func (h Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			return boundOf(i)
		}
	}
	return boundOf(latencyBuckets - 1)
}

// String summarises the histogram as p50/p95/p99 bounds.
func (h Histogram) String() string {
	return fmt.Sprintf("p50<=%v p95<=%v p99<=%v (n=%d)",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.total)
}
