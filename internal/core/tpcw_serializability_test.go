package core

import (
	"testing"
	"time"

	"sdp/internal/history"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
)

// tpcwClusterDB adapts one cluster database to the TPC-W client interface.
type tpcwClusterDB struct {
	c  *Cluster
	db string
}

func (d tpcwClusterDB) Begin() (tpcw.Txn, error) { return d.c.Begin(d.db) }

// TestTPCWSerializableUnderConservative runs the real TPC-W ordering mix —
// not a hand-built adversarial pair — against a replicated cluster with the
// history recorder attached, and verifies global one-copy serializability
// for every read option with the conservative controller (Theorem 2 at
// workload scale).
func TestTPCWSerializableUnderConservative(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	for _, opt := range []ReadOption{ReadOption1, ReadOption2, ReadOption3} {
		t.Run(opt.String(), func(t *testing.T) {
			rec := history.NewRecorder()
			cfg := sqldb.DefaultConfig()
			cfg.LockTimeout = 100 * time.Millisecond
			c := NewCluster("tpcw-ser", Options{
				ReadOption:   opt,
				AckMode:      Conservative,
				Replicas:     2,
				EngineConfig: cfg,
				Recorder:     rec,
			})
			if _, err := c.AddMachines(2); err != nil {
				t.Fatal(err)
			}
			if err := c.CreateDatabase("app"); err != nil {
				t.Fatal(err)
			}
			db := tpcwClusterDB{c: c, db: "app"}
			scale := tpcw.SmallScale(5)
			if err := tpcw.Load(db, scale); err != nil {
				t.Fatal(err)
			}
			// Recording starts after the load so the graph holds only the
			// concurrent workload.
			rec.Reset()

			w := tpcw.NewWorkload(scale)
			client := &tpcw.Client{DB: db, Mix: tpcw.OrderingMix, Workload: w, Classify: func(err error) tpcw.ErrorClass {
				if IsRetryable(err) {
					return tpcw.ClassAborted
				}
				return tpcw.DefaultClassifier(err)
			}}
			st := client.RunConcurrent(6, 300*time.Millisecond, 17)
			if st.Fatal > 0 {
				t.Fatalf("fatal client errors: %+v", st)
			}
			if st.Committed < 50 {
				t.Fatalf("too few committed transactions (%d) for a meaningful check", st.Committed)
			}
			ok, cycle, g := history.Check(rec)
			if !ok {
				t.Fatalf("TPC-W execution not one-copy serializable; cycle:\n%s", g.Describe(cycle))
			}
			t.Logf("%s: %d committed transactions, serialization graph acyclic", opt, st.Committed)
		})
	}
}
