package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/obs"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/wal"
)

// Cluster is the fault-tolerant cluster controller of the paper: it owns a
// set of machines, maps each client database to two or more of them, keeps
// the replicas synchronised with read-one-write-all + 2PC, and manages
// replica creation and machine failures. All client database connections go
// through the controller; clients never talk to a machine directly.
type Cluster struct {
	name string
	opts Options

	// endpoint is the controller's name on the simulated network; every
	// controller→machine link originates here.
	endpoint string

	// resolvers tracks background 2PC outcome deliveries (commit or
	// rollback retried out-of-band after in-band delivery failed), so
	// tests and the chaos driver can wait for full quiescence.
	resolvers sync.WaitGroup

	mu       sync.Mutex
	machines map[string]*Machine
	order    []string // machine IDs in registration order
	dbs      map[string]*dbState

	gidSeq   atomic.Uint64
	rrSeq    atomic.Uint64
	epochSeq atomic.Uint64
	homeSeq  uint64 // guarded by mu; rotates Option-1 read homes

	// walMetrics is the shared instrument set for every machine's write-ahead
	// log; nil when the cluster runs without WAL (Options.WAL == nil).
	walMetrics *wal.Metrics

	// pair mirrors commit-in-transit state to the backup controller of the
	// process pair (see pair.go).
	pair pairMirror

	// stmts caches parsed statements by SQL text so the controller parses
	// each distinct statement once, no matter how many replicas (or
	// transactions) execute it.
	stmts *sqldb.StmtCache

	// metrics holds the controller's resolved observability instruments
	// (see metrics.go and OBSERVABILITY.md); all transaction-outcome
	// counters live there.
	metrics *clusterMetrics

	// slamon, when non-nil, is fed one observation per finished
	// transaction so declared SLAs are compared against delivered service
	// (see sla.Monitor; all its methods are nil-receiver safe).
	slamon *sla.Monitor

	// ctl, when non-nil, is the replicated control plane: every control
	// mutation commits to a consensus log across Options.Controllers
	// replicas before materializing into the routing state above (see
	// controlplane.go). Nil keeps the single-controller process-pair model.
	ctl *controlPlane
}

// dbState is the controller's bookkeeping for one client database.
type dbState struct {
	name     string
	replicas []string   // live machines hosting the database
	readHome string     // Option 1's designated read replica
	copying  *copyState // non-nil while a new replica is being created
	// epoch uniquely identifies this incarnation of the namespace, so a
	// machine's failure-time marks from a since-dropped-and-recreated
	// database are never trusted.
	epoch uint64
	// writeSeq counts routed writes per table (lower-cased name), guarded by
	// the cluster mutex. A restarted machine compares its failure-time
	// snapshot of these counters against the current values: equal means the
	// table is unchanged and log replay alone recovered it.
	writeSeq map[string]uint64
	// pending counts in-flight write operations per table (lower-cased
	// name). The copy process drains a table's counter after marking it
	// in-flight; since rejections stop new arrivals, the wait is bounded
	// by the outstanding writes rather than starving under load.
	pending map[string]*drainCounter
	req     sla.Resources // per-replica SLA reservation (zero if unmanaged)

	// partitions and tableAt are set only for table-partitioned databases
	// (the paper's larger-than-one-machine extension; see partition.go).
	partitions []partitionState
	tableAt    map[string]int
}

// bumpWrite advances a table's write sequence number. Called with the
// cluster mutex held, for every write the router sends to the replicas.
func (ds *dbState) bumpWrite(table string) {
	if ds.writeSeq == nil {
		ds.writeSeq = make(map[string]uint64)
	}
	ds.writeSeq[table]++
}

// pendingFor returns (creating if needed) the drain counter of a table.
// Called with the cluster mutex held.
func (ds *dbState) pendingFor(table string) *drainCounter {
	if ds.pending == nil {
		ds.pending = make(map[string]*drainCounter)
	}
	d, ok := ds.pending[table]
	if !ok {
		d = &drainCounter{}
		ds.pending[table] = d
	}
	return d
}

// copyState tracks an in-progress replica creation (Algorithm 1).
type copyState struct {
	source   string
	target   string
	wholeDB  bool // database-granularity copy: all writes rejected
	copied   map[string]bool
	inFlight string
	// aborted is set by FailMachine when the copy's source or target dies
	// mid-copy: the copy process abandons at its next step boundary, the
	// router stops rejecting writes, and the half-copied destination is
	// never registered in the replica set.
	aborted bool
}

// drainCounter counts in-flight write operations of a database so the copy
// process can wait for enqueued-but-unexecuted writes to drain before
// locking a table (closing the routing/execution race that Algorithm 1's
// proof assumes away).
type drainCounter struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (d *drainCounter) inc() {
	d.mu.Lock()
	if d.cond == nil {
		d.cond = sync.NewCond(&d.mu)
	}
	d.n++
	d.mu.Unlock()
}

func (d *drainCounter) dec() {
	d.mu.Lock()
	d.n--
	if d.n == 0 && d.cond != nil {
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

func (d *drainCounter) wait() {
	d.mu.Lock()
	if d.cond == nil {
		d.cond = sync.NewCond(&d.mu)
	}
	for d.n > 0 {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// NewCluster creates an empty cluster controller.
func NewCluster(name string, opts Options) *Cluster {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if opts.EngineConfig.Spans == nil {
		// Engines record their per-statement and WAL-flush spans into the
		// same ring the controller uses, so one trace ID finds all layers.
		opts.EngineConfig.Spans = reg.Spans()
	}
	c := &Cluster{
		name:     name,
		opts:     opts,
		endpoint: "ctl:" + name,
		machines: make(map[string]*Machine),
		dbs:      make(map[string]*dbState),
		stmts:    sqldb.NewStmtCache(0),
		metrics:  newClusterMetrics(reg),
		slamon:   opts.SLAMonitor,
	}
	if opts.WAL != nil {
		c.walMetrics = wal.NewMetrics(reg)
	}
	reg.OnSnapshot(c.bridgeStats)
	if opts.Controllers > 0 {
		c.ctl = newControlPlane(c, opts.Controllers, reg)
	}
	if c.slamon != nil {
		// Let the monitor resolve which machines host a violating
		// database's replicas (the re-placement hook).
		c.slamon.AddReplicaSource(func(db string) ([]string, bool) {
			ids, err := c.Replicas(db)
			if err != nil {
				return nil, false
			}
			return ids, true
		})
	}
	return c
}

// Name returns the cluster's name.
func (c *Cluster) Name() string { return c.name }

// Endpoint returns the controller's name on the simulated network — the
// `from` side of every controller→machine link. Fault schedules (tests, the
// chaos driver) use it to target specific links.
func (c *Cluster) Endpoint() string { return c.endpoint }

// Options returns the controller's configuration.
func (c *Cluster) Options() Options { return c.opts }

// AddMachine registers a new machine (from the colo's free pool) and returns
// it.
func (c *Cluster) AddMachine(id string) (*Machine, error) {
	if cp := c.ctl; cp != nil {
		c.mu.Lock()
		_, dup := c.machines[id]
		c.mu.Unlock()
		if dup {
			return nil, fmt.Errorf("core: machine %s already in cluster %s", id, c.name)
		}
		cp.mu.Lock()
		defer cp.mu.Unlock()
		if _, err := cp.propose(ctlCmd{Op: ctlOpAddMachine, Machine: id}); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.machines[id]; dup {
		return nil, fmt.Errorf("core: machine %s already in cluster %s", id, c.name)
	}
	var rec sqldb.Recorder
	if c.opts.Recorder != nil {
		rec = c.opts.Recorder.ForSite(id)
	}
	m := newMachine(id, c.opts.EngineConfig, rec, c.opts.WAL, c.walMetrics)
	c.machines[id] = m
	c.order = append(c.order, id)
	return m, nil
}

// AddMachines registers n machines named m1..mn (continuing any existing
// numbering) and returns their IDs.
func (c *Cluster) AddMachines(n int) ([]string, error) {
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%d", len(c.MachineIDs())+1)
		if _, err := c.AddMachine(id); err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Machine returns the machine with the given ID.
func (c *Cluster) Machine(id string) (*Machine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.machines[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMachine, id)
	}
	return m, nil
}

// MachineIDs lists all machine IDs in registration order.
func (c *Cluster) MachineIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// LiveMachineIDs lists the IDs of machines that have not failed.
func (c *Cluster) LiveMachineIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, id := range c.order {
		if !c.machines[id].Failed() {
			out = append(out, id)
		}
	}
	return out
}

// Databases lists database names in sorted order.
func (c *Cluster) Databases() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.dbs))
	for n := range c.dbs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Replicas returns the machine IDs currently hosting db.
func (c *Cluster) Replicas(db string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	out := make([]string, len(ds.replicas))
	copy(out, ds.replicas)
	return out, nil
}

// CreateDatabase creates a database on Options.Replicas machines, chosen by
// least current database count (the cluster-internal default; SLA-aware
// placement lives in the sla package and uses CreateDatabaseOn).
func (c *Cluster) CreateDatabase(db string) error {
	c.mu.Lock()
	type cand struct {
		id string
		n  int32
	}
	var cands []cand
	for _, id := range c.order {
		m := c.machines[id]
		if !m.Failed() {
			cands = append(cands, cand{id: id, n: m.dbCount.Load()})
		}
	}
	c.mu.Unlock()
	if len(cands) < c.opts.Replicas {
		return fmt.Errorf("%w: need %d machines for %s, have %d live", ErrNoReplicas, c.opts.Replicas, db, len(cands))
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].n < cands[j].n })
	ids := make([]string, c.opts.Replicas)
	for i := range ids {
		ids[i] = cands[i].id
	}
	return c.CreateDatabaseOn(db, ids)
}

// CreateDatabaseOn creates a database hosted on the given machines.
func (c *Cluster) CreateDatabaseOn(db string, machineIDs []string) error {
	if len(machineIDs) == 0 {
		return fmt.Errorf("%w: no machines given for %s", ErrNoReplicas, db)
	}
	c.mu.Lock()
	if _, dup := c.dbs[db]; dup {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDatabaseExists, db)
	}
	ms := make([]*Machine, 0, len(machineIDs))
	for _, id := range machineIDs {
		m, ok := c.machines[id]
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNoMachine, id)
		}
		if m.Failed() {
			c.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrMachineFailed, id)
		}
		ms = append(ms, m)
	}
	c.mu.Unlock()

	for _, m := range ms {
		if err := m.Engine().CreateDatabase(db); err != nil {
			return err
		}
		m.dbCount.Add(1)
	}

	if cp := c.ctl; cp != nil {
		// The placement decision commits to the replicated log; the state
		// machine assigns the epoch and the rotated Option-1 read home so
		// every controller replica derives the same values.
		cp.mu.Lock()
		defer cp.mu.Unlock()
		res, err := cp.propose(ctlCmd{Op: ctlOpCreateDB, DB: db, Replicas: machineIDs})
		if err != nil {
			for _, m := range ms {
				if derr := m.Engine().DropDatabase(db); derr == nil {
					m.dbCount.Add(-1)
				}
			}
			return err
		}
		cr, _ := res.(ctlCreateResult)
		c.mu.Lock()
		defer c.mu.Unlock()
		ds, ok := c.dbs[db]
		if !ok {
			ds = &dbState{name: db}
			c.dbs[db] = ds
		}
		ds.replicas = append([]string{}, machineIDs...)
		ds.readHome = cr.ReadHome
		ds.epoch = cr.Epoch
		return nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Rotate each database's Option-1 read home across its replicas so
	// read load balances over the machines even though any one database's
	// reads all go to one place.
	home := machineIDs[int(c.homeSeq)%len(machineIDs)]
	c.homeSeq++
	c.dbs[db] = &dbState{
		name:     db,
		replicas: append([]string{}, machineIDs...),
		readHome: home,
		epoch:    c.epochSeq.Add(1),
	}
	return nil
}

// DropDatabase removes a database from every replica.
func (c *Cluster) DropDatabase(db string) error {
	if cp := c.ctl; cp != nil {
		c.mu.Lock()
		_, ok := c.dbs[db]
		c.mu.Unlock()
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoDatabase, db)
		}
		cp.mu.Lock()
		defer cp.mu.Unlock()
		if _, err := cp.propose(ctlCmd{Op: ctlOpDropDB, DB: db}); err != nil {
			return err
		}
	}
	c.mu.Lock()
	ds, ok := c.dbs[db]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	replicas := append([]string{}, ds.replicas...)
	delete(c.dbs, db)
	ms := make([]*Machine, 0, len(replicas))
	for _, id := range replicas {
		ms = append(ms, c.machines[id])
	}
	c.mu.Unlock()
	for _, m := range ms {
		if m.Failed() {
			continue
		}
		if err := m.Engine().DropDatabase(db); err != nil {
			return err
		}
		m.dbCount.Add(-1)
	}
	return nil
}

// FailMachine marks a machine as failed, removes it from every database's
// replica set, and returns the names of the databases that lost a replica
// (the recovery work list). It models the paper's machine failure within a
// colo.
func (c *Cluster) FailMachine(id string) ([]string, error) {
	if cp := c.ctl; cp != nil {
		c.mu.Lock()
		_, ok := c.machines[id]
		c.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoMachine, id)
		}
		cp.mu.Lock()
		defer cp.mu.Unlock()
		if _, err := cp.propose(ctlCmd{Op: ctlOpFailMachine, Machine: id}); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	m, ok := c.machines[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoMachine, id)
	}
	var affected []string
	for _, ds := range c.dbs {
		for i, rid := range ds.replicas {
			if rid == id {
				ds.replicas = append(ds.replicas[:i], ds.replicas[i+1:]...)
				affected = append(affected, ds.name)
				if ds.readHome == id && len(ds.replicas) > 0 {
					ds.readHome = ds.replicas[0]
				}
				// Snapshot the database's write counters so a restart can
				// tell which tables changed while the machine was down.
				if m.walStore != nil {
					m.setMarks(ds.name, ds.epoch, ds.writeSeq)
				}
				break
			}
		}
		// A machine hosting an in-flight Algorithm 1 copy (as source or
		// target) aborts the copy: the copy process abandons at its next
		// step, and the half-copied destination never joins the replica
		// set. The database is reported affected so the caller can requeue
		// the copy onto a live target.
		if cs := ds.copying; cs != nil && !cs.aborted && (cs.target == id || cs.source == id) {
			cs.aborted = true
			affected = append(affected, ds.name)
		}
		// Partitioned databases: drop the machine from its partition; the
		// remaining replicas of that partition keep serving.
		for pi := range ds.partitions {
			p := &ds.partitions[pi]
			for i, rid := range p.replicas {
				if rid == id {
					p.replicas = append(p.replicas[:i], p.replicas[i+1:]...)
					affected = append(affected, ds.name)
					if p.readHome == id && len(p.replicas) > 0 {
						p.readHome = p.replicas[0]
					}
					break
				}
			}
		}
	}
	sort.Strings(affected)
	affected = dedupSorted(affected)
	c.mu.Unlock()
	m.fail()
	c.metrics.reg.TraceEvent("recovery", id, "machine_failed", fmt.Sprintf("affected=%v", affected))
	return affected, nil
}

// dedupSorted removes adjacent duplicates from a sorted slice (a database
// can be affected both as a hosted replica and as an aborted copy).
func dedupSorted(xs []string) []string {
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || out[len(out)-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// reachable reports whether the controller's link to machine id is open.
// Without a simulated network every machine is reachable.
func (c *Cluster) reachable(id string) bool {
	return !c.opts.Network.Partitioned(c.endpoint, id)
}

// pickReadMachine chooses the replica that serves a read for txn t,
// implementing the paper's three read-routing options. The copy target of an
// in-progress replica creation is never chosen because it only joins
// ds.replicas once the copy completes. tables lists the tables the read
// touches; it only matters for partitioned databases, where all tables must
// live in one partition.
//
// Under a simulated network the read path degrades gracefully: replicas
// behind a partitioned controller link are routed around (the preferred
// home keeps its role and resumes service when the partition heals), and
// only when every replica is unreachable does the read fail.
func (c *Cluster) pickReadMachine(t *Txn, tables []string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[t.db]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoDatabase, t.db)
	}
	if ds.partitioned() {
		c.metrics.readRoutePart.Inc()
		return c.partitionReadRoute(ds, tables)
	}
	if len(ds.replicas) == 0 {
		return "", ErrNoReplicas
	}
	up := ds.replicas
	if c.opts.Network != nil {
		up = make([]string, 0, len(ds.replicas))
		for _, id := range ds.replicas {
			if c.reachable(id) {
				up = append(up, id)
			}
		}
		if len(up) == 0 {
			return "", fmt.Errorf("%w: %s", ErrUnreachable, t.db)
		}
	}
	c.metrics.readRouteCounter(c.opts.ReadOption).Inc()
	switch c.opts.ReadOption {
	case ReadOption1:
		// All reads of the database go to its designated home replica.
		if !contains(ds.replicas, ds.readHome) {
			ds.readHome = ds.replicas[0]
		}
		if contains(up, ds.readHome) {
			return ds.readHome, nil
		}
		// Home unreachable: serve from another live replica without
		// reassigning the home, so reads return once the partition heals.
		c.metrics.readDegraded.Inc()
		return up[0], nil
	case ReadOption2:
		// All reads of this transaction go to one replica, chosen once.
		if t.readHome != "" && contains(up, t.readHome) {
			return t.readHome, nil
		}
		if t.readHome != "" && contains(ds.replicas, t.readHome) {
			// The transaction's replica became unreachable mid-flight.
			c.metrics.readDegraded.Inc()
		}
		pick := up[int(c.rrSeq.Add(1))%len(up)]
		t.readHome = pick
		return pick, nil
	default: // ReadOption3
		if len(up) < len(ds.replicas) {
			c.metrics.readDegraded.Inc()
		}
		return up[int(c.rrSeq.Add(1))%len(up)], nil
	}
}

// writeRoute decides which machines a write on table must execute on,
// applying Algorithm 1 while a replica is being created. It returns the
// target machine IDs and a release function that must be called once the
// write has finished executing on all of them (the copy process drains
// in-flight writes before locking a table).
func (c *Cluster) writeRoute(db, table string) ([]string, func(), error) {
	table = lowerName(table)
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[db]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	if ds.partitioned() {
		targets, err := ds.partitionWriteRoute(table)
		if err != nil {
			return nil, nil, err
		}
		ds.bumpWrite(table)
		d := ds.pendingFor(table)
		d.inc()
		return targets, d.dec, nil
	}
	if len(ds.replicas) == 0 {
		return nil, nil, ErrNoReplicas
	}
	targets := append([]string{}, ds.replicas...)
	if cs := ds.copying; cs != nil {
		switch {
		case cs.aborted:
			// The copy is being abandoned (its source or target failed):
			// stop rejecting and stop feeding the dead target.
		case cs.wholeDB:
			// Database-granularity copy: every write to the database is
			// proactively rejected for the duration of the copy.
			c.metrics.rejected.Inc()
			c.metrics.reg.TraceEvent("copy", db, "write_rejected", table)
			return nil, nil, ErrRejected
		case table == cs.inFlight:
			// Algorithm 1, line 11: write on the table being copied.
			c.metrics.rejected.Inc()
			c.metrics.reg.TraceEvent("copy", db, "write_rejected", table)
			return nil, nil, ErrRejected
		case cs.copied[table]:
			// Algorithm 1, line 9: table already copied — include target.
			targets = append(targets, cs.target)
		default:
			// Algorithm 1, line 13: not yet copied — exclude target.
		}
	}
	ds.bumpWrite(table)
	d := ds.pendingFor(table)
	d.inc()
	return targets, d.dec, nil
}

// Begin starts a distributed transaction on db.
func (c *Cluster) Begin(db string) (*Txn, error) {
	// With a replicated control plane the data path serves only under a
	// leader's quorum lease: routes read from materialized state are then
	// guaranteed current (no competing leader can have committed a
	// conflicting placement). The check is two atomic loads per live
	// replica — no locks, no log round trip.
	if cp := c.ctl; cp != nil && !cp.leaseOK() {
		return nil, fmt.Errorf("%w: no controller holds the quorum lease", ErrNotLeader)
	}
	c.mu.Lock()
	_, ok := c.dbs[db]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	return &Txn{
		c:        c,
		db:       db,
		gid:      c.gidSeq.Add(1),
		start:    time.Now(),
		sessions: make(map[string]*replicaSession),
	}, nil
}

// Exec runs a single statement in its own transaction (autocommit).
func (c *Cluster) Exec(db, sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	t, err := c.Begin(db)
	if err != nil {
		return nil, err
	}
	res, err := t.Exec(sql, params...)
	if err != nil {
		_ = t.Rollback()
		return nil, err
	}
	if err := t.Commit(); err != nil {
		return nil, err
	}
	return res, nil
}

// DrainResolvers blocks until every background 2PC outcome resolver
// (commit or rollback deliveries retried out-of-band after a network
// fault) has finished. Tests and the chaos driver call it before checking
// invariants such as lock counts and replica consistency.
func (c *Cluster) DrainResolvers() { c.resolvers.Wait() }

// Stats is a snapshot of cluster-level counters.
type Stats struct {
	Committed uint64
	Aborted   uint64
	Rejected  uint64 // proactive rejections (SLA availability metric)
	Deadlocks uint64 // summed over all machines
}

// Stats returns cluster counters, read back from the observability
// registry (the counters' single source of truth). Deadlocks are
// aggregated from every machine's engine.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Committed: c.metrics.committed.Value(),
		Aborted:   c.metrics.aborted.Value(),
		Rejected:  c.metrics.rejected.Value(),
	}
	c.mu.Lock()
	ms := make([]*Machine, 0, len(c.machines))
	for _, m := range c.machines {
		ms = append(ms, m)
	}
	c.mu.Unlock()
	for _, m := range ms {
		s.Deadlocks += m.Engine().Stats().Deadlocks
	}
	return s
}

func lowerName(s string) string {
	return strings.ToLower(s)
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
