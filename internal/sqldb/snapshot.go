package sqldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Engine snapshots serialise every database of an engine to a stream and
// back — the basis for warm restarts and for shipping whole machines
// around. The format reuses the page row codec: a header, then per
// database/table the schema DDL, index definitions, and rows.
//
// Snapshots are transactionally consistent: SnapshotTo drives the same
// table-read-lock copy protocol as the dump tool, database by database.

const snapshotMagic = "SDPSNAP1"

// SnapshotTo writes a consistent snapshot of every database to w.
func (e *Engine) SnapshotTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	dbs := e.Databases()
	if err := writeUvarint(bw, uint64(len(dbs))); err != nil {
		return err
	}
	for _, db := range dbs {
		if err := writeString(bw, db); err != nil {
			return err
		}
		dumps, err := e.DumpDatabase(db, GranularityDatabase, DumpObserver{})
		if err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(len(dumps))); err != nil {
			return err
		}
		for _, d := range dumps {
			if err := writeTableDump(bw, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RestoreFrom loads a snapshot into an empty engine (no databases yet).
func (e *Engine) RestoreFrom(r io.Reader) error {
	if len(e.Databases()) != 0 {
		return fmt.Errorf("sqldb: RestoreFrom requires an empty engine")
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("sqldb: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("sqldb: bad snapshot magic %q", magic)
	}
	nDBs, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nDBs; i++ {
		db, err := readString(br)
		if err != nil {
			return err
		}
		if err := e.CreateDatabase(db); err != nil {
			return err
		}
		nTables, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		for j := uint64(0); j < nTables; j++ {
			d, err := readTableDump(br)
			if err != nil {
				return err
			}
			if err := e.RestoreTable(db, d); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTableDump(w *bufio.Writer, d TableDump) error {
	if err := writeString(w, d.Schema.DDL()); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(d.Indexes))); err != nil {
		return err
	}
	for _, idx := range d.Indexes {
		if err := writeString(w, idx.Name); err != nil {
			return err
		}
		if err := writeString(w, idx.Col); err != nil {
			return err
		}
		b := byte(0)
		if idx.Unique {
			b = 1
		}
		if err := w.WriteByte(b); err != nil {
			return err
		}
	}
	if err := writeUvarint(w, uint64(len(d.Rows))); err != nil {
		return err
	}
	for _, r := range d.Rows {
		enc := encodeRow(nil, r)
		if err := writeUvarint(w, uint64(len(enc))); err != nil {
			return err
		}
		if _, err := w.Write(enc); err != nil {
			return err
		}
	}
	return nil
}

func readTableDump(r *bufio.Reader) (TableDump, error) {
	var d TableDump
	ddl, err := readString(r)
	if err != nil {
		return d, err
	}
	stmt, err := Parse(ddl)
	if err != nil {
		return d, fmt.Errorf("sqldb: snapshot DDL: %w", err)
	}
	ct, ok := stmt.(*CreateTableStmt)
	if !ok {
		return d, fmt.Errorf("sqldb: snapshot DDL is %T, want CREATE TABLE", stmt)
	}
	cols := make([]Column, len(ct.Cols))
	for i, c := range ct.Cols {
		cols[i] = Column{Name: c.Name, Typ: c.Typ, PrimaryKey: c.PrimaryKey, NotNull: c.NotNull, Unique: c.Unique}
	}
	schema, err := NewSchema(ct.Table, cols)
	if err != nil {
		return d, err
	}
	d.Schema = schema

	nIdx, err := binary.ReadUvarint(r)
	if err != nil {
		return d, err
	}
	for i := uint64(0); i < nIdx; i++ {
		name, err := readString(r)
		if err != nil {
			return d, err
		}
		col, err := readString(r)
		if err != nil {
			return d, err
		}
		b, err := r.ReadByte()
		if err != nil {
			return d, err
		}
		d.Indexes = append(d.Indexes, IndexDef{Name: name, Col: col, Unique: b == 1})
	}

	nRows, err := binary.ReadUvarint(r)
	if err != nil {
		return d, err
	}
	for i := uint64(0); i < nRows; i++ {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return d, err
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(r, buf); err != nil {
			return d, err
		}
		row, rest, err := decodeRow(buf)
		if err != nil {
			return d, err
		}
		if len(rest) != 0 {
			return d, fmt.Errorf("sqldb: snapshot row has %d trailing bytes", len(rest))
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	l, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, l)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
