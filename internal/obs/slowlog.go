package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultSlowLogCapacity bounds the slow-query log when no explicit size is
// given. Slow queries are by definition rare; a few hundred entries cover
// an investigation window without unbounded growth.
const DefaultSlowLogCapacity = 256

// SlowEntry is one captured slow query: what ran, for which tenant, how it
// executed, and — when the call was traced — its span breakdown, so an
// operator can go from "this was slow" to "this is the layer that spent the
// time" without reproducing the call.
type SlowEntry struct {
	// Seq is a monotonically increasing capture sequence number.
	Seq uint64 `json:"seq"`
	// Time is when the slow call completed.
	Time time.Time `json:"time"`
	// DB is the tenant database the statement ran against.
	DB string `json:"db"`
	// SQL is the statement text.
	SQL string `json:"sql"`
	// Duration is the server-side execution time.
	Duration time.Duration `json:"duration_ns"`
	// TraceID is the call's trace, 0 when the call was not sampled.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Mode is the plan execution mode ("compiled", "interpreted",
	// "optimistic"), "-" when unknown.
	Mode string `json:"mode"`
	// Spans is the span breakdown captured at record time for traced
	// calls.
	Spans []Span `json:"spans,omitempty"`
}

// SlowLog is a bounded ring of slow-query captures. Like the span ring it
// overwrites oldest-first when full; unlike it, entries are expected to be
// rare, so Record also snapshots the trace's spans eagerly — by the time an
// operator looks, the span ring may have wrapped past them. A nil SlowLog
// is valid and discards entries.
type SlowLog struct {
	mu   sync.Mutex
	buf  []SlowEntry
	next int
	full bool
	seq  uint64

	// recorded, when set, counts every slow query captured.
	recorded *Counter
}

// NewSlowLog creates a slow-query log holding up to capacity entries;
// capacity <= 0 selects DefaultSlowLogCapacity. recorded may be nil.
func NewSlowLog(capacity int, recorded *Counter) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogCapacity
	}
	return &SlowLog{buf: make([]SlowEntry, capacity), recorded: recorded}
}

// Record captures one slow query. spans should be the call's span
// breakdown (nil for untraced calls); the entry keeps its own copy.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil {
		return
	}
	if e.Mode == "" {
		e.Mode = "-"
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
	if l.recorded != nil {
		l.recorded.Inc()
	}
}

// Len returns the number of buffered entries.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// Entries returns the buffered slow queries, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.buf))
	if l.full {
		out = append(out, l.buf[l.next:]...)
	}
	out = append(out, l.buf[:l.next]...)
	return out
}

// WriteText renders the slow-query log for terminals: one header line per
// entry followed by its span tree when the call was traced.
func (l *SlowLog) WriteText(w io.Writer) {
	entries := l.Entries()
	if len(entries) == 0 {
		fmt.Fprintln(w, "(slow-query log empty)")
		return
	}
	for i := range entries {
		e := &entries[i]
		trace := "-"
		if e.TraceID != 0 {
			trace = TraceIDString(e.TraceID)
		}
		fmt.Fprintf(w, "#%d %s db=%s dur=%s mode=%s trace=%s sql=%q\n",
			e.Seq, e.Time.Format(time.RFC3339Nano), e.DB, e.Duration, e.Mode, trace, e.SQL)
		if len(e.Spans) > 0 {
			WriteSpanTree(w, e.Spans)
		}
	}
}
