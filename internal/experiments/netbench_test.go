package experiments

import "testing"

// TestNetBenchShape runs the quick wire benchmark and checks the result
// has the documented shape: a monotone connection curve, real traffic on
// every point, and a compiled-executor point read over the wire.
func TestNetBenchShape(t *testing.T) {
	res, err := RunNetBench(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PreparedReadNsPerOp <= 0 || res.SimpleReadNsPerOp <= 0 {
		t.Fatalf("latencies missing: %+v", res)
	}
	if res.ExplainExec != "compiled" {
		t.Fatalf("EXPLAIN over the wire reports exec=%q, want compiled", res.ExplainExec)
	}
	conns := Config{Quick: true}.netBenchConns()
	if len(res.Points) != len(conns) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(conns))
	}
	for i, pt := range res.Points {
		if pt.Conns != conns[i] {
			t.Fatalf("point %d: conns %d, want %d", i, pt.Conns, conns[i])
		}
		if pt.TPS <= 0 || pt.P99Us <= 0 || pt.BytesPerOp <= 0 {
			t.Fatalf("point %d has empty measurements: %+v", i, pt)
		}
		if pt.ConnsActive < pt.Conns {
			t.Fatalf("point %d: only %d of %d connections active", i, pt.ConnsActive, pt.Conns)
		}
		if pt.Errors != 0 {
			t.Fatalf("point %d: %d errors", i, pt.Errors)
		}
	}
	if res.MaxConnsSustained != conns[len(conns)-1] {
		t.Fatalf("sustained %d, want %d", res.MaxConnsSustained, conns[len(conns)-1])
	}
}
