package sla

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 1, Memory: 2, Disk: 3, DiskBW: 4}
	b := Resources{CPU: 0.5, Memory: 1, Disk: 1, DiskBW: 2}
	sum := a.Add(b)
	if sum != (Resources{CPU: 1.5, Memory: 3, Disk: 4, DiskBW: 6}) {
		t.Errorf("Add = %v", sum)
	}
	if diff := sum.Sub(b); diff != a {
		t.Errorf("Sub = %v", diff)
	}
	if !b.Fits(a) {
		t.Error("b should fit in a")
	}
	if a.Fits(b) {
		t.Error("a should not fit in b")
	}
	if !a.Sub(b).NonNegative() {
		t.Error("a-b should be non-negative")
	}
	if b.Sub(a).NonNegative() {
		t.Error("b-a should be negative somewhere")
	}
	if s := a.Scale(2); s != (Resources{CPU: 2, Memory: 4, Disk: 6, DiskBW: 8}) {
		t.Errorf("Scale = %v", s)
	}
}

func TestAvailabilityConstraint(t *testing.T) {
	s := SLA{MinThroughput: 1, MaxRejectFraction: 0.001, Period: 24 * time.Hour}
	in := AvailabilityInputs{
		MachineFailureRate: 1,
		ReallocationRate:   1,
		RecoveryTime:       2 * time.Minute,
		WriteMix:           0.3,
	}
	// (1+1) * (120/86400) * 0.3 = 0.000833... < 0.001
	frac := in.RejectFraction(s.Period)
	if frac <= 0.0008 || frac >= 0.00085 {
		t.Errorf("RejectFraction = %v", frac)
	}
	if !s.SatisfiesAvailability(in) {
		t.Error("constraint should hold")
	}
	in.WriteMix = 0.5
	if s.SatisfiesAvailability(in) {
		t.Error("constraint should fail with write mix 0.5")
	}
	maxRT := s.MaxRecoveryTime(in)
	in.RecoveryTime = maxRT - time.Second
	if !s.SatisfiesAvailability(in) {
		t.Errorf("recovery just under MaxRecoveryTime (%v) should satisfy", maxRT)
	}
}

func TestProfileMonotone(t *testing.T) {
	small := Profile(200, 1)
	big := Profile(1000, 10)
	if !small.Fits(big) {
		t.Errorf("larger database should need at least as much everywhere: %v vs %v", small, big)
	}
	if !big.Fits(UnitMachine("m").Cap) {
		t.Errorf("the largest paper database must fit one machine: %v", big)
	}
}

func TestFirstFitBasics(t *testing.T) {
	a := NewAllocator(nil)
	d := Database{Name: "db1", Req: Resources{CPU: 0.6, Memory: 0.6, Disk: 0.1, DiskBW: 0.1}, Replicas: 2}
	ms, err := a.Place(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] == ms[1] {
		t.Fatalf("placement = %v (replicas must be on distinct machines)", ms)
	}
	// A second database of the same size cannot share (0.6+0.6 > 1): two
	// more machines.
	if _, err := a.Place(Database{Name: "db2", Req: d.Req, Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	if n := a.MachineCount(); n != 4 {
		t.Errorf("machines = %d, want 4", n)
	}
	// A small database fits into the slack of existing machines.
	small := Database{Name: "db3", Req: Resources{CPU: 0.1, Memory: 0.1}, Replicas: 2}
	ms, err = a.Place(small)
	if err != nil {
		t.Fatal(err)
	}
	if n := a.MachineCount(); n != 4 {
		t.Errorf("machines after small db = %d, want 4 (%v)", n, ms)
	}
}

func TestPlaceDuplicate(t *testing.T) {
	a := NewAllocator(nil)
	d := Database{Name: "x", Req: Resources{CPU: 0.1}, Replicas: 1}
	if _, err := a.Place(d); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Place(d); err == nil {
		t.Error("duplicate placement succeeded")
	}
}

func TestPlaceOversized(t *testing.T) {
	a := NewAllocator(nil)
	d := Database{Name: "huge", Req: Resources{CPU: 2}, Replicas: 1}
	if _, err := a.Place(d); err == nil {
		t.Error("oversized database placed")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewAllocator(nil)
	for i := 0; i < 40; i++ {
		d := Database{
			Name:     string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Req:      Profile(200+rng.Float64()*800, 0.1+rng.Float64()*9.9),
			Replicas: 2,
		}
		if _, err := a.Place(d); err != nil {
			t.Fatal(err)
		}
	}
	for i := range a.machines {
		if !a.remaining[i].NonNegative() {
			t.Errorf("machine %d over capacity: %v", i, a.remaining[i])
		}
	}
	// Every database must have its replicas on distinct machines.
	for db, ms := range a.Placement() {
		seen := map[string]bool{}
		for _, m := range ms {
			if seen[m] {
				t.Errorf("%s has two replicas on %s", db, m)
			}
			seen[m] = true
		}
	}
}

func TestOptimalMatchesHandComputedCases(t *testing.T) {
	cap := UnitMachine("m").Cap
	half := Resources{CPU: 0.5, Memory: 0.5, Disk: 0.5, DiskBW: 0.5}
	third := Resources{CPU: 0.34, Memory: 0.34, Disk: 0.34, DiskBW: 0.34}

	// 4 half-machine databases, 1 replica each: exactly 2 machines.
	var dbs []Database
	for i := 0; i < 4; i++ {
		dbs = append(dbs, Database{Name: string(rune('a' + i)), Req: half, Replicas: 1})
	}
	res := Optimal(dbs, cap, 0)
	if !res.Exact || res.Machines != 2 {
		t.Errorf("4 halves: %+v, want 2 exact", res)
	}

	// 3 thirds-sized databases with 2 replicas each: 6 replicas of 0.34
	// → 2 per machine → 3 machines (replicas of one db must be distinct).
	dbs = nil
	for i := 0; i < 3; i++ {
		dbs = append(dbs, Database{Name: string(rune('a' + i)), Req: third, Replicas: 2})
	}
	res = Optimal(dbs, cap, 0)
	if !res.Exact || res.Machines != 3 {
		t.Errorf("3 thirds x2: %+v, want 3 exact", res)
	}

	// Infeasible: database larger than a machine.
	res = Optimal([]Database{{Name: "x", Req: Resources{CPU: 2}, Replicas: 1}}, cap, 0)
	if res.Machines != 0 {
		t.Errorf("infeasible: %+v", res)
	}
}

func TestOptimalNeverWorseThanFirstFit(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 3 + r.Intn(5)
			dbs := make([]Database, n)
			for i := range dbs {
				dbs[i] = Database{
					Name:     string(rune('a' + i)),
					Req:      Profile(200+r.Float64()*800, 0.1+r.Float64()*9.9),
					Replicas: 1 + r.Intn(2),
				}
			}
			vals[0] = reflect.ValueOf(dbs)
		},
	}
	cap := UnitMachine("m").Cap
	if err := quick.Check(func(dbs []Database) bool {
		ff, _, err := PlaceAll(dbs)
		if err != nil {
			return true
		}
		opt := Optimal(dbs, cap, 500_000)
		return opt.Machines <= ff && opt.Machines >= 1
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestFirstFitDecreasingAndBestFit(t *testing.T) {
	// A workload where plain First-Fit is suboptimal: arrival order
	// small, large, small, large with sizes 0.3/0.7.
	small := Resources{CPU: 0.3, Memory: 0.3, Disk: 0.3, DiskBW: 0.3}
	large := Resources{CPU: 0.7, Memory: 0.7, Disk: 0.7, DiskBW: 0.7}
	dbs := []Database{
		{Name: "s1", Req: small, Replicas: 1},
		{Name: "l1", Req: large, Replicas: 1},
		{Name: "s2", Req: small, Replicas: 1},
		{Name: "l2", Req: large, Replicas: 1},
	}
	ff, _, err := PlaceAll(dbs)
	if err != nil {
		t.Fatal(err)
	}
	ffd, _, err := PlaceAllFirstFitDecreasing(dbs)
	if err != nil {
		t.Fatal(err)
	}
	bf, _, err := PlaceAllBestFit(dbs)
	if err != nil {
		t.Fatal(err)
	}
	if ffd > ff || bf > ff+1 {
		t.Errorf("ff=%d ffd=%d bf=%d", ff, ffd, bf)
	}
	if ffd != 2 {
		t.Errorf("FFD should pack 2 machines, got %d", ffd)
	}
	opt := Optimal(dbs, UnitMachine("m").Cap, 0)
	if opt.Machines != 2 {
		t.Errorf("optimal = %+v, want 2", opt)
	}
}
