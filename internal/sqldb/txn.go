package sqldb

import (
	"fmt"
	"sync"
	"time"

	"sdp/internal/obs"
)

// TxnState is the lifecycle state of a transaction.
type TxnState int

// Transaction states. A transaction moves Active → (Prepared →) Committed,
// or to Aborted from Active/Prepared.
const (
	TxnActive TxnState = iota
	TxnPrepared
	TxnCommitted
	TxnAborted
)

// String returns the state name.
func (s TxnState) String() string {
	switch s {
	case TxnActive:
		return "active"
	case TxnPrepared:
		return "prepared"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// undoKind classifies undo records.
type undoKind int

const (
	undoInsert undoKind = iota // row was inserted; undo deletes it
	undoDelete                 // row was deleted; undo reinserts it
	undoUpdate                 // row was updated; undo restores the image
)

// undoRec is one entry of a transaction's undo log.
type undoRec struct {
	table  *Table
	kind   undoKind
	rowID  uint64
	before Row
}

// Txn is a transaction on a single engine. It implements strict two-phase
// locking (locks held until commit/abort) and acts as a 2PC participant via
// Prepare/CommitPrepared. A Txn must not be used from multiple goroutines
// concurrently, matching the behaviour of a MySQL connection.
type Txn struct {
	// GlobalID is an optional caller-assigned identity. The cluster
	// controller assigns the same GlobalID to a distributed transaction's
	// branches on every replica so that history checking can correlate them.
	GlobalID uint64

	id     uint64
	engine *Engine
	db     string // database namespace this transaction operates in

	mu    sync.Mutex
	state TxnState
	undo  []undoRec

	// walBegun records that the transaction's begin record (and at least one
	// statement) was logged, so commit/prepare must force an outcome record.
	// Only the transaction's own goroutine touches it.
	walBegun bool

	// locks is guarded by the engine's lock-manager mutex, not mu: all
	// mutation happens inside lockManager methods. The manager appends an
	// id exactly once per hold (on first grant; upgrades do not re-append),
	// so the slice stays duplicate-free without a set. locksBuf keeps short
	// transactions — the common point read/write — allocation-free.
	locks    []lockID
	locksBuf [8]lockID

	// readOnly marks a transaction started with BeginReadOnly: writes are
	// rejected and compiled SELECTs may use the optimistic lock-free path.
	// optHandled is set while a statement is served by the optimistic path,
	// whose in-window validation subsumes the end-of-statement check.
	readOnly   bool
	optHandled bool

	// optReads records, per table, the epoch at which this read-only
	// transaction's optimistic reads observed that table. Re-validated at the
	// end of every statement; a mismatch aborts with ErrOptimisticConflict.
	// Only the transaction's own goroutine touches it.
	optReads []optRead
	optBuf   [4]optRead

	// writeTables lists the tables whose dirty-writer counter this
	// transaction holds (incremented before its first physical change to the
	// table, released at commit/abort). Only the transaction's own goroutine
	// appends; releaseWrites may run under mu during rollback.
	writeTables []*Table
	writeBuf    [4]*Table

	// Per-transaction scratch buffers that keep the compiled point-read path
	// allocation-free across statements.
	keyBuf      []byte
	rowBuf      Row
	rowsScratch []Row
	rowsBuf     [4]Row

	// trace is the distributed-tracing context this transaction's work is
	// attributed to (zero = untraced; every recording site checks Sampled
	// first, so untraced transactions pay one branch). execMode remembers
	// how the last traced statement executed, for its span's detail. Only
	// the transaction's own goroutine touches them.
	trace    obs.SpanContext
	execMode string
}

// optRead is one table's recorded optimistic-read epoch.
type optRead struct {
	tbl   *Table
	epoch uint64
}

// ID returns the engine-local transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// SetTraceContext attributes the transaction's subsequent statement and
// WAL-flush work to a distributed trace (the zero context clears it). The
// context names the parent span engine-side spans link under.
func (t *Txn) SetTraceContext(tc obs.SpanContext) { t.trace = tc }

// State returns the current lifecycle state.
func (t *Txn) State() TxnState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// noteLock records that the transaction holds id. Called by the lock manager
// with its mutex held, only when the transaction is newly granted the lock
// (never on upgrades of an already-held lock).
func (t *Txn) noteLock(id lockID) { t.locks = append(t.locks, id) }

// heldLocks lists the held lock IDs. Called by the lock manager with its
// mutex held.
func (t *Txn) heldLocks() []lockID { return t.locks }

// optEpochFor returns the epoch previously recorded for tbl.
func (t *Txn) optEpochFor(tbl *Table) (uint64, bool) {
	for _, r := range t.optReads {
		if r.tbl == tbl {
			return r.epoch, true
		}
	}
	return 0, false
}

// noteOptEpoch records that an optimistic read observed tbl at epoch ep.
func (t *Txn) noteOptEpoch(tbl *Table, ep uint64) {
	for _, r := range t.optReads {
		if r.tbl == tbl {
			return // first observation wins; mismatches fail validation
		}
	}
	t.optReads = append(t.optReads, optRead{tbl: tbl, epoch: ep})
}

// validateOptEpochs re-checks every recorded optimistic read (except skip,
// which the caller has already validated within its read window) against the
// table's current epoch. Any movement means a writer committed a physical
// change after this transaction read the table, so the read snapshot can no
// longer be placed consistently in the serial order.
func (t *Txn) validateOptEpochs(skip *Table) bool {
	for _, r := range t.optReads {
		if r.tbl != skip && r.tbl.epoch.Load() != r.epoch {
			return false
		}
	}
	return true
}

// touchWrite marks tbl as dirtied by this transaction, once per table,
// before its first physical change. Optimistic readers observe the raised
// dirty counter and fall back to the locking path rather than risk reading
// uncommitted row images.
func (t *Txn) touchWrite(tbl *Table) {
	for _, w := range t.writeTables {
		if w == tbl {
			return
		}
	}
	if t.writeTables == nil {
		t.writeTables = t.writeBuf[:0]
	}
	t.writeTables = append(t.writeTables, tbl)
	tbl.dirty.Add(1)
}

// releaseWrites drops the dirty-writer marks once the transaction's outcome
// is decided (and, on abort, its undo fully applied). Idempotent.
func (t *Txn) releaseWrites() {
	for _, w := range t.writeTables {
		w.dirty.Add(-1)
	}
	t.writeTables = t.writeTables[:0]
}

// logUndo appends an undo record.
func (t *Txn) logUndo(rec undoRec) {
	t.mu.Lock()
	t.undo = append(t.undo, rec)
	t.mu.Unlock()
}

// checkActive returns an error unless the transaction can accept data
// operations.
func (t *Txn) checkActive() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case TxnActive:
		return nil
	case TxnPrepared:
		return ErrTxnPrepared
	case TxnCommitted:
		return ErrTxnDone
	default:
		return ErrTxnAborted
	}
}

// Exec parses and executes a statement inside the transaction, serving
// repeated statement text from the engine's plan cache. Params bind to ?
// placeholders in order; parameterised statements share one cached plan
// across all bindings.
func (t *Txn) Exec(sql string, params ...Value) (*Result, error) {
	stmt, plan, err := t.engine.cachedStatement(t.db, sql)
	if err != nil {
		return nil, err
	}
	return t.execPlanned(stmt, plan, params, nil)
}

// ExecStmt executes a pre-parsed statement inside the transaction, memoising
// its access-path plan by AST identity.
func (t *Txn) ExecStmt(stmt Statement, params ...Value) (*Result, error) {
	return t.execPlanned(stmt, t.engine.plannedStmt(t.db, stmt), params, nil)
}

// ExecStmtInto is ExecStmt with a caller-owned result: res and its row
// buffers are reused across calls, so a compiled point read executes with
// zero steady-state allocations. On error res is left in an undefined state.
func (t *Txn) ExecStmtInto(res *Result, stmt Statement, params ...Value) error {
	out, err := t.execPlanned(stmt, t.engine.plannedStmt(t.db, stmt), params, res)
	if err != nil {
		return err
	}
	if out != nil && out != res {
		*res = *out
	}
	return nil
}

func (t *Txn) execPlanned(stmt Statement, plan *stmtPlan, params []Value, reuse *Result) (*Result, error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	if !t.engine.HasDatabase(t.db) {
		// The database was dropped underneath the transaction (e.g. an
		// aborted replica copy discarding its half-copied destination while
		// branches were still routed there). The branch cannot proceed:
		// abort it so the client sees a retryable abort rather than a
		// missing-schema error.
		t.rollbackLocked()
		return nil, fmt.Errorf("%w: database %s was dropped", ErrTxnAborted, t.db)
	}
	// Capacity model: occupy one of the machine's worker slots for the
	// statement's service time before touching data. The slot is released
	// before lock acquisition, so saturation queues here (as CPU-bound
	// statements queue on a real machine) without ever interacting with
	// the lock manager.
	if w := t.engine.workers; w != nil {
		w <- struct{}{}
		if st := t.engine.cfg.StmtServiceTime; st > 0 {
			time.Sleep(st)
		}
		<-w
	}
	t.optHandled = false
	traced := t.trace.Traced() && t.engine.cfg.Spans != nil
	var spanStart time.Time
	if traced {
		t.execMode = "interpreted"
		spanStart = time.Now()
	}
	res, err := t.engine.execute(t, stmt, plan, params, reuse)
	if err == nil && t.readOnly && !t.optHandled && len(t.optReads) > 0 &&
		!t.validateOptEpochs(nil) {
		// An interpreter-served (locking) statement completed after a writer
		// moved a table this transaction had read optimistically: the
		// combined reads no longer form one consistent snapshot. Optimistic
		// statements validate within their own read window instead.
		t.engine.statOptConflicts.Add(1)
		res, err = nil, ErrOptimisticConflict
	}
	if err != nil && isAbortError(err) {
		// Deadlock victims and lock-wait timeouts roll the whole
		// transaction back, as InnoDB does for deadlocks.
		t.rollbackLocked()
	}
	if traced {
		t.recordSQLSpan(stmt, spanStart)
	}
	return res, err
}

// recordSQLSpan emits the "sql"-scope span of one traced statement: what
// kind of statement, which tenant, how long, and which executor served it.
func (t *Txn) recordSQLSpan(stmt Statement, start time.Time) {
	mode := t.execMode
	if t.optHandled {
		mode = "optimistic"
	}
	var detail string
	switch mode {
	case "compiled":
		detail = "exec=compiled"
	case "optimistic":
		detail = "exec=optimistic"
	default:
		detail = "exec=interpreted"
	}
	t.engine.cfg.Spans.Record(obs.Span{
		TraceID:  t.trace.TraceID,
		SpanID:   obs.NewTraceID(),
		Parent:   t.trace.SpanID,
		Scope:    "sql",
		Name:     stmtKind(stmt),
		DB:       t.db,
		Start:    start,
		Duration: time.Since(start),
		Detail:   detail,
	})
}

// stmtKind names a statement for its span.
func stmtKind(stmt Statement) string {
	switch stmt.(type) {
	case *SelectStmt:
		return "select"
	case *InsertStmt:
		return "insert"
	case *UpdateStmt:
		return "update"
	case *DeleteStmt:
		return "delete"
	case *ExplainStmt:
		return "explain"
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
		return "ddl"
	default:
		return "other"
	}
}

// isAbortError reports whether the error forces a transaction rollback.
func isAbortError(err error) bool {
	return err == ErrDeadlock || err == ErrLockTimeout || err == ErrTxnAborted ||
		err == ErrOptimisticConflict
}

// Prepare enters the PREPARED state of two-phase commit: the transaction can
// no longer execute operations, its effects are stable, and — when the
// engine's ReleaseReadLocksAtPrepare optimisation is on, as in most real
// systems — its read locks are released while write locks are retained until
// CommitPrepared. Prepare on a read-only transaction is permitted.
func (t *Txn) Prepare() error {
	t.mu.Lock()
	if t.state != TxnActive {
		st := t.state
		t.mu.Unlock()
		switch st {
		case TxnPrepared:
			return nil
		case TxnCommitted:
			return ErrTxnDone
		default:
			return ErrTxnAborted
		}
	}
	t.state = TxnPrepared
	t.mu.Unlock()
	// The prepare record is forced before any lock moves: an in-doubt
	// transaction must survive a crash with its writes intact.
	if err := t.engine.walPrepare(t); err != nil {
		t.rollbackLocked()
		return err
	}
	if t.engine.cfg.ReleaseReadLocksAtPrepare {
		t.engine.locks.releaseShared(t)
	}
	return nil
}

// CommitPrepared completes the second phase of 2PC, making the transaction's
// effects permanent and releasing all remaining locks.
func (t *Txn) CommitPrepared() error {
	t.mu.Lock()
	if t.state != TxnPrepared {
		st := t.state
		t.mu.Unlock()
		switch st {
		case TxnCommitted:
			return ErrTxnDone
		case TxnAborted:
			return ErrTxnAborted
		default:
			return ErrNotPrepared
		}
	}
	t.mu.Unlock()
	// Force the commit record before releasing any lock (write-ahead rule);
	// if the log is failing the transaction rolls back instead.
	if err := t.engine.walCommit(t); err != nil {
		t.rollbackLocked()
		return err
	}
	t.mu.Lock()
	t.state = TxnCommitted
	t.undo = nil
	t.mu.Unlock()
	t.releaseWrites()
	t.engine.locks.releaseAll(t)
	t.engine.finishTxn(t, true)
	return nil
}

// Commit performs a one-phase commit (prepare + commit). It is what a plain
// COMMIT on a single machine does.
func (t *Txn) Commit() error {
	t.mu.Lock()
	switch t.state {
	case TxnActive, TxnPrepared:
		t.mu.Unlock()
		// Force the commit record before releasing any lock (write-ahead
		// rule); if the log is failing the transaction rolls back instead.
		if err := t.engine.walCommit(t); err != nil {
			t.rollbackLocked()
			return err
		}
		t.mu.Lock()
		t.state = TxnCommitted
		t.undo = nil
		t.mu.Unlock()
		t.releaseWrites()
		// A read-only transaction that stayed on the optimistic path touched
		// neither the lock manager nor the WAL; recycle it (with its grown
		// scratch buffers) for the next BeginReadOnly. The handle contract —
		// no calls after Commit returns — makes this safe.
		if t.readOnly && !t.walBegun && len(t.locks) == 0 {
			t.engine.finishTxn(t, true)
			t.engine.roPool.Put(t)
			return nil
		}
		t.engine.locks.releaseAll(t)
		t.engine.finishTxn(t, true)
		return nil
	case TxnCommitted:
		t.mu.Unlock()
		return ErrTxnDone
	default:
		t.mu.Unlock()
		return ErrTxnAborted
	}
}

// Rollback aborts the transaction, undoing all of its effects and releasing
// its locks. Rolling back an already-finished transaction is an error except
// for the already-aborted case, which is a no-op (deadlock victims arrive
// here pre-aborted).
func (t *Txn) Rollback() error {
	t.mu.Lock()
	if t.state == TxnCommitted {
		t.mu.Unlock()
		return ErrTxnDone
	}
	if t.state == TxnAborted {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	t.rollbackLocked()
	return nil
}

// rollbackLocked applies the undo log in reverse and releases locks.
func (t *Txn) rollbackLocked() {
	t.mu.Lock()
	if t.state == TxnAborted || t.state == TxnCommitted {
		t.mu.Unlock()
		return
	}
	t.state = TxnAborted
	undo := t.undo
	t.undo = nil
	t.mu.Unlock()
	t.engine.walAbort(t)

	for i := len(undo) - 1; i >= 0; i-- {
		rec := undo[i]
		switch rec.kind {
		case undoInsert:
			rec.table.deleteRowPhysical(rec.rowID)
		case undoDelete:
			rec.table.insertRowPhysical(rec.rowID, rec.before)
		case undoUpdate:
			rec.table.updateRowPhysical(rec.rowID, rec.before)
		}
	}
	// Dirty-writer marks drop only after the undo images are back in place,
	// so optimistic readers never observe the aborted transaction's writes.
	t.releaseWrites()
	t.engine.locks.releaseAll(t)
	t.engine.finishTxn(t, false)
}

// String identifies the transaction for diagnostics.
func (t *Txn) String() string {
	return fmt.Sprintf("txn(%d)", t.id)
}
