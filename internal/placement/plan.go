package placement

import "sort"

// MachineView is one live machine as the planner sees it: its effective
// load utilisation and the set of databases it hosts.
type MachineView struct {
	// ID is the machine identifier.
	ID string
	// Util is the machine's dominant-dimension utilisation in [0,1+],
	// computed from effective loads (observed where available, declared
	// reservations otherwise).
	Util float64
	// Hosts is the set of databases with a replica on this machine.
	Hosts map[string]bool
}

// TenantView is one tenant as the planner sees it: its sampled signal plus
// the cluster facts the policy needs (current replica set, whether an
// Algorithm 1 copy is already in flight).
type TenantView struct {
	// Signal is the tenant's sampled SLA state.
	Signal TenantSignal
	// Replicas is the tenant's current replica machine set.
	Replicas []string
	// Copying reports an in-flight Algorithm 1 copy for this tenant; the
	// planner never stacks a second degree change on top of one.
	Copying bool
}

// ActionKind enumerates the planner's replica-degree actions. Migrations
// are planned separately by the load-aware rebalancer, which shares its
// candidate selection with this planner in the core package.
type ActionKind string

// The degree-changing action kinds.
const (
	// Grow adds one replica of DB on machine To via an Algorithm 1 copy.
	Grow ActionKind = "grow"
	// Shrink retires DB's replica on machine From.
	Shrink ActionKind = "shrink"
	// Migrate moves DB's replica From→To (copy then retire). Emitted by
	// the core rebalancer, not by Plan; declared here so reports and
	// metrics share one vocabulary.
	Migrate ActionKind = "migrate"
)

// Action is one planned replica-degree change.
type Action struct {
	// Kind is the action kind.
	Kind ActionKind `json:"kind"`
	// DB is the database acted on.
	DB string `json:"db"`
	// From is the machine losing a replica (shrink, migrate).
	From string `json:"from,omitempty"`
	// To is the machine gaining a replica (grow, migrate).
	To string `json:"to,omitempty"`
	// Reason is a one-line human explanation ("hot: mean latency 9.1ms
	// vs 10ms bound").
	Reason string `json:"reason,omitempty"`
}

// PlanConfig parameterises one planning round.
type PlanConfig struct {
	// Classifier tunes the hot/warm/cold thresholds.
	Classifier ClassifierConfig
	// Budget bounds per-tenant replica degrees.
	Budget Budget
	// MaxActions caps the number of actions emitted per round; zero
	// selects 4. The loop is level-triggered — anything deferred is
	// re-planned next round from fresh signals.
	MaxActions int
}

// PlanResult is one planning round's output: the actions to execute and
// the class assigned to every tenant (for metrics and the /placementz
// report).
type PlanResult struct {
	// Actions are the planned degree changes, at most MaxActions.
	Actions []Action
	// Classes maps each tenant to its assigned class.
	Classes map[string]Class
	// Targets maps each tenant to its budget-clamped target degree.
	Targets map[string]int
}

// Plan runs one round of the grow/shrink policy over every tenant. It is
// deterministic: tenants are considered hottest-first (then by name), grow
// targets are the lowest-utilisation live machine not already hosting the
// tenant, and shrink victims are the highest-utilisation hosting machine.
// Tenants with an in-flight copy, no evidence, or a degree already at
// target produce no action.
func Plan(tenants []TenantView, machines []MachineView, cfg PlanConfig) PlanResult {
	maxActions := cfg.MaxActions
	if maxActions <= 0 {
		maxActions = 4
	}
	res := PlanResult{
		Classes: make(map[string]Class, len(tenants)),
		Targets: make(map[string]int, len(tenants)),
	}

	ordered := append([]TenantView{}, tenants...)
	for i := range ordered {
		res.Classes[ordered[i].Signal.DB] = Classify(ordered[i].Signal, cfg.Classifier)
	}
	sort.Slice(ordered, func(i, j int) bool {
		ci, cj := res.Classes[ordered[i].Signal.DB], res.Classes[ordered[j].Signal.DB]
		if ci != cj {
			return ci > cj // hot before warm before cold
		}
		return ordered[i].Signal.DB < ordered[j].Signal.DB
	})

	// Track utilisation deltas as actions are planned so one round does
	// not pile every grow onto the same momentarily-coldest machine.
	util := make(map[string]float64, len(machines))
	byID := make(map[string]MachineView, len(machines))
	for _, m := range machines {
		util[m.ID] = m.Util
		byID[m.ID] = m
	}

	for _, t := range ordered {
		db := t.Signal.DB
		class := res.Classes[db]
		target := cfg.Budget.Target(db, class, len(t.Replicas))
		res.Targets[db] = target
		if len(res.Actions) >= maxActions || t.Copying {
			continue
		}
		switch {
		case target > len(t.Replicas):
			to, ok := coldestNonHosting(db, byID, util)
			if !ok {
				continue
			}
			res.Actions = append(res.Actions, Action{
				Kind: Grow, DB: db, To: to,
				Reason: growReason(t.Signal, class),
			})
			util[to] += growCost(t, util)
		case target < len(t.Replicas) && len(t.Replicas) > 1:
			from, ok := hottestHosting(t.Replicas, util)
			if !ok {
				continue
			}
			res.Actions = append(res.Actions, Action{
				Kind: Shrink, DB: db, From: from,
				Reason: shrinkReason(t.Signal),
			})
		}
	}
	return res
}

// coldestNonHosting picks the lowest-utilisation live machine without a
// replica of db, breaking ties by ID for determinism.
func coldestNonHosting(db string, machines map[string]MachineView, util map[string]float64) (string, bool) {
	best, found := "", false
	for id, m := range machines {
		if m.Hosts[db] {
			continue
		}
		if !found || util[id] < util[best] || (util[id] == util[best] && id < best) {
			best, found = id, true
		}
	}
	return best, found
}

// hottestHosting picks the highest-utilisation machine out of the
// tenant's replica set, breaking ties by ID.
func hottestHosting(replicas []string, util map[string]float64) (string, bool) {
	best, found := "", false
	for _, id := range replicas {
		if _, ok := util[id]; !ok {
			continue // not a live machine this round
		}
		if !found || util[id] > util[best] || (util[id] == util[best] && id < best) {
			best, found = id, true
		}
	}
	return best, found
}

// growCost estimates the utilisation a new replica adds to its target:
// the tenant's mean per-replica share of its current hosts' load, floored
// at a nominal footprint. Only used to spread same-round grows.
func growCost(t TenantView, util map[string]float64) float64 {
	const nominal = 0.05
	if len(t.Replicas) == 0 {
		return nominal
	}
	sum := 0.0
	for _, id := range t.Replicas {
		sum += util[id]
	}
	cost := sum / float64(len(t.Replicas)) / float64(len(t.Replicas))
	if cost < nominal {
		cost = nominal
	}
	return cost
}

func growReason(s TenantSignal, class Class) string {
	if !s.Compliant {
		return "hot: SLA violating"
	}
	if class == Hot && s.SLA.MaxMeanLatency > 0 {
		return "hot: latency near declared ceiling"
	}
	return "under replica floor"
}

func shrinkReason(s TenantSignal) string {
	if s.SLA.MinThroughput > 0 {
		return "cold: offered load far under declared floor"
	}
	return "over replica budget"
}
