package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

// TestPoolStatsNeverTorn drives the buffer pool from many goroutines while
// concurrent readers snapshot Stats(). Every Get is exactly one hit or one
// miss, so the invariants are exact: totals are monotone, never exceed the
// number of issued accesses, and at the end equal them precisely. Run under
// -race by `make race` / `make vet`.
func TestPoolStatsNeverTorn(t *testing.T) {
	const goroutines = 8
	const perG = 3000
	p := NewBufferPool(64, 0)
	load := func() []byte { return encodePage(nil) }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: snapshots must be coherent while writers are mid-flight.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastHits, lastMisses uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := p.Stats()
				if s.Hits < lastHits || s.Misses < lastMisses {
					t.Errorf("counters went backwards: %+v after hits=%d misses=%d", s, lastHits, lastMisses)
					return
				}
				if total := s.Hits + s.Misses; total > goroutines*perG {
					t.Errorf("total accesses %d exceeds issued %d", total, goroutines*perG)
					return
				}
				if hr := s.HitRate(); hr < 0 || hr > 1 {
					t.Errorf("hit rate %v out of range", hr)
					return
				}
				lastHits, lastMisses = s.Hits, s.Misses
			}
		}()
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := PageKey{Table: fmt.Sprintf("t%d", i%4), Page: i % 128}
				if _, err := p.Get(key, load); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := p.Stats()
	if got := s.Hits + s.Misses; got != goroutines*perG {
		t.Fatalf("final hits+misses = %d, want exactly %d", got, goroutines*perG)
	}
}

// TestEngineStatsCommitAbortExact checks the engine-level pair: with known
// numbers of committed and rolled-back transactions run concurrently, the
// final commit/abort counts are exact and intermediate snapshots coherent.
func TestEngineStatsCommitAbortExact(t *testing.T) {
	e := NewEngine(DefaultConfig())
	if err := e.CreateDatabase("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	base := e.Stats() // the DDL above already committed some transactions

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tx, err := e.Begin("app")
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				if _, err := tx.Exec("INSERT INTO t VALUES (?, ?)", NewInt(int64(g*perG+i)), NewInt(0)); err != nil {
					t.Errorf("insert: %v", err)
					_ = tx.Rollback()
					return
				}
				if i%2 == 0 {
					if err := tx.Commit(); err != nil {
						t.Errorf("commit: %v", err)
					}
				} else {
					if err := tx.Rollback(); err != nil {
						t.Errorf("rollback: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := e.Stats()
	wantCommits := base.Commits + goroutines*perG/2
	wantAborts := base.Aborts + goroutines*perG/2
	if s.Commits != wantCommits || s.Aborts != wantAborts {
		t.Fatalf("commits=%d aborts=%d, want %d and %d", s.Commits, s.Aborts, wantCommits, wantAborts)
	}
}
