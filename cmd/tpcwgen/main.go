// Command tpcwgen generates a TPC-W database as SQL text on stdout —
// useful for inspecting the evaluation workload's data, or loading it into
// any SQL system.
//
//	tpcwgen -size 200 -seed 42 > tpcw.sql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
)

// sqlWriter implements tpcw.DB by rendering every statement to a writer.
type sqlWriter struct{ w *bufio.Writer }

func (s sqlWriter) Begin() (tpcw.Txn, error) { return sqlTxn{w: s.w}, nil }

type sqlTxn struct{ w *bufio.Writer }

func (t sqlTxn) Exec(sql string, params ...sqldb.Value) (*sqldb.Result, error) {
	// Substitute parameters positionally; the generator only uses literals.
	for _, p := range params {
		sql = strings.Replace(sql, "?", p.String(), 1)
	}
	if _, err := t.w.WriteString(sql); err != nil {
		return nil, err
	}
	if _, err := t.w.WriteString(";\n"); err != nil {
		return nil, err
	}
	return &sqldb.Result{}, nil
}

func (t sqlTxn) Commit() error   { return t.w.Flush() }
func (t sqlTxn) Rollback() error { return nil }

func main() {
	size := flag.Float64("size", 200, "nominal database size in MB")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	scale := tpcw.ScaleForMB(*size, *seed)
	fmt.Fprintf(w, "-- TPC-W database, ~%.0f MB (%d items, %d customers, %d orders), seed %d\n",
		*size, scale.Items, scale.Customers, scale.Orders, *seed)
	if err := tpcw.Load(sqlWriter{w: w}, scale); err != nil {
		log.Fatal(err)
	}
}
