package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/core"
	"sdp/internal/history"
	"sdp/internal/netsim"
	"sdp/internal/obs"
	"sdp/internal/placement"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
	"sdp/internal/tpcw"
	"sdp/internal/wal"
)

// ChaosConfig controls one chaos soak run: TPC-W traffic against a
// replicated WAL-backed cluster while a seeded fault scheduler injects
// network faults (drops, lost replies, duplicated deliveries, latency,
// asymmetric partitions) and machine crashes — including crash-at-phase
// kills armed on 2PC PREPARE deliveries. Identical Seed+Duration+Clients
// reproduce the same fault schedule, so a failing run is replayable.
type ChaosConfig struct {
	// Seed drives the network PRNG, the fault scheduler, and the workload.
	Seed int64
	// Duration is how long faulted traffic runs (excludes load and final
	// settling). Zero defaults to 10s, or 2s with Quick.
	Duration time.Duration
	// Clients is the number of concurrent TPC-W sessions (default 4).
	Clients int
	// Quick shrinks the default duration for CI smoke runs.
	Quick bool
	// Controllers is the number of replicated cluster-controller replicas
	// (default 3); the scheduler then also kills and restarts controllers —
	// including leader kills armed to fire mid-2PC and mid-replica-copy —
	// and the invariant check requires the surviving replicas' control
	// state machines to converge. Negative runs the paper's original
	// single process-pair controller with no controller chaos.
	Controllers int
	// Placement additionally runs the adaptive provisioning controller
	// during the soak: an SLA monitor feeds the decision loop, which grows,
	// shrinks, and migrates replicas while the scheduler crashes machines
	// and kills controller leaders under it. The invariants must hold with
	// the loop's Algorithm 1 copies racing the injected faults.
	Placement bool
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
		if c.Quick {
			c.Duration = 2 * time.Second
		}
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Controllers == 0 {
		c.Controllers = 3
	} else if c.Controllers < 0 {
		c.Controllers = 0
	}
	return c
}

// ChaosReport summarises a chaos run: traffic outcomes, the fault schedule
// that was actually injected, the controller's failure handling counters,
// and — the point of the exercise — the invariant violations found after
// the network quiesced (empty means the run passed).
type ChaosReport struct {
	Seed     int64
	Duration time.Duration

	// Traffic.
	Committed uint64
	Aborted   uint64
	Rejected  uint64
	Fatal     uint64

	// Injected faults.
	Crashes        int
	PhaseCrashes   int // crash-at-PREPARE kills
	Restarts       int
	Partitions     int
	NetCalls       uint64
	Dropped        uint64
	ReplyLost      uint64
	Duplicated     uint64
	PartitionDrops uint64

	// Controller chaos (Controllers > 0 only).
	CtlKills         int // controller replicas killed (leader or follower)
	CtlPhaseKills    int // leader kills armed on a 2PC PREPARE delivery
	CtlMidCopyKills  int // leader kills armed on an Algorithm 1 copy delivery
	CtlRestarts      int
	CtlElections     uint64 // consensus elections started during the run
	CtlLeaderChanges uint64 // distinct leadership changes observed

	// Adaptive placement during the soak (Placement runs only).
	Placement         bool
	PlacementGrows    uint64
	PlacementShrinks  uint64
	PlacementMigrates uint64

	// Controller failure handling.
	PrepareTimeouts uint64
	CommitTimeouts  uint64
	PresumedAborts  uint64
	Retries         uint64
	DegradedReads   uint64
	BgResolved      uint64

	// Violations lists every invariant breach: a serialization-graph
	// cycle, replica divergence, or leaked locks. Empty means the run
	// passed.
	Violations []string
	// FatalErrors samples the first few errors classified as fatal, for
	// diagnosing failing seeds without a debugger.
	FatalErrors []string
}

// Passed reports whether the run satisfied every invariant.
func (r *ChaosReport) Passed() bool { return len(r.Violations) == 0 }

// WriteText renders the report for terminal output.
func (r *ChaosReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "chaos seed=%d duration=%s\n", r.Seed, r.Duration)
	fmt.Fprintf(w, "  traffic:  %d committed, %d aborted, %d rejected, %d fatal\n",
		r.Committed, r.Aborted, r.Rejected, r.Fatal)
	fmt.Fprintf(w, "  faults:   %d crashes (%d at PREPARE), %d restarts, %d partitions; %d calls: %d dropped, %d replies lost, %d duplicated, %d refused\n",
		r.Crashes, r.PhaseCrashes, r.Restarts, r.Partitions,
		r.NetCalls, r.Dropped, r.ReplyLost, r.Duplicated, r.PartitionDrops)
	fmt.Fprintf(w, "  handling: %d prepare timeouts, %d commit timeouts, %d presumed aborts, %d retries, %d degraded reads, %d background resolutions\n",
		r.PrepareTimeouts, r.CommitTimeouts, r.PresumedAborts, r.Retries, r.DegradedReads, r.BgResolved)
	if r.CtlKills > 0 || r.CtlRestarts > 0 || r.CtlElections > 0 {
		fmt.Fprintf(w, "  control:  %d controller kills (%d at PREPARE, %d mid-copy), %d restarts, %d elections, %d leader changes\n",
			r.CtlKills, r.CtlPhaseKills, r.CtlMidCopyKills, r.CtlRestarts, r.CtlElections, r.CtlLeaderChanges)
	}
	if r.Placement {
		fmt.Fprintf(w, "  placement: %d grows, %d shrinks, %d migrates under fault injection\n",
			r.PlacementGrows, r.PlacementShrinks, r.PlacementMigrates)
	}
	if r.Passed() {
		fmt.Fprintf(w, "  invariants: serializable, replicas converged, no leaked locks\n")
		return
	}
	fmt.Fprintf(w, "  VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "    - %s\n", v)
	}
}

// chaosClassify maps chaos-run errors onto TPC-W accounting: rejections
// stay rejections, every transient failure mode the fault layer can produce
// (network faults, timeouts, machine failures, an engine closing mid-call)
// is a clean abort the client retries, and anything else is fatal.
func chaosClassify(err error) tpcw.ErrorClass {
	switch {
	case core.IsRejection(err):
		return tpcw.ClassRejected
	case errors.Is(err, core.ErrNotLeader), errors.Is(err, core.ErrNoQuorum):
		// Controller failover in progress: the data path refuses new
		// transactions until a leader holds the lease again. A real
		// application server backs off rather than hammering Begin, so
		// sleep a hair — otherwise the session loop burns the whole soak
		// spinning on the refused Begin at millions of aborts per second.
		time.Sleep(200 * time.Microsecond)
		return tpcw.ClassAborted
	case core.IsRetryable(err), errors.Is(err, sqldb.ErrEngineClosed):
		return tpcw.ClassAborted
	default:
		return tpcw.DefaultClassifier(err)
	}
}

// RunChaos executes one chaos soak run and returns its report. The run only
// errors on setup problems; invariant breaches are reported in
// ChaosReport.Violations so the caller can print the seed and fail.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	rec := history.NewRecorder()
	reg := obs.NewRegistry()
	net := netsim.New(cfg.Seed, reg)

	engineCfg := sqldb.DefaultConfig()
	engineCfg.LockTimeout = 100 * time.Millisecond
	// The placement soak feeds an SLA monitor so the adaptive controller
	// has live signals to act on; windows are coarse because chaos-run
	// throughput swings wildly and the loop should chase sustained state,
	// not fault transients.
	var mon *sla.Monitor
	if cfg.Placement {
		mon = sla.NewMonitor(reg, sla.MonitorOptions{Window: 250 * time.Millisecond})
	}
	// Conservative + Option 1 is the paper's always-serializable pairing:
	// under it every surviving history must be one-copy serializable no
	// matter what the network does — which is exactly what we assert.
	c := core.NewCluster("chaos", core.Options{
		ReadOption:   core.ReadOption1,
		AckMode:      core.Conservative,
		Replicas:     2,
		EngineConfig: engineCfg,
		Recorder:     rec,
		Metrics:      reg,
		SLAMonitor:   mon,
		WAL:          &wal.Config{},
		Network:      net,
		CallTimeout:  200 * time.Millisecond,
		RetryLimit:   6,
		RetryBackoff: 500 * time.Microsecond,
		// Replicated control plane: consensus traffic rides the same
		// faulted network as the data path, and the scheduler kills
		// controller replicas on top of everything else.
		Controllers:               cfg.Controllers,
		ControllerSeed:            cfg.Seed,
		ControllerElectionTimeout: 40 * time.Millisecond,
	})
	if _, err := c.AddMachines(3); err != nil {
		return nil, err
	}
	if err := c.CreateDatabase("app"); err != nil {
		return nil, err
	}
	db := clusterDB{c: c, db: "app"}
	scale := tpcw.SmallScale(cfg.Seed)
	if err := tpcw.Load(db, scale); err != nil {
		return nil, err
	}
	rec.Reset() // record only the faulted concurrent workload

	report := &ChaosReport{Seed: cfg.Seed, Duration: cfg.Duration}
	var fatalMu sync.Mutex
	classify := func(err error) tpcw.ErrorClass {
		class := chaosClassify(err)
		if class == tpcw.ClassFatal {
			fatalMu.Lock()
			if len(report.FatalErrors) < 8 {
				report.FatalErrors = append(report.FatalErrors, err.Error())
			}
			fatalMu.Unlock()
		}
		return class
	}
	client := &tpcw.Client{
		DB:       db,
		Mix:      tpcw.OrderingMix,
		Workload: tpcw.NewWorkload(scale),
		Classify: classify,
	}

	// The adaptive controller soaks alongside the fault schedule: its
	// grows/shrinks/migrates ride the same faulted network and race the
	// scheduler's crashes and leader kills. A denied or orphaned action is
	// fine — the loop is level-triggered — but no schedule may break the
	// end-of-run invariants.
	var ctl *core.AdaptiveController
	if cfg.Placement {
		report.Placement = true
		mon.Track("app", sla.SLA{
			MinThroughput:     1,
			MaxRejectFraction: 0.95,
			MaxMeanLatency:    2 * time.Millisecond,
		})
		ctl = c.NewAdaptiveController(core.AdaptiveConfig{
			Interval:           100 * time.Millisecond,
			Budget:             placement.Budget{MinReplicas: 2, MaxReplicas: 3},
			MaxConcurrentMoves: 1,
		})
		ctl.Start()
	}

	// Traffic and the fault scheduler run side by side for the duration.
	var st tpcw.Stats
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st = client.RunConcurrent(cfg.Clients, cfg.Duration, cfg.Seed)
	}()
	sched := newChaosScheduler(c, net, cfg.Seed, report)
	sched.run(cfg.Duration)
	wg.Wait()

	// Settle: perfect network, every machine live and caught up, every
	// out-of-band 2PC resolution delivered. The decision loop stops (and
	// its in-flight copies drain) before the scheduler's final restore, so
	// the invariant checks see a cluster no one is still reshaping.
	net.Quiesce()
	if ctl != nil {
		ctl.Stop()
		report.PlacementGrows, report.PlacementShrinks, report.PlacementMigrates = ctl.Actions()
	}
	sched.restoreAll()
	c.DrainResolvers()

	report.Committed = st.Committed
	report.Aborted = st.Aborted
	report.Rejected = st.Rejected
	report.Fatal = st.Fatal
	report.NetCalls = reg.Counter("netsim_calls_total", "").Value()
	report.Dropped = reg.Counter("netsim_dropped_total", "").Value()
	report.ReplyLost = reg.Counter("netsim_reply_lost_total", "").Value()
	report.Duplicated = reg.Counter("netsim_duplicated_total", "").Value()
	report.PartitionDrops = reg.Counter("netsim_partition_refused_total", "").Value()
	report.PrepareTimeouts = reg.CounterVec("twopc_timeout_total", "", "phase").With("prepare").Value()
	report.CommitTimeouts = reg.CounterVec("twopc_timeout_total", "", "phase").With("commit").Value()
	report.PresumedAborts = reg.Counter("core_2pc_presumed_abort_total", "").Value()
	report.DegradedReads = reg.Counter("core_read_route_degraded_total", "").Value()
	for _, op := range []string{"begin", "exec", "prepare", "commit", "commit1p", "rollback"} {
		report.Retries += reg.CounterVec("core_net_retry_total", "", "op").With(op).Value()
	}
	for _, res := range []string{"delivered", "machine_failed", "abandoned"} {
		report.BgResolved += reg.CounterVec("core_2pc_background_resolution_total", "", "result").With(res).Value()
	}
	report.CtlElections = reg.Counter("consensus_elections_total", "").Value()
	report.CtlLeaderChanges = reg.Counter("consensus_leader_changes_total", "").Value()
	if st.Fatal > 0 {
		report.Violations = append(report.Violations,
			fmt.Sprintf("%d fatal client errors (unclassified failure surfaced to the application): %s",
				st.Fatal, strings.Join(report.FatalErrors, "; ")))
	}

	checkChaosInvariants(c, rec, report)
	if len(report.Violations) > 0 && os.Getenv("SDP_CHAOS_DEBUG") == "1" {
		reps, _ := c.Replicas("app")
		fmt.Fprintf(os.Stderr, "DEBUG final replicas: %v\n", reps)
		for _, ev := range reg.Trace().Events() {
			interesting := ev.Scope == "copy" || ev.Scope == "recovery" || ev.Scope == "placement" ||
				(ev.Scope == "2pc" && strings.HasPrefix(ev.Phase, "takeover")) ||
				(ev.Scope == "2pc" && strings.HasPrefix(ev.Phase, "resolve")) ||
				(ev.Scope == "2pc" && ev.Phase == "presumed_abort")
			if interesting {
				fmt.Fprintf(os.Stderr, "DEBUG %s %s %s %s %s\n", ev.Time.Format("15:04:05.000"), ev.Scope, ev.ID, ev.Phase, ev.Detail)
			}
		}
	}
	return report, nil
}

// chaosScheduler injects faults on a deterministic schedule drawn from its
// own PRNG (separate from the network's per-delivery PRNG, so the schedule
// does not depend on traffic volume).
type chaosScheduler struct {
	c      *core.Cluster
	net    *netsim.Network
	rng    *rand.Rand
	report *ChaosReport

	// At most one machine is down at a time, so the database always keeps
	// at least one live replica (2 replicas on 3 machines).
	down        string
	crashArmed  *atomic.Bool // pending crash-at-PREPARE hook, nil if none
	partitioned string       // machine behind a controller-link partition

	// At most one controller kill is outstanding at a time, so a
	// 3-replica control plane always regains its quorum (a kill costs
	// availability only for the failover window, never indefinitely).
	ctlDown    bool         // a controller kill is outstanding (fired or armed)
	ctlArmed   *atomic.Bool // pending armed leader kill, nil if none
	ctlArmedOp string       // delivery op the armed kill triggers on
}

func newChaosScheduler(c *core.Cluster, net *netsim.Network, seed int64, report *ChaosReport) *chaosScheduler {
	return &chaosScheduler{
		c:      c,
		net:    net,
		rng:    rand.New(rand.NewSource(seed ^ 0x5eed5eed)),
		report: report,
	}
}

// run injects faults until the deadline.
func (s *chaosScheduler) run(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		time.Sleep(time.Duration(10+s.rng.Intn(30)) * time.Millisecond)
		switch p := s.rng.Intn(100); {
		case p < 25:
			// Network-wide low-grade lossiness.
			s.net.SetDefaults(netsim.Faults{
				DropProb:      0.04 * s.rng.Float64(),
				ReplyLossProb: 0.03 * s.rng.Float64(),
				DupProb:       0.10 * s.rng.Float64(),
				Latency:       time.Duration(s.rng.Intn(2)) * time.Millisecond,
				Jitter:        time.Duration(1+s.rng.Intn(2)) * time.Millisecond,
			})
		case p < 40:
			s.net.SetDefaults(netsim.Faults{})
		case p < 55:
			s.togglePartition()
		case p < 78:
			s.toggleCrash()
		case p < 93:
			s.toggleCtlCrash()
		default:
			// Quiet tick.
		}
	}
}

// togglePartition heals the current controller-link partition or cuts a new
// one (asymmetric: only controller→machine).
func (s *chaosScheduler) togglePartition() {
	if s.partitioned != "" {
		s.net.Heal(s.c.Endpoint(), s.partitioned)
		s.partitioned = ""
		return
	}
	ids := s.c.MachineIDs()
	victim := ids[s.rng.Intn(len(ids))]
	if victim == s.down {
		return
	}
	s.net.Partition(s.c.Endpoint(), victim)
	s.partitioned = victim
	s.report.Partitions++
}

// toggleCrash restarts the currently down machine, or crashes a new victim —
// immediately, or armed to fire in the window right after the victim's next
// PREPARE ack (the in-doubt 2PC participant case).
func (s *chaosScheduler) toggleCrash() {
	if s.down != "" {
		s.restartDown()
		return
	}
	// Only inject a new crash at full replica strength: an earlier
	// recovery may have failed under active faults (the copy path crosses
	// faulted links by design), and crashing another machine then could
	// take the database's last replica. Retry the recovery instead.
	if reps, err := s.c.Replicas("app"); err != nil || len(reps) < 2 {
		s.c.RecoverDatabases([]string{"app"}, 1)
		return
	}
	ids := s.c.MachineIDs()
	victim := ids[s.rng.Intn(len(ids))]
	if victim == s.partitioned {
		return
	}
	s.down = victim
	if s.rng.Intn(100) < 30 {
		// Crash-at-phase: the kill fires from the delivery hook, in the
		// exact "prepared but no COMMIT yet" window.
		armed := &atomic.Bool{}
		armed.Store(true)
		s.crashArmed = armed
		cl := s.c
		s.net.OnDeliver(func(ci netsim.CallInfo) {
			if ci.Op == "prepare" && ci.To == victim && armed.CompareAndSwap(true, false) {
				_, _ = cl.FailMachine(victim)
			}
		})
		s.report.PhaseCrashes++
		s.report.Crashes++
		return
	}
	if _, err := s.c.FailMachine(victim); err != nil {
		s.down = ""
		return
	}
	s.report.Crashes++
}

// toggleCtlCrash restores the killed controller replica, or kills the
// consensus leader: immediately, or armed to fire from the delivery hook in
// the window right after a 2PC PREPARE (commits in transit) or mid
// Algorithm 1 copy (a copy in flight the next leader must abort).
func (s *chaosScheduler) toggleCtlCrash() {
	if len(s.c.ControllerIDs()) == 0 {
		return // legacy single-controller mode
	}
	if s.ctlDown {
		s.restoreControllers()
		return
	}
	if leader, _ := s.c.LeaderController(); leader == "" {
		return // mid-election; let the control plane settle first
	}
	switch s.rng.Intn(3) {
	case 0:
		// Immediate leader kill, whatever the traffic is doing.
		if _, err := s.c.KillLeaderController(); err != nil {
			return
		}
	case 1:
		s.armCtlKill("prepare")
		s.report.CtlPhaseKills++
	default:
		s.armCtlKill("copy_apply")
		s.report.CtlMidCopyKills++
	}
	s.ctlDown = true
	s.report.CtlKills++
}

// armCtlKill installs a delivery hook that kills the consensus leader right
// after the next delivery of the given op. The kill runs on a fresh
// goroutine: it blocks on control-plane cleanup, which must not stall the
// delivering path.
func (s *chaosScheduler) armCtlKill(op string) {
	armed := &atomic.Bool{}
	armed.Store(true)
	s.ctlArmed = armed
	s.ctlArmedOp = op
	cl := s.c
	s.net.OnDeliver(func(ci netsim.CallInfo) {
		if ci.Op == op && armed.CompareAndSwap(true, false) {
			go func() { _, _ = cl.KillLeaderController() }()
		}
	})
}

// restoreControllers disarms any pending leader kill and restarts every
// stopped controller replica.
func (s *chaosScheduler) restoreControllers() {
	if s.ctlArmed != nil {
		if s.ctlArmed.CompareAndSwap(true, false) {
			// Never fired: no delivery of the armed op happened.
			s.report.CtlKills--
			switch s.ctlArmedOp {
			case "prepare":
				s.report.CtlPhaseKills--
			default:
				s.report.CtlMidCopyKills--
			}
		}
		s.ctlArmed = nil
		s.ctlArmedOp = ""
	}
	s.report.CtlRestarts += s.c.RestartControllers()
	s.ctlDown = false
}

// restartDown disarms any pending phase crash and, if the victim actually
// died, restarts it and catches its databases up.
func (s *chaosScheduler) restartDown() {
	victim := s.down
	if s.crashArmed != nil {
		s.crashArmed.Store(false)
		s.crashArmed = nil
	}
	m, err := s.c.Machine(victim)
	if err != nil {
		s.down = ""
		return
	}
	if !m.Failed() {
		// The armed crash never fired (no PREPARE reached the victim).
		s.down = ""
		s.report.Crashes--
		if s.report.PhaseCrashes > 0 {
			s.report.PhaseCrashes--
		}
		return
	}
	if _, err := s.c.RestartMachine(victim); err != nil {
		return // stays down; restoreAll retries at the end
	}
	s.c.RecoverDatabases(m.Engine().Databases(), 1)
	s.down = ""
	s.report.Restarts++
}

// restoreAll brings the cluster back to full strength after the run: heals
// the partition bookkeeping (the network is already quiesced), restarts any
// machine still down, and revives killed controller replicas.
func (s *chaosScheduler) restoreAll() {
	s.partitioned = ""
	if s.ctlDown {
		s.restoreControllers()
	} else {
		// An armed kill whose goroutine fired right before quiesce may
		// have stopped a controller after the last scheduler tick.
		s.report.CtlRestarts += s.c.RestartControllers()
	}
	if len(s.c.ControllerIDs()) > 0 {
		// Let the restarted control plane finish its failover before any
		// recovery work: a leader whose adoption is still running sweeps
		// up fresh copies as failover orphans and aborts them.
		_ = s.c.WaitControllerSettled(5 * time.Second)
		// A controller kill near the end of the run leaves commits parked
		// in the pair mirror until that takeover resolves them; parked
		// commits hold locks that would both fail the leaked-lock
		// invariant and block the recovery copy below.
		deadline := time.Now().Add(5 * time.Second)
		for s.c.InTransit() > 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if s.down != "" {
		s.restartDown()
	}
	// With the network quiesced, a recovery that failed under faults
	// mid-run succeeds now; bring the database back to full strength so
	// the convergence check compares a complete replica set. Retried
	// because a straggling failover can still abort the first attempt.
	deadline := time.Now().Add(5 * time.Second)
	for {
		reps, err := s.c.Replicas("app")
		if err != nil || len(reps) >= 2 || time.Now().After(deadline) {
			break
		}
		s.c.RecoverDatabases([]string{"app"}, 1)
		time.Sleep(2 * time.Millisecond)
	}
}

// checkChaosInvariants verifies, over the settled cluster, the three
// properties no fault schedule may break: one-copy serializability of the
// recorded history, byte-identical replicas, and zero leaked locks.
func checkChaosInvariants(c *core.Cluster, rec *history.Recorder, report *ChaosReport) {
	if ok, cycle, g := history.Check(rec); !ok {
		report.Violations = append(report.Violations,
			"serialization graph has a cycle:\n"+g.Describe(cycle))
	}

	// With a replicated control plane, every controller replica's state
	// machine must converge to the same committed control state once the
	// network settles — divergence means the consensus log forked.
	if len(c.ControllerIDs()) > 0 {
		if err := c.WaitControllerConvergence(5 * time.Second); err != nil {
			report.Violations = append(report.Violations, err.Error())
		}
	}

	reps, err := c.Replicas("app")
	if err != nil {
		report.Violations = append(report.Violations, "replicas: "+err.Error())
		return
	}
	if len(reps) < 2 {
		report.Violations = append(report.Violations,
			fmt.Sprintf("replica set not restored: %v", reps))
	}
	var ref *core.Machine
	for _, id := range reps {
		m, merr := c.Machine(id)
		if merr != nil {
			report.Violations = append(report.Violations, merr.Error())
			continue
		}
		if locks := m.Engine().Stats().LocksHeld; locks != 0 {
			report.Violations = append(report.Violations,
				fmt.Sprintf("%s: %d locks still held after quiesce", id, locks))
		}
		if ref == nil {
			ref = m
			continue
		}
		for _, tbl := range ref.Engine().Tables("app") {
			want, werr := tableFingerprint(ref, tbl)
			got, gerr := tableFingerprint(m, tbl)
			if werr != nil || gerr != nil {
				report.Violations = append(report.Violations,
					fmt.Sprintf("dump %s: %v %v", tbl, werr, gerr))
				continue
			}
			if want != got {
				report.Violations = append(report.Violations,
					fmt.Sprintf("replica divergence on table %s between %s and %s", tbl, ref.ID(), m.ID()))
				if os.Getenv("SDP_CHAOS_DEBUG") == "1" {
					wrows := strings.Split(want, "\n")
					grows := strings.Split(got, "\n")
					wset := make(map[string]bool, len(wrows))
					for _, r := range wrows {
						wset[r] = true
					}
					gset := make(map[string]bool, len(grows))
					for _, r := range grows {
						gset[r] = true
					}
					n := 0
					for _, r := range wrows {
						if !gset[r] && n < 6 {
							fmt.Fprintf(os.Stderr, "DEBUG %s: only on %s: %s\n", tbl, ref.ID(), r)
							n++
						}
					}
					n = 0
					for _, r := range grows {
						if !wset[r] && n < 6 {
							fmt.Fprintf(os.Stderr, "DEBUG %s: only on %s: %s\n", tbl, m.ID(), r)
							n++
						}
					}
				}
			}
		}
	}
}

// tableFingerprint renders a table's full contents as an order-independent
// string for cross-replica comparison.
func tableFingerprint(m *core.Machine, tbl string) (string, error) {
	res, err := m.Engine().Exec("app", "SELECT * FROM "+tbl)
	if err != nil {
		return "", err
	}
	rows := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var b strings.Builder
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		rows = append(rows, b.String())
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n"), nil
}
