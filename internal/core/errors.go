package core

import "errors"

// Sentinel errors surfaced by the cluster controller.
var (
	// ErrRejected marks a proactive rejection: a write hit a table that is
	// currently being copied to a new replica (Algorithm 1, line 11), or a
	// database being copied at database granularity. These rejections are
	// the availability metric of the paper's SLA model.
	ErrRejected = errors.New("core: operation rejected during replica creation")

	// ErrMachineFailed is returned when an operation was routed to a
	// machine that has failed; the transaction is aborted and the client
	// should retry.
	ErrMachineFailed = errors.New("core: machine failed")

	// ErrNoDatabase is returned for operations on an unknown database.
	ErrNoDatabase = errors.New("core: no such database")

	// ErrDatabaseExists is returned when creating a database that exists.
	ErrDatabaseExists = errors.New("core: database already exists")

	// ErrNoMachine is returned when a named machine does not exist.
	ErrNoMachine = errors.New("core: no such machine")

	// ErrNoReplicas is returned when no live replica can serve a request.
	ErrNoReplicas = errors.New("core: no live replicas available")

	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("core: transaction already finished")

	// ErrCopyInProgress is returned when a second replica creation is
	// requested for a database that is already being copied.
	ErrCopyInProgress = errors.New("core: replica creation already in progress")

	// ErrCopyAborted is returned by CreateReplica when the copy was
	// abandoned because a participating machine (source or target) failed
	// mid-copy; the caller may requeue the copy onto a live target.
	ErrCopyAborted = errors.New("core: replica copy aborted by machine failure")

	// ErrPrepareTimeout is returned when a 2PC PREPARE vote did not arrive
	// within the coordinator's call deadline. The coordinator presumes
	// abort: the transaction rolls back on every participant.
	ErrPrepareTimeout = errors.New("core: 2PC prepare vote timed out; presumed abort")

	// ErrUnreachable is returned when every replica of a database is behind
	// a partitioned controller link; the client should retry after the
	// partition heals.
	ErrUnreachable = errors.New("core: all replicas unreachable from the controller")

	// ErrStaleRoute is returned when the controller routed an operation to a
	// machine whose engine no longer holds the database — the route was
	// computed concurrently with an aborted replica copy discarding its
	// half-copied destination. The transaction aborts; a retry re-routes.
	ErrStaleRoute = errors.New("core: replica route went stale")

	// ErrNotLeader is returned by a replicated control plane when the
	// addressed controller replica is not the leaseholding leader (or, on
	// the shared data path, when no replica currently holds the quorum
	// lease — the failover window between a leader's death and its
	// successor's first majority-acknowledged heartbeat). Retryable: the
	// client redirects to the leader hint or simply retries into the new
	// term.
	ErrNotLeader = errors.New("core: controller replica is not the leader")

	// ErrNoQuorum is returned when a control-plane mutation cannot commit
	// because no controller leader emerged within the proposal deadline — a
	// majority of controller replicas are dead or partitioned. The data
	// path keeps serving under existing routes; only control mutations are
	// unavailable. Retryable once quorum is restored.
	ErrNoQuorum = errors.New("core: controller quorum lost")
)
