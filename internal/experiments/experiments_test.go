package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sdp/internal/tpcw"
)

func quickCfg() Config { return Config{Quick: true, Seed: 42} }

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunTable1(quickCfg())
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	violating := 0
	for _, cell := range res.Cells {
		aggressive23 := cell.Mode.String() == "aggressive" && cell.Option != 1
		if !aggressive23 && !cell.Serializable() {
			t.Errorf("%s/%s: %d violations, want 0", cell.Mode, cell.Option, cell.Violations)
		}
		if aggressive23 && !cell.Serializable() {
			violating++
		}
	}
	if violating == 0 {
		t.Error("no aggressive option2/3 violations observed")
	}
	var buf bytes.Buffer
	res.Render().Write(&buf)
	if !strings.Contains(buf.String(), "NOT serializable") {
		t.Errorf("rendered table missing violations:\n%s", buf.String())
	}
}

func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunThroughput(tpcw.ShoppingMix, quickCfg())
	if len(res.Order) != 4 {
		t.Fatalf("series = %v", res.Order)
	}
	for _, name := range res.Order {
		for _, pt := range res.Series[name] {
			if pt.TPS <= 0 {
				t.Errorf("%s conc=%d: TPS = %v", name, pt.Concurrency, pt.TPS)
			}
			if pt.Fatal > 0 {
				t.Errorf("%s conc=%d: %d fatal client errors", name, pt.Concurrency, pt.Fatal)
			}
		}
	}
	// Shape check at the highest concurrency: no-replication fastest read
	// path, option1 >= option3 (cache locality). Allow slack: this is a
	// statistical measurement.
	last := func(name string) float64 {
		pts := res.Series[name]
		return pts[len(pts)-1].TPS
	}
	if last("option1") < last("option3")*0.8 {
		t.Errorf("option1 (%0.1f) unexpectedly slower than option3 (%0.1f)", last("option1"), last("option3"))
	}
	var buf bytes.Buffer
	res.Render("Figure 2").Write(&buf)
	if !strings.Contains(buf.String(), "option1") {
		t.Error("render missing series")
	}
}

func TestDeadlockExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunDeadlocks(tpcw.OrderingMix, quickCfg())
	if len(res.Order) != 3 {
		t.Fatalf("series = %v", res.Order)
	}
	for _, name := range res.Order {
		for _, pt := range res.Series[name] {
			if pt.Committed == 0 {
				t.Errorf("%s %0.fMB: nothing committed", name, pt.SizeMB)
			}
		}
	}
	var buf bytes.Buffer
	res.Render("Figure 5").Write(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestRecoveryExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunRecovery(quickCfg())
	if len(res.Order) != 2 {
		t.Fatalf("series = %v", res.Order)
	}
	for _, name := range res.Order {
		for _, pt := range res.Series[name] {
			if pt.RecoveredDBs == 0 {
				t.Errorf("%s threads=%d: nothing recovered", name, pt.Threads)
			}
			if pt.Fatal > 0 {
				t.Errorf("%s threads=%d: %d fatal client errors", name, pt.Threads, pt.Fatal)
			}
		}
	}
	var buf bytes.Buffer
	res.RenderRejected().Write(&buf)
	res.RenderThroughput().Write(&buf)
	if !strings.Contains(buf.String(), "Figure 8") || !strings.Contains(buf.String(), "Figure 9") {
		t.Error("renders missing figure titles")
	}
}

func TestTable2Shape(t *testing.T) {
	res := RunTable2(quickCfg())
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.MachinesUsed < row.Optimal {
			t.Errorf("skew %v: First-Fit (%d) beat the optimal (%d)", row.Skew, row.MachinesUsed, row.Optimal)
		}
		if row.MachinesUsed-row.Optimal > 2 {
			t.Errorf("skew %v: First-Fit (%d) far from optimal (%d)", row.Skew, row.MachinesUsed, row.Optimal)
		}
		if i > 0 && row.AvgSizeMB > res.Rows[i-1].AvgSizeMB+1 {
			t.Errorf("avg size rose with skew: %v -> %v", res.Rows[i-1].AvgSizeMB, row.AvgSizeMB)
		}
	}
	// Machines used must not increase with skew (smaller databases pack
	// tighter), matching the paper's 9/6/5/4/4 trend.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MachinesUsed > res.Rows[i-1].MachinesUsed {
			t.Errorf("machines rose with skew: %+v", res.Rows)
		}
	}
	var buf bytes.Buffer
	res.Render().Write(&buf)
	if !strings.Contains(buf.String(), "Skew Factor") {
		t.Error("render missing header")
	}
}

func TestWALBenchShape(t *testing.T) {
	res, err := RunWALBench(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GroupCommit) != 5 || len(res.NoGroupCommit) != 5 {
		t.Fatalf("points: group=%d nogroup=%d, want 5 each", len(res.GroupCommit), len(res.NoGroupCommit))
	}
	// The acceptance property: at >= 8 committers, group commit amortises
	// flushes across committers while the baseline pays one per commit.
	for i, pt := range res.GroupCommit {
		base := res.NoGroupCommit[i]
		if pt.Committers >= 8 && pt.FlushesPerCommit >= base.FlushesPerCommit {
			t.Errorf("%d committers: %.3f flushes/commit with group commit, %.3f without",
				pt.Committers, pt.FlushesPerCommit, base.FlushesPerCommit)
		}
	}
	if res.FastRecoveryMs <= 0 || res.FullRecoveryMs <= 0 {
		t.Fatalf("recovery timings: fast=%.2fms full=%.2fms", res.FastRecoveryMs, res.FullRecoveryMs)
	}
	if res.FastReplayed == 0 {
		t.Fatal("fast path replayed nothing")
	}
}

func TestConsensusBenchShape(t *testing.T) {
	res, err := RunConsensusBench(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CtlOps == 0 || res.CtlOpP50Us <= 0 || res.CtlOpP99Us < res.CtlOpP50Us {
		t.Fatalf("steady-state ctl latency: n=%d p50=%.1fµs p99=%.1fµs",
			res.CtlOps, res.CtlOpP50Us, res.CtlOpP99Us)
	}
	if len(res.Failovers) != 3 {
		t.Fatalf("failover samples = %d, want 3 in quick mode", len(res.Failovers))
	}
	// The acceptance property: after every leader kill the cluster resumed
	// committing — both control-plane operations and client transactions —
	// without manual intervention.
	for i, f := range res.Failovers {
		if f.CtlCommitMs <= 0 || f.TxnCommitMs <= 0 {
			t.Errorf("kill %d (%s): ctl=%.1fms txn=%.1fms", i, f.Killed, f.CtlCommitMs, f.TxnCommitMs)
		}
	}
	if res.BaselineTPS <= 0 {
		t.Fatal("no committed transactions before the first kill")
	}
	if res.RecoveredTPS <= 0 {
		t.Fatal("throughput did not recover after the last failover")
	}
}
