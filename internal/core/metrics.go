package core

import (
	"fmt"

	"sdp/internal/obs"
)

// clusterMetrics holds the controller's resolved observability instruments.
// Every instrument is looked up once at cluster construction, so the hot
// paths (read routing, write routing, 2PC) touch only wait-free atomics.
// The metric families are documented in OBSERVABILITY.md; the prefix is
// core_ for controller-owned families and sqldb_ for the per-engine
// statistics bridged into the registry by the snapshot hook.
type clusterMetrics struct {
	reg *obs.Registry

	// Transaction outcomes (Stats() reads these back).
	committed *obs.Counter
	aborted   *obs.Counter
	rejected  *obs.Counter

	// 2PC phase counters and latencies.
	prepareTotal   *obs.Counter
	voteNoTotal    *obs.Counter
	readonlyCommit *obs.Counter
	unsafePrepare  *obs.Counter
	prepareSeconds *obs.Histogram
	commitSeconds  *obs.Histogram

	// Read routing, resolved per option so routing pays one atomic add.
	readRoute1    *obs.Counter
	readRoute2    *obs.Counter
	readRoute3    *obs.Counter
	readRoutePart *obs.Counter

	// Algorithm 1 replica creation.
	copyPhase     *obs.CounterVec
	copyDump      *obs.Histogram
	copiesRunning *obs.Gauge

	// Machine-failure recovery.
	recoveryTotal   *obs.CounterVec
	recoverySeconds *obs.Histogram
	walRecovery     *obs.CounterVec

	// SLA placement (Algorithm 2 inside the cluster).
	slaProbes     *obs.Counter
	slaPlacements *obs.CounterVec

	// Failure-aware controller: deadline expiries, retries, presumed
	// aborts, degraded read routing, and out-of-band outcome resolution
	// (all zero unless a simulated network injects faults).
	twopcTimeout  *obs.CounterVec
	presumedAbort *obs.Counter
	netRetry      *obs.CounterVec
	readDegraded  *obs.Counter
	bgResolved    *obs.CounterVec

	// Gauges refreshed by the snapshot hook.
	machineUtil *obs.GaugeVec
	machineDBs  *obs.GaugeVec
	engineStat  *obs.GaugeVec
}

// newClusterMetrics resolves every instrument family on reg.
func newClusterMetrics(reg *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		reg: reg,

		committed: reg.Counter("core_txn_committed_total",
			"Distributed transactions committed (1PC read-only and 2PC)"),
		aborted: reg.Counter("core_txn_aborted_total",
			"Distributed transactions aborted, any cause"),
		rejected: reg.Counter("core_writes_rejected_total",
			"Writes proactively rejected by Algorithm 1 during replica creation (Figure 8)"),

		prepareTotal: reg.Counter("core_2pc_prepare_total",
			"2PC PREPARE rounds issued (one per read-write commit attempt)"),
		voteNoTotal: reg.Counter("core_2pc_vote_no_total",
			"2PC PREPARE rounds in which at least one participant voted no"),
		readonlyCommit: reg.Counter("core_2pc_readonly_commit_total",
			"Read-only transactions committed in one phase (no PREPARE)"),
		unsafePrepare: reg.Counter("core_2pc_unsafe_readlock_release_total",
			"PREPAREs issued while read locks are released at PREPARE under an aggressive controller with Option 2/3 — the Table 1 anomaly window"),
		prepareSeconds: reg.Histogram("core_2pc_prepare_seconds",
			"Latency of 2PC phase 1 (all participants voting)", nil),
		commitSeconds: reg.Histogram("core_2pc_commit_seconds",
			"Latency of 2PC phase 2 (commit applied on all participants)", nil),

		readRoute1: reg.CounterVec("core_read_route_total",
			"Read operations routed, by read option", "option").With("option1"),
		readRoute2:    reg.CounterVec("core_read_route_total", "", "option").With("option2"),
		readRoute3:    reg.CounterVec("core_read_route_total", "", "option").With("option3"),
		readRoutePart: reg.CounterVec("core_read_route_total", "", "option").With("partitioned"),

		copyPhase: reg.CounterVec("core_copy_phase_total",
			"Algorithm 1 replica-copy phase transitions (Figures 8-9)", "phase"),
		copyDump: reg.Histogram("core_copy_dump_seconds",
			"Duration of one table dump+restore during replica creation", nil),
		copiesRunning: reg.Gauge("core_copies_running",
			"Replica copies currently in progress"),

		recoveryTotal: reg.CounterVec("core_recovery_total",
			"Databases processed by machine-failure recovery, by result", "result"),
		recoverySeconds: reg.Histogram("core_recovery_seconds",
			"Per-database re-replication duration during recovery", nil),
		walRecovery: reg.CounterVec("wal_recovery_total",
			"Databases recovered after a machine restart, by path: fast (log replay + delta catch-up) or full (Algorithm-1 copy)", "path"),

		twopcTimeout: reg.CounterVec("twopc_timeout_total",
			"2PC deliveries that exceeded the coordinator's deadline or exhausted retries, by phase (prepare: vote missing, presumed abort; commit: decision delivery handed to a background resolver)", "phase"),
		presumedAbort: reg.Counter("core_2pc_presumed_abort_total",
			"Transactions aborted by the presumed-abort rule after a PREPARE vote timeout"),
		netRetry: reg.CounterVec("core_net_retry_total",
			"Machine-call retries after a transient network fault, by operation", "op"),
		readDegraded: reg.Counter("core_read_route_degraded_total",
			"Reads routed away from their preferred replica because the controller link to it is partitioned"),
		bgResolved: reg.CounterVec("core_2pc_background_resolution_total",
			"Out-of-band 2PC outcome deliveries after in-band delivery failed, by result", "result"),

		slaProbes: reg.Counter("core_sla_probe_total",
			"First-Fit machine probes during SLA placement (Algorithm 2)"),
		slaPlacements: reg.CounterVec("core_sla_placement_total",
			"SLA placements attempted, by result", "result"),

		machineUtil: reg.GaugeVec("core_machine_utilization",
			"Fraction of a machine's capacity reserved by SLA placement", "machine", "resource"),
		machineDBs: reg.GaugeVec("core_machine_dbs",
			"Databases hosted per machine", "machine"),
		engineStat: reg.GaugeVec("sqldb_engine_stat",
			"Per-engine DBMS counters aggregated over a cluster's machines (commits, aborts, deadlocks, pool and plan-cache activity, compiled-execution and optimistic read-path counters)", "cluster", "stat"),
	}
}

// Metrics returns the cluster's observability registry. When Options.Metrics
// is unset each cluster owns a private registry; the colo controller injects
// a shared one so that every layer of the platform reports into a single
// unified snapshot.
func (c *Cluster) Metrics() *obs.Registry { return c.metrics.reg }

// gidString renders a transaction's trace correlation ID.
func gidString(gid uint64) string { return fmt.Sprintf("gid:%d", gid) }

// readRouteCounter returns the routing counter for the configured option.
func (m *clusterMetrics) readRouteCounter(o ReadOption) *obs.Counter {
	switch o {
	case ReadOption2:
		return m.readRoute2
	case ReadOption3:
		return m.readRoute3
	default:
		return m.readRoute1
	}
}

// bridgeStats is the registry snapshot hook: it pulls every live machine's
// engine statistics and SLA reservations into gauges, so one Snapshot()
// carries the whole cluster's state — buffer-pool hit rates (Figures 2-4),
// deadlocks (Figures 5-7), and per-machine utilization (Table 2) — without
// the reader touching any engine directly.
func (c *Cluster) bridgeStats() {
	c.mu.Lock()
	ms := make([]*Machine, 0, len(c.order))
	for _, id := range c.order {
		ms = append(ms, c.machines[id])
	}
	c.mu.Unlock()

	m := c.metrics
	var commits, aborts, deadlocks uint64
	var poolHits, poolMisses, poolEvict uint64
	var planHits, planMisses uint64
	var planCompiles, compiledExecs, stmtExecs uint64
	var optHits, optRetries, optFallbacks, optConflicts uint64
	for _, mach := range ms {
		m.machineDBs.With(mach.ID()).Set(float64(mach.dbCount.Load()))
		used, capacity := mach.Used(), mach.Capacity()
		for _, res := range [...]struct {
			name      string
			used, cap float64
		}{
			{"cpu", used.CPU, capacity.CPU},
			{"memory", used.Memory, capacity.Memory},
			{"disk", used.Disk, capacity.Disk},
			{"diskbw", used.DiskBW, capacity.DiskBW},
		} {
			frac := 0.0
			if res.cap > 0 {
				frac = res.used / res.cap
			}
			m.machineUtil.With(mach.ID(), res.name).Set(frac)
		}
		if mach.Failed() {
			continue
		}
		st := mach.Engine().Stats()
		commits += st.Commits
		aborts += st.Aborts
		deadlocks += st.Deadlocks
		poolHits += st.Pool.Hits
		poolMisses += st.Pool.Misses
		poolEvict += st.Pool.Evictions
		planHits += st.PlanCache.Hits
		planMisses += st.PlanCache.Misses
		planCompiles += st.PlanCompiles
		compiledExecs += st.CompiledExecs
		stmtExecs += st.StmtExecs
		optHits += st.OptimisticHits
		optRetries += st.OptimisticRetries
		optFallbacks += st.OptimisticFallbacks
		optConflicts += st.OptimisticConflicts
	}
	set := func(stat string, v float64) { m.engineStat.With(c.name, stat).Set(v) }
	set("commits", float64(commits))
	set("aborts", float64(aborts))
	set("deadlocks", float64(deadlocks))
	set("pool_hits", float64(poolHits))
	set("pool_misses", float64(poolMisses))
	set("pool_evictions", float64(poolEvict))
	set("pool_hit_rate", ratio(poolHits, poolMisses))
	set("plan_cache_hits", float64(planHits))
	set("plan_cache_misses", float64(planMisses))
	set("plan_cache_hit_rate", ratio(planHits, planMisses))
	set("plan_compile_total", float64(planCompiles))
	set("compiled_exec_total", float64(compiledExecs))
	set("stmt_exec_total", float64(stmtExecs))
	set("readpath_optimistic_hits", float64(optHits))
	set("readpath_optimistic_retries", float64(optRetries))
	set("readpath_optimistic_fallbacks", float64(optFallbacks))
	set("readpath_optimistic_conflicts", float64(optConflicts))
}

// ratio returns hits/(hits+misses), or 0 with no accesses.
func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
