package sqldb

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"sdp/internal/obs"
)

// PageKey identifies a page across all tables of one engine.
type PageKey struct {
	Table string
	Page  int
}

// PoolStats reports buffer-pool activity counters.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits/(hits+misses), or 0 when no accesses were made.
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// poolStripeTarget is the minimum capacity (in pages) per stripe: pools
// smaller than two stripes' worth keep a single stripe and therefore exact
// global LRU order. maxPoolStripes bounds the stripe count for huge pools.
const (
	poolStripeTarget = 32
	maxPoolStripes   = 16
)

// BufferPool is a fixed-capacity LRU cache of decoded pages, one per engine.
// It models the DBMS buffer pool of the paper's MySQL instances: a hit serves
// already-decoded rows, a miss pays the decode cost of the page's disk format
// plus an optional simulated disk latency. The pool is the mechanism that
// makes the paper's read-routing options (1/2/3) perform differently — routing
// all of a database's reads to one replica keeps that replica's pool warm.
//
// The pool is sharded into lock stripes keyed by PageKey hash so concurrent
// clients do not serialise on a single mutex. Capacity is partitioned across
// stripes (each stripe runs its own LRU over its share), and the stripe count
// scales with capacity: small pools — like the ones the pool-size ablation
// experiments use — keep one stripe and exact global LRU semantics. The
// hit/miss/eviction counters are pool-global atomics and stay exact
// regardless of striping.
type BufferPool struct {
	stripes     []poolStripe
	missLatency time.Duration

	// hitMiss packs the hit (A) and miss (B) counters into one word so
	// Stats() returns a pair that was simultaneously true — a concurrent
	// reader can never observe a hit whose matching access is missing from
	// the total (see obs.Pair).
	hitMiss   obs.Pair
	evictions atomic.Uint64
}

// poolStripe is one lock-striped LRU segment of the pool.
type poolStripe struct {
	mu       sync.Mutex
	capacity int
	entries  map[PageKey]*list.Element
	lru      *list.List // front = most recently used

	_ [32]byte // pad to keep neighbouring stripe mutexes off one cache line
}

type poolEntry struct {
	key   PageKey
	slots []pageSlot
}

// poolStripeCount picks the stripe count for a capacity.
func poolStripeCount(capacity int) int {
	n := capacity / poolStripeTarget
	if n > maxPoolStripes {
		n = maxPoolStripes
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewBufferPool creates a pool holding at most capacity decoded pages.
// A capacity of 0 or less disables caching entirely (every access is a miss).
// missLatency is added to every miss to simulate disk I/O; zero disables it.
func NewBufferPool(capacity int, missLatency time.Duration) *BufferPool {
	n := 1
	if capacity > 0 {
		n = poolStripeCount(capacity)
	}
	p := &BufferPool{
		stripes:     make([]poolStripe, n),
		missLatency: missLatency,
	}
	base, extra := 0, 0
	if capacity > 0 {
		base, extra = capacity/n, capacity%n
	}
	for i := range p.stripes {
		cap := base
		if i < extra {
			cap++
		}
		p.stripes[i] = poolStripe{
			capacity: cap,
			entries:  make(map[PageKey]*list.Element),
			lru:      list.New(),
		}
	}
	return p
}

// Stripes returns the number of lock stripes (for tests and diagnostics).
func (p *BufferPool) Stripes() int { return len(p.stripes) }

// stripe maps a key to its owning stripe by FNV-1a hash.
func (p *BufferPool) stripe(key PageKey) *poolStripe {
	if len(p.stripes) == 1 {
		return &p.stripes[0]
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key.Table); i++ {
		h ^= uint64(key.Table[i])
		h *= 1099511628211
	}
	h ^= uint64(uint32(key.Page))
	h *= 1099511628211
	return &p.stripes[h%uint64(len(p.stripes))]
}

// disabled reports whether the pool caches at all.
func (p *BufferPool) disabled() bool {
	return len(p.stripes) == 1 && p.stripes[0].capacity <= 0
}

// Get returns the decoded slots for key, loading and decoding via load on a
// miss. The returned slice is shared with the pool; callers must not mutate
// it (the table layer copies rows before handing them to transactions).
func (p *BufferPool) Get(key PageKey, load func() []byte) ([]pageSlot, error) {
	s := p.stripe(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		slots := el.Value.(*poolEntry).slots
		s.mu.Unlock()
		p.hitMiss.IncA()
		return slots, nil
	}
	s.mu.Unlock()

	// Miss: decode outside the stripe mutex so concurrent misses overlap,
	// exactly as concurrent disk reads would.
	p.hitMiss.IncB()
	if p.missLatency > 0 {
		time.Sleep(p.missLatency)
	}
	encoded := load()
	slots, err := decodePage(encoded)
	if err != nil {
		return nil, err
	}

	if s.capacity <= 0 {
		return slots, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		// Raced with another loader; keep the resident copy.
		s.lru.MoveToFront(el)
		return el.Value.(*poolEntry).slots, nil
	}
	el := s.lru.PushFront(&poolEntry{key: key, slots: slots})
	s.entries[key] = el
	p.evictOverflow(s)
	return slots, nil
}

// evictOverflow trims a stripe to its capacity. Called with s.mu held.
func (p *BufferPool) evictOverflow(s *poolStripe) {
	for s.lru.Len() > s.capacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*poolEntry).key)
		p.evictions.Add(1)
	}
}

// Put installs (or replaces) the decoded image of a page, used by the write
// path so that writes keep the cache coherent (write-through).
func (p *BufferPool) Put(key PageKey, slots []pageSlot) {
	s := p.stripe(key)
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*poolEntry).slots = slots
		s.lru.MoveToFront(el)
		return
	}
	el := s.lru.PushFront(&poolEntry{key: key, slots: slots})
	s.entries[key] = el
	p.evictOverflow(s)
}

// Invalidate drops a page from the pool.
func (p *BufferPool) Invalidate(key PageKey) {
	s := p.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.Remove(el)
		delete(s.entries, key)
	}
}

// InvalidateTable drops every cached page of a table (used by DROP TABLE).
func (p *BufferPool) InvalidateTable(table string) {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		for key, el := range s.entries {
			if key.Table == table {
				s.lru.Remove(el)
				delete(s.entries, key)
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the number of resident pages.
func (p *BufferPool) Len() int {
	n := 0
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the pool counters. Hits and misses come from
// one atomic word, so the pair is never torn: Hits+Misses is exactly the
// number of accesses recorded at a single instant.
func (p *BufferPool) Stats() PoolStats {
	hits, misses := p.hitMiss.Load()
	return PoolStats{
		Hits:      hits,
		Misses:    misses,
		Evictions: p.evictions.Load(),
	}
}
