package sla

import (
	"fmt"
	"sort"
)

// Placement maps database names to the machine names hosting their replicas.
type Placement map[string][]string

// Allocator places database replicas onto machines, tracking remaining
// capacity. It implements the paper's Algorithm 2 (First-Fit for the
// replicas of each arriving database, adding new machines when no existing
// machine fits) plus two classic variants used as ablations.
type Allocator struct {
	machines  []Machine
	remaining []Resources
	placement Placement
	probes    uint64
	// NewMachine supplies additional machines from the free pool when
	// First-Fit cannot place a replica. The default mints unit machines.
	NewMachine func(idx int) Machine
}

// NewAllocator creates an allocator over an initial (possibly empty) set of
// machines.
func NewAllocator(machines []Machine) *Allocator {
	a := &Allocator{placement: make(Placement)}
	for _, m := range machines {
		a.machines = append(a.machines, m)
		a.remaining = append(a.remaining, m.Cap)
	}
	a.NewMachine = func(idx int) Machine { return UnitMachine(fmt.Sprintf("m%d", idx+1)) }
	return a
}

// Machines returns the machines currently in use (in order of addition).
func (a *Allocator) Machines() []Machine {
	out := make([]Machine, len(a.machines))
	copy(out, a.machines)
	return out
}

// MachineCount returns the number of machines that host at least one
// replica.
func (a *Allocator) MachineCount() int {
	used := make(map[string]bool)
	for _, ms := range a.placement {
		for _, m := range ms {
			used[m] = true
		}
	}
	return len(used)
}

// Placement returns the current placement.
func (a *Allocator) Placement() Placement {
	out := make(Placement, len(a.placement))
	for db, ms := range a.placement {
		out[db] = append([]string{}, ms...)
	}
	return out
}

// Remaining returns the remaining capacity of machine i.
func (a *Allocator) Remaining(i int) Resources { return a.remaining[i] }

// Probes returns how many machine-fit examinations the allocator has
// performed — the work done by Algorithm 2's greedy scan. First-Fit's
// advantage over Best-Fit (which always scans every machine) shows up here.
func (a *Allocator) Probes() uint64 { return a.probes }

// Place allocates the replicas of a new database using First-Fit
// (Algorithm 2): each replica goes to the first existing machine with
// enough remaining capacity that does not already hold a replica of the
// same database; replicas that do not fit anywhere get fresh machines from
// the pool. Existing databases are never moved, matching the paper's
// restriction that M and M' differ only in the new database's rows.
func (a *Allocator) Place(d Database) ([]string, error) {
	return a.placeWith(d, a.firstFit)
}

// PlaceBestFit is the Best-Fit ablation: each replica goes to the machine
// with the least remaining capacity (by the max-dimension measure) that
// still fits it.
func (a *Allocator) PlaceBestFit(d Database) ([]string, error) {
	return a.placeWith(d, a.bestFit)
}

func (a *Allocator) placeWith(d Database, pick func(req Resources, exclude map[int]bool) int) ([]string, error) {
	if d.Replicas <= 0 {
		d.Replicas = 1
	}
	if _, dup := a.placement[d.Name]; dup {
		return nil, fmt.Errorf("sla: database %s already placed", d.Name)
	}
	if !d.Req.NonNegative() {
		return nil, fmt.Errorf("sla: negative resource requirement for %s", d.Name)
	}
	chosen := make([]int, 0, d.Replicas)
	exclude := make(map[int]bool)
	for r := 0; r < d.Replicas; r++ {
		idx := pick(d.Req, exclude)
		if idx < 0 {
			// Algorithm 2, line 13: host the replica on a new machine.
			nm := a.NewMachine(len(a.machines))
			if !d.Req.Fits(nm.Cap) {
				return nil, fmt.Errorf("sla: replica of %s (%s) exceeds a whole machine (%s)", d.Name, d.Req, nm.Cap)
			}
			a.machines = append(a.machines, nm)
			a.remaining = append(a.remaining, nm.Cap)
			idx = len(a.machines) - 1
		}
		chosen = append(chosen, idx)
		exclude[idx] = true
	}
	names := make([]string, len(chosen))
	for i, idx := range chosen {
		a.remaining[idx] = a.remaining[idx].Sub(d.Req)
		names[i] = a.machines[idx].Name
	}
	a.placement[d.Name] = names
	return names, nil
}

// firstFit returns the first machine index that fits req, or -1.
func (a *Allocator) firstFit(req Resources, exclude map[int]bool) int {
	for i := range a.machines {
		if exclude[i] {
			continue
		}
		a.probes++
		if req.Fits(a.remaining[i]) {
			return i
		}
	}
	return -1
}

// bestFit returns the fitting machine with the smallest max-dimension
// remaining capacity, or -1.
func (a *Allocator) bestFit(req Resources, exclude map[int]bool) int {
	best, bestSlack := -1, 0.0
	for i := range a.machines {
		if exclude[i] {
			continue
		}
		a.probes++
		if !req.Fits(a.remaining[i]) {
			continue
		}
		rem := a.remaining[i].Sub(req)
		slack := maxDim(rem)
		if best < 0 || slack < bestSlack {
			best, bestSlack = i, slack
		}
	}
	return best
}

func maxDim(r Resources) float64 {
	m := r.CPU
	if r.Memory > m {
		m = r.Memory
	}
	if r.Disk > m {
		m = r.Disk
	}
	if r.DiskBW > m {
		m = r.DiskBW
	}
	return m
}

// PlaceAll places a sequence of databases with First-Fit in arrival order
// and returns the number of machines used.
func PlaceAll(dbs []Database) (int, Placement, error) {
	a := NewAllocator(nil)
	for _, d := range dbs {
		if _, err := a.Place(d); err != nil {
			return 0, nil, err
		}
	}
	return a.MachineCount(), a.Placement(), nil
}

// PlaceAllFirstFitDecreasing sorts the databases by decreasing
// max-dimension requirement before running First-Fit — the offline FFD
// ablation (the paper leaves non-greedy reallocation to future work).
func PlaceAllFirstFitDecreasing(dbs []Database) (int, Placement, error) {
	sorted := append([]Database{}, dbs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return maxDim(sorted[i].Req) > maxDim(sorted[j].Req)
	})
	return PlaceAll(sorted)
}

// PlaceAllBestFit places databases with Best-Fit in arrival order.
func PlaceAllBestFit(dbs []Database) (int, Placement, error) {
	a := NewAllocator(nil)
	for _, d := range dbs {
		if _, err := a.PlaceBestFit(d); err != nil {
			return 0, nil, err
		}
	}
	return a.MachineCount(), a.Placement(), nil
}
