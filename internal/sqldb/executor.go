package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of a statement: column names and rows for queries,
// an affected-row count for DML.
type Result struct {
	Cols     []string
	Rows     []Row
	Affected int
}

// locking helpers ----------------------------------------------------------

func (t *Txn) lockTable(tbl *Table, mode LockMode) error {
	return t.engine.locks.acquire(t, lockID{Table: tbl.qname}, mode)
}

func (t *Txn) lockRow(tbl *Table, key string, mode LockMode) error {
	return t.engine.locks.acquire(t, lockID{Table: tbl.qname, Key: key}, mode)
}

// execute dispatches a parsed statement. The transaction's state has already
// been validated by the caller. plan, when non-nil, carries the cached
// access-path plan for the statement; executors re-validate it against the
// resolved table and re-plan ad hoc if it is stale. reuse, when non-nil, is a
// caller-owned Result the compiled path may fill in place.
func (e *Engine) execute(t *Txn, stmt Statement, plan *stmtPlan, params []Value, reuse *Result) (*Result, error) {
	if !e.recovering.Load() {
		e.statStmtExecs.Add(1)
	}
	if t.readOnly {
		switch stmt.(type) {
		case *SelectStmt, *ExplainStmt, *BeginStmt, *CommitStmt, *RollbackStmt:
		default:
			return nil, fmt.Errorf("%w: %T", ErrReadOnlyTxn, stmt)
		}
	}
	var access *accessPath
	if plan != nil {
		access = plan.access
	}
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return e.execCreateTable(t, s)
	case *CreateIndexStmt:
		res, err := e.execCreateIndex(t, s)
		if err == nil {
			// Logged while the table read lock is still held, so the record
			// is ordered against every write to the indexed table.
			err = e.walDDL(t.db, s.Table, s)
		}
		return res, err
	case *DropTableStmt:
		return e.execDropTable(t, s)
	case *InsertStmt:
		res, err := e.execInsert(t, s, params)
		return e.logWrite(t, s.Table, stmt, params, res, err)
	case *UpdateStmt:
		res, err := e.execUpdate(t, s, access, params)
		return e.logWrite(t, s.Table, stmt, params, res, err)
	case *DeleteStmt:
		res, err := e.execDelete(t, s, access, params)
		return e.logWrite(t, s.Table, stmt, params, res, err)
	case *SelectStmt:
		var sel *selPlan
		if plan != nil {
			sel = plan.sel
		}
		if plan != nil && plan.compiled != nil {
			res, handled, err := e.execCompiled(t, plan.compiled, params, reuse)
			if handled {
				if err == nil {
					e.statCompiledExecs.Add(1)
				}
				if t.trace.Sampled {
					t.execMode = "compiled"
				}
				return res, err
			}
		}
		return e.execSelect(t, s, access, sel, params)
	case *ExplainStmt:
		return e.execExplain(t, s, params)
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return nil, fmt.Errorf("sqldb: transaction-control statements are handled by the session layer")
	default:
		return nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// logWrite appends the redo record for a successful DML statement while its
// locks are still held (the locks stay held until commit either way, so log
// order equals lock-grant order for conflicting statements). Statements that
// matched no rows are not logged: replaying them would redo nothing.
func (e *Engine) logWrite(t *Txn, table string, stmt Statement, params []Value, res *Result, err error) (*Result, error) {
	if err != nil || res == nil || res.Affected == 0 {
		return res, err
	}
	if werr := e.walStmt(t, table, stmt, params); werr != nil {
		return res, werr
	}
	return res, nil
}

// --- DDL -------------------------------------------------------------------
//
// DDL statements take effect immediately and are not undone by rollback
// (matching MySQL's implicit-commit behaviour for DDL).

func (e *Engine) execCreateTable(t *Txn, s *CreateTableStmt) (*Result, error) {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Column{Name: c.Name, Typ: c.Typ, PrimaryKey: c.PrimaryKey, NotNull: c.NotNull, Unique: c.Unique}
	}
	schema, err := NewSchema(s.Table, cols)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	tables, ok := e.dbs[t.db]
	if !ok {
		return nil, fmt.Errorf("%w: database %s", ErrNoTable, t.db)
	}
	key := lower(s.Table)
	if _, exists := tables[key]; exists {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrTableExists, s.Table)
	}
	tables[key] = newTable(e, qualified(t.db, s.Table), schema)
	e.plans.invalidateTables(t.db, key)
	// Logged under the catalog mutex: a write to the new table can only start
	// after this mutex is released, so its record lands after this one.
	if err := e.walDDL(t.db, s.Table, s); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) execCreateIndex(t *Txn, s *CreateIndexStmt) (*Result, error) {
	tbl, err := e.Table(t.db, s.Table)
	if err != nil {
		return nil, err
	}
	colIdx := tbl.schema.ColIndex(s.Col)
	if colIdx < 0 {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, s.Col)
	}
	// Build under a table S lock so the index sees a consistent image.
	if err := t.lockTable(tbl, LockS); err != nil {
		return nil, err
	}
	if err := tbl.createIndex(s.Name, colIdx, s.Unique); err != nil {
		return nil, err
	}
	// Cached plans for this table may be full scans that should now use the
	// index; force re-derivation.
	e.plans.invalidateTables(t.db, lower(s.Table))
	return &Result{}, nil
}

func (e *Engine) execDropTable(t *Txn, s *DropTableStmt) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	tables, ok := e.dbs[t.db]
	if !ok {
		return nil, fmt.Errorf("%w: database %s", ErrNoTable, t.db)
	}
	key := lower(s.Table)
	tbl, exists := tables[key]
	if !exists {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %s.%s", ErrNoTable, t.db, s.Table)
	}
	delete(tables, key)
	e.pool.InvalidateTable(tbl.poolName)
	e.plans.invalidateTables(t.db, key)
	// Logged under the catalog mutex, ordering the drop after every record
	// of the dropped table.
	if err := e.walDDL(t.db, s.Table, s); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// --- INSERT ------------------------------------------------------------------

func (e *Engine) execInsert(t *Txn, s *InsertStmt, params []Value) (*Result, error) {
	tbl, err := e.Table(t.db, s.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.schema

	// Map the statement's column list to schema positions.
	positions := make([]int, 0, len(s.Cols))
	if len(s.Cols) == 0 {
		for i := range schema.Cols {
			positions = append(positions, i)
		}
	} else {
		for _, c := range s.Cols {
			idx := schema.ColIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, c)
			}
			positions = append(positions, idx)
		}
	}

	hasUniqueSecondary := false
	for _, c := range schema.Cols {
		if c.Unique && !c.PrimaryKey {
			hasUniqueSecondary = true
		}
	}

	// Lock order: table intention lock first, then row locks.
	tableMode := LockIX
	if schema.PKIdx < 0 || hasUniqueSecondary {
		// Without a primary key there is no row-lock identity; with a
		// unique secondary index the uniqueness probe needs a stable view.
		tableMode = LockX
	}
	if err := t.lockTable(tbl, tableMode); err != nil {
		return nil, err
	}
	// Raise the dirty-writer mark before the first physical change so
	// optimistic readers never trust row images this transaction is adding.
	t.touchWrite(tbl)

	ctx := &evalCtx{params: params}
	affected := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("%w: INSERT has %d values for %d columns", ErrTypeMismatch, len(exprRow), len(positions))
		}
		full := make(Row, len(schema.Cols))
		for i := range full {
			full[i] = Null
		}
		for i, ex := range exprRow {
			v, err := evalExpr(ex, ctx)
			if err != nil {
				return nil, err
			}
			full[positions[i]] = v
		}
		if err := schema.CheckRow(full); err != nil {
			return nil, err
		}
		if schema.PKIdx >= 0 {
			key := keyString(full[schema.PKIdx])
			if err := t.lockRow(tbl, key, LockX); err != nil {
				return nil, err
			}
			if _, dup := tbl.lookupPK(full[schema.PKIdx]); dup {
				return nil, fmt.Errorf("%w: %s=%s in %s", ErrDuplicateKey, schema.Cols[schema.PKIdx].Name, full[schema.PKIdx], s.Table)
			}
			e.record(t, true, tbl.qname+":"+key)
		} else {
			e.record(t, true, tbl.qname)
		}
		for i, c := range schema.Cols {
			if c.Unique && !c.PrimaryKey {
				if dup := tbl.uniqueViolation(i, full[i]); dup {
					return nil, fmt.Errorf("%w: %s=%s in %s", ErrDuplicateKey, c.Name, full[i], s.Table)
				}
			}
		}
		rowID := tbl.allocRowID()
		tbl.insertRowPhysical(rowID, full)
		t.logUndo(undoRec{table: tbl, kind: undoInsert, rowID: rowID})
		affected++
	}
	return &Result{Affected: affected}, nil
}

// --- UPDATE / DELETE --------------------------------------------------------

func (e *Engine) execUpdate(t *Txn, s *UpdateStmt, access *accessPath, params []Value) (*Result, error) {
	tbl, err := e.Table(t.db, s.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.schema

	setIdx := make([]int, len(s.Set))
	for i, a := range s.Set {
		idx := schema.ColIndex(a.Col)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, a.Col)
		}
		setIdx[i] = idx
	}

	bindings := bindingsFor(schema, s.Table)
	targets, err := e.writeTargets(t, tbl, s.Where, params, bindings, access)
	if err != nil {
		return nil, err
	}
	if len(targets) > 0 {
		t.touchWrite(tbl)
	}

	affected := 0
	for _, target := range targets {
		ctx := &evalCtx{bindings: bindings, row: target.row, params: params}
		newRow := target.row.Clone()
		for i, a := range s.Set {
			v, err := evalExpr(a.Expr, ctx)
			if err != nil {
				return nil, err
			}
			newRow[setIdx[i]] = v
		}
		if err := schema.CheckRow(newRow); err != nil {
			return nil, err
		}
		if schema.PKIdx >= 0 {
			oldKey := keyString(target.row[schema.PKIdx])
			newKey := keyString(newRow[schema.PKIdx])
			if oldKey != newKey {
				if err := t.lockRow(tbl, newKey, LockX); err != nil {
					return nil, err
				}
				if _, dup := tbl.lookupPK(newRow[schema.PKIdx]); dup {
					return nil, fmt.Errorf("%w: %s", ErrDuplicateKey, newRow[schema.PKIdx])
				}
				e.record(t, true, tbl.qname+":"+newKey)
			}
		}
		tbl.updateRowPhysical(target.rowID, newRow)
		t.logUndo(undoRec{table: tbl, kind: undoUpdate, rowID: target.rowID, before: target.row})
		affected++
	}
	return &Result{Affected: affected}, nil
}

func (e *Engine) execDelete(t *Txn, s *DeleteStmt, access *accessPath, params []Value) (*Result, error) {
	tbl, err := e.Table(t.db, s.Table)
	if err != nil {
		return nil, err
	}
	bindings := bindingsFor(tbl.schema, s.Table)
	targets, err := e.writeTargets(t, tbl, s.Where, params, bindings, access)
	if err != nil {
		return nil, err
	}
	if len(targets) > 0 {
		t.touchWrite(tbl)
	}
	for _, target := range targets {
		tbl.deleteRowPhysical(target.rowID)
		t.logUndo(undoRec{table: tbl, kind: undoDelete, rowID: target.rowID, before: target.row})
	}
	return &Result{Affected: len(targets)}, nil
}

// writeTarget is one row selected for modification, captured after its X
// lock was acquired.
type writeTarget struct {
	rowID uint64
	row   Row
}

// writeTargets locks and returns the rows matched by where, following the
// access path. Point accesses (primary-key equality) lock just the one key;
// index equality and index range find candidates through the index; anything
// else scans. Non-point candidates are X-locked, re-fetched and re-checked
// against the full predicate after the lock.
func (e *Engine) writeTargets(t *Txn, tbl *Table, where Expr, params []Value, bindings []colBinding, path *accessPath) ([]writeTarget, error) {
	schema := tbl.schema
	if schema.PKIdx < 0 {
		// No row identity: whole-table X lock, then scan.
		if err := t.lockTable(tbl, LockX); err != nil {
			return nil, err
		}
		e.record(t, true, tbl.qname)
		return e.collectByScan(t, tbl, where, params, bindings, false)
	}
	if path == nil || !path.validFor(tbl) {
		path = planWhere(tbl, where)
	}
	if err := t.lockTable(tbl, LockIX); err != nil {
		return nil, err
	}
	switch path.kind {
	case pathPoint:
		pkVal, err := evalConst(path.eq, params)
		if err != nil {
			return nil, err
		}
		key := keyString(pkVal)
		if err := t.lockRow(tbl, key, LockX); err != nil {
			return nil, err
		}
		e.record(t, true, tbl.qname+":"+key)
		rowID, found := tbl.lookupPK(pkVal)
		if !found {
			return nil, nil
		}
		row, found := tbl.getRow(rowID)
		if !found {
			return nil, nil
		}
		if path.residual != nil {
			match, err := predTrue(path.residual, &evalCtx{bindings: bindings, row: row, params: params})
			if err != nil {
				return nil, err
			}
			if !match {
				return nil, nil
			}
		}
		return []writeTarget{{rowID: rowID, row: row}}, nil
	case pathIndexEq:
		if tbl.hasIndex(path.col) {
			val, err := evalConst(path.eq, params)
			if err != nil {
				return nil, err
			}
			ids, _ := tbl.lookupIndex(path.col, val)
			return e.lockWriteCandidates(t, tbl, ids, where, params, bindings)
		}
	case pathIndexRange:
		b, fallback, err := path.rangeExec(tbl, params)
		if err != nil {
			return nil, err
		}
		if !fallback && (path.onPK || tbl.hasIndex(path.col)) {
			var ids []uint64
			if path.onPK {
				ids = tbl.lookupPKRange(b)
			} else {
				ids, _ = tbl.lookupIndexRange(path.col, b)
			}
			return e.lockWriteCandidates(t, tbl, ids, where, params, bindings)
		}
	}
	return e.collectByScan(t, tbl, where, params, bindings, true)
}

// lockWriteCandidates X-locks each candidate row and keeps those that still
// match the full predicate after the lock (index candidates are pre-lock
// guesses; the row may have changed or vanished in between).
func (e *Engine) lockWriteCandidates(t *Txn, tbl *Table, ids []uint64, where Expr, params []Value, bindings []colBinding) ([]writeTarget, error) {
	pkIdx := tbl.schema.PKIdx
	ctx := &evalCtx{bindings: bindings, params: params}
	var out []writeTarget
	for _, id := range ids {
		row, found := tbl.getRow(id)
		if !found {
			continue
		}
		key := keyString(row[pkIdx])
		if err := t.lockRow(tbl, key, LockX); err != nil {
			return nil, err
		}
		e.record(t, true, tbl.qname+":"+key)
		row, found = tbl.getRow(id)
		if !found {
			continue
		}
		if where != nil {
			ctx.row = row
			match, err := predTrue(where, ctx)
			if err != nil {
				return nil, err
			}
			if !match {
				continue
			}
		}
		out = append(out, writeTarget{rowID: id, row: row})
	}
	return out, nil
}

// collectByScan finds matching rows via a filtered scan, then (if lockRows)
// locks each one exclusively and re-validates the predicate after the lock.
func (e *Engine) collectByScan(t *Txn, tbl *Table, where Expr, params []Value, bindings []colBinding, lockRows bool) ([]writeTarget, error) {
	type candidate struct {
		rowID uint64
		key   string
	}
	var cands []candidate
	var match func(Row) (bool, error)
	if where != nil {
		ctx := &evalCtx{bindings: bindings, params: params}
		match = func(r Row) (bool, error) {
			ctx.row = r
			return predTrue(where, ctx)
		}
	}
	pkIdx := tbl.schema.PKIdx
	if err := tbl.scanWhere(match, func(rowID uint64, r Row) bool {
		key := ""
		if pkIdx >= 0 {
			key = keyString(r[pkIdx])
		}
		cands = append(cands, candidate{rowID: rowID, key: key})
		return true
	}); err != nil {
		return nil, err
	}
	recheck := &evalCtx{bindings: bindings, params: params}
	var out []writeTarget
	for _, c := range cands {
		if lockRows {
			if err := t.lockRow(tbl, c.key, LockX); err != nil {
				return nil, err
			}
			e.record(t, true, tbl.qname+":"+c.key)
		}
		row, found := tbl.getRow(c.rowID)
		if !found {
			continue
		}
		if where != nil {
			recheck.row = row
			matched, err := predTrue(where, recheck)
			if err != nil {
				return nil, err
			}
			if !matched {
				continue
			}
		}
		out = append(out, writeTarget{rowID: c.rowID, row: row})
	}
	return out, nil
}

// --- SELECT -----------------------------------------------------------------

func (e *Engine) execSelect(t *Txn, s *SelectStmt, access *accessPath, sel *selPlan, params []Value) (*Result, error) {
	if s.From == nil {
		// SELECT without FROM: evaluate items once against an empty row.
		ctx := &evalCtx{params: params}
		res := &Result{}
		var row Row
		for _, item := range s.Items {
			if item.Star {
				return nil, fmt.Errorf("sqldb: SELECT * requires a FROM clause")
			}
			v, err := evalExpr(item.Expr, ctx)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			res.Cols = append(res.Cols, itemName(item))
		}
		res.Rows = []Row{row}
		return res, nil
	}

	rows, bindings, err := e.selectSource(t, s, access, params)
	if err != nil {
		return nil, err
	}
	// A cached selPlan was validated and star-expanded at plan time against
	// the same generation; skip both per-execution passes.
	if sel == nil {
		if err := validateSelect(s, bindings); err != nil {
			return nil, err
		}
	}
	return project(s, rows, bindings, params, sel)
}

// validateSelect resolves every column reference in the statement against
// the source bindings, so references to unknown or ambiguous columns fail
// even when the source produced no rows.
func validateSelect(s *SelectStmt, bindings []colBinding) error {
	aliases := make(map[string]bool)
	for _, item := range s.Items {
		if item.Alias != "" {
			aliases[lower(item.Alias)] = true
		}
	}
	var check func(e Expr) error
	check = func(e Expr) error {
		switch ex := e.(type) {
		case nil:
			return nil
		case *ColumnExpr:
			switch resolveBinding(bindings, ex) {
			case -1:
				return fmt.Errorf("%w: %s", ErrNoColumn, ex.Col)
			case -2:
				return errAmbiguous(ex.Col)
			}
			return nil
		case *BinaryExpr:
			if err := check(ex.L); err != nil {
				return err
			}
			return check(ex.R)
		case *UnaryExpr:
			return check(ex.E)
		case *InExpr:
			if err := check(ex.E); err != nil {
				return err
			}
			for _, l := range ex.List {
				if err := check(l); err != nil {
					return err
				}
			}
			return nil
		case *BetweenExpr:
			if err := check(ex.E); err != nil {
				return err
			}
			if err := check(ex.Lo); err != nil {
				return err
			}
			return check(ex.Hi)
		case *LikeExpr:
			if err := check(ex.E); err != nil {
				return err
			}
			return check(ex.Pattern)
		case *IsNullExpr:
			return check(ex.E)
		case *AggExpr:
			if ex.E != nil {
				return check(ex.E)
			}
			return nil
		default:
			return nil
		}
	}
	for _, item := range s.Items {
		if item.Star {
			continue
		}
		if err := check(item.Expr); err != nil {
			return err
		}
	}
	if err := check(s.Where); err != nil {
		return err
	}
	for _, g := range s.GroupBy {
		if err := check(g); err != nil {
			return err
		}
	}
	if err := check(s.Having); err != nil {
		return err
	}
	for _, o := range s.OrderBy {
		// An unqualified ORDER BY name may refer to a projected alias.
		if ce, ok := o.Expr.(*ColumnExpr); ok && ce.Table == "" && aliases[lower(ce.Col)] {
			continue
		}
		if err := check(o.Expr); err != nil {
			return err
		}
	}
	return nil
}

// selectSource produces the filtered, joined source rows and their column
// bindings, acquiring read locks along the way.
func (e *Engine) selectSource(t *Txn, s *SelectStmt, access *accessPath, params []Value) ([]Row, []colBinding, error) {
	baseTbl, err := e.Table(t.db, s.From.Table)
	if err != nil {
		return nil, nil, err
	}
	baseBind := bindingsFor(baseTbl.schema, s.From.Name())

	if len(s.Joins) == 0 {
		rows, err := e.readTableRows(t, baseTbl, s.Where, params, baseBind, access)
		if err != nil {
			return nil, nil, err
		}
		return rows, baseBind, nil
	}

	// Joined query: read each table under a shared table lock and combine.
	// WHERE conjuncts that reference only one table are pushed down to that
	// table's scan, so the join works on pre-filtered inputs. Pushing into
	// the right side of a LEFT JOIN would change which left rows null-extend,
	// so only inner-join sides (and the base table) receive pushed filters.
	var conjuncts []Expr
	if s.Where != nil {
		conjuncts = splitAnd(s.Where)
	}
	consumed := make([]bool, len(conjuncts))

	// Each pushed filter goes through the access-path planner, so an
	// equality on an indexed column reads only the matching rows instead of
	// scanning the table (the order_line side of TPC-W's order-status join).
	basePush := pushdownFilter(conjuncts, consumed, baseBind)
	current, err := e.readTableRows(t, baseTbl, basePush, params, baseBind, nil)
	if err != nil {
		return nil, nil, err
	}
	bindings := baseBind

	for _, j := range s.Joins {
		jt, err := e.Table(t.db, j.Table.Table)
		if err != nil {
			return nil, nil, err
		}
		rightBind := bindingsFor(jt.schema, j.Table.Name())
		var rightFilter Expr
		if !j.Left {
			rightFilter = pushdownFilter(conjuncts, consumed, rightBind)
		}
		right, err := e.readTableRows(t, jt, rightFilter, params, rightBind, nil)
		if err != nil {
			return nil, nil, err
		}
		current, err = joinRows(current, bindings, right, rightBind, j, params)
		if err != nil {
			return nil, nil, err
		}
		bindings = append(append([]colBinding{}, bindings...), rightBind...)
	}

	var rest []Expr
	for i, c := range conjuncts {
		if !consumed[i] {
			rest = append(rest, c)
		}
	}
	if residual := joinAnd(rest); residual != nil {
		ctx := &evalCtx{bindings: bindings, params: params}
		filtered := current[:0]
		for _, r := range current {
			ctx.row = r
			match, err := predTrue(residual, ctx)
			if err != nil {
				return nil, nil, err
			}
			if match {
				filtered = append(filtered, r)
			}
		}
		current = filtered
	}
	return current, bindings, nil
}

// pushdownFilter selects the not-yet-consumed conjuncts that resolve
// entirely within one table's bindings, marks them consumed, and joins them
// into a filter for that table's scan.
func pushdownFilter(conjuncts []Expr, consumed []bool, bind []colBinding) Expr {
	var picked []Expr
	for i, c := range conjuncts {
		if consumed[i] || !exprResolvesIn(c, bind) {
			continue
		}
		consumed[i] = true
		picked = append(picked, c)
	}
	return joinAnd(picked)
}

// exprResolvesIn reports whether every column reference in e resolves
// unambiguously within bind and e contains no aggregates.
func exprResolvesIn(e Expr, bind []colBinding) bool {
	switch ex := e.(type) {
	case nil:
		return true
	case *LiteralExpr:
		return true
	case *ParamExpr:
		return true
	case *ColumnExpr:
		return resolveBinding(bind, ex) >= 0
	case *BinaryExpr:
		return exprResolvesIn(ex.L, bind) && exprResolvesIn(ex.R, bind)
	case *UnaryExpr:
		return exprResolvesIn(ex.E, bind)
	case *InExpr:
		if !exprResolvesIn(ex.E, bind) {
			return false
		}
		for _, l := range ex.List {
			if !exprResolvesIn(l, bind) {
				return false
			}
		}
		return true
	case *BetweenExpr:
		return exprResolvesIn(ex.E, bind) && exprResolvesIn(ex.Lo, bind) && exprResolvesIn(ex.Hi, bind)
	case *LikeExpr:
		return exprResolvesIn(ex.E, bind) && exprResolvesIn(ex.Pattern, bind)
	case *IsNullExpr:
		return exprResolvesIn(ex.E, bind)
	default:
		return false
	}
}

// readTableRows reads the rows of one table matching where, following the
// access path: point (IS + one row S lock), index equality (IS + row S locks
// on matches), index range (IS + row S locks in key order), or full scan
// (table S lock). Paths that cannot execute — missing index, stale plan,
// NULL or non-comparable bound — fall back to the scan.
func (e *Engine) readTableRows(t *Txn, tbl *Table, where Expr, params []Value, bindings []colBinding, path *accessPath) ([]Row, error) {
	if path == nil || !path.validFor(tbl) {
		path = planWhere(tbl, where)
	}
	switch path.kind {
	case pathPoint:
		return e.readPoint(t, tbl, params, bindings, path)
	case pathIndexEq:
		if tbl.hasIndex(path.col) {
			return e.readIndexEq(t, tbl, params, bindings, path)
		}
	case pathIndexRange:
		b, fallback, err := path.rangeExec(tbl, params)
		if err != nil {
			return nil, err
		}
		if !fallback && (path.onPK || tbl.hasIndex(path.col)) {
			return e.readIndexRange(t, tbl, b, params, bindings, path)
		}
	}
	return e.readScan(t, tbl, where, params, bindings)
}

// rowCheck re-validates a candidate row after its lock was acquired,
// reporting whether the row should be kept.
type rowCheck func(Row) (bool, error)

// fetchCheckedRow fetches a row by ID (after its lock is held) and applies
// check. keep=false when the row vanished or no longer matches.
func fetchCheckedRow(tbl *Table, id uint64, check rowCheck) (row Row, keep bool, err error) {
	row, found := tbl.getRow(id)
	if !found {
		return nil, false, nil
	}
	if check != nil {
		ok, err := check(row)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	return row, true, nil
}

// collectLockedRows is the shared row-collection loop of the index-equality,
// index-range and compiled read paths: S-lock each candidate by its primary
// key, re-fetch under the lock (the row may have changed or vanished while
// unlocked), and keep the rows that still pass check.
func (e *Engine) collectLockedRows(t *Txn, tbl *Table, ids []uint64, check rowCheck) ([]Row, error) {
	pkIdx := tbl.schema.PKIdx
	var out []Row
	for _, id := range ids {
		row, found := tbl.getRow(id)
		if !found {
			continue
		}
		key := keyString(row[pkIdx])
		if err := t.lockRow(tbl, key, LockS); err != nil {
			return nil, err
		}
		e.record(t, false, tbl.qname+":"+key)
		row, keep, err := fetchCheckedRow(tbl, id, check)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		out = append(out, row)
	}
	return out, nil
}

// residualCheck builds a rowCheck for an access path's residual predicate,
// or nil when there is none.
func residualCheck(path *accessPath, bindings []colBinding, params []Value) rowCheck {
	if path.residual == nil {
		return nil
	}
	ctx := &evalCtx{bindings: bindings, params: params}
	return func(row Row) (bool, error) {
		ctx.row = row
		return predTrue(path.residual, ctx)
	}
}

// readPoint serves a primary-key equality read: IS table lock plus one row
// S lock. The key itself is locked (not the row ID), so the lock also guards
// the key's absence against concurrent inserts.
func (e *Engine) readPoint(t *Txn, tbl *Table, params []Value, bindings []colBinding, path *accessPath) ([]Row, error) {
	pkVal, err := evalConst(path.eq, params)
	if err != nil {
		return nil, err
	}
	if err := t.lockTable(tbl, LockIS); err != nil {
		return nil, err
	}
	key := keyString(pkVal)
	if err := t.lockRow(tbl, key, LockS); err != nil {
		return nil, err
	}
	e.record(t, false, tbl.qname+":"+key)
	rowID, found := tbl.lookupPK(pkVal)
	if !found {
		return nil, nil
	}
	row, keep, err := fetchCheckedRow(tbl, rowID, residualCheck(path, bindings, params))
	if err != nil || !keep {
		return nil, err
	}
	return []Row{row}, nil
}

// readIndexEq serves a secondary-index equality read: IS table lock plus a
// row S lock per candidate, re-fetching and re-checking after each lock.
func (e *Engine) readIndexEq(t *Txn, tbl *Table, params []Value, bindings []colBinding, path *accessPath) ([]Row, error) {
	val, err := evalConst(path.eq, params)
	if err != nil {
		return nil, err
	}
	if err := t.lockTable(tbl, LockIS); err != nil {
		return nil, err
	}
	ids, _ := tbl.lookupIndex(path.col, val)
	residual := residualCheck(path, bindings, params)
	return e.collectLockedRows(t, tbl, ids, func(row Row) (bool, error) {
		if !Equal(row[path.colIdx], val) {
			return false, nil
		}
		if residual != nil {
			return residual(row)
		}
		return true, nil
	})
}

// readIndexRange serves a range read over the primary key or a secondary
// index: IS table lock plus a row S lock per candidate in ascending key
// order, re-checking the bounds and residual after each lock.
func (e *Engine) readIndexRange(t *Txn, tbl *Table, b rangeBounds, params []Value, bindings []colBinding, path *accessPath) ([]Row, error) {
	if err := t.lockTable(tbl, LockIS); err != nil {
		return nil, err
	}
	var ids []uint64
	if path.onPK {
		ids = tbl.lookupPKRange(b)
	} else {
		ids, _ = tbl.lookupIndexRange(path.col, b)
	}
	residual := residualCheck(path, bindings, params)
	return e.collectLockedRows(t, tbl, ids, func(row Row) (bool, error) {
		if !b.match(row[path.colIdx]) {
			return false, nil
		}
		if residual != nil {
			return residual(row)
		}
		return true, nil
	})
}

// readScan reads every row matching where under a shared table lock, with
// the predicate evaluated under the page latch so non-matching rows are
// never cloned.
func (e *Engine) readScan(t *Txn, tbl *Table, where Expr, params []Value, bindings []colBinding) ([]Row, error) {
	if err := t.lockTable(tbl, LockS); err != nil {
		return nil, err
	}
	e.record(t, false, tbl.qname)
	var match func(Row) (bool, error)
	if where != nil {
		ctx := &evalCtx{bindings: bindings, params: params}
		match = func(r Row) (bool, error) {
			ctx.row = r
			return predTrue(where, ctx)
		}
	}
	var out []Row
	err := tbl.scanWhere(match, func(_ uint64, r Row) bool {
		out = append(out, r)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// joinRows combines left rows with right rows under the join clause. When
// the ON predicate is a simple column equality it builds a hash table on the
// right side; otherwise it falls back to a nested loop.
func joinRows(left []Row, leftBind []colBinding, right []Row, rightBind []colBinding, j JoinClause, params []Value) ([]Row, error) {
	combined := append(append([]colBinding{}, leftBind...), rightBind...)

	// Try hash join: ON l.col = r.col with one side in each input.
	if eq, ok := j.On.(*BinaryExpr); ok && eq.Op == OpEq {
		lc, lok := eq.L.(*ColumnExpr)
		rc, rok := eq.R.(*ColumnExpr)
		if lok && rok {
			li := resolveBinding(leftBind, lc)
			ri := resolveBinding(rightBind, rc)
			if li < 0 || ri < 0 {
				// Maybe written in the other order.
				li = resolveBinding(leftBind, rc)
				ri = resolveBinding(rightBind, lc)
			}
			if li >= 0 && ri >= 0 {
				ht := make(map[string][]Row, len(right))
				for _, rr := range right {
					if rr[ri].IsNull() {
						continue
					}
					k := keyString(rr[ri])
					ht[k] = append(ht[k], rr)
				}
				var out []Row
				for _, lr := range left {
					matched := false
					if !lr[li].IsNull() {
						for _, rr := range ht[keyString(lr[li])] {
							out = append(out, concatRows(lr, rr))
							matched = true
						}
					}
					if !matched && j.Left {
						out = append(out, concatRows(lr, nullRow(len(rightBind))))
					}
				}
				return out, nil
			}
		}
	}

	// Nested loop with full predicate evaluation.
	var out []Row
	for _, lr := range left {
		matched := false
		for _, rr := range right {
			joined := concatRows(lr, rr)
			match, err := predTrue(j.On, &evalCtx{bindings: combined, row: joined, params: params})
			if err != nil {
				return nil, err
			}
			if match {
				out = append(out, joined)
				matched = true
			}
		}
		if !matched && j.Left {
			out = append(out, concatRows(lr, nullRow(len(rightBind))))
		}
	}
	return out, nil
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func nullRow(n int) Row {
	r := make(Row, n)
	for i := range r {
		r[i] = Null
	}
	return r
}

// project applies grouping, aggregation, projection, DISTINCT, ORDER BY and
// LIMIT to the source rows.
func project(s *SelectStmt, rows []Row, bindings []colBinding, params []Value, pre *selPlan) (*Result, error) {
	var items []SelectItem
	var cols []string
	if pre != nil {
		items, cols = pre.items, pre.cols
	} else {
		var err error
		items, cols, err = expandStars(s.Items, bindings)
		if err != nil {
			return nil, err
		}
	}

	grouped := len(s.GroupBy) > 0 || anyAggregate(items) || s.Having != nil

	type outRow struct {
		row  Row
		keys Row // ORDER BY sort keys
	}
	var outs []outRow

	if grouped {
		groups := make(map[string][]Row)
		var order []string
		if len(s.GroupBy) == 0 {
			groups[""] = rows
			order = []string{""}
		} else {
			for _, r := range rows {
				ctx := &evalCtx{bindings: bindings, row: r, params: params}
				var kb strings.Builder
				for _, g := range s.GroupBy {
					v, err := evalExpr(g, ctx)
					if err != nil {
						return nil, err
					}
					kb.WriteString(keyString(v))
					kb.WriteByte('\x00')
				}
				k := kb.String()
				if _, seen := groups[k]; !seen {
					order = append(order, k)
				}
				groups[k] = append(groups[k], r)
			}
		}
		for _, k := range order {
			g := groups[k]
			if len(g) == 0 && len(s.GroupBy) > 0 {
				continue
			}
			var rep Row
			if len(g) > 0 {
				rep = g[0]
			} else {
				rep = nullRow(len(bindings))
			}
			ctx := &evalCtx{bindings: bindings, row: rep, params: params, groupRows: g, grouped: true}
			if s.Having != nil {
				match, err := predTrue(s.Having, ctx)
				if err != nil {
					return nil, err
				}
				if !match {
					continue
				}
			}
			var pr Row
			for _, item := range items {
				v, err := evalExpr(item.Expr, ctx)
				if err != nil {
					return nil, err
				}
				pr = append(pr, v)
			}
			keys, err := orderKeys(s.OrderBy, ctx, items, pr)
			if err != nil {
				return nil, err
			}
			outs = append(outs, outRow{row: pr, keys: keys})
		}
	} else {
		for _, r := range rows {
			ctx := &evalCtx{bindings: bindings, row: r, params: params}
			var pr Row
			for _, item := range items {
				v, err := evalExpr(item.Expr, ctx)
				if err != nil {
					return nil, err
				}
				pr = append(pr, v)
			}
			keys, err := orderKeys(s.OrderBy, ctx, items, pr)
			if err != nil {
				return nil, err
			}
			outs = append(outs, outRow{row: pr, keys: keys})
		}
	}

	if s.Distinct {
		seen := make(map[string]bool, len(outs))
		dedup := outs[:0]
		for _, o := range outs {
			var kb strings.Builder
			for _, v := range o.row {
				kb.WriteString(keyString(v))
				kb.WriteByte('\x00')
			}
			if !seen[kb.String()] {
				seen[kb.String()] = true
				dedup = append(dedup, o)
			}
		}
		outs = dedup
	}

	if len(s.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k, item := range s.OrderBy {
				c := Compare(outs[i].keys[k], outs[j].keys[k])
				if c == 0 {
					continue
				}
				if item.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	if s.Offset > 0 {
		if s.Offset >= len(outs) {
			outs = nil
		} else {
			outs = outs[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(outs) {
		outs = outs[:s.Limit]
	}

	res := &Result{Cols: cols, Rows: make([]Row, len(outs))}
	for i, o := range outs {
		res.Rows[i] = o.row
	}
	return res, nil
}

// orderKeys evaluates the ORDER BY expressions for one output row. An ORDER
// BY expression that names a projected alias uses the projected value.
func orderKeys(order []OrderItem, ctx *evalCtx, items []SelectItem, projected Row) (Row, error) {
	if len(order) == 0 {
		return nil, nil
	}
	keys := make(Row, len(order))
	for i, o := range order {
		if ce, ok := o.Expr.(*ColumnExpr); ok && ce.Table == "" {
			found := false
			for j, item := range items {
				if strings.EqualFold(item.Alias, ce.Col) {
					keys[i] = projected[j]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := evalExpr(o.Expr, ctx)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// expandStars replaces * and alias.* items with explicit column references
// and computes the output column names.
func expandStars(items []SelectItem, bindings []colBinding) ([]SelectItem, []string, error) {
	var out []SelectItem
	var cols []string
	for _, item := range items {
		if !item.Star {
			out = append(out, item)
			cols = append(cols, itemName(item))
			continue
		}
		matched := false
		for _, b := range bindings {
			if item.StarTable != "" && !strings.EqualFold(item.StarTable, b.table) {
				continue
			}
			out = append(out, SelectItem{Expr: &ColumnExpr{Table: b.table, Col: b.col}})
			cols = append(cols, b.col)
			matched = true
		}
		if !matched {
			return nil, nil, fmt.Errorf("%w: no columns for %s.*", ErrNoColumn, item.StarTable)
		}
	}
	return out, cols, nil
}

func itemName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ce, ok := item.Expr.(*ColumnExpr); ok {
		return ce.Col
	}
	if ag, ok := item.Expr.(*AggExpr); ok {
		return strings.ToLower(ag.Fn.String())
	}
	return "expr"
}

func anyAggregate(items []SelectItem) bool {
	for _, item := range items {
		if item.Expr != nil && exprHasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch ex := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return exprHasAggregate(ex.L) || exprHasAggregate(ex.R)
	case *UnaryExpr:
		return exprHasAggregate(ex.E)
	case *InExpr:
		if exprHasAggregate(ex.E) {
			return true
		}
		for _, l := range ex.List {
			if exprHasAggregate(l) {
				return true
			}
		}
	case *BetweenExpr:
		return exprHasAggregate(ex.E) || exprHasAggregate(ex.Lo) || exprHasAggregate(ex.Hi)
	case *LikeExpr:
		return exprHasAggregate(ex.E) || exprHasAggregate(ex.Pattern)
	case *IsNullExpr:
		return exprHasAggregate(ex.E)
	}
	return false
}

// --- predicate decomposition ------------------------------------------------

func splitAnd(e Expr) []Expr {
	if be, ok := e.(*BinaryExpr); ok && be.Op == OpAnd {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []Expr{e}
}

func joinAnd(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &BinaryExpr{Op: OpAnd, L: out, R: e}
	}
	return out
}

// bindingsFor builds the column bindings of one table under an alias.
func bindingsFor(schema *Schema, alias string) []colBinding {
	out := make([]colBinding, len(schema.Cols))
	for i, c := range schema.Cols {
		out[i] = colBinding{table: lower(alias), col: lower(c.Name)}
	}
	return out
}

func resolveBinding(bindings []colBinding, ce *ColumnExpr) int {
	match := -1
	for i, b := range bindings {
		if !strings.EqualFold(b.col, ce.Col) {
			continue
		}
		if ce.Table != "" && !strings.EqualFold(b.table, ce.Table) {
			continue
		}
		if match >= 0 {
			return -2 // ambiguous
		}
		match = i
	}
	return match
}

// uniqueViolation reports whether value v already exists in column col.
func (t *Table) uniqueViolation(col int, v Value) bool {
	if v.IsNull() {
		return false
	}
	found := false
	t.scan(func(_ uint64, r Row) bool {
		if Equal(r[col], v) {
			found = true
			return false
		}
		return true
	})
	return found
}

// errAmbiguous wraps an ambiguous column reference.
func errAmbiguous(col string) error {
	return fmt.Errorf("%w: ambiguous column %s", ErrNoColumn, col)
}
