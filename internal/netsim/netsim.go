// Package netsim simulates the network between the platform's controllers
// and their machines. Every controller→machine interaction — statement
// execution, the PREPARE/COMMIT/ABORT actions of 2PC, read routing,
// Algorithm 1 dump/apply steps, cross-colo replication batches — crosses a
// directed Link, and each Link can be given faults: added latency, dropped
// requests, lost replies, duplicated deliveries of idempotent calls, and
// asymmetric partitions. A seeded PRNG drives every fault decision, so a
// failure run's schedule is reproducible from its seed.
//
// The fault model mirrors a TCP connection carrying an RPC protocol:
//
//   - per-link delivery is FIFO (the caller's session queues provide
//     ordering; netsim only adds latency inside the queue worker),
//   - a dropped request never executes at the receiver (ErrDropped),
//   - a lost reply means the call DID execute but the caller cannot know
//     (ErrReplyLost) — the ambiguity at the heart of 2PC timeout handling,
//   - duplicated delivery re-executes the call, but only for calls the
//     sender declared idempotent (the connection layer de-duplicates
//     sequence-numbered non-idempotent traffic, as TCP does; application
//     level retransmits of idempotent RPCs may re-execute),
//   - a partitioned link refuses traffic in one direction only
//     (ErrPartitioned); partition A→B says nothing about B→A.
//
// Delivery hooks fire after a call executes and before the reply returns,
// which is exactly the window "participant acked PREPARE, coordinator has
// not yet sent COMMIT" — tests use them to crash machines at a chosen
// protocol phase.
package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"sdp/internal/obs"
)

// Sentinel errors reported by Link.Call.
var (
	// ErrDropped means the request was lost before reaching the receiver;
	// the call did not execute. Safe to retry even for non-idempotent calls.
	ErrDropped = errors.New("netsim: message dropped")

	// ErrReplyLost means the call executed at the receiver but its reply was
	// lost. Only idempotent calls may be retried after this error.
	ErrReplyLost = errors.New("netsim: reply lost")

	// ErrPartitioned means the link currently refuses traffic in this
	// direction; the call did not execute.
	ErrPartitioned = errors.New("netsim: link partitioned")
)

// IsTransient reports whether err is a simulated network fault that a
// caller may retry (subject to the idempotency rules above), as opposed to
// an application error from the call itself.
func IsTransient(err error) bool {
	return errors.Is(err, ErrDropped) || errors.Is(err, ErrReplyLost) || errors.Is(err, ErrPartitioned)
}

// Executed reports whether the call ran at the receiver despite err: true
// for a lost reply, false for a dropped request or a partitioned link.
// Callers use it to distinguish "retry freely" from "outcome unknown".
func Executed(err error) bool { return errors.Is(err, ErrReplyLost) }

// Faults are the injectable fault rates and delays of one link (or the
// network-wide defaults). The zero value is a perfect link.
type Faults struct {
	// DropProb is the probability a request is lost before delivery.
	DropProb float64
	// ReplyLossProb is the probability the call executes but its reply is
	// lost.
	ReplyLossProb float64
	// DupProb is the probability an idempotent call is delivered (and
	// executed) twice.
	DupProb float64
	// Latency is the fixed added delay per delivery.
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
}

// active reports whether the faults differ from a perfect link.
func (f Faults) active() bool { return f != Faults{} }

// CallInfo identifies one delivery for hooks: the directed link it crossed
// and the operation name the sender tagged it with.
type CallInfo struct {
	// From is the sending endpoint.
	From string
	// To is the receiving endpoint.
	To string
	// Op is the sender's operation tag (e.g. "prepare", "commit", "exec").
	Op string
	// Idempotent records the sender's idempotency declaration.
	Idempotent bool
}

// Hook observes a delivery. It runs after the call executed at the receiver
// and before the reply returns to the sender — the crash-at-phase window.
type Hook func(CallInfo)

// linkKey names a directed link.
type linkKey struct{ from, to string }

// linkState is the per-link fault configuration.
type linkState struct {
	faults      *Faults // nil: use network defaults
	partitioned bool
}

// Network is a simulated network: a set of directed links with injectable
// faults, driven by a single seeded PRNG. All methods are safe for
// concurrent use. A nil *Network is a valid perfect network on which Link
// returns nil links whose Call runs the function directly.
type Network struct {
	seed int64

	mu       sync.Mutex
	rng      *rand.Rand
	defaults Faults
	links    map[linkKey]*linkState
	hooks    []Hook

	// sleep is swappable for tests that must not spend wall-clock time.
	sleep func(time.Duration)

	calls      *obs.Counter
	dropped    *obs.Counter
	replyLost  *obs.Counter
	duplicated *obs.Counter
	refused    *obs.Counter
	delay      *obs.Histogram
	partitions *obs.Gauge
}

// New creates a network whose fault decisions are all drawn from a PRNG
// seeded with seed. Metrics are registered on reg; nil gives the network a
// private registry.
func New(seed int64, reg *obs.Registry) *Network {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Network{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[linkKey]*linkState),
		sleep: time.Sleep,
		calls: reg.Counter("netsim_calls_total",
			"Simulated network deliveries attempted across all links"),
		dropped: reg.Counter("netsim_dropped_total",
			"Requests lost before delivery (the call never executed)"),
		replyLost: reg.Counter("netsim_reply_lost_total",
			"Calls that executed but whose reply was lost (2PC's ambiguous outcome)"),
		duplicated: reg.Counter("netsim_duplicated_total",
			"Idempotent calls delivered and executed twice"),
		refused: reg.Counter("netsim_partition_refused_total",
			"Calls refused by a partitioned link"),
		delay: reg.Histogram("netsim_delay_seconds",
			"Injected per-delivery latency", nil),
		partitions: reg.Gauge("netsim_partitions_active",
			"Directed links currently partitioned"),
	}
}

// Seed returns the seed the network was created with, for replay reporting.
func (n *Network) Seed() int64 {
	if n == nil {
		return 0
	}
	return n.seed
}

// SetDefaults installs the network-wide fault rates used by links without a
// per-link override.
func (n *Network) SetDefaults(f Faults) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.defaults = f
	n.mu.Unlock()
}

// SetFaults installs a per-link fault override for the directed link
// from→to.
func (n *Network) SetFaults(from, to string, f Faults) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.state(from, to).faults = &f
	n.mu.Unlock()
}

// ClearFaults removes the per-link override of from→to, reverting the link
// to the network defaults.
func (n *Network) ClearFaults(from, to string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	if st, ok := n.links[linkKey{from, to}]; ok {
		st.faults = nil
	}
	n.mu.Unlock()
}

// Partition blocks the directed link from→to. Traffic to→from is
// unaffected — partitions are asymmetric by default.
func (n *Network) Partition(from, to string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	st := n.state(from, to)
	if !st.partitioned {
		st.partitioned = true
		n.partitions.Inc()
	}
	n.mu.Unlock()
}

// PartitionPair blocks both directions between a and b.
func (n *Network) PartitionPair(a, b string) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// Heal unblocks the directed link from→to.
func (n *Network) Heal(from, to string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	if st, ok := n.links[linkKey{from, to}]; ok && st.partitioned {
		st.partitioned = false
		n.partitions.Dec()
	}
	n.mu.Unlock()
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	if n == nil {
		return
	}
	n.mu.Lock()
	for _, st := range n.links {
		if st.partitioned {
			st.partitioned = false
			n.partitions.Dec()
		}
	}
	n.mu.Unlock()
}

// Partitioned reports whether the directed link from→to currently refuses
// traffic. Safe on a nil network (always false).
func (n *Network) Partitioned(from, to string) bool {
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.links[linkKey{from, to}]
	return ok && st.partitioned
}

// OnDeliver registers a delivery hook. Hooks run on the delivering
// goroutine after the call executed, before the reply returns; a hook that
// needs to mutate cluster state (e.g. crash a machine) should do so in a
// fresh goroutine if that mutation can block on the delivering path.
func (n *Network) OnDeliver(h Hook) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.hooks = append(n.hooks, h)
	n.mu.Unlock()
}

// ClearHooks removes all delivery hooks.
func (n *Network) ClearHooks() {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.hooks = nil
	n.mu.Unlock()
}

// Quiesce returns the network to a perfect state: defaults and per-link
// fault overrides cleared, partitions healed, hooks removed. The chaos
// driver calls it before draining traffic so invariant checks run over a
// settled cluster.
func (n *Network) Quiesce() {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.defaults = Faults{}
	for _, st := range n.links {
		st.faults = nil
		if st.partitioned {
			st.partitioned = false
			n.partitions.Dec()
		}
	}
	n.hooks = nil
	n.mu.Unlock()
}

// state returns (creating if needed) the directed link state. Caller holds
// n.mu.
func (n *Network) state(from, to string) *linkState {
	k := linkKey{from, to}
	st, ok := n.links[k]
	if !ok {
		st = &linkState{}
		n.links[k] = st
	}
	return st
}

// Link returns the directed link from→to. A nil network returns a nil
// link, whose Call invokes the function directly with no fault layer — the
// zero-overhead path for clusters running without netsim.
func (n *Network) Link(from, to string) *Link {
	if n == nil {
		return nil
	}
	return &Link{net: n, from: from, to: to}
}

// Link is one directed sender→receiver channel of the network.
type Link struct {
	net      *Network
	from, to string
}

// From returns the sending endpoint name.
func (l *Link) From() string { return l.from }

// To returns the receiving endpoint name.
func (l *Link) To() string { return l.to }

// decision is the set of fault draws for one delivery, taken under the
// network mutex in a fixed order so a seed reproduces the same stream.
type decision struct {
	partitioned bool
	drop        bool
	dup         bool
	replyLost   bool
	delay       time.Duration
	hooks       []Hook
}

// decide draws all fault decisions for one delivery.
func (n *Network) decide(from, to string, idempotent bool) decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	var d decision
	st := n.links[linkKey{from, to}]
	if st != nil && st.partitioned {
		d.partitioned = true
		return d
	}
	f := n.defaults
	if st != nil && st.faults != nil {
		f = *st.faults
	}
	if !f.active() {
		d.hooks = n.hooks
		return d
	}
	// Fixed draw order: drop, dup, reply-loss, jitter. Every delivery
	// consumes the same number of PRNG values regardless of which faults
	// fire, so one link's traffic does not shift another link's stream.
	d.drop = n.rng.Float64() < f.DropProb
	d.dup = idempotent && n.rng.Float64() < f.DupProb
	d.replyLost = n.rng.Float64() < f.ReplyLossProb
	d.delay = f.Latency
	if f.Jitter > 0 {
		d.delay += time.Duration(n.rng.Int63n(int64(f.Jitter)))
	}
	d.hooks = n.hooks
	return d
}

// Call delivers one operation across the link: injected latency is slept,
// a dropped request returns ErrDropped without running fn, a partitioned
// link returns ErrPartitioned, a duplicated delivery runs an idempotent fn
// twice, and a lost reply runs fn but returns ErrReplyLost. Otherwise fn's
// own error is returned. A nil link runs fn directly.
func (l *Link) Call(op string, idempotent bool, fn func() error) error {
	if l == nil {
		return fn()
	}
	n := l.net
	n.calls.Inc()
	d := n.decide(l.from, l.to, idempotent)
	if d.partitioned {
		n.refused.Inc()
		return ErrPartitioned
	}
	if d.delay > 0 {
		n.delay.ObserveDuration(d.delay)
		n.sleep(d.delay)
	}
	if d.drop {
		n.dropped.Inc()
		return ErrDropped
	}
	err := fn()
	if d.dup {
		n.duplicated.Inc()
		err = fn()
	}
	info := CallInfo{From: l.from, To: l.to, Op: op, Idempotent: idempotent}
	for _, h := range d.hooks {
		h(info)
	}
	if d.replyLost {
		n.replyLost.Inc()
		return ErrReplyLost
	}
	return err
}
