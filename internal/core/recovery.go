package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sdp/internal/sqldb"
)

// RecoveryReport summarises one recovery run.
type RecoveryReport struct {
	Recovered []string         // databases successfully re-replicated
	Failed    map[string]error // databases whose recovery failed
}

// RecoverDatabases re-replicates each named database onto a fresh machine,
// running up to `threads` concurrent copy processes — the x-axis of the
// paper's Figure 8/9 recovery experiments. Targets are chosen
// least-loaded-first among live machines not already hosting the database.
func (c *Cluster) RecoverDatabases(dbs []string, threads int) RecoveryReport {
	if threads <= 0 {
		threads = 1
	}
	report := RecoveryReport{Failed: make(map[string]error)}
	var mu sync.Mutex

	work := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for db := range work {
				start := time.Now()
				err := c.recoverOne(db)
				c.metrics.recoverySeconds.ObserveDuration(time.Since(start))
				mu.Lock()
				if err != nil {
					report.Failed[db] = err
					c.metrics.recoveryTotal.With("failed").Inc()
					c.metrics.reg.TraceEvent("recovery", db, "failed", err.Error())
				} else {
					report.Recovered = append(report.Recovered, db)
					c.metrics.recoveryTotal.With("recovered").Inc()
					c.metrics.reg.TraceEvent("recovery", db, "recovered", "")
				}
				mu.Unlock()
			}
		}()
	}
	for _, db := range dbs {
		work <- db
	}
	close(work)
	wg.Wait()
	sort.Strings(report.Recovered)
	return report
}

// recoverOne re-replicates one database. When a restarted machine holds a
// log-recovered copy of the database plus usable failure-time marks, the
// fast path catches it up by copying only the tables written while it was
// down; otherwise (or if catch-up fails) a full Algorithm-1 copy onto a
// fresh target runs.
func (c *Cluster) recoverOne(db string) error {
	if target := c.fastRecoveryCandidate(db); target != nil {
		err := c.catchUpReplica(db, target)
		if err == nil {
			c.metrics.walRecovery.With("fast").Inc()
			c.metrics.reg.TraceEvent("recovery", db, "fast_path", target.ID())
			return nil
		}
		if errors.Is(err, ErrCopyInProgress) {
			return err
		}
		// The log-recovered copy is unusable; discard it and fall through
		// to a full copy.
		c.metrics.reg.TraceEvent("recovery", db, "fast_path_failed", err.Error())
		if target.Engine().HasDatabase(db) {
			if derr := target.Engine().DropDatabase(db); derr == nil {
				target.dbCount.Add(-1)
			}
		}
		target.clearMarks(db)
	}
	target, err := c.pickRecoveryTarget(db)
	if err != nil {
		return err
	}
	if err := c.CreateReplica(db, target); err != nil {
		return err
	}
	c.metrics.walRecovery.With("full").Inc()
	return nil
}

// fastRecoveryCandidate returns a live machine holding a log-recovered copy
// of db plus the failure-time marks needed to catch it up, or nil.
func (c *Cluster) fastRecoveryCandidate(db string) *Machine {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[db]
	if !ok || ds.partitioned() {
		return nil
	}
	for _, id := range c.order {
		m := c.machines[id]
		if m.Failed() || contains(ds.replicas, id) {
			continue
		}
		if ds.copying != nil && ds.copying.target == id {
			continue
		}
		if m.hasMarks(db) && m.Engine().HasDatabase(db) {
			return m
		}
	}
	return nil
}

// catchUpReplica re-admits a restarted machine's log-recovered copy of db
// into the replica set by running Algorithm 1 with the unchanged tables
// pre-marked as copied: only the tables written while the machine was down
// (per its failure-time marks) are dumped and restored.
func (c *Cluster) catchUpReplica(db string, target *Machine) error {
	targetID := target.ID()
	c.mu.Lock()
	ds, ok := c.dbs[db]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	if ds.partitioned() {
		c.mu.Unlock()
		return fmt.Errorf("core: catch-up is not supported for partitioned database %s", db)
	}
	if ds.copying != nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrCopyInProgress, db)
	}
	if contains(ds.replicas, targetID) {
		c.mu.Unlock()
		return fmt.Errorf("core: %s already hosts %s", targetID, db)
	}
	if len(ds.replicas) == 0 {
		c.mu.Unlock()
		return ErrNoReplicas
	}
	marks, epoch, ok := target.takeMarks(db)
	if !ok || epoch != ds.epoch {
		c.mu.Unlock()
		return fmt.Errorf("core: %s has no usable failure-time marks for %s", targetID, db)
	}
	sourceID := ds.replicas[0]
	source := c.machines[sourceID]
	cs := &copyState{source: sourceID, target: targetID, copied: make(map[string]bool)}
	// A table whose write counter did not move while the machine was down
	// was fully recovered by log replay: mark it copied up front, so it is
	// never dumped and new writes route to the target immediately. (Counters
	// advance at routing time under the cluster mutex, so any write the dead
	// machine might have missed is visible in the delta.)
	for tbl, seq := range marks {
		if ds.writeSeq[tbl] == seq {
			cs.copied[tbl] = true
		}
	}
	clean := make([]string, 0, len(cs.copied))
	for tbl := range cs.copied {
		clean = append(clean, tbl)
	}
	sort.Strings(clean)
	ds.copying = cs
	c.mu.Unlock()
	c.metrics.reg.TraceEvent("copy", db, "catchup_plan",
		fmt.Sprintf("target=%s clean=%v", targetID, clean))

	if cp := c.ctl; cp != nil {
		cp.mu.Lock()
		_, perr := cp.propose(ctlCmd{Op: ctlOpCopyBegin, DB: db, Source: sourceID, Target: targetID})
		cp.mu.Unlock()
		if perr != nil {
			c.mu.Lock()
			ds.copying = nil
			c.mu.Unlock()
			c.metrics.copyPhase.With("abandoned").Inc()
			return perr
		}
	}

	met := c.metrics
	met.copyPhase.With("start").Inc()
	met.copiesRunning.Inc()
	defer met.copiesRunning.Dec()
	met.reg.TraceEvent("copy", db, "catchup_start", fmt.Sprintf("%s -> %s", sourceID, targetID))

	physical, err := c.catchUpTables(ds, cs, source, target, db)
	if err != nil {
		c.abandonCopy(ds)
		return err
	}
	// Small deltas are applied through the target's SQL layer and are already
	// in its log; only a physical bulk restore bypasses it and forces a
	// checkpoint of the database, so the log alone reproduces the caught-up
	// state on the machine's next restart.
	if physical && target.Engine().WAL() != nil {
		if err := target.Engine().CheckpointDatabase(db); err != nil {
			c.abandonCopy(ds)
			return err
		}
	}

	c.mu.Lock()
	// Same guard as CreateReplica: a target (or source) that failed while
	// the catch-up ran must not register the half-caught-up destination.
	if cs.aborted || target.Failed() {
		c.mu.Unlock()
		c.abandonCopy(ds)
		return fmt.Errorf("%w: %s -> %s", ErrCopyAborted, sourceID, targetID)
	}
	c.mu.Unlock()

	if cp := c.ctl; cp != nil {
		cp.mu.Lock()
		_, perr := cp.propose(ctlCmd{Op: ctlOpCopyComplete, DB: db})
		if perr != nil {
			cp.mu.Unlock()
			c.abandonCopy(ds)
			return perr
		}
		c.mu.Lock()
		if !contains(ds.replicas, targetID) {
			ds.replicas = append(ds.replicas, targetID)
		}
		ds.copying = nil
		c.mu.Unlock()
		cp.mu.Unlock()
	} else {
		c.mu.Lock()
		ds.replicas = append(ds.replicas, targetID)
		ds.copying = nil
		c.mu.Unlock()
	}
	met.copyPhase.With("done").Inc()
	met.reg.TraceEvent("copy", db, "catchup_done", targetID)
	return nil
}

// catchUpLogicalRows is the largest table that catch-up rebuilds through SQL
// statements on the target — and therefore through the target's write-ahead
// log. Larger tables are restored physically, which bypasses the log and
// costs a checkpoint of the whole database before the target rejoins.
const catchUpLogicalRows = 1000

// catchUpTables reconciles the target's table set with the source and copies
// every table not pre-marked as unchanged, under Algorithm 1's in-flight
// drain protocol. It reports whether any table was restored physically
// (bypassing the target's log).
func (c *Cluster) catchUpTables(ds *dbState, cs *copyState, source, target *Machine, db string) (physical bool, err error) {
	srcTables := source.Engine().Tables(db)
	srcSet := make(map[string]bool, len(srcTables))
	for _, tbl := range srcTables {
		srcSet[lowerName(tbl)] = true
	}
	// Tables the target recovered but the source no longer has were dropped
	// cluster-wide while the machine was down.
	for _, tbl := range target.Engine().Tables(db) {
		if !srcSet[lowerName(tbl)] {
			if _, err := target.Engine().Exec(db, "DROP TABLE "+tbl); err != nil {
				return physical, err
			}
		}
	}
	for _, tbl := range srcTables {
		lt := lowerName(tbl)
		if cs.copied[lt] {
			continue
		}
		c.mu.Lock()
		cs.inFlight = tbl
		d := ds.pendingFor(lt)
		c.mu.Unlock()
		c.metrics.copyPhase.With("table_inflight").Inc()
		c.metrics.reg.TraceEvent("copy", db, "table_inflight", tbl)

		d.wait()

		// The target's recovered version of the table is stale; replace it.
		if target.Engine().HasDatabase(db) {
			if _, err := target.Engine().Table(db, tbl); err == nil {
				if _, err := target.Engine().Exec(db, "DROP TABLE "+tbl); err != nil {
					return physical, err
				}
			}
		}
		dumpStart := time.Now()
		err := source.Engine().DumpTableWith(db, tbl, func(d sqldb.TableDump) error {
			if len(d.Rows) <= catchUpLogicalRows {
				return restoreTableLogged(target.Engine(), db, d)
			}
			physical = true
			return target.Engine().RestoreTable(db, d)
		})
		c.metrics.copyDump.ObserveDuration(time.Since(dumpStart))
		if err != nil {
			return physical, err
		}

		c.mu.Lock()
		cs.copied[lt] = true
		cs.inFlight = ""
		c.mu.Unlock()
		c.metrics.copyPhase.With("table_copied").Inc()
		c.metrics.reg.TraceEvent("copy", db, "table_copied", tbl)
	}
	return physical, nil
}

// restoreTableLogged rebuilds one table on a machine through its SQL layer,
// so every mutation reaches the machine's write-ahead log and the log alone
// reproduces the table on the next restart — no checkpoint needed. All rows
// are inserted in a single transaction: one commit record, one flush.
func restoreTableLogged(eng *sqldb.Engine, db string, d sqldb.TableDump) error {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(d.Schema.Table)
	b.WriteString(" (")
	for i, col := range d.Schema.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(col.Name)
		b.WriteByte(' ')
		b.WriteString(col.Typ.String())
		switch {
		case col.PrimaryKey:
			b.WriteString(" PRIMARY KEY")
		case col.NotNull:
			b.WriteString(" NOT NULL")
		}
		if col.Unique && !col.PrimaryKey {
			b.WriteString(" UNIQUE")
		}
	}
	b.WriteString(")")
	if _, err := eng.Exec(db, b.String()); err != nil {
		return err
	}
	for _, ix := range d.Indexes {
		create := "CREATE INDEX "
		if ix.Unique {
			create = "CREATE UNIQUE INDEX "
		}
		if _, err := eng.Exec(db, create+ix.Name+" ON "+d.Schema.Table+" ("+ix.Col+")"); err != nil {
			return err
		}
	}
	if len(d.Rows) == 0 {
		return nil
	}
	insert := "INSERT INTO " + d.Schema.Table + " VALUES (?" + strings.Repeat(", ?", len(d.Schema.Cols)-1) + ")"
	t, err := eng.Begin(db)
	if err != nil {
		return err
	}
	for _, row := range d.Rows {
		if _, err := t.Exec(insert, row...); err != nil {
			_ = t.Rollback()
			return err
		}
	}
	return t.Commit()
}

// CheckpointMachines writes a fuzzy checkpoint on every live machine that
// has a write-ahead log, bounding each machine's restart replay to the log
// tail written since. A deployment runs this periodically (it blocks writers
// only per table, one table at a time) so that RestartMachine restores table
// images instead of replaying the machine's whole history statement by
// statement. Machines without a WAL are skipped.
func (c *Cluster) CheckpointMachines() error {
	c.mu.Lock()
	var ms []*Machine
	for _, id := range c.order {
		m := c.machines[id]
		if !m.Failed() && m.walStore != nil {
			ms = append(ms, m)
		}
	}
	c.mu.Unlock()
	for _, m := range ms {
		if err := m.Engine().Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint %s: %w", m.ID(), err)
		}
	}
	return nil
}

// RestartMachine brings a failed machine back into the cluster: the machine
// recovers its engine from its write-ahead log, in-doubt transactions are
// resolved by presumed abort (their tables are marked stale, since the
// aborted branch may have committed cluster-wide), and databases dropped
// while the machine was down are discarded. The machine's databases rejoin
// their replica sets through RecoverDatabases, which prefers the fast
// log-replay path for them.
func (c *Cluster) RestartMachine(id string) (*sqldb.RecoveryStats, error) {
	c.mu.Lock()
	m, ok := c.machines[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMachine, id)
	}
	stats, err := m.Restart()
	if err != nil {
		return nil, err
	}
	eng := m.Engine()
	// Presumed abort: this controller is the commit coordinator, and a
	// coordinator that cannot reach a participant aborts; but a prepared
	// branch whose global transaction did commit elsewhere must not serve
	// stale data, so every table an in-doubt transaction touched is forced
	// into the delta-copy set.
	for _, gid := range eng.RecoveredPrepared() {
		if rerr := eng.ResolvePrepared(gid, false); rerr != nil {
			return stats, rerr
		}
		c.metrics.reg.TraceEvent("2pc", gidString(gid), "presumed_abort", id)
	}
	c.mu.Lock()
	for db, tables := range stats.InDoubtTables {
		m.dirtyMarks(db, tables)
	}
	var orphans []string
	for _, db := range eng.Databases() {
		ds, exists := c.dbs[db]
		if !exists {
			orphans = append(orphans, db)
			continue
		}
		// A half-copied database left behind by an Algorithm 1 copy that
		// aborted when this machine failed mid-copy: the machine never
		// joined the replica set and has no catch-up marks (a failed
		// replica always gets marks at FailMachine), so the partial state
		// is useless and would block a future copy onto this machine.
		if !contains(ds.replicas, id) && !m.hasMarks(db) {
			orphans = append(orphans, db)
		}
	}
	c.mu.Unlock()
	for _, db := range orphans {
		if derr := eng.DropDatabase(db); derr == nil {
			m.dbCount.Add(-1)
		}
		m.clearMarks(db)
	}
	// The liveness change commits after the physical restart: if the
	// proposal is lost with the machine already live, the replicated state
	// conservatively still says failed, and a takeover re-fails the machine
	// (the operator retries the restart) rather than ever trusting a
	// machine the log says is dead.
	if cp := c.ctl; cp != nil {
		cp.mu.Lock()
		_, perr := cp.propose(ctlCmd{Op: ctlOpRestartMachine, Machine: id})
		cp.mu.Unlock()
		if perr != nil {
			return stats, perr
		}
	}
	c.metrics.reg.TraceEvent("recovery", id, "machine_restarted",
		fmt.Sprintf("replayed=%d in_doubt=%d doubt_tables=%v", stats.Applied, stats.InDoubt, stats.InDoubtTables))
	return stats, nil
}

// pickRecoveryTarget returns the live machine with the fewest hosted
// databases that does not already host db.
func (c *Cluster) pickRecoveryTarget(db string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.dbs[db]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	best := ""
	var bestN int32
	for _, id := range c.order {
		m := c.machines[id]
		if m.Failed() || contains(ds.replicas, id) {
			continue
		}
		if ds.copying != nil && ds.copying.target == id {
			continue
		}
		if n := m.dbCount.Load(); best == "" || n < bestN {
			best, bestN = id, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: no machine can host a new replica of %s", ErrNoReplicas, db)
	}
	return best, nil
}
