// Package colo implements the paper's colo controller: the per-location
// coordinator that owns one or more machine clusters, routes client database
// connection requests to the cluster hosting the database, and manages a
// pool of free machines that it adds to clusters as workload demands. Like
// the system controller, it holds no per-connection state, so a hot-standby
// pair suffices for its fault tolerance (modelled by its state being a pure
// function of the clusters it references).
package colo

import (
	"errors"
	"fmt"
	"sync"

	"sdp/internal/core"
	"sdp/internal/obs"
	"sdp/internal/sla"
	"sdp/internal/sqldb"
)

// Sentinel errors.
var (
	// ErrNoDatabase is returned when routing a connection for an unknown
	// database.
	ErrNoDatabase = errors.New("colo: no such database")
	// ErrNoFreeMachines is returned when placement needs machines and the
	// free pool is empty.
	ErrNoFreeMachines = errors.New("colo: free machine pool exhausted")
)

// Options configures a colo controller.
type Options struct {
	// ClusterSize is the number of machines a newly formed cluster starts
	// with (the paper uses clusters of tens of machines on one rack).
	ClusterSize int
	// MaxClusterSize caps cluster growth; beyond it a new cluster is
	// formed instead. Zero means 2*ClusterSize.
	MaxClusterSize int
	// Cluster configures every cluster controller this colo creates.
	Cluster core.Options
	// RecoveryThreads is the number of concurrent copy processes used when
	// recovering from a machine failure.
	RecoveryThreads int
	// Metrics, when non-nil, is the shared observability registry: the colo
	// reports into it and injects it into every cluster it creates, so one
	// snapshot covers the whole colo. Nil gives the colo a private registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.ClusterSize <= 0 {
		o.ClusterSize = 4
	}
	if o.MaxClusterSize <= 0 {
		o.MaxClusterSize = 2 * o.ClusterSize
	}
	if o.RecoveryThreads <= 0 {
		o.RecoveryThreads = 2
	}
	return o
}

// Controller is one colo's controller.
type Controller struct {
	name    string
	opts    Options
	metrics *coloMetrics

	mu         sync.Mutex
	clusters   []*core.Cluster
	free       int // size of the free machine pool
	dbCluster  map[string]*core.Cluster
	dbReq      map[string]sla.Resources
	machineSeq int
	clusterSeq int
}

// New creates a colo controller with an initially empty free pool.
func New(name string, opts Options) *Controller {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Every cluster this colo creates reports into the same registry.
	opts.Cluster.Metrics = reg
	c := &Controller{
		name:      name,
		opts:      opts,
		metrics:   newColoMetrics(reg, name),
		dbCluster: make(map[string]*core.Cluster),
		dbReq:     make(map[string]sla.Resources),
	}
	reg.OnSnapshot(func() { c.metrics.freeMachines.Set(float64(c.FreeMachines())) })
	return c
}

// Name returns the colo's name.
func (c *Controller) Name() string { return c.name }

// Metrics returns the registry the colo and its clusters report into.
func (c *Controller) Metrics() *obs.Registry { return c.metrics.reg }

// AddFreeMachines adds n machines to the free pool.
func (c *Controller) AddFreeMachines(n int) {
	c.mu.Lock()
	c.free += n
	c.mu.Unlock()
}

// FreeMachines returns the size of the free pool.
func (c *Controller) FreeMachines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.free
}

// Clusters returns the clusters managed by this colo.
func (c *Controller) Clusters() []*core.Cluster {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*core.Cluster, len(c.clusters))
	copy(out, c.clusters)
	return out
}

// Databases lists the databases hosted in this colo.
func (c *Controller) Databases() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.dbCluster))
	for db := range c.dbCluster {
		out = append(out, db)
	}
	return out
}

// CreateDatabase places a new database with the given per-replica resource
// requirement somewhere in the colo: each existing cluster is tried with
// First-Fit placement; if none has capacity, machines from the free pool
// grow an existing cluster (up to MaxClusterSize) or form a new one.
func (c *Controller) CreateDatabase(db string, req sla.Resources, replicas int) error {
	c.mu.Lock()
	if _, dup := c.dbCluster[db]; dup {
		c.mu.Unlock()
		return fmt.Errorf("colo: database %s already exists", db)
	}
	clusters := append([]*core.Cluster{}, c.clusters...)
	c.mu.Unlock()

	for _, cl := range clusters {
		if _, err := cl.PlaceWithSLA(db, req, replicas); err == nil {
			c.mu.Lock()
			c.dbCluster[db] = cl
			c.dbReq[db] = req
			c.mu.Unlock()
			c.metrics.placements.With(c.name, "placed").Inc()
			return nil
		} else if !errors.Is(err, core.ErrNoCapacity) {
			c.metrics.placements.With(c.name, "error").Inc()
			return err
		}
	}

	// No capacity anywhere: grow a cluster or form a new one, retrying
	// until the placement fits or the free pool runs dry (each
	// provisioning step consumes at least one free machine, so this
	// terminates).
	for {
		cl, err := c.provisionCluster(replicas)
		if err != nil {
			c.metrics.placements.With(c.name, "no_capacity").Inc()
			return err
		}
		_, perr := cl.PlaceWithSLA(db, req, replicas)
		if perr == nil {
			c.mu.Lock()
			c.dbCluster[db] = cl
			c.dbReq[db] = req
			c.mu.Unlock()
			c.metrics.placements.With(c.name, "placed_after_growth").Inc()
			return nil
		}
		if !errors.Is(perr, core.ErrNoCapacity) {
			c.metrics.placements.With(c.name, "error").Inc()
			return perr
		}
	}
}

// provisionCluster grows the most recent cluster if below MaxClusterSize,
// else forms a new cluster, drawing machines from the free pool.
func (c *Controller) provisionCluster(minMachines int) (*core.Cluster, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	grow := c.opts.ClusterSize
	if grow < minMachines {
		grow = minMachines
	}
	// Grow the last cluster when allowed.
	if len(c.clusters) > 0 {
		last := c.clusters[len(c.clusters)-1]
		if n := len(last.MachineIDs()); n < c.opts.MaxClusterSize {
			room := c.opts.MaxClusterSize - n
			if grow > room {
				grow = room
			}
			if c.free < grow {
				return nil, fmt.Errorf("%w: need %d, have %d", ErrNoFreeMachines, grow, c.free)
			}
			for i := 0; i < grow; i++ {
				c.machineSeq++
				if _, err := last.AddMachine(fmt.Sprintf("%s-m%d", c.name, c.machineSeq)); err != nil {
					return nil, err
				}
			}
			c.free -= grow
			c.metrics.machinesProvisioned.Add(uint64(grow))
			return last, nil
		}
	}
	if c.free < grow {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNoFreeMachines, grow, c.free)
	}
	c.clusterSeq++
	cl := core.NewCluster(fmt.Sprintf("%s-c%d", c.name, c.clusterSeq), c.opts.Cluster)
	for i := 0; i < grow; i++ {
		c.machineSeq++
		if _, err := cl.AddMachine(fmt.Sprintf("%s-m%d", c.name, c.machineSeq)); err != nil {
			return nil, err
		}
	}
	c.free -= grow
	c.clusters = append(c.clusters, cl)
	c.metrics.clustersFormed.Inc()
	c.metrics.machinesProvisioned.Add(uint64(grow))
	return cl, nil
}

// Health summarises the colo's liveness for the admin plane: the free-pool
// size and every owned cluster's machine/copy state.
type Health struct {
	// Colo is the colo's name.
	Colo string `json:"colo"`
	// FreeMachines is the current free-pool size.
	FreeMachines int `json:"free_machines"`
	// Clusters lists the owned clusters' health, in formation order.
	Clusters []core.ClusterHealth `json:"clusters"`
}

// Health captures the colo's current liveness.
func (c *Controller) Health() Health {
	c.mu.Lock()
	h := Health{Colo: c.name, FreeMachines: c.free}
	clusters := append([]*core.Cluster{}, c.clusters...)
	c.mu.Unlock()
	for _, cl := range clusters {
		h.Clusters = append(h.Clusters, cl.Health())
	}
	return h
}

// Route returns the cluster hosting db — the colo controller's connection
// routing role.
func (c *Controller) Route(db string) (*core.Cluster, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.dbCluster[db]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDatabase, db)
	}
	return cl, nil
}

// Begin opens a transaction on db via the hosting cluster.
func (c *Controller) Begin(db string) (*core.Txn, error) {
	cl, err := c.Route(db)
	if err != nil {
		return nil, err
	}
	return cl.Begin(db)
}

// FailMachine fails a machine in whichever cluster owns it and immediately
// runs recovery (re-replication) with the configured number of recovery
// threads, drawing a replacement machine from the free pool into the
// cluster when one is available.
func (c *Controller) FailMachine(id string) (core.RecoveryReport, error) {
	c.mu.Lock()
	clusters := append([]*core.Cluster{}, c.clusters...)
	c.mu.Unlock()
	for _, cl := range clusters {
		if _, err := cl.Machine(id); err != nil {
			continue
		}
		affected, err := cl.FailMachine(id)
		if err != nil {
			return core.RecoveryReport{}, err
		}
		c.metrics.machineFailures.Inc()
		c.metrics.reg.TraceEvent("recovery", id, "machine_failed",
			fmt.Sprintf("%d databases affected", len(affected)))
		// Replace the dead machine from the free pool if possible.
		c.mu.Lock()
		if c.free > 0 {
			c.machineSeq++
			if _, err := cl.AddMachine(fmt.Sprintf("%s-m%d", c.name, c.machineSeq)); err == nil {
				c.free--
				c.metrics.machinesProvisioned.Inc()
			}
		}
		c.mu.Unlock()
		return cl.RecoverDatabases(affected, c.opts.RecoveryThreads), nil
	}
	return core.RecoveryReport{}, fmt.Errorf("colo: machine %s not found in any cluster", id)
}

// CrashMachine fails a machine without re-replicating its databases — the
// transient-outage model: the machine is expected back, so its replicas are
// left one short rather than rebuilt elsewhere. Pair with RestartMachine;
// use FailMachine when the machine is gone for good. Returns the affected
// databases.
func (c *Controller) CrashMachine(id string) ([]string, error) {
	c.mu.Lock()
	clusters := append([]*core.Cluster{}, c.clusters...)
	c.mu.Unlock()
	for _, cl := range clusters {
		if _, err := cl.Machine(id); err != nil {
			continue
		}
		affected, err := cl.FailMachine(id)
		if err != nil {
			return nil, err
		}
		c.metrics.machineFailures.Inc()
		c.metrics.reg.TraceEvent("recovery", id, "machine_crashed",
			fmt.Sprintf("%d databases affected", len(affected)))
		return affected, nil
	}
	return nil, fmt.Errorf("colo: machine %s not found in any cluster", id)
}

// RestartMachine brings a crashed machine back: its engine recovers from its
// write-ahead log, and its databases rejoin their replica sets — by the fast
// log-replay-plus-delta path when the machine's recovered state is usable,
// by a full copy otherwise. Requires the clusters to run with a WAL.
func (c *Controller) RestartMachine(id string) (*sqldb.RecoveryStats, core.RecoveryReport, error) {
	c.mu.Lock()
	clusters := append([]*core.Cluster{}, c.clusters...)
	c.mu.Unlock()
	for _, cl := range clusters {
		m, err := cl.Machine(id)
		if err != nil {
			continue
		}
		stats, err := cl.RestartMachine(id)
		if err != nil {
			return nil, core.RecoveryReport{}, err
		}
		report := cl.RecoverDatabases(m.Engine().Databases(), c.opts.RecoveryThreads)
		return stats, report, nil
	}
	return nil, core.RecoveryReport{}, fmt.Errorf("colo: machine %s not found in any cluster", id)
}
