package system

import (
	"errors"
	"fmt"
	"testing"

	"sdp/internal/colo"
	"sdp/internal/sla"
)

func newSystem(t *testing.T) (*Controller, *colo.Controller, *colo.Controller) {
	t.Helper()
	s := New()
	west := colo.New("west", colo.Options{ClusterSize: 2})
	west.AddFreeMachines(4)
	east := colo.New("east", colo.Options{ClusterSize: 2})
	east.AddFreeMachines(4)
	s.AddColo(west, "us-west")
	s.AddColo(east, "us-east")
	return s, west, east
}

func TestCreateAndRoute(t *testing.T) {
	s, west, _ := newSystem(t)
	req := sla.Profile(300, 1)
	if err := s.CreateDatabase("app", req, 2, "west", "east"); err != nil {
		t.Fatal(err)
	}
	co, err := s.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	if co != west {
		t.Errorf("routed to %s, want west", co.Name())
	}
	if _, err := s.Route("missing"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
	if err := s.CreateDatabase("app", req, 2, "west"); err == nil {
		t.Error("duplicate database accepted")
	}
	if err := s.CreateDatabase("x", req, 2, "nowhere"); !errors.Is(err, ErrNoColo) {
		t.Errorf("err = %v", err)
	}
}

func TestRouteReadPrefersLocalDR(t *testing.T) {
	s, west, east := newSystem(t)
	if err := s.CreateDatabase("app", sla.Profile(300, 1), 2, "west", "east"); err != nil {
		t.Fatal(err)
	}
	co, err := s.RouteRead("app", "us-east")
	if err != nil {
		t.Fatal(err)
	}
	if co != east {
		t.Errorf("read routed to %s, want east", co.Name())
	}
	co, err = s.RouteRead("app", "eu-central")
	if err != nil {
		t.Fatal(err)
	}
	if co != west {
		t.Errorf("read with no local DR routed to %s, want primary", co.Name())
	}
}

func TestAsyncReplicationToDR(t *testing.T) {
	s, _, east := newSystem(t)
	if err := s.CreateDatabase("app", sla.Profile(300, 1), 2, "west", "east"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := s.Begin("app")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tx.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Flush("app")
	if lag := s.ReplicationLag("app"); lag != 0 {
		t.Errorf("lag after flush = %d", lag)
	}
	eastCl, err := east.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eastCl.Exec("app", "SELECT COUNT(*), SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 10 || res.Rows[0][1].Int != 90 {
		t.Errorf("DR copy = %v", res.Rows[0])
	}
}

func TestRollbackNotReplicated(t *testing.T) {
	s, _, east := newSystem(t)
	if err := s.CreateDatabase("app", sla.Profile(300, 1), 2, "west", "east"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin("app")
	if _, err := tx.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	s.Flush("app")
	eastCl, _ := east.Route("app")
	res, err := eastCl.Exec("app", "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 0 {
		t.Errorf("aborted write reached DR: %v", res.Rows[0][0])
	}
}

func TestDisasterFailover(t *testing.T) {
	s, _, east := newSystem(t)
	if err := s.CreateDatabase("app", sla.Profile(300, 1), 2, "west", "east"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("app", "INSERT INTO t VALUES (1, 7)"); err != nil {
		t.Fatal(err)
	}
	s.Flush("app")

	affected, err := s.FailColo("west")
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != "app" {
		t.Errorf("affected = %v", affected)
	}
	if _, err := s.Route("app"); !errors.Is(err, ErrColoDown) {
		t.Fatalf("route after disaster: %v", err)
	}
	if err := s.PromoteDR("app", "east"); err != nil {
		t.Fatal(err)
	}
	co, err := s.Route("app")
	if err != nil {
		t.Fatal(err)
	}
	if co != east {
		t.Errorf("promoted primary = %s", co.Name())
	}
	// The database continues at the new primary with the replicated data.
	res, err := s.Exec("app", "SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 7 {
		t.Errorf("v = %v", res.Rows[0][0])
	}
	if _, err := s.Exec("app", "INSERT INTO t VALUES (2, 8)"); err != nil {
		t.Fatal(err)
	}
}

func TestPromoteDRUnknown(t *testing.T) {
	s, _, _ := newSystem(t)
	if err := s.CreateDatabase("app", sla.Profile(300, 1), 2, "west"); err != nil {
		t.Fatal(err)
	}
	if err := s.PromoteDR("app", "east"); err == nil {
		t.Error("promoting a non-DR colo succeeded")
	}
	if err := s.PromoteDR("missing", "east"); !errors.Is(err, ErrNoDatabase) {
		t.Errorf("err = %v", err)
	}
}
